// Serving-engine benchmarks: the coalesced batched-inference path
// (WithServing) against the per-call single-sample path on the same
// workload, at small and fleet-scale app counts. `make bench-serve`
// snapshots both into BENCH_serve.json so the batched/single-sample ratio
// is tracked in-repo PR over PR.
package mocc_test

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"mocc"
)

// Serving-benchmark model: trained once, outside any timed region.
var (
	serveOnce sync.Once
	serveMod  *mocc.Model
	serveErr  error
)

func servingModel(b *testing.B) *mocc.Model {
	b.Helper()
	serveOnce.Do(func() {
		opts := mocc.QuickTraining()
		opts.Omega = 3
		opts.BootstrapIters = 4
		opts.BootstrapCycles = 1
		opts.TraverseCycles = 0
		serveMod, serveErr = mocc.TrainModel(opts)
	})
	if serveErr != nil {
		b.Fatalf("training model: %v", serveErr)
	}
	return serveMod
}

// driveReports registers g apps on lib and drives b.N Report calls per app
// from a bounded worker pool, reporting ns/report (per-decision latency
// cost) and reports/s (aggregate sustained throughput).
//
// Each worker owns a disjoint strided subset of the fleet and cycles
// through it round-robin, so consecutive reports always come from
// different apps — the access pattern of a real fleet, where 10k paced
// flows interleave and no app ever reports twice back-to-back. (One
// goroutine per app hammering Report in a tight loop would instead let
// the scheduler run thousands of consecutive same-app reports per
// preemption slice, granting whichever path is under test an L1-warm
// per-app state that no serving deployment ever sees.) Both the batched
// engine and the single-sample baseline run this identical driver.
func driveReports(b *testing.B, lib *mocc.Library, g int) {
	b.Helper()
	apps := make([]*mocc.App, g)
	for i := range apps {
		app, err := lib.Register(mocc.BalancedPreference)
		if err != nil {
			b.Fatal(err)
		}
		apps[i] = app
	}
	defer func() {
		for _, app := range apps {
			_ = app.Unregister()
		}
	}()
	st := mocc.Status{
		Duration:     40 * time.Millisecond,
		PacketsSent:  50,
		PacketsAcked: 48,
		PacketsLost:  2,
		AvgRTT:       45 * time.Millisecond,
		MinRTT:       40 * time.Millisecond,
	}
	// In-flight concurrency: one default micro-batch's worth. Enough to
	// fill every coalesced batch, without modeling every paced flow as its
	// own always-runnable goroutine (a fleet pacing 25 reports/s per app
	// keeps far fewer reports in flight than apps registered, and run-queue
	// depth is itself a per-report cost on the serving path).
	workers := g
	if workers > 64 {
		workers = 64
	}
	// Model training and 10k registrations leave a heap of garbage behind;
	// collect it now so the first timed batches don't pay for it.
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				for j := w; j < len(apps); j += workers {
					if _, err := apps[j].Report(st); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	total := float64(b.N) * float64(g)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/total, "ns/report")
	b.ReportMetric(total/b.Elapsed().Seconds(), "reports/s")
}

// BenchmarkServeReport measures the serving engine: g concurrent apps
// whose Report calls coalesce into batched forward passes (one parameter
// lock and one cache-warm weight walk per batch instead of per decision).
// The win over BenchmarkServeReportSingleSample grows with concurrency —
// at fleet scale the shards run near-full batches.
func BenchmarkServeReport(b *testing.B) {
	for _, g := range []int{64, 10000} {
		b.Run(fmt.Sprintf("apps=%d", g), func(b *testing.B) {
			lib, err := mocc.New(servingModel(b), mocc.WithServing(mocc.ServingOptions{}))
			if err != nil {
				b.Fatal(err)
			}
			defer lib.Close()
			driveReports(b, lib, g)
		})
	}
}

// BenchmarkServeReportSingleSample is the per-call baseline: the same
// workload on a plain library, every Report running its own single-sample
// forward pass under its own parameter-lock acquisition.
func BenchmarkServeReportSingleSample(b *testing.B) {
	for _, g := range []int{64, 10000} {
		b.Run(fmt.Sprintf("apps=%d", g), func(b *testing.B) {
			lib, err := mocc.New(servingModel(b))
			if err != nil {
				b.Fatal(err)
			}
			defer lib.Close()
			driveReports(b, lib, g)
		})
	}
}

// BenchmarkObsOverhead pins the observability tax on the serving hot path:
// the identical fleet workload through the batched engine with full
// observability attached (lock-free counters, latency histogram, event
// log, per-app flight recorders) versus with it disabled. The bar, checked
// against BENCH_serve.json PR over PR: 0 allocs/report in both modes and
// under 5% ns/report regression when enabled.
func BenchmarkObsOverhead(b *testing.B) {
	modes := []struct {
		name string
		opts []mocc.Option
	}{
		{"disabled", nil},
		{"enabled", []mocc.Option{mocc.WithObservability(mocc.ObservabilityOptions{
			Metrics: mocc.NewMetrics(),
		})}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			opts := append([]mocc.Option{mocc.WithServing(mocc.ServingOptions{})}, mode.opts...)
			lib, err := mocc.New(servingModel(b), opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer lib.Close()
			driveReports(b, lib, 64)
		})
	}
}

// BenchmarkServeReportOverload measures the shedding path under sustained
// 2x overload: 128 always-runnable reporters against a single shard whose
// queue bound admits half that (MaxQueue 64) with a 2ms decision deadline.
// Beyond the usual ns/report it records the shed fraction and the p99
// end-to-end decision latency — the resilience claim is that overload
// degrades to bounded-latency NaN answers ("keep your rate"), never to an
// unbounded queue. `make bench-serve` commits both into BENCH_serve.json.
func BenchmarkServeReportOverload(b *testing.B) {
	lib, err := mocc.New(servingModel(b), mocc.WithServing(mocc.ServingOptions{
		Shards:   1,
		MaxBatch: 16,
		MaxQueue: 64,
		Deadline: 2 * time.Millisecond,
	}))
	if err != nil {
		b.Fatal(err)
	}
	defer lib.Close()

	const apps = 256
	handles := make([]*mocc.App, apps)
	for i := range handles {
		if handles[i], err = lib.Register(mocc.BalancedPreference); err != nil {
			b.Fatal(err)
		}
	}
	st := mocc.Status{
		Duration:     40 * time.Millisecond,
		PacketsSent:  50,
		PacketsAcked: 48,
		PacketsLost:  2,
		AvgRTT:       45 * time.Millisecond,
		MinRTT:       40 * time.Millisecond,
	}
	const workers = 128
	lat := make([][]time.Duration, workers)
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			samples := make([]time.Duration, 0, b.N*apps/workers+1)
			for i := 0; i < b.N; i++ {
				for j := w; j < len(handles); j += workers {
					start := time.Now()
					if _, err := handles[j].Report(st); err != nil {
						b.Error(err)
						return
					}
					samples = append(samples, time.Since(start))
				}
			}
			lat[w] = samples
		}(w)
	}
	wg.Wait()
	b.StopTimer()

	var all []time.Duration
	for _, s := range lat {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	stats := lib.ServingStats()
	if decisions := stats.Reports + stats.Shed(); decisions > 0 {
		b.ReportMetric(float64(stats.Shed())/float64(decisions), "shed/report")
	}
	if len(all) > 0 {
		idx := len(all) * 99 / 100
		if idx >= len(all) {
			idx = len(all) - 1
		}
		b.ReportMetric(float64(all[idx]), "p99-ns")
	}
	total := float64(b.N) * float64(apps)
	b.ReportMetric(total/b.Elapsed().Seconds(), "reports/s")
}
