// Package mocc is the public library API of the MOCC multi-objective
// congestion controller (Ma et al., EuroSys 2022): one trained model serves
// any number of applications, each registered with its own performance
// preference over throughput, latency and loss.
//
// The API is built around per-application handles:
//
//	lib, _ := mocc.Train(mocc.QuickTraining())      // or mocc.New(model, opts...)
//	app, _ := lib.Register(mocc.Weights{Thr: 0.8, Lat: 0.1, Loss: 0.1})
//	for each monitor interval {
//	    rate, _ := app.Report(status)               // what the network did → pacing rate
//	}
//
// App.Report is the hot path: it touches only per-application state (each
// handle owns its controller, its telemetry, and a private inference view
// of the shared model), so N applications on N cores never contend. On top
// of the handles, App.SetWeights retunes a live application's preference
// between intervals — the preference sub-network makes weight changes free
// at inference time, no re-registration — and App.Stats reports cumulative
// per-application telemetry. A real UDP socket loop for hosting an App end
// to end lives in the mocc/transport package.
//
// The paper's exact §5 three-call surface (Register/ReportStatus/
// GetSendingRate keyed by AppID) is kept as a thin compatibility layer over
// the handles; see Library.V1.
//
// Unseen preferences work immediately (the preference sub-network
// interpolates between trained landmarks); OnlineAdapt fine-tunes the model
// toward a specific objective without forgetting previously registered ones
// (requirement replay, §4.3).
package mocc

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mocc/internal/cc"
	"mocc/internal/core"
	"mocc/internal/objective"
	"mocc/internal/obs"
	"mocc/internal/rl"
	"mocc/internal/serve"
	"mocc/internal/trace"
)

// Weights expresses an application requirement: the relative importance of
// throughput, latency, and packet loss. Weights must be strictly positive
// and sum to 1; use Normalize for free-form inputs.
type Weights struct {
	Thr, Lat, Loss float64
}

// Common presets matching the paper's evaluation.
var (
	// ThroughputPreference suits bulk and streaming apps (<0.8,0.1,0.1>).
	ThroughputPreference = Weights{0.8, 0.1, 0.1}
	// LatencyPreference suits interactive apps (<0.1,0.8,0.1>).
	LatencyPreference = Weights{0.1, 0.8, 0.1}
	// RTCPreference suits real-time calls (<0.4,0.5,0.1>).
	RTCPreference = Weights{0.4, 0.5, 0.1}
	// BalancedPreference weighs all three metrics equally.
	BalancedPreference = Weights{1.0 / 3, 1.0 / 3, 1.0 / 3}
)

// Normalize clamps and rescales arbitrary non-negative weights onto the
// valid simplex.
func (w Weights) Normalize() Weights {
	n := objective.Weights{Thr: w.Thr, Lat: w.Lat, Loss: w.Loss}.Normalize()
	return Weights{n.Thr, n.Lat, n.Loss}
}

// internal converts to the internal representation, validating first.
func (w Weights) internal() (objective.Weights, error) {
	return objective.New(w.Thr, w.Lat, w.Loss)
}

// Status reports one monitor interval of network behaviour to MOCC
// (the ReportStatus(s_t) call of §5).
type Status struct {
	// Duration of the interval.
	Duration time.Duration
	// PacketsSent / PacketsAcked / PacketsLost during the interval.
	PacketsSent  float64
	PacketsAcked float64
	PacketsLost  float64
	// AvgRTT is the mean round-trip time observed during the interval;
	// MinRTT is the minimum ever observed on the path.
	AvgRTT time.Duration
	MinRTT time.Duration
}

// validate rejects statuses no datapath can legitimately produce. Counters
// are per-interval: acked+lost packets are attributed to the interval that
// reports them, so a caller whose acks lag its sends must fold the
// in-flight carryover into PacketsSent (the mocc/transport sender does).
func (s Status) validate() error {
	if !(s.Duration > 0) {
		return fmt.Errorf("mocc: invalid Status: Duration %v must be positive", s.Duration)
	}
	for _, c := range [...]struct {
		name string
		v    float64
	}{
		{"PacketsSent", s.PacketsSent},
		{"PacketsAcked", s.PacketsAcked},
		{"PacketsLost", s.PacketsLost},
	} {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) || c.v < 0 {
			return fmt.Errorf("mocc: invalid Status: %s = %v (must be a finite non-negative count)", c.name, c.v)
		}
	}
	if s.PacketsAcked+s.PacketsLost > s.PacketsSent {
		return fmt.Errorf("mocc: inconsistent Status: PacketsAcked (%v) + PacketsLost (%v) exceed PacketsSent (%v)",
			s.PacketsAcked, s.PacketsLost, s.PacketsSent)
	}
	if s.AvgRTT < 0 || s.MinRTT < 0 {
		return fmt.Errorf("mocc: invalid Status: negative RTT (avg %v, min %v)", s.AvgRTT, s.MinRTT)
	}
	return nil
}

// report converts to the internal controller report.
func (s Status) report() cc.Report {
	d := s.Duration.Seconds()
	r := cc.Report{
		Duration:  d,
		Sent:      s.PacketsSent,
		Delivered: s.PacketsAcked,
		Lost:      s.PacketsLost,
		AvgRTT:    s.AvgRTT.Seconds(),
		MinRTT:    s.MinRTT.Seconds(),
	}
	if d > 0 {
		r.SendRate = r.Sent / d
		r.Throughput = r.Delivered / d
	}
	if r.Sent > 0 {
		r.LossRate = r.Lost / r.Sent
	}
	return r
}

// AppID identifies a registered application in the §5 compatibility layer
// (see Library.V1); the handle API passes *App values instead.
type AppID int

// Library is a deployable MOCC instance: one model, many applications. All
// methods are safe for concurrent use; the per-application hot path
// (App.Report) runs on per-handle state and scales across cores.
type Library struct {
	model      *core.Model
	adapter    *core.Adapter // nil when built with WithoutAdaptation
	clock      func() time.Time
	initialRTT time.Duration

	// safeMode enables the guarded-inference layer on every registered
	// handle (nil when built with WithoutSafeMode); inferenceFault is the
	// chaos-injection seam of WithInferenceFault.
	safeMode       *SafeModeConfig
	inferenceFault func(act float64) float64

	// engine is the sharded batching inference engine (nil unless built
	// with WithServing); idleTTL/janitorStop/evicted drive its idle-handle
	// janitor and closeOnce makes Library.Close idempotent. bgWG tracks
	// the janitor and canary goroutines so Close can wait for them to
	// exit before the engine goes away; closed marks the library shut
	// down for /healthz.
	engine      *serve.Engine
	idleTTL     time.Duration
	janitorStop chan struct{}
	canaryStop  chan struct{} // stops the epoch canary monitor (nil unless enabled)
	evicted     atomic.Int64
	closeOnce   sync.Once
	closed      atomic.Bool
	bgWG        sync.WaitGroup

	// obs is the observability state (zero unless built with
	// WithObservability; every use is nil-safe).
	obs libObs

	mu     sync.RWMutex // guards apps and nextID only — never held on the hot path
	apps   map[AppID]*App
	nextID AppID

	adaptMu   sync.Mutex     // serializes OnlineAdapt runs against each other
	adaptHook func(iter int) // test seam: runs after each Step under the write lock
}

// TrainingOptions configures offline training (§4.2).
type TrainingOptions struct {
	// Omega is the landmark objective count (Table 2 default: 36).
	Omega int
	// BootstrapIters / TraverseCycles scale the two training phases.
	BootstrapIters  int
	BootstrapCycles int
	TraverseIters   int
	TraverseCycles  int
	// RolloutSteps / EpisodeLen control per-iteration experience.
	RolloutSteps int
	EpisodeLen   int
	// Workers enables parallel rollout collection and data-parallel PPO
	// minibatch updates (per-worker gradients reduced in fixed order, so
	// training stays deterministic for a fixed seed and worker count).
	Workers int
	// Pipelined overlaps the collection of the next iteration's rollouts
	// with the current PPO update (the paper's async-worker layout).
	// Deterministic for a fixed seed and worker count, but the trajectory
	// differs from the serial schedule (rollouts are one update stale).
	Pipelined bool
	// Seed makes training reproducible.
	Seed int64
	// Progress, when non-nil, receives training milestones.
	Progress func(string)
	// Metrics, when non-nil, registers the training-throughput series
	// (mocc_train_*: iterations, environment steps, last-iteration
	// reward, PPO update latency) on the sink — serve it with
	// Metrics.Handler to watch a long offline run live.
	Metrics *Metrics
}

// QuickTraining returns a laptop-scale configuration (seconds of training)
// that exercises every mechanism; FullTraining returns the paper-scale
// settings (ω=36, hours of training).
func QuickTraining() TrainingOptions {
	return TrainingOptions{
		Omega:           3,
		BootstrapIters:  8,
		BootstrapCycles: 2,
		TraverseIters:   1,
		TraverseCycles:  1,
		RolloutSteps:    256,
		EpisodeLen:      64,
		Workers:         4,
		Seed:            1,
	}
}

// FullTraining returns the paper-scale two-phase schedule.
func FullTraining() TrainingOptions {
	return TrainingOptions{
		Omega:           core.OmegaDefault,
		BootstrapIters:  40,
		BootstrapCycles: 10,
		TraverseIters:   2,
		TraverseCycles:  5,
		RolloutSteps:    1024,
		EpisodeLen:      256,
		Workers:         8,
		Seed:            1,
	}
}

// Train runs two-phase offline training on the Table 3 network distribution
// and returns a ready-to-use library; it is TrainModel followed by New.
func Train(opts TrainingOptions, libOpts ...Option) (*Library, error) {
	model, err := TrainModel(opts)
	if err != nil {
		return nil, err
	}
	return New(model, libOpts...)
}

// LoadModel builds a library from a model file produced by Model.Save,
// Library.SaveModel or cmd/mocc-train; it is LoadModelFile followed by New.
func LoadModel(path string, libOpts ...Option) (*Library, error) {
	model, err := LoadModelFile(path)
	if err != nil {
		return nil, err
	}
	return New(model, libOpts...)
}

// Model returns the library's live model handle. The returned *Model
// shares parameter storage with the library (OnlineAdapt mutations are
// visible through it), so it can seed another Library — e.g. one built
// with different options over the same trained weights.
func (l *Library) Model() *Model {
	return &Model{m: l.model}
}

// SaveModel writes the library's (possibly adapted) model to a JSON file.
func (l *Library) SaveModel(path string) error {
	l.model.RLockParams()
	snap := l.model.Snapshot()
	l.model.RUnlockParams()
	return snap.SaveFile(path)
}

// Register announces a new application and its preference (§5's
// Register(w)) and returns its handle. Unseen preferences are served
// immediately by the multi-objective model; the handle's Report hot path
// runs entirely on per-application state.
func (l *Library) Register(w Weights) (*App, error) {
	iw, err := w.internal()
	if err != nil {
		return nil, fmt.Errorf("mocc: invalid weights: %w", err)
	}

	l.mu.Lock()
	id := l.nextID
	l.nextID++
	app := &App{
		lib:     l,
		id:      id,
		weights: iw,
	}
	// With serving enabled the handle's decisions go through the sharded
	// batching engine (one enqueue + one wake per Report, coalesced into a
	// batched forward); otherwise it owns a private single-sample inference
	// view. Both are bit-identical per decision.
	if l.engine != nil {
		app.client = l.engine.NewClient(uint64(id), iw)
		app.pol = app.client
	} else {
		app.pol = l.model.SharedPolicyFor(iw)
	}
	if l.obs.flightDepth > 0 {
		app.flight = obs.NewFlight(l.obs.flightDepth)
	}
	// Safe mode interposes a decision observer between the shared model and
	// the controller; App.SetWeights keeps retuning through app.pol.
	var pol cc.Policy = app.pol
	if l.safeMode != nil || l.inferenceFault != nil {
		app.gp = &guardPolicy{inner: app.pol, fault: l.inferenceFault}
		pol = app.gp
	}
	if l.safeMode != nil {
		app.guard = newGuard(*l.safeMode)
		// Fleet-level fault/trip/recovery counters survive handle churn
		// (per-app guard telemetry dies with its handle); the handle id
		// doubles as the counter stripe.
		app.guard.stripe = int(id)
		app.guard.mFaults = l.obs.faults
		app.guard.mTrips = l.obs.trips
		app.guard.mRecoveries = l.obs.recoveries
	}
	app.alg = cc.NewRLRate(fmt.Sprintf("mocc-app-%d", id), pol, l.model.HistoryLen)
	app.alg.Reset(int64(id))
	app.publishRate(app.alg.InitialRate(l.initialRTT.Seconds()))
	app.tele.registered = l.clock()
	// The pool reference is taken before the handle becomes reachable in
	// the map, so any Unregister (which can only follow reachability) finds
	// its reference already counted.
	if l.adapter != nil {
		l.adapter.Register(iw)
	}
	l.apps[id] = app
	l.mu.Unlock()
	return app, nil
}

// App returns the handle registered under id, if any. It is the bridge
// between the §5 AppID surface and the handle API.
func (l *Library) App(id AppID) (*App, bool) {
	l.mu.RLock()
	app, ok := l.apps[id]
	l.mu.RUnlock()
	return app, ok
}

// Apps returns the number of registered applications.
func (l *Library) Apps() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.apps)
}

// unregister removes a handle: the map entry goes first (new calls can no
// longer reach it), the handle is marked closed, and the preference's
// replay-pool reference is released.
func (l *Library) unregister(a *App) error {
	l.mu.Lock()
	if _, ok := l.apps[a.id]; !ok {
		l.mu.Unlock()
		return fmt.Errorf("mocc: app %d is not registered", a.id)
	}
	delete(l.apps, a.id)
	l.mu.Unlock()

	a.mu.Lock()
	a.closed = true
	// Release inside a.mu: an in-flight SetWeights has either finished its
	// pool transfer (we release the new preference) or hasn't started (it
	// will see closed) — never a half-moved refcount.
	if l.adapter != nil {
		l.adapter.Release(a.weights)
	}
	a.mu.Unlock()
	return nil
}

// OnlineAdapt fine-tunes the model toward w for up to iters iterations
// using transfer learning with requirement replay (§4.3): previously
// registered applications are rehearsed so their policies are preserved.
// It returns the per-iteration reward curve of the new objective.
//
// Each iteration holds the model's parameter write lock, so concurrent
// App.Report calls stall for the duration of one iteration at a time (and
// immediately see the adapted parameters afterwards — live applications
// benefit without re-registration). The adapted objective is retained in
// the replay pool permanently.
//
// Every epoch is validated before it is published: if an iteration leaves
// any parameter non-finite, the model is restored to the last finite epoch
// (still under the write lock, so live applications never observe the
// poisoned parameters) and adaptation aborts with a descriptive error plus
// the reward curve of the iterations that did publish.
func (l *Library) OnlineAdapt(w Weights, iters int) ([]float64, error) {
	iw, err := w.internal()
	if err != nil {
		return nil, fmt.Errorf("mocc: invalid weights: %w", err)
	}
	if iters <= 0 {
		return nil, errors.New("mocc: iters must be positive")
	}
	if l.adapter == nil {
		return nil, errors.New("mocc: library was built without online adaptation (WithoutAdaptation)")
	}
	l.adaptMu.Lock()
	defer l.adaptMu.Unlock()

	l.model.RLockParams()
	ferr := l.model.CheckFinite()
	lastGood := l.model.Snapshot()
	l.model.RUnlockParams()
	if ferr != nil {
		return nil, fmt.Errorf("mocc: refusing to adapt a corrupted model: %w", ferr)
	}

	curve := make([]float64, 0, iters)
	for i := 0; i < iters; i++ {
		l.model.LockParams()
		r := l.adapter.Step(iw)
		if l.adaptHook != nil {
			l.adaptHook(i)
		}
		if ferr := l.model.CheckFinite(); ferr != nil {
			restoreErr := l.model.Restore(lastGood)
			l.model.UnlockParams()
			if restoreErr != nil {
				return curve, fmt.Errorf("mocc: online adaptation diverged at iteration %d (%v) and rollback failed: %w",
					i, ferr, restoreErr)
			}
			return curve, fmt.Errorf("mocc: online adaptation diverged at iteration %d, model restored to the last finite epoch: %w",
				i, ferr)
		}
		lastGood = l.model.Snapshot()
		l.model.UnlockParams()
		curve = append(curve, r)
	}
	l.adapter.Register(iw)
	return curve, nil
}

// trainConfig converts the public options into the internal schedule.
func trainConfig(opts TrainingOptions) core.TrainConfig {
	ppo := rl.DefaultPPOConfig()
	ppo.EntropyInit = 0.03
	ppo.EntropyFinal = 0.002
	ppo.EntropyDecayIters = 60
	ppo.Seed = opts.Seed
	return core.TrainConfig{
		Omega:           opts.Omega,
		BootstrapIters:  opts.BootstrapIters,
		BootstrapCycles: opts.BootstrapCycles,
		TraverseIters:   opts.TraverseIters,
		TraverseCycles:  opts.TraverseCycles,
		RolloutSteps:    opts.RolloutSteps,
		EpisodeLen:      opts.EpisodeLen,
		Workers:         opts.Workers,
		Pipelined:       opts.Pipelined,
		Seed:            opts.Seed,
		PPO:             ppo,
		Envs:            core.TrainingEnvs(trace.TrainingRanges(), core.HistoryLen),
		Progress:        opts.Progress,
		Metrics:         opts.Metrics.Registry(),
	}
}
