// Package mocc is the public library API of the MOCC multi-objective
// congestion controller (Ma et al., EuroSys 2022): one trained model serves
// any number of applications, each registered with its own performance
// preference over throughput, latency and loss.
//
// The deployment surface follows §5 of the paper exactly:
//
//	lib, _ := mocc.Train(mocc.QuickTraining())      // or LoadModel
//	app, _ := lib.Register(mocc.Weights{Thr: 0.8, Lat: 0.1, Loss: 0.1})
//	for each monitor interval {
//	    lib.ReportStatus(app, status)               // what the network did
//	    rate, _ := lib.GetSendingRate(app)          // packets/second to pace at
//	}
//
// Unseen preferences work immediately (the preference sub-network
// interpolates between trained landmarks); OnlineAdapt fine-tunes the model
// toward a specific objective without forgetting previously registered ones
// (requirement replay, §4.3).
package mocc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mocc/internal/cc"
	"mocc/internal/core"
	"mocc/internal/objective"
	"mocc/internal/rl"
	"mocc/internal/trace"
)

// Weights expresses an application requirement: the relative importance of
// throughput, latency, and packet loss. Weights must be strictly positive
// and sum to 1; use Normalize for free-form inputs.
type Weights struct {
	Thr, Lat, Loss float64
}

// Common presets matching the paper's evaluation.
var (
	// ThroughputPreference suits bulk and streaming apps (<0.8,0.1,0.1>).
	ThroughputPreference = Weights{0.8, 0.1, 0.1}
	// LatencyPreference suits interactive apps (<0.1,0.8,0.1>).
	LatencyPreference = Weights{0.1, 0.8, 0.1}
	// RTCPreference suits real-time calls (<0.4,0.5,0.1>).
	RTCPreference = Weights{0.4, 0.5, 0.1}
	// BalancedPreference weighs all three metrics equally.
	BalancedPreference = Weights{1.0 / 3, 1.0 / 3, 1.0 / 3}
)

// Normalize clamps and rescales arbitrary non-negative weights onto the
// valid simplex.
func (w Weights) Normalize() Weights {
	n := objective.Weights{Thr: w.Thr, Lat: w.Lat, Loss: w.Loss}.Normalize()
	return Weights{n.Thr, n.Lat, n.Loss}
}

// internal converts to the internal representation, validating first.
func (w Weights) internal() (objective.Weights, error) {
	return objective.New(w.Thr, w.Lat, w.Loss)
}

// Status reports one monitor interval of network behaviour to MOCC
// (the ReportStatus(s_t) call of §5).
type Status struct {
	// Duration of the interval.
	Duration time.Duration
	// PacketsSent / PacketsAcked / PacketsLost during the interval.
	PacketsSent  float64
	PacketsAcked float64
	PacketsLost  float64
	// AvgRTT is the mean round-trip time observed during the interval;
	// MinRTT is the minimum ever observed on the path.
	AvgRTT time.Duration
	MinRTT time.Duration
}

// report converts to the internal controller report.
func (s Status) report() cc.Report {
	d := s.Duration.Seconds()
	r := cc.Report{
		Duration:  d,
		Sent:      s.PacketsSent,
		Delivered: s.PacketsAcked,
		Lost:      s.PacketsLost,
		AvgRTT:    s.AvgRTT.Seconds(),
		MinRTT:    s.MinRTT.Seconds(),
	}
	if d > 0 {
		r.SendRate = r.Sent / d
		r.Throughput = r.Delivered / d
	}
	if r.Sent > 0 {
		r.LossRate = r.Lost / r.Sent
	}
	return r
}

// AppID identifies a registered application.
type AppID int

// Library is a deployable MOCC instance: one model, many applications.
// All methods are safe for concurrent use.
type Library struct {
	mu      sync.Mutex
	model   *core.Model
	adapter *core.Adapter
	apps    map[AppID]*appState
	nextID  AppID
}

// appState is one registered application's controller.
type appState struct {
	weights objective.Weights
	alg     cc.Algorithm
	rate    float64
}

// TrainingOptions configures offline training (§4.2).
type TrainingOptions struct {
	// Omega is the landmark objective count (Table 2 default: 36).
	Omega int
	// BootstrapIters / TraverseCycles scale the two training phases.
	BootstrapIters  int
	BootstrapCycles int
	TraverseIters   int
	TraverseCycles  int
	// RolloutSteps / EpisodeLen control per-iteration experience.
	RolloutSteps int
	EpisodeLen   int
	// Workers enables parallel rollout collection.
	Workers int
	// Seed makes training reproducible.
	Seed int64
	// Progress, when non-nil, receives training milestones.
	Progress func(string)
}

// QuickTraining returns a laptop-scale configuration (seconds of training)
// that exercises every mechanism; FullTraining returns the paper-scale
// settings (ω=36, hours of training).
func QuickTraining() TrainingOptions {
	return TrainingOptions{
		Omega:           3,
		BootstrapIters:  8,
		BootstrapCycles: 2,
		TraverseIters:   1,
		TraverseCycles:  1,
		RolloutSteps:    256,
		EpisodeLen:      64,
		Workers:         4,
		Seed:            1,
	}
}

// FullTraining returns the paper-scale two-phase schedule.
func FullTraining() TrainingOptions {
	return TrainingOptions{
		Omega:           core.OmegaDefault,
		BootstrapIters:  40,
		BootstrapCycles: 10,
		TraverseIters:   2,
		TraverseCycles:  5,
		RolloutSteps:    1024,
		EpisodeLen:      256,
		Workers:         8,
		Seed:            1,
	}
}

// Train runs two-phase offline training on the Table 3 network distribution
// and returns a ready-to-use library.
func Train(opts TrainingOptions) (*Library, error) {
	model := core.NewModel(core.HistoryLen, opts.Seed)
	ppo := rl.DefaultPPOConfig()
	ppo.EntropyInit = 0.03
	ppo.EntropyFinal = 0.002
	ppo.EntropyDecayIters = 60
	ppo.Seed = opts.Seed
	cfg := core.TrainConfig{
		Omega:           opts.Omega,
		BootstrapIters:  opts.BootstrapIters,
		BootstrapCycles: opts.BootstrapCycles,
		TraverseIters:   opts.TraverseIters,
		TraverseCycles:  opts.TraverseCycles,
		RolloutSteps:    opts.RolloutSteps,
		EpisodeLen:      opts.EpisodeLen,
		Workers:         opts.Workers,
		Seed:            opts.Seed,
		PPO:             ppo,
		Envs:            core.TrainingEnvs(trace.TrainingRanges(), core.HistoryLen),
		Progress:        opts.Progress,
	}
	trainer, err := core.NewOfflineTrainer(model, cfg)
	if err != nil {
		return nil, fmt.Errorf("mocc: configuring trainer: %w", err)
	}
	if _, err := trainer.Run(); err != nil {
		return nil, fmt.Errorf("mocc: offline training: %w", err)
	}
	return newLibrary(model)
}

// LoadModel builds a library from a model file produced by SaveModel or
// cmd/mocc-train.
func LoadModel(path string) (*Library, error) {
	model := core.NewModel(core.HistoryLen, 0)
	snap, err := loadSnapshot(path)
	if err != nil {
		return nil, err
	}
	if err := model.Restore(snap); err != nil {
		return nil, fmt.Errorf("mocc: restoring model: %w", err)
	}
	return newLibrary(model)
}

// newLibrary wires a model into a library with online adaptation ready.
func newLibrary(model *core.Model) (*Library, error) {
	acfg := core.DefaultAdaptConfig()
	acfg.Envs = core.TrainingEnvs(trace.TrainingRanges(), core.HistoryLen)
	adapter, err := core.NewAdapter(model, acfg)
	if err != nil {
		return nil, fmt.Errorf("mocc: configuring adapter: %w", err)
	}
	return &Library{
		model:   model,
		adapter: adapter,
		apps:    make(map[AppID]*appState),
	}, nil
}

// SaveModel writes the trained model to a JSON file.
func (l *Library) SaveModel(path string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.model.Snapshot().SaveFile(path)
}

// Register announces a new application and its preference (§5's
// Register(w)). The returned AppID scopes the other calls. Unseen
// preferences are served immediately by the multi-objective model.
func (l *Library) Register(w Weights) (AppID, error) {
	iw, err := w.internal()
	if err != nil {
		return 0, fmt.Errorf("mocc: invalid weights: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	id := l.nextID
	l.nextID++
	alg := l.model.AlgorithmFor(fmt.Sprintf("mocc-app-%d", id), iw)
	alg.Reset(int64(id))
	l.apps[id] = &appState{
		weights: iw,
		alg:     alg,
		rate:    alg.InitialRate(0.04),
	}
	l.adapter.Register(iw)
	return id, nil
}

// Unregister removes an application.
func (l *Library) Unregister(id AppID) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.apps[id]; !ok {
		return fmt.Errorf("mocc: unknown app %d", id)
	}
	delete(l.apps, id)
	return nil
}

// ReportStatus feeds the latest interval measurements for an application
// (§5's ReportStatus(s_t)) and recomputes its sending rate.
func (l *Library) ReportStatus(id AppID, st Status) error {
	if st.Duration <= 0 {
		return errors.New("mocc: Status.Duration must be positive")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	app, ok := l.apps[id]
	if !ok {
		return fmt.Errorf("mocc: unknown app %d", id)
	}
	app.rate = app.alg.Update(st.report())
	return nil
}

// GetSendingRate returns the current pacing rate in packets/second for the
// application (§5's GetSendingRate()).
func (l *Library) GetSendingRate(id AppID) (float64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	app, ok := l.apps[id]
	if !ok {
		return 0, fmt.Errorf("mocc: unknown app %d", id)
	}
	return app.rate, nil
}

// Apps returns the number of registered applications.
func (l *Library) Apps() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.apps)
}

// OnlineAdapt fine-tunes the model toward w for up to iters iterations
// using transfer learning with requirement replay (§4.3): previously
// registered applications are rehearsed so their policies are preserved.
// It returns the per-iteration reward curve of the new objective.
func (l *Library) OnlineAdapt(w Weights, iters int) ([]float64, error) {
	iw, err := w.internal()
	if err != nil {
		return nil, fmt.Errorf("mocc: invalid weights: %w", err)
	}
	if iters <= 0 {
		return nil, errors.New("mocc: iters must be positive")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	curve := make([]float64, 0, iters)
	for i := 0; i < iters; i++ {
		curve = append(curve, l.adapter.Step(iw))
	}
	l.adapter.Register(iw)
	return curve, nil
}
