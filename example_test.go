package mocc_test

import (
	"fmt"
	"log"
	"time"

	"mocc"
)

// ExampleLibrary_Register shows the handle-based deployment loop: one
// trained model, one handle per application, one Report call per monitor
// interval.
func ExampleLibrary_Register() {
	lib, err := mocc.Train(mocc.QuickTraining())
	if err != nil {
		log.Fatal(err)
	}
	app, err := lib.Register(mocc.ThroughputPreference)
	if err != nil {
		log.Fatal(err)
	}
	defer app.Unregister()

	// Each monitor interval: tell MOCC what the network did, get the
	// pacing rate for the next interval back.
	rate, err := app.Report(mocc.Status{
		Duration:     40 * time.Millisecond,
		PacketsSent:  100,
		PacketsAcked: 97,
		PacketsLost:  3,
		AvgRTT:       52 * time.Millisecond,
		MinRTT:       40 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pace at %.0f packets/second\n", rate)
}

// ExampleApp_Report drives a few intervals and reads the handle's
// cumulative telemetry.
func ExampleApp_Report() {
	lib, err := mocc.Train(mocc.QuickTraining())
	if err != nil {
		log.Fatal(err)
	}
	app, _ := lib.Register(mocc.RTCPreference)
	defer app.Unregister()

	for i := 0; i < 25; i++ {
		sent := app.Rate() * 0.04 // what the pacer did last interval
		if _, err := app.Report(mocc.Status{
			Duration:     40 * time.Millisecond,
			PacketsSent:  sent,
			PacketsAcked: sent,
			AvgRTT:       44 * time.Millisecond,
			MinRTT:       40 * time.Millisecond,
		}); err != nil {
			log.Fatal(err)
		}
	}

	s := app.Stats()
	fmt.Printf("%d intervals, %.0f pkts delivered, loss %.1f%%\n",
		s.Reports, s.PacketsAcked, s.LossRate*100)
}

// ExampleApp_SetWeights retunes a live application's preference — the call
// ends, the same connection becomes a download — without re-registration:
// rate, feature history and probe state all carry over, only the objective
// changes.
func ExampleApp_SetWeights() {
	lib, err := mocc.Train(mocc.QuickTraining())
	if err != nil {
		log.Fatal(err)
	}
	app, _ := lib.Register(mocc.RTCPreference) // starts as a call
	defer app.Unregister()

	// ... the call ends; the connection now moves bulk data.
	if err := app.SetWeights(mocc.ThroughputPreference); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("now optimizing for %+v\n", app.Weights())
}

// ExampleLibrary_V1 is the paper's exact §5 three-call loop, served by the
// compatibility layer over the handles.
func ExampleLibrary_V1() {
	lib, err := mocc.Train(mocc.QuickTraining())
	if err != nil {
		log.Fatal(err)
	}
	v1 := lib.V1()
	id, err := v1.Register(mocc.Weights{Thr: 0.8, Lat: 0.1, Loss: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	defer v1.Unregister(id)

	st := mocc.Status{
		Duration:     40 * time.Millisecond,
		PacketsSent:  100,
		PacketsAcked: 100,
		AvgRTT:       41 * time.Millisecond,
		MinRTT:       40 * time.Millisecond,
	}
	if err := v1.ReportStatus(id, st); err != nil {
		log.Fatal(err)
	}
	rate, err := v1.GetSendingRate(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pace at %.0f packets/second\n", rate)
}
