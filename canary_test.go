package mocc

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// poisonedClone deep-copies the model and rigs the actor parameters so that
// every value is huge but finite: the clone sails through Publish's
// CheckFinite gate, yet the very first forward pass overflows to ±Inf (the
// actor trunk's output is linear), which is exactly the class of failure the
// epoch canary exists to catch.
func poisonedClone(m *Model) *Model {
	c := perturbedClone(m, 0)
	for _, p := range c.m.ActorParams() {
		for i := range p.Value {
			p.Value[i] = 1e308
		}
	}
	return c
}

// reportAll drives one synthetic monitor interval through every app.
func reportAll(t *testing.T, apps []*App, round int) {
	t.Helper()
	for i, a := range apps {
		if _, err := a.Report(servingStatus(i, round)); err != nil {
			t.Fatalf("app %d round %d: %v", i, round, err)
		}
	}
}

// TestCanaryAutoRollback is the poisoned-publish chaos pin: a model that
// passes the finite check but decides pathologically must be rolled back by
// the fleet health monitor within its observation window, with the fleet
// recovering to clean learned decisions on the restored generation.
func TestCanaryAutoRollback(t *testing.T) {
	model := perturbedClone(sharedLibrary(t).Model(), 0)
	events := make(chan RollbackEvent, 4)
	lib, err := New(model, WithServing(ServingOptions{
		Shards: 2,
		Canary: &CanaryConfig{
			Window:       10 * time.Second, // judged well before expiry
			Interval:     5 * time.Millisecond,
			MaxFaultRate: 0.1,
			MinReports:   20,
			OnRollback:   func(ev RollbackEvent) { events <- ev },
		},
	}), WithoutAdaptation())
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Close()

	apps := make([]*App, 4)
	for i := range apps {
		if apps[i], err = lib.Register(Weights{0.4, 0.3, 0.3}); err != nil {
			t.Fatal(err)
		}
	}
	// Healthy baseline on the boot generation.
	for round := 0; round < 5; round++ {
		reportAll(t, apps, round)
	}
	for i, a := range apps {
		if f := a.Stats().Faults; f != 0 {
			t.Fatalf("app %d: %d faults on the healthy model", i, f)
		}
	}

	bad := poisonedClone(model)
	ep, err := lib.Publish(bad)
	if err != nil {
		t.Fatalf("poisoned model must pass the finite gate, got: %v", err)
	}
	if ep != 1 {
		t.Fatalf("poisoned epoch = %d, want 1", ep)
	}

	// Keep the fleet reporting until the canary condemns the epoch.
	var ev RollbackEvent
	deadline := time.After(30 * time.Second)
	round := 5
loop:
	for {
		select {
		case ev = <-events:
			break loop
		case <-deadline:
			t.Fatalf("no rollback within deadline; epoch=%d stats=%+v",
				lib.Epoch(), lib.ServingStats())
		default:
		}
		reportAll(t, apps, round)
		round++
	}
	if ev.From != 1 || ev.To != 2 {
		t.Fatalf("rollback %d -> %d, want 1 -> 2", ev.From, ev.To)
	}
	if ev.Faults == 0 || ev.Reports < 20 {
		t.Fatalf("rollback event under-evidenced: %+v", ev)
	}
	if got := lib.Epoch(); got != 2 {
		t.Fatalf("epoch after rollback = %d, want 2", got)
	}
	if st := lib.ServingStats(); st.Rollbacks != 1 {
		t.Fatalf("Rollbacks = %d, want 1", st.Rollbacks)
	}

	// The fleet degraded to the AIMD fallback while poisoned; on the
	// restored generation the shadow decisions come back clean and every
	// app must recover to the learned path (RecoverAfter=5 by default).
	for r := 0; r < 20; r++ {
		reportAll(t, apps, round)
		round++
	}
	for i, a := range apps {
		st := a.Stats()
		if st.Faults == 0 {
			t.Fatalf("app %d never faulted under the poisoned epoch", i)
		}
		if st.FallbackActive {
			t.Fatalf("app %d still degraded after rollback: %+v", i, st)
		}
		if r := a.Rate(); math.IsNaN(r) || math.IsInf(r, 0) {
			t.Fatalf("app %d rate %v after recovery", i, r)
		}
	}
}

// TestCanaryPromotesCleanEpoch pins the no-false-positive side: a healthy
// publish must survive its observation window without being rolled back.
func TestCanaryPromotesCleanEpoch(t *testing.T) {
	model := perturbedClone(sharedLibrary(t).Model(), 0)
	events := make(chan RollbackEvent, 4)
	lib, err := New(model, WithServing(ServingOptions{
		Shards: 2,
		Canary: &CanaryConfig{
			Window:       200 * time.Millisecond,
			Interval:     5 * time.Millisecond,
			MaxFaultRate: 0.05,
			MinReports:   10,
			OnRollback:   func(ev RollbackEvent) { events <- ev },
		},
	}), WithoutAdaptation())
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Close()

	apps := make([]*App, 3)
	for i := range apps {
		if apps[i], err = lib.Register(Weights{0.4, 0.3, 0.3}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := lib.Publish(perturbedClone(model, 1e-6)); err != nil {
		t.Fatal(err)
	}
	stop := time.After(500 * time.Millisecond) // window + slack
	round := 0
	for {
		select {
		case ev := <-events:
			t.Fatalf("clean epoch rolled back: %+v", ev)
		case <-stop:
			if st := lib.ServingStats(); st.Rollbacks != 0 || st.Epoch != 1 {
				t.Fatalf("epoch %d rollbacks %d, want epoch 1 with none",
					st.Epoch, st.Rollbacks)
			}
			return
		default:
		}
		reportAll(t, apps, round)
		round++
	}
}

// TestManualRollback pins Library.Rollback: the displaced generation is
// re-installed as a new epoch and the library model resyncs to the
// parameters actually being served.
func TestManualRollback(t *testing.T) {
	model := perturbedClone(sharedLibrary(t).Model(), 0)
	ref := model.m.ActorParams()[0].Value[0]

	lib, err := New(model, WithServing(ServingOptions{Shards: 2}), WithoutAdaptation())
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Close()

	if _, err := lib.Rollback(); err == nil {
		t.Fatal("Rollback before any Publish must fail")
	}
	if _, err := lib.Publish(perturbedClone(model, 0.5)); err != nil {
		t.Fatal(err)
	}
	if got := lib.Model().m.ActorParams()[0].Value[0]; got != ref+0.5 {
		t.Fatalf("library model not synced to publish: %v, want %v", got, ref+0.5)
	}
	seq, err := lib.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 || lib.Epoch() != 2 {
		t.Fatalf("rollback epoch = %d (Epoch %d), want 2", seq, lib.Epoch())
	}
	if got := lib.Model().m.ActorParams()[0].Value[0]; got != ref {
		t.Fatalf("library model not synced to rollback: %v, want %v", got, ref)
	}
	// A second Rollback re-installs the displaced perturbed generation.
	if seq, err = lib.Rollback(); err != nil || seq != 3 {
		t.Fatalf("redo rollback = (%d, %v), want (3, nil)", seq, err)
	}
	if got := lib.Model().m.ActorParams()[0].Value[0]; got != ref+0.5 {
		t.Fatalf("redo did not restore the perturbed generation: %v", got)
	}

	plain, err := New(model, WithoutAdaptation())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.Rollback(); err == nil {
		t.Fatal("Rollback without serving must fail")
	}
}

// TestServingStateRoundTrip pins the crash-safe daemon snapshot: epoch and
// model survive a save/load cycle bit-exactly, and corrupted or truncated
// state files are rejected instead of resuming garbage.
func TestServingStateRoundTrip(t *testing.T) {
	model := perturbedClone(sharedLibrary(t).Model(), 0.25)
	path := filepath.Join(t.TempDir(), "serve.state")

	if err := SaveServingState(path, 7, model); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind after atomic rename")
	}
	epoch, restored, err := LoadServingState(path)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 7 {
		t.Fatalf("epoch = %d, want 7", epoch)
	}
	want := model.m.ActorParams()
	got := restored.m.ActorParams()
	if len(want) != len(got) {
		t.Fatalf("param count %d != %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i].Value {
			if got[i].Value[j] != want[i].Value[j] {
				t.Fatalf("param %d[%d]: %v != %v", i, j, got[i].Value[j], want[i].Value[j])
			}
		}
	}

	// Truncated mid-write (no atomic rename): must be rejected.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(t.TempDir(), "torn.state")
	if err := os.WriteFile(torn, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadServingState(torn); err == nil {
		t.Fatal("truncated state accepted")
	}

	// Wrong format marker: must be rejected.
	bad := filepath.Join(t.TempDir(), "bad.state")
	if err := os.WriteFile(bad, []byte(`{"format":"not-a-state","epoch":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadServingState(bad); err == nil {
		t.Fatal("foreign format accepted")
	}
	if _, _, err := LoadServingState(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}
