// Benchmarks: one target per table/figure in the paper's evaluation (§6).
// Each benchmark runs a scaled-down version of the corresponding experiment
// and reports its headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the full result set. cmd/mocc-bench prints the same
// experiments as full tables (use -scale standard there for higher-fidelity
// models).
package mocc_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mocc"
	"mocc/internal/apps"
	"mocc/internal/cc"
	"mocc/internal/core"
	"mocc/internal/datapath"
	"mocc/internal/objective"
	"mocc/internal/pantheon"
	"mocc/internal/stats"
	"mocc/internal/trace"
)

// Benchmarks share one Quick-scale zoo; training happens once, outside any
// timed region.
var (
	benchOnce sync.Once
	benchZoo  *pantheon.Zoo
)

func zoo(b *testing.B) *pantheon.Zoo {
	b.Helper()
	benchOnce.Do(func() {
		benchZooLocal := pantheon.NewZoo(pantheon.Quick, 1)
		benchZooLocal.MOCC() // pre-train outside timed regions
		benchZoo = benchZooLocal
	})
	return benchZoo
}

func BenchmarkFig1aMotivationThroughput(b *testing.B) {
	s := pantheon.NewSchemes(zoo(b))
	b.ResetTimer()
	var res pantheon.Fig1aResult
	for i := 0; i < b.N; i++ {
		res = pantheon.RunFig1a(s, pantheon.Fig1aConfig{DurationSec: 50, Seed: 1})
	}
	for _, series := range res.Series {
		b.ReportMetric(stats.Mean(series.ThrMbps), series.Scheme+"_Mbps")
	}
}

func BenchmarkFig1bThroughputLatencyEllipse(b *testing.B) {
	s := pantheon.NewSchemes(zoo(b))
	b.ResetTimer()
	var res pantheon.Fig1bResult
	for i := 0; i < b.N; i++ {
		res = pantheon.RunFig1b(s, 6, 150, 1)
	}
	b.ReportMetric(res.MOCCRange[1].MeanThrMbps, "mocc_thr_Mbps")
	b.ReportMetric(res.MOCCRange[0].MeanLatencyMs, "mocc_lat_ms")
}

func BenchmarkFig1cAuroraRetraining(b *testing.B) {
	z := zoo(b)
	b.ResetTimer()
	var res pantheon.Fig1cResult
	for i := 0; i < b.N; i++ {
		res = pantheon.RunFig1c(z, 20)
	}
	b.ReportMetric(float64(res.ConvergedAt), "converge_iter")
}

func BenchmarkFig5Throughput(b *testing.B) {
	s := pantheon.NewSchemes(zoo(b))
	b.ResetTimer()
	var res pantheon.SweepResult
	for i := 0; i < b.N; i++ {
		res = pantheon.RunSweep(s, pantheon.SweepConfig{Axis: pantheon.AxisBandwidth, Steps: 120, Seed: 1})
	}
	for _, name := range []string{"mocc-throughput", "cubic", "bbr"} {
		if series := res.SeriesFor(name); series != nil {
			b.ReportMetric(stats.Mean(series.Util), name+"_util")
		}
	}
}

// BenchmarkFig5ThroughputSerial pins the sweep to one worker; compared with
// BenchmarkFig5Throughput (whose zero Workers selects GOMAXPROCS) it
// measures the scenario scheduler's wall-clock gain. Both produce
// byte-identical tables.
func BenchmarkFig5ThroughputSerial(b *testing.B) {
	s := pantheon.NewSchemes(zoo(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pantheon.RunSweep(s, pantheon.SweepConfig{
			Axis: pantheon.AxisBandwidth, Steps: 120, Seed: 1, Workers: 1,
		})
	}
}

func BenchmarkFig5Latency(b *testing.B) {
	s := pantheon.NewSchemes(zoo(b))
	b.ResetTimer()
	var res pantheon.SweepResult
	for i := 0; i < b.N; i++ {
		res = pantheon.RunSweep(s, pantheon.SweepConfig{Axis: pantheon.AxisLatency, Steps: 120, Seed: 1})
	}
	for _, name := range []string{"mocc-latency", "cubic", "bbr"} {
		if series := res.SeriesFor(name); series != nil {
			b.ReportMetric(stats.Mean(series.LatR), name+"_latratio")
		}
	}
}

func BenchmarkFig6HundredObjectives(b *testing.B) {
	s := pantheon.NewSchemes(zoo(b))
	b.ResetTimer()
	var res pantheon.Fig6Result
	for i := 0; i < b.N; i++ {
		res = pantheon.RunFig6(s, pantheon.Fig6Config{Objectives: 20, Conditions: 3, Steps: 100, Seed: 1})
	}
	for _, name := range []string{"mocc", "enhanced-aurora", "aurora", "cubic"} {
		b.ReportMetric(res.MeanReward(name), name+"_reward")
	}
}

func BenchmarkFig7aQuickAdaptation(b *testing.B) {
	z := zoo(b)
	cfg := pantheon.DefaultFig7Config()
	cfg.Iters = 16
	cfg.SnapshotEvery = 0
	b.ResetTimer()
	var res pantheon.Fig7Result
	for i := 0; i < b.N; i++ {
		res = pantheon.RunFig7(z, cfg)
	}
	b.ReportMetric(float64(res.MOCCConverge), "mocc_converge_iter")
	b.ReportMetric(float64(res.AuroraConverge), "aurora_converge_iter")
	b.ReportMetric(res.InitialGain, "initial_gain")
}

func BenchmarkFig7bNoForgetting(b *testing.B) {
	z := zoo(b)
	cfg := pantheon.DefaultFig7Config()
	cfg.Iters = 16
	cfg.SnapshotEvery = 8
	cfg.EvalSteps = 100
	b.ResetTimer()
	var res pantheon.Fig7Result
	for i := 0; i < b.N; i++ {
		res = pantheon.RunFig7(z, cfg)
	}
	if n := len(res.OldAppMOCC); n > 0 {
		b.ReportMetric(res.OldAppMOCC[n-1], "mocc_oldapp_reward")
	}
	if n := len(res.OldAppAurora); n > 0 {
		b.ReportMetric(res.OldAppAurora[n-1], "aurora_oldapp_reward")
	}
}

func BenchmarkFig8VideoStreaming(b *testing.B) {
	s := pantheon.NewSchemes(zoo(b))
	cfg := apps.DefaultVideoConfig()
	cfg.DurationSec = 50
	b.ResetTimer()
	var res pantheon.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = pantheon.RunFig8(s, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, session := range res.Sessions {
		b.ReportMetric(session.AvgThroughput, session.Scheme+"_Mbps")
	}
}

func BenchmarkFig9RealTimeComm(b *testing.B) {
	s := pantheon.NewSchemes(zoo(b))
	cfg := apps.DefaultRTCConfig()
	cfg.DurationSec = 30
	b.ResetTimer()
	var res pantheon.Fig9Result
	for i := 0; i < b.N; i++ {
		res = pantheon.RunFig9(s, cfg)
	}
	for _, session := range res.Sessions {
		b.ReportMetric(session.MeanMs, session.Scheme+"_gap_ms")
	}
}

func BenchmarkFig10BulkTransfer(b *testing.B) {
	s := pantheon.NewSchemes(zoo(b))
	cfg := apps.DefaultBulkConfig()
	cfg.FileMBytes = 4
	cfg.Transfers = 4
	b.ResetTimer()
	var res pantheon.Fig10Result
	for i := 0; i < b.N; i++ {
		res = pantheon.RunFig10(s, cfg)
	}
	for _, r := range res.Results {
		b.ReportMetric(r.MeanFCT, r.Scheme+"_fct_s")
	}
}

func BenchmarkFig11FairnessDynamics(b *testing.B) {
	cfg := pantheon.DefaultFairnessConfig()
	cfg.StaggerSec = 20
	cfg.DurationSec = 80
	b.ResetTimer()
	var res pantheon.FairnessResult
	for i := 0; i < b.N; i++ {
		res = pantheon.RunFairness(func() cc.Algorithm { return cc.NewCubic() }, "cubic", cfg)
	}
	b.ReportMetric(stats.Mean(res.JainPerSec), "cubic_jain")
}

func BenchmarkFig12JainIndex(b *testing.B) {
	s := pantheon.NewSchemes(zoo(b))
	cfg := pantheon.DefaultFairnessConfig()
	cfg.StaggerSec = 20
	cfg.DurationSec = 80
	b.ResetTimer()
	var res pantheon.Fig12Result
	for i := 0; i < b.N; i++ {
		res = pantheon.RunFig12(s, cfg)
	}
	for _, name := range []string{"cubic", "mocc-balance", "bbr"} {
		if xs := res.Jain[name]; len(xs) > 0 {
			b.ReportMetric(stats.Mean(xs), name+"_jain")
		}
	}
}

func BenchmarkFig13VariantCompetition(b *testing.B) {
	s := pantheon.NewSchemes(zoo(b))
	cfg := pantheon.DefaultCompeteConfig()
	b.ResetTimer()
	var res pantheon.Fig13Result
	for i := 0; i < b.N; i++ {
		res = pantheon.RunFig13(s, cfg)
	}
	for _, p := range res.Pairs {
		b.ReportMetric(p.Ratio, p.LabelA+"_vs_"+p.LabelB)
	}
}

func BenchmarkFig14WeightFriendliness(b *testing.B) {
	s := pantheon.NewSchemes(zoo(b))
	cfg := pantheon.DefaultCompeteConfig()
	b.ResetTimer()
	var res pantheon.Fig14Result
	for i := 0; i < b.N; i++ {
		res = pantheon.RunFig14(s, cfg, []float64{20, 60})
	}
	for wi, ratios := range res.Ratios {
		b.ReportMetric(stats.Mean(ratios), fmt.Sprintf("w%d_ratio", wi+1))
	}
}

func BenchmarkFig15TCPFriendliness(b *testing.B) {
	s := pantheon.NewSchemes(zoo(b))
	cfg := pantheon.DefaultCompeteConfig()
	b.ResetTimer()
	var res pantheon.Fig15Result
	for i := 0; i < b.N; i++ {
		res = pantheon.RunFig15(s, cfg, []float64{20, 80})
	}
	for _, name := range []string{"mocc-throughput", "mocc-latency", "bbr", "vegas"} {
		if xs := res.Ratios[name]; len(xs) > 0 {
			b.ReportMetric(stats.Mean(xs), name+"_vs_cubic")
		}
	}
}

func BenchmarkFig16OmegaSweep(b *testing.B) {
	b.ResetTimer()
	var res pantheon.Fig16Result
	for i := 0; i < b.N; i++ {
		res = pantheon.RunFig16(pantheon.Fig16Config{
			Omegas: []int{3, 6, 10}, EvalObjectives: 8, EvalSteps: 80, Seed: 1,
		})
	}
	for _, omega := range []int{3, 6, 10} {
		b.ReportMetric(stats.Mean(res.Rewards[omega]), "omega")
	}
}

func BenchmarkFig17CPUOverhead(b *testing.B) {
	z := zoo(b)
	model := z.MOCC()
	mk := func(name string) cc.Algorithm {
		return model.AlgorithmFor(name, objective.ThroughputPref)
	}
	cfg := datapath.DefaultOverheadConfig()
	cfg.DurationSec = 10
	b.ResetTimer()
	var rows []datapath.Overhead
	for i := 0; i < b.N; i++ {
		rows = datapath.MeasureOverhead([]datapath.OverheadScheme{
			{Label: "cubic-kernel", Alg: cc.NewCubic(), Mode: datapath.KernelSpace},
			{Label: "mocc-ccp", Alg: mk("mocc-ccp"), Mode: datapath.KernelSpace},
			{Label: "mocc-udt", Alg: mk("mocc-udt"), Mode: datapath.UserSpace},
		}, cfg)
	}
	for _, o := range rows {
		b.ReportMetric(o.CPUShare, o.Scheme+"_us_per_s")
	}
}

func BenchmarkFig18PPOvsDQN(b *testing.B) {
	z := zoo(b)
	b.ResetTimer()
	var res pantheon.Fig18Result
	for i := 0; i < b.N; i++ {
		res = pantheon.RunFig18(z, pantheon.Fig18Config{
			EvalObjectives: 6, EvalConditions: 2, EvalSteps: 100, Seed: 1,
		})
	}
	b.ReportMetric(stats.Mean(res.PPORewards), "ppo_reward")
	b.ReportMetric(stats.Mean(res.DQNRewards), "dqn_reward")
}

func BenchmarkFig19TrainingSpeedup(b *testing.B) {
	cfg := pantheon.DefaultFig19Config()
	cfg.Omega = 6
	cfg.ItersPerObjective = 4
	cfg.RolloutSteps = 128
	b.ResetTimer()
	var res pantheon.Fig19Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = pantheon.RunFig19(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SpeedupTransfer, "transfer_speedup")
	b.ReportMetric(res.SpeedupParallel, "parallel_speedup")
}

// BenchmarkTable2Inference measures the per-decision cost of the MOCC
// policy network (Table 2 architecture), the quantity behind Figure 17's
// user-space overhead.
func BenchmarkTable2Inference(b *testing.B) {
	model := core.NewModel(core.HistoryLen, 1)
	w := objective.ThroughputPref
	obs := make([]float64, 3*core.HistoryLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = model.ActFor(w, obs)
	}
}

// BenchmarkTable3Simulator measures raw simulator throughput: monitor
// intervals per second for the training environment.
func BenchmarkTable3Simulator(b *testing.B) {
	factory := core.TrainingEnvs(traceTrainingRanges(), core.HistoryLen)
	env := factory(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.ApplyAction(0.1)
		env.Step()
	}
}

// traceTrainingRanges avoids an extra import alias in the benchmark above.
func traceTrainingRanges() trace.NetRanges { return trace.TrainingRanges() }

// Contention-benchmark library: trained once, outside any timed region.
var (
	contOnce sync.Once
	contLib  *mocc.Library
	contErr  error
)

func contentionLibrary(b *testing.B) *mocc.Library {
	b.Helper()
	contOnce.Do(func() {
		opts := mocc.QuickTraining()
		opts.Omega = 3
		opts.BootstrapIters = 4
		opts.BootstrapCycles = 1
		opts.TraverseCycles = 0
		contLib, contErr = mocc.Train(opts)
	})
	if contErr != nil {
		b.Fatalf("training library: %v", contErr)
	}
	return contLib
}

// BenchmarkLibraryContention measures the handle hot path under
// shard-parallel load: G goroutines drive G independent apps, each
// goroutine performing b.N Report calls on its own handle. Because every
// handle owns its controller, telemetry, and inference scratch, the
// per-report cost (the ns/report metric) stays roughly flat as G grows —
// there is no global lock to serialize on (the only shared touch is the
// uncontended read side of the model's parameter lock).
func BenchmarkLibraryContention(b *testing.B) {
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("apps=%d", g), func(b *testing.B) {
			lib := contentionLibrary(b)
			apps := make([]*mocc.App, g)
			for i := range apps {
				app, err := lib.Register(mocc.BalancedPreference)
				if err != nil {
					b.Fatal(err)
				}
				apps[i] = app
			}
			defer func() {
				for _, app := range apps {
					_ = app.Unregister()
				}
			}()
			st := mocc.Status{
				Duration:     40 * time.Millisecond,
				PacketsSent:  50,
				PacketsAcked: 48,
				PacketsLost:  2,
				AvgRTT:       45 * time.Millisecond,
				MinRTT:       40 * time.Millisecond,
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for _, app := range apps {
				wg.Add(1)
				go func(app *mocc.App) {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						if _, err := app.Report(st); err != nil {
							b.Error(err)
							return
						}
					}
				}(app)
			}
			wg.Wait()
			b.StopTimer()
			// Total work is b.N reports per app across g goroutines.
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(g), "ns/report")
		})
	}
}
