package mocc

import (
	"fmt"

	"mocc/internal/nn"
)

// loadSnapshot reads a model snapshot from disk and validates it before it
// can reach a live model: a checkpoint containing NaN/Inf parameters (a
// diverged training run, a truncated or bit-flipped file) is rejected with
// an error naming the offending tensor rather than silently poisoning every
// application the model would serve.
func loadSnapshot(path string) (nn.Snapshot, error) {
	snap, err := nn.LoadFile(path)
	if err != nil {
		return nn.Snapshot{}, fmt.Errorf("mocc: loading model %q: %w", path, err)
	}
	if err := snap.Validate(); err != nil {
		return nn.Snapshot{}, fmt.Errorf("mocc: model %q is corrupted: %w", path, err)
	}
	return snap, nil
}
