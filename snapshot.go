package mocc

import (
	"fmt"

	"mocc/internal/nn"
)

// loadSnapshot reads a model snapshot from disk.
func loadSnapshot(path string) (nn.Snapshot, error) {
	snap, err := nn.LoadFile(path)
	if err != nil {
		return nn.Snapshot{}, fmt.Errorf("mocc: loading model %q: %w", path, err)
	}
	return snap, nil
}
