package mocc

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"mocc/internal/core"
	"mocc/internal/nn"
)

// loadSnapshot reads a model snapshot from disk and validates it before it
// can reach a live model: a checkpoint containing NaN/Inf parameters (a
// diverged training run, a truncated or bit-flipped file) is rejected with
// an error naming the offending tensor rather than silently poisoning every
// application the model would serve.
func loadSnapshot(path string) (nn.Snapshot, error) {
	snap, err := nn.LoadFile(path)
	if err != nil {
		return nn.Snapshot{}, fmt.Errorf("mocc: loading model %q: %w", path, err)
	}
	if err := snap.Validate(); err != nil {
		return nn.Snapshot{}, fmt.Errorf("mocc: model %q is corrupted: %w", path, err)
	}
	return snap, nil
}

// servingStateFormat versions the crash-safe daemon snapshot written by
// SaveServingState.
const servingStateFormat = "mocc-serving-state-v1"

// servingStateFile is the on-disk form: the served model generation plus
// its epoch sequence number, in one document so the pair can never tear.
type servingStateFile struct {
	Format string      `json:"format"`
	Epoch  uint64      `json:"epoch"`
	Model  nn.Snapshot `json:"model"`
}

// SaveServingState atomically persists the currently served model together
// with its epoch sequence number, the crash-safe snapshot a serving daemon
// resumes from after a restart (LoadServingState + ServingOptions
// InitialEpoch). The write goes to a temp file in the same directory and is
// renamed into place, so a crash mid-write leaves the previous snapshot
// intact and readers never observe a torn file.
func SaveServingState(path string, epoch uint64, m *Model) error {
	if m == nil || m.m == nil {
		return errors.New("mocc: SaveServingState of nil model")
	}
	m.m.RLockParams()
	snap := m.m.Snapshot()
	m.m.RUnlockParams()
	if err := snap.Validate(); err != nil {
		return fmt.Errorf("mocc: refusing to persist corrupted model: %w", err)
	}
	data, err := json.Marshal(servingStateFile{Format: servingStateFormat, Epoch: epoch, Model: snap})
	if err != nil {
		return fmt.Errorf("mocc: encoding serving state: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("mocc: writing serving state: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("mocc: committing serving state: %w", err)
	}
	return nil
}

// LoadServingState reads a snapshot written by SaveServingState, validating
// the model before it can reach a live engine.
func LoadServingState(path string) (uint64, *Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, fmt.Errorf("mocc: loading serving state %q: %w", path, err)
	}
	var st servingStateFile
	if err := json.Unmarshal(data, &st); err != nil {
		return 0, nil, fmt.Errorf("mocc: serving state %q: %w", path, err)
	}
	if st.Format != servingStateFormat {
		return 0, nil, fmt.Errorf("mocc: serving state %q: unknown format %q", path, st.Format)
	}
	if err := st.Model.Validate(); err != nil {
		return 0, nil, fmt.Errorf("mocc: serving state %q is corrupted: %w", path, err)
	}
	model := core.NewModel(core.HistoryLen, 0)
	if err := model.Restore(st.Model); err != nil {
		return 0, nil, fmt.Errorf("mocc: restoring serving state: %w", err)
	}
	return st.Epoch, &Model{m: model}, nil
}
