package mocc

import (
	"fmt"
	"time"

	"mocc/internal/obs"
)

// CanaryConfig tunes the epoch canary: a fleet health monitor that treats
// every newly published model generation as a canary and automatically
// rolls back to the displaced generation when the fleet's safe-mode fault
// rate under the new epoch exceeds a threshold. It is the fleet-granularity
// analogue of OnlineAdapt's per-iteration rollback guard: Publish's finite
// check rejects overtly corrupt parameters, the canary catches models that
// are numerically clean but decide pathologically (actions overflowing to
// Inf in the forward pass, rates outside the envelope, stalls) once real
// traffic hits them. Zero fields keep their defaults.
type CanaryConfig struct {
	// Window is how long a new epoch is observed before being promoted to
	// trusted (default 3s). A rollback decision can happen at any sample
	// inside the window.
	Window time.Duration
	// Interval is the sampling period (default Window/10, floored at 5ms).
	Interval time.Duration
	// MaxFaultRate is the rollback threshold: the fleet's guard-fault rate
	// (inference faults per served decision, with overload sheds — which
	// also surface as NaN faults — subtracted out) above which the canary
	// epoch is rolled back. Default 0.05.
	MaxFaultRate float64
	// MinReports is the minimum number of decisions the canary epoch must
	// have served before a rollback verdict is allowed, so a single early
	// fault on a quiet fleet cannot condemn a healthy model (default 50).
	MinReports uint64
	// OnRollback, when non-nil, is invoked (from the monitor goroutine)
	// after every automatic rollback.
	OnRollback func(ev RollbackEvent)
}

// RollbackEvent describes one automatic canary rollback.
type RollbackEvent struct {
	// From is the condemned epoch, To the epoch created by the rollback.
	From, To uint64
	// Faults is the excess guard-fault count observed under the condemned
	// epoch (overload sheds already subtracted); Reports is how many
	// decisions it served.
	Faults  int64
	Reports uint64
}

func (c CanaryConfig) normalized() CanaryConfig {
	if c.Window <= 0 {
		c.Window = 3 * time.Second
	}
	if c.Interval <= 0 {
		c.Interval = c.Window / 10
	}
	if c.Interval < 5*time.Millisecond {
		c.Interval = 5 * time.Millisecond
	}
	if c.MaxFaultRate <= 0 {
		c.MaxFaultRate = 0.05
	}
	if c.MinReports == 0 {
		c.MinReports = 50
	}
	return c
}

// canarySample is one point-in-time reading of the counters the canary
// judges an epoch by.
type canarySample struct {
	reports uint64 // engine decisions served
	shed    uint64 // engine decisions shed under overload
	faults  int64  // fleet guard faults (sum over registered handles)
}

func (l *Library) canarySample() canarySample {
	est := l.engine.Stats()
	var faults int64
	l.mu.RLock()
	for _, a := range l.apps {
		faults += a.Stats().Faults
	}
	l.mu.RUnlock()
	return canarySample{reports: est.Reports, shed: est.Shed(), faults: faults}
}

// canaryLoop watches for epoch changes and judges each new generation over
// a sliding window. cfg is already normalized.
func (l *Library) canaryLoop(cfg CanaryConfig) {
	tick := time.NewTicker(cfg.Interval)
	defer tick.Stop()

	trusted := l.engine.Epoch() // the generation in force when the monitor started
	watching := false
	var (
		watch    uint64 // epoch under observation
		base     canarySample
		deadline time.Time
	)
	for {
		select {
		case <-l.canaryStop:
			return
		case <-tick.C:
		}
		ep := l.engine.Epoch()
		if !watching {
			if ep == trusted {
				continue
			}
			watching, watch = true, ep
			base = l.canarySample()
			deadline = time.Now().Add(cfg.Window)
			continue
		}
		if ep != watch {
			// Superseded mid-window (another Publish or a manual
			// Rollback): abandon this verdict; the next tick starts a
			// fresh canary on the new generation.
			watching = false
			continue
		}
		cur := l.canarySample()
		served := cur.reports - base.reports
		// FleetStats-style fault sums only cover currently registered
		// handles, so churn can move the delta backwards — clamp. Sheds
		// also surface as NaN guard faults on the apps they hit, and an
		// overloaded fleet is not a poisoned model: subtract them.
		faults := cur.faults - base.faults
		shed := int64(cur.shed - base.shed)
		excess := faults - shed
		if excess < 0 {
			excess = 0
		}
		if served >= cfg.MinReports && float64(excess) > cfg.MaxFaultRate*float64(served) {
			watching = false
			to, err := l.rollback()
			if err != nil {
				continue // nothing to roll back to; re-judge on the next tick
			}
			// The rollback target was trusted before the bad publish
			// displaced it; trust the epoch re-serving it, or the canary
			// would condemn its own recovery.
			trusted = to
			l.obs.canaryRollbacks.Add(1)
			if l.obs.events != nil {
				l.obs.events.Emit(obs.Event{Type: obs.EvCanaryRollback, Epoch: to,
					Msg: fmt.Sprintf("epoch %d condemned: %d excess faults over %d reports (threshold %.3g); the condemned decisions remain in the per-app flight recorders",
						watch, excess, served, cfg.MaxFaultRate)})
			}
			if cfg.OnRollback != nil {
				cfg.OnRollback(RollbackEvent{From: watch, To: to, Faults: excess, Reports: served})
			}
			continue
		}
		if time.Now().After(deadline) {
			trusted = watch // survived the window: promoted
			watching = false
		}
	}
}
