package mocc

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mocc/internal/obs"
)

// obsLibrary builds a serving library with a fresh Metrics sink attached.
func obsLibrary(t *testing.T, extra ...Option) (*Library, *Metrics) {
	t.Helper()
	model := perturbedClone(sharedLibrary(t).Model(), 0)
	met := NewMetrics()
	opts := append([]Option{
		WithServing(ServingOptions{Shards: 2}),
		WithObservability(ObservabilityOptions{Metrics: met}),
		WithoutAdaptation(),
	}, extra...)
	lib, err := New(model, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return lib, met
}

// scrape renders the library's /metrics endpoint to a string.
func scrape(t *testing.T, lib *Library) string {
	t.Helper()
	rec := httptest.NewRecorder()
	lib.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	return rec.Body.String()
}

// TestObsChaosFlightRecorder is the post-mortem chaos pin: publish a model
// that passes the finite gate but decides ±Inf, let the canary condemn it,
// and then verify the observability layer explains the whole episode —
// the event log carries the publish → guard-trip → canary-rollback chain
// in order, and every handle's flight recorder still holds the poisoned
// decisions (non-finite verdict, condemned epoch) after the rollback.
func TestObsChaosFlightRecorder(t *testing.T) {
	rolled := make(chan RollbackEvent, 4)
	model := perturbedClone(sharedLibrary(t).Model(), 0)
	met := NewMetrics()
	lib, err := New(model,
		WithServing(ServingOptions{
			Shards: 2,
			Canary: &CanaryConfig{
				Window:       10 * time.Second,
				Interval:     5 * time.Millisecond,
				MaxFaultRate: 0.1,
				MinReports:   20,
				OnRollback:   func(ev RollbackEvent) { rolled <- ev },
			},
		}),
		WithObservability(ObservabilityOptions{Metrics: met, FlightDepth: 256}),
		WithoutAdaptation())
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Close()

	apps := make([]*App, 4)
	for i := range apps {
		if apps[i], err = lib.Register(Weights{0.4, 0.3, 0.3}); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 5; round++ {
		reportAll(t, apps, round)
	}

	if _, err := lib.Publish(poisonedClone(model)); err != nil {
		t.Fatalf("poisoned model must pass the finite gate, got: %v", err)
	}
	deadline := time.After(30 * time.Second)
	round := 5
loop:
	for {
		select {
		case <-rolled:
			break loop
		case <-deadline:
			t.Fatalf("no rollback within deadline; stats=%+v", lib.ServingStats())
		default:
		}
		reportAll(t, apps, round)
		round++
	}
	// Clean recovery rounds on the restored generation: the poisoned
	// decisions must survive them in the flight recorders.
	for r := 0; r < 20; r++ {
		reportAll(t, apps, round)
		round++
	}

	// The event log tells the story in order: publish, trip, rollback.
	const unseen = ^uint64(0)
	publishSeq, tripSeq, rollbackSeq := unseen, unseen, unseen
	var rollbackMsg string
	for _, ev := range met.EventLog().Tail(1 << 20) {
		switch {
		case ev.Type == obs.EvEpochPublish && ev.Epoch == 1:
			publishSeq = ev.Seq
		case ev.Type == obs.EvSafeModeTrip && tripSeq == unseen:
			tripSeq = ev.Seq
		case ev.Type == obs.EvCanaryRollback:
			rollbackSeq, rollbackMsg = ev.Seq, ev.Msg
		}
	}
	if publishSeq == unseen || tripSeq == unseen || rollbackSeq == unseen {
		t.Fatalf("incomplete event chain: publish=%d trip=%d rollback=%d",
			publishSeq, tripSeq, rollbackSeq)
	}
	if !(publishSeq < tripSeq && tripSeq < rollbackSeq) {
		t.Fatalf("event chain out of order: publish=%d trip=%d rollback=%d",
			publishSeq, tripSeq, rollbackSeq)
	}
	if !strings.Contains(rollbackMsg, "condemned") {
		t.Errorf("rollback event does not explain itself: %q", rollbackMsg)
	}

	// Every handle's flight recorder retains the poisoned decisions.
	for i, a := range apps {
		dump := a.FlightRecord()
		poisoned := 0
		for _, d := range dump {
			if d.Verdict == obs.VerdictNonFinite {
				poisoned++
				if d.Epoch != 1 {
					t.Errorf("app %d: poisoned decision at epoch %d, want 1", i, d.Epoch)
				}
			}
		}
		if poisoned == 0 {
			t.Errorf("app %d: no poisoned decisions retained across the rollback (%d in dump)",
				i, len(dump))
		}
		if last := dump[len(dump)-1]; last.Verdict != obs.VerdictOK {
			t.Errorf("app %d: last decision verdict %s, want ok",
				i, obs.VerdictName(last.Verdict))
		}
	}

	// And the fleet counters agree.
	page := scrape(t, lib)
	for _, want := range []string{
		"mocc_canary_rollbacks_total 1",
		"mocc_epoch_publishes_total 1",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(page, "mocc_safemode_trips_total 4") {
		t.Errorf("expected all 4 handles tripped in /metrics")
	}
}

// TestObsConcurrentScrape races the scrape surfaces (/metrics, /vars,
// FleetStats) against heavy handle churn: 10k short-lived handles
// registering, reporting and unregistering while pollers read
// continuously. Run under -race via make test-race.
func TestObsConcurrentScrape(t *testing.T) {
	lib, met := obsLibrary(t)
	defer lib.Close()
	handler := lib.Handler()

	const (
		workers        = 16
		handlesPerWork = 625 // 16*625 = 10k handles over the run
	)
	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for p := 0; p < 3; p++ {
		scrapeWG.Add(1)
		go func(mode int) {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				switch mode {
				case 0:
					rec := httptest.NewRecorder()
					handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				case 1:
					rec := httptest.NewRecorder()
					handler.ServeHTTP(rec, httptest.NewRequest("GET", "/vars", nil))
				case 2:
					_ = lib.FleetStats()
				}
			}
		}(p)
	}

	var churnWG sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		churnWG.Add(1)
		go func(w int) {
			defer churnWG.Done()
			for h := 0; h < handlesPerWork; h++ {
				app, err := lib.Register(Weights{0.4, 0.3, 0.3})
				if err != nil {
					errs <- err
					return
				}
				if _, err := app.Report(servingStatus(w, h)); err != nil {
					errs <- err
					return
				}
				if err := app.Unregister(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	churnWG.Wait()
	close(done)
	scrapeWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if page := scrape(t, lib); !strings.Contains(page, "mocc_serve_reports_total 10000") {
		t.Errorf("reports counter lost churn updates")
	}
	_ = met
}

// TestObsZeroAllocReport pins the hot-path cost of full observability: a
// clean App.Report with metrics, events and the flight recorder all
// enabled must not allocate.
func TestObsZeroAllocReport(t *testing.T) {
	model := perturbedClone(sharedLibrary(t).Model(), 0)
	met := NewMetrics()
	lib, err := New(model,
		WithObservability(ObservabilityOptions{Metrics: met}),
		WithoutAdaptation())
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Close()
	app, err := lib.Register(Weights{0.4, 0.3, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	st := servingStatus(1, 1)
	if _, err := app.Report(st); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := app.Report(st); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Report with observability: %.1f allocs/op, want 0", allocs)
	}
	if n := app.flight.Len(); n == 0 {
		t.Error("flight recorder recorded nothing")
	}
}

// TestLibraryHealthz pins the liveness probe: 200 with canary/overload
// detail while serving, 503 once the library closes, and 404 everywhere
// without WithObservability.
func TestLibraryHealthz(t *testing.T) {
	lib, _ := obsLibrary(t)
	get := func(h int) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		lib.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		if rec.Code != h {
			t.Fatalf("/healthz status %d, want %d (%s)", rec.Code, h, rec.Body)
		}
		return rec
	}
	if body := get(200).Body.String(); !strings.Contains(body, `"epoch"`) {
		t.Errorf("healthz detail missing epoch: %s", body)
	}
	lib.Close()
	if body := get(503).Body.String(); !strings.Contains(body, "closed") {
		t.Errorf("healthz after close should explain: %s", body)
	}

	plain, err := New(perturbedClone(sharedLibrary(t).Model(), 0), WithoutAdaptation())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	rec := httptest.NewRecorder()
	plain.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 404 {
		t.Errorf("handler without observability: status %d, want 404", rec.Code)
	}
}
