package mocc

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestConcurrentAppsStress hammers the handle API from many goroutines at
// once — Register / Report / Rate / SetWeights / Stats / Unregister — while
// the §5 compat layer and an OnlineAdapt run race along. Run with -race
// (make test-race / CI) to verify the shard-parallel hot path; without the
// detector it still exercises every locking interaction.
func TestConcurrentAppsStress(t *testing.T) {
	lib := sharedLibrary(t)
	prefs := []Weights{ThroughputPreference, LatencyPreference, RTCPreference, BalancedPreference}

	var wg sync.WaitGroup
	const goroutines = 8
	const churns = 4
	const reportsPerChurn = 25

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for c := 0; c < churns; c++ {
				app, err := lib.Register(prefs[(g+c)%len(prefs)])
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < reportsPerChurn; i++ {
					rate, err := app.Report(steadyStatus(50, 48, 2, time.Duration(45+i)*time.Millisecond))
					if err != nil {
						t.Error(err)
						return
					}
					if rate <= 0 || math.IsNaN(rate) {
						t.Errorf("goroutine %d: rate %v", g, rate)
						return
					}
					if i%5 == 0 {
						if err := app.SetWeights(prefs[(g+c+i)%len(prefs)]); err != nil {
							t.Error(err)
							return
						}
					}
					_ = app.Rate()
					_ = app.Stats()
				}
				if err := app.Unregister(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	// One goroutine drives the compat layer concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v1 := lib.V1()
		id, err := v1.Register(BalancedPreference)
		if err != nil {
			t.Error(err)
			return
		}
		defer v1.Unregister(id)
		for i := 0; i < churns*reportsPerChurn; i++ {
			if err := v1.ReportStatus(id, steadyStatus(40, 40, 0, 50*time.Millisecond)); err != nil {
				t.Error(err)
				return
			}
			if _, err := v1.GetSendingRate(id); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// And one adaptation iteration mutates the shared model mid-flight,
	// exercising the parameter write lock against live inference.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := lib.OnlineAdapt(Weights{0.45, 0.35, 0.2}, 1); err != nil {
			t.Error(err)
		}
	}()

	wg.Wait()
}
