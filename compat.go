package mocc

import "fmt"

// V1 is the paper's exact §5 three-call deployment surface —
// Register(w) → AppID, ReportStatus(id, s_t), GetSendingRate(id) — kept as
// a thin compatibility layer over the handle API: every call resolves the
// AppID to its *App and delegates, so both surfaces drive the same
// per-application controllers and produce identical rate sequences.
//
// New code should hold *App handles directly (one map lookup and one
// RWMutex read-lock cheaper per call, and Report returns the rate without a
// second call).
type V1 struct {
	lib *Library
}

// V1 returns the §5 compatibility view of the library.
func (l *Library) V1() V1 { return V1{lib: l} }

// Register announces a new application and its preference, returning the
// AppID that scopes the other calls (§5's Register(w)).
func (v V1) Register(w Weights) (AppID, error) {
	app, err := v.lib.Register(w)
	if err != nil {
		return 0, err
	}
	return app.ID(), nil
}

// ReportStatus feeds the latest interval measurements for an application
// (§5's ReportStatus(s_t)) and recomputes its sending rate.
func (v V1) ReportStatus(id AppID, st Status) error {
	app, ok := v.lib.App(id)
	if !ok {
		return fmt.Errorf("mocc: unknown app %d", id)
	}
	_, err := app.Report(st)
	return err
}

// GetSendingRate returns the current pacing rate in packets/second for the
// application (§5's GetSendingRate()).
func (v V1) GetSendingRate(id AppID) (float64, error) {
	app, ok := v.lib.App(id)
	if !ok {
		return 0, fmt.Errorf("mocc: unknown app %d", id)
	}
	return app.Rate(), nil
}

// Unregister removes an application.
func (v V1) Unregister(id AppID) error {
	app, ok := v.lib.App(id)
	if !ok {
		return fmt.Errorf("mocc: unknown app %d", id)
	}
	return app.Unregister()
}
