package mocc

import (
	"errors"
	"fmt"
	"time"

	"mocc/internal/core"
	"mocc/internal/serve"
	"mocc/internal/trace"
)

// Model is a trained MOCC model decoupled from any Library: train or load
// one once, then wire it into a deployable Library with New. One Model must
// back at most one Library at a time.
type Model struct {
	m *core.Model
}

// TrainStats summarizes what an offline training run actually executed, as
// recorded by the trainer (not re-derived from the options).
type TrainStats struct {
	// BootstrapIters / TraverseIters are the PPO iterations performed in
	// each of the two §4.2 phases.
	BootstrapIters int
	TraverseIters  int
	// EnvSteps is the total number of environment transitions collected,
	// counted from the rollouts themselves.
	EnvSteps int
}

// TotalIters returns the number of PPO iterations performed.
func (s TrainStats) TotalIters() int { return s.BootstrapIters + s.TraverseIters }

// TrainModel runs two-phase offline training (§4.2) on the Table 3 network
// distribution and returns the trained model.
func TrainModel(opts TrainingOptions) (*Model, error) {
	model, _, err := TrainModelStats(opts)
	return model, err
}

// TrainModelStats is TrainModel returning, additionally, the executed
// schedule summary (for throughput reporting, e.g. cmd/mocc-train).
func TrainModelStats(opts TrainingOptions) (*Model, TrainStats, error) {
	model := core.NewModel(core.HistoryLen, opts.Seed)
	trainer, err := core.NewOfflineTrainer(model, trainConfig(opts))
	if err != nil {
		return nil, TrainStats{}, fmt.Errorf("mocc: configuring trainer: %w", err)
	}
	res, err := trainer.Run()
	if err != nil {
		return nil, TrainStats{}, fmt.Errorf("mocc: offline training: %w", err)
	}
	stats := TrainStats{
		BootstrapIters: res.BootstrapIters,
		TraverseIters:  res.TraverseIters,
		EnvSteps:       res.EnvSteps,
	}
	return &Model{m: model}, stats, nil
}

// LoadModelFile reads a model from a JSON file produced by Model.Save,
// Library.SaveModel or cmd/mocc-train.
func LoadModelFile(path string) (*Model, error) {
	model := core.NewModel(core.HistoryLen, 0)
	snap, err := loadSnapshot(path)
	if err != nil {
		return nil, err
	}
	if err := model.Restore(snap); err != nil {
		return nil, fmt.Errorf("mocc: restoring model: %w", err)
	}
	return &Model{m: model}, nil
}

// Save writes the model to a JSON file.
func (m *Model) Save(path string) error {
	m.m.RLockParams()
	snap := m.m.Snapshot()
	m.m.RUnlockParams()
	return snap.SaveFile(path)
}

// AdaptationOptions tunes the online-adaptation engine behind
// Library.OnlineAdapt (§4.3).
type AdaptationOptions struct {
	// RolloutSteps / EpisodeLen control per-iteration experience
	// collection (defaults 512 / 128).
	RolloutSteps int
	EpisodeLen   int
	// Replay enables requirement replay (Equation 6). Disabling it
	// reproduces the catastrophic-forgetting ablation of Figure 7b.
	Replay bool
	// Seed drives environment and replay sampling.
	Seed int64
}

// DefaultAdaptation returns the adaptation settings used when no
// WithAdaptation option is given.
func DefaultAdaptation() AdaptationOptions {
	cfg := core.DefaultAdaptConfig()
	return AdaptationOptions{
		RolloutSteps: cfg.RolloutSteps,
		EpisodeLen:   cfg.EpisodeLen,
		Replay:       cfg.Replay,
		Seed:         cfg.Seed,
	}
}

// libConfig collects the functional options of New.
type libConfig struct {
	adaptation     AdaptationOptions
	noAdaptation   bool
	clock          func() time.Time
	initialRTT     time.Duration
	safeMode       SafeModeConfig
	noSafeMode     bool
	inferenceFault func(act float64) float64
	serving        *ServingOptions
	observability  *ObservabilityOptions
}

// Option configures Library construction (see New).
type Option func(*libConfig)

// WithAdaptation overrides the online-adaptation engine settings.
func WithAdaptation(opts AdaptationOptions) Option {
	return func(c *libConfig) {
		c.adaptation = opts
		c.noAdaptation = false
	}
}

// WithoutAdaptation builds a pure-inference library: no adaptation engine
// is constructed, OnlineAdapt returns an error, and no replay pool is kept.
func WithoutAdaptation() Option {
	return func(c *libConfig) { c.noAdaptation = true }
}

// WithClock substitutes the time source used for telemetry timestamps
// (AppStats.Registered / LastReport). Tests inject deterministic clocks.
func WithClock(now func() time.Time) Option {
	return func(c *libConfig) { c.clock = now }
}

// WithInitialRTT sets the base-RTT estimate that seeds each new
// application's initial sending rate (default 40ms).
func WithInitialRTT(rtt time.Duration) Option {
	return func(c *libConfig) { c.initialRTT = rtt }
}

// WithSafeMode overrides the guarded-inference settings (safe mode is on by
// default with DefaultSafeMode; zero fields keep their defaults).
func WithSafeMode(cfg SafeModeConfig) Option {
	return func(c *libConfig) {
		c.safeMode = cfg
		c.noSafeMode = false
	}
}

// WithoutSafeMode disables the guarded-inference layer: App.Report
// publishes the learned decision unvalidated, with no fallback controller
// and no fault telemetry. Intended for controlled experiments that must
// observe the raw learned behaviour; production deployments should keep
// safe mode on.
func WithoutSafeMode() Option {
	return func(c *libConfig) { c.noSafeMode = true }
}

// WithInferenceFault installs a hook that transforms every learned policy
// decision before safe-mode validation — the seam the chaos suite and
// `mocc-bench -faults` use to emulate a corrupted or stalled model without
// touching model internals (return NaN, sleep past the stall threshold,
// scale the action, ...). The hook runs inside the guard's timed window on
// every registered application's Report path. Production deployments leave
// it unset.
func WithInferenceFault(f func(act float64) float64) Option {
	return func(c *libConfig) { c.inferenceFault = f }
}

// New wires a trained model into a deployable Library:
//
//	lib, err := mocc.New(model, mocc.WithAdaptation(adapt), mocc.WithClock(clock))
func New(model *Model, opts ...Option) (*Library, error) {
	if model == nil || model.m == nil {
		return nil, errors.New("mocc: nil model")
	}
	cfg := libConfig{
		adaptation: DefaultAdaptation(),
		clock:      time.Now,
		initialRTT: 40 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.clock == nil {
		return nil, errors.New("mocc: WithClock(nil)")
	}
	if cfg.initialRTT <= 0 {
		return nil, fmt.Errorf("mocc: WithInitialRTT(%v): must be positive", cfg.initialRTT)
	}

	l := &Library{
		model:          model.m,
		clock:          cfg.clock,
		initialRTT:     cfg.initialRTT,
		apps:           make(map[AppID]*App),
		inferenceFault: cfg.inferenceFault,
	}
	l.initObs(cfg.observability)
	if !cfg.noSafeMode {
		sm := cfg.safeMode.normalized()
		l.safeMode = &sm
	}
	if !cfg.noAdaptation {
		acfg := core.DefaultAdaptConfig()
		if cfg.adaptation.RolloutSteps > 0 {
			acfg.RolloutSteps = cfg.adaptation.RolloutSteps
		}
		if cfg.adaptation.EpisodeLen > 0 {
			acfg.EpisodeLen = cfg.adaptation.EpisodeLen
		}
		acfg.Replay = cfg.adaptation.Replay
		acfg.Seed = cfg.adaptation.Seed
		acfg.Envs = core.TrainingEnvs(trace.TrainingRanges(), core.HistoryLen)
		adapter, err := core.NewAdapter(model.m, acfg)
		if err != nil {
			return nil, fmt.Errorf("mocc: configuring adapter: %w", err)
		}
		l.adapter = adapter
	}
	if cfg.serving != nil {
		if cfg.serving.IdleTTL < 0 {
			return nil, fmt.Errorf("mocc: WithServing IdleTTL %v: must be non-negative", cfg.serving.IdleTTL)
		}
		if cfg.serving.Deadline < 0 {
			return nil, fmt.Errorf("mocc: WithServing Deadline %v: must be non-negative", cfg.serving.Deadline)
		}
		// The engine gets a frozen clone of the boot generation, never the
		// live library model: Publish and OnlineAdapt mutate l.model in
		// place, and the boot epoch must stay intact both for lazy shard
		// rebuilds and as the first Publish's rollback target.
		model.m.RLockParams()
		boot := model.m.Clone()
		model.m.RUnlockParams()
		l.engine = serve.New(boot, serve.Config{
			Shards:        cfg.serving.Shards,
			MaxBatch:      cfg.serving.MaxBatch,
			FlushInterval: cfg.serving.FlushInterval,
			MaxQueue:      cfg.serving.MaxQueue,
			Deadline:      cfg.serving.Deadline,
			BaseEpoch:     cfg.serving.InitialEpoch,
			Metrics:       l.obs.sink.Registry(),
			Events:        l.obs.events,
		})
		if l.idleTTL = cfg.serving.IdleTTL; l.idleTTL > 0 {
			l.janitorStop = make(chan struct{})
			l.bgWG.Add(1)
			go func() {
				defer l.bgWG.Done()
				l.janitor()
			}()
		}
		if cfg.serving.Canary != nil {
			l.canaryStop = make(chan struct{})
			canaryCfg := cfg.serving.Canary.normalized()
			l.bgWG.Add(1)
			go func() {
				defer l.bgWG.Done()
				l.canaryLoop(canaryCfg)
			}()
		}
	}
	return l, nil
}
