package mocc

import (
	"errors"
	"fmt"
	"time"

	"mocc/internal/core"
	"mocc/internal/obs"
)

// ServingOptions configures the sharded batching inference engine enabled
// by WithServing. Zero fields keep their defaults.
type ServingOptions struct {
	// Shards is the number of independent batching queues; handles are
	// assigned to shards by ID hash. Defaults to GOMAXPROCS.
	Shards int
	// MaxBatch caps how many concurrent Report decisions share one batched
	// forward pass (default 64; a full batch flushes immediately).
	MaxBatch int
	// FlushInterval bounds how long a shard waits to coalesce more
	// requests before serving a partial batch (default 200µs). Negative
	// disables the wait.
	FlushInterval time.Duration
	// IdleTTL, when positive, evicts handles that have not reported for
	// this long: they are unregistered exactly as by App.Unregister and
	// counted in ServingStats.Evicted. Eviction is approximate — a handle
	// racing its own eviction may lose (its next call fails as
	// unregistered) — which is the intended semantics for abandoned
	// fleet members.
	IdleTTL time.Duration
	// MaxQueue bounds each shard's pending-decision queue: a Report
	// arriving at a full shard is shed — its learned decision is NaN
	// ("leave the rate unchanged"), so under safe mode the app degrades
	// to its fallback controller instead of waiting without bound.
	// Defaults to 4096 per shard; negative disables the bound.
	MaxQueue int
	// Deadline, when positive, additionally sheds decisions that waited
	// in a shard queue longer than this before reaching a forward pass.
	// Zero disables deadline shedding.
	Deadline time.Duration
	// InitialEpoch is the epoch sequence number assigned to the model the
	// library was built with. A daemon resuming from a crash-safe
	// snapshot (SaveServingState/LoadServingState) passes the snapshot's
	// epoch so clients observe a continuous sequence across the restart.
	InitialEpoch uint64
	// Canary, when non-nil, enables the epoch canary: every Publish is
	// monitored over a sliding window and automatically rolled back when
	// the fleet's guard-fault rate under the new generation exceeds the
	// threshold. See CanaryConfig.
	Canary *CanaryConfig
}

// WithServing routes every handle's Report decision through a sharded
// micro-batching engine instead of a private single-sample inference view:
// concurrent Reports coalesce into one batched forward pass per shard,
// paying the batched kernels' per-sample cost. Decisions are bit-identical
// to the single-sample path — batching never changes what any app is told,
// only what the fleet pays for it.
//
// Serving also enables epoch-based model hot-swap (Library.Publish) and,
// when IdleTTL is set, idle-handle eviction. A serving library should be
// shut down with Library.Close.
func WithServing(opts ServingOptions) Option {
	return func(c *libConfig) { c.serving = &opts }
}

// Publish atomically installs m's current parameters as the new serving
// generation and returns its epoch sequence number. Shards pick the new
// generation up between batches: no Report ever blocks on the swap, and no
// Report ever observes a torn parameter set (each batch runs entirely on
// one complete generation). Non-finite models are rejected, mirroring
// OnlineAdapt's rollback guard.
//
// The parameters are snapshotted at call time — later mutations of m are
// not served until the next Publish. Publishing a model other than the
// library's own also copies the parameters into the library model, so
// SaveModel, Model and subsequent OnlineAdapt runs see the published
// generation. The intended hot-swap loops are
//
//	lib.OnlineAdapt(w, iters)   // adapt the live model offline from serving's
//	lib.Publish(lib.Model())    // point of view, then roll it out atomically
//
// and, for a model retrained out of process,
//
//	m, _ := mocc.LoadModelFile(path)
//	lib.Publish(m)
func (l *Library) Publish(m *Model) (uint64, error) {
	if l.engine == nil {
		return 0, errors.New("mocc: library was built without serving (WithServing)")
	}
	if m == nil || m.m == nil {
		return 0, errors.New("mocc: Publish of nil model")
	}
	src := m.m
	src.RLockParams()
	err := src.CheckFinite()
	var frozen *core.Model
	if err == nil {
		frozen = src.Clone()
	}
	src.RUnlockParams()
	if err != nil {
		return 0, fmt.Errorf("mocc: refusing to publish: %w", err)
	}
	if src != l.model {
		l.model.LockParams()
		cerr := l.model.CopyFrom(frozen)
		l.model.UnlockParams()
		if cerr != nil {
			return 0, fmt.Errorf("mocc: publishing foreign model: %w", cerr)
		}
	}
	seq, perr := l.engine.Publish(frozen)
	if perr == nil {
		l.obs.publishes.Add(1)
	}
	return seq, perr
}

// Rollback re-installs the model generation displaced by the most recent
// Publish (or Rollback) as a new epoch and returns its sequence number —
// the manual escape hatch when a published model turns out to misbehave in
// ways the finite check cannot catch. A second Rollback undoes the first.
// The library model is synced to the rolled-back parameters so SaveModel,
// Model and OnlineAdapt see the generation actually being served. The
// automatic form of this is the epoch canary (ServingOptions.Canary).
func (l *Library) Rollback() (uint64, error) {
	seq, err := l.rollback()
	if err == nil && l.obs.events != nil {
		l.obs.events.Emit(obs.Event{Type: obs.EvManualRollback, Epoch: seq})
	}
	return seq, err
}

// rollback is Rollback without the manual-rollback event, shared with
// the canary (which emits its own richer event).
func (l *Library) rollback() (uint64, error) {
	if l.engine == nil {
		return 0, errors.New("mocc: library was built without serving (WithServing)")
	}
	seq, m, err := l.engine.Rollback()
	if err != nil {
		return 0, fmt.Errorf("mocc: %w", err)
	}
	if m != l.model {
		l.model.LockParams()
		cerr := l.model.CopyFrom(m)
		l.model.UnlockParams()
		if cerr != nil {
			return seq, fmt.Errorf("mocc: syncing rolled-back model: %w", cerr)
		}
	}
	return seq, nil
}

// Epoch returns the serving engine's current model generation (0 before the
// first Publish, and always 0 for a library built without serving).
func (l *Library) Epoch() uint64 {
	if l.engine == nil {
		return 0
	}
	return l.engine.Epoch()
}

// ServingStats is a point-in-time snapshot of the serving engine.
type ServingStats struct {
	// Enabled reports whether the library was built with WithServing.
	Enabled bool
	// Shards is the configured shard count.
	Shards int
	// Epoch is the current model generation.
	Epoch uint64
	// Reports counts decisions served; Batches counts forward passes run.
	// Reports/Batches is the mean coalesced batch size.
	Reports uint64
	Batches uint64
	// MaxBatch is the largest coalesced batch observed.
	MaxBatch int
	// Swaps counts epoch applications summed over shards.
	Swaps uint64
	// Evicted counts handles removed by the IdleTTL janitor.
	Evicted int64
	// Queued is the number of decisions currently waiting in shard queues.
	Queued int64
	// ShedQueue / ShedDeadline count overload sheds: requests answered NaN
	// ("leave the rate unchanged") because a shard queue was at MaxQueue,
	// or because the request waited past the decision Deadline.
	ShedQueue    uint64
	ShedDeadline uint64
	// Panics counts inference panics recovered per batch (the batch was
	// answered NaN); Restarts counts consumer goroutines restarted by the
	// shard watchdog after a panic escaped the per-batch guards.
	Panics   uint64
	Restarts uint64
	// Rollbacks counts generation rollbacks (manual Library.Rollback plus
	// canary-automatic ones).
	Rollbacks uint64
}

// Shed returns the total requests shed for any reason.
func (s ServingStats) Shed() uint64 { return s.ShedQueue + s.ShedDeadline }

// ServingStats returns engine counters (the zero value when the library was
// built without serving).
func (l *Library) ServingStats() ServingStats {
	if l.engine == nil {
		return ServingStats{}
	}
	st := l.engine.Stats()
	return ServingStats{
		Enabled:      true,
		Shards:       st.Shards,
		Epoch:        st.Epoch,
		Reports:      st.Reports,
		Batches:      st.Batches,
		MaxBatch:     st.MaxBatch,
		Swaps:        st.Swaps,
		Evicted:      l.evicted.Load(),
		Queued:       st.Queued,
		ShedQueue:    st.ShedQueue,
		ShedDeadline: st.ShedDeadline,
		Panics:       st.Panics,
		Restarts:     st.Restarts,
		Rollbacks:    st.Rollbacks,
	}
}

// FleetStats aggregates every registered application's cumulative telemetry
// (App.Stats) into one fleet-level snapshot.
type FleetStats struct {
	// Apps is the number of currently registered applications.
	Apps int
	// Reports counts accepted Report calls across the fleet.
	Reports int64
	// PacketsSent / PacketsAcked / PacketsLost are fleet-cumulative counts
	// and LossRate their cumulative ratio.
	PacketsSent  float64
	PacketsAcked float64
	PacketsLost  float64
	LossRate     float64
	// Throughput sums every app's cumulative delivery rate (pkts/s) —
	// the fleet's aggregate offered delivery under concurrent operation.
	Throughput float64
	// AvgRTT is the duration-weighted mean RTT across all reported
	// intervals of all apps; MinRTT is the smallest MinRTT any app ever
	// reported.
	AvgRTT time.Duration
	MinRTT time.Duration
	// MeanRate is the duration-weighted mean decided pacing rate across
	// the fleet; Duration is total reported interval time summed over apps.
	MeanRate float64
	Duration time.Duration
	// Safe-mode aggregates: intervals served by fallback controllers,
	// degradation episodes, currently-degraded app count, and detected
	// inference faults.
	FallbackIntervals int64
	Fallbacks         int64
	FallbackActive    int
	Faults            int64
	// Evicted counts handles removed by the IdleTTL janitor (serving only).
	Evicted int64
	// Serving-engine overload/resilience aggregates (zero without serving):
	// decisions shed NaN under overload, decisions currently queued, and
	// epoch rollbacks applied.
	Shed      uint64
	Queued    int64
	Rollbacks uint64
}

// FleetStats returns the aggregated telemetry of every registered handle.
// It takes each handle's lock briefly in turn, so the snapshot is per-app
// consistent but not a single fleet-wide instant.
func (l *Library) FleetStats() FleetStats {
	l.mu.RLock()
	apps := make([]*App, 0, len(l.apps))
	for _, a := range l.apps {
		apps = append(apps, a)
	}
	l.mu.RUnlock()

	f := FleetStats{Apps: len(apps), Evicted: l.evicted.Load()}
	if l.engine != nil {
		est := l.engine.Stats()
		f.Shed = est.Shed()
		f.Queued = est.Queued
		f.Rollbacks = est.Rollbacks
	}
	var rttWeighted, rateTime, durSecs float64
	for _, a := range apps {
		st := a.Stats()
		f.Reports += st.Reports
		f.PacketsSent += st.PacketsSent
		f.PacketsAcked += st.PacketsAcked
		f.PacketsLost += st.PacketsLost
		f.Throughput += st.Throughput
		f.Duration += st.Duration
		d := st.Duration.Seconds()
		durSecs += d
		rttWeighted += st.AvgRTT.Seconds() * d
		rateTime += st.MeanRate * d
		if st.MinRTT > 0 && (f.MinRTT == 0 || st.MinRTT < f.MinRTT) {
			f.MinRTT = st.MinRTT
		}
		f.FallbackIntervals += st.FallbackIntervals
		f.Fallbacks += st.Fallbacks
		if st.FallbackActive {
			f.FallbackActive++
		}
		f.Faults += st.Faults
	}
	if f.PacketsSent > 0 {
		f.LossRate = f.PacketsLost / f.PacketsSent
	}
	if durSecs > 0 {
		f.AvgRTT = time.Duration(rttWeighted / durSecs * float64(time.Second))
		f.MeanRate = rateTime / durSecs
	}
	return f
}

// Close shuts a serving library down: the idle janitor and the canary
// monitor stop — and are waited for, so no background goroutine of this
// library outlives Close or touches the engine after it — then the
// engine drains every queued decision before its shards exit.
// Outstanding handles stay registered, but their learned path yields no
// further decisions — under safe mode they degrade to the deterministic
// fallback controller, without it each Report keeps its previous rate.
// Close is idempotent and a no-op for libraries built without serving.
func (l *Library) Close() {
	l.closeOnce.Do(func() {
		l.closed.Store(true)
		if l.janitorStop != nil {
			close(l.janitorStop)
		}
		if l.canaryStop != nil {
			close(l.canaryStop)
		}
		// The canary calls engine.Stats/Epoch/Rollback; the janitor walks
		// handles. Both must be gone before the engine shuts down.
		l.bgWG.Wait()
		if l.engine != nil {
			l.engine.Close()
		}
	})
}

// janitor periodically evicts handles idle past the TTL. The scan interval
// is a quarter of the TTL, so an abandoned handle lives at most ~1.25 TTLs.
func (l *Library) janitor() {
	period := l.idleTTL / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-l.janitorStop:
			return
		case <-tick.C:
			l.evictIdle()
		}
	}
}

// evictIdle unregisters every handle whose last activity (last accepted
// Report, or registration when it never reported) is older than the TTL
// against the library clock. Returns how many were evicted.
func (l *Library) evictIdle() int {
	now := l.clock()
	l.mu.RLock()
	apps := make([]*App, 0, len(l.apps))
	for _, a := range l.apps {
		apps = append(apps, a)
	}
	l.mu.RUnlock()

	n := 0
	for _, a := range apps {
		if now.Sub(a.lastActivity()) > l.idleTTL {
			if l.unregister(a) == nil {
				l.evicted.Add(1)
				n++
			}
		}
	}
	return n
}
