package scenario_test

import (
	"path/filepath"
	"testing"

	"mocc/scenario"
)

// TestPublicSurface exercises the re-exported API end to end: load a
// bundled spec, run it, generate and fuzz — the same calls external
// consumers make.
func TestPublicSurface(t *testing.T) {
	dir := filepath.Join("..", "examples", "scenarios")
	spec, err := scenario.Load(filepath.Join(dir, "trace-replay.json"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.Run(spec, scenario.RunOptions{
		CompileOptions: scenario.CompileOptions{BaseDir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 2 || res.Flows[0].Delivered == 0 {
		t.Fatalf("unexpected result: %+v", res)
	}

	gen, err := scenario.Generate(scenario.Wifi, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.DiffEngines(gen, scenario.CompileOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := len(scenario.Families()); got < 6 {
		t.Fatalf("Families() = %d entries, want >= 6", got)
	}
	fr, err := scenario.Fuzz(scenario.FuzzConfig{N: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Scenarios != 2 {
		t.Fatalf("fuzzed %d scenarios, want 2", fr.Scenarios)
	}
}
