// Package scenario is the public surface of the scenario subsystem:
// declarative, versioned scenario specs (JSON), Mahimahi trace replay, a
// seeded generator of scenario families, and the engine-differential fuzz
// harness. It re-exports mocc/internal/scenario so applications can load,
// generate and run scenarios programmatically; the `mocc-scen` CLI fronts
// the same machinery (list / describe / run / fuzz subcommands).
//
// Learned schemes ("mocc", "aurora-*", "orca") resolve through the model
// zoo, which CLIs wire via a SchemeResolver; specs that stick to the
// built-in schemes (cubic, vegas, bbr, copa, pcc-allegro, pcc-vivace,
// fixed) run with zero extra configuration.
package scenario

import (
	internal "mocc/internal/scenario"
)

// Core spec types.
type (
	// Spec is one complete declarative scenario.
	Spec = internal.Spec
	// Link describes the shared bottleneck and its capacity source.
	Link = internal.Link
	// Level is one segment of a declarative capacity schedule.
	Level = internal.Level
	// Flow describes one sender-receiver pair.
	Flow = internal.Flow
	// App attaches an application workload (bulk, rtc, video) to a flow.
	App = internal.App
	// Cross is non-reactive background traffic.
	Cross = internal.Cross
	// Weights is a declarative preference vector for learned schemes.
	Weights = internal.Weights
)

// Compilation and execution types.
type (
	// CompileOptions parameterize spec compilation (trace base dir,
	// learned-scheme resolver, packet size).
	CompileOptions = internal.CompileOptions
	// SchemeResolver wires learned schemes into the compiler.
	SchemeResolver = internal.SchemeResolver
	// Compiled is a spec lowered onto the packet-level simulator.
	Compiled = internal.Compiled
	// CompiledTopo is a topology spec lowered onto the multi-link
	// simulator (mocc/internal/topo).
	CompiledTopo = internal.CompiledTopo
	// Engine selects the simulator engine for a run.
	Engine = internal.Engine
	// RunOptions parameterize Run.
	RunOptions = internal.RunOptions
	// Result reports one executed scenario.
	Result = internal.Result
	// FlowResult is one flow's outcome.
	FlowResult = internal.FlowResult
)

// Generator and fuzz types.
type (
	// Family names a generator scenario family.
	Family = internal.Family
	// Generator enumerates deterministic scenarios over families.
	Generator = internal.Generator
	// FuzzConfig parameterizes a differential fuzz run.
	FuzzConfig = internal.FuzzConfig
	// FuzzResult summarizes a clean fuzz run.
	FuzzResult = internal.FuzzResult
)

// Schema and engine constants.
const (
	SpecVersion     = internal.SpecVersion
	DefaultPktBytes = internal.DefaultPktBytes

	EngineFast      = internal.EngineFast
	EngineReference = internal.EngineReference
)

// Generator families.
const (
	Cellular      = internal.Cellular
	Wifi          = internal.Wifi
	Satellite     = internal.Satellite
	LossyWireless = internal.LossyWireless
	Incast        = internal.Incast
	FlashCrowd    = internal.FlashCrowd

	// Topology families (multi-link specs on the sharded topo engine).
	ParkingLot = internal.ParkingLot
	Incast10k  = internal.Incast10k
)

// Parse decodes and validates a JSON spec.
func Parse(data []byte) (*Spec, error) { return internal.Parse(data) }

// Load reads and validates a spec file.
func Load(path string) (*Spec, error) { return internal.Load(path) }

// Run executes a spec end-to-end on the packet-level simulator.
func Run(spec *Spec, opt RunOptions) (*Result, error) { return internal.Run(spec, opt) }

// Generate produces the deterministic scenario (family, seed) names.
func Generate(f Family, seed int64) (*Spec, error) { return internal.Generate(f, seed) }

// Families returns every single-bottleneck generator family in canonical
// order.
func Families() []Family { return internal.Families() }

// TopoFamilies returns every topology generator family in canonical order.
func TopoFamilies() []Family { return internal.TopoFamilies() }

// AllFamilies returns every generator family, single-bottleneck first.
func AllFamilies() []Family { return internal.AllFamilies() }

// FamilyDescription is a one-line family description for CLIs.
func FamilyDescription(f Family) string { return internal.FamilyDescription(f) }

// DiffEngines replays a spec through both simulator engines and compares
// every observable bitwise.
func DiffEngines(spec *Spec, opt CompileOptions) (packets int, err error) {
	return internal.DiffEngines(spec, opt)
}

// Fuzz drives the seeded generator through DiffEngines N times.
func Fuzz(cfg FuzzConfig) (FuzzResult, error) { return internal.Fuzz(cfg) }
