module mocc

go 1.24
