package mocc

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mocc/internal/cc"
	"mocc/internal/objective"
	"mocc/internal/obs"
	"mocc/internal/serve"
)

// App is a registered application's handle. Its hot path — Report — runs
// entirely on per-handle state: the handle owns its controller, its
// telemetry, and a private inference view of the shared model, so
// applications on different goroutines never serialize against each other
// (the only shared touch is the read side of the model's parameter lock,
// contended only while OnlineAdapt runs).
//
// All methods are safe for concurrent use; calls on one handle serialize
// against each other, calls on different handles run in parallel.
type App struct {
	lib *Library
	id  AppID

	// rateBits publishes the current pacing rate (float64 bits), so Rate
	// is a lock-free read from any goroutine — pacing loops poll it
	// without touching the controller mutex.
	rateBits atomic.Uint64

	mu      sync.Mutex // serializes Report/SetWeights/Stats on this handle
	alg     *cc.RLRate
	pol     appPolicy
	weights objective.Weights
	closed  bool
	tele    telemetry

	// Safe mode (nil when built with WithoutSafeMode): gp observes every
	// learned decision, guard judges it and owns the fallback controller.
	gp    *guardPolicy
	guard *guard

	// client is the serving-engine handle behind pol (nil without
	// WithServing); it knows which model epoch served each decision.
	client *serve.Client
	// flight is the per-handle decision flight recorder (nil without
	// WithObservability).
	flight *obs.Flight
}

// appPolicy is what a handle needs from its decision backend: a cc.Policy
// that can retune its preference between decisions. Both backends satisfy
// it — core.SharedPolicy (private single-sample inference view) and
// serve.Client (sharded batching engine) — and per-decision results are
// bit-identical between them. The handle serializes Act against SetWeights
// under App.mu, which is exactly the concurrency contract both require.
type appPolicy interface {
	cc.Policy
	SetWeights(w objective.Weights)
}

// telemetry accumulates per-application counters (guarded by App.mu).
type telemetry struct {
	registered  time.Time
	lastReport  time.Time
	reports     int64
	sent        float64
	acked       float64
	lost        float64
	duration    time.Duration
	rttWeighted float64 // Σ AvgRTT·Duration (seconds²), for the duration-weighted mean
	rateTime    float64 // Σ rate·Duration (packets), for the mean decided rate
	minRTT      time.Duration
}

// AppStats is a snapshot of an application's cumulative telemetry.
type AppStats struct {
	// Registered and LastReport timestamp the handle's lifecycle (from the
	// library clock; see WithClock).
	Registered time.Time
	LastReport time.Time
	// Reports counts accepted Report calls (= rate decisions made).
	Reports int64
	// PacketsSent / PacketsAcked / PacketsLost are cumulative counts.
	PacketsSent  float64
	PacketsAcked float64
	PacketsLost  float64
	// LossRate is cumulative PacketsLost / PacketsSent.
	LossRate float64
	// Throughput is the cumulative delivery rate (pkts/s) over all
	// reported intervals.
	Throughput float64
	// AvgRTT is the duration-weighted mean of reported interval RTTs;
	// MinRTT is the smallest MinRTT ever reported.
	AvgRTT time.Duration
	MinRTT time.Duration
	// Duration is total reported interval time.
	Duration time.Duration
	// Rate is the current pacing rate (pkts/s); MeanRate is the
	// duration-weighted mean of all decided rates.
	Rate     float64
	MeanRate float64
	// Safe-mode telemetry (all zero when built with WithoutSafeMode):
	// FallbackIntervals counts monitor intervals served by the fallback
	// controller, Fallbacks counts degradation episodes, and
	// FallbackActive reports whether the app is currently degraded.
	FallbackIntervals int64
	Fallbacks         int64
	FallbackActive    bool
	// Faults counts pathological learned decisions the guard detected;
	// LastFault describes the most recent one (empty when none) and
	// LastFaultAt timestamps it (library clock).
	Faults      int64
	LastFault   string
	LastFaultAt time.Time
}

// ID returns the identifier that the §5 compatibility layer (Library.V1)
// uses to address this application.
func (a *App) ID() AppID { return a.id }

// Weights returns the currently applied preference.
func (a *App) Weights() Weights {
	a.mu.Lock()
	w := a.weights
	a.mu.Unlock()
	return Weights{w.Thr, w.Lat, w.Loss}
}

// publishRate stores the rate for lock-free readers.
func (a *App) publishRate(rate float64) { a.rateBits.Store(math.Float64bits(rate)) }

// Rate returns the current pacing rate in packets/second — §5's
// GetSendingRate, as a lock-free read.
func (a *App) Rate() float64 { return math.Float64frombits(a.rateBits.Load()) }

// Report feeds one monitor interval of measurements and returns the pacing
// rate (packets/second) for the next interval: §5's ReportStatus +
// GetSendingRate round trip collapsed into the one call every datapath
// actually makes. It validates the status (negative counts and
// acked+lost > sent are rejected with a descriptive error) and updates the
// handle's telemetry.
//
// Under safe mode (the default) the learned decision is additionally
// validated before it is published: non-finite policy actions, rates
// outside the pacing envelope, stalled inference, and inference panics all
// count as faults, and consecutive faults degrade the application to a
// deterministic AIMD fallback controller until the learned path produces
// clean shadow decisions again. The returned rate is then always finite
// and inside the envelope, and no panic from the inference path escapes
// this call. See SafeModeConfig and AppStats for the trip/recover rules
// and the fault telemetry.
func (a *App) Report(st Status) (float64, error) {
	if err := st.validate(); err != nil {
		return 0, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return 0, fmt.Errorf("mocc: app %d is unregistered", a.id)
	}
	now := a.lib.clock()
	var rate float64
	if a.guard != nil {
		rate = a.guard.decide(a.alg, a.gp, st.report(), now)
	} else {
		rate = a.alg.Update(st.report())
	}
	a.publishRate(rate)
	a.observe(now, rate)

	t := &a.tele
	t.reports++
	t.sent += st.PacketsSent
	t.acked += st.PacketsAcked
	t.lost += st.PacketsLost
	t.duration += st.Duration
	d := st.Duration.Seconds()
	t.rttWeighted += st.AvgRTT.Seconds() * d
	t.rateTime += rate * d
	if st.MinRTT > 0 && (t.minRTT == 0 || st.MinRTT < t.minRTT) {
		t.minRTT = st.MinRTT
	}
	t.lastReport = now
	return rate, nil
}

// observe records the decision in the handle's flight recorder and emits
// guard trip/recover events. Called under a.mu with the guard state of
// this decision still fresh. The clean path allocates nothing: the
// flight store is a ring write, and events fire only on the rare
// trip/recover transitions.
func (a *App) observe(now time.Time, rate float64) {
	g := a.guard
	if a.flight != nil {
		var d obs.Decision
		d.TimeNs = now.UnixNano()
		d.Rate = rate
		d.Act = rate // without a guard observer the raw action is the rate
		if a.client != nil {
			d.Epoch = a.client.LastEpoch()
		}
		if a.gp != nil {
			d.Act = a.gp.lastAct
			d.LatNs = int64(a.gp.lastDur)
		}
		if g != nil {
			d.Verdict = g.lastClass
			if d.Verdict == obs.VerdictOK && g.active {
				// Clean shadow probe while degraded: the returned rate
				// came from the fallback controller.
				d.Verdict = obs.VerdictFallback
			}
		}
		a.flight.Record(d)
	}
	if g == nil || a.lib.obs.events == nil || (!g.justTripped && !g.justRecovered) {
		return
	}
	var epoch uint64
	if a.client != nil {
		epoch = a.client.LastEpoch()
	}
	if g.justTripped {
		a.lib.obs.events.Emit(obs.Event{Type: obs.EvSafeModeTrip, App: uint64(a.id),
			Epoch: epoch, Msg: g.lastFault})
	}
	if g.justRecovered {
		a.lib.obs.events.Emit(obs.Event{Type: obs.EvSafeModeRecover, App: uint64(a.id),
			Epoch: epoch})
	}
}

// FlightRecord returns the handle's retained recent decisions, oldest
// first (nil when the library was built without WithObservability). It
// is the programmatic form of the /flightrec endpoint: after a canary
// rollback or guard trip, the dump holds the exact decisions that led
// to it.
func (a *App) FlightRecord() []obs.Decision { return a.flight.Dump() }

// SetWeights retunes the application's preference live: the next Report
// evaluates the model under the new weight vector while every other part of
// the controller (rate, feature history, probe state) carries over, so a
// running connection changes objective mid-stream without re-registration.
// The replay pool's reference moves from the old preference to the new one.
func (a *App) SetWeights(w Weights) error {
	iw, err := w.internal()
	if err != nil {
		return fmt.Errorf("mocc: invalid weights: %w", err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return fmt.Errorf("mocc: app %d is unregistered", a.id)
	}
	old := a.weights
	a.weights = iw
	a.pol.SetWeights(iw)
	// The pool transfer stays inside a.mu so concurrent SetWeights (or a
	// racing Unregister) can't interleave their Register/Release pairs out
	// of order and strand a refcount. Pool operations are short and take
	// no lock that could reach back into a.mu.
	if old != iw && a.lib.adapter != nil {
		a.lib.adapter.Register(iw)
		a.lib.adapter.Release(old)
	}
	return nil
}

// Stats returns a snapshot of the application's cumulative telemetry.
func (a *App) Stats() AppStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := a.tele
	s := AppStats{
		Registered:   t.registered,
		LastReport:   t.lastReport,
		Reports:      t.reports,
		PacketsSent:  t.sent,
		PacketsAcked: t.acked,
		PacketsLost:  t.lost,
		MinRTT:       t.minRTT,
		Duration:     t.duration,
		Rate:         a.Rate(),
	}
	if t.sent > 0 {
		s.LossRate = t.lost / t.sent
	}
	if d := t.duration.Seconds(); d > 0 {
		s.Throughput = t.acked / d
		s.AvgRTT = time.Duration(t.rttWeighted / d * float64(time.Second))
		s.MeanRate = t.rateTime / d
	}
	if g := a.guard; g != nil {
		s.FallbackIntervals = g.fallbackIntervals
		s.Fallbacks = g.fallbacks
		s.FallbackActive = g.active
		s.Faults = g.faults
		s.LastFault = g.lastFault
		s.LastFaultAt = g.lastFaultAt
	}
	return s
}

// lastActivity returns when the handle last did something worth keeping it
// alive for: its last accepted Report, or its registration time when it has
// never reported. The serving janitor compares this against the idle TTL.
func (a *App) lastActivity() time.Time {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tele.lastReport.IsZero() {
		return a.tele.registered
	}
	return a.tele.lastReport
}

// Unregister removes the application from its library. Subsequent Report
// and SetWeights calls fail; Rate keeps returning the last published value.
// Unregistering the last application holding a preference drops it from the
// online-adaptation replay pool.
func (a *App) Unregister() error { return a.lib.unregister(a) }
