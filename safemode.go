package mocc

import (
	"fmt"
	"math"
	"time"

	"mocc/internal/cc"
	"mocc/internal/obs"
)

// SafeModeConfig tunes the guarded-inference layer that stands between the
// learned model and the published pacing rate (see WithSafeMode). Safe mode
// is on by default: every App.Report validates the learned decision (finite
// policy action, rate inside the pacing envelope, inference latency under
// the stall threshold, no panic) and, after TripAfter consecutive
// pathological decisions, degrades the application to a deterministic AIMD
// fallback controller. While degraded, the learned path is still evaluated
// in the shadow each interval; after RecoverAfter consecutive clean shadow
// decisions the learned path resumes, resynced to the fallback's operating
// point.
type SafeModeConfig struct {
	// TripAfter is how many consecutive pathological decisions switch the
	// application to the fallback controller (default 2).
	TripAfter int
	// RecoverAfter is how many consecutive clean shadow decisions while
	// degraded switch back to the learned path (default 5).
	RecoverAfter int
	// StallThreshold flags an inference as stalled when the policy
	// evaluation exceeds this wall-clock time (default 250ms). Negative
	// disables stall detection; zero keeps the default.
	StallThreshold time.Duration
}

// DefaultSafeMode returns the safe-mode settings used when no WithSafeMode
// option is given.
func DefaultSafeMode() SafeModeConfig {
	return SafeModeConfig{
		TripAfter:      2,
		RecoverAfter:   5,
		StallThreshold: 250 * time.Millisecond,
	}
}

// normalized fills zero fields with defaults.
func (c SafeModeConfig) normalized() SafeModeConfig {
	d := DefaultSafeMode()
	if c.TripAfter <= 0 {
		c.TripAfter = d.TripAfter
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = d.RecoverAfter
	}
	if c.StallThreshold == 0 {
		c.StallThreshold = d.StallThreshold
	} else if c.StallThreshold < 0 {
		c.StallThreshold = 0 // disabled
	}
	return c
}

// guardPolicy wraps the application's shared-model policy so the guard can
// inspect every decision: the raw action value and the wall-clock inference
// latency. The optional fault hook (WithInferenceFault) runs inside the
// timed window, which is how the chaos suite emulates NaN-poisoned and
// stalled models without touching model internals.
type guardPolicy struct {
	inner   cc.Policy
	fault   func(act float64) float64
	lastAct float64
	lastDur time.Duration
}

// Act implements cc.Policy.
func (g *guardPolicy) Act(obs []float64) float64 {
	start := time.Now()
	act := g.inner.Act(obs)
	if g.fault != nil {
		act = g.fault(act)
	}
	g.lastDur = time.Since(start)
	g.lastAct = act
	return act
}

// guard is the per-application safe-mode state machine (guarded by App.mu,
// like the controller it wraps).
type guard struct {
	cfg      SafeModeConfig
	fallback *cc.AIMD

	active      bool
	badStreak   int // consecutive pathological decisions while healthy
	cleanStreak int // consecutive clean shadow decisions while degraded

	lastGoodRate float64

	// telemetry
	fallbackIntervals int64
	fallbacks         int64
	faults            int64
	lastFault         string
	lastFaultAt       time.Time

	// Per-decision observability state (read by App.observe under the
	// same App.mu that serialized decide): the verdict class of the last
	// decision and whether it tripped or recovered the guard.
	lastClass     uint8
	justTripped   bool
	justRecovered bool

	// Fleet-level counters (nil without WithObservability — nil-receiver
	// no-ops); stripe is the handle id, so concurrent handles do not
	// share counter cache lines.
	stripe      int
	mFaults     *obs.Counter
	mTrips      *obs.Counter
	mRecoveries *obs.Counter
}

func newGuard(cfg SafeModeConfig) *guard {
	return &guard{cfg: cfg.normalized(), fallback: cc.NewAIMD()}
}

// runLearned evaluates the learned controller, converting a panic anywhere
// in the inference path into a pathological decision instead of letting it
// escape App.Report.
func runLearned(alg *cc.RLRate, rep cc.Report) (rate float64, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			rate, panicMsg = 0, fmt.Sprintf("inference panic: %v", r)
		}
	}()
	return alg.Update(rep), ""
}

// judge classifies the learned decision; the empty string means clean.
// The uint8 is the obs.Verdict* class of the same verdict, recorded in
// the flight recorder without string formatting.
func (g *guard) judge(learned float64, gp *guardPolicy, panicMsg string) (string, uint8) {
	switch {
	case panicMsg != "":
		return panicMsg, obs.VerdictPanic
	case !finite(gp.lastAct):
		return fmt.Sprintf("non-finite policy action %v", gp.lastAct), obs.VerdictNonFinite
	case !cc.ValidRate(learned):
		return fmt.Sprintf("rate %v outside the pacing envelope [%v, %v]",
			learned, float64(cc.MinPacingRate), float64(cc.MaxPacingRate)), obs.VerdictEnvelope
	case g.cfg.StallThreshold > 0 && gp.lastDur > g.cfg.StallThreshold:
		return fmt.Sprintf("stalled inference (%v > %v)", gp.lastDur, g.cfg.StallThreshold), obs.VerdictStall
	}
	return "", obs.VerdictOK
}

// decide runs one monitor interval through the guard: the learned
// controller always executes (as the primary decision when healthy, as the
// shadow probe when degraded), its verdict drives the trip/recover state
// machine, and the returned rate is always inside the pacing envelope.
func (g *guard) decide(alg *cc.RLRate, gp *guardPolicy, rep cc.Report, now time.Time) float64 {
	g.justTripped, g.justRecovered = false, false
	learned, panicMsg := runLearned(alg, rep)
	verdict, class := g.judge(learned, gp, panicMsg)
	g.lastClass = class
	clean := verdict == ""
	if clean {
		g.lastGoodRate = learned
	} else {
		g.faults++
		g.mFaults.AddAt(g.stripe, 1)
		g.lastFault = verdict
		g.lastFaultAt = now
	}

	if !g.active {
		if clean {
			g.badStreak = 0
			return learned
		}
		g.badStreak++
		if g.badStreak >= g.cfg.TripAfter {
			g.enterFallback(rep)
			g.justTripped = true
			g.mTrips.AddAt(g.stripe, 1)
			g.fallbackIntervals++
			return g.fallback.Rate()
		}
		// Suspect but not yet tripped: hold the last known-good rate
		// rather than publishing a possibly-degenerate decision.
		return g.safeRate(learned)
	}

	// Degraded: the fallback controller owns the rate; the learned path
	// just ran as a shadow probe.
	fb := g.fallback.Update(rep)
	g.fallbackIntervals++
	if clean {
		g.cleanStreak++
		if g.cleanStreak >= g.cfg.RecoverAfter {
			g.active = false
			g.badStreak = 0
			g.cleanStreak = 0
			g.justRecovered = true
			g.mRecoveries.AddAt(g.stripe, 1)
			// Resync the learned controller to the connection's actual
			// operating point; it takes over next interval.
			alg.SetRate(fb)
		}
	} else {
		g.cleanStreak = 0
	}
	return fb
}

// enterFallback switches to the AIMD controller, seeded from the last
// known-good operating point (or the measured delivery rate when the app
// tripped before any clean decision).
func (g *guard) enterFallback(rep cc.Report) {
	g.active = true
	g.cleanStreak = 0
	g.fallbacks++
	g.fallback.Reset(0)
	seed := g.lastGoodRate
	if seed <= 0 {
		seed = rep.Throughput
	}
	if seed > 0 {
		g.fallback.SetRate(seed)
	} else {
		g.fallback.InitialRate(rep.MinRTT)
	}
}

// safeRate sanitizes a suspect decision: the learned rate if it is at least
// inside the envelope, otherwise the last known-good rate, otherwise the
// envelope floor.
func (g *guard) safeRate(learned float64) float64 {
	if cc.ValidRate(learned) {
		return learned
	}
	if g.lastGoodRate > 0 {
		return g.lastGoodRate
	}
	return cc.MinPacingRate
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
