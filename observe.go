package mocc

import (
	"fmt"
	"io"
	"net/http"

	"mocc/internal/obs"
)

// Metrics is the observability sink shared by a Library and everything
// wired around it (transports, the training loop, CLIs): one metric
// registry plus one structured event log. Construct it with NewMetrics,
// hand it to WithObservability, and serve it with Library.Handler (or
// Metrics.Handler for non-library components):
//
//	m := mocc.NewMetrics()
//	lib, _ := mocc.New(model, mocc.WithServing(sopts), mocc.WithObservability(m))
//	http.ListenAndServe(":9090", lib.Handler())
//
// The exposed endpoints are /metrics (Prometheus text format), /vars
// (flat expvar-style JSON), /events (structured event tail), /healthz
// (canary/overload-aware liveness), /flightrec (per-app decision dumps,
// library handler only) and /debug/pprof/*.
type Metrics struct {
	reg    *obs.Registry
	events *obs.EventLog
}

// NewMetrics returns an empty observability sink (metric registry +
// 256-event ring).
func NewMetrics() *Metrics {
	return &Metrics{reg: obs.NewRegistry(), events: obs.NewEventLog(0)}
}

// Registry exposes the underlying metric registry so in-module
// components (transport, internal CLIs) can register their own series.
// External consumers use the HTTP endpoints instead.
func (m *Metrics) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// EventLog exposes the underlying event log for in-module emitters and
// subscribers. External consumers use /events.
func (m *Metrics) EventLog() *obs.EventLog {
	if m == nil {
		return nil
	}
	return m.events
}

// WritePrometheus renders every registered series in the Prometheus
// text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) { m.Registry().WritePrometheus(w) }

// Handler serves /metrics, /vars, /events and /debug/pprof/* for a
// standalone Metrics (no library attached — e.g. the training CLI).
// Libraries should prefer Library.Handler, which adds /healthz and
// /flightrec.
func (m *Metrics) Handler() http.Handler {
	return obs.NewHandler(obs.HandlerConfig{
		Registry: m.Registry(),
		Events:   m.EventLog(),
		Pprof:    true,
	})
}

// ObservabilityOptions configures WithObservability. Zero fields keep
// their defaults.
type ObservabilityOptions struct {
	// Metrics is the sink to wire the library into (required; see
	// NewMetrics). Several libraries may share one sink — series are
	// registered idempotently.
	Metrics *Metrics
	// FlightDepth is how many recent decisions each handle's flight
	// recorder retains for post-morteming a rollback or guard trip
	// (default 64; negative disables the recorders).
	FlightDepth int
}

// WithObservability attaches a Metrics sink to the library: engine,
// safe-mode and canary series register on it, structured events (epoch
// publishes, rollbacks, sheds, guard trips/recoveries, shard restarts)
// flow into its event log, and every handle gets a decision flight
// recorder. The hot-path cost is one histogram observation plus one
// flight-ring store per Report (~tens of ns, allocation-free); without
// this option the instrumented paths are true no-ops.
func WithObservability(o ObservabilityOptions) Option {
	return func(c *libConfig) { c.observability = &o }
}

// libObs is the library's resolved observability state (all fields nil
// or zero when WithObservability was not given — every use is nil-safe).
type libObs struct {
	sink        *Metrics
	events      *obs.EventLog
	flightDepth int // 0 disables the per-handle recorders

	faults          *obs.Counter // mocc_safemode_faults_total
	trips           *obs.Counter // mocc_safemode_trips_total
	recoveries      *obs.Counter // mocc_safemode_recoveries_total
	publishes       *obs.Counter // mocc_epoch_publishes_total
	canaryRollbacks *obs.Counter // mocc_canary_rollbacks_total
}

// initObs resolves ObservabilityOptions into the library's obs state and
// registers the library-level series.
func (l *Library) initObs(o *ObservabilityOptions) {
	if o == nil || o.Metrics == nil {
		return
	}
	l.obs.sink = o.Metrics
	l.obs.events = o.Metrics.events
	switch {
	case o.FlightDepth < 0:
		l.obs.flightDepth = 0
	case o.FlightDepth == 0:
		l.obs.flightDepth = 64
	default:
		l.obs.flightDepth = o.FlightDepth
	}
	reg := o.Metrics.reg
	l.obs.faults = reg.Counter("mocc_safemode_faults_total",
		"Pathological learned decisions detected by the safe-mode guard.")
	l.obs.trips = reg.Counter("mocc_safemode_trips_total",
		"Guard trips: handles degraded to the fallback controller.")
	l.obs.recoveries = reg.Counter("mocc_safemode_recoveries_total",
		"Guard recoveries: handles resuming the learned path.")
	l.obs.publishes = reg.Counter("mocc_epoch_publishes_total",
		"Model generations published via Library.Publish.")
	l.obs.canaryRollbacks = reg.Counter("mocc_canary_rollbacks_total",
		"Automatic epoch rollbacks decided by the canary.")
	reg.GaugeFunc("mocc_fleet_apps", "Currently registered application handles.",
		func() float64 { return float64(l.Apps()) })
	reg.GaugeFunc("mocc_fleet_degraded", "Handles currently served by the fallback controller.",
		func() float64 {
			l.mu.RLock()
			apps := make([]*App, 0, len(l.apps))
			for _, a := range l.apps {
				apps = append(apps, a)
			}
			l.mu.RUnlock()
			n := 0
			for _, a := range apps {
				if a.Stats().FallbackActive {
					n++
				}
			}
			return float64(n)
		})
}

// Handler returns the library's observability endpoints: /metrics,
// /vars, /events, /healthz, /flightrec and /debug/pprof/*. It requires
// WithObservability; without it every path answers 404.
func (l *Library) Handler() http.Handler {
	if l.obs.sink == nil {
		return http.NotFoundHandler()
	}
	return obs.NewHandler(obs.HandlerConfig{
		Registry: l.obs.sink.reg,
		Events:   l.obs.events,
		Health:   l.health,
		Flight: func(id uint64) ([]obs.Decision, bool) {
			a, ok := l.App(AppID(id))
			if !ok || a.flight == nil {
				return nil, false
			}
			return a.flight.Dump(), true
		},
		FlightIndex: func() []uint64 {
			l.mu.RLock()
			defer l.mu.RUnlock()
			ids := make([]uint64, 0, len(l.apps))
			for id, a := range l.apps {
				if a.flight != nil {
					ids = append(ids, uint64(id))
				}
			}
			return ids
		},
		Pprof: true,
	})
}

// health is the /healthz probe: unhealthy (503) once the library is
// closed or when a majority of the fleet is degraded to fallback
// controllers; the detail fields surface the canary/overload state
// either way.
func (l *Library) health() (bool, map[string]any) {
	st := l.ServingStats()
	l.mu.RLock()
	apps := make([]*App, 0, len(l.apps))
	for _, a := range l.apps {
		apps = append(apps, a)
	}
	l.mu.RUnlock()
	degraded := 0
	for _, a := range apps {
		if a.Stats().FallbackActive {
			degraded++
		}
	}
	detail := map[string]any{
		"epoch":            st.Epoch,
		"apps":             len(apps),
		"degraded":         degraded,
		"queued":           st.Queued,
		"shed":             st.Shed(),
		"rollbacks":        st.Rollbacks,
		"canary_rollbacks": l.obs.canaryRollbacks.Value(),
	}
	ok := true
	switch {
	case l.closed.Load():
		detail["reason"] = "library closed"
		ok = false
	case len(apps) > 0 && degraded*2 > len(apps):
		detail["reason"] = fmt.Sprintf("%d/%d handles degraded to fallback", degraded, len(apps))
		ok = false
	}
	return ok, detail
}
