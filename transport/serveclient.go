package transport

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mocc"
	"mocc/internal/cc"
	"mocc/internal/datapath"
	"mocc/internal/obs"
)

// ServeConn is the client side of a mocc-serve daemon: one shared UDP
// socket carrying any number of flows' report/rate exchanges (10k flows
// over per-flow sockets would exhaust file descriptors). A central reader
// demuxes rate replies to per-flow channels by flow id; writes are
// serialized on the shared socket.
//
// ServeConnConfig.WrapConn is the chaos seam: a fault-injection shim
// (mocc/internal/faults.Plan.WrapConn) interposed here classifies report
// datagrams on the write side and rate replies on the read side, so
// daemon-path failover is pinned by the same seeded plans as the data path.
type ServeConn struct {
	conn datapath.PacketConn
	raw  *net.UDPConn

	mu    sync.Mutex
	flows map[uint64]chan rateReply

	writeMu sync.Mutex
	seqMu   sync.Mutex
	seq     uint64

	closed     atomic.Bool
	stop       chan struct{}
	readerDone chan struct{}
	malformed  atomic.Int64

	met clientMetrics
}

// ServeConnConfig tunes DialServe.
type ServeConnConfig struct {
	// WrapConn, when non-nil, interposes on the socket (fault injection).
	WrapConn func(PacketConn) PacketConn
	// Metrics, when non-nil, registers the serve-client fleet series
	// (mocc_client_*) on the sink and emits failover/resync events into
	// its event log. Typically the same sink the daemon side passes to
	// mocc.WithObservability, so client and server views of an outage
	// land in one registry with identical latency bucketing.
	Metrics *mocc.Metrics
}

// clientMetrics is the serve-client instrumentation shared by every flow
// on a ServeConn. The zero value is observability-off: every method on a
// nil counter/histogram/event log is a no-op, so the hot path needs no
// branches beyond the nil latency check.
type clientMetrics struct {
	reports   *obs.Counter
	served    *obs.Counter
	shed      *obs.Counter
	timeouts  *obs.Counter
	retries   *obs.Counter
	fallbacks *obs.Counter
	fbReports *obs.Counter
	resyncs   *obs.Counter
	latency   *obs.Histogram
	events    *obs.EventLog
}

func newClientMetrics(m *mocc.Metrics) clientMetrics {
	reg := m.Registry()
	if reg == nil {
		return clientMetrics{}
	}
	return clientMetrics{
		reports: reg.Counter("mocc_client_reports_total",
			"Report calls made by serve-client flows."),
		served: reg.Counter("mocc_client_served_total",
			"Reports answered by the daemon with a usable rate."),
		shed: reg.Counter("mocc_client_shed_total",
			"Reports the daemon answered with an overload shed."),
		timeouts: reg.Counter("mocc_client_timeouts_total",
			"Report attempts that got no daemon reply in time."),
		retries: reg.Counter("mocc_client_retries_total",
			"Extra report attempts made before failing over."),
		fallbacks: reg.Counter("mocc_client_fallbacks_total",
			"Failover episodes: flows degrading to the local controller."),
		fbReports: reg.Counter("mocc_client_fallback_reports_total",
			"Monitor intervals decided by the local fallback controller."),
		resyncs: reg.Counter("mocc_client_resyncs_total",
			"Flows resyncing from the fallback to the learned path."),
		latency: reg.Histogram("mocc_client_report_latency_seconds",
			"Client-observed decision latency per Report, including retries and fallback decisions.", 1e-9),
		events: m.EventLog(),
	}
}

// rateReply is one decoded rate datagram.
type rateReply struct {
	seq   uint64
	nanos int64
	rate  float64
	epoch uint64
}

// DialServe connects a shared client socket to a mocc-serve daemon.
func DialServe(addr string, cfg ServeConnConfig) (*ServeConn, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: serve dial: %w", err)
	}
	raw, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("transport: serve dial: %w", err)
	}
	var conn datapath.PacketConn = raw
	if cfg.WrapConn != nil {
		conn = cfg.WrapConn(conn)
	}
	c := &ServeConn{
		conn:       conn,
		raw:        raw,
		flows:      make(map[uint64]chan rateReply),
		stop:       make(chan struct{}),
		readerDone: make(chan struct{}),
		met:        newClientMetrics(cfg.Metrics),
	}
	go c.readLoop()
	return c, nil
}

// Close tears the socket and the reader down. Flows still blocked in a
// Report unblock with an error.
func (c *ServeConn) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(c.stop)
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// Malformed counts rate replies that failed to decode (corrupted headers,
// truncated datagrams) and were dropped.
func (c *ServeConn) Malformed() int64 { return c.malformed.Load() }

// readLoop is the central demux: decode each rate reply and hand it to its
// flow's channel. Malformed datagrams are counted and dropped; transient
// socket errors (ICMP refused while the daemon restarts) are retried.
func (c *ServeConn) readLoop() {
	defer close(c.readerDone)
	buf := make([]byte, 64*1024)
	for {
		n, err := c.conn.Read(buf)
		if err != nil {
			if c.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		seq, nanos, flow, rate, epoch, ok := datapath.DecodeRate(buf[:n])
		if !ok {
			c.malformed.Add(1)
			continue
		}
		c.mu.Lock()
		ch := c.flows[flow]
		c.mu.Unlock()
		if ch == nil {
			continue
		}
		select {
		case ch <- rateReply{seq: seq, nanos: nanos, rate: rate, epoch: epoch}:
		default: // flow gave up on this seq long ago
		}
	}
}

// nextSeq allocates a socket-wide report sequence number. Sequence numbers
// are what seeded fault plans key blackout windows on, so they are global
// to the socket, mirroring the data-path sender.
func (c *ServeConn) nextSeq() uint64 {
	c.seqMu.Lock()
	c.seq++
	s := c.seq
	c.seqMu.Unlock()
	return s
}

// request performs one report->rate exchange: encode, write, await the
// matching reply. ok=false is a timeout or a transient write failure (the
// daemon is unreachable); a non-nil error means the ServeConn is closed.
func (c *ServeConn) request(flow uint64, ch chan rateReply, rep datapath.WireReport, timeout time.Duration, pkt []byte) (rateReply, bool, error) {
	seq := c.nextSeq()
	datapath.EncodeReport(pkt, seq, time.Now().UnixNano(), rep)
	c.writeMu.Lock()
	_, werr := c.conn.Write(pkt)
	c.writeMu.Unlock()
	if werr != nil {
		if c.closed.Load() || errors.Is(werr, net.ErrClosed) {
			return rateReply{}, false, net.ErrClosed
		}
		// Transient (e.g. ICMP refused while the daemon restarts): report
		// it as an unreachable daemon, not an error.
		return rateReply{}, false, nil
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		select {
		case r := <-ch:
			if r.seq == seq {
				return r, true, nil
			}
			// Stale reply from an earlier timed-out attempt: discard.
		case <-timer.C:
			return rateReply{}, false, nil
		case <-c.stop:
			return rateReply{}, false, net.ErrClosed
		}
	}
}

// FailoverConfig tunes a flow's retry/backoff/fallback behaviour. Zero
// fields keep their defaults.
type FailoverConfig struct {
	// Timeout is the per-attempt wait for a rate reply (default 150ms).
	Timeout time.Duration
	// Retries is how many extra attempts a Report makes before the flow
	// fails over to the local controller (default 1; negative means 0).
	Retries int
	// BackoffBase is the first retry (and first recovery-probe) delay;
	// successive delays double up to BackoffMax, each jittered to 50-100%
	// so a daemon restart is not greeted by a synchronized thundering
	// herd. Defaults 50ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the jitter draw (default 1).
	Seed int64
}

func (c FailoverConfig) withDefaults() FailoverConfig {
	if c.Timeout <= 0 {
		c.Timeout = 150 * time.Millisecond
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.BackoffMax < c.BackoffBase {
		c.BackoffMax = c.BackoffBase
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ServeFlowStats is a point-in-time snapshot of one flow's client counters.
type ServeFlowStats struct {
	// Reports counts Report calls; Served those answered by the daemon
	// with a usable rate; Shed those the daemon answered NaN (overload —
	// the rate was left unchanged).
	Reports int64
	Served  int64
	Shed    int64
	// Timeouts counts attempts with no reply; Retries counts extra
	// attempts made before failing over.
	Timeouts int64
	Retries  int64
	// Fallbacks counts failover episodes (learned path lost); the flow
	// then decides FallbackReports intervals with the local AIMD
	// controller until a probe succeeds, which counts one resync.
	Fallbacks       int64
	FallbackReports int64
	Resyncs         int64
	// FallbackActive reports whether the flow is currently degraded.
	FallbackActive bool
	// Epoch is the last model generation observed in a rate reply.
	Epoch uint64
}

// ServeFlow is one flow's failover-capable handle on a ServeConn: Report
// sends the interval to the daemon with per-request timeout and retry, and
// degrades to a local cc.AIMD controller — seeded from the last served
// rate — while the daemon is unreachable, probing with capped exponential
// backoff + jitter and resyncing to the learned path the moment a probe
// gets a reply. Report never fails because the daemon is down; it only
// errors when the ServeConn itself is closed or the status is invalid.
//
// A ServeFlow is owned by one goroutine: like App.Report, calls must be
// serialized (different flows on one ServeConn are free to run
// concurrently).
type ServeFlow struct {
	conn *ServeConn
	flow uint64
	w    mocc.Weights
	cfg  FailoverConfig
	ch   chan rateReply
	pkt  []byte
	rng  *rand.Rand

	fallback   *cc.AIMD
	lastServed float64 // last rate the daemon answered (0 before the first)
	degraded   bool
	probeDelay time.Duration
	nextProbe  time.Time

	// met shares the ServeConn's fleet counters; stripe is the flow id,
	// so concurrent flows do not share counter cache lines.
	met    clientMetrics
	stripe int

	mu    sync.Mutex // guards stats against concurrent Stats() readers
	stats ServeFlowStats
}

// Flow registers a flow id on the shared socket and returns its handle.
// Flow ids must be unique per ServeConn.
func (c *ServeConn) Flow(flow uint64, w mocc.Weights, cfg FailoverConfig) *ServeFlow {
	f := &ServeFlow{
		conn:     c,
		flow:     flow,
		w:        w,
		cfg:      cfg.withDefaults(),
		ch:       make(chan rateReply, 4),
		pkt:      make([]byte, datapath.WireReportBytes),
		fallback: cc.NewAIMD(),
		met:      c.met,
		stripe:   int(flow),
	}
	f.rng = rand.New(rand.NewSource(f.cfg.Seed + int64(flow)))
	c.mu.Lock()
	c.flows[flow] = f.ch
	c.mu.Unlock()
	return f
}

// SetWeights changes the preference carried by subsequent reports.
func (f *ServeFlow) SetWeights(w mocc.Weights) { f.w = w }

// Stats returns a snapshot of the flow's client counters.
func (f *ServeFlow) Stats() ServeFlowStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// jitter spreads d over [d/2, d).
func (f *ServeFlow) jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(f.rng.Float64()*float64(d/2))
}

// Report closes one monitor interval: the daemon's learned decision when
// reachable, the local fallback when not. See the type comment for the
// failover contract.
func (f *ServeFlow) Report(st mocc.Status) (float64, error) {
	if f.met.latency == nil {
		return f.report(st)
	}
	start := time.Now()
	rate, err := f.report(st)
	f.met.latency.Observe(uint64(time.Since(start)))
	return rate, err
}

// report is Report without the latency observation wrapper.
func (f *ServeFlow) report(st mocc.Status) (float64, error) {
	if st.Duration <= 0 {
		return 0, fmt.Errorf("transport: serve report: Duration %v must be positive", st.Duration)
	}
	f.mu.Lock()
	f.stats.Reports++
	f.mu.Unlock()
	f.met.reports.AddAt(f.stripe, 1)
	rep := wireReport(f.flow, f.w, st)

	if f.degraded {
		if time.Now().Before(f.nextProbe) {
			return f.fallbackDecide(st), nil
		}
		// Probe the daemon: one attempt, no retries — a dead daemon must
		// not stall the flow's monitor loop for more than one timeout.
		r, ok, err := f.conn.request(f.flow, f.ch, rep, f.cfg.Timeout, f.pkt)
		if err != nil {
			return 0, err
		}
		if !ok {
			f.mu.Lock()
			f.stats.Timeouts++
			f.mu.Unlock()
			f.met.timeouts.AddAt(f.stripe, 1)
			if f.probeDelay *= 2; f.probeDelay > f.cfg.BackoffMax {
				f.probeDelay = f.cfg.BackoffMax
			}
			f.nextProbe = time.Now().Add(f.jitter(f.probeDelay))
			return f.fallbackDecide(st), nil
		}
		// The daemon answered: resync to the learned path.
		f.degraded = false
		f.mu.Lock()
		f.stats.Resyncs++
		f.stats.FallbackActive = false
		f.mu.Unlock()
		f.met.resyncs.AddAt(f.stripe, 1)
		f.met.events.Emit(obs.Event{Type: obs.EvResync, App: f.flow, Epoch: r.epoch,
			Msg: "daemon reachable again; flow resynced to the learned path"})
		return f.serveDecide(r, st), nil
	}

	backoff := f.cfg.BackoffBase
	for attempt := 0; ; attempt++ {
		r, ok, err := f.conn.request(f.flow, f.ch, rep, f.cfg.Timeout, f.pkt)
		if err != nil {
			return 0, err
		}
		if ok {
			return f.serveDecide(r, st), nil
		}
		f.mu.Lock()
		f.stats.Timeouts++
		f.mu.Unlock()
		f.met.timeouts.AddAt(f.stripe, 1)
		if attempt >= f.cfg.Retries {
			break
		}
		f.mu.Lock()
		f.stats.Retries++
		f.mu.Unlock()
		f.met.retries.AddAt(f.stripe, 1)
		time.Sleep(f.jitter(backoff))
		if backoff *= 2; backoff > f.cfg.BackoffMax {
			backoff = f.cfg.BackoffMax
		}
	}
	// Every attempt timed out: fail over to the local controller.
	f.degraded = true
	f.probeDelay = f.cfg.BackoffBase
	f.nextProbe = time.Now().Add(f.jitter(f.probeDelay))
	f.mu.Lock()
	f.stats.Fallbacks++
	f.stats.FallbackActive = true
	f.mu.Unlock()
	f.met.fallbacks.AddAt(f.stripe, 1)
	f.met.events.Emit(obs.Event{Type: obs.EvFailover, App: f.flow,
		Msg: fmt.Sprintf("daemon unreachable after %d attempts; flow degraded to the local controller", f.cfg.Retries+1)})
	return f.fallbackDecide(st), nil
}

// serveDecide applies one daemon reply. A NaN rate is the daemon shedding
// under overload: the rate is left unchanged, exactly the safe-mode
// convention the serving engine documents.
func (f *ServeFlow) serveDecide(r rateReply, st mocc.Status) float64 {
	f.mu.Lock()
	f.stats.Epoch = r.epoch
	f.mu.Unlock()
	if math.IsNaN(r.rate) {
		f.mu.Lock()
		f.stats.Shed++
		f.mu.Unlock()
		f.met.shed.AddAt(f.stripe, 1)
		if f.lastServed > 0 {
			return f.lastServed
		}
		// Shed before any served decision: nothing to hold, use the
		// fallback controller's opinion (without a failover episode).
		return f.fallback.Update(ccReport(st))
	}
	f.lastServed = r.rate
	// Keep the fallback controller seeded at the served operating point,
	// so a later failover continues from the last known-good rate instead
	// of restarting from the initial window.
	f.fallback.SetRate(r.rate)
	f.mu.Lock()
	f.stats.Served++
	f.mu.Unlock()
	f.met.served.AddAt(f.stripe, 1)
	return r.rate
}

// fallbackDecide closes the interval with the local AIMD controller.
func (f *ServeFlow) fallbackDecide(st mocc.Status) float64 {
	f.mu.Lock()
	f.stats.FallbackReports++
	f.mu.Unlock()
	f.met.fbReports.AddAt(f.stripe, 1)
	return f.fallback.Update(ccReport(st))
}

// wireReport packs a flow's preference and interval into the wire form.
func wireReport(flow uint64, w mocc.Weights, st mocc.Status) datapath.WireReport {
	return datapath.WireReport{
		Flow: flow,
		Thr:  w.Thr, Lat: w.Lat, Loss: w.Loss,
		DurationNs: st.Duration.Nanoseconds(),
		Sent:       st.PacketsSent,
		Acked:      st.PacketsAcked,
		Lost:       st.PacketsLost,
		AvgRTTNs:   st.AvgRTT.Nanoseconds(),
		MinRTTNs:   st.MinRTT.Nanoseconds(),
	}
}

// ccReport converts a public Status into the internal controller report.
func ccReport(st mocc.Status) cc.Report {
	d := st.Duration.Seconds()
	r := cc.Report{
		Duration:  d,
		Sent:      st.PacketsSent,
		Delivered: st.PacketsAcked,
		Lost:      st.PacketsLost,
		AvgRTT:    st.AvgRTT.Seconds(),
		MinRTT:    st.MinRTT.Seconds(),
	}
	if d > 0 {
		r.SendRate = r.Sent / d
		r.Throughput = r.Delivered / d
	}
	if r.Sent > 0 {
		r.LossRate = r.Lost / r.Sent
	}
	return r
}
