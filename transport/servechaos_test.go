package transport_test

import (
	"math"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mocc"
	"mocc/internal/cc"
	"mocc/internal/datapath"
	"mocc/internal/faults"
	"mocc/transport"
)

// chaosStatus fabricates one plausible monitor interval, varied by round.
func chaosStatus(round int) mocc.Status {
	sent := 40.0 + float64(round%20)
	lost := float64(round % 3)
	return mocc.Status{
		Duration:     40 * time.Millisecond,
		PacketsSent:  sent,
		PacketsAcked: sent - lost,
		PacketsLost:  lost,
		AvgRTT:       time.Duration(40+round%15) * time.Millisecond,
		MinRTT:       40 * time.Millisecond,
	}
}

// startRateServer binds a daemon for lib on addr ("127.0.0.1:0" for any
// port) and runs its read loop.
func startRateServer(t *testing.T, lib *mocc.Library, addr string) *transport.RateServer {
	t.Helper()
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewRateServer(lib, conn)
	go srv.Serve()
	return srv
}

// TestRateServerMalformedDatagrams is the demux-hardening pin: short,
// truncated, wrong-magic and wrong-type datagrams must be counted and
// dropped — never parsed past their bounds, never fatal — and the daemon
// must keep answering well-formed reports afterwards.
func TestRateServerMalformedDatagrams(t *testing.T) {
	lib := chaosLibrary(t, mocc.WithServing(mocc.ServingOptions{Shards: 1}))
	defer lib.Close()
	srv := startRateServer(t, lib, "127.0.0.1:0")
	defer srv.Close()

	raddr, err := net.ResolveUDPAddr("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	valid := make([]byte, datapath.WireReportBytes)
	datapath.EncodeReport(valid, 1, time.Now().UnixNano(), datapath.WireReport{
		Flow: 7, Thr: 0.4, Lat: 0.3, Loss: 0.3,
		DurationNs: int64(40 * time.Millisecond), Sent: 50, Acked: 50,
		AvgRTTNs: int64(45 * time.Millisecond), MinRTTNs: int64(40 * time.Millisecond),
	})
	mutate := func(f func(p []byte)) []byte {
		p := append([]byte(nil), valid...)
		f(p)
		return p
	}

	cases := []struct {
		name string
		pkt  []byte
		want string // "malformed" | "foreign"
	}{
		{"one-byte", []byte{datapath.WireMagic}, "malformed"},
		{"short-header", valid[:datapath.WireHeaderBytes-1], "malformed"},
		{"header-only", valid[:datapath.WireHeaderBytes], "malformed"},
		{"truncated-report", valid[:datapath.WireReportBytes-1], "malformed"},
		{"wrong-magic", mutate(func(p []byte) { p[0] ^= 0xFF }), "malformed"},
		{"garbage", []byte("definitely not a mocc datagram, just bytes"), "malformed"},
		{"data-type", mutate(func(p []byte) { p[1] = datapath.WireTypeData }), "foreign"},
		{"ack-type", mutate(func(p []byte) { p[1] = datapath.WireTypeAck }), "foreign"},
		{"rate-type", mutate(func(p []byte) { p[1] = datapath.WireTypeRate }), "foreign"},
	}
	wantMalformed, wantForeign := int64(0), int64(0)
	for _, tc := range cases {
		if _, err := conn.Write(tc.pkt); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if tc.want == "malformed" {
			wantMalformed++
		} else {
			wantForeign++
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Stats()
		if st.Malformed == wantMalformed && st.Foreign == wantForeign {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats = %+v, want malformed %d foreign %d", st, wantMalformed, wantForeign)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The daemon must still be alive and answering.
	if _, err := conn.Write(valid); err != nil {
		t.Fatal(err)
	}
	reply := make([]byte, 64*1024)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := conn.Read(reply)
	if err != nil {
		t.Fatalf("no rate reply after malformed storm: %v", err)
	}
	seq, _, flow, rate, _, ok := datapath.DecodeRate(reply[:n])
	if !ok || seq != 1 || flow != 7 {
		t.Fatalf("bad rate reply (ok=%v seq=%d flow=%d)", ok, seq, flow)
	}
	if math.IsNaN(rate) || rate < cc.MinPacingRate || rate > cc.MaxPacingRate {
		t.Fatalf("served rate %v outside the pacing envelope", rate)
	}
	if st := srv.Stats(); st.Sessions != 1 || st.Replies != 1 {
		t.Fatalf("sessions=%d replies=%d after valid report, want 1/1", st.Sessions, st.Replies)
	}
}

// TestServeFlowFailoverBlackout pins client failover under a seeded fault
// plan: a blackout window swallows reports mid-run, the flow must degrade to
// its local AIMD controller without a single Report error, keep every
// decided rate inside the pacing envelope, and resync to the daemon when the
// window lifts.
func TestServeFlowFailoverBlackout(t *testing.T) {
	lib := chaosLibrary(t, mocc.WithServing(mocc.ServingOptions{Shards: 1}))
	defer lib.Close()
	srv := startRateServer(t, lib, "127.0.0.1:0")
	defer srv.Close()

	plan := &faults.Plan{
		Seed:     42,
		Blackout: &faults.Blackout{Windows: []faults.Window{{From: 10, To: 18}}},
	}
	var fc *faults.FaultConn
	conn, err := transport.DialServe(srv.Addr(), transport.ServeConnConfig{
		WrapConn: func(inner transport.PacketConn) transport.PacketConn {
			fc = plan.WrapConn(inner)
			return fc
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	sf := conn.Flow(3, mocc.Weights{Thr: 0.4, Lat: 0.3, Loss: 0.3}, transport.FailoverConfig{
		Timeout:     50 * time.Millisecond,
		Retries:     0,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  40 * time.Millisecond,
		Seed:        42,
	})
	const rounds = 150
	for round := 0; round < rounds; round++ {
		rate, err := sf.Report(chaosStatus(round))
		if err != nil {
			t.Fatalf("round %d: Report must never error on a swallowed datagram: %v", round, err)
		}
		if math.IsNaN(rate) || rate < cc.MinPacingRate || rate > cc.MaxPacingRate {
			t.Fatalf("round %d: rate %v left the pacing envelope", round, rate)
		}
		time.Sleep(3 * time.Millisecond) // monitor-interval think time, lets probes fire
	}
	st := sf.Stats()
	if st.Reports != rounds {
		t.Fatalf("Reports = %d, want %d", st.Reports, rounds)
	}
	if st.Fallbacks == 0 || st.FallbackReports == 0 {
		t.Fatalf("blackout never triggered failover: %+v", st)
	}
	if st.Resyncs == 0 || st.FallbackActive {
		t.Fatalf("flow never resynced after the blackout lifted: %+v", st)
	}
	if st.Served == 0 {
		t.Fatalf("no decisions served around the blackout: %+v", st)
	}
	if fs := fc.Stats(); fs.ReportsSwallowed == 0 {
		t.Fatalf("plan injected nothing: %+v", fs)
	}
}

// TestDaemonRestartMidLoad is the kill-the-daemon chaos pin: flows under
// load fall back to their local controllers when the daemon dies (zero
// Report errors), and when a daemon restarts on the same port from the
// crash-safe state snapshot, every flow resyncs and observes the restored
// epoch.
func TestDaemonRestartMidLoad(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "serve.state")

	lib := chaosLibrary(t, mocc.WithServing(mocc.ServingOptions{Shards: 2}))
	if _, err := lib.Publish(lib.Model()); err != nil { // epoch 1, so the restore is observable
		t.Fatal(err)
	}
	savedEpoch := lib.Epoch()
	if err := mocc.SaveServingState(statePath, savedEpoch, lib.Model()); err != nil {
		t.Fatal(err)
	}
	srv := startRateServer(t, lib, "127.0.0.1:0")
	addr := srv.Addr()

	conn, err := transport.DialServe(addr, transport.ServeConnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const nflows = 4
	var (
		stop      = make(chan struct{})
		wg        sync.WaitGroup
		reportErr atomic.Int64
		flows     [nflows]*transport.ServeFlow
	)
	for i := 0; i < nflows; i++ {
		flows[i] = conn.Flow(uint64(i), mocc.Weights{Thr: 0.4, Lat: 0.3, Loss: 0.3},
			transport.FailoverConfig{
				Timeout:     100 * time.Millisecond,
				Retries:     0,
				BackoffBase: 20 * time.Millisecond,
				BackoffMax:  100 * time.Millisecond,
				Seed:        7,
			})
		wg.Add(1)
		go func(sf *transport.ServeFlow) {
			defer wg.Done()
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				rate, err := sf.Report(chaosStatus(round))
				if err != nil {
					reportErr.Add(1)
					return
				}
				if math.IsNaN(rate) || rate < cc.MinPacingRate || rate > cc.MaxPacingRate {
					reportErr.Add(1)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(flows[i])
	}
	waitAll := func(what string, deadline time.Duration, cond func(transport.ServeFlowStats) bool) {
		t.Helper()
		end := time.Now().Add(deadline)
		for {
			n := 0
			for _, sf := range flows {
				if cond(sf.Stats()) {
					n++
				}
			}
			if n == nflows {
				return
			}
			if time.Now().After(end) {
				t.Fatalf("%s: only %d/%d flows (errors %d)", what, n, nflows, reportErr.Load())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Phase 1: everyone is served by the live daemon.
	waitAll("initial serving", 10*time.Second, func(st transport.ServeFlowStats) bool {
		return st.Served >= 5 && st.Epoch == savedEpoch
	})

	// Phase 2: kill the daemon mid-load. Every flow must degrade to its
	// local controller; the load goroutines keep running with zero errors.
	srv.Close()
	lib.Close() // the "crashed process" takes its library with it
	waitAll("failover after daemon death", 10*time.Second, func(st transport.ServeFlowStats) bool {
		return st.FallbackActive && st.FallbackReports >= 3
	})

	// Phase 3: restart from the crash-safe snapshot on the same port.
	epoch, model, err := mocc.LoadServingState(statePath)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != savedEpoch {
		t.Fatalf("restored epoch %d, want %d", epoch, savedEpoch)
	}
	lib2, err := mocc.New(model, mocc.WithoutAdaptation(),
		mocc.WithServing(mocc.ServingOptions{Shards: 2, InitialEpoch: epoch}))
	if err != nil {
		t.Fatal(err)
	}
	defer lib2.Close()
	srv2 := startRateServer(t, lib2, addr)
	defer srv2.Close()

	// Phase 4: every flow resyncs to the restored daemon and sees the
	// snapshot epoch in its rate replies.
	waitAll("resync after restart", 15*time.Second, func(st transport.ServeFlowStats) bool {
		return st.Resyncs >= 1 && !st.FallbackActive && st.Epoch == savedEpoch
	})

	close(stop)
	wg.Wait()
	if n := reportErr.Load(); n != 0 {
		t.Fatalf("%d Report errors across the daemon restart, want 0", n)
	}
	for i, sf := range flows {
		st := sf.Stats()
		if st.Fallbacks == 0 || st.FallbackReports == 0 {
			t.Fatalf("flow %d never degraded: %+v", i, st)
		}
		if lib2.Epoch() != savedEpoch {
			t.Fatalf("restarted daemon epoch %d, want %d", lib2.Epoch(), savedEpoch)
		}
	}
}
