package transport_test

import (
	"testing"
	"time"

	"mocc"
	"mocc/transport"
)

func TestSendValidation(t *testing.T) {
	if _, err := transport.Send("127.0.0.1:9", nil, time.Second, transport.Config{}); err == nil {
		t.Error("nil app accepted")
	}
}

// TestLoopbackTransfer hosts a registered handle over a real loopback
// socket pair, with emulated loss, and checks both sides' accounting.
func TestLoopbackTransfer(t *testing.T) {
	if testing.Short() {
		t.Skip("training pipeline in -short mode")
	}
	opts := mocc.QuickTraining()
	opts.Omega = 3
	opts.BootstrapIters = 2
	opts.BootstrapCycles = 1
	opts.TraverseCycles = 0
	lib, err := mocc.Train(opts)
	if err != nil {
		t.Fatal(err)
	}
	app, err := lib.Register(mocc.ThroughputPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Unregister()

	recv, err := transport.Listen("127.0.0.1:0", transport.ReceiverConfig{DropProb: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	stats, err := transport.Send(recv.Addr(), app, 400*time.Millisecond, transport.Config{
		MI:          20 * time.Millisecond,
		LossTimeout: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent == 0 {
		t.Fatal("sender moved no packets")
	}
	if stats.Acked == 0 {
		t.Fatalf("no acknowledgements came back: %+v", stats)
	}
	if stats.Acked > stats.Sent {
		t.Errorf("acked %d > sent %d", stats.Acked, stats.Sent)
	}
	if recv.Received() == 0 {
		t.Error("receiver accepted nothing")
	}
	if stats.Intervals == 0 {
		t.Error("no monitor intervals closed")
	}

	// The handle saw every interval the transport closed, and its Status
	// stream passed validation (Send fails otherwise).
	s := app.Stats()
	if int(s.Reports) != stats.Intervals {
		t.Errorf("app reports %d != transport intervals %d", s.Reports, stats.Intervals)
	}
	if s.PacketsAcked == 0 || s.AvgRTT <= 0 {
		t.Errorf("implausible telemetry: %+v", s)
	}
}
