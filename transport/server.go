package transport

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mocc"
	"mocc/internal/datapath"
)

// RateServer hosts a serving *mocc.Library as a shared rate-decision daemon
// on a UDP socket: flows send report datagrams (preference + one monitor
// interval of measurements) and get rate datagrams back, with concurrent
// flows' decisions coalesced by the library's serving engine. It is the
// engine room of cmd/mocc-serve, exported so resilience tests (and other
// embedders) can start, kill and restart a daemon in-process.
//
// Flows are registered lazily on first report, keyed by (source address,
// flow id); a flow evicted by the library's idle janitor simply
// re-registers on its next report. Each flow's reports are serialized by a
// per-session worker goroutine with a small buffer, so a slow decision
// (one batch flush) never blocks the socket read loop — a full session
// buffer drops the report instead (the flow retries next interval).
//
// The read loop never trusts the network: datagrams that are short, carry
// the wrong magic, are truncated below the report length, or are of a
// non-report type are counted and dropped, never parsed past their bounds.
type RateServer struct {
	lib  *mocc.Library
	conn *net.UDPConn

	mu       sync.Mutex
	sessions map[sessionKey]*session

	started atomic.Bool
	done    chan struct{} // closed when Serve has exited and sessions are stopped

	replies   atomic.Int64
	dropped   atomic.Int64
	rejected  atomic.Int64
	malformed atomic.Int64
	foreign   atomic.Int64
}

// RateServerStats is a point-in-time snapshot of daemon counters.
type RateServerStats struct {
	// Sessions is the number of currently registered flow sessions.
	Sessions int
	// Replies counts rate datagrams sent; Dropped counts reports dropped
	// on a full session queue (socket backpressure); Rejected counts
	// registrations refused (invalid preference weights).
	Replies  int64
	Dropped  int64
	Rejected int64
	// Malformed counts datagrams failing header or length validation
	// (short, wrong magic, truncated report); Foreign counts well-formed
	// datagrams of a non-report type (data/ack/rate sent at the daemon).
	Malformed int64
	Foreign   int64
}

// sessionKey identifies a flow: the datagram's source address plus its
// self-assigned flow id (many flows may share one socket).
type sessionKey struct {
	addr string
	flow uint64
}

// session is one registered flow: its library handle and the channel its
// worker goroutine consumes.
type session struct {
	app  *mocc.App
	addr *net.UDPAddr
	ch   chan reportMsg
	w    mocc.Weights
}

type reportMsg struct {
	seq   uint64
	nanos int64
	rep   datapath.WireReport
}

// NewRateServer wraps an already-bound UDP socket. The caller runs Serve
// (usually in its own goroutine) and shuts down with Close.
func NewRateServer(lib *mocc.Library, conn *net.UDPConn) *RateServer {
	return &RateServer{
		lib:      lib,
		conn:     conn,
		sessions: make(map[sessionKey]*session),
		done:     make(chan struct{}),
	}
}

// Addr returns the socket's local address.
func (s *RateServer) Addr() string { return s.conn.LocalAddr().String() }

// RegisterMetrics registers the daemon datagram counters (mocc_daemon_*)
// on the sink. Every series is a scrape-time read of the counters the
// server already keeps, so the socket hot path pays nothing.
func (s *RateServer) RegisterMetrics(m *mocc.Metrics) {
	reg := m.Registry()
	if reg == nil {
		return
	}
	reg.GaugeFunc("mocc_daemon_sessions", "Currently registered flow sessions.",
		func() float64 {
			s.mu.Lock()
			n := len(s.sessions)
			s.mu.Unlock()
			return float64(n)
		})
	reg.CounterFunc("mocc_daemon_replies_total", "Rate datagrams sent to flows.",
		func() uint64 { return uint64(s.replies.Load()) })
	reg.CounterFunc("mocc_daemon_dropped_total", "Reports dropped on a full session queue.",
		func() uint64 { return uint64(s.dropped.Load()) })
	reg.CounterFunc("mocc_daemon_rejected_total", "Flow registrations refused (invalid preference).",
		func() uint64 { return uint64(s.rejected.Load()) })
	reg.CounterFunc("mocc_daemon_malformed_total", "Datagrams failing header or length validation.",
		func() uint64 { return uint64(s.malformed.Load()) })
	reg.CounterFunc("mocc_daemon_foreign_total", "Well-formed datagrams of a non-report type.",
		func() uint64 { return uint64(s.foreign.Load()) })
}

// Stats returns a snapshot of the daemon counters.
func (s *RateServer) Stats() RateServerStats {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	return RateServerStats{
		Sessions:  n,
		Replies:   s.replies.Load(),
		Dropped:   s.dropped.Load(),
		Rejected:  s.rejected.Load(),
		Malformed: s.malformed.Load(),
		Foreign:   s.foreign.Load(),
	}
}

// dgramKind classifies an inbound daemon datagram.
type dgramKind int

const (
	dgramReport dgramKind = iota
	dgramMalformed
	dgramForeign
)

// classifyDatagram validates an inbound datagram without ever reading past
// its bounds: anything shorter than a header, with the wrong magic, of a
// non-report type, or truncated below the full report length is rejected
// with a classification instead of a panic.
func classifyDatagram(buf []byte) dgramKind {
	typ, _, ok := datapath.DecodeHeader(buf)
	if !ok {
		return dgramMalformed
	}
	if typ != datapath.WireTypeReport {
		return dgramForeign
	}
	if len(buf) < datapath.WireReportBytes {
		return dgramMalformed
	}
	return dgramReport
}

// Serve runs the socket read loop until the socket is closed (Close, or an
// external close of the conn), then stops every session worker. It is the
// daemon hot path: decode, demux to the session worker, never block.
func (s *RateServer) Serve() {
	s.started.Store(true)
	defer close(s.done)
	defer s.closeSessions()
	buf := make([]byte, 64*1024)
	for {
		n, raddr, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			return // closed socket (shutdown) or a fatal socket error
		}
		switch classifyDatagram(buf[:n]) {
		case dgramMalformed:
			s.malformed.Add(1)
			continue
		case dgramForeign:
			s.foreign.Add(1)
			continue
		}
		seq, nanos, rep, ok := datapath.DecodeReport(buf[:n])
		if !ok {
			s.malformed.Add(1)
			continue
		}
		sess := s.lookup(sessionKey{raddr.String(), rep.Flow}, raddr, rep)
		if sess == nil {
			continue
		}
		select {
		case sess.ch <- reportMsg{seq: seq, nanos: nanos, rep: rep}:
		default:
			s.dropped.Add(1) // backpressure: drop rather than stall the socket
		}
	}
}

// Close shuts the daemon down: the socket closes, Serve returns and stops
// every session worker, and Close waits for that teardown to finish. The
// library is not closed — it belongs to the caller (and may be resumed
// into a new RateServer after a snapshot restore).
func (s *RateServer) Close() error {
	err := s.conn.Close()
	if s.started.Load() {
		<-s.done
	} else {
		s.closeSessions()
	}
	return err
}

// lookup returns the flow's session, registering it on first contact.
func (s *RateServer) lookup(key sessionKey, raddr *net.UDPAddr, rep datapath.WireReport) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[key]; ok {
		return sess
	}
	w := mocc.Weights{Thr: rep.Thr, Lat: rep.Lat, Loss: rep.Loss}
	app, err := s.lib.Register(w)
	if err != nil {
		s.rejected.Add(1)
		return nil
	}
	laddr := *raddr
	sess := &session{app: app, addr: &laddr, ch: make(chan reportMsg, 16), w: w}
	s.sessions[key] = sess
	go s.runSession(key, sess)
	return sess
}

// drop removes a torn-down session so a later report re-registers.
func (s *RateServer) drop(key sessionKey, sess *session) {
	s.mu.Lock()
	if s.sessions[key] == sess {
		delete(s.sessions, key)
	}
	s.mu.Unlock()
}

// runSession serializes one flow's Reports and writes the rate replies.
func (s *RateServer) runSession(key sessionKey, sess *session) {
	out := make([]byte, datapath.WireRateBytes)
	for m := range sess.ch {
		if w := (mocc.Weights{Thr: m.rep.Thr, Lat: m.rep.Lat, Loss: m.rep.Loss}); w != sess.w {
			if err := sess.app.SetWeights(w); err == nil {
				sess.w = w
			}
		}
		rate, err := sess.app.Report(mocc.Status{
			Duration:     time.Duration(m.rep.DurationNs),
			PacketsSent:  m.rep.Sent,
			PacketsAcked: m.rep.Acked,
			PacketsLost:  m.rep.Lost,
			AvgRTT:       time.Duration(m.rep.AvgRTTNs),
			MinRTT:       time.Duration(m.rep.MinRTTNs),
		})
		if err != nil {
			// Evicted by the idle janitor (or unregistered): tear the
			// session down; the flow's next report re-registers. Other
			// errors are malformed statuses — ignore the report.
			if _, alive := s.lib.App(sess.app.ID()); !alive {
				s.drop(key, sess)
				return
			}
			continue
		}
		datapath.EncodeRate(out, m.seq, m.nanos, m.rep.Flow, rate, s.lib.Epoch())
		if _, err := s.conn.WriteToUDP(out, sess.addr); err == nil {
			s.replies.Add(1)
		}
	}
}

// closeSessions stops every session worker.
func (s *RateServer) closeSessions() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, sess := range s.sessions {
		close(sess.ch)
		delete(s.sessions, key)
	}
}
