package transport_test

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mocc"
	"mocc/internal/cc"
	"mocc/internal/faults"
	"mocc/transport"
)

// chaosModel shares one minimally-trained model across the chaos suite;
// each test builds its own Library (with its own fault options) over it.
var (
	chaosOnce  sync.Once
	chaosModel *mocc.Model
	chaosErr   error
)

func chaosLibrary(t *testing.T, opts ...mocc.Option) *mocc.Library {
	t.Helper()
	chaosOnce.Do(func() {
		topts := mocc.QuickTraining()
		topts.Omega = 3
		topts.BootstrapIters = 2
		topts.BootstrapCycles = 1
		topts.TraverseCycles = 0
		var lib *mocc.Library
		lib, chaosErr = mocc.Train(topts)
		if chaosErr == nil {
			chaosModel = lib.Model()
		}
	})
	if chaosErr != nil {
		t.Fatalf("training chaos model: %v", chaosErr)
	}
	lib, err := mocc.New(chaosModel, append([]mocc.Option{mocc.WithoutAdaptation()}, opts...)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return lib
}

func registerChaosApp(t *testing.T, lib *mocc.Library) *mocc.App {
	t.Helper()
	app, err := lib.Register(mocc.BalancedPreference)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { app.Unregister() })
	return app
}

func assertRateInEnvelope(t *testing.T, app *mocc.App, context string) {
	t.Helper()
	r := app.Rate()
	if math.IsNaN(r) || r < cc.MinPacingRate || r > cc.MaxPacingRate {
		t.Fatalf("%s: app rate %v left the pacing envelope [%v, %v]",
			context, r, float64(cc.MinPacingRate), float64(cc.MaxPacingRate))
	}
}

// TestBlackoutRecoveryReceiverClosedMidSend kills the receiver partway
// through a transfer: Send must return (no hang) with the disruption
// visible in Stats, and the app's published rate must stay inside the
// pacing envelope.
func TestBlackoutRecoveryReceiverClosedMidSend(t *testing.T) {
	lib := chaosLibrary(t)
	app := registerChaosApp(t, lib)

	recv, err := transport.Listen("127.0.0.1:0", transport.ReceiverConfig{})
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		stats transport.Stats
		err   error
	}
	done := make(chan result, 1)
	go func() {
		stats, err := transport.Send(recv.Addr(), app, 800*time.Millisecond, transport.Config{
			MI:          20 * time.Millisecond,
			MaxRatePps:  2000,
			LossTimeout: 60 * time.Millisecond,
		})
		done <- result{stats, err}
	}()

	time.Sleep(250 * time.Millisecond)
	_ = recv.Close()

	var res result
	select {
	case res = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Send hung after the receiver died")
	}
	if res.err != nil && !strings.Contains(res.err.Error(), "write failures") {
		t.Fatalf("Send returned an unexpected error: %v", res.err)
	}
	st := res.stats
	if st.Sent == 0 || st.Acked == 0 {
		t.Fatalf("transfer never got going: %+v", st)
	}
	if st.WriteErrors == 0 && st.Blackouts == 0 && st.Lost == 0 {
		t.Fatalf("receiver death left no trace in Stats: %+v", st)
	}
	assertRateInEnvelope(t, app, "after receiver death")
}

// TestChaosSequenceBlackoutWindowRecovery drives a seeded fault plan that
// silences the receiver for a window of wire sequences: the sender must
// detect the ack blackout, drop to probing, and hand control back to the
// learned path once acks resume — all visible in Stats.
func TestChaosSequenceBlackoutWindowRecovery(t *testing.T) {
	lib := chaosLibrary(t)
	app := registerChaosApp(t, lib)

	recv, err := transport.Listen("127.0.0.1:0", transport.ReceiverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	plan := &faults.Plan{
		Seed:     42,
		Blackout: &faults.Blackout{Windows: []faults.Window{{From: 50, To: 120}}},
	}
	var fc *faults.FaultConn
	stats, err := transport.Send(recv.Addr(), app, 2*time.Second, transport.Config{
		MI:          20 * time.Millisecond,
		MaxRatePps:  2000,
		LossTimeout: 60 * time.Millisecond,
		WrapConn: func(inner transport.PacketConn) transport.PacketConn {
			fc = plan.WrapConn(inner)
			return fc
		},
	})
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if fc.Stats().DataSwallowed == 0 {
		t.Fatal("the blackout window never fired; widen it or slow the send")
	}
	if stats.Blackouts == 0 || stats.BlackoutIntervals == 0 {
		t.Fatalf("ack blackout not detected: %+v", stats)
	}
	if stats.BlackoutIntervals >= stats.Intervals {
		t.Fatalf("sender never recovered from the blackout: %+v", stats)
	}
	if stats.Acked == 0 {
		t.Fatalf("no acks after recovery: %+v", stats)
	}
	if stats.Lost == 0 {
		t.Fatalf("swallowed window not visible as loss: %+v", stats)
	}
	assertRateInEnvelope(t, app, "after blackout recovery")
}

// TestChaosCorruptedAndLossyWire composes every wire injector at once:
// the transfer must complete without error or panic, deliver some
// traffic, and the injectors must actually have fired.
func TestChaosCorruptedAndLossyWire(t *testing.T) {
	lib := chaosLibrary(t)
	app := registerChaosApp(t, lib)

	recv, err := transport.Listen("127.0.0.1:0", transport.ReceiverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	plan := &faults.Plan{
		Seed:      7,
		AckLoss:   &faults.AckLoss{Prob: 0.15, Burst: 2},
		Duplicate: &faults.Duplicate{Prob: 0.1},
		Reorder:   &faults.Reorder{Prob: 0.1, Delay: 2},
		Corrupt:   &faults.Corrupt{Prob: 0.2, Data: true, Acks: true},
	}
	var fc *faults.FaultConn
	stats, err := transport.Send(recv.Addr(), app, time.Second, transport.Config{
		MI:          20 * time.Millisecond,
		MaxRatePps:  2000,
		LossTimeout: 60 * time.Millisecond,
		WrapConn: func(inner transport.PacketConn) transport.PacketConn {
			fc = plan.WrapConn(inner)
			return fc
		},
	})
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if stats.Acked == 0 {
		t.Fatalf("nothing delivered through the lossy wire: %+v", stats)
	}
	cs := fc.Stats()
	if cs.AcksDropped == 0 || cs.DataCorrupted == 0 || cs.AcksCorrupted == 0 {
		t.Fatalf("injectors never fired: %+v", cs)
	}
	assertRateInEnvelope(t, app, "after lossy-wire transfer")
}

// TestChaosNaNPoisonedModelOverTransport runs a NaN-poisoned model over a
// real socket transfer: safe mode must trip to the AIMD fallback, the
// published rate must never leave the envelope (sampled concurrently
// throughout the transfer), and the learned path must be back in control
// by the end.
func TestChaosNaNPoisonedModelOverTransport(t *testing.T) {
	var calls atomic.Int64
	nan := func(act float64) float64 {
		if i := int(calls.Add(1)) - 1; i >= 5 && i < 10 {
			return math.NaN()
		}
		return act
	}
	lib := chaosLibrary(t,
		mocc.WithInferenceFault(nan),
		mocc.WithSafeMode(mocc.SafeModeConfig{TripAfter: 2, RecoverAfter: 3}),
	)
	app := registerChaosApp(t, lib)

	recv, err := transport.Listen("127.0.0.1:0", transport.ReceiverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	stopSampling := make(chan struct{})
	var badRate atomic.Value
	go func() {
		for {
			select {
			case <-stopSampling:
				return
			case <-time.After(5 * time.Millisecond):
				r := app.Rate()
				if math.IsNaN(r) || r < cc.MinPacingRate || r > cc.MaxPacingRate {
					badRate.Store(r)
					return
				}
			}
		}
	}()

	stats, err := transport.Send(recv.Addr(), app, time.Second, transport.Config{
		MI:          20 * time.Millisecond,
		MaxRatePps:  2000,
		LossTimeout: 60 * time.Millisecond,
	})
	close(stopSampling)
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if r := badRate.Load(); r != nil {
		t.Fatalf("published rate %v left the envelope during the transfer", r)
	}
	if stats.Intervals == 0 || stats.Acked == 0 {
		t.Fatalf("transfer never got going: %+v", stats)
	}
	ast := app.Stats()
	if ast.Fallbacks < 1 || ast.FallbackIntervals == 0 {
		t.Fatalf("NaN burst did not trip safe mode: %+v", ast)
	}
	if !strings.Contains(ast.LastFault, "non-finite") {
		t.Fatalf("LastFault = %q, want a non-finite-action fault", ast.LastFault)
	}
	if ast.FallbackActive {
		t.Fatal("learned path not back in control after the NaN window cleared")
	}
}
