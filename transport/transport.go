// Package transport is the public UDP datapath binding for MOCC: a real
// socket loop that hosts a registered *mocc.App end to end. Listen starts
// an acknowledging receiver; Send paces padded UDP data packets toward it
// at the rate the application's handle decides, closing one monitor
// interval at a time through App.Report — the §5 user-space (UDT-style)
// deployment over real sockets.
//
// The wire protocol is the 18-byte header shared with the internal
// datapath experiments (magic, type, sequence, send timestamp; acks echo
// the header), so transport senders interoperate with internal receivers
// and vice versa.
package transport

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"mocc"
	"mocc/internal/datapath"
)

// Receiver is a UDP sink that acknowledges every data packet, optionally
// dropping a configured fraction to emulate loss on loopback links.
type Receiver struct {
	r *datapath.Receiver
}

// ReceiverConfig tunes Listen.
type ReceiverConfig struct {
	// DropProb drops this fraction of data packets before acking
	// (emulated loss). Zero acks everything.
	DropProb float64
	// Seed drives the drop draw.
	Seed int64
}

// Listen binds a UDP socket on addr ("127.0.0.1:0" picks a free port) and
// serves acknowledgements until Close.
func Listen(addr string, cfg ReceiverConfig) (*Receiver, error) {
	r, err := datapath.StartReceiver(addr, cfg.DropProb, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Receiver{r: r}, nil
}

// Addr returns the bound address (useful with port 0).
func (r *Receiver) Addr() string { return r.r.Addr() }

// Received returns the count of accepted data packets.
func (r *Receiver) Received() int { return r.r.Received() }

// Close stops the receiver and releases the socket.
func (r *Receiver) Close() error { return r.r.Close() }

// Config tunes a Send loop.
type Config struct {
	// MI is the monitor-interval length (default 20ms).
	MI time.Duration
	// PayloadBytes sizes data packets (default 1200).
	PayloadBytes int
	// MaxRatePps caps pacing (default 20000 pkts/s; loopback is fast).
	MaxRatePps float64
	// LossTimeout declares unacked packets lost after this long
	// (default 4x the observed min RTT, floor 20ms).
	LossTimeout time.Duration
}

// Stats summarizes a finished transfer.
type Stats struct {
	// Sent / Acked / Lost count packets over the whole transfer.
	Sent, Acked, Lost int
	// AvgRTT is the mean RTT over every acked packet.
	AvgRTT time.Duration
	// ThroughputMbps is delivered payload bits over wall-clock time.
	ThroughputMbps float64
	// Duration is the wall-clock transfer time.
	Duration time.Duration
	// Intervals counts monitor intervals reported to the App.
	Intervals int
}

// Send paces packets to addr under the control of app for the given
// duration: each monitor interval it closes the books (acks collected,
// timeouts declared lost), builds a mocc.Status, and lets app.Report decide
// the next pacing rate. The App keeps accumulating telemetry across calls,
// so app.Stats() after Send shows the transfer from the controller's side.
func Send(addr string, app *mocc.App, duration time.Duration, cfg Config) (Stats, error) {
	var stats Stats
	if app == nil {
		return stats, errors.New("transport: nil app")
	}
	if duration <= 0 {
		return stats, errors.New("transport: duration must be positive")
	}
	if cfg.MI <= 0 {
		cfg.MI = 20 * time.Millisecond
	}
	if cfg.PayloadBytes < datapath.WireHeaderBytes {
		cfg.PayloadBytes = 1200
	}
	if cfg.MaxRatePps <= 0 {
		cfg.MaxRatePps = 20000
	}

	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return stats, fmt.Errorf("transport: resolving %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return stats, fmt.Errorf("transport: dialing %q: %w", addr, err)
	}
	defer conn.Close()

	var (
		mu          sync.Mutex
		outstanding = map[uint64]time.Time{}
		miAcked     int
		miRTTSum    time.Duration
		totalAcked  int
		rttSum      time.Duration
		minRTT      time.Duration
	)

	// Ack collector.
	stop := make(chan struct{})
	var ackWG sync.WaitGroup
	ackWG.Add(1)
	go func() {
		defer ackWG.Done()
		buf := make([]byte, 2048)
		for {
			_ = conn.SetReadDeadline(time.Now().Add(5 * time.Millisecond))
			n, err := conn.Read(buf)
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					select {
					case <-stop:
						return
					default:
						continue
					}
				}
				return
			}
			seq, _, ok := datapath.DecodeAck(buf[:n])
			if !ok {
				continue
			}
			now := time.Now()
			mu.Lock()
			if sentAt, ok := outstanding[seq]; ok {
				delete(outstanding, seq)
				rtt := now.Sub(sentAt)
				miAcked++
				miRTTSum += rtt
				totalAcked++
				rttSum += rtt
				if minRTT == 0 || rtt < minRTT {
					minRTT = rtt
				}
			}
			mu.Unlock()
		}
	}()

	// Pacing loop, driven by the handle's published rate.
	rate := math.Min(app.Rate(), cfg.MaxRatePps)
	if rate <= 0 {
		close(stop)
		ackWG.Wait()
		return stats, fmt.Errorf("transport: app rate %v is not a usable pacing rate", rate)
	}
	pkt := make([]byte, cfg.PayloadBytes)

	start := time.Now()
	deadline := start.Add(duration)
	nextMI := start.Add(cfg.MI)
	var seq uint64
	miSent := 0
	nextSend := start
	var reportErr error

	for time.Now().Before(deadline) {
		now := time.Now()
		if now.Before(nextSend) {
			time.Sleep(nextSend.Sub(now))
			continue
		}
		seq++
		datapath.EncodeDataHeader(pkt, seq, time.Now().UnixNano())
		if _, err := conn.Write(pkt); err == nil {
			mu.Lock()
			outstanding[seq] = time.Now()
			mu.Unlock()
			miSent++
			stats.Sent++
		}
		nextSend = nextSend.Add(time.Duration(float64(time.Second) / rate))
		if nextSend.Before(time.Now().Add(-50 * time.Millisecond)) {
			nextSend = time.Now() // don't burst to catch up after stalls
		}

		if time.Now().After(nextMI) {
			var next float64
			next, reportErr = closeInterval(app, cfg, &mu, outstanding, &miSent, &miAcked, &miRTTSum, &minRTT, &stats)
			if reportErr != nil {
				break
			}
			rate = math.Min(next, cfg.MaxRatePps)
			nextMI = nextMI.Add(cfg.MI)
		}
	}

	close(stop)
	ackWG.Wait()

	stats.Duration = time.Since(start)
	mu.Lock()
	stats.Acked = totalAcked
	if totalAcked > 0 {
		stats.AvgRTT = rttSum / time.Duration(totalAcked)
	}
	mu.Unlock()
	if secs := stats.Duration.Seconds(); secs > 0 {
		stats.ThroughputMbps = float64(stats.Acked*cfg.PayloadBytes) * 8 / 1e6 / secs
	}
	return stats, reportErr
}

// closeInterval ends one monitor interval: it infers losses from the
// timeout, builds the application-visible Status, and asks the handle for
// the next rate.
func closeInterval(app *mocc.App, cfg Config, mu *sync.Mutex, outstanding map[uint64]time.Time,
	miSent, miAcked *int, miRTTSum *time.Duration, minRTTp *time.Duration, stats *Stats) (float64, error) {

	mu.Lock()
	minRTT := *minRTTp // written by the ack goroutine under mu
	timeout := cfg.LossTimeout
	if timeout <= 0 {
		timeout = 4 * minRTT
		if timeout < 20*time.Millisecond {
			timeout = 20 * time.Millisecond
		}
	}
	now := time.Now()
	lost := 0
	for seq, sentAt := range outstanding {
		if now.Sub(sentAt) > timeout {
			delete(outstanding, seq)
			lost++
		}
	}
	sent, acked := *miSent, *miAcked
	rttSum := *miRTTSum
	*miSent, *miAcked, *miRTTSum = 0, 0, 0
	mu.Unlock()

	stats.Lost += lost
	stats.Intervals++

	avgRTT := time.Duration(0)
	if acked > 0 {
		avgRTT = rttSum / time.Duration(acked)
	} else if minRTT > 0 {
		avgRTT = minRTT
	} else {
		avgRTT = time.Millisecond
	}
	miMinRTT := minRTT
	if miMinRTT <= 0 {
		miMinRTT = avgRTT
	}

	// Acks and timeouts settle after the interval that sent the packets,
	// so fold the in-flight carryover into the sent count: the Status
	// invariant acked+lost <= sent then holds per interval, and the
	// controller features (send/delivery ratios) are unaffected.
	effSent := sent
	if acked+lost > effSent {
		effSent = acked + lost
	}
	return app.Report(mocc.Status{
		Duration:     cfg.MI,
		PacketsSent:  float64(effSent),
		PacketsAcked: float64(acked),
		PacketsLost:  float64(lost),
		AvgRTT:       avgRTT,
		MinRTT:       miMinRTT,
	})
}
