// Package transport is the public UDP datapath binding for MOCC: a real
// socket loop that hosts a registered *mocc.App end to end. Listen starts
// an acknowledging receiver; Send paces padded UDP data packets toward it
// at the rate the application's handle decides, closing one monitor
// interval at a time through App.Report — the §5 user-space (UDT-style)
// deployment over real sockets.
//
// The wire protocol is the 18-byte header shared with the internal
// datapath experiments (magic, type, sequence, send timestamp; acks echo
// the header), so transport senders interoperate with internal receivers
// and vice versa.
//
// The sender is hardened against a misbehaving path: it detects ack
// blackouts (no acknowledgements for BlackoutAfter consecutive monitor
// intervals, or a fatal socket read error) and drops to a conservative
// probing rate with exponential backoff until acks return, counts socket
// write errors and aborts with a descriptive error once they become
// persistent, and bounds the in-flight bookkeeping so a receiver that
// never acks cannot grow sender memory without limit. Config.WrapConn
// lets a fault-injection shim (mocc/internal/faults) interpose on the
// socket for chaos testing.
package transport

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mocc"
	"mocc/internal/datapath"
	"mocc/internal/obs"
)

// Receiver is a UDP sink that acknowledges every data packet, optionally
// dropping a configured fraction to emulate loss on loopback links.
type Receiver struct {
	r *datapath.Receiver
}

// ReceiverConfig tunes Listen.
type ReceiverConfig struct {
	// DropProb drops this fraction of data packets before acking
	// (emulated loss). Zero acks everything.
	DropProb float64
	// Seed drives the drop draw.
	Seed int64
}

// Listen binds a UDP socket on addr ("127.0.0.1:0" picks a free port) and
// serves acknowledgements until Close.
func Listen(addr string, cfg ReceiverConfig) (*Receiver, error) {
	r, err := datapath.StartReceiver(addr, cfg.DropProb, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Receiver{r: r}, nil
}

// Addr returns the bound address (useful with port 0).
func (r *Receiver) Addr() string { return r.r.Addr() }

// Received returns the count of accepted data packets.
func (r *Receiver) Received() int { return r.r.Received() }

// Close stops the receiver and releases the socket.
func (r *Receiver) Close() error { return r.r.Close() }

// PacketConn is the socket surface Send drives — the subset of
// *net.UDPConn it uses. Config.WrapConn can interpose on it. It aliases
// the internal datapath definition (both packages grew structurally
// identical seams with the WrapConn hooks), so a wrapper written against
// one works verbatim against the other.
type PacketConn = datapath.PacketConn

// Config tunes a Send loop.
type Config struct {
	// MI is the monitor-interval length (default 20ms).
	MI time.Duration
	// PayloadBytes sizes data packets (default 1200).
	PayloadBytes int
	// MaxRatePps caps pacing (default 20000 pkts/s; loopback is fast).
	MaxRatePps float64
	// LossTimeout declares unacked packets lost after this long
	// (default 4x the observed min RTT, floor 20ms).
	LossTimeout time.Duration

	// WrapConn, if set, interposes on the dialed socket before any
	// traffic flows — the hook the fault-injection shim
	// (mocc/internal/faults.Plan.WrapConn) plugs into.
	WrapConn func(PacketConn) PacketConn
	// BlackoutAfter is how many consecutive ackless monitor intervals
	// (with traffic in flight) trigger blackout probing (default 3).
	BlackoutAfter int
	// BlackoutFloorPps is the minimum probing rate during a blackout
	// (default one packet per MI).
	BlackoutFloorPps float64
	// MaxConsecWriteErrs aborts the transfer after this many consecutive
	// socket write failures (default 64).
	MaxConsecWriteErrs int
	// MaxOutstanding bounds the in-flight bookkeeping map; beyond it the
	// oldest entries are evicted and counted lost (default 65536).
	MaxOutstanding int

	// Metrics, when non-nil, registers the sender-side path-health series
	// (mocc_transport_*) on the sink and emits blackout begin/end events
	// into its event log. Several concurrent Send loops may share one
	// sink — series register idempotently and counters accumulate across
	// transfers.
	Metrics *mocc.Metrics
}

// txMetrics is the sender-side instrumentation (zero value = off; every
// method on a nil counter/histogram/event log is a no-op).
type txMetrics struct {
	writeErrs   *obs.Counter
	blackouts   *obs.Counter
	blackoutDur *obs.Histogram
	events      *obs.EventLog
}

func newTxMetrics(m *mocc.Metrics) txMetrics {
	reg := m.Registry()
	if reg == nil {
		return txMetrics{}
	}
	return txMetrics{
		writeErrs: reg.Counter("mocc_transport_write_errors_total",
			"Failed socket writes across all Send loops."),
		blackouts: reg.Counter("mocc_transport_blackouts_total",
			"Detected ack-blackout spans across all Send loops."),
		blackoutDur: reg.Histogram("mocc_transport_blackout_seconds",
			"Duration of each ack-blackout span (sum is total dark time).", 1e-9),
		events: m.EventLog(),
	}
}

func (cfg *Config) applyDefaults() {
	if cfg.MI <= 0 {
		cfg.MI = 20 * time.Millisecond
	}
	if cfg.PayloadBytes < datapath.WireHeaderBytes {
		cfg.PayloadBytes = 1200
	}
	if cfg.MaxRatePps <= 0 {
		cfg.MaxRatePps = 20000
	}
	if cfg.BlackoutAfter <= 0 {
		cfg.BlackoutAfter = 3
	}
	if cfg.BlackoutFloorPps <= 0 {
		cfg.BlackoutFloorPps = float64(time.Second) / float64(cfg.MI)
	}
	if cfg.MaxConsecWriteErrs <= 0 {
		cfg.MaxConsecWriteErrs = 64
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 1 << 16
	}
}

// Stats summarizes a finished transfer. It is populated even when Send
// returns an error, so an aborted transfer still reports what happened.
type Stats struct {
	// Sent / Acked / Lost count packets over the whole transfer.
	Sent, Acked, Lost int
	// AvgRTT is the mean RTT over every acked packet.
	AvgRTT time.Duration
	// ThroughputMbps is delivered payload bits over wall-clock time.
	ThroughputMbps float64
	// Duration is the wall-clock transfer time.
	Duration time.Duration
	// Intervals counts monitor intervals reported to the App.
	Intervals int

	// WriteErrors counts failed socket writes over the transfer.
	WriteErrors int
	// Blackouts counts detected ack-blackout spans; BlackoutTime is their
	// total duration; BlackoutIntervals counts monitor intervals spent in
	// blackout probing.
	Blackouts         int
	BlackoutTime      time.Duration
	BlackoutIntervals int
	// Evicted counts in-flight entries dropped (and counted lost) because
	// the outstanding map hit MaxOutstanding.
	Evicted int
}

// sender is the per-transfer state behind Send: one pacing goroutine
// drives step/closeInterval while one ack-collector goroutine drives
// collectAcks; they share the mu-guarded interval counters.
type sender struct {
	app  *mocc.App
	cfg  Config
	conn PacketConn

	stats Stats

	mu          sync.Mutex
	outstanding map[uint64]time.Time
	evictCursor uint64 // lowest sequence possibly still outstanding
	miAcked     int
	miRTTSum    time.Duration
	totalAcked  int
	rttSum      time.Duration
	minRTT      time.Duration

	// readDead is set by the ack collector on a fatal (non-timeout) read
	// error: the ack path is gone, so the pacing loop must treat the path
	// as blacked out rather than wait for acks that cannot arrive.
	readDead atomic.Bool
	readErr  error // written once before readDead is set

	// Pacing-loop-only blackout state.
	appRate    float64 // last rate the handle decided
	rate       float64 // effective pacing rate
	acklessMIs int
	inBlackout bool
	blackoutAt time.Time

	consecWriteErrs int
	lastWriteErr    error

	met txMetrics
}

// Send paces packets to addr under the control of app for the given
// duration: each monitor interval it closes the books (acks collected,
// timeouts declared lost), builds a mocc.Status, and lets app.Report decide
// the next pacing rate. The App keeps accumulating telemetry across calls,
// so app.Stats() after Send shows the transfer from the controller's side.
//
// Send returns (with Stats populated) rather than hanging when the path
// dies mid-transfer: an ack blackout switches pacing to conservative
// probing until acks return or the duration ends, and persistent socket
// write failures abort with a descriptive error.
func Send(addr string, app *mocc.App, duration time.Duration, cfg Config) (Stats, error) {
	if app == nil {
		return Stats{}, errors.New("transport: nil app")
	}
	if duration <= 0 {
		return Stats{}, errors.New("transport: duration must be positive")
	}
	cfg.applyDefaults()

	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return Stats{}, fmt.Errorf("transport: resolving %q: %w", addr, err)
	}
	udp, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return Stats{}, fmt.Errorf("transport: dialing %q: %w", addr, err)
	}
	var conn PacketConn = udp
	if cfg.WrapConn != nil {
		conn = cfg.WrapConn(conn)
	}
	defer conn.Close()

	s := &sender{
		app:         app,
		cfg:         cfg,
		conn:        conn,
		outstanding: make(map[uint64]time.Time),
		evictCursor: 1,
		met:         newTxMetrics(cfg.Metrics),
	}
	return s.run(duration)
}

func (s *sender) run(duration time.Duration) (Stats, error) {
	stop := make(chan struct{})
	var ackWG sync.WaitGroup
	ackWG.Add(1)
	go func() {
		defer ackWG.Done()
		s.collectAcks(stop)
	}()

	s.appRate = math.Min(s.app.Rate(), s.cfg.MaxRatePps)
	s.rate = s.appRate
	if s.rate <= 0 {
		close(stop)
		ackWG.Wait()
		return s.stats, fmt.Errorf("transport: app rate %v is not a usable pacing rate", s.rate)
	}

	pkt := make([]byte, s.cfg.PayloadBytes)
	start := time.Now()
	deadline := start.Add(duration)
	nextMI := start.Add(s.cfg.MI)
	nextSend := start
	var seq uint64
	miSent := 0
	var loopErr error

	for time.Now().Before(deadline) {
		now := time.Now()
		if now.Before(nextSend) {
			time.Sleep(nextSend.Sub(now))
			continue
		}
		seq++
		datapath.EncodeDataHeader(pkt, seq, time.Now().UnixNano())
		if _, err := s.conn.Write(pkt); err != nil {
			s.stats.WriteErrors++
			s.met.writeErrs.Add(1)
			s.consecWriteErrs++
			s.lastWriteErr = err
			if s.consecWriteErrs >= s.cfg.MaxConsecWriteErrs {
				loopErr = fmt.Errorf("transport: aborting after %d consecutive socket write failures (%d total): %w",
					s.consecWriteErrs, s.stats.WriteErrors, s.lastWriteErr)
				break
			}
		} else {
			s.consecWriteErrs = 0
			s.track(seq)
			miSent++
			s.stats.Sent++
		}
		nextSend = nextSend.Add(time.Duration(float64(time.Second) / s.rate))
		if nextSend.Before(time.Now().Add(-50 * time.Millisecond)) {
			nextSend = time.Now() // don't burst to catch up after stalls
		}

		if time.Now().After(nextMI) {
			loopErr = s.closeInterval(&miSent)
			if loopErr != nil {
				break
			}
			nextMI = nextMI.Add(s.cfg.MI)
		}
	}

	close(stop)
	ackWG.Wait()

	if s.inBlackout {
		s.endBlackout("transfer ended mid-blackout")
	}
	s.stats.Duration = time.Since(start)
	s.mu.Lock()
	s.stats.Acked = s.totalAcked
	if s.totalAcked > 0 {
		s.stats.AvgRTT = s.rttSum / time.Duration(s.totalAcked)
	}
	s.mu.Unlock()
	if secs := s.stats.Duration.Seconds(); secs > 0 {
		s.stats.ThroughputMbps = float64(s.stats.Acked*s.cfg.PayloadBytes) * 8 / 1e6 / secs
	}
	return s.stats, loopErr
}

// track records an in-flight packet, evicting the oldest entries (counted
// lost) when the bookkeeping map would exceed MaxOutstanding — a receiver
// that never acks cannot grow sender memory without bound.
func (s *sender) track(seq uint64) {
	s.mu.Lock()
	for len(s.outstanding) >= s.cfg.MaxOutstanding {
		for s.evictCursor < seq {
			if _, ok := s.outstanding[s.evictCursor]; ok {
				delete(s.outstanding, s.evictCursor)
				s.stats.Lost++
				s.stats.Evicted++
				break
			}
			s.evictCursor++
		}
	}
	s.outstanding[seq] = time.Now()
	s.mu.Unlock()
}

// collectAcks drains acknowledgements until stop closes. A fatal
// (non-timeout) read error does not end the transfer silently: it records
// the error and flags readDead so the pacing loop enters blackout
// handling instead of waiting for acks that can no longer arrive.
func (s *sender) collectAcks(stop <-chan struct{}) {
	buf := make([]byte, 2048)
	for {
		_ = s.conn.SetReadDeadline(time.Now().Add(5 * time.Millisecond))
		n, err := s.conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				select {
				case <-stop:
					return
				default:
					continue
				}
			}
			s.readErr = err
			s.readDead.Store(true)
			return
		}
		seq, _, ok := datapath.DecodeAck(buf[:n])
		if !ok {
			continue
		}
		now := time.Now()
		s.mu.Lock()
		if sentAt, ok := s.outstanding[seq]; ok {
			delete(s.outstanding, seq)
			rtt := now.Sub(sentAt)
			s.miAcked++
			s.miRTTSum += rtt
			s.totalAcked++
			s.rttSum += rtt
			if s.minRTT == 0 || rtt < s.minRTT {
				s.minRTT = rtt
			}
		}
		s.mu.Unlock()
	}
}

// closeInterval ends one monitor interval: it infers losses from the
// timeout, builds the application-visible Status, asks the handle for the
// next rate, and runs the blackout detector that decides whether the
// handle's rate or a conservative probing rate paces the next interval.
func (s *sender) closeInterval(miSent *int) error {
	s.mu.Lock()
	minRTT := s.minRTT // written by the ack goroutine under mu
	timeout := s.cfg.LossTimeout
	if timeout <= 0 {
		timeout = 4 * minRTT
		if timeout < 20*time.Millisecond {
			timeout = 20 * time.Millisecond
		}
	}
	now := time.Now()
	lost := 0
	for seq, sentAt := range s.outstanding {
		if now.Sub(sentAt) > timeout {
			delete(s.outstanding, seq)
			lost++
		}
	}
	inFlight := len(s.outstanding)
	sent, acked := *miSent, s.miAcked
	rttSum := s.miRTTSum
	*miSent, s.miAcked, s.miRTTSum = 0, 0, 0
	s.mu.Unlock()

	s.stats.Lost += lost
	s.stats.Intervals++

	avgRTT := time.Duration(0)
	if acked > 0 {
		avgRTT = rttSum / time.Duration(acked)
	} else if minRTT > 0 {
		avgRTT = minRTT
	} else {
		avgRTT = time.Millisecond
	}
	miMinRTT := minRTT
	if miMinRTT <= 0 {
		miMinRTT = avgRTT
	}

	// Acks and timeouts settle after the interval that sent the packets,
	// so fold the in-flight carryover into the sent count: the Status
	// invariant acked+lost <= sent then holds per interval, and the
	// controller features (send/delivery ratios) are unaffected.
	effSent := sent
	if acked+lost > effSent {
		effSent = acked + lost
	}
	next, err := s.app.Report(mocc.Status{
		Duration:     s.cfg.MI,
		PacketsSent:  float64(effSent),
		PacketsAcked: float64(acked),
		PacketsLost:  float64(lost),
		AvgRTT:       avgRTT,
		MinRTT:       miMinRTT,
	})
	if err != nil {
		return err
	}
	s.appRate = math.Min(next, s.cfg.MaxRatePps)
	s.blackoutStep(acked, sent, inFlight)
	return nil
}

// blackoutStep updates the ack-blackout detector after one monitor
// interval and picks the effective pacing rate: the handle's rate
// normally, or a conservative probe (quarter of the last good rate,
// halving each blacked-out interval down to BlackoutFloorPps) while the
// path is dark. The first ack ends the blackout and control returns to
// the handle immediately.
func (s *sender) blackoutStep(acked, sent, inFlight int) {
	if acked > 0 {
		s.acklessMIs = 0
		if s.inBlackout {
			s.inBlackout = false
			s.endBlackout("acks returned")
		}
		s.rate = s.appRate
		return
	}
	if sent > 0 || inFlight > 0 || s.readDead.Load() {
		s.acklessMIs++
	}
	if !s.inBlackout && (s.acklessMIs >= s.cfg.BlackoutAfter || s.readDead.Load()) {
		s.inBlackout = true
		s.blackoutAt = time.Now()
		s.stats.Blackouts++
		s.met.blackouts.Add(1)
		if s.met.events != nil {
			why := fmt.Sprintf("%d consecutive ackless monitor intervals", s.acklessMIs)
			if s.readDead.Load() {
				why = "fatal ack-socket read error"
			}
			s.met.events.Emit(obs.Event{Type: obs.EvBlackout, Msg: why})
		}
		s.rate = math.Max(s.appRate/4, s.cfg.BlackoutFloorPps)
	} else if s.inBlackout {
		s.rate = math.Max(s.rate/2, s.cfg.BlackoutFloorPps)
	} else {
		s.rate = s.appRate
	}
	if s.inBlackout {
		s.stats.BlackoutIntervals++
	}
}

// endBlackout closes one blackout span's books: the stats accumulation
// every transfer does, plus the duration observation and the end event
// when a Metrics sink is attached.
func (s *sender) endBlackout(why string) {
	span := time.Since(s.blackoutAt)
	s.stats.BlackoutTime += span
	s.met.blackoutDur.Observe(uint64(span))
	if s.met.events != nil {
		s.met.events.Emit(obs.Event{Type: obs.EvBlackoutEnd,
			Msg: fmt.Sprintf("%s after %v dark", why, span.Round(time.Millisecond))})
	}
}
