package mocc

import (
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// trainOnce shares one quick-trained library across tests.
var (
	libOnce sync.Once
	testLib *Library
	libErr  error
)

func sharedLibrary(t *testing.T) *Library {
	t.Helper()
	libOnce.Do(func() {
		testLib, libErr = Train(QuickTraining())
	})
	if libErr != nil {
		t.Fatalf("training library: %v", libErr)
	}
	return testLib
}

func steadyStatus(sent, acked, lost float64, rtt time.Duration) Status {
	return Status{
		Duration:     40 * time.Millisecond,
		PacketsSent:  sent,
		PacketsAcked: acked,
		PacketsLost:  lost,
		AvgRTT:       rtt,
		MinRTT:       40 * time.Millisecond,
	}
}

func TestWeightsNormalize(t *testing.T) {
	w := Weights{8, 1, 1}.Normalize()
	if math.Abs(w.Thr+w.Lat+w.Loss-1) > 1e-9 {
		t.Errorf("normalized weights sum to %v", w.Thr+w.Lat+w.Loss)
	}
	if math.Abs(w.Thr-0.8) > 1e-9 {
		t.Errorf("Thr = %v, want 0.8", w.Thr)
	}
}

func TestPresetsAreValid(t *testing.T) {
	for _, w := range []Weights{ThroughputPreference, LatencyPreference, RTCPreference, BalancedPreference} {
		if _, err := w.internal(); err != nil {
			t.Errorf("preset %+v invalid: %v", w, err)
		}
	}
}

func TestRegisterReportLoop(t *testing.T) {
	lib := sharedLibrary(t)
	app, err := lib.Register(ThroughputPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Unregister()

	if app.Rate() <= 0 {
		t.Fatalf("initial rate %v", app.Rate())
	}
	if got := app.Weights(); got != ThroughputPreference {
		t.Errorf("Weights() = %+v", got)
	}

	// Drive the handle loop for a while; rates must stay positive/finite
	// and Report's return must match the published Rate.
	rate := app.Rate()
	for i := 0; i < 50; i++ {
		sent := rate * 0.04
		var err error
		rate, err = app.Report(steadyStatus(sent, sent, 0, 40*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		if rate <= 0 || math.IsNaN(rate) {
			t.Fatalf("rate %v at iteration %d", rate, i)
		}
		if got := app.Rate(); got != rate {
			t.Fatalf("Rate() = %v, Report returned %v", got, rate)
		}
	}
}

func TestRegisterRejectsInvalidWeights(t *testing.T) {
	lib := sharedLibrary(t)
	for _, w := range []Weights{{0, 0.5, 0.5}, {1, 0, 0}, {0.5, 0.5, 0.5}} {
		if _, err := lib.Register(w); err == nil {
			t.Errorf("Register(%+v) accepted invalid weights", w)
		}
	}
}

func TestMultipleAppsIndependentRates(t *testing.T) {
	lib := sharedLibrary(t)
	thr, err := lib.Register(ThroughputPreference)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := lib.Register(LatencyPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer thr.Unregister()
	defer lat.Unregister()

	if lib.Apps() < 2 {
		t.Errorf("Apps = %d", lib.Apps())
	}
	if thr.ID() == lat.ID() {
		t.Errorf("handles share AppID %d", thr.ID())
	}

	// Feed both apps identical congestion signals (queueing RTT rising);
	// the two preferences may react differently but both must stay sane.
	for i := 0; i < 30; i++ {
		st := steadyStatus(40, 38, 2, time.Duration(60+i)*time.Millisecond)
		if _, err := thr.Report(st); err != nil {
			t.Fatal(err)
		}
		if _, err := lat.Report(st); err != nil {
			t.Fatal(err)
		}
	}
	if thr.Rate() <= 0 || lat.Rate() <= 0 {
		t.Fatalf("rates: %v, %v", thr.Rate(), lat.Rate())
	}
}

func TestUnregisteredHandleErrors(t *testing.T) {
	lib := sharedLibrary(t)
	app, err := lib.Register(BalancedPreference)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Unregister(); err != nil {
		t.Fatal(err)
	}
	if err := app.Unregister(); err == nil {
		t.Error("double Unregister accepted")
	}
	if _, err := app.Report(steadyStatus(10, 10, 0, time.Millisecond)); err == nil {
		t.Error("Report on unregistered handle accepted")
	}
	if err := app.SetWeights(LatencyPreference); err == nil {
		t.Error("SetWeights on unregistered handle accepted")
	}
	if _, ok := lib.App(app.ID()); ok {
		t.Error("unregistered app still resolvable by ID")
	}
}

func TestStatusValidation(t *testing.T) {
	lib := sharedLibrary(t)
	app, err := lib.Register(BalancedPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Unregister()

	good := steadyStatus(50, 48, 2, 45*time.Millisecond)
	cases := []struct {
		name   string
		mutate func(*Status)
	}{
		{"zero duration", func(s *Status) { s.Duration = 0 }},
		{"negative duration", func(s *Status) { s.Duration = -time.Millisecond }},
		{"negative sent", func(s *Status) { s.PacketsSent = -1 }},
		{"negative acked", func(s *Status) { s.PacketsAcked = -3 }},
		{"negative lost", func(s *Status) { s.PacketsLost = -0.5 }},
		{"NaN sent", func(s *Status) { s.PacketsSent = math.NaN() }},
		{"Inf sent", func(s *Status) { s.PacketsSent = math.Inf(1) }},
		{"acked+lost > sent", func(s *Status) { s.PacketsAcked = 49; s.PacketsLost = 2 }},
		{"negative RTT", func(s *Status) { s.AvgRTT = -time.Millisecond }},
	}
	for _, tc := range cases {
		st := good
		tc.mutate(&st)
		if _, err := app.Report(st); err == nil {
			t.Errorf("%s: Report accepted invalid status %+v", tc.name, st)
		}
	}
	// The compat layer validates through the same path.
	v1 := lib.V1()
	bad := good
	bad.PacketsLost = 10
	if err := v1.ReportStatus(app.ID(), bad); err == nil {
		t.Error("V1.ReportStatus accepted acked+lost > sent")
	}
	// The good status still passes.
	if _, err := app.Report(good); err != nil {
		t.Errorf("valid status rejected: %v", err)
	}
}

// TestCompatEquivalence drives the same preference and status sequence
// through the §5 three-call layer and the handle API: the rate sequences
// must be identical.
func TestCompatEquivalence(t *testing.T) {
	lib := sharedLibrary(t)
	v1 := lib.V1()

	id, err := v1.Register(RTCPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Unregister(id)
	app, err := lib.Register(RTCPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Unregister()

	r1, err := v1.GetSendingRate(id)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := app.Rate(); r1 != r2 {
		t.Fatalf("initial rates differ: v1 %v vs handle %v", r1, r2)
	}

	rate := app.Rate()
	for i := 0; i < 60; i++ {
		// A mildly adversarial trajectory: growing RTT, periodic loss.
		lost := 0.0
		if i%7 == 0 {
			lost = 3
		}
		sent := rate*0.04 + lost
		st := steadyStatus(sent, sent-lost, lost, time.Duration(45+i%20)*time.Millisecond)

		if err := v1.ReportStatus(id, st); err != nil {
			t.Fatal(err)
		}
		v1Rate, err := v1.GetSendingRate(id)
		if err != nil {
			t.Fatal(err)
		}
		rate, err = app.Report(st)
		if err != nil {
			t.Fatal(err)
		}
		if v1Rate != rate {
			t.Fatalf("iteration %d: v1 rate %v != handle rate %v", i, v1Rate, rate)
		}
	}
}

// TestSetWeightsLive checks live retuning semantics: set+revert between
// reports is a no-op relative to a control app, and the replay-pool
// reference moves with the preference.
func TestSetWeightsLive(t *testing.T) {
	lib := sharedLibrary(t)
	control, err := lib.Register(RTCPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer control.Unregister()
	tuned, err := lib.Register(RTCPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer tuned.Unregister()

	for i := 0; i < 20; i++ {
		st := steadyStatus(50, 49, 1, time.Duration(50+i)*time.Millisecond)
		rc, err := control.Report(st)
		if err != nil {
			t.Fatal(err)
		}
		// Retune away and back between reports: the preference
		// sub-network is the only thing that changed, so reverting
		// restores identical behaviour.
		if err := tuned.SetWeights(ThroughputPreference); err != nil {
			t.Fatal(err)
		}
		if err := tuned.SetWeights(RTCPreference); err != nil {
			t.Fatal(err)
		}
		rt, err := tuned.Report(st)
		if err != nil {
			t.Fatal(err)
		}
		if rc != rt {
			t.Fatalf("iteration %d: set+revert changed the rate (%v vs %v)", i, rt, rc)
		}
	}
	if err := tuned.SetWeights(Weights{0.2, 0.2, 0.6}); err != nil {
		t.Fatal(err)
	}
	if got := tuned.Weights(); math.Abs(got.Loss-0.6) > 1e-12 {
		t.Errorf("Weights() = %+v after retune", got)
	}
	if err := tuned.SetWeights(Weights{0.5, 0.5, 0}); err == nil {
		t.Error("SetWeights accepted invalid weights")
	}
}

// TestUnregisterReleasesReplayPool covers the reference-counted replay
// pool: the last app holding a preference drops it on unregister, and
// SetWeights moves the reference.
func TestUnregisterReleasesReplayPool(t *testing.T) {
	lib := sharedLibrary(t)
	pool := lib.adapter.Pool()
	w := Weights{0.37, 0.33, 0.30}
	iw, err := w.internal()
	if err != nil {
		t.Fatal(err)
	}

	a1, err := lib.Register(w)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := lib.Register(w)
	if err != nil {
		t.Fatal(err)
	}
	if got := pool.Refs(iw); got != 2 {
		t.Fatalf("Refs = %d after two registrations, want 2", got)
	}
	if err := a1.Unregister(); err != nil {
		t.Fatal(err)
	}
	if got := pool.Refs(iw); got != 1 {
		t.Fatalf("Refs = %d after one unregister, want 1", got)
	}

	// SetWeights moves the reference to the new preference.
	w2 := Weights{0.31, 0.29, 0.40}
	iw2, err := w2.internal()
	if err != nil {
		t.Fatal(err)
	}
	if err := a2.SetWeights(w2); err != nil {
		t.Fatal(err)
	}
	if got := pool.Refs(iw); got != 0 {
		t.Errorf("old preference still referenced (Refs = %d) after SetWeights", got)
	}
	if got := pool.Refs(iw2); got != 1 {
		t.Errorf("new preference Refs = %d after SetWeights, want 1", got)
	}

	if err := a2.Unregister(); err != nil {
		t.Fatal(err)
	}
	if got := pool.Refs(iw2); got != 0 {
		t.Errorf("Refs = %d after last unregister, want 0", got)
	}
}

func TestV1UnknownAppErrors(t *testing.T) {
	lib := sharedLibrary(t)
	v1 := lib.V1()
	if _, err := v1.GetSendingRate(AppID(9999)); err == nil {
		t.Error("GetSendingRate accepted unknown app")
	}
	if err := v1.ReportStatus(AppID(9999), steadyStatus(10, 10, 0, time.Millisecond)); err == nil {
		t.Error("ReportStatus accepted unknown app")
	}
	if err := v1.Unregister(AppID(9999)); err == nil {
		t.Error("Unregister accepted unknown app")
	}
}

func TestAppStatsTelemetry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }

	lib := sharedLibrary(t)
	// Rebind the clock for a deterministic-lifecycle handle: build a
	// second library over the same trained model.
	lib2, err := New(&Model{m: lib.model}, WithoutAdaptation(), WithClock(clock), WithInitialRTT(40*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	app, err := lib2.Register(ThroughputPreference)
	if err != nil {
		t.Fatal(err)
	}
	if got := app.Stats().Registered; !got.Equal(now) {
		t.Errorf("Registered = %v, want %v", got, now)
	}

	now = now.Add(time.Second)
	for i := 0; i < 10; i++ {
		if _, err := app.Report(steadyStatus(100, 95, 5, 50*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	s := app.Stats()
	if s.Reports != 10 {
		t.Errorf("Reports = %d, want 10", s.Reports)
	}
	if s.PacketsSent != 1000 || s.PacketsAcked != 950 || s.PacketsLost != 50 {
		t.Errorf("packet counts %v/%v/%v, want 1000/950/50", s.PacketsSent, s.PacketsAcked, s.PacketsLost)
	}
	if math.Abs(s.LossRate-0.05) > 1e-12 {
		t.Errorf("LossRate = %v, want 0.05", s.LossRate)
	}
	if want := 950.0 / 0.4; math.Abs(s.Throughput-want) > 1e-6 {
		t.Errorf("Throughput = %v, want %v", s.Throughput, want)
	}
	if d := s.AvgRTT - 50*time.Millisecond; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("AvgRTT = %v, want 50ms", s.AvgRTT)
	}
	if s.MinRTT != 40*time.Millisecond {
		t.Errorf("MinRTT = %v, want 40ms", s.MinRTT)
	}
	if s.Duration != 400*time.Millisecond {
		t.Errorf("Duration = %v, want 400ms", s.Duration)
	}
	if !s.LastReport.Equal(now) {
		t.Errorf("LastReport = %v, want %v", s.LastReport, now)
	}
	if s.Rate != app.Rate() {
		t.Errorf("Stats.Rate = %v, Rate() = %v", s.Rate, app.Rate())
	}
	if s.MeanRate <= 0 {
		t.Errorf("MeanRate = %v", s.MeanRate)
	}
	// OnlineAdapt is disabled on a WithoutAdaptation library.
	if _, err := lib2.OnlineAdapt(BalancedPreference, 1); err == nil {
		t.Error("OnlineAdapt succeeded on WithoutAdaptation library")
	}
}

func TestSaveAndLoadModel(t *testing.T) {
	lib := sharedLibrary(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := lib.SaveModel(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded model must produce identical rates for identical input.
	a1, err := lib.Register(RTCPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Unregister()
	a2, err := loaded.Register(RTCPreference)
	if err != nil {
		t.Fatal(err)
	}
	st := steadyStatus(100, 95, 5, 50*time.Millisecond)
	var r1, r2 float64
	for i := 0; i < 10; i++ {
		if r1, err = a1.Report(st); err != nil {
			t.Fatal(err)
		}
		if r2, err = a2.Report(st); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(r1-r2) > 1e-9 {
		t.Errorf("loaded model diverges: %v vs %v", r1, r2)
	}
}

func TestLoadModelMissingFile(t *testing.T) {
	if _, err := LoadModel("/nonexistent/model.json"); err == nil {
		t.Error("missing model accepted")
	}
}

func TestOnlineAdapt(t *testing.T) {
	lib := sharedLibrary(t)
	curve, err := lib.OnlineAdapt(Weights{0.2, 0.7, 0.1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("curve length %d", len(curve))
	}
	for _, r := range curve {
		if r < 0 || r > 1 || math.IsNaN(r) {
			t.Errorf("reward %v out of range", r)
		}
	}
	if _, err := lib.OnlineAdapt(Weights{0, 1, 0}, 1); err == nil {
		t.Error("invalid weights accepted")
	}
	if _, err := lib.OnlineAdapt(BalancedPreference, 0); err == nil {
		t.Error("zero iters accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("New(nil) accepted")
	}
	lib := sharedLibrary(t)
	if _, err := New(&Model{m: lib.model}, WithClock(nil)); err == nil {
		t.Error("WithClock(nil) accepted")
	}
	if _, err := New(&Model{m: lib.model}, WithInitialRTT(-time.Second)); err == nil {
		t.Error("negative WithInitialRTT accepted")
	}
}
