package mocc

import (
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// trainOnce shares one quick-trained library across tests.
var (
	libOnce sync.Once
	testLib *Library
	libErr  error
)

func sharedLibrary(t *testing.T) *Library {
	t.Helper()
	libOnce.Do(func() {
		testLib, libErr = Train(QuickTraining())
	})
	if libErr != nil {
		t.Fatalf("training library: %v", libErr)
	}
	return testLib
}

func steadyStatus(sent, acked, lost float64, rtt time.Duration) Status {
	return Status{
		Duration:     40 * time.Millisecond,
		PacketsSent:  sent,
		PacketsAcked: acked,
		PacketsLost:  lost,
		AvgRTT:       rtt,
		MinRTT:       40 * time.Millisecond,
	}
}

func TestWeightsNormalize(t *testing.T) {
	w := Weights{8, 1, 1}.Normalize()
	if math.Abs(w.Thr+w.Lat+w.Loss-1) > 1e-9 {
		t.Errorf("normalized weights sum to %v", w.Thr+w.Lat+w.Loss)
	}
	if math.Abs(w.Thr-0.8) > 1e-9 {
		t.Errorf("Thr = %v, want 0.8", w.Thr)
	}
}

func TestPresetsAreValid(t *testing.T) {
	for _, w := range []Weights{ThroughputPreference, LatencyPreference, RTCPreference, BalancedPreference} {
		if _, err := w.internal(); err != nil {
			t.Errorf("preset %+v invalid: %v", w, err)
		}
	}
}

func TestRegisterReportGetRateLoop(t *testing.T) {
	lib := sharedLibrary(t)
	app, err := lib.Register(ThroughputPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Unregister(app)

	rate0, err := lib.GetSendingRate(app)
	if err != nil {
		t.Fatal(err)
	}
	if rate0 <= 0 {
		t.Fatalf("initial rate %v", rate0)
	}

	// Drive the §5 loop for a while; rates must stay positive and finite.
	rate := rate0
	for i := 0; i < 50; i++ {
		sent := rate * 0.04
		if err := lib.ReportStatus(app, steadyStatus(sent, sent, 0, 40*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		rate, err = lib.GetSendingRate(app)
		if err != nil {
			t.Fatal(err)
		}
		if rate <= 0 || math.IsNaN(rate) {
			t.Fatalf("rate %v at iteration %d", rate, i)
		}
	}
}

func TestRegisterRejectsInvalidWeights(t *testing.T) {
	lib := sharedLibrary(t)
	for _, w := range []Weights{{0, 0.5, 0.5}, {1, 0, 0}, {0.5, 0.5, 0.5}} {
		if _, err := lib.Register(w); err == nil {
			t.Errorf("Register(%+v) accepted invalid weights", w)
		}
	}
}

func TestMultipleAppsIndependentRates(t *testing.T) {
	lib := sharedLibrary(t)
	thr, err := lib.Register(ThroughputPreference)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := lib.Register(LatencyPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Unregister(thr)
	defer lib.Unregister(lat)

	if lib.Apps() < 2 {
		t.Errorf("Apps = %d", lib.Apps())
	}

	// Feed both apps identical congestion signals (queueing RTT rising);
	// the two preferences may react differently but both must stay sane.
	for i := 0; i < 30; i++ {
		st := steadyStatus(40, 38, 2, time.Duration(60+i)*time.Millisecond)
		if err := lib.ReportStatus(thr, st); err != nil {
			t.Fatal(err)
		}
		if err := lib.ReportStatus(lat, st); err != nil {
			t.Fatal(err)
		}
	}
	rThr, _ := lib.GetSendingRate(thr)
	rLat, _ := lib.GetSendingRate(lat)
	if rThr <= 0 || rLat <= 0 {
		t.Fatalf("rates: %v, %v", rThr, rLat)
	}
}

func TestUnknownAppErrors(t *testing.T) {
	lib := sharedLibrary(t)
	if _, err := lib.GetSendingRate(AppID(9999)); err == nil {
		t.Error("GetSendingRate accepted unknown app")
	}
	if err := lib.ReportStatus(AppID(9999), steadyStatus(10, 10, 0, time.Millisecond)); err == nil {
		t.Error("ReportStatus accepted unknown app")
	}
	if err := lib.Unregister(AppID(9999)); err == nil {
		t.Error("Unregister accepted unknown app")
	}
}

func TestReportStatusValidation(t *testing.T) {
	lib := sharedLibrary(t)
	app, err := lib.Register(BalancedPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Unregister(app)
	if err := lib.ReportStatus(app, Status{}); err == nil {
		t.Error("zero-duration status accepted")
	}
}

func TestSaveAndLoadModel(t *testing.T) {
	lib := sharedLibrary(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := lib.SaveModel(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded model must produce identical rates for identical input.
	a1, err := lib.Register(RTCPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Unregister(a1)
	a2, err := loaded.Register(RTCPreference)
	if err != nil {
		t.Fatal(err)
	}
	st := steadyStatus(100, 95, 5, 50*time.Millisecond)
	for i := 0; i < 10; i++ {
		if err := lib.ReportStatus(a1, st); err != nil {
			t.Fatal(err)
		}
		if err := loaded.ReportStatus(a2, st); err != nil {
			t.Fatal(err)
		}
	}
	r1, _ := lib.GetSendingRate(a1)
	r2, _ := loaded.GetSendingRate(a2)
	if math.Abs(r1-r2) > 1e-9 {
		t.Errorf("loaded model diverges: %v vs %v", r1, r2)
	}
}

func TestLoadModelMissingFile(t *testing.T) {
	if _, err := LoadModel("/nonexistent/model.json"); err == nil {
		t.Error("missing model accepted")
	}
}

func TestOnlineAdapt(t *testing.T) {
	lib := sharedLibrary(t)
	curve, err := lib.OnlineAdapt(Weights{0.2, 0.7, 0.1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("curve length %d", len(curve))
	}
	for _, r := range curve {
		if r < 0 || r > 1 || math.IsNaN(r) {
			t.Errorf("reward %v out of range", r)
		}
	}
	if _, err := lib.OnlineAdapt(Weights{0, 1, 0}, 1); err == nil {
		t.Error("invalid weights accepted")
	}
	if _, err := lib.OnlineAdapt(BalancedPreference, 0); err == nil {
		t.Error("zero iters accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	lib := sharedLibrary(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			app, err := lib.Register(BalancedPreference)
			if err != nil {
				t.Error(err)
				return
			}
			defer lib.Unregister(app)
			for i := 0; i < 20; i++ {
				st := steadyStatus(50, 48, 2, 45*time.Millisecond)
				if err := lib.ReportStatus(app, st); err != nil {
					t.Error(err)
					return
				}
				if _, err := lib.GetSendingRate(app); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
