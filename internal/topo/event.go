package topo

// Event kinds, in same-timestamp priority order. The first three are
// netsim's control kinds with identical ranks; evDeliver keeps its rank so
// deliveries still precede same-instant transmissions; evLoss (a mid-path
// drop reaching the sender's accounting — netsim has no analogue) slots
// between them; evArrive is both a hop-0 transmission (netsim's evSend) and
// a packet arriving at a downstream link. On a one-link topology only
// Start/Stop/MI/Deliver/Arrive occur and the order degenerates to netsim's.
const (
	evStart int32 = iota
	evStop
	evMI
	evDeliver
	evLoss
	evArrive
)

// event is one scheduled simulator action. Unlike netsim's, it carries no
// flow pointer — shards resolve flowID against a shared read-only slice —
// and adds the path hop index for multi-link traversals.
type event struct {
	time     float64
	kind     int32
	flowID   int32
	hop      int32
	_        int32   // padding keeps sendTime 8-byte aligned
	sendTime float64 // deliver/arrive payload: when the packet entered the network
}

// eventBefore is the canonical schedule order: time, then kind priority,
// then flow ID, then hop. Within one (time, kind, flow, hop) cell at most
// one live event exists (pacing instants, MI boundaries, and per-link
// departure times are all strictly increasing per flow), so the order is
// total — which is what makes every heap's pop sequence independent of
// insertion order, and with it the sharded engine independent of worker
// count.
func eventBefore(a, b event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.flowID != b.flowID {
		return a.flowID < b.flowID
	}
	return a.hop < b.hop
}

// eventQueue is an inline 4-ary min-heap of event values ordered by
// eventBefore — netsim's control-event heap, reused here as each shard's
// single pending-event structure (control, pacing and cross-shard arrivals
// all share it).
type eventQueue struct {
	ev []event
}

// len returns the number of pending events.
func (q *eventQueue) len() int { return len(q.ev) }

// peek returns the minimum event; the queue must be non-empty.
func (q *eventQueue) peek() event { return q.ev[0] }

// push inserts e.
func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventBefore(q.ev[i], q.ev[p]) {
			break
		}
		q.ev[i], q.ev[p] = q.ev[p], q.ev[i]
		i = p
	}
}

// pop removes and returns the minimum event; the queue must be non-empty.
func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	q.ev[0] = q.ev[n]
	q.ev = q.ev[:n]
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventBefore(q.ev[c], q.ev[min]) {
				min = c
			}
		}
		if !eventBefore(q.ev[min], q.ev[i]) {
			break
		}
		q.ev[i], q.ev[min] = q.ev[min], q.ev[i]
		i = min
	}
	return top
}
