package topo

import "math"

// core is the simulation state both engines share: the topology, the flow
// set with its SoA hot block, and one linkState per link. Every event
// handler lives here and is written against two emit functions — one for
// same-shard follow-ups (the next pacing instant, the next MI boundary)
// and one for cross-link messages (hop handoffs, deliveries, loss
// notifications). Reference points both at its global heap; Engine points
// the first at the owning shard's heap and the second at the shard's
// outbox, exchanged at round barriers. Because the handlers are the same
// code, the engines cannot drift: any schedule both execute in eventBefore
// order yields bit-identical state.
type core struct {
	topo  *Topology
	flows []*Flow
	st    *soaState
	links []linkState
}

// emitFn receives a follow-up event; dst is the link (= shard) index that
// must process it.
type emitFn func(dst int32, e event)

func (c *core) initRun(seed int64, duration float64) {
	c.st = newSoaState(len(c.flows))
	c.links = make([]linkState, len(c.topo.Links))
	for i, l := range c.topo.Links {
		c.links[i] = newLinkState(l, i, seed)
	}
	for _, f := range c.flows {
		c.st.startRun(c.topo, f, duration)
	}
}

// home returns the flow's home link/shard: the first hop of its path,
// where all of its control state lives.
func (c *core) home(f *Flow) int32 { return int32(f.Cfg.Path[0]) }

// tailDelay is the propagation delay from the entrance of path hop h to
// the receiver — what a packet dropped entering hop h would still have
// traversed, and therefore how long the resulting gap takes to become
// observable at the endpoint.
func (c *core) tailDelay(f *Flow, hop int32) float64 {
	var d float64
	path := f.Cfg.Path
	for i := int(hop); i < len(path); i++ {
		d += c.topo.Links[path[i]].Delay
	}
	return d
}

// handle dispatches one event at time e.time. local emits same-shard
// follow-ups; msg emits cross-link messages (which, because every link
// delay is at least the engine lookahead, always land at least one
// lookahead in the future).
func (c *core) handle(e event, local, msg emitFn) {
	f := c.flows[e.flowID]
	st := c.st
	id := int(e.flowID)
	switch e.kind {
	case evStart:
		st.flags[id] |= flagActive
		st.miStart[id] = e.time
		st.nextSend[id] = e.time
		local(c.home(f), event{time: e.time, kind: evArrive, flowID: e.flowID, hop: 0, sendTime: e.time})
		local(c.home(f), event{time: e.time + st.miDur[id], kind: evMI, flowID: e.flowID})
	case evStop:
		st.flags[id] &^= flagActive
		st.flags[id] |= flagStopped
	case evMI:
		backlog := c.links[c.home(f)].backlog(e.time)
		if st.closeMI(f, e.time, backlog) {
			local(c.home(f), event{time: e.time + st.miDur[id], kind: evMI, flowID: e.flowID})
		}
	case evDeliver:
		st.deliver(f, e.time, e.sendTime)
	case evLoss:
		st.lost[id]++
		st.miLost[id]++
	case evArrive:
		c.handleArrive(f, e, local, msg)
	}
}

// handleArrive moves one packet through one hop. Hop 0 is a transmission:
// it is paced, counted against the flow's send totals, and a drop there is
// charged immediately (exactly netsim's behaviour — the sender shares a
// shard with its first link). Later hops only touch link state; their
// drops and final deliveries travel back to the home shard as messages
// stamped with the remaining propagation delay.
func (c *core) handleArrive(f *Flow, e event, local, msg emitFn) {
	st := c.st
	id := int(e.flowID)
	path := f.Cfg.Path
	t := e.time
	if e.hop == 0 {
		if st.flags[id]&flagActive == 0 {
			return // stale pacing event for a stopped or completed flow
		}
		st.sent[id]++
		st.miSent[id]++
		li := path[0]
		dep, ok := c.links[li].admit(t)
		if !ok {
			st.lost[id]++
			st.miLost[id]++
		} else {
			at := dep + c.links[li].cfg.Delay
			if len(path) == 1 {
				msg(int32(li), event{time: at, kind: evDeliver, flowID: e.flowID, sendTime: t})
			} else {
				msg(int32(path[1]), event{time: at, kind: evArrive, flowID: e.flowID, hop: 1, sendTime: t})
			}
		}
		next := t + 1/math.Max(st.rate[id], 0.1)
		st.nextSend[id] = next
		local(int32(li), event{time: next, kind: evArrive, flowID: e.flowID, hop: 0, sendTime: next})
		return
	}
	li := path[e.hop]
	dep, ok := c.links[li].admit(t)
	if !ok {
		msg(c.home(f), event{time: t + c.tailDelay(f, e.hop), kind: evLoss, flowID: e.flowID, hop: e.hop})
		return
	}
	at := dep + c.links[li].cfg.Delay
	if int(e.hop) == len(path)-1 {
		msg(c.home(f), event{time: at, kind: evDeliver, flowID: e.flowID, sendTime: e.sendTime})
	} else {
		msg(int32(path[e.hop+1]), event{time: at, kind: evArrive, flowID: e.flowID, hop: e.hop + 1, sendTime: e.sendTime})
	}
}

// seedEvents pushes every flow's start/stop events via emit.
func (c *core) seedEvents(emit emitFn) {
	for _, f := range c.flows {
		emit(c.home(f), event{time: f.Cfg.Start, kind: evStart, flowID: int32(f.ID)})
		if f.Cfg.Stop > f.Cfg.Start {
			emit(c.home(f), event{time: f.Cfg.Stop, kind: evStop, flowID: int32(f.ID)})
		}
	}
}

// finishRun copies every flow's SoA slot into its exported result fields.
func (c *core) finishRun() {
	for _, f := range c.flows {
		c.st.finish(f)
	}
}
