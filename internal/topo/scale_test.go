package topo

import (
	"fmt"
	"testing"
	"time"
)

// incastTopology builds the scale scenario: nFlows fixed-rate senders homed
// on `racks` access links all converging on one core link, offered load
// `agg` times the core capacity.
func incastTopology(racks, nFlows int, corePps, agg, dur float64) (*Topology, []FlowConfig) {
	links := make([]LinkConfig, 0, racks+1)
	for i := 0; i < racks; i++ {
		links = append(links, link(fmt.Sprintf("rack%d", i), 2*corePps, 0.0005))
	}
	links = append(links, link("core", corePps, 0.001))
	tp, err := New(links)
	if err != nil {
		panic(err)
	}
	per := corePps * agg / float64(nFlows)
	flows := make([]FlowConfig, nFlows)
	for i := range flows {
		flows[i] = FlowConfig{
			Alg:  &fixedRate{rate: per},
			Path: []int{i % racks, racks},
			// A long MI keeps the Stats series O(1) per flow at this scale.
			MIms:    500,
			MaxRate: 2 * per,
			Start:   float64(i%97) / 97 * 0.3,
		}
	}
	return tp, flows
}

// TestIncast100kScale pins the SoA sizing claim: one hundred thousand flows
// through two bottleneck tiers must set up and run in seconds with O(flows)
// allocations — not O(packets), and with no per-flow struct scatter.
func TestIncast100kScale(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-flow scale run in -short mode")
	}
	const nFlows = 100_000
	tp, flows := incastTopology(8, nFlows, 20_000, 2.5, 2)

	start := time.Now()
	e := NewEngine(tp, 7)
	for _, fc := range flows {
		e.AddFlow(fc)
	}
	e.Run(2)
	elapsed := time.Since(start)

	// The 1-core CI container must finish comfortably inside single-digit
	// seconds; a generous bound still catches O(flows^2) regressions.
	if elapsed > 30*time.Second {
		t.Fatalf("100k-flow incast took %v, want seconds", elapsed)
	}

	var sent, delivered int
	active := 0
	for _, f := range e.Flows {
		sent += f.SentTotal
		delivered += f.DeliveredTotal
		if f.SentTotal > 0 {
			active++
		}
	}
	if active < nFlows*9/10 {
		t.Errorf("only %d of %d flows sent anything", active, nFlows)
	}
	if delivered == 0 || delivered > sent {
		t.Errorf("implausible totals: sent %d, delivered %d", sent, delivered)
	}
	// The core link bounds aggregate delivery: 20k pkts/s for 2s, and every
	// delivered packet crossed it.
	if got, limit := delivered, int(20_000*2)+2; got > limit {
		t.Errorf("delivered %d packets through a core that can carry %d", got, limit)
	}
	t.Logf("100k flows: %d sent, %d delivered in %v", sent, delivered, elapsed)
}

// TestIncastAllocBudget pins the allocation shape at a 10k-flow size small
// enough for testing.AllocsPerRun: the whole run must stay O(flows)
// allocations (flow structs, SoA block, heaps), with zero per-packet cost.
func TestIncastAllocBudget(t *testing.T) {
	const nFlows = 10_000
	tp, flows := incastTopology(4, nFlows, 10_000, 2.5, 2)
	allocs := testing.AllocsPerRun(1, func() {
		e := NewEngine(tp, 7)
		for _, fc := range flows {
			e.AddFlow(fc)
		}
		e.Run(2)
		if e.Flows[0].SentTotal == 0 {
			t.Fatal("run moved no packets")
		}
	})
	// ~4 allocations per flow covers Flow structs, the flows slice, Stats
	// headers and heap growth; packets (~50k here) must not contribute.
	if allocs > 8*nFlows {
		t.Errorf("10k-flow run allocated %.0f times, want O(flows) (<= %d)", allocs, 8*nFlows)
	}
}
