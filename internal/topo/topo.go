// Package topo generalizes the single-bottleneck netsim simulator to a
// small DAG of links: named bottlenecks with individual capacity schedules,
// one-way delays, drop-tail queues and random-loss processes, crossed by
// flows whose paths traverse one or more links in order (access link →
// shared core → per-flow egress covers parking-lot fairness and the
// multipath literature). Every link is the same FIFO fixed-rate server with
// a virtual queue that netsim models — a packet arriving at a link at time
// t departs at max(t, lastDeparture)+1/capacity and is dropped when the
// backlog exceeds the buffer — so a one-link topology reproduces
// netsim.Network bit-for-bit (pinned by the equivalence tests).
//
// Two engines share the flow/link types and all accounting arithmetic.
// Reference is the ground truth: a classical per-packet discrete-event
// simulator over one global heap, one event per hop traversal. Engine is
// the production engine: one shard per link, run in parallel by a
// configurable worker pool with deterministic cross-shard event exchange.
// Shards advance in lockstep rounds bounded by the topology's minimum link
// delay (the conservative-parallel-simulation lookahead: any event a shard
// emits lands at least one propagation delay in the future, so messages
// exchanged at round barriers in fixed shard order are always processed in
// exact timestamp order). A fixed seed is therefore bit-reproducible at any
// worker count, and both engines produce identical statistics.
//
// Per-flow hot state lives in a structure-of-arrays block (soaState) sized
// once per run, so 10k-100k-flow incast and flash-crowd scenarios allocate
// O(flows), not O(packets), and simulate in seconds.
package topo

import (
	"fmt"
	"math"
	"math/rand"

	"mocc/internal/cc"
	"mocc/internal/netsim"
	"mocc/internal/trace"
)

// MIStat is one monitor interval of one flow — the same statistics record
// netsim produces, so per-MI series from the two simulators diff directly.
type MIStat = netsim.MIStat

// LinkConfig describes one bottleneck link of the topology.
type LinkConfig struct {
	// Name identifies the link in paths and diagnostics.
	Name string
	// Capacity is the service rate schedule in packets/second.
	Capacity trace.Bandwidth
	// Delay is the link's one-way propagation delay in seconds. It must be
	// > 0: it is both the physical delay a packet pays after being serviced
	// and the sharded engine's cross-shard lookahead.
	Delay float64
	// QueuePkts is the drop-tail buffer size in packets (0 selects the
	// netsim default of 1000).
	QueuePkts int
	// LossRate is the link's random (non-congestive) loss probability.
	LossRate float64
}

// Topology is a validated set of links flows reference by index.
type Topology struct {
	Links []LinkConfig

	index map[string]int
}

// MaxLinks bounds the topology size: shards are one-per-link, and the
// model targets small DAGs (access/core/egress tiers), not full fabrics.
const MaxLinks = 256

// New validates the link set and builds a Topology.
func New(links []LinkConfig) (*Topology, error) {
	if len(links) == 0 {
		return nil, fmt.Errorf("topo: at least one link is required")
	}
	if len(links) > MaxLinks {
		return nil, fmt.Errorf("topo: %d links exceed the %d-link limit", len(links), MaxLinks)
	}
	t := &Topology{Links: links, index: make(map[string]int, len(links))}
	for i, l := range links {
		if l.Name == "" {
			return nil, fmt.Errorf("topo: link %d needs a name", i)
		}
		if prev, dup := t.index[l.Name]; dup {
			return nil, fmt.Errorf("topo: duplicate link name %q (links %d and %d)", l.Name, prev, i)
		}
		if l.Capacity == nil {
			return nil, fmt.Errorf("topo: link %q needs a capacity schedule", l.Name)
		}
		if !(l.Delay > 0) || math.IsInf(l.Delay, 0) || math.IsNaN(l.Delay) {
			return nil, fmt.Errorf("topo: link %q delay %g must be a finite positive duration", l.Name, l.Delay)
		}
		if l.LossRate < 0 || l.LossRate >= 1 || math.IsNaN(l.LossRate) {
			return nil, fmt.Errorf("topo: link %q loss rate %g must lie in [0, 1)", l.Name, l.LossRate)
		}
		t.index[l.Name] = i
	}
	return t, nil
}

// Index returns the position of the named link, or -1 when absent.
func (t *Topology) Index(name string) int {
	if i, ok := t.index[name]; ok {
		return i
	}
	return -1
}

// minDelay is the sharded engine's lookahead: the smallest one-way delay.
func (t *Topology) minDelay() float64 {
	d := math.Inf(1)
	for _, l := range t.Links {
		if l.Delay < d {
			d = l.Delay
		}
	}
	return d
}

// PathDelay sums the one-way propagation delay along a path of link
// indices; half the path's base RTT.
func (t *Topology) PathDelay(path []int) float64 {
	var d float64
	for _, li := range path {
		d += t.Links[li].Delay
	}
	return d
}

// CheckPath validates one flow path against the topology: non-empty,
// in-range indices, and no link visited twice.
func (t *Topology) CheckPath(path []int) error {
	if len(path) == 0 {
		return fmt.Errorf("topo: a flow path needs at least one link")
	}
	seen := make(map[int]bool, len(path))
	for _, li := range path {
		if li < 0 || li >= len(t.Links) {
			return fmt.Errorf("topo: path references link index %d (topology has %d links)", li, len(t.Links))
		}
		if seen[li] {
			return fmt.Errorf("topo: path visits link %q twice (paths must be loop-free)", t.Links[li].Name)
		}
		seen[li] = true
	}
	return nil
}

// CheckDAG verifies that the union of all paths' link-to-link hops induces
// a directed acyclic graph — the topology contract stated in the scenario
// schema. (The engines themselves only need positive link delays; the DAG
// requirement keeps specs physically meaningful.)
func (t *Topology) CheckDAG(paths [][]int) error {
	n := len(t.Links)
	adj := make([][]int, n)
	indeg := make([]int, n)
	type edge struct{ a, b int }
	seen := make(map[edge]bool)
	for _, p := range paths {
		for i := 1; i < len(p); i++ {
			e := edge{p[i-1], p[i]}
			if e.a == e.b || seen[e] {
				continue
			}
			seen[e] = true
			adj[e.a] = append(adj[e.a], e.b)
			indeg[e.b]++
		}
	}
	// Kahn's algorithm; whatever survives the peel is (part of) a cycle.
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		done++
		for _, w := range adj[v] {
			if indeg[w]--; indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if done != n {
		var cyc []string
		for i := 0; i < n; i++ {
			if indeg[i] > 0 {
				cyc = append(cyc, t.Links[i].Name)
			}
		}
		return fmt.Errorf("topo: flow paths induce a cycle through links %v (the link graph must be a DAG)", cyc)
	}
	return nil
}

// FlowConfig describes one flow; the analogue of netsim.FlowConfig with a
// multi-link path.
type FlowConfig struct {
	// Label names the flow in results (defaults to the algorithm name).
	Label string
	// Alg is the congestion controller driving the flow.
	Alg cc.Algorithm
	// Path is the ordered list of link indices the flow traverses. The
	// first link is the flow's home: its sender-side bottleneck, whose
	// backlog the per-MI Queue statistic reports.
	Path []int
	// Start and Stop bound the flow's active period in seconds
	// (Stop = 0 means run until the simulation ends).
	Start, Stop float64
	// MIms is the monitor-interval length in milliseconds (default: one
	// base path RTT, floored at 10ms).
	MIms float64
	// PacketBudget ends the flow after this many delivered packets
	// (0 = unlimited).
	PacketBudget int
	// MaxRate caps the pacing rate in packets/second; 0 selects 4x the
	// path's minimum link capacity at time 0.
	MaxRate float64
	// Seed drives the algorithm's internal randomness.
	Seed int64
}

// Flow is one sender-receiver pair. Result fields are valid after Run; the
// exported surface mirrors netsim.Flow so downstream summarizers and
// differential tests treat both simulators uniformly.
type Flow struct {
	ID    int
	Label string
	Cfg   FlowConfig

	// Stats holds one entry per completed monitor interval.
	Stats []MIStat
	// Totals over the whole run.
	SentTotal, DeliveredTotal, LostTotal int
	// Completed / CompletionTime report PacketBudget termination.
	Completed      bool
	CompletionTime float64
	// RTT of every delivered packet is aggregated here.
	SumRTT float64

	// OnDeliver, when set, is invoked at each packet delivery with the
	// delivery time.
	OnDeliver func(t float64)
}

// InFlight returns packets sent but neither delivered nor lost by run end:
// in a queue, on a wire, or dropped with the loss still propagating to the
// receiver when the simulation stopped.
func (f *Flow) InFlight() int {
	return f.SentTotal - f.DeliveredTotal - f.LostTotal
}

// flow state flag bits.
const (
	flagActive uint8 = 1 << iota
	flagStopped
	flagCompleted
)

// soaState is the structure-of-arrays flow-state block: one slice per hot
// field, indexed by flow ID. Both engines drive the same accounting methods
// over it, and the layout keeps a 100k-flow run's working set linear scans
// over dense float64/int64 arrays instead of 100k scattered structs.
type soaState struct {
	rate     []float64 // current pacing rate (pkts/s)
	nextSend []float64 // next transmission instant (engine pacing cursor)
	miStart  []float64 // current monitor interval's start time
	miRTTSum []float64 // RTT accumulated over the current MI
	sumRTT   []float64 // RTT accumulated over the whole run
	minRTT   []float64 // minimum RTT observed so far
	complete []float64 // completion time (budgeted flows)
	pathOWD  []float64 // one-way propagation delay along the path
	maxRate  []float64 // pacing-rate cap
	miDur    []float64 // monitor-interval length (s)

	sent, delivered, lost       []int64 // run totals
	miSent, miDelivered, miLost []int64 // current-MI accumulators
	budget                      []int64 // packet budget (0 = unlimited)
	flags                       []uint8
}

// newSoaState allocates every field for n flows in one shot.
func newSoaState(n int) *soaState {
	f := make([]float64, 10*n)
	i := make([]int64, 7*n)
	return &soaState{
		rate:     f[0*n : 1*n],
		nextSend: f[1*n : 2*n],
		miStart:  f[2*n : 3*n],
		miRTTSum: f[3*n : 4*n],
		sumRTT:   f[4*n : 5*n],
		minRTT:   f[5*n : 6*n],
		complete: f[6*n : 7*n],
		pathOWD:  f[7*n : 8*n],
		maxRate:  f[8*n : 9*n],
		miDur:    f[9*n : 10*n],

		sent:        i[0*n : 1*n],
		delivered:   i[1*n : 2*n],
		lost:        i[2*n : 3*n],
		miSent:      i[3*n : 4*n],
		miDelivered: i[4*n : 5*n],
		miLost:      i[5*n : 6*n],
		budget:      i[6*n : 7*n],

		flags: make([]uint8, n),
	}
}

// applyFlowDefaults normalizes a FlowConfig against the topology, mirroring
// netsim.newFlow: the MI defaults to one base path RTT (≥ 10ms) and the
// rate cap to 4x the path's minimum time-0 capacity (not the first link's
// alone — the binding constraint on a multi-link path is its narrowest
// bottleneck).
func applyFlowDefaults(t *Topology, cfg FlowConfig) FlowConfig {
	if cfg.Alg == nil {
		panic("topo: FlowConfig.Alg is required")
	}
	if err := t.CheckPath(cfg.Path); err != nil {
		panic(err)
	}
	if cfg.MIms <= 0 {
		cfg.MIms = math.Max(10, 2*t.PathDelay(cfg.Path)*1000)
	}
	if cfg.MaxRate <= 0 {
		minCap := math.Inf(1)
		for _, li := range cfg.Path {
			if c := t.Links[li].Capacity.At(0); c < minCap {
				minCap = c
			}
		}
		cfg.MaxRate = 4 * minCap
	}
	if cfg.Label == "" {
		cfg.Label = cfg.Alg.Name()
	}
	return cfg
}

// startRun initializes flow f's state slot for a fresh run and pre-sizes
// its per-MI statistics for the horizon, mirroring netsim.Flow.startRun.
func (st *soaState) startRun(t *Topology, f *Flow, duration float64) {
	id := f.ID
	st.pathOWD[id] = t.PathDelay(f.Cfg.Path)
	st.maxRate[id] = f.Cfg.MaxRate
	st.miDur[id] = f.Cfg.MIms / 1000
	st.budget[id] = int64(f.Cfg.PacketBudget)
	st.minRTT[id] = math.Inf(1)
	f.Cfg.Alg.Reset(f.Cfg.Seed)
	st.rate[id] = math.Min(f.Cfg.Alg.InitialRate(2*st.pathOWD[id]), st.maxRate[id])
	if mis := duration / st.miDur[id]; mis > 0 && mis < 1<<20 {
		f.Stats = make([]MIStat, 0, int(mis)+2)
	}
}

// deliver records one packet arrival at the receiver at time now. The RTT
// is the measured one-way trip plus the path's return propagation delay,
// exactly as netsim charges OWD for the reverse path.
func (st *soaState) deliver(f *Flow, now, sendTime float64) {
	id := f.ID
	st.delivered[id]++
	st.miDelivered[id]++
	rtt := (now - sendTime) + st.pathOWD[id]
	st.miRTTSum[id] += rtt
	st.sumRTT[id] += rtt
	if rtt < st.minRTT[id] {
		st.minRTT[id] = rtt
	}
	if f.OnDeliver != nil {
		f.OnDeliver(now)
	}
	if st.budget[id] > 0 && st.delivered[id] >= st.budget[id] && st.flags[id]&flagCompleted == 0 {
		st.flags[id] |= flagCompleted
		st.flags[id] &^= flagActive
		st.complete[id] = now
	}
}

// closeMI closes one monitor interval of flow f at time now; backlog is the
// flow's home-link queue at now. It returns false when the flow no longer
// monitors. The arithmetic is kept in lockstep with netsim.Flow.closeMI so
// one-link topologies reproduce netsim bit-for-bit.
func (st *soaState) closeMI(f *Flow, now, backlog float64) bool {
	id := f.ID
	if st.flags[id]&flagStopped != 0 ||
		(st.flags[id]&flagCompleted != 0 && st.flags[id]&flagActive == 0) {
		return false
	}
	owd := st.pathOWD[id]
	d := now - st.miStart[id]
	if d <= 0 {
		d = st.miDur[id]
	}
	sent := float64(st.miSent[id])
	delivered := float64(st.miDelivered[id])
	lost := float64(st.miLost[id])
	avgRTT := 0.0
	if st.miDelivered[id] > 0 {
		avgRTT = st.miRTTSum[id] / delivered
	} else if !math.IsInf(st.minRTT[id], 1) {
		avgRTT = st.minRTT[id]
	} else {
		avgRTT = 2 * owd
	}
	lossRate := 0.0
	if sent > 0 {
		lossRate = lost / sent
	}
	minRTT := st.minRTT[id]
	if math.IsInf(minRTT, 1) {
		minRTT = 2 * owd
	}

	stat := MIStat{
		Time:       now,
		SendRate:   st.rate[id],
		Throughput: delivered / d,
		AvgRTT:     avgRTT,
		LossRate:   lossRate,
		Sent:       sent,
		Delivered:  delivered,
		Lost:       lost,
		Queue:      backlog,
	}
	f.Stats = append(f.Stats, stat)

	report := cc.Report{
		Duration:   d,
		Sent:       sent,
		Delivered:  delivered,
		Lost:       lost,
		SendRate:   st.rate[id],
		Throughput: stat.Throughput,
		AvgRTT:     avgRTT,
		MinRTT:     minRTT,
		LossRate:   lossRate,
	}
	st.rate[id] = f.Cfg.Alg.Update(report)
	if math.IsNaN(st.rate[id]) || st.rate[id] <= 0 {
		st.rate[id] = 0.5
	}
	if st.rate[id] > st.maxRate[id] {
		st.rate[id] = st.maxRate[id]
	}

	st.miSent[id], st.miDelivered[id], st.miLost[id] = 0, 0, 0
	st.miRTTSum[id] = 0
	st.miStart[id] = now
	return true
}

// finish copies a flow's SoA slot into its exported result fields.
func (st *soaState) finish(f *Flow) {
	id := f.ID
	f.SentTotal = int(st.sent[id])
	f.DeliveredTotal = int(st.delivered[id])
	f.LostTotal = int(st.lost[id])
	f.Completed = st.flags[id]&flagCompleted != 0
	f.CompletionTime = st.complete[id]
	f.SumRTT = st.sumRTT[id]
}

// linkState is one bottleneck's runtime state, shared by both engines: the
// virtual-queue horizon, the devirtualized capacity sampler and the
// per-link random-loss stream.
type linkState struct {
	cfg     LinkConfig
	capac   trace.Sampler
	rng     *rand.Rand
	lastDep float64
	queue   float64
}

// newLinkState normalizes the config (netsim's 1000-packet queue default)
// and seeds the per-link RNG. Link 0 draws from the run seed itself so a
// one-link topology consumes the exact loss stream netsim would; further
// links fold their index in through a splitmix-style odd multiplier.
func newLinkState(l LinkConfig, idx int, seed int64) linkState {
	q := l.QueuePkts
	if q <= 0 {
		q = 1000
	}
	s := seed
	if idx > 0 {
		s = seed ^ int64(uint64(idx)*0x9E3779B97F4A7C15)
	}
	return linkState{
		cfg:   l,
		capac: trace.NewSampler(l.Capacity),
		rng:   rand.New(rand.NewSource(s)),
		queue: float64(q),
	}
}

// admit offers one packet to the link at time t: it either assigns a
// departure time off the virtual queue or reports a drop (random loss or
// buffer overflow). The operation order matches netsim.Network.transmit
// exactly — capacity sampled and backlog priced before the loss draw, the
// draw consumed whenever the link has a loss process.
func (l *linkState) admit(t float64) (dep float64, ok bool) {
	capRaw := l.capac.At(t)
	capNow := math.Max(capRaw, 0.1)
	backlog := (l.lastDep - t) * capRaw
	if l.cfg.LossRate > 0 && l.rng.Float64() < l.cfg.LossRate {
		return 0, false // random (non-congestive) loss
	}
	if backlog >= l.queue {
		return 0, false // drop-tail: buffer full
	}
	dep = math.Max(t, l.lastDep) + 1/capNow
	l.lastDep = dep
	return dep, true
}

// backlog returns the link's queue occupancy in packets at time t.
func (l *linkState) backlog(t float64) float64 {
	b := (l.lastDep - t) * l.capac.At(t)
	if b < 0 {
		return 0
	}
	return b
}
