package topo

// Reference is the ground-truth engine: a classical per-packet
// discrete-event simulator driving the shared core handlers off one global
// heap, one event per hop traversal. It is deliberately the simplest
// possible execution of the event schedule — no shards, no rounds, no
// message exchange — and the equivalence tests hold Engine to it
// bit-for-bit, mirroring netsim's Network/ReferenceNetwork contract.
//
// Not safe for concurrent use.
type Reference struct {
	Topo  *Topology
	Flows []*Flow

	core   core
	events eventQueue
	now    float64
	seed   int64
}

// NewReference creates a per-packet reference simulator over the topology.
// seed drives every link's random-loss process.
func NewReference(t *Topology, seed int64) *Reference {
	return &Reference{Topo: t, seed: seed}
}

// AddFlow registers a flow; call before Run.
func (r *Reference) AddFlow(cfg FlowConfig) *Flow {
	cfg = applyFlowDefaults(r.Topo, cfg)
	f := &Flow{ID: len(r.Flows), Label: cfg.Label, Cfg: cfg}
	r.Flows = append(r.Flows, f)
	return f
}

// Now returns the current simulation time.
func (r *Reference) Now() float64 { return r.now }

// Run executes the simulation until the given duration (seconds). It may
// be called once per Reference.
func (r *Reference) Run(duration float64) {
	r.core = core{topo: r.Topo, flows: r.Flows}
	r.core.initRun(r.seed, duration)
	// The reference ignores destination shards: every follow-up goes back
	// on the one global heap.
	emit := func(_ int32, e event) { r.events.push(e) }
	r.core.seedEvents(emit)

	for r.events.len() > 0 {
		e := r.events.pop()
		if e.time > duration {
			break
		}
		r.now = e.time
		r.core.handle(e, emit, emit)
	}
	r.now = duration
	r.core.finishRun()
}
