package topo

import (
	"math"
	"runtime"
	"sync"
)

// routed is one cross-shard message awaiting the round barrier.
type routed struct {
	dst int32
	ev  event
}

// shard is one bottleneck link's execution context: the link's pending
// events (control, pacing and inbound packets share one heap) and the
// outbox of messages generated this round.
type shard struct {
	heap eventQueue
	out  []routed
}

// Engine is the production topology simulator: one shard per link,
// processed in parallel rounds with deterministic cross-shard event
// exchange — conservative parallel discrete-event simulation with the
// topology's minimum link delay as lookahead.
//
// Each round the coordinator takes the globally earliest pending event
// time t and sets the horizon H = t + lookahead. Every shard then runs its
// own events with time < H. That is safe because any message a shard emits
// from an event at time u ≥ t arrives after at least one link's
// propagation delay, i.e. at u + delay ≥ t + lookahead = H — no shard can
// receive work for the window it is currently executing. Outboxes are
// exchanged at the barrier; since eventBefore is a total order with no two
// live events sharing a key, each heap's pop sequence is the sorted event
// sequence regardless of insertion order, so the simulation is
// bit-reproducible at any worker count, and identical to Reference, which
// executes the same schedule on one heap.
//
// Shard state is disjoint: a shard owns its link's queue/RNG/sampler and
// the full control state (pacing, monitor intervals, accumulators) of
// every flow whose path starts at its link. Mid-path hops touch only the
// local link; drops and deliveries travel home as messages. Workers
// therefore never share mutable state inside a round, and Run is
// `-race`-clean by construction.
//
// Not safe for concurrent use (a single Run drives its own workers).
type Engine struct {
	Topo  *Topology
	Flows []*Flow

	// Workers sets the worker-pool size; <= 0 selects GOMAXPROCS. The
	// pool is capped at the shard (= link) count. Results are identical
	// at every setting.
	Workers int

	core   core
	shards []shard
	now    float64
	seed   int64
}

// NewEngine creates a sharded simulator over the topology. seed drives
// every link's random-loss process, exactly as in NewReference.
func NewEngine(t *Topology, seed int64) *Engine {
	return &Engine{Topo: t, seed: seed}
}

// AddFlow registers a flow; call before Run.
func (e *Engine) AddFlow(cfg FlowConfig) *Flow {
	cfg = applyFlowDefaults(e.Topo, cfg)
	f := &Flow{ID: len(e.Flows), Label: cfg.Label, Cfg: cfg}
	e.Flows = append(e.Flows, f)
	return f
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Run executes the simulation until the given duration (seconds). It may
// be called once per Engine.
func (e *Engine) Run(duration float64) {
	e.core = core{topo: e.Topo, flows: e.Flows}
	e.core.initRun(e.seed, duration)
	e.shards = make([]shard, len(e.Topo.Links))
	e.core.seedEvents(func(dst int32, ev event) {
		e.shards[dst].heap.push(ev)
	})

	lookahead := e.Topo.minDelay()
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(e.shards) {
		workers = len(e.shards)
	}

	var wg sync.WaitGroup
	for {
		minNext := math.Inf(1)
		for i := range e.shards {
			if h := &e.shards[i].heap; h.len() > 0 {
				if t := h.peek().time; t < minNext {
					minNext = t
				}
			}
		}
		if minNext > duration {
			break
		}
		horizon := minNext + lookahead

		if workers <= 1 {
			for i := range e.shards {
				e.runShard(i, horizon, duration)
			}
		} else {
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(e.shards); i += workers {
						e.runShard(i, horizon, duration)
					}
				}(w)
			}
			wg.Wait()
		}

		// Barrier: route every outbox in fixed shard order. (Insertion
		// order into a destination heap does not even matter — see the
		// Engine doc comment — but a fixed order keeps the reduction
		// trivially deterministic.)
		for i := range e.shards {
			s := &e.shards[i]
			for _, m := range s.out {
				e.shards[m.dst].heap.push(m.ev)
			}
			s.out = s.out[:0]
		}
	}
	e.now = duration
	e.core.finishRun()
}

// runShard executes shard i's pending events with time < horizon (and
// within the run duration). Follow-ups for the shard itself go straight
// back on its heap; cross-link messages collect in the outbox.
func (e *Engine) runShard(i int, horizon, duration float64) {
	s := &e.shards[i]
	local := func(dst int32, ev event) {
		// Control and pacing follow-ups always target the emitting
		// flow's home shard, which is the shard processing the event.
		s.heap.push(ev)
	}
	msg := func(dst int32, ev event) {
		s.out = append(s.out, routed{dst: dst, ev: ev})
	}
	for s.heap.len() > 0 {
		t := s.heap.peek().time
		if t >= horizon || t > duration {
			break
		}
		e.core.handle(s.heap.pop(), local, msg)
	}
}
