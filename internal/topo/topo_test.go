package topo

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"mocc/internal/cc"
	"mocc/internal/trace"
)

// fixedRate is a non-reactive constant-rate controller for tests.
type fixedRate struct {
	rate float64
}

func (f *fixedRate) Name() string                { return "fixed" }
func (f *fixedRate) Reset(int64)                 {}
func (f *fixedRate) InitialRate(float64) float64 { return f.rate }
func (f *fixedRate) Update(cc.Report) float64    { return f.rate }

// link is a shorthand constructor for test topologies.
func link(name string, capacity, delay float64) LinkConfig {
	return LinkConfig{Name: name, Capacity: trace.Constant(capacity), Delay: delay, QueuePkts: 100}
}

func mustTopo(t *testing.T, links ...LinkConfig) *Topology {
	t.Helper()
	tp, err := New(links)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// TestTopologyValidation tables the constructor's and path checks' error
// cases.
func TestTopologyValidation(t *testing.T) {
	good := []LinkConfig{link("a", 1000, 0.01), link("b", 500, 0.02)}
	tooMany := make([]LinkConfig, MaxLinks+1)
	for i := range tooMany {
		tooMany[i] = link(string(rune('a'+i%26))+string(rune('0'+i/26)), 100, 0.01)
	}
	newCases := []struct {
		name    string
		links   []LinkConfig
		wantSub string
	}{
		{"no-links", nil, "at least one"},
		{"too-many-links", tooMany, "limit"},
		{"unnamed-link", []LinkConfig{{Capacity: trace.Constant(1), Delay: 0.01}}, "needs a name"},
		{"duplicate-name", []LinkConfig{link("a", 1, 0.01), link("a", 2, 0.01)}, "duplicate"},
		{"nil-capacity", []LinkConfig{{Name: "a", Delay: 0.01}}, "capacity"},
		{"zero-delay", []LinkConfig{{Name: "a", Capacity: trace.Constant(1), Delay: 0}}, "delay"},
		{"negative-delay", []LinkConfig{{Name: "a", Capacity: trace.Constant(1), Delay: -1}}, "delay"},
		{"inf-delay", []LinkConfig{{Name: "a", Capacity: trace.Constant(1), Delay: math.Inf(1)}}, "delay"},
		{"nan-delay", []LinkConfig{{Name: "a", Capacity: trace.Constant(1), Delay: math.NaN()}}, "delay"},
		{"negative-loss", []LinkConfig{{Name: "a", Capacity: trace.Constant(1), Delay: 0.01, LossRate: -0.1}}, "loss"},
		{"full-loss", []LinkConfig{{Name: "a", Capacity: trace.Constant(1), Delay: 0.01, LossRate: 1}}, "loss"},
		{"nan-loss", []LinkConfig{{Name: "a", Capacity: trace.Constant(1), Delay: 0.01, LossRate: math.NaN()}}, "loss"},
	}
	for _, c := range newCases {
		if _, err := New(c.links); err == nil {
			t.Errorf("%s: New accepted invalid links", c.name)
		} else if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}

	tp := mustTopo(t, good...)
	if tp.Index("a") != 0 || tp.Index("b") != 1 || tp.Index("zzz") != -1 {
		t.Errorf("Index lookups wrong: a=%d b=%d zzz=%d", tp.Index("a"), tp.Index("b"), tp.Index("zzz"))
	}
	pathCases := []struct {
		name    string
		path    []int
		wantSub string
	}{
		{"empty-path", nil, "at least one"},
		{"negative-index", []int{-1}, "index"},
		{"out-of-range", []int{2}, "index"},
		{"looping-path", []int{0, 1, 0}, "twice"},
	}
	for _, c := range pathCases {
		if err := tp.CheckPath(c.path); err == nil {
			t.Errorf("%s: CheckPath accepted invalid path", c.name)
		} else if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
	if err := tp.CheckPath([]int{0, 1}); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}

	if err := tp.CheckDAG([][]int{{0, 1}, {1}}); err != nil {
		t.Errorf("acyclic paths rejected: %v", err)
	}
	if err := tp.CheckDAG([][]int{{0, 1}, {1, 0}}); err == nil {
		t.Error("cyclic paths accepted")
	} else if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle error %q does not mention the cycle", err)
	}

	if got, want := tp.PathDelay([]int{0, 1}), 0.03; math.Abs(got-want) > 1e-12 {
		t.Errorf("PathDelay = %g, want %g", got, want)
	}
}

// TestFlowDefaults pins the netsim-mirroring default derivations.
func TestFlowDefaults(t *testing.T) {
	tp := mustTopo(t, link("wide", 4000, 0.01), link("narrow", 300, 0.04))
	cfg := applyFlowDefaults(tp, FlowConfig{Alg: &fixedRate{rate: 100}, Path: []int{0, 1}})
	if got, want := cfg.MIms, 100.0; got != want { // 2 * 50ms path OWD
		t.Errorf("MIms default = %g, want %g", got, want)
	}
	// The cap derives from the path's NARROWEST link, not the first one.
	if got, want := cfg.MaxRate, 4*300.0; got != want {
		t.Errorf("MaxRate default = %g, want %g (4x narrowest link)", got, want)
	}
	if cfg.Label != "fixed" {
		t.Errorf("Label default = %q, want algorithm name", cfg.Label)
	}
	short := applyFlowDefaults(tp, FlowConfig{Alg: &fixedRate{rate: 100}, Path: []int{0}})
	if got, want := short.MIms, 20.0; got != want { // 2*10ms = 20ms ≥ the 10ms floor
		t.Errorf("single-hop MIms default = %g, want %g", got, want)
	}
}

// TestEventQueueOrdering drives the 4-ary heap with shuffled populations
// and checks it drains in eventBefore order.
func TestEventQueueOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var q eventQueue
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			q.push(event{
				time:   float64(rng.Intn(20)) / 4,
				kind:   int32(rng.Intn(6)),
				flowID: int32(rng.Intn(4)),
				hop:    int32(rng.Intn(3)),
			})
		}
		prev := q.pop()
		for q.len() > 0 {
			next := q.pop()
			if eventBefore(next, prev) {
				t.Fatalf("trial %d: heap emitted %+v after %+v", trial, next, prev)
			}
			prev = next
		}
	}
}

// TestReferencePhysicalBehaviour spot-checks the reference engine against
// first-principles expectations on a two-link chain so it stays a
// trustworthy baseline for the equivalence suite.
func TestReferencePhysicalBehaviour(t *testing.T) {
	tp := mustTopo(t, link("access", 2000, 0.01), link("core", 1000, 0.02))
	r := NewReference(tp, 1)
	f := r.AddFlow(FlowConfig{Alg: &fixedRate{rate: 500}, Path: []int{0, 1}})
	r.Run(10)
	if f.LostTotal != 0 {
		t.Errorf("losses on an underloaded path: %d", f.LostTotal)
	}
	if f.DeliveredTotal < 4800 || f.DeliveredTotal > 5100 {
		t.Errorf("delivered %d, want ~5000", f.DeliveredTotal)
	}
	avgRTT := f.SumRTT / float64(f.DeliveredTotal)
	// Base RTT 60ms plus two service times (0.5ms + 1ms).
	if avgRTT < 0.060 || avgRTT > 0.066 {
		t.Errorf("avg RTT %v, want ~0.0615", avgRTT)
	}
	if f.SentTotal != f.DeliveredTotal+f.LostTotal+f.InFlight() {
		t.Error("conservation violated")
	}

	// A narrower core than access link must bound throughput by the core.
	r2 := NewReference(tp, 2)
	g := r2.AddFlow(FlowConfig{Alg: &fixedRate{rate: 1800}, Path: []int{0, 1}, MaxRate: 4000})
	r2.Run(10)
	rate := float64(g.DeliveredTotal) / 10
	if rate > 1001 {
		t.Errorf("delivered %g pkts/s through a 1000 pkts/s core", rate)
	}
	if rate < 900 {
		t.Errorf("delivered %g pkts/s, want the core nearly saturated", rate)
	}
}
