package topo

import (
	"fmt"
	"testing"

	"mocc/internal/cc"
	"mocc/internal/netsim"
	"mocc/internal/trace"
)

// compareFlows asserts two flow sets agree bitwise on every observable.
func compareFlows(t *testing.T, aName, bName string, a, b []*Flow) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s has %d flows, %s has %d", aName, len(a), bName, len(b))
	}
	for i := range a {
		f, r := a[i], b[i]
		if f.SentTotal != r.SentTotal || f.DeliveredTotal != r.DeliveredTotal || f.LostTotal != r.LostTotal {
			t.Errorf("flow %d totals: %s sent/del/lost %d/%d/%d, %s %d/%d/%d",
				i, aName, f.SentTotal, f.DeliveredTotal, f.LostTotal,
				bName, r.SentTotal, r.DeliveredTotal, r.LostTotal)
		}
		if f.Completed != r.Completed || f.CompletionTime != r.CompletionTime {
			t.Errorf("flow %d completion: %s %v@%v, %s %v@%v",
				i, aName, f.Completed, f.CompletionTime, bName, r.Completed, r.CompletionTime)
		}
		if f.SumRTT != r.SumRTT {
			t.Errorf("flow %d SumRTT: %s %v, %s %v", i, aName, f.SumRTT, bName, r.SumRTT)
		}
		if len(f.Stats) != len(r.Stats) {
			t.Fatalf("flow %d: %d MIs on %s vs %d on %s", i, len(f.Stats), aName, len(r.Stats), bName)
		}
		for mi := range r.Stats {
			if f.Stats[mi] != r.Stats[mi] {
				t.Fatalf("flow %d MI %d differs:\n%s %+v\n%s  %+v",
					i, mi, aName, f.Stats[mi], bName, r.Stats[mi])
			}
		}
	}
}

// singleLinkScenario is one case of the netsim bit-compat suite: the same
// nine scenarios netsim's own equivalence suite pins, expressed once as a
// netsim LinkConfig and once as a one-link topology.
type singleLinkScenario struct {
	name  string
	link  netsim.LinkConfig
	flows []netsim.FlowConfig
	dur   float64
	seed  int64
}

// singleLinkScenarios mirrors netsim's equivalenceScenarios: every batching
// hazard that suite covers must also hold across the netsim/topo boundary.
func singleLinkScenarios() []singleLinkScenario {
	mk := func(r float64) netsim.FlowConfig { return netsim.FlowConfig{Alg: &fixedRate{rate: r}} }
	return []singleLinkScenario{
		{
			name:  "single-flow-underload",
			link:  netsim.LinkConfig{Capacity: trace.Constant(1000), OWD: 0.02, QueuePkts: 40},
			flows: []netsim.FlowConfig{mk(500)},
			dur:   10,
			seed:  1,
		},
		{
			name:  "two-flow-overload",
			link:  netsim.LinkConfig{Capacity: trace.Constant(1000), OWD: 0.02, QueuePkts: 40},
			flows: []netsim.FlowConfig{mk(900), mk(900)},
			dur:   10,
			seed:  2,
		},
		{
			name: "three-flow-staggered-start-stop",
			link: netsim.LinkConfig{Capacity: trace.Constant(2000), OWD: 0.015, QueuePkts: 80},
			flows: []netsim.FlowConfig{
				{Alg: &fixedRate{rate: 900}, Start: 0, Stop: 8},
				{Alg: &fixedRate{rate: 1100}, Start: 2},
				{Alg: &fixedRate{rate: 700}, Start: 4, Stop: 9},
			},
			dur:  12,
			seed: 3,
		},
		{
			name:  "step-trace-mid-train",
			link:  netsim.LinkConfig{Capacity: trace.Step{Low: 500, High: 1500, Period: 0.9}, OWD: 0.01, QueuePkts: 60},
			flows: []netsim.FlowConfig{mk(1200), mk(600)},
			dur:   8,
			seed:  4,
		},
		{
			name:  "random-loss-stream",
			link:  netsim.LinkConfig{Capacity: trace.Constant(1500), OWD: 0.02, QueuePkts: 50, LossRate: 0.03},
			flows: []netsim.FlowConfig{mk(800), mk(800)},
			dur:   10,
			seed:  5,
		},
		{
			name: "packet-budget-completion",
			link: netsim.LinkConfig{Capacity: trace.Constant(1000), OWD: 0.02, QueuePkts: 40},
			flows: []netsim.FlowConfig{
				{Alg: &fixedRate{rate: 600}, PacketBudget: 1000},
				{Alg: &fixedRate{rate: 600}, PacketBudget: 2500},
			},
			dur:  12,
			seed: 6,
		},
		{
			name: "reactive-controllers-with-loss",
			link: netsim.LinkConfig{Capacity: trace.Constant(1200), OWD: 0.02, QueuePkts: 45, LossRate: 0.01},
			flows: []netsim.FlowConfig{
				{Alg: cc.NewCubic(), Seed: 11},
				{Alg: cc.NewBBR(), Start: 1, Seed: 12},
				{Alg: cc.NewVegas(), Start: 2, Stop: 18, Seed: 13},
			},
			dur:  25,
			seed: 7,
		},
		{
			name:  "random-walk-generic-trace",
			link:  netsim.LinkConfig{Capacity: trace.NewRandomWalk(400, 1600, 0.5, 10, 9), OWD: 0.02, QueuePkts: 50},
			flows: []netsim.FlowConfig{mk(900), {Alg: cc.NewCubic(), Seed: 14}},
			dur:   10,
			seed:  8,
		},
		{
			name: "levels-replay-trace",
			link: netsim.LinkConfig{
				Capacity:  trace.MustLevels([]float64{0, 0.7, 1.5, 2.2, 3.0}, []float64{1200, 400, 1600, 250, 900}, 3.5),
				OWD:       0.02,
				QueuePkts: 55,
			},
			flows: []netsim.FlowConfig{mk(850), {Alg: cc.NewBBR(), Start: 1, Seed: 21}},
			dur:   11,
			seed:  9,
		},
	}
}

// asTopology lowers a netsim single-link scenario onto a one-link topology.
func asTopology(t *testing.T, sc singleLinkScenario) (*Topology, []FlowConfig) {
	t.Helper()
	tp, err := New([]LinkConfig{{
		Name:      "bottleneck",
		Capacity:  sc.link.Capacity,
		Delay:     sc.link.OWD,
		QueuePkts: sc.link.QueuePkts,
		LossRate:  sc.link.LossRate,
	}})
	if err != nil {
		t.Fatal(err)
	}
	flows := make([]FlowConfig, len(sc.flows))
	for i, fc := range sc.flows {
		flows[i] = FlowConfig{
			Label: fc.Label, Alg: fc.Alg, Path: []int{0},
			Start: fc.Start, Stop: fc.Stop, MIms: fc.MIms,
			PacketBudget: fc.PacketBudget, MaxRate: fc.MaxRate, Seed: fc.Seed,
		}
	}
	return tp, flows
}

// TestNetsimBitCompat is the single-link proof obligation: a one-link
// topology run through BOTH topo engines must reproduce netsim.Network
// bit-for-bit on the full netsim equivalence suite — same float ops in the
// same order, same RNG stream, same event ranks. Algorithm instances are
// shared across the sequential runs; Reset(seed) at each Run start makes
// that sound (netsim's own suite leans on the same property).
func TestNetsimBitCompat(t *testing.T) {
	for _, sc := range singleLinkScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			n := netsim.NewNetwork(sc.link, sc.seed)
			for _, fc := range sc.flows {
				n.AddFlow(fc)
			}
			n.Run(sc.dur)
			want := make([]*Flow, len(n.Flows))
			for i, f := range n.Flows {
				want[i] = &Flow{
					ID: f.ID, Label: f.Label, Stats: f.Stats,
					SentTotal: f.SentTotal, DeliveredTotal: f.DeliveredTotal, LostTotal: f.LostTotal,
					Completed: f.Completed, CompletionTime: f.CompletionTime, SumRTT: f.SumRTT,
				}
			}

			tp, flows := asTopology(t, sc)
			r := NewReference(tp, sc.seed)
			for _, fc := range flows {
				r.AddFlow(fc)
			}
			r.Run(sc.dur)
			compareFlows(t, "topo-ref", "netsim", r.Flows, want)

			e := NewEngine(tp, sc.seed)
			for _, fc := range flows {
				e.AddFlow(fc)
			}
			e.Run(sc.dur)
			compareFlows(t, "topo-engine", "netsim", e.Flows, want)
		})
	}
}

// multiScenario is one multi-link Engine-vs-Reference case.
type multiScenario struct {
	name  string
	links []LinkConfig
	flows []FlowConfig
	dur   float64
	seed  int64
}

// multiLinkScenarios covers the cross-shard hazards: shared mid-path links,
// fan-in onto one core, per-link loss streams, budgets completing while
// packets are mid-path, and reactive controllers reading multi-hop RTTs.
func multiLinkScenarios() []multiScenario {
	return []multiScenario{
		{
			name: "parking-lot",
			links: []LinkConfig{
				link("left", 1000, 0.01),
				link("right", 800, 0.015),
			},
			flows: []FlowConfig{
				{Alg: &fixedRate{rate: 700}, Path: []int{0, 1}},
				{Alg: &fixedRate{rate: 600}, Path: []int{0}, Start: 1},
				{Alg: &fixedRate{rate: 500}, Path: []int{1}, Start: 2, Stop: 8},
			},
			dur:  10,
			seed: 1,
		},
		{
			name: "incast-fan-in",
			links: []LinkConfig{
				link("rack0", 2000, 0.001),
				link("rack1", 2000, 0.0015),
				link("rack2", 2000, 0.002),
				link("core", 1500, 0.003),
			},
			flows: []FlowConfig{
				{Alg: &fixedRate{rate: 800}, Path: []int{0, 3}},
				{Alg: &fixedRate{rate: 800}, Path: []int{1, 3}, Start: 0.1},
				{Alg: &fixedRate{rate: 800}, Path: []int{2, 3}, Start: 0.2},
				{Alg: &fixedRate{rate: 800}, Path: []int{0, 3}, Start: 0.3},
			},
			dur:  5,
			seed: 2,
		},
		{
			name: "lossy-three-hop-chain",
			links: []LinkConfig{
				{Name: "a", Capacity: trace.Constant(1200), Delay: 0.005, QueuePkts: 60, LossRate: 0.02},
				{Name: "b", Capacity: trace.Step{Low: 400, High: 1400, Period: 0.7}, Delay: 0.02, QueuePkts: 40},
				{Name: "c", Capacity: trace.Constant(900), Delay: 0.01, QueuePkts: 80, LossRate: 0.01},
			},
			flows: []FlowConfig{
				{Alg: &fixedRate{rate: 800}, Path: []int{0, 1, 2}},
				{Alg: &fixedRate{rate: 500}, Path: []int{1, 2}, Start: 0.5},
				{Alg: &fixedRate{rate: 400}, Path: []int{2}, Start: 1, Stop: 7},
			},
			dur:  8,
			seed: 3,
		},
		{
			name: "budget-completes-mid-path",
			links: []LinkConfig{
				link("edge", 1000, 0.01),
				link("core", 600, 0.03),
			},
			flows: []FlowConfig{
				{Alg: &fixedRate{rate: 700}, Path: []int{0, 1}, PacketBudget: 1500},
				{Alg: &fixedRate{rate: 700}, Path: []int{0, 1}},
			},
			dur:  10,
			seed: 4,
		},
		{
			name: "reactive-on-multi-hop",
			links: []LinkConfig{
				{Name: "access", Capacity: trace.Constant(1000), Delay: 0.01, QueuePkts: 80},
				{Name: "core", Capacity: trace.Constant(700), Delay: 0.025, QueuePkts: 60, LossRate: 0.005},
			},
			flows: []FlowConfig{
				{Alg: cc.NewCubic(), Path: []int{0, 1}, Seed: 31},
				{Alg: cc.NewBBR(), Path: []int{0, 1}, Start: 1, Seed: 32},
				{Alg: cc.NewVegas(), Path: []int{1}, Start: 2, Seed: 33},
			},
			dur:  15,
			seed: 5,
		},
	}
}

// runEngine executes a multi-link scenario on the sharded engine with the
// given worker count.
func runEngine(sc multiScenario, workers int) []*Flow {
	tp, err := New(sc.links)
	if err != nil {
		panic(err)
	}
	e := NewEngine(tp, sc.seed)
	e.Workers = workers
	for _, fc := range sc.flows {
		e.AddFlow(fc)
	}
	e.Run(sc.dur)
	return e.Flows
}

// TestMultiLinkEngineEquivalence holds the sharded engine to the per-packet
// reference bit-for-bit on genuinely multi-link schedules.
func TestMultiLinkEngineEquivalence(t *testing.T) {
	for _, sc := range multiLinkScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			tp, err := New(sc.links)
			if err != nil {
				t.Fatal(err)
			}
			r := NewReference(tp, sc.seed)
			for _, fc := range sc.flows {
				r.AddFlow(fc)
			}
			r.Run(sc.dur)

			fast := runEngine(sc, 0)
			compareFlows(t, "engine", "reference", fast, r.Flows)

			moved := 0
			for _, f := range r.Flows {
				moved += f.SentTotal
			}
			if moved == 0 {
				t.Fatal("scenario moved no packets")
			}
		})
	}
}

// TestWorkerCountInvariance pins the parallel engine's determinism claim:
// byte-identical results at 1, 2 and 4 workers (and, under -race via `make
// test-race`, a data-race-freedom proof for the round barrier).
func TestWorkerCountInvariance(t *testing.T) {
	for _, sc := range multiLinkScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			serial := runEngine(sc, 1)
			for _, workers := range []int{2, 4} {
				parallel := runEngine(sc, workers)
				compareFlows(t, fmt.Sprintf("workers=%d", workers), "workers=1", parallel, serial)
			}
		})
	}
}

// TestDeliveryCallbackOrder checks OnDeliver fires at identical times in
// identical per-flow order on both engines — the strongest schedule-level
// agreement short of tracing every event.
func TestDeliveryCallbackOrder(t *testing.T) {
	sc := multiLinkScenarios()[0] // parking-lot
	collect := func(mk func(tp *Topology) interface {
		AddFlow(FlowConfig) *Flow
		Run(float64)
	}) [][]float64 {
		tp, err := New(sc.links)
		if err != nil {
			t.Fatal(err)
		}
		n := mk(tp)
		out := make([][]float64, len(sc.flows))
		for i, fc := range sc.flows {
			f := n.AddFlow(fc)
			idx := i
			f.OnDeliver = func(ts float64) { out[idx] = append(out[idx], ts) }
		}
		n.Run(sc.dur)
		return out
	}
	fast := collect(func(tp *Topology) interface {
		AddFlow(FlowConfig) *Flow
		Run(float64)
	} {
		return NewEngine(tp, sc.seed)
	})
	ref := collect(func(tp *Topology) interface {
		AddFlow(FlowConfig) *Flow
		Run(float64)
	} {
		return NewReference(tp, sc.seed)
	})
	for i := range ref {
		if len(fast[i]) != len(ref[i]) {
			t.Fatalf("flow %d: %d deliveries on engine vs %d on reference", i, len(fast[i]), len(ref[i]))
		}
		for j := range ref[i] {
			if fast[i][j] != ref[i][j] {
				t.Fatalf("flow %d delivery %d: engine t=%v, reference t=%v", i, j, fast[i][j], ref[i][j])
			}
		}
	}
}
