package topo

import (
	"fmt"
	"testing"
)

// benchIncast runs the 10k-flow incast (4 racks + core, 2.5x overload, 2
// simulated seconds) on the sharded engine at a fixed worker count and
// reports packets/second of simulation throughput.
func benchIncast(b *testing.B, workers int) {
	tp, flows := incastTopology(4, 10_000, 10_000, 2.5, 2)
	var packets int
	for i := 0; i < b.N; i++ {
		e := NewEngine(tp, 7)
		e.Workers = workers
		for _, fc := range flows {
			e.AddFlow(fc)
		}
		e.Run(2)
		packets = 0
		for _, f := range e.Flows {
			packets += f.SentTotal
		}
	}
	b.ReportMetric(float64(packets)*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
	b.ReportMetric(float64(packets), "pkts/run")
}

// BenchmarkTopoIncast10k is the committed scale number: the 10k-flow
// two-tier incast end to end (setup + run), serial vs sharded-parallel.
func BenchmarkTopoIncast10k(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) { benchIncast(b, workers) })
	}
}

// BenchmarkTopoParkingLot measures steady-state multi-hop forwarding on the
// canonical two-bottleneck chain — per-packet cost with cross-shard
// messaging on every hop, engine vs per-packet reference.
func BenchmarkTopoParkingLot(b *testing.B) {
	links := []LinkConfig{link("left", 5000, 0.01), link("right", 4000, 0.015)}
	flows := []FlowConfig{
		{Alg: &fixedRate{rate: 3500}, Path: []int{0, 1}},
		{Alg: &fixedRate{rate: 2000}, Path: []int{0}},
		{Alg: &fixedRate{rate: 1500}, Path: []int{1}},
	}
	run := func(b *testing.B, mk func(*Topology) interface {
		AddFlow(FlowConfig) *Flow
		Run(float64)
	}) {
		tp, err := New(links)
		if err != nil {
			b.Fatal(err)
		}
		var packets int
		for i := 0; i < b.N; i++ {
			n := mk(tp)
			var fs []*Flow
			for _, fc := range flows {
				fs = append(fs, n.AddFlow(fc))
			}
			n.Run(10)
			packets = 0
			for _, f := range fs {
				packets += f.SentTotal
			}
		}
		b.ReportMetric(float64(packets)/b.Elapsed().Seconds()*float64(b.N), "pkts/s")
	}
	b.Run("engine", func(b *testing.B) {
		run(b, func(tp *Topology) interface {
			AddFlow(FlowConfig) *Flow
			Run(float64)
		} {
			return NewEngine(tp, 1)
		})
	})
	b.Run("reference", func(b *testing.B) {
		run(b, func(tp *Topology) interface {
			AddFlow(FlowConfig) *Flow
			Run(float64)
		} {
			return NewReference(tp, 1)
		})
	})
}
