package netsim

import (
	"math"
	"math/rand"
	"testing"

	"mocc/internal/cc"
	"mocc/internal/trace"
)

// scenario describes one equivalence case run on both engines.
type scenario struct {
	name  string
	link  LinkConfig
	flows []FlowConfig
	dur   float64
	seed  int64
}

// equivalenceScenarios covers the batching hazards: multi-flow interleaving
// through the shared virtual queue, staggered start/stop control points,
// mid-train capacity steps, the random-loss RNG stream, packet-budget
// completion racing pending transmissions, and reactive controllers whose
// rate changes at every monitor interval.
func equivalenceScenarios() []scenario {
	mk := func(r float64) FlowConfig { return FlowConfig{Alg: &fixedRate{rate: r}} }
	return []scenario{
		{
			name:  "single-flow-underload",
			link:  LinkConfig{Capacity: trace.Constant(1000), OWD: 0.02, QueuePkts: 40},
			flows: []FlowConfig{mk(500)},
			dur:   10,
			seed:  1,
		},
		{
			name:  "two-flow-overload",
			link:  LinkConfig{Capacity: trace.Constant(1000), OWD: 0.02, QueuePkts: 40},
			flows: []FlowConfig{mk(900), mk(900)},
			dur:   10,
			seed:  2,
		},
		{
			name: "three-flow-staggered-start-stop",
			link: LinkConfig{Capacity: trace.Constant(2000), OWD: 0.015, QueuePkts: 80},
			flows: []FlowConfig{
				{Alg: &fixedRate{rate: 900}, Start: 0, Stop: 8},
				{Alg: &fixedRate{rate: 1100}, Start: 2},
				{Alg: &fixedRate{rate: 700}, Start: 4, Stop: 9},
			},
			dur:  12,
			seed: 3,
		},
		{
			name:  "step-trace-mid-train",
			link:  LinkConfig{Capacity: trace.Step{Low: 500, High: 1500, Period: 0.9}, OWD: 0.01, QueuePkts: 60},
			flows: []FlowConfig{mk(1200), mk(600)},
			dur:   8,
			seed:  4,
		},
		{
			name:  "random-loss-stream",
			link:  LinkConfig{Capacity: trace.Constant(1500), OWD: 0.02, QueuePkts: 50, LossRate: 0.03},
			flows: []FlowConfig{mk(800), mk(800)},
			dur:   10,
			seed:  5,
		},
		{
			name: "packet-budget-completion",
			link: LinkConfig{Capacity: trace.Constant(1000), OWD: 0.02, QueuePkts: 40},
			flows: []FlowConfig{
				{Alg: &fixedRate{rate: 600}, PacketBudget: 1000},
				{Alg: &fixedRate{rate: 600}, PacketBudget: 2500},
			},
			dur:  12,
			seed: 6,
		},
		{
			name: "reactive-controllers-with-loss",
			link: LinkConfig{Capacity: trace.Constant(1200), OWD: 0.02, QueuePkts: 45, LossRate: 0.01},
			flows: []FlowConfig{
				{Alg: cc.NewCubic(), Seed: 11},
				{Alg: cc.NewBBR(), Start: 1, Seed: 12},
				{Alg: cc.NewVegas(), Start: 2, Stop: 18, Seed: 13},
			},
			dur:  25,
			seed: 7,
		},
		{
			name:  "random-walk-generic-trace",
			link:  LinkConfig{Capacity: trace.NewRandomWalk(400, 1600, 0.5, 10, 9), OWD: 0.02, QueuePkts: 50},
			flows: []FlowConfig{mk(900), {Alg: cc.NewCubic(), Seed: 14}},
			dur:   10,
			seed:  8,
		},
		{
			// Piecewise-levels replay trace (the Mahimahi in-memory form)
			// with wraparound mid-run: the fast engine samples it through
			// the cached Sampler fast path, the reference through the
			// interface — both must agree bit-for-bit.
			name: "levels-replay-trace",
			link: LinkConfig{
				Capacity:  trace.MustLevels([]float64{0, 0.7, 1.5, 2.2, 3.0}, []float64{1200, 400, 1600, 250, 900}, 3.5),
				OWD:       0.02,
				QueuePkts: 55,
			},
			flows: []FlowConfig{mk(850), {Alg: cc.NewBBR(), Start: 1, Seed: 21}},
			dur:   11,
			seed:  9,
		},
	}
}

// runBoth executes a scenario on the production and reference engines.
func runBoth(sc scenario) (fast, ref []*Flow) {
	n := NewNetwork(sc.link, sc.seed)
	r := NewReferenceNetwork(sc.link, sc.seed)
	for _, fc := range sc.flows {
		n.AddFlow(fc)
		r.AddFlow(fc)
	}
	n.Run(sc.dur)
	r.Run(sc.dur)
	return n.Flows, r.Flows
}

// TestEngineEquivalence is the exactness proof obligation of the
// packet-train rewrite: on every scenario the batched engine must reproduce
// the per-packet reference engine bit-for-bit — totals, completion state,
// accumulated RTT, and the entire per-MI statistics series.
func TestEngineEquivalence(t *testing.T) {
	for _, sc := range equivalenceScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			fast, ref := runBoth(sc)
			for i := range ref {
				f, r := fast[i], ref[i]
				if f.SentTotal != r.SentTotal || f.DeliveredTotal != r.DeliveredTotal || f.LostTotal != r.LostTotal {
					t.Errorf("flow %d totals: fast sent/del/lost %d/%d/%d, ref %d/%d/%d",
						i, f.SentTotal, f.DeliveredTotal, f.LostTotal,
						r.SentTotal, r.DeliveredTotal, r.LostTotal)
				}
				if f.Completed != r.Completed || f.CompletionTime != r.CompletionTime {
					t.Errorf("flow %d completion: fast %v@%v, ref %v@%v",
						i, f.Completed, f.CompletionTime, r.Completed, r.CompletionTime)
				}
				if f.SumRTT != r.SumRTT {
					t.Errorf("flow %d SumRTT: fast %v, ref %v", i, f.SumRTT, r.SumRTT)
				}
				if len(f.Stats) != len(r.Stats) {
					t.Fatalf("flow %d: %d MIs fast vs %d ref", i, len(f.Stats), len(r.Stats))
				}
				for mi := range r.Stats {
					if f.Stats[mi] != r.Stats[mi] {
						t.Fatalf("flow %d MI %d differs:\nfast %+v\nref  %+v",
							i, mi, f.Stats[mi], r.Stats[mi])
					}
				}
			}
		})
	}
}

// TestEngineEquivalenceDeliveryOrder checks that OnDeliver callbacks fire at
// identical times in identical per-flow order on both engines.
func TestEngineEquivalenceDeliveryOrder(t *testing.T) {
	sc := equivalenceScenarios()[1] // two-flow overload
	collect := func(mkNet func() interface {
		AddFlow(FlowConfig) *Flow
		Run(float64)
	}) [][]float64 {
		n := mkNet()
		out := make([][]float64, len(sc.flows))
		for i, fc := range sc.flows {
			f := n.AddFlow(fc)
			idx := i
			f.OnDeliver = func(ts float64) { out[idx] = append(out[idx], ts) }
		}
		n.Run(sc.dur)
		return out
	}
	fast := collect(func() interface {
		AddFlow(FlowConfig) *Flow
		Run(float64)
	} {
		return NewNetwork(sc.link, sc.seed)
	})
	ref := collect(func() interface {
		AddFlow(FlowConfig) *Flow
		Run(float64)
	} {
		return NewReferenceNetwork(sc.link, sc.seed)
	})
	for i := range ref {
		if len(fast[i]) != len(ref[i]) {
			t.Fatalf("flow %d: %d deliveries fast vs %d ref", i, len(fast[i]), len(ref[i]))
		}
		for j := range ref[i] {
			if fast[i][j] != ref[i][j] {
				t.Fatalf("flow %d delivery %d: fast t=%v, ref t=%v", i, j, fast[i][j], ref[i][j])
			}
		}
	}
}

// TestEngineSteadyStateAllocFree pins the per-packet allocation budget: a
// ~180k-packet run may allocate only setup-scale memory (RNG, flow structs,
// pre-sized stats, ring and heap growth) — about one allocation per ten
// thousand packets, i.e. zero per packet.
func TestEngineSteadyStateAllocFree(t *testing.T) {
	allocs := testing.AllocsPerRun(3, func() {
		n := NewNetwork(benchLink50(), 1)
		n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 2500}})
		n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 2500}})
		n.Run(benchDuration)
		if n.Flows[0].SentTotal < 40000 {
			t.Fatalf("run too short: %d packets", n.Flows[0].SentTotal)
		}
	})
	if allocs > 100 {
		t.Errorf("steady-state run allocated %v times for ~180k packets, want setup-only (<= 100)", allocs)
	}
}

// TestEventQueueOrdering drives the inline 4-ary heap with shuffled event
// populations and checks it drains in eventBefore order.
func TestEventQueueOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var q eventQueue
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			q.push(event{
				time:   float64(rng.Intn(20)) / 4,
				kind:   int32(rng.Intn(5)),
				flowID: int32(rng.Intn(4)),
			})
		}
		prev := q.pop()
		for q.len() > 0 {
			next := q.pop()
			if eventBefore(next, prev) {
				t.Fatalf("trial %d: heap emitted %+v after %+v", trial, next, prev)
			}
			prev = next
		}
	}
}

// TestDeliveryRingFIFO checks FIFO order and reuse across growth.
func TestDeliveryRingFIFO(t *testing.T) {
	var r deliveryRing
	f := &Flow{}
	next := 0.0
	popped := 0.0
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 10000; step++ {
		if r.len() == 0 || rng.Float64() < 0.6 {
			r.push(delivery{t: next, flow: f})
			next++
		} else {
			d := r.pop()
			if d.t != popped {
				t.Fatalf("step %d: popped t=%v, want %v", step, d.t, popped)
			}
			popped++
		}
	}
	for r.len() > 0 {
		if d := r.pop(); d.t != popped {
			t.Fatalf("drain: popped t=%v, want %v", d.t, popped)
		} else {
			popped++
		}
	}
	if popped != next {
		t.Fatalf("popped %v of %v pushed", popped, next)
	}
}

// TestReferenceEngineMatchesSeedBehaviour spot-checks the reference engine
// against the seed's documented invariants so it remains a trustworthy
// baseline (underload delivery counts and RTTs, conservation).
func TestReferenceEngineMatchesSeedBehaviour(t *testing.T) {
	n := NewReferenceNetwork(LinkConfig{Capacity: trace.Constant(1000), OWD: 0.02, QueuePkts: 40}, 1)
	f := n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 500}})
	n.Run(10)
	if f.LostTotal != 0 {
		t.Errorf("losses on an underloaded link: %d", f.LostTotal)
	}
	if f.DeliveredTotal < 4800 || f.DeliveredTotal > 5100 {
		t.Errorf("delivered %d, want ~5000", f.DeliveredTotal)
	}
	avgRTT := f.SumRTT / float64(f.DeliveredTotal)
	if avgRTT < 0.040 || avgRTT > 0.045 {
		t.Errorf("avg RTT %v, want ~0.041", avgRTT)
	}
	if f.SentTotal != f.DeliveredTotal+f.LostTotal+f.InFlight() {
		t.Error("conservation violated")
	}
	if f.InFlight() < 0 || math.IsNaN(f.SumRTT) {
		t.Error("implausible flow state")
	}
}
