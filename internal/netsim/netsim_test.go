package netsim

import (
	"math"
	"testing"

	"mocc/internal/cc"
	"mocc/internal/trace"
)

// fixedRate is a trivial Algorithm that always requests the same rate.
type fixedRate struct {
	rate float64
	name string
}

func (f *fixedRate) Name() string {
	if f.name == "" {
		return "fixed"
	}
	return f.name
}
func (f *fixedRate) Reset(int64)                 {}
func (f *fixedRate) InitialRate(float64) float64 { return f.rate }
func (f *fixedRate) Update(cc.Report) float64    { return f.rate }

// link12 is a 1000 pkts/s, 20 ms OWD bottleneck with a 1xBDP buffer.
func link12() LinkConfig {
	return LinkConfig{
		Capacity:  trace.Constant(1000),
		OWD:       0.020,
		QueuePkts: 40,
	}
}

func TestNewNetworkPanicsWithoutCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewNetwork(LinkConfig{}, 1)
}

func TestAddFlowPanicsWithoutAlg(t *testing.T) {
	n := NewNetwork(link12(), 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n.AddFlow(FlowConfig{})
}

func TestBDP(t *testing.T) {
	if got := link12().BDP(); math.Abs(got-40) > 1e-9 {
		t.Errorf("BDP = %v, want 40", got)
	}
}

func TestSingleFlowUnderload(t *testing.T) {
	n := NewNetwork(link12(), 1)
	f := n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 500}})
	n.Run(10)

	if f.LostTotal != 0 {
		t.Errorf("losses on an underloaded link: %d", f.LostTotal)
	}
	// ~500 pkts/s for 10 s.
	if f.DeliveredTotal < 4800 || f.DeliveredTotal > 5100 {
		t.Errorf("delivered %d, want ~5000", f.DeliveredTotal)
	}
	// RTT should be close to the base RTT (40 ms) plus one service time.
	avgRTT := f.SumRTT / float64(f.DeliveredTotal)
	if avgRTT < 0.040 || avgRTT > 0.045 {
		t.Errorf("avg RTT %v, want ~0.041", avgRTT)
	}
}

func TestConservationInvariant(t *testing.T) {
	n := NewNetwork(link12(), 2)
	f1 := n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 900}})
	f2 := n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 900}})
	n.Run(10)
	for _, f := range []*Flow{f1, f2} {
		if f.InFlight() < 0 {
			t.Errorf("%v: negative in-flight %d", f, f.InFlight())
		}
		// In-flight at the end is at most queue + one BDP worth.
		if f.InFlight() > n.Link.QueuePkts+int(n.Link.BDP())+10 {
			t.Errorf("%v: implausible in-flight %d", f, f.InFlight())
		}
		if f.SentTotal != f.DeliveredTotal+f.LostTotal+f.InFlight() {
			t.Errorf("%v: conservation violated", f)
		}
	}
}

func TestOverloadCausesDropsAndQueueing(t *testing.T) {
	n := NewNetwork(link12(), 3)
	f := n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 2000}})
	n.Run(5)
	if f.LostTotal == 0 {
		t.Error("2x overload produced no drops")
	}
	// Delivered rate is capped by capacity.
	rate := float64(f.DeliveredTotal) / 5
	if rate > 1050 {
		t.Errorf("delivered rate %v exceeds capacity", rate)
	}
	// Sustained overload keeps the queue full: RTT near base + Q/C.
	late := f.Stats[len(f.Stats)-1]
	wantRTT := 0.040 + 40.0/1000
	if math.Abs(late.AvgRTT-wantRTT) > 0.01 {
		t.Errorf("late RTT %v, want ~%v (full queue)", late.AvgRTT, wantRTT)
	}
}

func TestRandomLossRateObserved(t *testing.T) {
	link := link12()
	link.LossRate = 0.05
	n := NewNetwork(link, 4)
	f := n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 500}})
	n.Run(20)
	got := float64(f.LostTotal) / float64(f.SentTotal)
	if math.Abs(got-0.05) > 0.015 {
		t.Errorf("observed loss %v, want ~0.05", got)
	}
}

func TestTwoEqualFlowsShareFairly(t *testing.T) {
	n := NewNetwork(link12(), 5)
	f1 := n.AddFlow(FlowConfig{Alg: cc.NewCubic(), Label: "a"})
	f2 := n.AddFlow(FlowConfig{Alg: cc.NewCubic(), Label: "b"})
	n.Run(60)
	t1 := f1.AvgThroughput(30, 60)
	t2 := f2.AvgThroughput(30, 60)
	sum := t1 + t2
	if sum < 700 {
		t.Fatalf("two cubics only achieved %v pkts/s total", sum)
	}
	ratio := t1 / t2
	if ratio < 0.55 || ratio > 1.8 {
		t.Errorf("unfair split: %v vs %v (ratio %v)", t1, t2, ratio)
	}
}

func TestStaggeredStartStop(t *testing.T) {
	n := NewNetwork(link12(), 6)
	f := n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 500}, Start: 2, Stop: 4})
	n.Run(6)
	// Roughly 2 seconds of sending at 500 pkts/s.
	if f.SentTotal < 900 || f.SentTotal > 1100 {
		t.Errorf("sent %d, want ~1000", f.SentTotal)
	}
	// No MI stats before start.
	if len(f.Stats) > 0 && f.Stats[0].Time < 2 {
		t.Errorf("first MI at %v, before flow start", f.Stats[0].Time)
	}
}

func TestPacketBudgetCompletion(t *testing.T) {
	n := NewNetwork(link12(), 7)
	f := n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 500}, PacketBudget: 1000})
	n.Run(30)
	if !f.Completed {
		t.Fatal("flow never completed")
	}
	// 1000 packets at 500 pkts/s: ~2 s plus propagation.
	if f.CompletionTime < 1.9 || f.CompletionTime > 3 {
		t.Errorf("completion time %v, want ~2s", f.CompletionTime)
	}
	// No further deliveries counted after completion beyond the budget+wire.
	if f.DeliveredTotal > 1100 {
		t.Errorf("delivered %d after budget 1000", f.DeliveredTotal)
	}
}

func TestOnDeliverCallback(t *testing.T) {
	n := NewNetwork(link12(), 8)
	f := n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 100}})
	var times []float64
	f.OnDeliver = func(ts float64) { times = append(times, ts) }
	n.Run(2)
	if len(times) != f.DeliveredTotal {
		t.Errorf("callback count %d != delivered %d", len(times), f.DeliveredTotal)
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatal("deliveries out of order")
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, int) {
		link := link12()
		link.LossRate = 0.02
		n := NewNetwork(link, 42)
		f1 := n.AddFlow(FlowConfig{Alg: cc.NewCubic()})
		f2 := n.AddFlow(FlowConfig{Alg: cc.NewBBR(), Start: 1})
		n.Run(15)
		return f1.DeliveredTotal, f2.DeliveredTotal
	}
	a1, a2 := run()
	b1, b2 := run()
	if a1 != b1 || a2 != b2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", a1, a2, b1, b2)
	}
}

func TestThroughputSeries(t *testing.T) {
	n := NewNetwork(link12(), 9)
	f := n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 500}})
	n.Run(10)
	series := f.ThroughputSeries(1, 10)
	if len(series) != 10 {
		t.Fatalf("series length %d, want 10", len(series))
	}
	// Middle buckets near 500 pkts/s.
	for i := 2; i < 9; i++ {
		if math.Abs(series[i]-500) > 60 {
			t.Errorf("bucket %d = %v, want ~500", i, series[i])
		}
	}
}

func TestWindowedAverages(t *testing.T) {
	n := NewNetwork(link12(), 10)
	f := n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 400}})
	n.Run(10)
	if thr := f.AvgThroughput(2, 8); math.Abs(thr-400) > 40 {
		t.Errorf("AvgThroughput = %v, want ~400", thr)
	}
	if rtt := f.AvgRTT(2, 8); rtt < 0.040 || rtt > 0.050 {
		t.Errorf("AvgRTT = %v, want ~0.041", rtt)
	}
	if lr := f.AvgLossRate(2, 8); lr != 0 {
		t.Errorf("AvgLossRate = %v, want 0", lr)
	}
	if thr := f.AvgThroughput(5, 5); thr != 0 {
		t.Errorf("degenerate window throughput = %v", thr)
	}
}

func TestVaryingCapacityTrace(t *testing.T) {
	link := link12()
	link.Capacity = trace.Step{Low: 500, High: 1500, Period: 2}
	n := NewNetwork(link, 11)
	f := n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 5000}})
	n.Run(8)
	// Average capacity is ~1000; delivered rate must track it, not the
	// offered 5000.
	rate := float64(f.DeliveredTotal) / 8
	if rate < 800 || rate > 1200 {
		t.Errorf("delivered rate %v, want ~1000 on alternating link", rate)
	}
}

func TestMOCCStyleRLFlowRuns(t *testing.T) {
	// An RLRate algorithm with a null policy must run end-to-end in the
	// packet simulator.
	n := NewNetwork(link12(), 12)
	alg := cc.NewRLRate("rl", cc.PolicyFunc(func([]float64) float64 { return 0.5 }), 10)
	f := n.AddFlow(FlowConfig{Alg: alg})
	n.Run(10)
	if f.DeliveredTotal == 0 {
		t.Error("RL flow delivered nothing")
	}
	for _, s := range f.Stats {
		if math.IsNaN(s.SendRate) || s.SendRate <= 0 {
			t.Fatalf("bad send rate %v", s.SendRate)
		}
	}
}

func TestQueueBacklogBounds(t *testing.T) {
	n := NewNetwork(link12(), 13)
	n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 3000}})
	// Track the maximum backlog during the run via MI stats.
	n.Run(5)
	for _, f := range n.Flows {
		for _, s := range f.Stats {
			if s.Queue < 0 || s.Queue > float64(n.Link.QueuePkts)+2 {
				t.Fatalf("backlog %v outside [0, %d]", s.Queue, n.Link.QueuePkts)
			}
		}
	}
}
