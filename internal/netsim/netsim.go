// Package netsim is a packet-level, event-driven network simulator: the
// repository's stand-in for the Pantheon emulation testbed the paper
// evaluates on (§6). Multiple flows, each driven by any cc.Algorithm, share
// a bottleneck link with a drop-tail queue, configurable propagation delay,
// capacity trace and random loss. It supports staggered flow start/stop
// times (fairness dynamics, Figure 11), heterogeneous schemes on one link
// (friendliness, Figures 13-15) and finite transfers (flow-completion time,
// Figure 10).
//
// The bottleneck is modeled as a FIFO fixed-rate server with a virtual
// queue: a packet arriving at time t departs at max(t, lastDeparture) +
// 1/capacity, and is dropped when the backlog (lastDeparture - t) * capacity
// exceeds the buffer. This is exact for drop-tail FIFO queues and avoids
// per-packet queue structures.
//
// Two engines share these types. Network is the production engine: a
// packet-train loop that drains whole pacing bursts and the global FIFO
// delivery stream between control points (flow start/stop and
// monitor-interval boundaries, held in a small inline 4-ary heap), paying
// zero heap operations and zero allocations per packet. ReferenceNetwork is
// the retained seed engine — one boxed heap event per packet transmission
// and delivery — kept as the ground truth the equivalence tests hold the
// fast engine to. Both engines order simultaneous events identically (see
// eventBefore) and produce identical statistics.
//
// The package is deliberately single-bottleneck: every flow crosses the one
// shared link, which is what makes the global-FIFO delivery ring and the
// packet-train drain exact (see deliveryRing). Multi-link topologies —
// named links, per-flow paths, parking-lot and incast fan-in — live in
// internal/topo, which reproduces this engine bit-for-bit in the one-link
// special case.
package netsim

import (
	"fmt"
	"math"

	"mocc/internal/cc"
	"mocc/internal/trace"
)

// LinkConfig describes the shared bottleneck.
type LinkConfig struct {
	// Capacity is the service rate schedule in packets/second.
	Capacity trace.Bandwidth
	// OWD is the one-way propagation delay in seconds (bottleneck to
	// receiver; the reverse path adds the same again).
	OWD float64
	// QueuePkts is the drop-tail buffer size in packets.
	QueuePkts int
	// LossRate is the random (non-congestive) loss probability.
	LossRate float64
}

// BDP returns the bandwidth-delay product in packets at time 0.
func (l LinkConfig) BDP() float64 {
	return l.Capacity.At(0) * 2 * l.OWD
}

// normalized applies the shared config defaults and validation.
func (l LinkConfig) normalized() LinkConfig {
	if l.Capacity == nil {
		panic("netsim: LinkConfig.Capacity is required")
	}
	if l.QueuePkts <= 0 {
		l.QueuePkts = 1000
	}
	return l
}

// FlowConfig describes one flow.
type FlowConfig struct {
	// Label names the flow in results (defaults to the algorithm name).
	Label string
	// Alg is the congestion controller driving the flow.
	Alg cc.Algorithm
	// Start and Stop bound the flow's active period in seconds
	// (Stop = 0 means run until the simulation ends).
	Start, Stop float64
	// MIms is the monitor-interval length in milliseconds (default: one
	// base RTT).
	MIms float64
	// PacketBudget ends the flow after this many delivered packets
	// (0 = unlimited); used for flow-completion-time experiments.
	PacketBudget int
	// MaxRate caps the pacing rate in packets/second; 0 selects 4x the
	// link capacity, the NIC-speed stand-in that also bounds the event
	// count when a controller misbehaves.
	MaxRate float64
	// Seed drives the algorithm's internal randomness.
	Seed int64
}

// MIStat is one monitor interval of one flow.
type MIStat struct {
	Time       float64 // MI end time (s)
	SendRate   float64 // configured rate during the MI (pkts/s)
	Throughput float64 // delivered rate (pkts/s)
	AvgRTT     float64 // mean RTT of packets delivered in the MI (s)
	LossRate   float64 // lost/sent within the MI
	Sent       float64
	Delivered  float64
	Lost       float64
	Queue      float64 // bottleneck backlog at MI end (pkts)
}

// Flow is one sender-receiver pair. Result fields are valid after Run.
type Flow struct {
	ID    int
	Label string
	Cfg   FlowConfig

	// Stats holds one entry per completed monitor interval.
	Stats []MIStat
	// Totals over the whole run.
	SentTotal, DeliveredTotal, LostTotal int
	// Completed / CompletionTime report PacketBudget termination.
	Completed      bool
	CompletionTime float64
	// RTT of every delivered packet is aggregated here.
	SumRTT float64

	// OnDeliver, when set, is invoked at each packet delivery with the
	// delivery time (used for inter-packet delay measurements, Figure 9).
	OnDeliver func(t float64)

	rate     float64
	active   bool
	stopped  bool
	minRTT   float64
	nextSend float64 // production-engine pacing cursor

	// per-MI accumulators
	miSent, miDelivered, miLost int
	miRTTSum                    float64
	miStart                     float64
}

// newFlow applies the FlowConfig defaults shared by both engines.
func newFlow(link LinkConfig, id int, cfg FlowConfig) *Flow {
	if cfg.Alg == nil {
		panic("netsim: FlowConfig.Alg is required")
	}
	if cfg.MIms <= 0 {
		cfg.MIms = math.Max(10, 2*link.OWD*1000)
	}
	if cfg.MaxRate <= 0 {
		cfg.MaxRate = 4 * link.Capacity.At(0)
	}
	label := cfg.Label
	if label == "" {
		label = cfg.Alg.Name()
	}
	return &Flow{
		ID:     id,
		Label:  label,
		Cfg:    cfg,
		minRTT: math.Inf(1),
	}
}

// startRun resets the flow's runtime state for a fresh Run and pre-sizes the
// per-MI statistics for the run horizon so steady-state appends never grow
// the backing array.
func (f *Flow) startRun(baseRTT, duration float64) {
	f.Cfg.Alg.Reset(f.Cfg.Seed)
	f.rate = math.Min(f.Cfg.Alg.InitialRate(baseRTT), f.Cfg.MaxRate)
	if mis := duration / (f.Cfg.MIms / 1000); mis > 0 && mis < 1<<20 {
		f.Stats = make([]MIStat, 0, int(mis)+2)
	}
}

// deliver records one packet arrival at the receiver at time now.
func (f *Flow) deliver(now, sendTime, owd float64) {
	f.DeliveredTotal++
	f.miDelivered++
	rtt := (now - sendTime) + owd // forward path so far + return path
	f.miRTTSum += rtt
	f.SumRTT += rtt
	if rtt < f.minRTT {
		f.minRTT = rtt
	}
	if f.OnDeliver != nil {
		f.OnDeliver(now)
	}
	if f.Cfg.PacketBudget > 0 && f.DeliveredTotal >= f.Cfg.PacketBudget && !f.Completed {
		f.Completed = true
		f.CompletionTime = now
		f.active = false
	}
}

// closeMI closes one monitor interval at time now: it records the interval's
// stats (backlog is the bottleneck queue at now), consults the algorithm for
// the next rate, and resets the accumulators. It returns false when the flow
// no longer monitors (stopped, or completed its packet budget), in which
// case the caller must not schedule another interval.
func (f *Flow) closeMI(now, backlog, owd float64) bool {
	if f.stopped || (f.Completed && !f.active) {
		return false
	}
	d := now - f.miStart
	if d <= 0 {
		d = f.Cfg.MIms / 1000
	}
	sent := float64(f.miSent)
	delivered := float64(f.miDelivered)
	lost := float64(f.miLost)
	avgRTT := 0.0
	if f.miDelivered > 0 {
		avgRTT = f.miRTTSum / delivered
	} else if !math.IsInf(f.minRTT, 1) {
		avgRTT = f.minRTT
	} else {
		avgRTT = 2 * owd
	}
	lossRate := 0.0
	if sent > 0 {
		lossRate = lost / sent
	}
	minRTT := f.minRTT
	if math.IsInf(minRTT, 1) {
		minRTT = 2 * owd
	}

	stat := MIStat{
		Time:       now,
		SendRate:   f.rate,
		Throughput: delivered / d,
		AvgRTT:     avgRTT,
		LossRate:   lossRate,
		Sent:       sent,
		Delivered:  delivered,
		Lost:       lost,
		Queue:      backlog,
	}
	f.Stats = append(f.Stats, stat)

	report := cc.Report{
		Duration:   d,
		Sent:       sent,
		Delivered:  delivered,
		Lost:       lost,
		SendRate:   f.rate,
		Throughput: stat.Throughput,
		AvgRTT:     avgRTT,
		MinRTT:     minRTT,
		LossRate:   lossRate,
	}
	f.rate = f.Cfg.Alg.Update(report)
	if math.IsNaN(f.rate) || f.rate <= 0 {
		f.rate = 0.5
	}
	if f.rate > f.Cfg.MaxRate {
		f.rate = f.Cfg.MaxRate
	}

	f.miSent, f.miDelivered, f.miLost = 0, 0, 0
	f.miRTTSum = 0
	f.miStart = now
	return true
}

// InFlight returns the packets still unaccounted for at the end of the run
// (sent but neither delivered nor lost) for flow f: packets in the queue or
// on the wire when the simulation stopped.
func (f *Flow) InFlight() int {
	return f.SentTotal - f.DeliveredTotal - f.LostTotal
}

// AvgThroughput returns the mean delivered rate (pkts/s) over [from, to].
func (f *Flow) AvgThroughput(from, to float64) float64 {
	var delivered float64
	for _, s := range f.Stats {
		if s.Time >= from && s.Time <= to {
			delivered += s.Delivered
		}
	}
	if to <= from {
		return 0
	}
	return delivered / (to - from)
}

// AvgRTT returns the delivery-weighted mean RTT over [from, to].
func (f *Flow) AvgRTT(from, to float64) float64 {
	var sum, count float64
	for _, s := range f.Stats {
		if s.Time >= from && s.Time <= to && s.Delivered > 0 {
			sum += s.AvgRTT * s.Delivered
			count += s.Delivered
		}
	}
	if count == 0 {
		return 0
	}
	return sum / count
}

// AvgLossRate returns total lost / total sent over [from, to].
func (f *Flow) AvgLossRate(from, to float64) float64 {
	var lost, sent float64
	for _, s := range f.Stats {
		if s.Time >= from && s.Time <= to {
			lost += s.Lost
			sent += s.Sent
		}
	}
	if sent == 0 {
		return 0
	}
	return lost / sent
}

// ThroughputSeries returns per-bucket delivered rates (pkts/s) with the
// given bucket width in seconds over [0, horizon] — the Figure 11 series.
func (f *Flow) ThroughputSeries(bucket, horizon float64) []float64 {
	nB := int(math.Ceil(horizon / bucket))
	out := make([]float64, nB)
	for _, s := range f.Stats {
		idx := int(s.Time / bucket)
		if idx >= 0 && idx < nB {
			out[idx] += s.Delivered
		}
	}
	for i := range out {
		out[i] /= bucket
	}
	return out
}

// String implements fmt.Stringer.
func (f *Flow) String() string {
	return fmt.Sprintf("flow %d (%s): sent=%d delivered=%d lost=%d",
		f.ID, f.Label, f.SentTotal, f.DeliveredTotal, f.LostTotal)
}
