// Package netsim is a packet-level, event-driven network simulator: the
// repository's stand-in for the Pantheon emulation testbed the paper
// evaluates on (§6). Multiple flows, each driven by any cc.Algorithm, share
// a bottleneck link with a drop-tail queue, configurable propagation delay,
// capacity trace and random loss. It supports staggered flow start/stop
// times (fairness dynamics, Figure 11), heterogeneous schemes on one link
// (friendliness, Figures 13-15) and finite transfers (flow-completion time,
// Figure 10).
//
// The bottleneck is modeled as a FIFO fixed-rate server with a virtual
// queue: a packet arriving at time t departs at max(t, lastDeparture) +
// 1/capacity, and is dropped when the backlog (lastDeparture - t) * capacity
// exceeds the buffer. This is exact for drop-tail FIFO queues and avoids
// per-packet queue structures.
package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"mocc/internal/cc"
	"mocc/internal/trace"
)

// LinkConfig describes the shared bottleneck.
type LinkConfig struct {
	// Capacity is the service rate schedule in packets/second.
	Capacity trace.Bandwidth
	// OWD is the one-way propagation delay in seconds (bottleneck to
	// receiver; the reverse path adds the same again).
	OWD float64
	// QueuePkts is the drop-tail buffer size in packets.
	QueuePkts int
	// LossRate is the random (non-congestive) loss probability.
	LossRate float64
}

// BDP returns the bandwidth-delay product in packets at time 0.
func (l LinkConfig) BDP() float64 {
	return l.Capacity.At(0) * 2 * l.OWD
}

// FlowConfig describes one flow.
type FlowConfig struct {
	// Label names the flow in results (defaults to the algorithm name).
	Label string
	// Alg is the congestion controller driving the flow.
	Alg cc.Algorithm
	// Start and Stop bound the flow's active period in seconds
	// (Stop = 0 means run until the simulation ends).
	Start, Stop float64
	// MIms is the monitor-interval length in milliseconds (default: one
	// base RTT).
	MIms float64
	// PacketBudget ends the flow after this many delivered packets
	// (0 = unlimited); used for flow-completion-time experiments.
	PacketBudget int
	// MaxRate caps the pacing rate in packets/second; 0 selects 4x the
	// link capacity, the NIC-speed stand-in that also bounds the event
	// count when a controller misbehaves.
	MaxRate float64
	// Seed drives the algorithm's internal randomness.
	Seed int64
}

// MIStat is one monitor interval of one flow.
type MIStat struct {
	Time       float64 // MI end time (s)
	SendRate   float64 // configured rate during the MI (pkts/s)
	Throughput float64 // delivered rate (pkts/s)
	AvgRTT     float64 // mean RTT of packets delivered in the MI (s)
	LossRate   float64 // lost/sent within the MI
	Sent       float64
	Delivered  float64
	Lost       float64
	Queue      float64 // bottleneck backlog at MI end (pkts)
}

// Flow is one sender-receiver pair. Result fields are valid after Run.
type Flow struct {
	ID    int
	Label string
	Cfg   FlowConfig

	// Stats holds one entry per completed monitor interval.
	Stats []MIStat
	// Totals over the whole run.
	SentTotal, DeliveredTotal, LostTotal int
	// Completed / CompletionTime report PacketBudget termination.
	Completed      bool
	CompletionTime float64
	// RTT of every delivered packet is aggregated here.
	SumRTT float64

	// OnDeliver, when set, is invoked at each packet delivery with the
	// delivery time (used for inter-packet delay measurements, Figure 9).
	OnDeliver func(t float64)

	rate    float64
	active  bool
	stopped bool
	minRTT  float64

	// per-MI accumulators
	miSent, miDelivered, miLost int
	miRTTSum                    float64
	miStart                     float64
}

// event kinds.
const (
	evSend = iota
	evDeliver
	evMI
	evStart
	evStop
)

// event is one scheduled simulator action.
type event struct {
	time float64
	seq  int64 // tiebreaker for deterministic ordering
	kind int
	flow *Flow
	// deliver payload
	sendTime float64
}

// eventHeap orders events by (time, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() (event, bool) {
	if len(h) == 0 {
		return event{}, false
	}
	return h[0], true
}

// Network is one simulation instance. Not safe for concurrent use.
type Network struct {
	Link  LinkConfig
	Flows []*Flow

	events  eventHeap
	seq     int64
	now     float64
	rng     *rand.Rand
	lastDep float64 // bottleneck virtual-queue horizon
}

// NewNetwork creates a simulator for the given bottleneck. seed drives the
// random-loss process.
func NewNetwork(link LinkConfig, seed int64) *Network {
	if link.Capacity == nil {
		panic("netsim: LinkConfig.Capacity is required")
	}
	if link.QueuePkts <= 0 {
		link.QueuePkts = 1000
	}
	return &Network{
		Link: link,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// AddFlow registers a flow; call before Run.
func (n *Network) AddFlow(cfg FlowConfig) *Flow {
	if cfg.Alg == nil {
		panic("netsim: FlowConfig.Alg is required")
	}
	if cfg.MIms <= 0 {
		cfg.MIms = math.Max(10, 2*n.Link.OWD*1000)
	}
	if cfg.MaxRate <= 0 {
		cfg.MaxRate = 4 * n.Link.Capacity.At(0)
	}
	label := cfg.Label
	if label == "" {
		label = cfg.Alg.Name()
	}
	f := &Flow{
		ID:     len(n.Flows),
		Label:  label,
		Cfg:    cfg,
		minRTT: math.Inf(1),
	}
	n.Flows = append(n.Flows, f)
	return f
}

// schedule pushes an event.
func (n *Network) schedule(t float64, kind int, f *Flow, sendTime float64) {
	n.seq++
	heap.Push(&n.events, event{time: t, seq: n.seq, kind: kind, flow: f, sendTime: sendTime})
}

// Now returns the current simulation time.
func (n *Network) Now() float64 { return n.now }

// QueueBacklog returns the bottleneck backlog in packets at time t.
func (n *Network) QueueBacklog(t float64) float64 {
	backlog := (n.lastDep - t) * n.Link.Capacity.At(t)
	if backlog < 0 {
		return 0
	}
	return backlog
}

// Run executes the simulation until the given duration (seconds). It may be
// called once per Network.
func (n *Network) Run(duration float64) {
	baseRTT := 2 * n.Link.OWD
	for _, f := range n.Flows {
		f.Cfg.Alg.Reset(f.Cfg.Seed)
		f.rate = math.Min(f.Cfg.Alg.InitialRate(baseRTT), f.Cfg.MaxRate)
		n.schedule(f.Cfg.Start, evStart, f, 0)
		if f.Cfg.Stop > f.Cfg.Start {
			n.schedule(f.Cfg.Stop, evStop, f, 0)
		}
	}

	for n.events.Len() > 0 {
		e := heap.Pop(&n.events).(event)
		if e.time > duration {
			break
		}
		n.now = e.time
		switch e.kind {
		case evStart:
			f := e.flow
			f.active = true
			f.miStart = n.now
			n.schedule(n.now, evSend, f, 0)
			n.schedule(n.now+f.Cfg.MIms/1000, evMI, f, 0)
		case evStop:
			e.flow.active = false
			e.flow.stopped = true
		case evSend:
			n.handleSend(e.flow)
		case evDeliver:
			n.handleDeliver(e.flow, e.sendTime)
		case evMI:
			n.handleMI(e.flow)
		}
	}
	n.now = duration
}

// handleSend transmits one packet into the bottleneck and schedules the
// next transmission at the current pacing rate.
func (n *Network) handleSend(f *Flow) {
	if !f.active {
		return
	}
	f.SentTotal++
	f.miSent++

	capNow := math.Max(n.Link.Capacity.At(n.now), 0.1)
	if n.rng.Float64() < n.Link.LossRate {
		// Random (non-congestive) loss.
		f.LostTotal++
		f.miLost++
	} else if n.QueueBacklog(n.now) >= float64(n.Link.QueuePkts) {
		// Drop-tail: buffer full.
		f.LostTotal++
		f.miLost++
	} else {
		dep := math.Max(n.now, n.lastDep) + 1/capNow
		n.lastDep = dep
		n.schedule(dep+n.Link.OWD, evDeliver, f, n.now)
	}

	next := n.now + 1/math.Max(f.rate, 0.1)
	n.schedule(next, evSend, f, 0)
}

// handleDeliver records a packet arrival at the receiver.
func (n *Network) handleDeliver(f *Flow, sendTime float64) {
	f.DeliveredTotal++
	f.miDelivered++
	rtt := (n.now - sendTime) + n.Link.OWD // forward path so far + return path
	f.miRTTSum += rtt
	f.SumRTT += rtt
	if rtt < f.minRTT {
		f.minRTT = rtt
	}
	if f.OnDeliver != nil {
		f.OnDeliver(n.now)
	}
	if f.Cfg.PacketBudget > 0 && f.DeliveredTotal >= f.Cfg.PacketBudget && !f.Completed {
		f.Completed = true
		f.CompletionTime = n.now
		f.active = false
	}
}

// handleMI closes one monitor interval: records stats, consults the
// algorithm for the next rate, and schedules the next MI.
func (n *Network) handleMI(f *Flow) {
	if f.stopped || (f.Completed && !f.active) {
		return
	}
	d := n.now - f.miStart
	if d <= 0 {
		d = f.Cfg.MIms / 1000
	}
	sent := float64(f.miSent)
	delivered := float64(f.miDelivered)
	lost := float64(f.miLost)
	avgRTT := 0.0
	if f.miDelivered > 0 {
		avgRTT = f.miRTTSum / delivered
	} else if !math.IsInf(f.minRTT, 1) {
		avgRTT = f.minRTT
	} else {
		avgRTT = 2 * n.Link.OWD
	}
	lossRate := 0.0
	if sent > 0 {
		lossRate = lost / sent
	}
	minRTT := f.minRTT
	if math.IsInf(minRTT, 1) {
		minRTT = 2 * n.Link.OWD
	}

	stat := MIStat{
		Time:       n.now,
		SendRate:   f.rate,
		Throughput: delivered / d,
		AvgRTT:     avgRTT,
		LossRate:   lossRate,
		Sent:       sent,
		Delivered:  delivered,
		Lost:       lost,
		Queue:      n.QueueBacklog(n.now),
	}
	f.Stats = append(f.Stats, stat)

	report := cc.Report{
		Duration:   d,
		Sent:       sent,
		Delivered:  delivered,
		Lost:       lost,
		SendRate:   f.rate,
		Throughput: stat.Throughput,
		AvgRTT:     avgRTT,
		MinRTT:     minRTT,
		LossRate:   lossRate,
	}
	f.rate = f.Cfg.Alg.Update(report)
	if math.IsNaN(f.rate) || f.rate <= 0 {
		f.rate = 0.5
	}
	if f.rate > f.Cfg.MaxRate {
		f.rate = f.Cfg.MaxRate
	}

	f.miSent, f.miDelivered, f.miLost = 0, 0, 0
	f.miRTTSum = 0
	f.miStart = n.now
	n.schedule(n.now+f.Cfg.MIms/1000, evMI, f, 0)
}

// InFlight returns the packets still unaccounted for at the end of the run
// (sent but neither delivered nor lost) for flow f: packets in the queue or
// on the wire when the simulation stopped.
func (f *Flow) InFlight() int {
	return f.SentTotal - f.DeliveredTotal - f.LostTotal
}

// AvgThroughput returns the mean delivered rate (pkts/s) over [from, to].
func (f *Flow) AvgThroughput(from, to float64) float64 {
	var delivered float64
	for _, s := range f.Stats {
		if s.Time >= from && s.Time <= to {
			delivered += s.Delivered
		}
	}
	if to <= from {
		return 0
	}
	return delivered / (to - from)
}

// AvgRTT returns the delivery-weighted mean RTT over [from, to].
func (f *Flow) AvgRTT(from, to float64) float64 {
	var sum, count float64
	for _, s := range f.Stats {
		if s.Time >= from && s.Time <= to && s.Delivered > 0 {
			sum += s.AvgRTT * s.Delivered
			count += s.Delivered
		}
	}
	if count == 0 {
		return 0
	}
	return sum / count
}

// AvgLossRate returns total lost / total sent over [from, to].
func (f *Flow) AvgLossRate(from, to float64) float64 {
	var lost, sent float64
	for _, s := range f.Stats {
		if s.Time >= from && s.Time <= to {
			lost += s.Lost
			sent += s.Sent
		}
	}
	if sent == 0 {
		return 0
	}
	return lost / sent
}

// ThroughputSeries returns per-bucket delivered rates (pkts/s) with the
// given bucket width in seconds over [0, horizon] — the Figure 11 series.
func (f *Flow) ThroughputSeries(bucket, horizon float64) []float64 {
	nB := int(math.Ceil(horizon / bucket))
	out := make([]float64, nB)
	for _, s := range f.Stats {
		idx := int(s.Time / bucket)
		if idx >= 0 && idx < nB {
			out[idx] += s.Delivered
		}
	}
	for i := range out {
		out[i] /= bucket
	}
	return out
}

// String implements fmt.Stringer.
func (f *Flow) String() string {
	return fmt.Sprintf("flow %d (%s): sent=%d delivered=%d lost=%d",
		f.ID, f.Label, f.SentTotal, f.DeliveredTotal, f.LostTotal)
}
