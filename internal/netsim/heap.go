package netsim

// Event kinds, in same-timestamp priority order: control transitions first
// (a flow stopping at t never transmits at t), then monitor-interval
// close-outs (a packet event at exactly the boundary belongs to the next
// interval), then deliveries, then transmissions. Both engines rank
// simultaneous events with this order, which — together with the flow-ID
// tiebreak — makes the schedule a total order and the simulation exactly
// reproducible across engines.
const (
	evStart int32 = iota
	evStop
	evMI
	evDeliver
	evSend
)

// event is one scheduled simulator action.
type event struct {
	time     float64
	kind     int32
	flowID   int32
	flow     *Flow
	sendTime float64 // deliver payload: when the packet entered the network
}

// eventBefore is the canonical schedule order: time, then kind priority,
// then flow ID. Within one (time, kind, flow) cell at most one live event
// exists in either engine (a flow has one pending send, one pending
// monitor-interval boundary, and strictly increasing delivery times), so
// the order is total.
func eventBefore(a, b event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.flowID < b.flowID
}

// eventQueue is an inline 4-ary min-heap of event values ordered by
// eventBefore. Push and pop move plain structs — no interface boxing, no
// allocation beyond the amortized slice growth. The 4-ary layout halves the
// tree depth of a binary heap, trading cheap comparisons for the expensive
// cache misses of pointer-chasing deep sift paths.
type eventQueue struct {
	ev []event
}

// len returns the number of pending events.
func (q *eventQueue) len() int { return len(q.ev) }

// peek returns the minimum event; the queue must be non-empty.
func (q *eventQueue) peek() event { return q.ev[0] }

// push inserts e.
func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventBefore(q.ev[i], q.ev[p]) {
			break
		}
		q.ev[i], q.ev[p] = q.ev[p], q.ev[i]
		i = p
	}
}

// pop removes and returns the minimum event; the queue must be non-empty.
func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	q.ev[0] = q.ev[n]
	q.ev[n] = event{} // drop the Flow pointer for the garbage collector
	q.ev = q.ev[:n]
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventBefore(q.ev[c], q.ev[min]) {
				min = c
			}
		}
		if !eventBefore(q.ev[min], q.ev[i]) {
			break
		}
		q.ev[i], q.ev[min] = q.ev[min], q.ev[i]
		i = min
	}
	return top
}

// delivery is one in-flight packet: it left the bottleneck queue and arrives
// at the receiver at time t.
type delivery struct {
	t        float64
	sendTime float64
	flow     *Flow
}

// deliveryRing is a growable FIFO of in-flight packets. Departure times are
// strictly increasing at a shared FIFO bottleneck and every packet adds the
// same propagation delay, so deliveries across all flows form a single
// global FIFO — one ring buffer replaces the seed engine's
// one-heap-event-per-packet delivery design. The ring doubles up to the
// peak in-flight population and is reused thereafter: zero steady-state
// allocations.
//
// Contract: this is exactly the package's single-bottleneck assumption.
// Push order equals delivery order only because every packet is serialized
// through ONE fixed-rate server and then adds ONE shared propagation delay;
// with per-flow paths over multiple links, deliveries interleave and the
// ring would reorder them. Multi-link simulation therefore lives in
// internal/topo (per-link event queues), not here.
type deliveryRing struct {
	buf  []delivery
	head int
	n    int
}

// len returns the number of in-flight packets.
func (r *deliveryRing) len() int { return r.n }

// front returns the earliest pending delivery; the ring must be non-empty.
func (r *deliveryRing) front() delivery { return r.buf[r.head] }

// push appends a delivery at the FIFO tail.
func (r *deliveryRing) push(d delivery) {
	if r.n == len(r.buf) {
		grown := make([]delivery, max(64, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = grown
		r.head = 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = d
	r.n++
}

// pop removes and returns the earliest pending delivery; the ring must be
// non-empty.
func (r *deliveryRing) pop() delivery {
	d := r.buf[r.head]
	r.buf[r.head].flow = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return d
}
