package netsim

import (
	"testing"

	"mocc/internal/trace"
)

// benchLink50 is the acceptance scenario bottleneck: 50 Mbps (1500-byte
// packets), 20 ms OWD, 500-packet buffer.
func benchLink50() LinkConfig {
	return LinkConfig{
		Capacity:  trace.Constant(trace.MbpsToPktsPerSec(50, 1500)),
		OWD:       0.020,
		QueuePkts: 500,
	}
}

const benchDuration = 20.0

// benchPackets reports the simulated packet count of a finished run: every
// transmission plus every delivery is one packet-level unit of work.
func benchPackets(flows []*Flow) int {
	total := 0
	for _, f := range flows {
		total += f.SentTotal + f.DeliveredTotal
	}
	return total
}

// BenchmarkEngine2Flow50Mbps measures the production engine on the
// acceptance scenario: two 2500 pkts/s senders overloading a 4167 pkts/s
// bottleneck (sustained queueing and drop-tail losses).
func BenchmarkEngine2Flow50Mbps(b *testing.B) {
	b.ReportAllocs()
	var pkts int
	for i := 0; i < b.N; i++ {
		n := NewNetwork(benchLink50(), 1)
		n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 2500}})
		n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 2500}})
		n.Run(benchDuration)
		pkts = benchPackets(n.Flows)
	}
	b.ReportMetric(float64(pkts)*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
	b.ReportMetric(float64(pkts), "pkts/op")
}

// BenchmarkEngine2Flow50MbpsLossy adds 2% random loss, exercising the
// per-packet RNG path.
func BenchmarkEngine2Flow50MbpsLossy(b *testing.B) {
	b.ReportAllocs()
	var pkts int
	for i := 0; i < b.N; i++ {
		link := benchLink50()
		link.LossRate = 0.02
		n := NewNetwork(link, 1)
		n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 2500}})
		n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 2500}})
		n.Run(benchDuration)
		pkts = benchPackets(n.Flows)
	}
	b.ReportMetric(float64(pkts)*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkEngineSingleFlowStep runs one flow over a stepping capacity
// trace, the devirtualized trace.Step fast path.
func BenchmarkEngineSingleFlowStep(b *testing.B) {
	b.ReportAllocs()
	var pkts int
	for i := 0; i < b.N; i++ {
		link := benchLink50()
		link.Capacity = trace.Step{Low: 2000, High: 4000, Period: 2}
		n := NewNetwork(link, 1)
		n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 3000}})
		n.Run(benchDuration)
		pkts = benchPackets(n.Flows)
	}
	b.ReportMetric(float64(pkts)*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkReferenceEngine2Flow50Mbps runs the retained per-packet seed
// engine on the acceptance scenario — the baseline the packet-train
// engine's speedup is measured against. (The original seed additionally
// boxed every event through container/heap; this port already saves that
// allocation, so the measured gap understates the improvement over the
// true seed.)
func BenchmarkReferenceEngine2Flow50Mbps(b *testing.B) {
	b.ReportAllocs()
	var pkts int
	for i := 0; i < b.N; i++ {
		n := NewReferenceNetwork(benchLink50(), 1)
		n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 2500}})
		n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 2500}})
		n.Run(benchDuration)
		pkts = benchPackets(n.Flows)
	}
	b.ReportMetric(float64(pkts)*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
	b.ReportMetric(float64(pkts), "pkts/op")
}

// BenchmarkReferenceEngineSingleFlowStep mirrors the step-trace benchmark
// on the reference engine.
func BenchmarkReferenceEngineSingleFlowStep(b *testing.B) {
	b.ReportAllocs()
	var pkts int
	for i := 0; i < b.N; i++ {
		link := benchLink50()
		link.Capacity = trace.Step{Low: 2000, High: 4000, Period: 2}
		n := NewReferenceNetwork(link, 1)
		n.AddFlow(FlowConfig{Alg: &fixedRate{rate: 3000}})
		n.Run(benchDuration)
		pkts = benchPackets(n.Flows)
	}
	b.ReportMetric(float64(pkts)*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}
