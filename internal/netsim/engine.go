package netsim

import (
	"math"
	"math/rand"

	"mocc/internal/trace"
)

// Network is one simulation instance — the production packet-train engine.
// Not safe for concurrent use.
//
// The event heap holds only control events (flow start/stop and
// monitor-interval boundaries): a handful of entries regardless of traffic
// volume. Packet-level work lives outside the heap in two cursors — each
// active flow's next pacing instant, and the global FIFO ring of in-flight
// deliveries — and the run loop drains whole packet trains from those
// cursors between control points. Per steady-state packet that costs a scan
// over the (few) active flows and the virtual-queue arithmetic: no heap
// push/pop, no interface boxing, no allocation.
//
// The schedule it executes is the exact total order eventBefore defines
// over the same events the per-packet ReferenceNetwork processes, so both
// engines produce identical statistics (see the equivalence tests).
type Network struct {
	Link  LinkConfig
	Flows []*Flow

	events  eventQueue
	now     float64
	rng     *rand.Rand
	lastDep float64 // bottleneck virtual-queue horizon
	capac   trace.Sampler
	inFly   deliveryRing
}

// NewNetwork creates a simulator for the given bottleneck. seed drives the
// random-loss process.
func NewNetwork(link LinkConfig, seed int64) *Network {
	link = link.normalized()
	return &Network{
		Link:  link,
		rng:   rand.New(rand.NewSource(seed)),
		capac: trace.NewSampler(link.Capacity),
	}
}

// AddFlow registers a flow; call before Run.
func (n *Network) AddFlow(cfg FlowConfig) *Flow {
	f := newFlow(n.Link, len(n.Flows), cfg)
	n.Flows = append(n.Flows, f)
	return f
}

// Now returns the current simulation time.
func (n *Network) Now() float64 { return n.now }

// QueueBacklog returns the bottleneck backlog in packets at time t.
func (n *Network) QueueBacklog(t float64) float64 {
	backlog := (n.lastDep - t) * n.capac.At(t)
	if backlog < 0 {
		return 0
	}
	return backlog
}

// Run executes the simulation until the given duration (seconds). It may be
// called once per Network.
func (n *Network) Run(duration float64) {
	baseRTT := 2 * n.Link.OWD
	for _, f := range n.Flows {
		f.startRun(baseRTT, duration)
		n.events.push(event{time: f.Cfg.Start, kind: evStart, flowID: int32(f.ID), flow: f})
		if f.Cfg.Stop > f.Cfg.Start {
			n.events.push(event{time: f.Cfg.Stop, kind: evStop, flowID: int32(f.ID), flow: f})
		}
	}

	for {
		// The next packet-level item: the global FIFO delivery head, or the
		// earliest pending transmission across active flows (iterating in ID
		// order with a strict comparison implements the flow-ID tiebreak).
		var next event
		havePkt := false
		if n.inFly.len() > 0 {
			d := n.inFly.front()
			next = event{time: d.t, kind: evDeliver, flowID: int32(d.flow.ID)}
			havePkt = true
		}
		var sender *Flow
		sendAt := math.Inf(1)
		for _, f := range n.Flows {
			if f.active && f.nextSend < sendAt {
				sendAt, sender = f.nextSend, f
			}
		}
		if sender != nil {
			se := event{time: sendAt, kind: evSend, flowID: int32(sender.ID)}
			if !havePkt || eventBefore(se, next) {
				next, havePkt = se, true
			}
		}

		// Control events preempt the packet train when they sort earlier.
		if n.events.len() > 0 && (!havePkt || eventBefore(n.events.peek(), next)) {
			e := n.events.pop()
			if e.time > duration {
				n.now = duration
				return
			}
			n.now = e.time
			switch e.kind {
			case evStart:
				f := e.flow
				f.active = true
				f.miStart = n.now
				f.nextSend = n.now
				n.events.push(event{time: n.now + f.Cfg.MIms/1000, kind: evMI, flowID: e.flowID, flow: f})
			case evStop:
				e.flow.active = false
				e.flow.stopped = true
			case evMI:
				f := e.flow
				if f.closeMI(n.now, n.QueueBacklog(n.now), n.Link.OWD) {
					n.events.push(event{time: n.now + f.Cfg.MIms/1000, kind: evMI, flowID: e.flowID, flow: f})
				}
			}
			continue
		}
		if !havePkt {
			break
		}
		if next.time > duration {
			n.now = duration
			return
		}
		n.now = next.time
		if next.kind == evDeliver {
			d := n.inFly.pop()
			d.flow.deliver(n.now, d.sendTime, n.Link.OWD)
		} else {
			n.transmit(sender, n.now)
		}
	}
	n.now = duration
}

// transmit pushes one packet of flow f into the bottleneck at time t and
// advances the flow's pacing cursor — the per-packet hot path.
func (n *Network) transmit(f *Flow, t float64) {
	f.SentTotal++
	f.miSent++

	capRaw := n.capac.At(t)
	capNow := math.Max(capRaw, 0.1)
	backlog := (n.lastDep - t) * capRaw
	if n.Link.LossRate > 0 && n.rng.Float64() < n.Link.LossRate {
		// Random (non-congestive) loss.
		f.LostTotal++
		f.miLost++
	} else if backlog >= float64(n.Link.QueuePkts) {
		// Drop-tail: buffer full.
		f.LostTotal++
		f.miLost++
	} else {
		dep := math.Max(t, n.lastDep) + 1/capNow
		n.lastDep = dep
		n.inFly.push(delivery{t: dep + n.Link.OWD, sendTime: t, flow: f})
	}

	f.nextSend = t + 1/math.Max(f.rate, 0.1)
}
