package netsim

import (
	"math"
	"math/rand"
)

// ReferenceNetwork is the retained seed engine: a classical discrete-event
// simulator that schedules one heap event per packet transmission and one
// per delivery. It is the ground truth for the production engine — the
// equivalence tests run both on identical scenarios and require identical
// totals and per-MI series — and the baseline the packet-train engine's
// speedup is measured against. Keep its handlers in lockstep with
// Network.transmit / Flow.deliver / Flow.closeMI.
//
// Not safe for concurrent use.
type ReferenceNetwork struct {
	Link  LinkConfig
	Flows []*Flow

	events  eventQueue
	now     float64
	rng     *rand.Rand
	lastDep float64 // bottleneck virtual-queue horizon
}

// NewReferenceNetwork creates a per-packet reference simulator. seed drives
// the random-loss process exactly as in NewNetwork.
func NewReferenceNetwork(link LinkConfig, seed int64) *ReferenceNetwork {
	return &ReferenceNetwork{
		Link: link.normalized(),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// AddFlow registers a flow; call before Run.
func (n *ReferenceNetwork) AddFlow(cfg FlowConfig) *Flow {
	f := newFlow(n.Link, len(n.Flows), cfg)
	n.Flows = append(n.Flows, f)
	return f
}

// Now returns the current simulation time.
func (n *ReferenceNetwork) Now() float64 { return n.now }

// QueueBacklog returns the bottleneck backlog in packets at time t.
func (n *ReferenceNetwork) QueueBacklog(t float64) float64 {
	backlog := (n.lastDep - t) * n.Link.Capacity.At(t)
	if backlog < 0 {
		return 0
	}
	return backlog
}

// schedule pushes an event.
func (n *ReferenceNetwork) schedule(t float64, kind int32, f *Flow, sendTime float64) {
	n.events.push(event{time: t, kind: kind, flowID: int32(f.ID), flow: f, sendTime: sendTime})
}

// Run executes the simulation until the given duration (seconds). It may be
// called once per ReferenceNetwork.
func (n *ReferenceNetwork) Run(duration float64) {
	baseRTT := 2 * n.Link.OWD
	for _, f := range n.Flows {
		f.startRun(baseRTT, duration)
		n.schedule(f.Cfg.Start, evStart, f, 0)
		if f.Cfg.Stop > f.Cfg.Start {
			n.schedule(f.Cfg.Stop, evStop, f, 0)
		}
	}

	for n.events.len() > 0 {
		e := n.events.pop()
		if e.time > duration {
			break
		}
		n.now = e.time
		switch e.kind {
		case evStart:
			f := e.flow
			f.active = true
			f.miStart = n.now
			n.schedule(n.now, evSend, f, 0)
			n.schedule(n.now+f.Cfg.MIms/1000, evMI, f, 0)
		case evStop:
			e.flow.active = false
			e.flow.stopped = true
		case evSend:
			n.handleSend(e.flow)
		case evDeliver:
			e.flow.deliver(n.now, e.sendTime, n.Link.OWD)
		case evMI:
			f := e.flow
			if f.closeMI(n.now, n.QueueBacklog(n.now), n.Link.OWD) {
				n.schedule(n.now+f.Cfg.MIms/1000, evMI, f, 0)
			}
		}
	}
	n.now = duration
}

// handleSend transmits one packet into the bottleneck and schedules the
// next transmission at the current pacing rate.
func (n *ReferenceNetwork) handleSend(f *Flow) {
	if !f.active {
		return
	}
	f.SentTotal++
	f.miSent++

	capNow := math.Max(n.Link.Capacity.At(n.now), 0.1)
	if n.Link.LossRate > 0 && n.rng.Float64() < n.Link.LossRate {
		// Random (non-congestive) loss.
		f.LostTotal++
		f.miLost++
	} else if n.QueueBacklog(n.now) >= float64(n.Link.QueuePkts) {
		// Drop-tail: buffer full.
		f.LostTotal++
		f.miLost++
	} else {
		dep := math.Max(n.now, n.lastDep) + 1/capNow
		n.lastDep = dep
		n.schedule(dep+n.Link.OWD, evDeliver, f, n.now)
	}

	next := n.now + 1/math.Max(f.rate, 0.1)
	n.schedule(next, evSend, f, 0)
}
