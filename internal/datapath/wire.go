package datapath

import "encoding/binary"

// Exported wire-format surface. The public mocc/transport binding and the
// internal UDP experiments speak the same 18-byte protocol, so a transport
// sender interoperates with an internal Receiver and vice versa:
//
//	[0]     magic (0xAC)
//	[1]     type: 0 = data, 1 = ack
//	[2:10]  sequence number (big endian)
//	[10:18] sender timestamp, unix nanos (echoed in acks)
const (
	// WireHeaderBytes is the fixed header length; data packets are padded
	// to the payload size.
	WireHeaderBytes = headerBytes
	// WireMagic is the protocol magic byte at offset 0.
	WireMagic = magicByte
	// WireTypeData / WireTypeAck are the type-byte values at offset 1.
	WireTypeData = typeData
	WireTypeAck  = typeAck
)

// DecodeHeader parses any wire datagram header, returning its type byte and
// sequence number. ok is false for short or foreign datagrams. The
// fault-injection shim uses it to classify traffic in both directions.
func DecodeHeader(buf []byte) (typ byte, seq uint64, ok bool) {
	if len(buf) < headerBytes || buf[0] != magicByte {
		return 0, 0, false
	}
	return buf[1], binary.BigEndian.Uint64(buf[2:10]), true
}

// EncodeAck writes an acknowledgement header into pkt (len >=
// WireHeaderBytes) — what a receiver sends back for (seq, unixNanos).
func EncodeAck(pkt []byte, seq uint64, unixNanos int64) {
	pkt[0] = magicByte
	pkt[1] = typeAck
	binary.BigEndian.PutUint64(pkt[2:10], seq)
	binary.BigEndian.PutUint64(pkt[10:18], uint64(unixNanos))
}

// EncodeDataHeader writes a data-packet header into pkt (len >=
// WireHeaderBytes); the rest of pkt is payload padding.
func EncodeDataHeader(pkt []byte, seq uint64, unixNanos int64) {
	pkt[0] = magicByte
	pkt[1] = typeData
	binary.BigEndian.PutUint64(pkt[2:10], seq)
	binary.BigEndian.PutUint64(pkt[10:18], uint64(unixNanos))
}

// DecodeAck parses a received datagram as an acknowledgement, returning the
// acked sequence number and the echoed send timestamp. ok is false for
// short, foreign, or non-ack datagrams.
func DecodeAck(buf []byte) (seq uint64, unixNanos int64, ok bool) {
	if len(buf) < headerBytes || buf[0] != magicByte || buf[1] != typeAck {
		return 0, 0, false
	}
	return binary.BigEndian.Uint64(buf[2:10]), int64(binary.BigEndian.Uint64(buf[10:18])), true
}
