package datapath

import (
	"encoding/binary"
	"math"
)

// Exported wire-format surface. The public mocc/transport binding, the
// internal UDP experiments, and the mocc-serve control plane speak the same
// protocol, so a transport sender interoperates with an internal Receiver
// and vice versa. Every datagram starts with the 18-byte header:
//
//	[0]     magic (0xAC)
//	[1]     type: 0 = data, 1 = ack, 2 = report, 3 = rate
//	[2:10]  sequence number (big endian)
//	[10:18] sender timestamp, unix nanos (echoed in acks and rate replies)
//
// Report datagrams carry one monitor interval of flow measurements to a
// mocc-serve daemon; rate datagrams carry the pacing decision back.
const (
	// WireHeaderBytes is the fixed header length; data packets are padded
	// to the payload size.
	WireHeaderBytes = headerBytes
	// WireMagic is the protocol magic byte at offset 0.
	WireMagic = magicByte
	// WireTypeData / WireTypeAck are the type-byte values at offset 1.
	WireTypeData = typeData
	WireTypeAck  = typeAck
	// WireTypeReport / WireTypeRate are the mocc-serve control-plane
	// datagrams: a flow's interval measurements and the rate decision.
	WireTypeReport = typeReport
	WireTypeRate   = typeRate
	// WireReportBytes / WireRateBytes are their exact datagram lengths.
	WireReportBytes = headerBytes + 10*8
	WireRateBytes   = headerBytes + 3*8
)

const (
	typeReport = 2
	typeRate   = 3
)

// WireReport is the payload of a report datagram: which flow is speaking,
// under what preference, and what the network did during one monitor
// interval — the over-the-wire form of the library's Status plus the
// registration weights, so a daemon can create the flow's handle lazily and
// follow live preference retunes.
type WireReport struct {
	// Flow identifies the flow within its source address; (addr, Flow) is
	// the daemon's session key.
	Flow uint64
	// Thr / Lat / Loss are the flow's preference weights.
	Thr, Lat, Loss float64
	// DurationNs is the monitor-interval length in nanoseconds.
	DurationNs int64
	// Sent / Acked / Lost are the interval's packet counts.
	Sent, Acked, Lost float64
	// AvgRTTNs / MinRTTNs are the interval mean and path-minimum RTT in
	// nanoseconds.
	AvgRTTNs, MinRTTNs int64
}

// EncodeReport writes a report datagram for (seq, unixNanos, r) into pkt
// (len >= WireReportBytes) and returns WireReportBytes.
func EncodeReport(pkt []byte, seq uint64, unixNanos int64, r WireReport) int {
	pkt[0] = magicByte
	pkt[1] = typeReport
	binary.BigEndian.PutUint64(pkt[2:10], seq)
	binary.BigEndian.PutUint64(pkt[10:18], uint64(unixNanos))
	binary.BigEndian.PutUint64(pkt[18:26], r.Flow)
	binary.BigEndian.PutUint64(pkt[26:34], math.Float64bits(r.Thr))
	binary.BigEndian.PutUint64(pkt[34:42], math.Float64bits(r.Lat))
	binary.BigEndian.PutUint64(pkt[42:50], math.Float64bits(r.Loss))
	binary.BigEndian.PutUint64(pkt[50:58], uint64(r.DurationNs))
	binary.BigEndian.PutUint64(pkt[58:66], math.Float64bits(r.Sent))
	binary.BigEndian.PutUint64(pkt[66:74], math.Float64bits(r.Acked))
	binary.BigEndian.PutUint64(pkt[74:82], math.Float64bits(r.Lost))
	binary.BigEndian.PutUint64(pkt[82:90], uint64(r.AvgRTTNs))
	binary.BigEndian.PutUint64(pkt[90:98], uint64(r.MinRTTNs))
	return WireReportBytes
}

// DecodeReport parses a received datagram as a flow report. ok is false for
// short, foreign, or non-report datagrams.
func DecodeReport(buf []byte) (seq uint64, unixNanos int64, r WireReport, ok bool) {
	if len(buf) < WireReportBytes || buf[0] != magicByte || buf[1] != typeReport {
		return 0, 0, WireReport{}, false
	}
	seq = binary.BigEndian.Uint64(buf[2:10])
	unixNanos = int64(binary.BigEndian.Uint64(buf[10:18]))
	r = WireReport{
		Flow:       binary.BigEndian.Uint64(buf[18:26]),
		Thr:        math.Float64frombits(binary.BigEndian.Uint64(buf[26:34])),
		Lat:        math.Float64frombits(binary.BigEndian.Uint64(buf[34:42])),
		Loss:       math.Float64frombits(binary.BigEndian.Uint64(buf[42:50])),
		DurationNs: int64(binary.BigEndian.Uint64(buf[50:58])),
		Sent:       math.Float64frombits(binary.BigEndian.Uint64(buf[58:66])),
		Acked:      math.Float64frombits(binary.BigEndian.Uint64(buf[66:74])),
		Lost:       math.Float64frombits(binary.BigEndian.Uint64(buf[74:82])),
		AvgRTTNs:   int64(binary.BigEndian.Uint64(buf[82:90])),
		MinRTTNs:   int64(binary.BigEndian.Uint64(buf[90:98])),
	}
	return seq, unixNanos, r, true
}

// EncodeRate writes a rate-decision datagram into pkt (len >=
// WireRateBytes) and returns WireRateBytes. seq and unixNanos echo the
// report being answered, so the flow can match replies and measure decision
// latency; flow disambiguates replies when many flows share one socket;
// epoch states which model generation decided.
func EncodeRate(pkt []byte, seq uint64, unixNanos int64, flow uint64, rate float64, epoch uint64) int {
	pkt[0] = magicByte
	pkt[1] = typeRate
	binary.BigEndian.PutUint64(pkt[2:10], seq)
	binary.BigEndian.PutUint64(pkt[10:18], uint64(unixNanos))
	binary.BigEndian.PutUint64(pkt[18:26], flow)
	binary.BigEndian.PutUint64(pkt[26:34], math.Float64bits(rate))
	binary.BigEndian.PutUint64(pkt[34:42], epoch)
	return WireRateBytes
}

// DecodeRate parses a received datagram as a rate decision. ok is false for
// short, foreign, or non-rate datagrams.
func DecodeRate(buf []byte) (seq uint64, unixNanos int64, flow uint64, rate float64, epoch uint64, ok bool) {
	if len(buf) < WireRateBytes || buf[0] != magicByte || buf[1] != typeRate {
		return 0, 0, 0, 0, 0, false
	}
	seq = binary.BigEndian.Uint64(buf[2:10])
	unixNanos = int64(binary.BigEndian.Uint64(buf[10:18]))
	flow = binary.BigEndian.Uint64(buf[18:26])
	rate = math.Float64frombits(binary.BigEndian.Uint64(buf[26:34]))
	epoch = binary.BigEndian.Uint64(buf[34:42])
	return seq, unixNanos, flow, rate, epoch, true
}

// DecodeHeader parses any wire datagram header, returning its type byte and
// sequence number. ok is false for short or foreign datagrams. The
// fault-injection shim uses it to classify traffic in both directions.
func DecodeHeader(buf []byte) (typ byte, seq uint64, ok bool) {
	if len(buf) < headerBytes || buf[0] != magicByte {
		return 0, 0, false
	}
	return buf[1], binary.BigEndian.Uint64(buf[2:10]), true
}

// EncodeAck writes an acknowledgement header into pkt (len >=
// WireHeaderBytes) — what a receiver sends back for (seq, unixNanos).
func EncodeAck(pkt []byte, seq uint64, unixNanos int64) {
	pkt[0] = magicByte
	pkt[1] = typeAck
	binary.BigEndian.PutUint64(pkt[2:10], seq)
	binary.BigEndian.PutUint64(pkt[10:18], uint64(unixNanos))
}

// EncodeDataHeader writes a data-packet header into pkt (len >=
// WireHeaderBytes); the rest of pkt is payload padding.
func EncodeDataHeader(pkt []byte, seq uint64, unixNanos int64) {
	pkt[0] = magicByte
	pkt[1] = typeData
	binary.BigEndian.PutUint64(pkt[2:10], seq)
	binary.BigEndian.PutUint64(pkt[10:18], uint64(unixNanos))
}

// DecodeAck parses a received datagram as an acknowledgement, returning the
// acked sequence number and the echoed send timestamp. ok is false for
// short, foreign, or non-ack datagrams.
func DecodeAck(buf []byte) (seq uint64, unixNanos int64, ok bool) {
	if len(buf) < headerBytes || buf[0] != magicByte || buf[1] != typeAck {
		return 0, 0, false
	}
	return binary.BigEndian.Uint64(buf[2:10]), int64(binary.BigEndian.Uint64(buf[10:18])), true
}
