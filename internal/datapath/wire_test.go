package datapath

import (
	"testing"
	"time"
)

// TestReportRoundTrip pins the report datagram encoding: every field
// survives bit-exactly, the length matches the declared constant, and the
// generic header decoder classifies it.
func TestReportRoundTrip(t *testing.T) {
	r := WireReport{
		Flow: 0xDEADBEEF12345678,
		Thr:  0.8, Lat: 0.1, Loss: 0.1,
		DurationNs: (40 * time.Millisecond).Nanoseconds(),
		Sent:       51.5, Acked: 50, Lost: 1.5,
		AvgRTTNs: (45 * time.Millisecond).Nanoseconds(),
		MinRTTNs: (40 * time.Millisecond).Nanoseconds(),
	}
	pkt := make([]byte, WireReportBytes)
	if n := EncodeReport(pkt, 7, 123456789, r); n != WireReportBytes {
		t.Fatalf("EncodeReport length %d, want %d", n, WireReportBytes)
	}
	if typ, seq, ok := DecodeHeader(pkt); !ok || typ != WireTypeReport || seq != 7 {
		t.Fatalf("DecodeHeader = (%d, %d, %v)", typ, seq, ok)
	}
	seq, nanos, got, ok := DecodeReport(pkt)
	if !ok || seq != 7 || nanos != 123456789 {
		t.Fatalf("DecodeReport header = (%d, %d, %v)", seq, nanos, ok)
	}
	if got != r {
		t.Fatalf("DecodeReport payload = %+v, want %+v", got, r)
	}
}

// TestRateRoundTrip pins the rate-decision datagram encoding.
func TestRateRoundTrip(t *testing.T) {
	pkt := make([]byte, WireRateBytes)
	if n := EncodeRate(pkt, 9, 42, 31337, 812.25, 3); n != WireRateBytes {
		t.Fatalf("EncodeRate length %d, want %d", n, WireRateBytes)
	}
	seq, nanos, flow, rate, epoch, ok := DecodeRate(pkt)
	if !ok || seq != 9 || nanos != 42 || flow != 31337 || rate != 812.25 || epoch != 3 {
		t.Fatalf("DecodeRate = (%d, %d, %d, %v, %d, %v)", seq, nanos, flow, rate, epoch, ok)
	}
}

// TestControlPlaneDecodeRejects covers cross-type and malformed datagrams:
// each decoder must refuse the other's packets, short reads, and foreign
// magic.
func TestControlPlaneDecodeRejects(t *testing.T) {
	report := make([]byte, WireReportBytes)
	EncodeReport(report, 1, 2, WireReport{Flow: 3})
	rate := make([]byte, WireRateBytes)
	EncodeRate(rate, 1, 2, 3, 4, 5)

	if _, _, _, _, _, ok := DecodeRate(report); ok {
		t.Fatal("DecodeRate accepted a report datagram")
	}
	if _, _, _, ok := DecodeReport(rate); ok {
		t.Fatal("DecodeReport accepted a rate datagram")
	}
	if _, _, _, ok := DecodeReport(report[:WireReportBytes-1]); ok {
		t.Fatal("DecodeReport accepted a truncated datagram")
	}
	bad := append([]byte(nil), report...)
	bad[0] = 0x00
	if _, _, _, ok := DecodeReport(bad); ok {
		t.Fatal("DecodeReport accepted foreign magic")
	}
	ack := make([]byte, WireHeaderBytes)
	EncodeAck(ack, 1, 2)
	if _, _, _, ok := DecodeReport(ack); ok {
		t.Fatal("DecodeReport accepted an ack")
	}
}
