// Package datapath provides the two deployment paths of §5: a UDT-style
// user-space shim where the learned controller runs inline with the
// datapath every monitor interval, and a CCP-style kernel split where the
// datapath aggregates measurements and consults the (out-of-band) controller
// at a much lower frequency. Both speak the paper's three-call library API
// and both implement cc.Algorithm, so any simulator or socket loop can host
// them. The package also includes a real UDP loopback datapath for
// end-to-end runs outside the simulator.
//
// The Figure 17 CPU-overhead experiment is reproduced by accounting the
// wall-clock time spent inside the controller per simulated second: the
// user-space path invokes model inference every interval (Aurora-like cost),
// while the CCP path batches ReportEvery intervals per invocation, which is
// exactly the decoupling that gives kernel-space MOCC its low overhead.
package datapath

import (
	"math"
	"time"

	"mocc/internal/cc"
)

// Mode selects the deployment style.
type Mode int

const (
	// UserSpace is the UDT-style inline control loop.
	UserSpace Mode = iota
	// KernelSpace is the CCP-style asynchronous control plane.
	KernelSpace
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == KernelSpace {
		return "kernel(ccp)"
	}
	return "user(udt)"
}

// Shim wraps a congestion controller in a deployment mode and accounts the
// control-plane CPU time it consumes.
type Shim struct {
	Alg  cc.Algorithm
	Mode Mode
	// ReportEvery is how many monitor intervals the kernel datapath
	// aggregates before consulting the control plane (CCP's report
	// interval). Ignored in user-space mode.
	ReportEvery int

	controlTime time.Duration
	invocations int
	intervals   int
	simTime     float64

	pending  []cc.Report
	lastRate float64
}

// NewShim wraps alg. For KernelSpace, reportEvery defaults to 10 when <= 1.
func NewShim(alg cc.Algorithm, mode Mode, reportEvery int) *Shim {
	if reportEvery <= 1 {
		reportEvery = 10
	}
	return &Shim{Alg: alg, Mode: mode, ReportEvery: reportEvery}
}

// Name implements cc.Algorithm.
func (s *Shim) Name() string { return s.Alg.Name() + "+" + s.Mode.String() }

// Reset implements cc.Algorithm.
func (s *Shim) Reset(seed int64) {
	s.Alg.Reset(seed)
	s.controlTime = 0
	s.invocations = 0
	s.intervals = 0
	s.simTime = 0
	s.pending = s.pending[:0]
	s.lastRate = 0
}

// InitialRate implements cc.Algorithm.
func (s *Shim) InitialRate(baseRTT float64) float64 {
	s.lastRate = s.Alg.InitialRate(baseRTT)
	return s.lastRate
}

// Update implements cc.Algorithm. In user-space mode every interval invokes
// the controller; in kernel mode intervals are aggregated and the controller
// runs once per ReportEvery intervals.
func (s *Shim) Update(r cc.Report) float64 {
	s.intervals++
	s.simTime += r.Duration
	if s.Mode == UserSpace {
		start := time.Now()
		s.lastRate = s.Alg.Update(r)
		s.controlTime += time.Since(start)
		s.invocations++
		return s.lastRate
	}

	s.pending = append(s.pending, r)
	if len(s.pending) < s.ReportEvery {
		return s.lastRate // datapath keeps the last rate between reports
	}
	agg := aggregateReports(s.pending)
	s.pending = s.pending[:0]
	start := time.Now()
	s.lastRate = s.Alg.Update(agg)
	s.controlTime += time.Since(start)
	s.invocations++
	return s.lastRate
}

// aggregateReports merges consecutive interval reports the way CCP's
// datapath summarizes measurements between control invocations.
func aggregateReports(rs []cc.Report) cc.Report {
	var out cc.Report
	var rttWeighted float64
	minRTT := math.Inf(1)
	for _, r := range rs {
		out.Duration += r.Duration
		out.Sent += r.Sent
		out.Delivered += r.Delivered
		out.Lost += r.Lost
		rttWeighted += r.AvgRTT * math.Max(r.Delivered, 1e-9)
		if r.MinRTT > 0 && r.MinRTT < minRTT {
			minRTT = r.MinRTT
		}
	}
	if out.Duration > 0 {
		out.SendRate = out.Sent / out.Duration
		out.Throughput = out.Delivered / out.Duration
	}
	if out.Delivered > 0 {
		out.AvgRTT = rttWeighted / out.Delivered
	} else if len(rs) > 0 {
		out.AvgRTT = rs[len(rs)-1].AvgRTT
	}
	if !math.IsInf(minRTT, 1) {
		out.MinRTT = minRTT
	}
	if out.Sent > 0 {
		out.LossRate = out.Lost / out.Sent
	}
	return out
}

// Overhead summarizes the control-plane cost of a finished run.
type Overhead struct {
	Scheme string
	Mode   Mode
	// ControlTime is total wall-clock time spent in the controller.
	ControlTime time.Duration
	// Invocations is how many times the controller ran.
	Invocations int
	// Intervals is how many monitor intervals the datapath processed.
	Intervals int
	// SimSeconds is the simulated traffic duration.
	SimSeconds float64
	// CPUShare is control microseconds per simulated second - the
	// relative CPU utilization proxy plotted in Figure 17.
	CPUShare float64
}

// Overhead reports the accumulated accounting.
func (s *Shim) Overhead() Overhead {
	o := Overhead{
		Scheme:      s.Alg.Name(),
		Mode:        s.Mode,
		ControlTime: s.controlTime,
		Invocations: s.invocations,
		Intervals:   s.intervals,
		SimSeconds:  s.simTime,
	}
	if s.simTime > 0 {
		o.CPUShare = float64(s.controlTime.Microseconds()) / s.simTime
	}
	return o
}
