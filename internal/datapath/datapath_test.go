package datapath

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"mocc/internal/cc"
)

func steadyReport(rate, thr, rtt float64) cc.Report {
	d := 0.02
	return cc.Report{
		Duration: d, Sent: rate * d, Delivered: thr * d,
		SendRate: rate, Throughput: thr, AvgRTT: rtt, MinRTT: rtt,
	}
}

func TestModeString(t *testing.T) {
	if UserSpace.String() != "user(udt)" || KernelSpace.String() != "kernel(ccp)" {
		t.Errorf("mode strings: %q, %q", UserSpace.String(), KernelSpace.String())
	}
}

func TestUserSpaceShimInvokesEveryInterval(t *testing.T) {
	s := NewShim(cc.NewCubic(), UserSpace, 0)
	s.Reset(1)
	s.InitialRate(0.04)
	for i := 0; i < 20; i++ {
		s.Update(steadyReport(500, 500, 0.04))
	}
	o := s.Overhead()
	if o.Invocations != 20 {
		t.Errorf("invocations = %d, want 20", o.Invocations)
	}
	if o.Intervals != 20 {
		t.Errorf("intervals = %d, want 20", o.Intervals)
	}
	if o.ControlTime <= 0 {
		t.Error("no control time accounted")
	}
}

func TestKernelShimBatchesReports(t *testing.T) {
	s := NewShim(cc.NewCubic(), KernelSpace, 5)
	s.Reset(1)
	r0 := s.InitialRate(0.04)
	// The first four intervals keep the last rate; the fifth consults the
	// controller.
	for i := 0; i < 4; i++ {
		if got := s.Update(steadyReport(500, 500, 0.04)); got != r0 {
			t.Fatalf("interval %d: rate changed to %v before report boundary", i, got)
		}
	}
	r5 := s.Update(steadyReport(500, 500, 0.04))
	if r5 == r0 {
		t.Error("controller not consulted at report boundary")
	}
	o := s.Overhead()
	if o.Invocations != 1 {
		t.Errorf("invocations = %d, want 1", o.Invocations)
	}
	if o.Intervals != 5 {
		t.Errorf("intervals = %d, want 5", o.Intervals)
	}
}

func TestKernelShimDefaultReportEvery(t *testing.T) {
	s := NewShim(cc.NewCubic(), KernelSpace, 0)
	if s.ReportEvery != 10 {
		t.Errorf("default ReportEvery = %d, want 10", s.ReportEvery)
	}
}

func TestAggregateReports(t *testing.T) {
	rs := []cc.Report{
		{Duration: 0.02, Sent: 10, Delivered: 8, Lost: 2, AvgRTT: 0.040, MinRTT: 0.040},
		{Duration: 0.02, Sent: 10, Delivered: 10, Lost: 0, AvgRTT: 0.060, MinRTT: 0.038},
	}
	agg := aggregateReports(rs)
	if agg.Duration != 0.04 || agg.Sent != 20 || agg.Delivered != 18 || agg.Lost != 2 {
		t.Errorf("sums wrong: %+v", agg)
	}
	// Delivery-weighted RTT: (8*40 + 10*60)/18 = 51.1 ms.
	want := (8*0.040 + 10*0.060) / 18
	if math.Abs(agg.AvgRTT-want) > 1e-9 {
		t.Errorf("AvgRTT = %v, want %v", agg.AvgRTT, want)
	}
	if agg.MinRTT != 0.038 {
		t.Errorf("MinRTT = %v", agg.MinRTT)
	}
	if math.Abs(agg.LossRate-0.1) > 1e-9 {
		t.Errorf("LossRate = %v, want 0.1", agg.LossRate)
	}
	if math.Abs(agg.Throughput-18/0.04) > 1e-9 {
		t.Errorf("Throughput = %v", agg.Throughput)
	}
}

func TestKernelModeReducesCPUShare(t *testing.T) {
	// The same (expensive) controller in kernel mode must consume less
	// control time than in user-space mode for the same traffic.
	expensive := func() cc.Algorithm {
		return cc.NewRLRate("rl", cc.PolicyFunc(func(obs []float64) float64 {
			sum := 0.0
			for i := 0; i < 2000; i++ { // stand-in for NN inference cost
				sum += math.Sqrt(float64(i))
			}
			_ = sum
			return 0
		}), 10)
	}
	user := NewShim(expensive(), UserSpace, 0)
	kern := NewShim(expensive(), KernelSpace, 10)
	for _, s := range []*Shim{user, kern} {
		s.Reset(1)
		s.InitialRate(0.04)
		for i := 0; i < 200; i++ {
			s.Update(steadyReport(500, 500, 0.04))
		}
	}
	uo, ko := user.Overhead(), kern.Overhead()
	if ko.CPUShare >= uo.CPUShare {
		t.Errorf("kernel share %v not below user share %v", ko.CPUShare, uo.CPUShare)
	}
	if ko.Invocations*5 > uo.Invocations {
		t.Errorf("kernel invocations %d vs user %d: batching broken", ko.Invocations, uo.Invocations)
	}
}

func TestMeasureOverheadOrdering(t *testing.T) {
	nnCost := cc.PolicyFunc(func(obs []float64) float64 {
		sum := 0.0
		for i := 0; i < 5000; i++ {
			sum += math.Sqrt(float64(i))
		}
		_ = sum
		return 0
	})
	schemes := []OverheadScheme{
		{Label: "cubic-kernel", Alg: cc.NewCubic(), Mode: KernelSpace},
		{Label: "mocc-udt", Alg: cc.NewRLRate("mocc", nnCost, 10), Mode: UserSpace},
		{Label: "mocc-ccp", Alg: cc.NewRLRate("mocc", nnCost, 10), Mode: KernelSpace},
	}
	cfg := DefaultOverheadConfig()
	cfg.DurationSec = 10
	rows := MeasureOverhead(schemes, cfg)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	share := map[string]float64{}
	for _, o := range rows {
		share[o.Scheme] = o.CPUShare
	}
	if !(share["mocc-udt"] > share["mocc-ccp"]) {
		t.Errorf("user-space MOCC (%v) should exceed kernel MOCC (%v)",
			share["mocc-udt"], share["mocc-ccp"])
	}
	if !(share["mocc-udt"] > share["cubic-kernel"]) {
		t.Errorf("user-space MOCC (%v) should exceed kernel cubic (%v)",
			share["mocc-udt"], share["cubic-kernel"])
	}
	var buf bytes.Buffer
	if err := WriteOverheadTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 17") {
		t.Error("table title missing")
	}
}

func TestUDPTransferLoopback(t *testing.T) {
	recv, err := StartReceiver("127.0.0.1:0", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	stats, err := RunTransfer(TransferConfig{
		Addr:     recv.Addr(),
		Alg:      cc.NewCubic(),
		Duration: 500 * time.Millisecond,
		MI:       20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if stats.Acked == 0 {
		t.Fatal("nothing acknowledged")
	}
	if stats.Acked > stats.Sent {
		t.Errorf("acked %d > sent %d", stats.Acked, stats.Sent)
	}
	if len(stats.Reports) < 10 {
		t.Errorf("only %d MI reports for a 500ms/20ms run", len(stats.Reports))
	}
	if stats.AvgRTT <= 0 || stats.AvgRTT > 200*time.Millisecond {
		t.Errorf("loopback RTT %v implausible", stats.AvgRTT)
	}
	if recv.Received() == 0 {
		t.Error("receiver counted nothing")
	}
}

func TestUDPTransferWithLoss(t *testing.T) {
	recv, err := StartReceiver("127.0.0.1:0", 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	stats, err := RunTransfer(TransferConfig{
		Addr:        recv.Addr(),
		Alg:         cc.NewCubic(),
		Duration:    600 * time.Millisecond,
		MI:          20 * time.Millisecond,
		LossTimeout: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Lost == 0 {
		t.Error("30% drop probability produced no inferred losses")
	}
	frac := float64(stats.Acked) / float64(stats.Sent)
	if frac > 0.9 {
		t.Errorf("ack fraction %v too high under 30%% loss", frac)
	}
}

func TestUDPTransferValidation(t *testing.T) {
	if _, err := RunTransfer(TransferConfig{Addr: "127.0.0.1:1", Duration: time.Second}); err == nil {
		t.Error("nil algorithm accepted")
	}
	if _, err := RunTransfer(TransferConfig{Addr: "127.0.0.1:1", Alg: cc.NewCubic()}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := RunTransfer(TransferConfig{Addr: "bogus::::", Alg: cc.NewCubic(), Duration: time.Second}); err == nil {
		t.Error("bad address accepted")
	}
}

func TestReceiverClose(t *testing.T) {
	recv, err := StartReceiver("127.0.0.1:0", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := recv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Second close must not panic.
	_ = recv.Close()
}
