package datapath

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"mocc/internal/cc"
)

// Wire format: a fixed 18-byte header, padded to the payload size for data
// packets.
//
//	[0]    magic (0xAC)
//	[1]    type: 0 = data, 1 = ack
//	[2:10] sequence number (big endian)
//	[10:18] sender timestamp, unix nanos (echoed in acks)
const (
	headerBytes = 18
	magicByte   = 0xAC
	typeData    = 0
	typeAck     = 1
)

// Receiver is a UDP sink that acknowledges every data packet (optionally
// dropping a configured fraction to emulate loss on loopback links).
type Receiver struct {
	conn     *net.UDPConn
	dropProb float64
	rng      *rand.Rand
	mu       sync.Mutex
	received int
	done     chan struct{}
	wg       sync.WaitGroup
}

// StartReceiver binds a UDP socket on addr ("127.0.0.1:0" picks a free
// port) and serves acknowledgements until Close.
func StartReceiver(addr string, dropProb float64, seed int64) (*Receiver, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("datapath: resolving %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("datapath: listening on %q: %w", addr, err)
	}
	r := &Receiver{
		conn:     conn,
		dropProb: dropProb,
		rng:      rand.New(rand.NewSource(seed)),
		done:     make(chan struct{}),
	}
	r.wg.Add(1)
	go r.serve()
	return r, nil
}

// Addr returns the bound address (useful with port 0).
func (r *Receiver) Addr() string { return r.conn.LocalAddr().String() }

// Received returns the count of accepted data packets.
func (r *Receiver) Received() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.received
}

// Close stops the receiver and releases the socket.
func (r *Receiver) Close() error {
	select {
	case <-r.done:
	default:
		close(r.done)
	}
	err := r.conn.Close()
	r.wg.Wait()
	return err
}

// serve echoes acks for data packets.
func (r *Receiver) serve() {
	defer r.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, peer, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-r.done:
				return
			default:
				continue
			}
		}
		if n < headerBytes || buf[0] != magicByte || buf[1] != typeData {
			continue
		}
		r.mu.Lock()
		drop := r.dropProb > 0 && r.rng.Float64() < r.dropProb
		if !drop {
			r.received++
		}
		r.mu.Unlock()
		if drop {
			continue
		}
		ack := make([]byte, headerBytes)
		copy(ack, buf[:headerBytes])
		ack[1] = typeAck
		_, _ = r.conn.WriteToUDP(ack, peer)
	}
}

// TransferConfig drives one UDP sender session.
type TransferConfig struct {
	// Addr is the receiver's address.
	Addr string
	// Alg paces the sender; any cc.Algorithm works, including MOCC
	// policies wrapped via core.Model.AlgorithmFor.
	Alg cc.Algorithm
	// Duration bounds the transfer.
	Duration time.Duration
	// MI is the monitor-interval length (default 20 ms).
	MI time.Duration
	// PayloadBytes sizes data packets (default 1200).
	PayloadBytes int
	// MaxRatePps caps pacing (default 20000 pkts/s; loopback is fast).
	MaxRatePps float64
	// LossTimeout declares unacked packets lost after this long
	// (default 4x the observed min RTT, floor 20 ms).
	LossTimeout time.Duration
	// WrapConn, if set, interposes on the dialed socket before any
	// traffic flows — the fault-injection seam shared with the public
	// transport binding (mocc/internal/faults.Plan.WrapConn fits).
	WrapConn func(PacketConn) PacketConn
}

// PacketConn is the socket surface RunTransfer drives — the subset of
// *net.UDPConn it uses, and the seam WrapConn interposes on.
type PacketConn interface {
	Read(b []byte) (int, error)
	Write(b []byte) (int, error)
	SetReadDeadline(t time.Time) error
	Close() error
}

// TransferStats summarizes a finished UDP transfer.
type TransferStats struct {
	Sent, Acked, Lost int
	AvgRTT            time.Duration
	ThroughputMbps    float64
	Duration          time.Duration
	Reports           []cc.Report
}

// RunTransfer paces packets to the receiver under the control of cfg.Alg,
// reporting per-MI statistics to the algorithm exactly as the simulator
// does. It demonstrates that the learned controllers run unchanged over a
// real socket datapath.
func RunTransfer(cfg TransferConfig) (TransferStats, error) {
	var stats TransferStats
	if cfg.Alg == nil {
		return stats, errors.New("datapath: TransferConfig.Alg is required")
	}
	if cfg.Duration <= 0 {
		return stats, errors.New("datapath: TransferConfig.Duration must be positive")
	}
	if cfg.MI <= 0 {
		cfg.MI = 20 * time.Millisecond
	}
	if cfg.PayloadBytes < headerBytes {
		cfg.PayloadBytes = 1200
	}
	if cfg.MaxRatePps <= 0 {
		cfg.MaxRatePps = 20000
	}

	raddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return stats, fmt.Errorf("datapath: resolving %q: %w", cfg.Addr, err)
	}
	udp, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return stats, fmt.Errorf("datapath: dialing %q: %w", cfg.Addr, err)
	}
	var conn PacketConn = udp
	if cfg.WrapConn != nil {
		conn = cfg.WrapConn(conn)
	}
	defer conn.Close()

	var (
		mu          sync.Mutex
		outstanding = map[uint64]time.Time{}
		miAcked     int
		miRTTSum    time.Duration
		totalAcked  int
		rttSum      time.Duration
		minRTT      time.Duration
	)

	// Ack collector.
	stop := make(chan struct{})
	var ackWG sync.WaitGroup
	ackWG.Add(1)
	go func() {
		defer ackWG.Done()
		buf := make([]byte, 2048)
		for {
			_ = conn.SetReadDeadline(time.Now().Add(5 * time.Millisecond))
			n, err := conn.Read(buf)
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					select {
					case <-stop:
						return
					default:
						continue
					}
				}
				return
			}
			seq, _, ok := DecodeAck(buf[:n])
			if !ok {
				continue
			}
			now := time.Now()
			mu.Lock()
			if sentAt, ok := outstanding[seq]; ok {
				delete(outstanding, seq)
				rtt := now.Sub(sentAt)
				miAcked++
				miRTTSum += rtt
				totalAcked++
				rttSum += rtt
				if minRTT == 0 || rtt < minRTT {
					minRTT = rtt
				}
			}
			mu.Unlock()
		}
	}()

	// Pacing loop.
	cfg.Alg.Reset(1)
	rate := math.Min(cfg.Alg.InitialRate(0.001), cfg.MaxRatePps)
	pkt := make([]byte, cfg.PayloadBytes)

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	nextMI := start.Add(cfg.MI)
	var seq uint64
	miSent := 0
	nextSend := start

	for time.Now().Before(deadline) {
		now := time.Now()
		if now.Before(nextSend) {
			time.Sleep(nextSend.Sub(now))
			continue
		}
		seq++
		EncodeDataHeader(pkt, seq, time.Now().UnixNano())
		if _, err := conn.Write(pkt); err == nil {
			mu.Lock()
			outstanding[seq] = time.Now()
			mu.Unlock()
			miSent++
			stats.Sent++
		}
		nextSend = nextSend.Add(time.Duration(float64(time.Second) / rate))
		if nextSend.Before(time.Now().Add(-50 * time.Millisecond)) {
			nextSend = time.Now() // don't burst to catch up after stalls
		}

		if time.Now().After(nextMI) {
			rate = math.Min(cfg.updateMI(&mu, outstanding, &miSent, &miAcked, &miRTTSum, minRTT, &stats), cfg.MaxRatePps)
			nextMI = nextMI.Add(cfg.MI)
		}
	}

	close(stop)
	ackWG.Wait()

	stats.Duration = time.Since(start)
	mu.Lock()
	stats.Acked = totalAcked
	if totalAcked > 0 {
		stats.AvgRTT = rttSum / time.Duration(totalAcked)
	}
	mu.Unlock()
	if secs := stats.Duration.Seconds(); secs > 0 {
		stats.ThroughputMbps = float64(stats.Acked*cfg.PayloadBytes) * 8 / 1e6 / secs
	}
	return stats, nil
}

// updateMI closes one monitor interval: infers losses, builds the report,
// and consults the algorithm for the next rate.
func (cfg TransferConfig) updateMI(mu *sync.Mutex, outstanding map[uint64]time.Time,
	miSent, miAcked *int, miRTTSum *time.Duration, minRTT time.Duration, stats *TransferStats) float64 {

	timeout := cfg.LossTimeout
	if timeout <= 0 {
		timeout = 4 * minRTT
		if timeout < 20*time.Millisecond {
			timeout = 20 * time.Millisecond
		}
	}

	mu.Lock()
	now := time.Now()
	lost := 0
	for seq, sentAt := range outstanding {
		if now.Sub(sentAt) > timeout {
			delete(outstanding, seq)
			lost++
		}
	}
	sent, acked := *miSent, *miAcked
	rttSum := *miRTTSum
	*miSent, *miAcked, *miRTTSum = 0, 0, 0
	mu.Unlock()

	stats.Lost += lost
	d := cfg.MI.Seconds()
	avgRTT := 0.0
	if acked > 0 {
		avgRTT = (rttSum / time.Duration(acked)).Seconds()
	} else if minRTT > 0 {
		avgRTT = minRTT.Seconds()
	} else {
		avgRTT = 0.001
	}
	minRTTs := minRTT.Seconds()
	if minRTTs <= 0 {
		minRTTs = avgRTT
	}
	report := cc.Report{
		Duration:   d,
		Sent:       float64(sent),
		Delivered:  float64(acked),
		Lost:       float64(lost),
		SendRate:   float64(sent) / d,
		Throughput: float64(acked) / d,
		AvgRTT:     avgRTT,
		MinRTT:     minRTTs,
	}
	if sent > 0 {
		report.LossRate = float64(lost) / float64(sent)
	}
	stats.Reports = append(stats.Reports, report)
	return cfg.Alg.Update(report)
}
