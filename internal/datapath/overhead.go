package datapath

import (
	"fmt"
	"io"
	"sort"

	"mocc/internal/cc"
	"mocc/internal/gym"
	"mocc/internal/trace"
)

// OverheadScheme pairs a controller with its deployment mode for the
// Figure 17 comparison.
type OverheadScheme struct {
	Label string
	Alg   cc.Algorithm
	Mode  Mode
}

// OverheadConfig parameterizes the Figure 17 run: the paper sends traffic
// on a 40 Mbps link with 20 ms RTT and a 1xBDP buffer.
type OverheadConfig struct {
	LinkMbps    float64
	RTTms       float64
	DurationSec float64
	ReportEvery int // CCP aggregation factor for kernel-mode schemes
	Seed        int64
}

// DefaultOverheadConfig mirrors the paper's setup.
func DefaultOverheadConfig() OverheadConfig {
	return OverheadConfig{
		LinkMbps:    40,
		RTTms:       20,
		DurationSec: 30,
		ReportEvery: 10,
		Seed:        1,
	}
}

// MeasureOverhead drives each scheme through its shim over the simulated
// link and reports control-plane CPU accounting. The ordering — user-space
// learned controllers far above kernel-split ones, which sit near classic
// TCP — is the Figure 17 result.
func MeasureOverhead(schemes []OverheadScheme, cfg OverheadConfig) []Overhead {
	capacity := trace.MbpsToPktsPerSec(cfg.LinkMbps, 1500)
	bdp := int(capacity * cfg.RTTms / 1000)
	env := gym.Config{
		Bandwidth: trace.Constant(capacity),
		LatencyMs: cfg.RTTms / 2,
		QueuePkts: bdp,
		Seed:      cfg.Seed,
	}
	miSec := 2 * (cfg.RTTms / 2) / 1000
	steps := int(cfg.DurationSec / miSec)

	out := make([]Overhead, 0, len(schemes))
	for _, s := range schemes {
		shim := NewShim(s.Alg, s.Mode, cfg.ReportEvery)
		e := gym.New(env)
		cc.Drive(e, shim, steps, cfg.Seed)
		o := shim.Overhead()
		o.Scheme = s.Label
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CPUShare < out[j].CPUShare })
	return out
}

// WriteOverheadTable renders Figure 17 as text.
func WriteOverheadTable(w io.Writer, rows []Overhead) error {
	if _, err := fmt.Fprintln(w, "== Figure 17 control-plane CPU overhead =="); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-28s %-12s %12s %12s %16s\n",
		"scheme", "mode", "invocations", "intervals", "us per sim-sec"); err != nil {
		return err
	}
	for _, o := range rows {
		if _, err := fmt.Fprintf(w, "%-28s %-12s %12d %12d %16.2f\n",
			o.Scheme, o.Mode, o.Invocations, o.Intervals, o.CPUShare); err != nil {
			return err
		}
	}
	return nil
}
