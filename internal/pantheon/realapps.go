package pantheon

import (
	"fmt"

	"mocc/internal/apps"
	"mocc/internal/cc"
	"mocc/internal/objective"
)

// appSchemes returns the four schemes of the §6.3 application experiments:
// MOCC (with the given preference) against the kernel TCP incumbents.
func appSchemes(s *Schemes, pref objective.Weights) []func() cc.Algorithm {
	return []func() cc.Algorithm{
		func() cc.Algorithm { return s.MOCCAlgorithm("mocc", pref) },
		func() cc.Algorithm { return cc.NewCubic() },
		func() cc.Algorithm { return cc.NewBBR() },
		func() cc.Algorithm { return cc.NewVegas() },
	}
}

// Fig8Result holds the video-streaming comparison.
type Fig8Result struct {
	Sessions []apps.VideoResult
}

// RunFig8 streams video under each scheme with the throughput preference
// for MOCC (w = <0.8, 0.1, 0.1>, §6.3).
func RunFig8(s *Schemes, cfg apps.VideoConfig) (Fig8Result, error) {
	var res Fig8Result
	for _, factory := range appSchemes(s, objective.ThroughputPref) {
		session, err := apps.RunVideo(factory(), cfg)
		if err != nil {
			return res, err
		}
		res.Sessions = append(res.Sessions, session)
	}
	return res, nil
}

// Table renders Figure 8.
func (r Fig8Result) Table() Table {
	t := Table{
		Title:  "Figure 8 video streaming",
		Header: []string{"scheme", "avg thr (Mbps)", "avg level", "top-level chunks", "rebuffer (s)"},
	}
	for _, s := range r.Sessions {
		top := 0
		if n := len(s.ABR.QualityCounts); n > 0 {
			top = s.ABR.QualityCounts[n-1]
		}
		t.Add(s.Scheme,
			fmt.Sprintf("%.2f", s.AvgThroughput),
			fmt.Sprintf("%.2f", s.ABR.AvgLevel),
			fmt.Sprint(top),
			fmt.Sprintf("%.1f", s.ABR.RebufferSec))
	}
	return t
}

// Fig9Result holds the RTC comparison.
type Fig9Result struct {
	Sessions []apps.RTCResult
}

// RunFig9 measures inter-packet delay under each scheme with the RTC
// preference for MOCC (w = <0.4, 0.5, 0.1>, §6.3).
func RunFig9(s *Schemes, cfg apps.RTCConfig) Fig9Result {
	var res Fig9Result
	for _, factory := range appSchemes(s, objective.RTCPref) {
		res.Sessions = append(res.Sessions, apps.RunRTC(factory(), cfg))
	}
	return res
}

// Table renders Figure 9.
func (r Fig9Result) Table() Table {
	t := Table{
		Title:  "Figure 9 real-time communication",
		Header: []string{"scheme", "inter-packet delay (ms)", "stddev (ms)"},
	}
	for _, s := range r.Sessions {
		t.Add(s.Scheme, fmt.Sprintf("%.2f", s.MeanMs), fmt.Sprintf("%.2f", s.StdMs))
	}
	return t
}

// Fig10Result holds the bulk-transfer comparison.
type Fig10Result struct {
	Results []apps.BulkResult
}

// RunFig10 measures flow-completion times under each scheme with the bulk
// preference for MOCC (approximating the paper's greedy <1, 0, 0>).
func RunFig10(s *Schemes, cfg apps.BulkConfig) Fig10Result {
	var res Fig10Result
	for _, factory := range appSchemes(s, objective.BulkPref) {
		f := factory
		res.Results = append(res.Results, apps.RunBulk(func() cc.Algorithm { return f() }, cfg))
	}
	return res
}

// Table renders Figure 10.
func (r Fig10Result) Table() Table {
	t := Table{
		Title:  "Figure 10 bulk transfer",
		Header: []string{"scheme", "mean FCT (s)", "stddev (s)", "incomplete"},
	}
	for _, s := range r.Results {
		t.Add(s.Scheme,
			fmt.Sprintf("%.2f", s.MeanFCT),
			fmt.Sprintf("%.3f", s.StdFCT),
			fmt.Sprint(s.Incomplete))
	}
	return t
}
