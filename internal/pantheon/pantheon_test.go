package pantheon

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"mocc/internal/cc"
	"mocc/internal/objective"
	"mocc/internal/stats"
	"mocc/internal/trace"
)

// Tests share a single Quick-scale zoo so models are trained once per run.
var (
	zooOnce sync.Once
	testZoo *Zoo
)

func sharedZoo() *Zoo {
	zooOnce.Do(func() {
		testZoo = NewZoo(Quick, 1)
	})
	return testZoo
}

func TestSummarizeDiscardsWarmup(t *testing.T) {
	cond := trace.Condition{BandwidthMbps: 12, LatencyMs: 20, QueuePkts: 100}
	sum := RunScheme(cc.NewCubic(), cond, 200, 1)
	if sum.Scheme != "cubic" {
		t.Errorf("scheme = %q", sum.Scheme)
	}
	if sum.Utilization <= 0 || sum.Utilization > 1 {
		t.Errorf("utilization = %v", sum.Utilization)
	}
	if sum.LatencyRatio < 1 {
		t.Errorf("latency ratio = %v, must be >= 1", sum.LatencyRatio)
	}
	if sum.ThroughputMbps <= 0 || sum.ThroughputMbps > 12.5 {
		t.Errorf("throughput = %v Mbps", sum.ThroughputMbps)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "demo", Header: []string{"a", "bb"}}
	tb.Add("x", "y")
	tb.AddF("z", 1.5)
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a", "bb", "x", "1.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestMOCCPreferenceShapesBehaviour is the headline multi-objective check
// (the Convex Coverage Set property of §3): the single model, conditioned
// on an objective, must earn at least as much of that objective's reward as
// the same model conditioned on the opposite objective.
func TestMOCCPreferenceShapesBehaviour(t *testing.T) {
	z := sharedZoo()
	s := NewSchemes(z)
	cond := trace.Condition{BandwidthMbps: 3, LatencyMs: 30, QueuePkts: 200, LossRate: 0}

	thr := RunScheme(s.MOCCAlgorithm("mocc-throughput", objective.ThroughputPref), cond, 300, 7)
	lat := RunScheme(s.MOCCAlgorithm("mocc-latency", objective.LatencyPref), cond, 300, 7)

	// Each policy must win (or roughly tie) under its own objective. The
	// margin is wide at unit-test training scale; the Standard-scale
	// benches report the measured separation.
	thrUnderThr := rewardOfRun(thr, objective.ThroughputPref)
	latUnderThr := rewardOfRun(lat, objective.ThroughputPref)
	if thrUnderThr < latUnderThr-0.12 {
		t.Errorf("throughput policy scores %v under its own objective, far below latency policy's %v",
			thrUnderThr, latUnderThr)
	}
	thrUnderLat := rewardOfRun(thr, objective.LatencyPref)
	latUnderLat := rewardOfRun(lat, objective.LatencyPref)
	if latUnderLat < thrUnderLat-0.12 {
		t.Errorf("latency policy scores %v under its own objective, far below throughput policy's %v",
			latUnderLat, thrUnderLat)
	}
	// The throughput preference must actually use the link.
	if thr.Utilization < 0.5 {
		t.Errorf("throughput-pref utilization %v too low", thr.Utilization)
	}
	t.Logf("thr policy: util %.3f latRatio %.3f | lat policy: util %.3f latRatio %.3f",
		thr.Utilization, thr.LatencyRatio, lat.Utilization, lat.LatencyRatio)
}

func TestRunSweepProducesAllSeries(t *testing.T) {
	z := sharedZoo()
	s := NewSchemes(z)
	res := RunSweep(s, SweepConfig{Axis: AxisBandwidth, Steps: 60, Seed: 1})
	if len(res.Series) != 11 { // 2 MOCC + 2 Aurora + Orca + 6 baselines
		t.Fatalf("series count = %d, want 11", len(res.Series))
	}
	points := SweepPoints(AxisBandwidth)
	for _, series := range res.Series {
		if len(series.Util) != len(points) || len(series.LatR) != len(points) {
			t.Fatalf("%s: incomplete series", series.Scheme)
		}
		for i := range series.Util {
			if math.IsNaN(series.Util[i]) || series.Util[i] < 0 {
				t.Errorf("%s: bad utilization %v", series.Scheme, series.Util[i])
			}
			if series.LatR[i] < 1-1e-9 {
				t.Errorf("%s: latency ratio %v < 1", series.Scheme, series.LatR[i])
			}
		}
	}
	util, lat := res.Tables()
	if len(util.Rows) != 11 || len(lat.Rows) != 11 {
		t.Error("table rows missing")
	}
	if res.SeriesFor("cubic") == nil {
		t.Error("SeriesFor(cubic) = nil")
	}
	if res.SeriesFor("nope") != nil {
		t.Error("SeriesFor(nope) != nil")
	}
}

func TestSweepPointsMatchPaper(t *testing.T) {
	if got := SweepPoints(AxisLatency); got[len(got)-1] != 200 {
		t.Errorf("latency sweep should reach 200 ms: %v", got)
	}
	if got := SweepPoints(AxisLoss); got[len(got)-1] != 10 {
		t.Errorf("loss sweep should reach 10%%: %v", got)
	}
	if got := SweepPoints(AxisBuffer); got[0] != 500 || got[len(got)-1] != 5000 {
		t.Errorf("buffer sweep range: %v", got)
	}
	if SweepPoints("bogus") != nil {
		t.Error("unknown axis should return nil")
	}
}

func TestRunFig1a(t *testing.T) {
	z := sharedZoo()
	s := NewSchemes(z)
	res := RunFig1a(s, Fig1aConfig{DurationSec: 20, Seed: 1})
	if len(res.Series) != 4 {
		t.Fatalf("series = %d, want 4 (cubic, vegas, aurora, orca)", len(res.Series))
	}
	for _, series := range res.Series {
		if len(series.ThrMbps) == 0 {
			t.Fatalf("%s: empty series", series.Scheme)
		}
		for _, v := range series.ThrMbps {
			if v < 0 || v > 35 {
				t.Errorf("%s: throughput %v outside [0, 35] Mbps", series.Scheme, v)
			}
		}
	}
	// Capacity alternates between 20 and 30.
	var saw20, saw30 bool
	for _, v := range res.Capacity.ThrMbps {
		if math.Abs(v-20) < 0.1 {
			saw20 = true
		}
		if math.Abs(v-30) < 0.1 {
			saw30 = true
		}
	}
	if !saw20 || !saw30 {
		t.Error("capacity trace does not alternate 20/30 Mbps")
	}
}

func TestRunFig1b(t *testing.T) {
	z := sharedZoo()
	s := NewSchemes(z)
	res := RunFig1b(s, 4, 100, 1)
	if len(res.Points) != 9 { // 2 aurora + orca + 6 baselines
		t.Fatalf("points = %d, want 9", len(res.Points))
	}
	for _, p := range res.Points {
		if p.MeanThrMbps <= 0 {
			t.Errorf("%s: mean throughput %v", p.Scheme, p.MeanThrMbps)
		}
		if p.MeanLatencyMs < 19 {
			t.Errorf("%s: mean latency %v below propagation", p.Scheme, p.MeanLatencyMs)
		}
	}
	tbl := res.Table()
	if len(tbl.Rows) != 11 {
		t.Errorf("table rows = %d, want 11", len(tbl.Rows))
	}
}

func TestRunFig1cConverges(t *testing.T) {
	z := sharedZoo()
	res := RunFig1c(z, 20)
	if len(res.Curve) != 20 {
		t.Fatalf("curve length = %d", len(res.Curve))
	}
	for _, v := range res.Curve {
		if math.IsNaN(v) {
			t.Fatal("NaN in training curve")
		}
	}
}

func TestRunFig6Shape(t *testing.T) {
	z := sharedZoo()
	s := NewSchemes(z)
	res := RunFig6(s, Fig6Config{Objectives: 8, Conditions: 2, Steps: 80, Seed: 3})
	wantSchemes := []string{"mocc", "enhanced-aurora", "aurora", "cubic", "vegas", "bbr", "copa", "pcc-allegro", "pcc-vivace"}
	for _, name := range wantSchemes {
		xs := res.Rewards[name]
		if len(xs) != 16 { // objectives x conditions
			t.Fatalf("%s: %d samples, want 16", name, len(xs))
		}
		for _, v := range xs {
			if v < 0 || v > 1 {
				t.Errorf("%s: reward %v outside [0,1]", name, v)
			}
		}
	}
	// MOCC must at least be competitive with vanilla (single-model) Aurora
	// across objectives — that is the core claim of the figure.
	if res.MeanReward("mocc") < res.MeanReward("aurora")-0.05 {
		t.Errorf("mocc mean %v clearly below vanilla aurora %v",
			res.MeanReward("mocc"), res.MeanReward("aurora"))
	}
	tbl := res.Table()
	if len(tbl.Rows) != len(wantSchemes) {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
}

func TestRunFig7QuickAdaptation(t *testing.T) {
	z := sharedZoo()
	cfg := DefaultFig7Config()
	cfg.Iters = 12
	cfg.SnapshotEvery = 4
	cfg.EvalSteps = 80
	res := RunFig7(z, cfg)
	if len(res.MOCCCurve) != cfg.Iters || len(res.AuroraCurve) != cfg.Iters {
		t.Fatalf("curve lengths %d/%d", len(res.MOCCCurve), len(res.AuroraCurve))
	}
	if len(res.SnapshotIters) != 3 {
		t.Errorf("snapshots = %v", res.SnapshotIters)
	}
	if len(res.OldAppMOCC) != 3 || len(res.OldAppAurora) != 3 {
		t.Errorf("old-app probes: %d mocc, %d aurora", len(res.OldAppMOCC), len(res.OldAppAurora))
	}
	// The pre-trained multi-objective model must provide a usable policy
	// from iteration zero (the paper's "moderate policy immediately").
	if len(res.MOCCCurve) > 0 && res.MOCCCurve[0] < 0.2 {
		t.Errorf("MOCC initial reward %v — no usable transfer policy", res.MOCCCurve[0])
	}
	if res.InitialGain <= 0 {
		t.Errorf("initial gain not computed: %v", res.InitialGain)
	}
	tbl := res.Table()
	if len(tbl.Rows) == 0 {
		t.Error("empty Fig7 table")
	}
}

func TestRunFairnessAndFig12(t *testing.T) {
	cfg := DefaultFairnessConfig()
	cfg.Flows = 3
	cfg.StaggerSec = 10
	cfg.DurationSec = 40
	fr := RunFairness(func() cc.Algorithm { return cc.NewCubic() }, "cubic", cfg)
	if len(fr.Throughput) != 3 {
		t.Fatalf("flows = %d", len(fr.Throughput))
	}
	if len(fr.JainPerSec) == 0 {
		t.Fatal("no Jain samples")
	}
	mean := stats.Mean(fr.JainPerSec)
	if mean < 0.5 {
		t.Errorf("cubic self-fairness Jain %v suspiciously low", mean)
	}
	// Flow 0 should be active before flow 2 starts.
	if fr.Throughput[0][5] <= 0 {
		t.Error("first flow idle at t=5s")
	}
	if fr.Throughput[2][5] > 0.1 {
		t.Error("third flow active before its start time")
	}
}

func TestRunFig13VariantAggression(t *testing.T) {
	z := sharedZoo()
	s := NewSchemes(z)
	cfg := DefaultCompeteConfig()
	cfg.DurationSec = 20
	cfg.MeasureFrom = 8
	res := RunFig13(s, cfg)
	if len(res.Pairs) != 4 {
		t.Fatalf("pairs = %d, want 4", len(res.Pairs))
	}
	for _, p := range res.Pairs {
		if p.ThrA <= 0 || p.ThrB <= 0 {
			t.Errorf("%s vs %s: dead flow (%v, %v)", p.LabelA, p.LabelB, p.ThrA, p.ThrB)
		}
	}
	// Cubic (loss-based) should out-grab Vegas (delay-based).
	cv := res.Pairs[3]
	if cv.Ratio < 1 {
		t.Errorf("cubic/vegas ratio %v, want > 1", cv.Ratio)
	}
	if len(res.Table().Rows) != 4 {
		t.Error("table rows")
	}
}

func TestRunFig14WeightOrdering(t *testing.T) {
	z := sharedZoo()
	s := NewSchemes(z)
	cfg := DefaultCompeteConfig()
	cfg.DurationSec = 16
	cfg.MeasureFrom = 6
	res := RunFig14(s, cfg, []float64{20, 60})
	if len(res.Ratios) != len(Fig14Weights) {
		t.Fatalf("variants = %d", len(res.Ratios))
	}
	for wi, ratios := range res.Ratios {
		for ri, r := range ratios {
			if r <= 0 || math.IsNaN(r) {
				t.Errorf("w%d rtt[%d]: ratio %v", wi+1, ri, r)
			}
		}
	}
	// The probe-restart/pacing-floor machinery must prevent total
	// starvation: no flow may fall below ~1% of its competitor. The
	// paper's 0.43-2.04 band needs full-scale training; the Standard
	// zoo benches report the measured band.
	for wi, ratios := range res.Ratios {
		for _, r := range ratios {
			if r < 0.01 || r > 100 {
				t.Errorf("w%d: starvation-level ratio %v", wi+1, r)
			}
		}
	}
}

func TestRunFig15AllSchemesPresent(t *testing.T) {
	z := sharedZoo()
	s := NewSchemes(z)
	cfg := DefaultCompeteConfig()
	cfg.DurationSec = 16
	cfg.MeasureFrom = 6
	res := RunFig15(s, cfg, []float64{20, 80})
	want := []string{"mocc-throughput", "mocc-balance", "mocc-latency", "aurora",
		"vegas", "bbr", "copa", "pcc-allegro", "pcc-vivace"}
	for _, name := range want {
		ratios, ok := res.Ratios[name]
		if !ok || len(ratios) != 2 {
			t.Fatalf("%s: missing or incomplete ratios %v", name, ratios)
		}
		for _, r := range ratios {
			if math.IsNaN(r) || r < 0 {
				t.Errorf("%s: invalid friendliness ratio %v", name, r)
			}
		}
	}
	// The throughput-weighted MOCC variant must not be starved to zero by
	// Cubic — cross-traffic training exists precisely to prevent that.
	for _, r := range res.Ratios["mocc-throughput"] {
		if r < 0.02 {
			t.Errorf("mocc-throughput starved against cubic: ratio %v", r)
		}
	}
	if _, ok := res.Ratios["cubic"]; ok {
		t.Error("cubic should be the reference, not a competitor")
	}
}

func TestRunFig16OmegaSweep(t *testing.T) {
	res := RunFig16(Fig16Config{Omegas: []int{3, 6}, EvalObjectives: 6, EvalSteps: 60, Seed: 2})
	if len(res.Rewards[3]) != 6 || len(res.Rewards[6]) != 6 {
		t.Fatalf("samples: %d/%d", len(res.Rewards[3]), len(res.Rewards[6]))
	}
	if res.TrainIters[6] <= res.TrainIters[3] {
		t.Errorf("larger omega should need more iterations: %d vs %d",
			res.TrainIters[6], res.TrainIters[3])
	}
	if len(res.Table().Rows) != 2 {
		t.Error("table rows")
	}
}

func TestRunFig18PPOBeatsDQN(t *testing.T) {
	z := sharedZoo()
	res := RunFig18(z, Fig18Config{EvalObjectives: 6, EvalConditions: 2, EvalSteps: 80, Seed: 4})
	if len(res.PPORewards) != 12 || len(res.DQNRewards) != 12 {
		t.Fatalf("samples: %d/%d", len(res.PPORewards), len(res.DQNRewards))
	}
	ppoMean := stats.Mean(res.PPORewards)
	dqnMean := stats.Mean(res.DQNRewards)
	// The paper reports ~3x at full training scale; at unit-test scale we
	// require both variants to produce working policies and record the
	// comparison (the Standard-scale bench reports the real gap).
	if ppoMean < 0.35 {
		t.Errorf("PPO mean reward %v — model not functional", ppoMean)
	}
	if dqnMean < 0 || dqnMean > 1 {
		t.Errorf("DQN mean reward %v out of range", dqnMean)
	}
}

func TestRunFig19SpeedupOrdering(t *testing.T) {
	cfg := DefaultFig19Config()
	cfg.Omega = 6
	cfg.ItersPerObjective = 4
	cfg.RolloutSteps = 128
	cfg.EpisodeLen = 64
	res, err := RunFig19(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Transfer performs strictly fewer iterations than individual
	// training; that is the structural speedup.
	if res.TransferIters >= res.IndividualIters {
		t.Errorf("transfer iters %d not below individual %d",
			res.TransferIters, res.IndividualIters)
	}
	if res.SpeedupTransfer <= 1 {
		t.Errorf("transfer speedup %v <= 1", res.SpeedupTransfer)
	}
	if len(res.Table().Rows) != 3 {
		t.Error("table rows")
	}
}

func TestZooDeterminism(t *testing.T) {
	a := NewZoo(Quick, 99)
	b := NewZoo(Quick, 99)
	ma := a.MOCC()
	mb := b.MOCC()
	netObs := make([]float64, 30)
	netObs[0] = 0.5
	w := objective.ThroughputPref
	if ma.ActFor(w, netObs) != mb.ActFor(w, netObs) {
		t.Error("same-seed zoos trained different MOCC models")
	}
}

func TestNearestEnhancedPicksClosest(t *testing.T) {
	z := sharedZoo()
	objs := z.EnhancedAurora()
	if len(objs) == 0 {
		t.Fatal("no enhanced models")
	}
	// Asking for an exact training objective returns that model.
	agent := z.NearestEnhanced(objs[0])
	if agent == nil {
		t.Fatal("nil agent")
	}
}
