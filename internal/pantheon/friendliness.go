package pantheon

import (
	"fmt"

	"mocc/internal/cc"
	"mocc/internal/netsim"
	"mocc/internal/objective"
	"mocc/internal/trace"
)

// CompeteConfig parameterizes a two-flow competition (Figures 13-15).
type CompeteConfig struct {
	BandwidthMbps float64
	RTTms         float64
	BDPMultiple   float64
	DurationSec   float64
	// MeasureFrom discards the ramp-up before computing the ratio.
	MeasureFrom float64
	Seed        int64
	// Workers bounds the scenario scheduler's fan-out over the competition
	// grids of RunFig14 and RunFig15 (0 = GOMAXPROCS, 1 = serial); results
	// are byte-identical at any worker count.
	Workers int
}

// DefaultCompeteConfig is the paper's friendliness setup: 20 Mbps, 20 ms,
// 1xBDP.
func DefaultCompeteConfig() CompeteConfig {
	return CompeteConfig{
		BandwidthMbps: 20,
		RTTms:         20,
		BDPMultiple:   1,
		DurationSec:   30,
		MeasureFrom:   10,
		Seed:          1,
	}
}

// CompeteResult reports a pairwise competition.
type CompeteResult struct {
	LabelA, LabelB string
	ThrA, ThrB     float64 // Mbps over the measurement window
	// Ratio is ThrA / ThrB — the friendliness ratio when B is the
	// reference flow (Cubic in Figure 15).
	Ratio float64
	// SeriesA/B are per-second Mbps (the Figure 13 panels).
	SeriesA, SeriesB []float64
}

// Compete runs flow A and flow B together on one bottleneck.
func Compete(algA, algB cc.Algorithm, labelA, labelB string, cfg CompeteConfig) CompeteResult {
	link := FairnessConfig{
		BandwidthMbps: cfg.BandwidthMbps,
		RTTms:         cfg.RTTms,
		BDPMultiple:   cfg.BDPMultiple,
	}.link()
	n := netsim.NewNetwork(link, cfg.Seed)
	fa := n.AddFlow(netsim.FlowConfig{Alg: algA, Label: labelA, Seed: cfg.Seed})
	fb := n.AddFlow(netsim.FlowConfig{Alg: algB, Label: labelB, Seed: cfg.Seed + 1})
	n.Run(cfg.DurationSec)

	thrA := trace.PktsPerSecToMbps(fa.AvgThroughput(cfg.MeasureFrom, cfg.DurationSec), 1500)
	thrB := trace.PktsPerSecToMbps(fb.AvgThroughput(cfg.MeasureFrom, cfg.DurationSec), 1500)
	ratio := 0.0
	if thrB > 0 {
		ratio = thrA / thrB
	}
	toMbps := func(xs []float64) []float64 {
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = trace.PktsPerSecToMbps(x, 1500)
		}
		return out
	}
	return CompeteResult{
		LabelA: labelA, LabelB: labelB,
		ThrA: thrA, ThrB: thrB, Ratio: ratio,
		SeriesA: toMbps(fa.ThroughputSeries(1, cfg.DurationSec)),
		SeriesB: toMbps(fb.ThroughputSeries(1, cfg.DurationSec)),
	}
}

// Fig13Result holds the four pairwise competitions of Figure 13.
type Fig13Result struct {
	Pairs []CompeteResult
}

// RunFig13 runs the paper's pairwise MOCC-variant competitions plus the
// Cubic-vs-Vegas reference panel.
func RunFig13(s *Schemes, cfg CompeteConfig) Fig13Result {
	mk := func(name string, w objective.Weights) cc.Algorithm {
		return s.MOCCAlgorithm(name, w)
	}
	var res Fig13Result
	res.Pairs = append(res.Pairs,
		Compete(mk("mocc-throughput", objective.ThroughputPref),
			mk("mocc-balance", objective.BalancePref),
			"mocc-throughput", "mocc-balance", cfg),
		Compete(mk("mocc-throughput", objective.ThroughputPref),
			mk("mocc-latency", objective.LatencyPref),
			"mocc-throughput", "mocc-latency", cfg),
		Compete(mk("mocc-latency", objective.LatencyPref),
			mk("mocc-balance", objective.BalancePref),
			"mocc-latency", "mocc-balance", cfg),
		Compete(cc.NewCubic(), cc.NewVegas(), "cubic", "vegas", cfg),
	)
	return res
}

// Table renders Figure 13.
func (r Fig13Result) Table() Table {
	t := Table{
		Title:  "Figure 13 pairwise competitions (Mbps)",
		Header: []string{"flow A", "flow B", "thr A", "thr B", "A/B"},
	}
	for _, p := range r.Pairs {
		t.Add(p.LabelA, p.LabelB,
			fmt.Sprintf("%.2f", p.ThrA),
			fmt.Sprintf("%.2f", p.ThrB),
			fmt.Sprintf("%.2f", p.Ratio))
	}
	return t
}

// Fig14Weights are the six MOCC weight variants of Figure 14, ordered from
// most aggressive (w1) to most deferential (w6).
var Fig14Weights = []objective.Weights{
	{Thr: 0.8, Lat: 0.1, Loss: 0.1},
	{Thr: 0.6, Lat: 0.3, Loss: 0.1},
	{Thr: 0.5, Lat: 0.3, Loss: 0.2},
	{Thr: 0.2, Lat: 0.4, Loss: 0.4},
	{Thr: 0.1, Lat: 0.8, Loss: 0.1},
	{Thr: 0.1, Lat: 0.1, Loss: 0.8},
}

// Fig14Result maps each weight variant to its throughput ratio against the
// balanced MOCC reference flow, across RTTs.
type Fig14Result struct {
	RTTms  []float64
	Ratios [][]float64 // [variant][rtt]
}

// RunFig14 competes each weight variant against MOCC-Balance while varying
// the RTT from 10 to 90 ms (20 Mbps link), reproducing the 0.43-2.04
// throughput-ratio spread.
func RunFig14(s *Schemes, cfg CompeteConfig, rtts []float64) Fig14Result {
	if len(rtts) == 0 {
		rtts = []float64{10, 30, 50, 70, 90}
	}
	res := Fig14Result{RTTms: rtts, Ratios: make([][]float64, len(Fig14Weights))}
	// Specialize every weight variant serially first (the zoo's adaptation
	// seeds depend on registration order), matching the serial harness's
	// first-use order: w1, balance, w2, ...
	s.zoo.MOCCAdapted(Fig14Weights[0], 0)
	s.zoo.MOCCAdapted(objective.BalancePref, 0)
	for _, w := range Fig14Weights[1:] {
		s.zoo.MOCCAdapted(w, 0)
	}
	for wi := range res.Ratios {
		res.Ratios[wi] = make([]float64, len(rtts))
	}
	Runner{Workers: cfg.Workers}.Each(len(Fig14Weights)*len(rtts), func(job int) {
		wi, ri := job/len(rtts), job%len(rtts)
		c := cfg
		c.RTTms = rtts[ri]
		r := Compete(
			s.MOCCAlgorithm(fmt.Sprintf("mocc-w%d", wi+1), Fig14Weights[wi]),
			s.MOCCAlgorithm("mocc-balance", objective.BalancePref),
			fmt.Sprintf("w%d", wi+1), "balance", c)
		res.Ratios[wi][ri] = r.Ratio
	})
	return res
}

// Table renders Figure 14.
func (r Fig14Result) Table() Table {
	header := []string{"variant"}
	for _, rtt := range r.RTTms {
		header = append(header, fmt.Sprintf("%gms", rtt))
	}
	t := Table{Title: "Figure 14 MOCC weight-variant throughput ratio vs balance", Header: header}
	for wi, ratios := range r.Ratios {
		row := []string{fmt.Sprintf("w%d %v", wi+1, Fig14Weights[wi])}
		for _, x := range ratios {
			row = append(row, fmt.Sprintf("%.2f", x))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig15Result maps each scheme to its friendliness ratio against a Cubic
// flow across RTTs: delivery rate of the scheme / delivery rate of Cubic.
type Fig15Result struct {
	RTTms  []float64
	Ratios map[string][]float64
}

// RunFig15 evaluates every scheme (plus three MOCC variants) against TCP
// Cubic across RTTs 20-120 ms.
func RunFig15(s *Schemes, cfg CompeteConfig, rtts []float64) Fig15Result {
	if len(rtts) == 0 {
		rtts = []float64{20, 40, 60, 80, 100, 120}
	}
	type entry struct {
		name    string
		factory func() cc.Algorithm
	}
	entries := []entry{
		{"mocc-throughput", func() cc.Algorithm { return s.MOCCAlgorithm("mocc-throughput", objective.ThroughputPref) }},
		{"mocc-balance", func() cc.Algorithm { return s.MOCCAlgorithm("mocc-balance", objective.BalancePref) }},
		{"mocc-latency", func() cc.Algorithm { return s.MOCCAlgorithm("mocc-latency", objective.LatencyPref) }},
		{"aurora", s.AuroraThroughputAlgorithm},
	}
	for _, f := range s.Baselines() {
		factory := f
		name := factory().Name()
		if name == "cubic" {
			continue // the reference flow
		}
		entries = append(entries, entry{name, func() cc.Algorithm { return factory() }})
	}

	// Train the learned schemes serially, then fan the competition grid
	// out over the scenario scheduler.
	s.zoo.MOCCAdapted(objective.ThroughputPref, 0)
	s.zoo.MOCCAdapted(objective.BalancePref, 0)
	s.zoo.MOCCAdapted(objective.LatencyPref, 0)
	s.zoo.AuroraThroughput()
	res := Fig15Result{RTTms: rtts, Ratios: map[string][]float64{}}
	for _, e := range entries {
		res.Ratios[e.name] = make([]float64, len(rtts))
	}
	Runner{Workers: cfg.Workers}.Each(len(entries)*len(rtts), func(job int) {
		ei, ri := job/len(rtts), job%len(rtts)
		c := cfg
		c.RTTms = rtts[ri]
		r := Compete(entries[ei].factory(), cc.NewCubic(), entries[ei].name, "cubic", c)
		res.Ratios[entries[ei].name][ri] = r.Ratio
	})
	return res
}

// Table renders Figure 15.
func (r Fig15Result) Table() Table {
	header := []string{"scheme"}
	for _, rtt := range r.RTTms {
		header = append(header, fmt.Sprintf("%gms", rtt))
	}
	t := Table{Title: "Figure 15 friendliness ratio vs Cubic", Header: header}
	names := make([]string, 0, len(r.Ratios))
	for n := range r.Ratios {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		row := []string{n}
		for _, x := range r.Ratios[n] {
			row = append(row, fmt.Sprintf("%.2f", x))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
