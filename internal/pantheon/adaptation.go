package pantheon

import (
	"fmt"

	"mocc/internal/core"
	"mocc/internal/gym"
	"mocc/internal/objective"
	"mocc/internal/rl"
	"mocc/internal/trace"
)

// Fig7Config parameterizes the quick-adaptation experiment (§6.2).
type Fig7Config struct {
	// OldObjective is the application the model already serves; the
	// NewObjective arrives online.
	OldObjective objective.Weights
	NewObjective objective.Weights
	// Iters is the adaptation horizon (both MOCC and Aurora).
	Iters int
	// SnapshotEvery controls the Figure 7(b) old-application probes.
	SnapshotEvery int
	// EvalSteps is the per-probe evaluation length.
	EvalSteps int
	Seed      int64
}

// DefaultFig7Config mirrors the paper: adapt from a throughput-centric old
// app to a latency-centric new one.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{
		OldObjective:  objective.ThroughputPref,
		NewObjective:  objective.Weights{Thr: 0.2, Lat: 0.7, Loss: 0.1},
		Iters:         40,
		SnapshotEvery: 8,
		EvalSteps:     150,
		Seed:          5,
	}
}

// Fig7Result captures both panels.
type Fig7Result struct {
	// MOCCCurve / AuroraCurve are the new-objective reward learning curves
	// (Figure 7a).
	MOCCCurve   []float64
	AuroraCurve []float64
	// MOCCConverge / AuroraConverge are 99%-gain convergence iterations
	// (-1 = never).
	MOCCConverge   int
	AuroraConverge int
	// Speedup is AuroraConverge / MOCCConverge when both converge.
	Speedup float64
	// InitialGain is MOCC's first-iteration reward over Aurora's.
	InitialGain float64
	// OldAppMOCC / OldAppAurora are the old-objective rewards measured at
	// the snapshot points (Figure 7b).
	SnapshotIters []int
	OldAppMOCC    []float64
	OldAppAurora  []float64
}

// RunFig7 reproduces Figures 7(a) and 7(b): MOCC adapts its pre-trained
// multi-objective model with requirement replay, while Aurora re-trains its
// single-objective model from its old-app state and forgets the old
// application.
func RunFig7(z *Zoo, cfg Fig7Config) Fig7Result {
	envs := z.Envs()
	evalCond := trace.Condition{BandwidthMbps: 3, LatencyMs: 30, QueuePkts: 500, LossRate: 0.005}
	evalEnv := func(seed int64) *gym.Env {
		return gym.New(gym.FromCondition(evalCond, 1500, seed))
	}

	var res Fig7Result
	res.MOCCConverge, res.AuroraConverge = -1, -1

	// --- MOCC: transfer from the offline model with replay. ---
	moccModel := z.MOCC().Clone()
	acfg := core.DefaultAdaptConfig()
	acfg.Envs = envs
	acfg.MaxIters = cfg.Iters
	acfg.RolloutSteps = z.Params().rolloutSteps
	acfg.EpisodeLen = z.Params().episodeLen
	acfg.Seed = cfg.Seed
	adapter, err := core.NewAdapter(moccModel, acfg)
	if err != nil {
		panic("pantheon: fig7 adapter: " + err.Error())
	}
	adapter.Register(cfg.OldObjective)

	var moccOld []float64
	var snapIters []int
	moccRes := adapter.AdaptWithSnapshots(cfg.NewObjective, cfg.SnapshotEvery, func(iter int, snap *core.Model) {
		snapIters = append(snapIters, iter)
		moccOld = append(moccOld, evalModel(snap, evalEnv(cfg.Seed+int64(iter)), cfg.OldObjective, cfg.EvalSteps))
	})
	res.MOCCCurve = moccRes.Curve
	res.MOCCConverge = moccRes.ConvergedAt
	res.SnapshotIters = snapIters
	res.OldAppMOCC = moccOld

	// --- Aurora: continue training the old-app model on the new
	// objective (no preference input, no replay). ---
	auroraAgent := rl.NewPlainAgent(3*core.HistoryLen, cfg.Seed+1)
	// Start from the old application's trained weights: clone the zoo's
	// throughput Aurora.
	if err := auroraAgent.CopyFrom(z.AuroraThroughput()); err != nil {
		panic("pantheon: fig7 aurora clone: " + err.Error())
	}
	ppoCfg := z.Params().moccCfg.PPO
	ppoCfg.Seed = cfg.Seed + 2
	ppo := rl.NewPPO(auroraAgent, ppoCfg)
	ccfg := rl.CollectConfig{Steps: z.Params().rolloutSteps, EpisodeLen: z.Params().episodeLen}

	var auroraOld []float64
	for i := 0; i < cfg.Iters; i++ {
		ro := rl.Collect(auroraAgent, envs, cfg.NewObjective, ccfg, cfg.Seed+int64(i)*13)
		st := ppo.Update(ro)
		res.AuroraCurve = append(res.AuroraCurve, st.MeanReward)
		if cfg.SnapshotEvery > 0 && (i+1)%cfg.SnapshotEvery == 0 {
			auroraOld = append(auroraOld,
				rl.EvaluateActor(auroraAgent.Act, evalEnv(cfg.Seed+int64(i)), cfg.OldObjective, false, cfg.EvalSteps))
		}
	}
	res.OldAppAurora = auroraOld
	res.AuroraConverge = core.ConvergenceIndex(res.AuroraCurve, 0.99, 5)

	if res.MOCCConverge > 0 && res.AuroraConverge > 0 {
		res.Speedup = float64(res.AuroraConverge) / float64(res.MOCCConverge)
	}
	if len(res.MOCCCurve) > 0 && len(res.AuroraCurve) > 0 && res.AuroraCurve[0] > 0 {
		res.InitialGain = res.MOCCCurve[0] / res.AuroraCurve[0]
	}
	return res
}

// Table renders the Figure 7 headline numbers.
func (r Fig7Result) Table() Table {
	t := Table{
		Title:  "Figure 7 quick adaptation",
		Header: []string{"metric", "mocc", "aurora"},
	}
	t.Add("converge iteration", fmt.Sprint(r.MOCCConverge), fmt.Sprint(r.AuroraConverge))
	if r.Speedup > 0 {
		t.Add("speedup", fmt.Sprintf("%.1fx", r.Speedup), "1.0x")
	}
	if len(r.MOCCCurve) > 0 && len(r.AuroraCurve) > 0 {
		t.Add("initial reward", fmt.Sprintf("%.3f", r.MOCCCurve[0]), fmt.Sprintf("%.3f", r.AuroraCurve[0]))
		t.Add("final reward",
			fmt.Sprintf("%.3f", r.MOCCCurve[len(r.MOCCCurve)-1]),
			fmt.Sprintf("%.3f", r.AuroraCurve[len(r.AuroraCurve)-1]))
	}
	if len(r.OldAppMOCC) > 0 && len(r.OldAppAurora) > 0 {
		t.Add("old-app reward (end)",
			fmt.Sprintf("%.3f", r.OldAppMOCC[len(r.OldAppMOCC)-1]),
			fmt.Sprintf("%.3f", r.OldAppAurora[len(r.OldAppAurora)-1]))
	}
	return t
}
