package pantheon

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunnerEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var hits [157]atomic.Int32
		Runner{Workers: workers}.Each(len(hits), func(i int) {
			hits[i].Add(1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunnerEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	var mu sync.Mutex
	Runner{Workers: workers}.Each(64, func(int) {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent tasks, want <= %d", p, workers)
	}
}

func TestRunnerEachZeroTasks(t *testing.T) {
	ran := false
	Runner{Workers: 4}.Each(0, func(int) { ran = true })
	if ran {
		t.Error("task ran for n=0")
	}
}

// sweepTables renders a sweep result to bytes for exact comparison.
func sweepTables(t *testing.T, res SweepResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	util, lat := res.Tables()
	if err := util.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := lat.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepParallelDeterminism is the scheduler's acceptance check: the
// parallel sweep must render byte-identical tables to the serial harness.
func TestSweepParallelDeterminism(t *testing.T) {
	z := sharedZoo()
	s := NewSchemes(z)
	cfg := SweepConfig{Axis: AxisBandwidth, Steps: 40, Seed: 3}

	cfg.Workers = 1
	serial := sweepTables(t, RunSweep(s, cfg))
	cfg.Workers = 4
	parallel := sweepTables(t, RunSweep(s, cfg))
	if !bytes.Equal(serial, parallel) {
		t.Errorf("serial and 4-worker sweeps diverge:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestFig14ParallelDeterminism checks the competition grid under the
// scheduler.
func TestFig14ParallelDeterminism(t *testing.T) {
	z := sharedZoo()
	s := NewSchemes(z)
	cfg := DefaultCompeteConfig()
	cfg.DurationSec = 10
	cfg.MeasureFrom = 4

	cfg.Workers = 1
	serial := RunFig14(s, cfg, []float64{20, 60})
	cfg.Workers = 4
	parallel := RunFig14(s, cfg, []float64{20, 60})
	for wi := range serial.Ratios {
		for ri := range serial.Ratios[wi] {
			if serial.Ratios[wi][ri] != parallel.Ratios[wi][ri] {
				t.Errorf("w%d rtt[%d]: serial %v, parallel %v",
					wi+1, ri, serial.Ratios[wi][ri], parallel.Ratios[wi][ri])
			}
		}
	}
}

// TestFig12ParallelDeterminism checks the fairness networks under the
// scheduler.
func TestFig12ParallelDeterminism(t *testing.T) {
	z := sharedZoo()
	s := NewSchemes(z)
	cfg := DefaultFairnessConfig()
	cfg.Flows = 2
	cfg.StaggerSec = 5
	cfg.DurationSec = 20

	cfg.Workers = 1
	serial := RunFig12(s, cfg)
	cfg.Workers = 4
	parallel := RunFig12(s, cfg)
	if len(serial.Jain) != len(parallel.Jain) {
		t.Fatalf("scheme count %d vs %d", len(serial.Jain), len(parallel.Jain))
	}
	for name, xs := range serial.Jain {
		ys, ok := parallel.Jain[name]
		if !ok || len(xs) != len(ys) {
			t.Fatalf("%s: sample count mismatch", name)
		}
		for i := range xs {
			if xs[i] != ys[i] {
				t.Errorf("%s sample %d: serial %v, parallel %v", name, i, xs[i], ys[i])
			}
		}
	}
}

// BenchmarkRunSweepSerial and BenchmarkRunSweepWorkers4 measure the
// scheduler's wall-clock effect on one Figure 5 panel (run on a
// multi-core machine to see the fan-out; both collapse to the serial path
// when GOMAXPROCS=1).
func BenchmarkRunSweepSerial(b *testing.B) {
	s := NewSchemes(zooForBench(b))
	cfg := SweepConfig{Axis: AxisBandwidth, Steps: 120, Seed: 1, Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunSweep(s, cfg)
	}
}

func BenchmarkRunSweepWorkers4(b *testing.B) {
	s := NewSchemes(zooForBench(b))
	cfg := SweepConfig{Axis: AxisBandwidth, Steps: 120, Seed: 1, Workers: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunSweep(s, cfg)
	}
}

// zooForBench shares the test zoo and pre-trains every model RunSweep needs
// outside the timed region.
func zooForBench(b *testing.B) *Zoo {
	b.Helper()
	z := sharedZoo()
	s := NewSchemes(z)
	RunSweep(s, SweepConfig{Axis: AxisBandwidth, Steps: 1, Seed: 1, Workers: 1})
	return z
}
