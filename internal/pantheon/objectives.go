package pantheon

import (
	"fmt"
	"math/rand"
	"sort"

	"mocc/internal/cc"
	"mocc/internal/core"
	"mocc/internal/gym"
	"mocc/internal/objective"
	"mocc/internal/stats"
	"mocc/internal/trace"
)

// Fig6Config parameterizes the 100-objective experiment (§6.1).
type Fig6Config struct {
	// Objectives is the number of uniformly sampled weight vectors (100 in
	// the paper).
	Objectives int
	// Conditions is the number of network conditions (10 in the paper).
	Conditions int
	// Steps is the evaluation length per scenario in monitor intervals.
	Steps int
	Seed  int64
	// Workers bounds the scenario scheduler's fan-out over the
	// objective x condition grid (0 = GOMAXPROCS, 1 = serial); results are
	// byte-identical at any worker count.
	Workers int
}

// Fig6Result maps each scheme to its reward samples over all scenarios; the
// CDFs of these samples are the Figure 6 curves.
type Fig6Result struct {
	Rewards map[string][]float64
}

// rewardOfRun converts a run summary into the Equation 2 reward under w.
func rewardOfRun(sum RunSummary, w objective.Weights) float64 {
	oThr := stats.Clamp(sum.Utilization, 0, 1)
	oLat := stats.Clamp(1/sum.LatencyRatio, 0, 1)
	oLoss := stats.Clamp(1-sum.LossRate, 0, 1)
	return w.Reward(oThr, oLat, oLoss)
}

// RunFig6 evaluates MOCC (offline model only, no adaptation), enhanced
// Aurora (nearest pre-trained model per objective), vanilla Aurora, and all
// baselines over Objectives x Conditions scenarios.
func RunFig6(s *Schemes, cfg Fig6Config) Fig6Result {
	if cfg.Objectives <= 0 {
		cfg.Objectives = 100
	}
	if cfg.Conditions <= 0 {
		cfg.Conditions = 10
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 200
	}
	objs := objective.UniformObjectives(cfg.Objectives, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	ranges := trace.TestingRanges()
	conds := make([]trace.Condition, cfg.Conditions)
	for i := range conds {
		conds[i] = ranges.Sample(rng)
	}

	// Train every learned model serially before fanning out (lazy zoo
	// training must happen in a deterministic order).
	s.zoo.AuroraThroughput()
	s.zoo.MOCC()
	s.zoo.EnhancedAurora()

	run := Runner{Workers: cfg.Workers}
	baseFactories := s.Baselines()
	baseNames := make([]string, len(baseFactories))
	for i, f := range baseFactories {
		baseNames[i] = f().Name()
	}

	// Phase 1: schemes whose behaviour is objective-independent run once
	// per condition and are scored under every objective afterwards.
	nCondSchemes := len(baseFactories) + 1 // + vanilla Aurora
	condSums := make([][]RunSummary, len(conds))
	for ci := range condSums {
		condSums[ci] = make([]RunSummary, nCondSchemes)
	}
	run.Each(len(conds)*nCondSchemes, func(job int) {
		ci, bi := job/nCondSchemes, job%nCondSchemes
		seed := cfg.Seed + int64(ci)*101
		if bi < len(baseFactories) {
			condSums[ci][bi] = RunScheme(baseFactories[bi](), conds[ci], cfg.Steps, seed)
		} else {
			condSums[ci][bi] = RunScheme(s.AuroraThroughputAlgorithm(), conds[ci], cfg.Steps, seed)
		}
	})

	// Phase 2: the objective-conditioned schemes cover the full
	// objective x condition grid.
	moccSums := make([]RunSummary, len(conds)*len(objs))
	enhSums := make([]RunSummary, len(conds)*len(objs))
	run.Each(len(conds)*len(objs), func(job int) {
		ci, oi := job/len(objs), job%len(objs)
		w := objs[oi]
		seed := cfg.Seed + int64(ci)*101 + int64(oi)

		// MOCC conditions on the objective using the offline model alone —
		// §6.1 disables online adaptation for this figure.
		moccSums[job] = RunScheme(s.MOCCOfflineAlgorithm("mocc", w), conds[ci], cfg.Steps, seed)

		// Enhanced Aurora picks the nearest pre-trained model; the worker
		// drives a private clone of it.
		agent := s.zoo.NearestEnhanced(w).Clone()
		enh := cc.NewRLRate("enhanced-aurora", cc.PolicyFunc(agent.Act), core.HistoryLen)
		enhSums[job] = RunScheme(enh, conds[ci], cfg.Steps, seed)
	})

	res := Fig6Result{Rewards: map[string][]float64{}}
	record := func(name string, r float64) {
		res.Rewards[name] = append(res.Rewards[name], r)
	}
	for ci := range conds {
		for oi, w := range objs {
			for bi, name := range baseNames {
				record(name, rewardOfRun(condSums[ci][bi], w))
			}
			record("aurora", rewardOfRun(condSums[ci][nCondSchemes-1], w))
			record("mocc", rewardOfRun(moccSums[ci*len(objs)+oi], w))
			record("enhanced-aurora", rewardOfRun(enhSums[ci*len(objs)+oi], w))
		}
	}
	return res
}

// MeanReward returns the mean reward for a scheme.
func (r Fig6Result) MeanReward(scheme string) float64 {
	return stats.Mean(r.Rewards[scheme])
}

// Table renders Figure 6 as reward quantiles per scheme.
func (r Fig6Result) Table() Table {
	t := Table{
		Title:  "Figure 6 reward distribution over objectives x conditions",
		Header: []string{"scheme", "p10", "p50", "mean", "p90"},
	}
	names := make([]string, 0, len(r.Rewards))
	for name := range r.Rewards {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		xs := r.Rewards[name]
		p10, _ := stats.Percentile(xs, 10)
		p50, _ := stats.Percentile(xs, 50)
		p90, _ := stats.Percentile(xs, 90)
		t.Add(name,
			fmt.Sprintf("%.3f", p10),
			fmt.Sprintf("%.3f", p50),
			fmt.Sprintf("%.3f", stats.Mean(xs)),
			fmt.Sprintf("%.3f", p90))
	}
	return t
}

// Fig16Config parameterizes the ω hyperparameter sweep (§6.5).
type Fig16Config struct {
	// Omegas lists the landmark counts to compare (paper: 3, 6, 10/12, 36,
	// 171 — we use the exact lattice sizes).
	Omegas []int
	// EvalObjectives/EvalSteps control the reward CDF evaluation.
	EvalObjectives int
	EvalSteps      int
	// TrainIterBudget is the shared two-phase schedule scale per ω.
	Seed int64
	// Workers bounds the scenario scheduler's fan-out over the evaluation
	// passes (training stays serial); 0 = GOMAXPROCS, 1 = serial.
	Workers int
}

// Fig16Result maps ω to reward samples and training iteration counts.
type Fig16Result struct {
	Rewards    map[int][]float64
	TrainIters map[int]int
}

// RunFig16 pre-trains MOCC with different ω and evaluates each model's
// reward CDF over unseen objectives, reproducing the quality/time tradeoff.
func RunFig16(cfg Fig16Config) Fig16Result {
	if len(cfg.Omegas) == 0 {
		cfg.Omegas = []int{3, 6, 10}
	}
	if cfg.EvalObjectives <= 0 {
		cfg.EvalObjectives = 20
	}
	if cfg.EvalSteps <= 0 {
		cfg.EvalSteps = 150
	}
	envs := core.TrainingEnvs(trace.TrainingRanges(), core.HistoryLen)
	evalObjs := objective.UniformObjectives(cfg.EvalObjectives, cfg.Seed+9)
	evalCond := trace.Condition{BandwidthMbps: 3, LatencyMs: 30, QueuePkts: 500, LossRate: 0.005}

	res := Fig16Result{Rewards: map[int][]float64{}, TrainIters: map[int]int{}}
	for _, omega := range cfg.Omegas {
		model := core.NewModel(core.HistoryLen, cfg.Seed)
		p := params(Quick, cfg.Seed)
		tc := p.moccCfg
		tc.Omega = omega
		tc.Envs = envs
		trainer, err := core.NewOfflineTrainer(model, tc)
		if err != nil {
			panic("pantheon: fig16 config: " + err.Error())
		}
		tr, err := trainer.Run()
		if err != nil {
			panic("pantheon: fig16 training: " + err.Error())
		}
		res.TrainIters[omega] = tr.TotalIters()

		// Evaluation passes are independent: fan them out, each worker
		// driving a frozen copy of the trained model.
		rewards := make([]float64, len(evalObjs))
		Runner{Workers: cfg.Workers}.Each(len(evalObjs), func(oi int) {
			env := gym.New(gym.FromCondition(evalCond, 1500, cfg.Seed+int64(oi)))
			rewards[oi] = evalModel(model.Clone(), env, evalObjs[oi], cfg.EvalSteps)
		})
		res.Rewards[omega] = rewards
	}
	return res
}

// evalModel runs the deterministic MOCC policy and returns mean reward.
func evalModel(m *core.Model, env *gym.Env, w objective.Weights, steps int) float64 {
	env.Reset()
	var sum float64
	for i := 0; i < steps; i++ {
		a := stats.Clamp(m.ActFor(w, env.Observation()), -2, 2)
		env.ApplyAction(a)
		_, metrics := env.Step()
		oThr, oLat, oLoss := gym.RewardTerms(metrics)
		sum += w.Reward(oThr, oLat, oLoss)
	}
	return sum / float64(steps)
}

// Table renders Figure 16.
func (r Fig16Result) Table() Table {
	t := Table{
		Title:  "Figure 16 omega sweep: model quality vs training cost",
		Header: []string{"omega", "mean reward", "p10", "p90", "train iters"},
	}
	omegas := make([]int, 0, len(r.Rewards))
	for o := range r.Rewards {
		omegas = append(omegas, o)
	}
	sort.Ints(omegas)
	for _, o := range omegas {
		xs := r.Rewards[o]
		p10, _ := stats.Percentile(xs, 10)
		p90, _ := stats.Percentile(xs, 90)
		t.Add(fmt.Sprint(o),
			fmt.Sprintf("%.3f", stats.Mean(xs)),
			fmt.Sprintf("%.3f", p10),
			fmt.Sprintf("%.3f", p90),
			fmt.Sprint(r.TrainIters[o]))
	}
	return t
}

// Fig18Config parameterizes the PPO vs DQN ablation (§6.5).
type Fig18Config struct {
	EvalObjectives int
	EvalConditions int
	EvalSteps      int
	Seed           int64
}

// Fig18Result holds reward samples for MOCC-PPO and MOCC-DQN.
type Fig18Result struct {
	PPORewards []float64
	DQNRewards []float64
}

// RunFig18 evaluates the PPO-trained MOCC model against the DQN-trained
// variant across objectives and conditions: the discrete action space of
// DQN yields visibly coarser rate control and lower reward.
func RunFig18(z *Zoo, cfg Fig18Config) Fig18Result {
	if cfg.EvalObjectives <= 0 {
		cfg.EvalObjectives = 10
	}
	if cfg.EvalConditions <= 0 {
		cfg.EvalConditions = 3
	}
	if cfg.EvalSteps <= 0 {
		cfg.EvalSteps = 150
	}
	ppoModel := z.MOCC()
	dqnModel := z.MOCCDQN()

	objs := objective.UniformObjectives(cfg.EvalObjectives, cfg.Seed+3)
	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	ranges := trace.TrainingRanges()

	var res Fig18Result
	for ci := 0; ci < cfg.EvalConditions; ci++ {
		cond := ranges.Sample(rng)
		for oi, w := range objs {
			seed := cfg.Seed + int64(ci)*1000 + int64(oi)
			envP := gym.New(gym.FromCondition(cond, 1500, seed))
			res.PPORewards = append(res.PPORewards, evalModel(ppoModel, envP, w, cfg.EvalSteps))

			envD := gym.New(gym.FromCondition(cond, 1500, seed))
			wLocal := w
			reward := evalActor(func(netObs []float64) float64 {
				obs := append(append([]float64{}, netObs...), wLocal.Thr, wLocal.Lat, wLocal.Loss)
				return dqnModel.Act(obs)
			}, envD, w, cfg.EvalSteps)
			res.DQNRewards = append(res.DQNRewards, reward)
		}
	}
	return res
}

// evalActor mirrors evalModel for arbitrary policies over network
// observations.
func evalActor(act func(netObs []float64) float64, env *gym.Env, w objective.Weights, steps int) float64 {
	env.Reset()
	var sum float64
	for i := 0; i < steps; i++ {
		a := stats.Clamp(act(env.Observation()), -2, 2)
		env.ApplyAction(a)
		_, metrics := env.Step()
		oThr, oLat, oLoss := gym.RewardTerms(metrics)
		sum += w.Reward(oThr, oLat, oLoss)
	}
	return sum / float64(steps)
}

// Table renders Figure 18.
func (r Fig18Result) Table() Table {
	t := Table{
		Title:  "Figure 18 MOCC-PPO vs MOCC-DQN",
		Header: []string{"variant", "mean reward", "p10", "p50", "p90"},
	}
	row := func(name string, xs []float64) {
		p10, _ := stats.Percentile(xs, 10)
		p50, _ := stats.Percentile(xs, 50)
		p90, _ := stats.Percentile(xs, 90)
		t.Add(name,
			fmt.Sprintf("%.3f", stats.Mean(xs)),
			fmt.Sprintf("%.3f", p10),
			fmt.Sprintf("%.3f", p50),
			fmt.Sprintf("%.3f", p90))
	}
	row("mocc-ppo", r.PPORewards)
	row("mocc-dqn", r.DQNRewards)
	return t
}
