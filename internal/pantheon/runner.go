package pantheon

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner is the harness's scenario scheduler: it fans independent
// simulation runs (sweep grid cells, fairness networks, pairwise
// competitions, model evaluation passes) across a bounded worker pool.
//
// Determinism contract: tasks must derive everything from their index —
// per-scenario seeds, pre-materialized (frozen) models, pre-sized result
// slots — and must not share mutable state. Under that contract the
// schedule order is unobservable, so serial and parallel execution produce
// byte-identical tables; TestSweepParallelDeterminism holds the harness to
// it.
type Runner struct {
	// Workers bounds the pool; <= 0 selects GOMAXPROCS.
	Workers int
}

// workerCount resolves the configured worker count.
func workerCount(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Each runs task(i) for every i in [0, n), using up to min(Workers, n)
// goroutines, and returns when all tasks finished. With one worker it
// degrades to a plain loop on the calling goroutine, preserving the serial
// harness exactly.
func (r Runner) Each(n int, task func(i int)) {
	workers := workerCount(r.Workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
}
