package pantheon

import (
	"fmt"

	"mocc/internal/cc"
	"mocc/internal/gym"
	"mocc/internal/objective"
	"mocc/internal/rl"
	"mocc/internal/stats"
	"mocc/internal/trace"
)

// Fig1aConfig parameterizes the motivation throughput-trace experiment:
// one-way delay 20 ms, bottleneck oscillating 20-30 Mbps, 0.02% loss (§2.2).
type Fig1aConfig struct {
	DurationSec float64
	Seed        int64
}

// Fig1aSeries is one scheme's throughput-over-time line plus the capacity
// trace.
type Fig1aSeries struct {
	Scheme  string
	TimeS   []float64
	ThrMbps []float64
}

// Fig1aResult holds the Figure 1(a) series.
type Fig1aResult struct {
	Series   []Fig1aSeries
	Capacity Fig1aSeries // the "Link bandwidth" line
}

// motivationLink returns the §2.2 simulated network: 20 ms OWD, 20-30 Mbps
// alternating bottleneck, 0.02% loss.
func motivationLink() gym.Config {
	return gym.Config{
		Bandwidth: trace.Step{
			Low:    trace.MbpsToPktsPerSec(20, 1500),
			High:   trace.MbpsToPktsPerSec(30, 1500),
			Period: 10,
		},
		LatencyMs: 20,
		QueuePkts: 500,
		LossRate:  0.0002,
	}
}

// RunFig1a reproduces Figure 1(a): CUBIC and Vegas under-utilize the varying
// link while the RL schemes (Aurora, Orca) track it.
func RunFig1a(s *Schemes, cfg Fig1aConfig) Fig1aResult {
	if cfg.DurationSec <= 0 {
		cfg.DurationSec = 50
	}
	link := motivationLink()
	link.Seed = cfg.Seed
	miSec := link.MIms / 1000
	if miSec == 0 {
		miSec = 2 * link.LatencyMs / 1000
	}
	steps := int(cfg.DurationSec / miSec)

	algs := []cc.Algorithm{
		cc.NewCubic(),
		cc.NewVegas(),
		s.AuroraThroughputAlgorithm(),
		s.OrcaAlgorithm(),
	}
	var res Fig1aResult
	for _, alg := range algs {
		env := gym.New(link)
		ms := cc.Drive(env, alg, steps, cfg.Seed)
		series := Fig1aSeries{Scheme: alg.Name()}
		for _, m := range ms {
			series.TimeS = append(series.TimeS, m.Time)
			series.ThrMbps = append(series.ThrMbps, trace.PktsPerSecToMbps(m.Throughput, 1500))
		}
		res.Series = append(res.Series, series)
	}
	// Capacity line.
	capSeries := Fig1aSeries{Scheme: "link-bandwidth"}
	for i := 0; i < steps; i++ {
		t := float64(i) * miSec
		capSeries.TimeS = append(capSeries.TimeS, t)
		capSeries.ThrMbps = append(capSeries.ThrMbps, trace.PktsPerSecToMbps(link.Bandwidth.At(t), 1500))
	}
	res.Capacity = capSeries
	return res
}

// Fig1bPoint is one scheme's throughput-delay 1-sigma ellipse (Figure 1(b)).
type Fig1bPoint struct {
	Scheme  string
	Ellipse stats.Ellipse
	// MeanThrMbps / MeanLatencyMs are the ellipse center.
	MeanThrMbps   float64
	MeanLatencyMs float64
}

// Fig1bResult holds every scheme's ellipse plus the MOCC preference range
// (the throughput-pref and latency-pref endpoints of the blue line).
type Fig1bResult struct {
	Points    []Fig1bPoint
	MOCCRange [2]Fig1bPoint // [latency-pref endpoint, throughput-pref endpoint]
}

// RunFig1b reproduces Figure 1(b): each scheme runs repeatedly on the
// motivation link; each run is one (throughput, latency) sample; the
// maximum-likelihood 2D Gaussian's 1-sigma contour summarizes the scheme.
func RunFig1b(s *Schemes, runs int, stepsPerRun int, seed int64) Fig1bResult {
	if runs <= 0 {
		runs = 8
	}
	if stepsPerRun <= 0 {
		stepsPerRun = 250
	}
	type entry struct {
		name    string
		factory func() cc.Algorithm
	}
	entries := []entry{
		{"aurora-throughput", s.AuroraThroughputAlgorithm},
		{"aurora-latency", s.AuroraLatencyAlgorithm},
		{"orca", s.OrcaAlgorithm},
	}
	for _, f := range s.Baselines() {
		factory := f
		entries = append(entries, entry{factory().Name(), func() cc.Algorithm { return factory() }})
	}

	link := motivationLink()
	measure := func(factory func() cc.Algorithm, name string) Fig1bPoint {
		var thrs, lats []float64
		for r := 0; r < runs; r++ {
			cfg := link
			cfg.Seed = seed + int64(r)
			env := gym.New(cfg)
			ms := cc.Drive(env, factory(), stepsPerRun, cfg.Seed)
			sum := Summarize(name, trace.Condition{}, ms)
			thrs = append(thrs, sum.ThroughputMbps)
			lats = append(lats, sum.AvgRTTms/2) // one-way latency as plotted
		}
		g, err := stats.FitGaussian2D(thrs, lats)
		if err != nil {
			return Fig1bPoint{Scheme: name}
		}
		return Fig1bPoint{
			Scheme:        name,
			Ellipse:       g.SigmaEllipse(1),
			MeanThrMbps:   g.MeanX,
			MeanLatencyMs: g.MeanY,
		}
	}

	var res Fig1bResult
	for _, e := range entries {
		res.Points = append(res.Points, measure(e.factory, e.name))
	}
	res.MOCCRange[0] = measure(func() cc.Algorithm {
		return s.MOCCAlgorithm("mocc-latency", objective.LatencyPref)
	}, "mocc-latency")
	res.MOCCRange[1] = measure(func() cc.Algorithm {
		return s.MOCCAlgorithm("mocc-throughput", objective.ThroughputPref)
	}, "mocc-throughput")
	return res
}

// Table renders Figure 1(b) as rows of ellipse centers.
func (r Fig1bResult) Table() Table {
	t := Table{
		Title:  "Figure 1b throughput-delay ellipses (1-sigma)",
		Header: []string{"scheme", "thr (Mbps)", "lat (ms)", "semi-major", "semi-minor"},
	}
	add := func(p Fig1bPoint) {
		t.Add(p.Scheme,
			fmt.Sprintf("%.2f", p.MeanThrMbps),
			fmt.Sprintf("%.2f", p.MeanLatencyMs),
			fmt.Sprintf("%.2f", p.Ellipse.SemiMajor),
			fmt.Sprintf("%.2f", p.Ellipse.SemiMinor))
	}
	for _, p := range r.Points {
		add(p)
	}
	add(r.MOCCRange[0])
	add(r.MOCCRange[1])
	return t
}

// Fig1cResult is the Aurora-retraining learning curve (Figure 1(c)): reward
// versus iteration when a new objective forces training from scratch.
type Fig1cResult struct {
	Curve       []float64
	ConvergedAt int
}

// RunFig1c trains a fresh Aurora from scratch on the latency objective and
// reports the learning curve and its 99%-gain convergence iteration,
// demonstrating the "takes more than one hour" problem at simulation scale.
func RunFig1c(z *Zoo, iters int) Fig1cResult {
	if iters <= 0 {
		iters = z.Params().auroraIters
	}
	_, curve := z.trainAuroraPublic(objective.LatencyPref, iters, z.Seed+77)
	return Fig1cResult{
		Curve:       curve,
		ConvergedAt: convergenceIdx(curve),
	}
}

// trainAuroraPublic exposes from-scratch Aurora training for experiments.
func (z *Zoo) trainAuroraPublic(w objective.Weights, iters int, seed int64) (*rl.PlainAgent, []float64) {
	z.mu.Lock()
	defer z.mu.Unlock()
	return z.trainAurora(w, iters, seed)
}

// convergenceIdx applies the paper's 99%-of-max-gain convergence rule.
func convergenceIdx(curve []float64) int {
	if len(curve) == 0 {
		return -1
	}
	start := curve[0]
	maxV := start
	for _, v := range curve {
		if v > maxV {
			maxV = v
		}
	}
	if maxV <= start {
		return -1
	}
	threshold := start + 0.99*(maxV-start)
	for i, v := range curve {
		if v >= threshold {
			return i
		}
	}
	return -1
}
