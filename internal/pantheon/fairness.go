package pantheon

import (
	"fmt"
	"math"

	"mocc/internal/cc"
	"mocc/internal/netsim"
	"mocc/internal/objective"
	"mocc/internal/stats"
	"mocc/internal/trace"
)

// FairnessConfig parameterizes the Figure 11/12 fairness runs: the paper
// uses a 12 Mbps, 20 ms RTT, 1xBDP dumbbell with three same-scheme flows
// starting at 100 s intervals.
type FairnessConfig struct {
	BandwidthMbps float64
	RTTms         float64
	BDPMultiple   float64
	Flows         int
	StaggerSec    float64
	DurationSec   float64
	Seed          int64
	// Workers bounds the scenario scheduler's fan-out across schemes in
	// RunFig12 (0 = GOMAXPROCS, 1 = serial); results are byte-identical at
	// any worker count.
	Workers int
}

// DefaultFairnessConfig returns the paper's setup.
func DefaultFairnessConfig() FairnessConfig {
	return FairnessConfig{
		BandwidthMbps: 12,
		RTTms:         20,
		BDPMultiple:   1,
		Flows:         3,
		StaggerSec:    100,
		DurationSec:   300,
		Seed:          1,
	}
}

// fairnessLink converts the config into a netsim bottleneck.
func (c FairnessConfig) link() netsim.LinkConfig {
	capacity := trace.MbpsToPktsPerSec(c.BandwidthMbps, 1500)
	owd := c.RTTms / 2 / 1000
	queue := int(math.Max(2, capacity*c.RTTms/1000*c.BDPMultiple))
	return netsim.LinkConfig{
		Capacity:  trace.Constant(capacity),
		OWD:       owd,
		QueuePkts: queue,
	}
}

// FairnessResult holds one scheme's Figure 11 dynamics and Figure 12 Jain
// samples.
type FairnessResult struct {
	Scheme string
	// Throughput[i] is flow i's per-second delivered Mbps series.
	Throughput [][]float64
	// JainPerSec is Jain's index computed each second over the flows
	// active at that time.
	JainPerSec []float64
}

// RunFairness runs n same-scheme flows with staggered starts and returns
// the dynamics plus per-second Jain indices.
func RunFairness(factory cc.AlgorithmFactory, schemeName string, cfg FairnessConfig) FairnessResult {
	n := netsim.NewNetwork(cfg.link(), cfg.Seed)
	flows := make([]*netsim.Flow, cfg.Flows)
	for i := 0; i < cfg.Flows; i++ {
		flows[i] = n.AddFlow(netsim.FlowConfig{
			Alg:   factory(),
			Label: fmt.Sprintf("%s-%d", schemeName, i),
			Start: float64(i) * cfg.StaggerSec,
			Seed:  cfg.Seed + int64(i),
		})
	}
	n.Run(cfg.DurationSec)

	res := FairnessResult{Scheme: schemeName}
	horizon := cfg.DurationSec
	series := make([][]float64, cfg.Flows)
	for i, f := range flows {
		pkts := f.ThroughputSeries(1, horizon)
		mbps := make([]float64, len(pkts))
		for j, p := range pkts {
			mbps[j] = trace.PktsPerSecToMbps(p, 1500)
		}
		series[i] = mbps
	}
	res.Throughput = series

	// Jain index per second over active flows.
	for sec := 0; sec < int(horizon); sec++ {
		var active []float64
		for i, f := range flows {
			started := float64(sec) >= f.Cfg.Start+2 // grace period after start
			if started && sec < len(series[i]) {
				active = append(active, series[i][sec])
			}
		}
		if len(active) >= 2 {
			res.JainPerSec = append(res.JainPerSec, stats.JainIndex(active))
		}
	}
	return res
}

// Fig12Result maps scheme name to its Jain samples (the Figure 12 CDFs).
type Fig12Result struct {
	Jain map[string][]float64
}

// RunFig12 computes Jain CDFs for every baseline plus three MOCC weight
// variants. Independent networks fan out over the scenario scheduler
// (cfg.Workers).
func RunFig12(s *Schemes, cfg FairnessConfig) Fig12Result {
	type entry struct {
		name    string
		factory cc.AlgorithmFactory
	}
	var entries []entry
	for _, f := range s.Baselines() {
		factory := f
		entries = append(entries, entry{factory().Name(), factory})
	}
	entries = append(entries, entry{"aurora", func() cc.Algorithm { return s.AuroraThroughputAlgorithm() }})
	variants := []struct {
		name string
		w    objective.Weights
	}{
		{"mocc-throughput", objective.ThroughputPref},
		{"mocc-latency", objective.LatencyPref},
		{"mocc-balance", objective.BalancePref},
	}
	for _, v := range variants {
		vLocal := v
		entries = append(entries, entry{v.name, func() cc.Algorithm {
			return s.MOCCAlgorithm(vLocal.name, vLocal.w)
		}})
	}

	// Train every learned scheme serially first (zoo adaptation seeds
	// depend on registration order), then fan the networks out.
	s.zoo.AuroraThroughput()
	for _, v := range variants {
		s.zoo.MOCCAdapted(v.w, 0)
	}
	slots := make([][]float64, len(entries))
	Runner{Workers: cfg.Workers}.Each(len(entries), func(i int) {
		fr := RunFairness(entries[i].factory, entries[i].name, cfg)
		slots[i] = fr.JainPerSec
	})

	res := Fig12Result{Jain: map[string][]float64{}}
	for i, e := range entries {
		res.Jain[e.name] = slots[i]
	}
	return res
}

// Table renders Figure 12 as Jain quantiles.
func (r Fig12Result) Table() Table {
	t := Table{
		Title:  "Figure 12 Jain fairness index",
		Header: []string{"scheme", "p10", "p50", "mean"},
	}
	names := make([]string, 0, len(r.Jain))
	for n := range r.Jain {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		xs := r.Jain[n]
		if len(xs) == 0 {
			t.Add(n, "-", "-", "-")
			continue
		}
		p10, _ := stats.Percentile(xs, 10)
		p50, _ := stats.Percentile(xs, 50)
		t.Add(n,
			fmt.Sprintf("%.3f", p10),
			fmt.Sprintf("%.3f", p50),
			fmt.Sprintf("%.3f", stats.Mean(xs)))
	}
	return t
}

// sortStrings is a tiny insertion sort to avoid importing sort twice in
// small files (kept for symmetry with other helpers).
func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
