package pantheon

import (
	"sync"

	"mocc/internal/cc"
	"mocc/internal/core"
	"mocc/internal/objective"
	"mocc/internal/rl"
	"mocc/internal/trace"
)

// Scale selects how much compute the zoo spends training models. The paper
// trains for hours on a cluster; Quick reproduces the qualitative shape in
// seconds, Standard in a couple of minutes.
type Scale int

const (
	// Quick is for unit tests: minimal iterations.
	Quick Scale = iota
	// Standard is for benchmarks and the CLI tools.
	Standard
)

// zooScaleParams maps a scale to training volumes.
type zooScaleParams struct {
	moccCfg         core.TrainConfig
	auroraIters     int
	rolloutSteps    int
	episodeLen      int
	enhancedAuroraN int // pre-trained Aurora variants for Figure 6
	enhancedIters   int
	dqnSteps        int
	dqnObjectives   int
	adaptIters      int // per-objective online specialization budget
}

// params returns the training volumes for the scale.
func params(s Scale, seed int64) zooScaleParams {
	ppo := rl.DefaultPPOConfig()
	ppo.EntropyInit = 0.03
	ppo.EntropyFinal = 0.002
	ppo.EntropyDecayIters = 60
	ppo.Seed = seed
	if s == Standard {
		ppo.EntropyInit = 0.05
		ppo.EntropyDecayIters = 150
	}

	switch s {
	case Standard:
		return zooScaleParams{
			moccCfg: core.TrainConfig{
				Omega:           36,
				BootstrapIters:  25,
				BootstrapCycles: 5,
				TraverseIters:   2,
				TraverseCycles:  3,
				RolloutSteps:    512,
				EpisodeLen:      128,
				Workers:         8,
				Seed:            seed,
				PPO:             ppo,
			},
			auroraIters:     60,
			rolloutSteps:    512,
			episodeLen:      128,
			enhancedAuroraN: 6,
			enhancedIters:   25,
			dqnSteps:        20000,
			dqnObjectives:   6,
			adaptIters:      40,
		}
	default: // Quick
		return zooScaleParams{
			moccCfg: core.TrainConfig{
				Omega:           10,
				BootstrapIters:  10,
				BootstrapCycles: 2,
				TraverseIters:   1,
				TraverseCycles:  2,
				RolloutSteps:    256,
				EpisodeLen:      64,
				Workers:         4,
				Seed:            seed,
				PPO:             ppo,
			},
			auroraIters:     25,
			rolloutSteps:    256,
			episodeLen:      64,
			enhancedAuroraN: 3,
			enhancedIters:   10,
			dqnSteps:        6000,
			dqnObjectives:   3,
			adaptIters:      8,
		}
	}
}

// Zoo lazily trains and caches every learned model the experiments need.
// All training is seeded and deterministic for a given (scale, seed).
type Zoo struct {
	ScaleUsed Scale
	Seed      int64

	p    zooScaleParams
	envs rl.EnvFactory

	mu        sync.Mutex
	mocc      *core.Model
	moccCurve []core.CurvePoint
	adapted   map[objective.Weights]*core.Model
	auroraThr *rl.PlainAgent
	auroraLat *rl.PlainAgent
	orca      *rl.PlainAgent
	enhanced  []enhancedModel
	dqn       *rl.DQNAgent
}

// enhancedModel pairs a pre-trained Aurora with its training objective.
type enhancedModel struct {
	W     objective.Weights
	Agent *rl.PlainAgent
}

// NewZoo builds a zoo training on the Table 3 training ranges.
func NewZoo(scale Scale, seed int64) *Zoo {
	return &Zoo{
		ScaleUsed: scale,
		Seed:      seed,
		p:         params(scale, seed),
		envs:      core.TrainingEnvs(trace.TrainingRanges(), core.HistoryLen),
	}
}

// Envs exposes the training environment factory.
func (z *Zoo) Envs() rl.EnvFactory { return z.envs }

// Params exposes the scale parameters (read-only use).
func (z *Zoo) Params() zooScaleParams { return z.p }

// MOCC returns the offline-trained multi-objective model, training it on
// first use.
func (z *Zoo) MOCC() *core.Model {
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.mocc != nil {
		return z.mocc
	}
	model := core.NewModel(core.HistoryLen, z.Seed)
	cfg := z.p.moccCfg
	cfg.Envs = z.envs
	trainer, err := core.NewOfflineTrainer(model, cfg)
	if err != nil {
		panic("pantheon: zoo training config invalid: " + err.Error())
	}
	res, err := trainer.Run()
	if err != nil {
		panic("pantheon: zoo MOCC training failed: " + err.Error())
	}
	z.mocc = model
	z.moccCurve = res.Curve
	return z.mocc
}

// MOCCTrainingCurve returns the offline training curve (training MOCC first
// if needed).
func (z *Zoo) MOCCTrainingCurve() []core.CurvePoint {
	z.MOCC()
	z.mu.Lock()
	defer z.mu.Unlock()
	return z.moccCurve
}

// MOCCAdapted returns the offline model specialized to w by a short online
// adaptation run — exactly what deployment does when an application
// registers (§4.3). Results are cached per weight vector. The replay pool
// holds the bootstrap objectives so old policies are rehearsed during
// specialization.
func (z *Zoo) MOCCAdapted(w objective.Weights, iters int) *core.Model {
	base := z.MOCC() // train offline model first (locks internally)
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.adapted == nil {
		z.adapted = make(map[objective.Weights]*core.Model)
	}
	if m, ok := z.adapted[w]; ok {
		return m
	}
	if iters <= 0 {
		iters = z.p.adaptIters
	}
	model := base.Clone()
	acfg := core.DefaultAdaptConfig()
	acfg.Envs = z.envs
	acfg.MaxIters = iters
	acfg.RolloutSteps = z.p.rolloutSteps
	acfg.EpisodeLen = z.p.episodeLen
	acfg.Seed = z.Seed + 9000 + int64(len(z.adapted))
	// Specialization wants mild exploration that dies quickly.
	acfg.PPO.EntropyInit = 0.05
	acfg.PPO.EntropyFinal = 0.005
	acfg.PPO.EntropyDecayIters = iters
	adapter, err := core.NewAdapter(model, acfg)
	if err != nil {
		panic("pantheon: zoo adapter config: " + err.Error())
	}
	step := objective.StepForOmega(z.p.moccCfg.Omega)
	for _, b := range objective.DefaultBootstraps(step) {
		adapter.Register(b.Weights())
	}
	adapter.Adapt(w)
	z.adapted[w] = model
	return model
}

// trainAurora trains one fixed-objective PlainAgent (the Aurora baseline)
// and returns the agent and its learning curve.
func (z *Zoo) trainAurora(w objective.Weights, iters int, seed int64) (*rl.PlainAgent, []float64) {
	agent := rl.NewPlainAgent(3*core.HistoryLen, seed)
	ppoCfg := z.p.moccCfg.PPO
	ppoCfg.Seed = seed
	ppo := rl.NewPPO(agent, ppoCfg)
	cfg := rl.CollectConfig{
		Steps:      z.p.rolloutSteps,
		EpisodeLen: z.p.episodeLen,
	}
	curve := make([]float64, 0, iters)
	for i := 0; i < iters; i++ {
		ro := rl.Collect(agent, z.envs, w, cfg, seed+int64(i)*7919)
		st := ppo.Update(ro)
		curve = append(curve, st.MeanReward)
	}
	return agent, curve
}

// AuroraThroughput returns the throughput-objective Aurora model.
func (z *Zoo) AuroraThroughput() *rl.PlainAgent {
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.auroraThr == nil {
		z.auroraThr, _ = z.trainAurora(objective.ThroughputPref, z.p.auroraIters, z.Seed+1)
	}
	return z.auroraThr
}

// AuroraLatency returns the latency-objective Aurora model.
func (z *Zoo) AuroraLatency() *rl.PlainAgent {
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.auroraLat == nil {
		z.auroraLat, _ = z.trainAurora(objective.LatencyPref, z.p.auroraIters, z.Seed+2)
	}
	return z.auroraLat
}

// OrcaPolicy returns the RL half of the Orca baseline. Orca's published
// objective weighs throughput over delay (Table 1); we train a PlainAgent on
// a matching weight vector and deploy it as CUBIC's multiplier.
func (z *Zoo) OrcaPolicy() *rl.PlainAgent {
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.orca == nil {
		z.orca, _ = z.trainAurora(objective.Weights{Thr: 0.6, Lat: 0.3, Loss: 0.1}, z.p.auroraIters, z.Seed+3)
	}
	return z.orca
}

// EnhancedAurora returns N pre-trained single-objective Aurora models whose
// objectives are spread over the simplex — the "enhanced Aurora" comparison
// of Figure 6. Selecting the best model for a requested objective is the
// caller's job (see NearestEnhanced).
func (z *Zoo) EnhancedAurora() []objective.Weights {
	z.ensureEnhanced()
	z.mu.Lock()
	defer z.mu.Unlock()
	out := make([]objective.Weights, len(z.enhanced))
	for i, e := range z.enhanced {
		out[i] = e.W
	}
	return out
}

// ensureEnhanced trains the enhanced-Aurora set once.
func (z *Zoo) ensureEnhanced() {
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.enhanced != nil {
		return
	}
	// Spread the training objectives over the simplex lattice.
	step := objective.StepForOmega(z.p.enhancedAuroraN)
	landmarks := objective.LandmarkWeights(step)
	if len(landmarks) > z.p.enhancedAuroraN {
		// Evenly subsample.
		sub := make([]objective.Weights, 0, z.p.enhancedAuroraN)
		strideN := len(landmarks) / z.p.enhancedAuroraN
		if strideN < 1 {
			strideN = 1
		}
		for i := 0; i < len(landmarks) && len(sub) < z.p.enhancedAuroraN; i += strideN {
			sub = append(sub, landmarks[i])
		}
		landmarks = sub
	}
	for i, w := range landmarks {
		agent, _ := z.trainAurora(w, z.p.enhancedIters, z.Seed+100+int64(i))
		z.enhanced = append(z.enhanced, enhancedModel{W: w, Agent: agent})
	}
}

// NearestEnhanced returns the enhanced-Aurora agent whose training objective
// is closest to w (how the Figure 6 experiment selects among the 10 models).
func (z *Zoo) NearestEnhanced(w objective.Weights) *rl.PlainAgent {
	z.ensureEnhanced()
	z.mu.Lock()
	defer z.mu.Unlock()
	best := 0
	for i := 1; i < len(z.enhanced); i++ {
		if w.Distance(z.enhanced[i].W) < w.Distance(z.enhanced[best].W) {
			best = i
		}
	}
	return z.enhanced[best].Agent
}

// MOCCDQN returns the DQN-trained multi-objective model for the Figure 18
// ablation: same observation space as MOCC (weights embedded) but a
// discretized action space.
func (z *Zoo) MOCCDQN() *rl.DQNAgent {
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.dqn != nil {
		return z.dqn
	}
	cfg := rl.DefaultDQNConfig()
	cfg.Seed = z.Seed + 4
	agent := rl.NewDQNAgent(3*core.HistoryLen+3, cfg)
	objs := objective.UniformObjectives(z.p.dqnObjectives, z.Seed+5)
	stepsPer := z.p.dqnSteps / len(objs)
	for _, w := range objs {
		agent.TrainEpisodes(z.envs, w, true, stepsPer, z.p.episodeLen)
	}
	z.dqn = agent
	return z.dqn
}

// Schemes bundles every evaluated algorithm constructor for the sweep and
// fairness experiments. Learned schemes capture zoo models lazily.
type Schemes struct {
	zoo *Zoo
}

// NewSchemes wraps a zoo.
func NewSchemes(z *Zoo) *Schemes { return &Schemes{zoo: z} }

// Baselines returns fresh instances of all hand-crafted and online-learning
// baselines.
func (s *Schemes) Baselines() []cc.AlgorithmFactory {
	return []cc.AlgorithmFactory{
		func() cc.Algorithm { return cc.NewCubic() },
		func() cc.Algorithm { return cc.NewVegas() },
		func() cc.Algorithm { return cc.NewBBR() },
		func() cc.Algorithm { return cc.NewCopa() },
		func() cc.Algorithm { return cc.NewAllegro() },
		func() cc.Algorithm { return cc.NewVivace() },
	}
}

// MOCCAlgorithm returns a fresh MOCC algorithm bound to w, using the
// deployment path: the offline model plus a short online specialization for
// the registered objective (§4.3). Specialized models are cached in the
// zoo; the returned algorithm runs on a frozen copy, so every call yields
// an independent instance the scenario scheduler may drive concurrently.
func (s *Schemes) MOCCAlgorithm(name string, w objective.Weights) cc.Algorithm {
	return s.zoo.MOCCAdapted(w, 0).FrozenAlgorithmFor(name, w)
}

// MOCCOfflineAlgorithm returns MOCC using only the offline pre-trained
// model, no online adaptation — the configuration §6.1 evaluates in the
// 100-objective experiment (Figure 6).
func (s *Schemes) MOCCOfflineAlgorithm(name string, w objective.Weights) cc.Algorithm {
	return s.zoo.MOCC().FrozenAlgorithmFor(name, w)
}

// AuroraThroughputAlgorithm returns Aurora trained for throughput.
func (s *Schemes) AuroraThroughputAlgorithm() cc.Algorithm {
	agent := s.zoo.AuroraThroughput().Clone()
	return cc.NewRLRate("aurora-throughput", cc.PolicyFunc(agent.Act), core.HistoryLen)
}

// AuroraLatencyAlgorithm returns Aurora trained for latency.
func (s *Schemes) AuroraLatencyAlgorithm() cc.Algorithm {
	agent := s.zoo.AuroraLatency().Clone()
	return cc.NewRLRate("aurora-latency", cc.PolicyFunc(agent.Act), core.HistoryLen)
}

// OrcaAlgorithm returns the Orca two-level controller.
func (s *Schemes) OrcaAlgorithm() cc.Algorithm {
	agent := s.zoo.OrcaPolicy().Clone()
	return cc.NewOrca(cc.PolicyFunc(agent.Act), core.HistoryLen)
}
