package pantheon

import (
	"bytes"
	"testing"

	"mocc/internal/cc"
	"mocc/internal/gym"
	"mocc/internal/scenario"
	"mocc/internal/trace"
)

func suiteTables(t *testing.T, res ScenarioSuiteResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	util, lat := res.Tables()
	if err := util.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := lat.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestScenarioSuiteParallelDeterminism holds the generated-scenario suite
// to the scheduler's contract: serial and 4-worker runs render byte-
// identical tables.
func TestScenarioSuiteParallelDeterminism(t *testing.T) {
	s := NewSchemes(sharedZoo())
	cfg := ScenarioSuiteConfig{
		Families:  []scenario.Family{scenario.Cellular, scenario.Satellite},
		PerFamily: 2,
		Steps:     40,
		Seed:      5,
	}
	cfg.Workers = 1
	serial, err := RunScenarioSuite(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parallel, err := RunScenarioSuite(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := suiteTables(t, serial), suiteTables(t, parallel)
	if !bytes.Equal(a, b) {
		t.Errorf("serial and 4-worker suites diverge:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
	if len(serial.Schemes) < 3 {
		t.Fatalf("suite evaluated %d schemes, want MOCC + baselines", len(serial.Schemes))
	}
	for fi := range serial.Families {
		for ei := range serial.Schemes {
			if u := serial.Util[fi][ei]; u <= 0 || u > 1.01 {
				t.Errorf("util[%d][%d] = %g out of range", fi, ei, u)
			}
			if l := serial.LatR[fi][ei]; l < 1 {
				t.Errorf("latR[%d][%d] = %g below 1", fi, ei, l)
			}
		}
	}
}

// TestScenarioResolver materializes every learned scheme and falls through
// for built-ins.
func TestScenarioResolver(t *testing.T) {
	s := NewSchemes(sharedZoo())
	r := s.ScenarioResolver()
	for _, scheme := range []string{"mocc", "mocc-throughput", "mocc-latency", "aurora-throughput", "aurora-latency", "orca"} {
		if !IsLearnedScheme(scheme) {
			t.Errorf("IsLearnedScheme(%q) = false", scheme)
		}
		alg, err := r(scenario.Flow{Scheme: scheme})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if alg == nil {
			t.Fatalf("%s: resolver returned nil", scheme)
		}
	}
	if alg, err := r(scenario.Flow{Scheme: "cubic"}); err != nil || alg != nil {
		t.Errorf("built-in scheme did not fall through: alg=%v err=%v", alg, err)
	}
	if IsLearnedScheme("cubic") {
		t.Error("IsLearnedScheme(cubic) = true")
	}
}

// TestScenarioResolverWeights routes a flow's preference into the MOCC
// adapter: opposite preferences must yield observably different runs.
func TestScenarioResolverWeights(t *testing.T) {
	s := NewSchemes(sharedZoo())
	r := s.ScenarioResolver()
	thr, err := r(scenario.Flow{Scheme: "mocc", Weights: &scenario.Weights{Throughput: 0.8, Latency: 0.1, Loss: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	lat, err := r(scenario.Flow{Scheme: "mocc", Weights: &scenario.Weights{Throughput: 0.1, Latency: 0.8, Loss: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	sumThr := RunScheme(thr, defaultSweepBase(), 60, 9)
	sumLat := RunScheme(lat, defaultSweepBase(), 60, 9)
	if sumThr == sumLat {
		t.Error("opposite preferences produced identical runs")
	}
}

// TestScenarioSpecDrivesPantheonRun is the spec->gym->harness path outside
// the suite wrapper: a generated spec lowers to a gym config, a baseline
// drives it through the standard Drive/Summarize pipeline, and the summary
// is sane.
func TestScenarioSpecDrivesPantheonRun(t *testing.T) {
	spec, err := scenario.Generate(scenario.Wifi, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Gym(scenario.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ms := cc.Drive(gym.New(cfg), cc.NewCubic(), 80, 4)
	sum := Summarize("cubic", trace.Condition{}, ms)
	if sum.Utilization <= 0 || sum.Utilization > 1.01 {
		t.Errorf("utilization = %g out of range", sum.Utilization)
	}
	if sum.LatencyRatio < 1 {
		t.Errorf("latency ratio = %g below 1", sum.LatencyRatio)
	}
}
