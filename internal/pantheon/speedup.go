package pantheon

import (
	"fmt"
	"time"

	"mocc/internal/core"
	"mocc/internal/rl"
	"mocc/internal/trace"
)

// Fig19Result reports the training-speedup comparison (§6.5): individual
// per-objective training vs two-phase transfer learning vs transfer plus
// parallel rollout collection. Wall-clock times are measured on this
// machine at the configured scale; the paper's absolute hours differ but
// the ordering and rough factors are the reproduction target.
type Fig19Result struct {
	IndividualTime time.Duration
	TransferTime   time.Duration
	ParallelTime   time.Duration
	// Iteration counts document the work each strategy performed.
	IndividualIters int
	TransferIters   int
	ParallelIters   int
	// SpeedupTransfer = Individual/Transfer; SpeedupParallel =
	// Individual/Parallel.
	SpeedupTransfer float64
	SpeedupParallel float64
}

// Fig19Config scales the experiment.
type Fig19Config struct {
	Omega int
	// ItersPerObjective is the individual-training budget per objective;
	// the two-phase schedule uses proportionally fewer (that is the whole
	// point of transfer).
	ItersPerObjective int
	RolloutSteps      int
	EpisodeLen        int
	Workers           int
	Seed              int64
}

// DefaultFig19Config is a scaled-down but structurally faithful setup.
func DefaultFig19Config() Fig19Config {
	return Fig19Config{
		Omega:             6,
		ItersPerObjective: 6,
		RolloutSteps:      256,
		EpisodeLen:        64,
		Workers:           4,
		Seed:              1,
	}
}

// RunFig19 measures the three training strategies.
func RunFig19(cfg Fig19Config) (Fig19Result, error) {
	envs := core.TrainingEnvs(trace.TrainingRanges(), core.HistoryLen)
	base := core.TrainConfig{
		Omega:           cfg.Omega,
		BootstrapIters:  cfg.ItersPerObjective,
		BootstrapCycles: 1,
		TraverseIters:   1,
		TraverseCycles:  1,
		RolloutSteps:    cfg.RolloutSteps,
		EpisodeLen:      cfg.EpisodeLen,
		Workers:         1,
		Seed:            cfg.Seed,
		PPO:             quickPPO(cfg.Seed),
		Envs:            envs,
	}

	var res Fig19Result

	// 1. Individual training: every objective from scratch, full budget.
	start := time.Now()
	iters, err := core.TrainIndividually(base, core.HistoryLen, cfg.ItersPerObjective)
	if err != nil {
		return res, err
	}
	res.IndividualTime = time.Since(start)
	res.IndividualIters = iters

	// 2. Two-phase transfer: bootstraps at full budget, then a cheap
	// traversal of the remaining objectives.
	start = time.Now()
	model := core.NewModel(core.HistoryLen, cfg.Seed)
	trainer, err := core.NewOfflineTrainer(model, base)
	if err != nil {
		return res, err
	}
	tr, err := trainer.Run()
	if err != nil {
		return res, err
	}
	res.TransferTime = time.Since(start)
	res.TransferIters = tr.TotalIters()

	// 3. Transfer + parallel rollout collection. Worker count resolves
	// like the scenario scheduler's: <= 0 selects GOMAXPROCS.
	parCfg := base
	parCfg.Workers = workerCount(cfg.Workers)
	start = time.Now()
	model2 := core.NewModel(core.HistoryLen, cfg.Seed)
	trainer2, err := core.NewOfflineTrainer(model2, parCfg)
	if err != nil {
		return res, err
	}
	tr2, err := trainer2.Run()
	if err != nil {
		return res, err
	}
	res.ParallelTime = time.Since(start)
	res.ParallelIters = tr2.TotalIters()

	if res.TransferTime > 0 {
		res.SpeedupTransfer = float64(res.IndividualTime) / float64(res.TransferTime)
	}
	if res.ParallelTime > 0 {
		res.SpeedupParallel = float64(res.IndividualTime) / float64(res.ParallelTime)
	}
	return res, nil
}

// quickPPO returns a low-entropy PPO config for speed comparisons.
func quickPPO(seed int64) rl.PPOConfig {
	cfg := rl.DefaultPPOConfig()
	cfg.EntropyInit = 0.02
	cfg.EntropyFinal = 0.002
	cfg.EntropyDecayIters = 30
	cfg.Seed = seed
	return cfg
}

// Table renders Figure 19.
func (r Fig19Result) Table() Table {
	t := Table{
		Title:  "Figure 19 training speedup",
		Header: []string{"method", "time", "iters", "speedup"},
	}
	t.Add("individual", r.IndividualTime.Round(time.Millisecond).String(),
		fmt.Sprint(r.IndividualIters), "1.0x")
	t.Add("transfer", r.TransferTime.Round(time.Millisecond).String(),
		fmt.Sprint(r.TransferIters), fmt.Sprintf("%.1fx", r.SpeedupTransfer))
	t.Add("transfer+parallel", r.ParallelTime.Round(time.Millisecond).String(),
		fmt.Sprint(r.ParallelIters), fmt.Sprintf("%.1fx", r.SpeedupParallel))
	return t
}
