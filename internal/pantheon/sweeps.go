package pantheon

import (
	"fmt"

	"mocc/internal/cc"
	"mocc/internal/objective"
	"mocc/internal/trace"
)

// SweepAxis identifies which link parameter Figure 5 varies.
type SweepAxis string

// Figure 5 sweep axes.
const (
	AxisBandwidth SweepAxis = "bandwidth" // Fig 5(a)/(e): 10-50 Mbps
	AxisLatency   SweepAxis = "latency"   // Fig 5(b)/(f): 10-200 ms
	AxisLoss      SweepAxis = "loss"      // Fig 5(c)/(g): 0-10%
	AxisBuffer    SweepAxis = "buffer"    // Fig 5(d)/(h): 500-5000 pkts
)

// defaultSweepBase is the condition held fixed on the non-swept axes,
// matching the midpoints of the paper's testing ranges (Table 3).
func defaultSweepBase() trace.Condition {
	return trace.Condition{
		BandwidthMbps: 30,
		LatencyMs:     40,
		QueuePkts:     1000,
		LossRate:      0,
	}
}

// SweepPoints returns the x-axis values the paper plots for an axis.
func SweepPoints(axis SweepAxis) []float64 {
	switch axis {
	case AxisBandwidth:
		return []float64{10, 20, 30, 40, 50}
	case AxisLatency:
		return []float64{10, 40, 70, 100, 130, 160, 200}
	case AxisLoss:
		return []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10} // percent
	case AxisBuffer:
		return []float64{500, 1500, 2500, 3500, 5000}
	default:
		return nil
	}
}

// conditionAt applies one sweep point to the base condition.
func conditionAt(base trace.Condition, axis SweepAxis, v float64) trace.Condition {
	c := base
	switch axis {
	case AxisBandwidth:
		c.BandwidthMbps = v
	case AxisLatency:
		c.LatencyMs = v
	case AxisLoss:
		c.LossRate = v / 100
	case AxisBuffer:
		c.QueuePkts = int(v)
	}
	return c
}

// SweepConfig parameterizes a Figure 5 run.
type SweepConfig struct {
	Axis SweepAxis
	// Steps is the number of monitor intervals per point per scheme.
	Steps int
	// Seed drives the run.
	Seed int64
	// Base overrides the default fixed condition when non-zero.
	Base *trace.Condition
	// Workers bounds the scenario scheduler's fan-out over the
	// scheme x point grid (0 = GOMAXPROCS, 1 = serial). Results are
	// byte-identical at any worker count.
	Workers int
}

// SweepSeries is one scheme's line in a Figure 5 panel.
type SweepSeries struct {
	Scheme string
	X      []float64
	Util   []float64 // link utilization (Fig 5 a-d)
	LatR   []float64 // latency ratio to base (Fig 5 e-h)
}

// SweepResult holds every scheme's series for one axis.
type SweepResult struct {
	Axis   SweepAxis
	Series []SweepSeries
}

// RunSweep reproduces one Figure 5 panel pair: it evaluates every baseline,
// the two Aurora variants, Orca, and MOCC under both the throughput
// preference (<0.8,0.1,0.1>) and the latency preference (<0.1,0.8,0.1>)
// across the axis points.
func RunSweep(s *Schemes, cfg SweepConfig) SweepResult {
	if cfg.Steps <= 0 {
		cfg.Steps = 300
	}
	base := defaultSweepBase()
	if cfg.Base != nil {
		base = *cfg.Base
	}
	points := SweepPoints(cfg.Axis)

	type entry struct {
		name    string
		factory func() cc.Algorithm
	}
	entries := []entry{
		{"mocc-throughput", func() cc.Algorithm { return s.MOCCAlgorithm("mocc-throughput", objective.ThroughputPref) }},
		{"mocc-latency", func() cc.Algorithm { return s.MOCCAlgorithm("mocc-latency", objective.LatencyPref) }},
		{"aurora-throughput", s.AuroraThroughputAlgorithm},
		{"aurora-latency", s.AuroraLatencyAlgorithm},
		{"orca", s.OrcaAlgorithm},
	}
	for _, f := range s.Baselines() {
		factory := f
		entries = append(entries, entry{factory().Name(), func() cc.Algorithm { return factory() }})
	}

	// Train every learned model serially before fanning out: the zoo
	// trains lazily and its adaptation seeds depend on registration order,
	// so warming must follow the serial harness's first-use order.
	s.zoo.MOCCAdapted(objective.ThroughputPref, 0)
	s.zoo.MOCCAdapted(objective.LatencyPref, 0)
	s.zoo.AuroraThroughput()
	s.zoo.AuroraLatency()
	s.zoo.OrcaPolicy()

	res := SweepResult{Axis: cfg.Axis, Series: make([]SweepSeries, len(entries))}
	for ei, e := range entries {
		res.Series[ei] = SweepSeries{
			Scheme: e.name,
			X:      points,
			Util:   make([]float64, len(points)),
			LatR:   make([]float64, len(points)),
		}
	}
	// Every grid cell derives its condition, seed and result slot from its
	// index alone, so the fan-out is order-independent.
	Runner{Workers: cfg.Workers}.Each(len(entries)*len(points), func(job int) {
		ei, i := job/len(points), job%len(points)
		cond := conditionAt(base, cfg.Axis, points[i])
		sum := RunScheme(entries[ei].factory(), cond, cfg.Steps, cfg.Seed+int64(i))
		res.Series[ei].Util[i] = sum.Utilization
		res.Series[ei].LatR[i] = sum.LatencyRatio
	})
	return res
}

// Tables renders the utilization and latency-ratio panels as text tables.
func (r SweepResult) Tables() (util, lat Table) {
	points := SweepPoints(r.Axis)
	header := []string{"scheme"}
	for _, p := range points {
		header = append(header, fmt.Sprintf("%g", p))
	}
	util = Table{Title: fmt.Sprintf("Figure 5 link utilization vs %s", r.Axis), Header: header}
	lat = Table{Title: fmt.Sprintf("Figure 5 latency ratio vs %s", r.Axis), Header: header}
	for _, s := range r.Series {
		uRow := []string{s.Scheme}
		lRow := []string{s.Scheme}
		for i := range s.X {
			uRow = append(uRow, fmt.Sprintf("%.3f", s.Util[i]))
			lRow = append(lRow, fmt.Sprintf("%.3f", s.LatR[i]))
		}
		util.Rows = append(util.Rows, uRow)
		lat.Rows = append(lat.Rows, lRow)
	}
	return util, lat
}

// Series returns the named scheme's series, or nil.
func (r SweepResult) SeriesFor(scheme string) *SweepSeries {
	for i := range r.Series {
		if r.Series[i].Scheme == scheme {
			return &r.Series[i]
		}
	}
	return nil
}
