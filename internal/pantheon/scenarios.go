package pantheon

import (
	"fmt"

	"mocc/internal/cc"
	"mocc/internal/gym"
	"mocc/internal/objective"
	"mocc/internal/scenario"
	"mocc/internal/trace"
)

// learnedSchemes maps scenario scheme names onto the model zoo.
var learnedSchemes = map[string]bool{
	"mocc":              true,
	"mocc-throughput":   true,
	"mocc-latency":      true,
	"aurora-throughput": true,
	"aurora-latency":    true,
	"orca":              true,
}

// IsLearnedScheme reports whether a scenario flow scheme needs the model
// zoo (so CLIs can defer zoo construction until a spec actually asks).
func IsLearnedScheme(name string) bool { return learnedSchemes[name] }

// ScenarioResolver adapts the model zoo to the scenario compiler: it
// materializes learned schemes ("mocc" honours the flow's preference
// weights, defaulting to the balanced objective) and falls through to the
// scenario built-ins for everything else.
func (s *Schemes) ScenarioResolver() scenario.SchemeResolver {
	return func(f scenario.Flow) (cc.Algorithm, error) {
		if f.Weights != nil && f.Scheme != "mocc" && learnedSchemes[f.Scheme] {
			return nil, fmt.Errorf("pantheon: scheme %q carries its own canonical preference and ignores weights; use scheme \"mocc\" with weights instead", f.Scheme)
		}
		switch f.Scheme {
		case "mocc":
			w := objective.BalancePref
			if f.Weights != nil {
				w = objective.Weights{
					Thr:  f.Weights.Throughput,
					Lat:  f.Weights.Latency,
					Loss: f.Weights.Loss,
				}.Normalize()
			}
			return s.MOCCAlgorithm("mocc", w), nil
		case "mocc-throughput":
			return s.MOCCAlgorithm("mocc-throughput", objective.ThroughputPref), nil
		case "mocc-latency":
			return s.MOCCAlgorithm("mocc-latency", objective.LatencyPref), nil
		case "aurora-throughput":
			return s.AuroraThroughputAlgorithm(), nil
		case "aurora-latency":
			return s.AuroraLatencyAlgorithm(), nil
		case "orca":
			return s.OrcaAlgorithm(), nil
		default:
			return nil, nil // scenario built-ins
		}
	}
}

// ScenarioSuiteConfig parameterizes an open-ended generated-scenario
// evaluation: the generator replaces the fixed Figure 5 grids.
type ScenarioSuiteConfig struct {
	// Families defaults to every generator family.
	Families []scenario.Family
	// PerFamily is the number of generated scenarios per family (default 3).
	PerFamily int
	// Steps is the number of monitor intervals per run (default 200).
	Steps int
	// Seed drives scenario generation and the runs.
	Seed int64
	// Workers bounds the scenario scheduler's fan-out (0 = GOMAXPROCS,
	// 1 = serial). Results are byte-identical at any worker count.
	Workers int
}

// ScenarioSuiteResult holds per-(family, scheme) means over the suite.
type ScenarioSuiteResult struct {
	Families  []scenario.Family
	Schemes   []string
	PerFamily int
	// Util[f][s] and LatR[f][s] are means over the family's scenarios.
	Util [][]float64
	LatR [][]float64
}

// RunScenarioSuite evaluates MOCC (both canonical preferences) and every
// baseline over PerFamily generated scenarios from each family, fanning
// the (family x scenario x scheme) grid across the scenario scheduler.
// Every cell derives its spec and seed from its index alone, so serial and
// parallel execution produce identical tables.
func RunScenarioSuite(s *Schemes, cfg ScenarioSuiteConfig) (ScenarioSuiteResult, error) {
	fams := cfg.Families
	if len(fams) == 0 {
		fams = scenario.Families()
	}
	if cfg.PerFamily <= 0 {
		cfg.PerFamily = 3
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 200
	}

	type entry struct {
		name    string
		factory func() cc.Algorithm
	}
	entries := []entry{
		{"mocc-throughput", func() cc.Algorithm { return s.MOCCAlgorithm("mocc-throughput", objective.ThroughputPref) }},
		{"mocc-latency", func() cc.Algorithm { return s.MOCCAlgorithm("mocc-latency", objective.LatencyPref) }},
	}
	for _, f := range s.Baselines() {
		factory := f
		entries = append(entries, entry{factory().Name(), func() cc.Algorithm { return factory() }})
	}

	// Generate the suite's gym configurations up front (cheap, and any
	// generator error surfaces before the fan-out).
	nScen := len(fams) * cfg.PerFamily
	gymCfgs := make([]gym.Config, nScen)
	for i := range gymCfgs {
		fam := fams[i/cfg.PerFamily]
		spec, err := scenario.Generate(fam, cfg.Seed+int64(i%cfg.PerFamily))
		if err != nil {
			return ScenarioSuiteResult{}, err
		}
		gymCfgs[i], err = spec.Gym(scenario.CompileOptions{})
		if err != nil {
			return ScenarioSuiteResult{}, fmt.Errorf("pantheon: scenario %q: %w", spec.Name, err)
		}
	}

	// Train every learned model serially before fanning out (the zoo's
	// adaptation seeds are registration-order dependent).
	s.zoo.MOCCAdapted(objective.ThroughputPref, 0)
	s.zoo.MOCCAdapted(objective.LatencyPref, 0)

	res := ScenarioSuiteResult{
		Families:  fams,
		Schemes:   make([]string, len(entries)),
		PerFamily: cfg.PerFamily,
		Util:      make([][]float64, len(fams)),
		LatR:      make([][]float64, len(fams)),
	}
	for ei, e := range entries {
		res.Schemes[ei] = e.name
	}
	for fi := range fams {
		res.Util[fi] = make([]float64, len(entries))
		res.LatR[fi] = make([]float64, len(entries))
	}

	// One job per (scenario, scheme) cell; cell results land in
	// index-derived slots and are reduced serially afterwards.
	util := make([]float64, nScen*len(entries))
	latR := make([]float64, nScen*len(entries))
	Runner{Workers: cfg.Workers}.Each(nScen*len(entries), func(job int) {
		si, ei := job/len(entries), job%len(entries)
		env := gym.New(gymCfgs[si])
		ms := cc.Drive(env, entries[ei].factory(), cfg.Steps, cfg.Seed+int64(si))
		sum := Summarize(entries[ei].name, trace.Condition{}, ms)
		util[job] = sum.Utilization
		latR[job] = sum.LatencyRatio
	})
	for si := 0; si < nScen; si++ {
		fi := si / cfg.PerFamily
		for ei := range entries {
			res.Util[fi][ei] += util[si*len(entries)+ei] / float64(cfg.PerFamily)
			res.LatR[fi][ei] += latR[si*len(entries)+ei] / float64(cfg.PerFamily)
		}
	}
	return res, nil
}

// Tables renders the suite as utilization and latency-ratio panels
// (schemes x families), the generated-scenario counterpart of Figure 5.
func (r ScenarioSuiteResult) Tables() (util, lat Table) {
	header := []string{"scheme"}
	for _, f := range r.Families {
		header = append(header, string(f))
	}
	util = Table{Title: fmt.Sprintf("Generated-scenario suite link utilization (%d scenarios/family)", r.PerFamily), Header: header}
	lat = Table{Title: fmt.Sprintf("Generated-scenario suite latency ratio (%d scenarios/family)", r.PerFamily), Header: header}
	for ei, scheme := range r.Schemes {
		uRow := []string{scheme}
		lRow := []string{scheme}
		for fi := range r.Families {
			uRow = append(uRow, fmt.Sprintf("%.3f", r.Util[fi][ei]))
			lRow = append(lRow, fmt.Sprintf("%.3f", r.LatR[fi][ei]))
		}
		util.Rows = append(util.Rows, uRow)
		lat.Rows = append(lat.Rows, lRow)
	}
	return util, lat
}

// ScenarioResultTable renders a scenario.Run result as a text table shared
// by the mocc-scen and mocc-bench CLIs.
func ScenarioResultTable(res *scenario.Result) Table {
	t := Table{
		Title: fmt.Sprintf("scenario %s (%s engine, %gs)", res.Name, res.Engine, res.DurationSec),
		Header: []string{"flow", "scheme", "sent", "delivered", "lost",
			"thr Mbps", "avg RTT ms", "loss", "done"},
	}
	add := func(fr scenario.FlowResult) {
		done := ""
		if fr.Completed {
			done = fmt.Sprintf("%.2fs", fr.CompletionSec)
		}
		t.Add(fr.Label, fr.Scheme,
			fmt.Sprint(fr.Sent), fmt.Sprint(fr.Delivered), fmt.Sprint(fr.Lost),
			fmt.Sprintf("%.3f", fr.ThroughputMbps),
			fmt.Sprintf("%.1f", fr.AvgRTTms),
			fmt.Sprintf("%.4f", fr.LossRate),
			done)
		if fr.ABR != nil {
			t.Add("  └ video", "abr", "", "", "",
				fmt.Sprintf("%.3f", fr.ABR.AvgBitrateMbps),
				fmt.Sprintf("rebuf %.1fs", fr.ABR.RebufferSec),
				fmt.Sprintf("lvl %.2f", fr.ABR.AvgLevel),
				"")
		}
	}
	for _, fr := range res.Flows {
		add(fr)
	}
	for _, fr := range res.Cross {
		add(fr)
	}
	return t
}
