// Package pantheon is the evaluation harness: the counterpart of the
// Pantheon testbed plus the paper's experiment scripts. It trains the model
// zoo (MOCC, Aurora variants, Orca, MOCC-DQN) at a configurable scale, runs
// every figure's experiment against the simulators, and renders the same
// rows/series the paper reports.
package pantheon

import (
	"fmt"
	"io"
	"math"

	"mocc/internal/cc"
	"mocc/internal/gym"
	"mocc/internal/trace"
)

// RunSummary condenses one single-flow run for the sweep figures.
type RunSummary struct {
	Scheme         string
	Condition      trace.Condition
	Utilization    float64 // mean delivered/capacity over the measured window
	LatencyRatio   float64 // mean RTT / base RTT
	LossRate       float64
	ThroughputMbps float64
	AvgRTTms       float64
	Reward         float64 // Equation 2 under the run's weight vector (0 if n/a)
}

// warmupFrac is the fraction of each run discarded before measuring, so
// slow-start transients do not pollute steady-state numbers.
const warmupFrac = 0.25

// Summarize reduces per-MI metrics to a RunSummary, discarding the warmup
// prefix.
func Summarize(scheme string, cond trace.Condition, ms []gym.Metrics) RunSummary {
	start := int(float64(len(ms)) * warmupFrac)
	if start >= len(ms) {
		start = 0
	}
	window := ms[start:]
	var util, latRatio, loss, thr, rtt float64
	for _, m := range window {
		util += math.Min(m.Utilization, 1)
		latRatio += m.LatencyRatioToBase()
		loss += m.LossRate
		thr += m.Throughput
		rtt += m.AvgRTT
	}
	n := float64(len(window))
	return RunSummary{
		Scheme:         scheme,
		Condition:      cond,
		Utilization:    util / n,
		LatencyRatio:   latRatio / n,
		LossRate:       loss / n,
		ThroughputMbps: trace.PktsPerSecToMbps(thr/n, 1500),
		AvgRTTms:       rtt / n * 1000,
	}
}

// RunScheme executes one algorithm on one condition for the given number of
// monitor intervals and summarizes the result.
func RunScheme(alg cc.Algorithm, cond trace.Condition, steps int, seed int64) RunSummary {
	cfg := gym.FromCondition(cond, 1500, seed)
	env := gym.New(cfg)
	ms := cc.Drive(env, alg, steps, seed)
	return Summarize(alg.Name(), cond, ms)
}

// Table is a simple text table for experiment output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddF appends a row formatting each value with %v / %.3f as appropriate.
func (t *Table) AddF(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table as aligned text.
func (t *Table) Write(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if _, err := fmt.Fprintf(w, "%s%s  ", c, spaces(pad)); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	if len(t.Header) > 0 {
		if err := writeRow(t.Header); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// spaces returns n spaces.
func spaces(n int) string {
	if n <= 0 {
		return ""
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = ' '
	}
	return string(b)
}
