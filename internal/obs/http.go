package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
)

// HandlerConfig wires the observability endpoints. Any nil field
// disables its endpoint group.
type HandlerConfig struct {
	// Registry backs /metrics (Prometheus text) and /vars (flat JSON).
	Registry *Registry
	// Events backs /events (JSON tail, ?n= limit, default 100).
	Events *EventLog
	// Health backs /healthz: returns liveness plus detail fields merged
	// into the JSON body. ok=false answers 503.
	Health func() (ok bool, detail map[string]any)
	// Flight backs /flightrec?app=N with a per-app decision dump.
	Flight func(app uint64) ([]Decision, bool)
	// FlightIndex lists app ids with recorders (GET /flightrec without
	// ?app=).
	FlightIndex func() []uint64
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// NewHandler returns an http.Handler serving the configured endpoints:
// /metrics, /vars, /events, /healthz, /flightrec, /debug/pprof/*.
func NewHandler(cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	if cfg.Registry != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			cfg.Registry.WritePrometheus(w)
		})
		mux.HandleFunc("/vars", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			cfg.Registry.WriteVars(w)
		})
	}
	if cfg.Events != nil {
		mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
			n := 100
			if s := r.URL.Query().Get("n"); s != "" {
				v, err := strconv.Atoi(s)
				if err != nil || v <= 0 {
					http.Error(w, "bad n", http.StatusBadRequest)
					return
				}
				n = v
			}
			writeJSON(w, http.StatusOK, cfg.Events.Tail(n))
		})
	}
	if cfg.Health != nil {
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			ok, detail := cfg.Health()
			body := make(map[string]any, len(detail)+1)
			for k, v := range detail {
				body[k] = v
			}
			status := http.StatusOK
			if ok {
				body["status"] = "ok"
			} else {
				body["status"] = "unhealthy"
				status = http.StatusServiceUnavailable
			}
			writeJSON(w, status, body)
		})
	}
	if cfg.Flight != nil {
		mux.HandleFunc("/flightrec", func(w http.ResponseWriter, r *http.Request) {
			s := r.URL.Query().Get("app")
			if s == "" {
				var apps []uint64
				if cfg.FlightIndex != nil {
					apps = cfg.FlightIndex()
					sort.Slice(apps, func(i, j int) bool { return apps[i] < apps[j] })
				}
				writeJSON(w, http.StatusOK, map[string]any{"apps": apps})
				return
			}
			id, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad app", http.StatusBadRequest)
				return
			}
			dump, ok := cfg.Flight(id)
			if !ok {
				http.Error(w, "unknown app", http.StatusNotFound)
				return
			}
			writeJSON(w, http.StatusOK, dump)
		})
	}
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
