package obs

import (
	"bufio"
	"math"
	"math/bits"
	"strconv"
	"sync/atomic"
)

// numStripes is the number of padded cells per counter. Stripe owners
// are assigned by the caller (shard index, handle hash, worker id), so
// independent writers land on independent cache lines without any
// per-goroutine ID tricks.
const numStripes = 8

// stripeCell is one cache line worth of counter state. The padding
// keeps adjacent stripes from false-sharing.
type stripeCell struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing striped counter. A nil
// *Counter is a no-op.
type Counter struct {
	name  string
	help  string
	cells [numStripes]stripeCell
}

// Counter registers (or returns the existing) counter under name.
// Returns nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(&Counter{name: name, help: help}).(*Counter)
}

// Add increments the counter by n on stripe 0.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.cells[0].v.Add(n)
}

// AddAt increments the counter by n on the given stripe. Callers with a
// natural shard/worker index should pass it so concurrent writers do
// not contend on one cache line; the stripe is masked into range.
func (c *Counter) AddAt(stripe int, n uint64) {
	if c == nil {
		return
	}
	c.cells[stripe&(numStripes-1)].v.Add(n)
}

// Value sums the stripes.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.cells {
		total += c.cells[i].v.Load()
	}
	return total
}

func (c *Counter) metricName() string { return c.name }
func (c *Counter) metricHelp() string { return c.help }
func (c *Counter) metricKind() string { return "counter" }

func (c *Counter) writeProm(bw *bufio.Writer) {
	bw.WriteString(c.name)
	bw.WriteByte(' ')
	var buf [20]byte
	bw.Write(strconv.AppendUint(buf[:0], c.Value(), 10))
	bw.WriteByte('\n')
}

func (c *Counter) writeVar(bw *bufio.Writer) {
	var buf [20]byte
	bw.Write(strconv.AppendUint(buf[:0], c.Value(), 10))
}

// CounterFunc is a counter whose value is computed at scrape time from
// an existing atomic the instrumented code already maintains — zero
// added hot-path cost for values that are already counted somewhere.
type CounterFunc struct {
	name string
	help string
	fn   func() uint64
}

// CounterFunc registers a read-at-scrape counter backed by fn.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	if r == nil {
		return
	}
	r.register(&CounterFunc{name: name, help: help, fn: fn})
}

func (c *CounterFunc) metricName() string { return c.name }
func (c *CounterFunc) metricHelp() string { return c.help }
func (c *CounterFunc) metricKind() string { return "counter" }

func (c *CounterFunc) writeProm(bw *bufio.Writer) {
	bw.WriteString(c.name)
	bw.WriteByte(' ')
	var buf [20]byte
	bw.Write(strconv.AppendUint(buf[:0], c.fn(), 10))
	bw.WriteByte('\n')
}

func (c *CounterFunc) writeVar(bw *bufio.Writer) {
	var buf [20]byte
	bw.Write(strconv.AppendUint(buf[:0], c.fn(), 10))
}

// Gauge is a settable float64 value (stored as IEEE-754 bits in one
// atomic word). A nil *Gauge is a no-op.
type Gauge struct {
	name string
	help string
	bits atomic.Uint64
}

// Gauge registers (or returns the existing) gauge under name. Returns
// nil on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(&Gauge{name: name, help: help}).(*Gauge)
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge (CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) metricHelp() string { return g.help }
func (g *Gauge) metricKind() string { return "gauge" }

func (g *Gauge) writeProm(bw *bufio.Writer) { writePromLine(bw, g.name, g.Value()) }
func (g *Gauge) writeVar(bw *bufio.Writer)  { formatFloat(bw, g.Value()) }

// GaugeFunc is a gauge computed at scrape time from existing state.
type GaugeFunc struct {
	name string
	help string
	fn   func() float64
}

// GaugeFunc registers a read-at-scrape gauge backed by fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&GaugeFunc{name: name, help: help, fn: fn})
}

func (g *GaugeFunc) metricName() string { return g.name }
func (g *GaugeFunc) metricHelp() string { return g.help }
func (g *GaugeFunc) metricKind() string { return "gauge" }

func (g *GaugeFunc) writeProm(bw *bufio.Writer) { writePromLine(bw, g.name, g.fn()) }
func (g *GaugeFunc) writeVar(bw *bufio.Writer)  { formatFloat(bw, g.fn()) }

// Histogram bucket layout: values 0..15 get exact buckets; above that
// each power-of-two octave is split into 4 sub-buckets (12.5% relative
// width), for 256 buckets total covering the full uint64 range. A
// histogram stores raw uint64 observations (typically nanoseconds or a
// unitless size) and applies Scale only at exposition time, so Observe
// never touches floating point.
const histBuckets = 256

// histUpper[b] is the largest raw value that lands in bucket b.
var histUpper [histBuckets]uint64

func init() {
	for b := 0; b < 16; b++ {
		histUpper[b] = uint64(b)
	}
	for b := 16; b < histBuckets; b++ {
		l := uint(5 + (b-16)/4) // bits.Len64 of values in this octave
		sub := uint64((b - 16) % 4)
		lo := uint64(1) << (l - 1)
		width := uint64(1) << (l - 3)
		up := lo + (sub+1)*width - 1
		if up < lo { // overflow at the top of the range
			up = math.MaxUint64
		}
		histUpper[b] = up
	}
}

// histBucket maps a raw observation to its bucket index.
func histBucket(v uint64) int {
	if v < 16 {
		return int(v)
	}
	l := uint(bits.Len64(v))
	return 16 + int(l-5)*4 + int((v>>(l-3))&3)
}

// Histogram is a lock-free log-bucketed histogram. Observe costs one
// bucket-index computation plus three atomic ops and never allocates.
// A nil *Histogram is a no-op.
type Histogram struct {
	name  string
	help  string
	scale float64 // raw units -> exposition units (1e-9 for ns -> s)
	sum   atomic.Uint64
	max   atomic.Uint64
	cells [histBuckets]atomic.Uint64
}

// Histogram registers (or returns the existing) histogram under name.
// scale converts stored raw units to exposition units (pass 1e-9 when
// observing nanoseconds to expose seconds; 1 for unitless values).
// Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string, scale float64) *Histogram {
	if r == nil {
		return nil
	}
	if scale == 0 {
		scale = 1
	}
	return r.register(&Histogram{name: name, help: help, scale: scale}).(*Histogram)
}

// Observe records one raw value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.cells[histBucket(v)].Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// HistSnapshot is a frozen copy of a histogram's state. Quantiles are
// derived from bucket upper bounds (≤12.5% relative error above 15,
// exact below), capped at the tracked maximum.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64 // raw units
	Max     uint64 // raw units
	buckets [histBuckets]uint64
}

// Snapshot copies the histogram counters. The copy is not a single
// atomic cut across buckets, but every bucket value is monotone, so
// quantiles from a snapshot taken during concurrent Observes are
// bracketed by the true before/after distributions.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.cells {
		n := h.cells[i].Load()
		s.buckets[i] = n
		s.Count += n
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Quantile returns the raw-unit value at quantile q in [0,1].
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b := 0; b < histBuckets; b++ {
		cum += s.buckets[b]
		if cum >= target {
			up := histUpper[b]
			if up > s.Max {
				up = s.Max
			}
			return up
		}
	}
	return s.Max
}

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) metricHelp() string { return h.help }
func (h *Histogram) metricKind() string { return "histogram" }

// Scale returns the raw-to-exposition unit multiplier.
func (h *Histogram) Scale() float64 {
	if h == nil {
		return 1
	}
	return h.scale
}

func (h *Histogram) writeProm(bw *bufio.Writer) {
	s := h.Snapshot()
	var cum uint64
	for b := 0; b < histBuckets; b++ {
		if s.buckets[b] == 0 {
			continue
		}
		cum += s.buckets[b]
		bw.WriteString(h.name)
		bw.WriteString(`_bucket{le="`)
		formatFloat(bw, float64(histUpper[b])*h.scale)
		bw.WriteString(`"} `)
		var buf [20]byte
		bw.Write(strconv.AppendUint(buf[:0], cum, 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(h.name)
	bw.WriteString(`_bucket{le="+Inf"} `)
	var buf [20]byte
	bw.Write(strconv.AppendUint(buf[:0], s.Count, 10))
	bw.WriteByte('\n')
	writePromLine(bw, h.name+"_sum", float64(s.Sum)*h.scale)
	bw.WriteString(h.name)
	bw.WriteString("_count ")
	bw.Write(strconv.AppendUint(buf[:0], s.Count, 10))
	bw.WriteByte('\n')
}

func (h *Histogram) writeVar(bw *bufio.Writer) {
	s := h.Snapshot()
	bw.WriteString(`{"count": `)
	var buf [20]byte
	bw.Write(strconv.AppendUint(buf[:0], s.Count, 10))
	bw.WriteString(`, "sum": `)
	formatFloat(bw, float64(s.Sum)*h.scale)
	bw.WriteString(`, "max": `)
	formatFloat(bw, float64(s.Max)*h.scale)
	bw.WriteString(`, "p50": `)
	formatFloat(bw, float64(s.Quantile(0.50))*h.scale)
	bw.WriteString(`, "p90": `)
	formatFloat(bw, float64(s.Quantile(0.90))*h.scale)
	bw.WriteString(`, "p99": `)
	formatFloat(bw, float64(s.Quantile(0.99))*h.scale)
	bw.WriteByte('}')
}
