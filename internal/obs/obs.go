// Package obs is the zero-dependency observability layer for the mocc
// serving stack: lock-free counters/gauges, log-bucketed latency
// histograms, a bounded structured event log, and a per-app decision
// flight recorder, with Prometheus text-format and expvar-style JSON
// exposition plus an HTTP handler bundling /metrics, /vars, /events,
// /healthz, /flightrec and /debug/pprof.
//
// Design constraints, in order:
//
//   - Hot-path cost ~ one atomic add. Counter.Add is an atomic add on a
//     cache-line-padded stripe; Histogram.Observe is a bucket-index
//     computation (bits.Len64 + shifts) plus three atomic ops. Neither
//     allocates — pinned by AllocsPerRun tests.
//   - True no-op when disabled. A nil *Registry returns nil metrics from
//     every constructor, and every method on a nil metric, event log, or
//     flight recorder returns immediately, so instrumented code never
//     branches on "is observability on" — it just calls through.
//   - Snapshots are frozen. Scrapers read a copied snapshot (histogram
//     buckets, event tail, flight-recorder dump), never live state, so a
//     slow scrape cannot stall the serving hot path.
//   - Zero dependencies. Standard library only; the Prometheus text
//     format and the expvar-style JSON are rendered by hand.
//
// Metric names carry their labels pre-rendered (for example
// "mocc_serve_sheds_total{cause=\"queue\"}"): the registry treats the
// full string as the identity and the expositor splits the family name
// back out for HELP/TYPE lines. This keeps the hot path free of label
// lookup entirely — each labelled series is its own metric value.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metric is the registry-internal face of every metric kind.
type metric interface {
	metricName() string // full name, labels pre-rendered
	metricHelp() string
	metricKind() string // "counter" | "gauge" | "histogram"
	writeProm(w *bufio.Writer)
	writeVar(w *bufio.Writer)
}

// Registry holds a named set of metrics and renders them. A nil
// *Registry is the disabled state: every constructor returns nil and
// every nil metric method is a no-op.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]metric
	ordered []metric
	sorted  bool
}

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

// register interns m under its full name. Re-registering the same name
// with the same kind returns the existing metric (so independent
// components can share a series); a kind mismatch is a programming
// error and panics.
func (r *Registry) register(m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byName[m.metricName()]; ok {
		if old.metricKind() != m.metricKind() {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)",
				m.metricName(), m.metricKind(), old.metricKind()))
		}
		return old
	}
	r.byName[m.metricName()] = m
	r.ordered = append(r.ordered, m)
	r.sorted = false
	return m
}

// snapshotOrdered returns the metrics sorted by full name. Sorting is
// cached between registrations; scrapes after the registry has settled
// only copy the slice header under the lock.
func (r *Registry) snapshotOrdered() []metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.sorted {
		sort.Slice(r.ordered, func(i, j int) bool {
			return r.ordered[i].metricName() < r.ordered[j].metricName()
		})
		r.sorted = true
	}
	return r.ordered
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4). Metrics sharing a family
// (same name up to the label block) share one HELP/TYPE header.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	lastFamily := ""
	for _, m := range r.snapshotOrdered() {
		fam := familyOf(m.metricName())
		if fam != lastFamily {
			lastFamily = fam
			bw.WriteString("# HELP ")
			bw.WriteString(fam)
			bw.WriteByte(' ')
			bw.WriteString(m.metricHelp())
			bw.WriteByte('\n')
			bw.WriteString("# TYPE ")
			bw.WriteString(fam)
			bw.WriteByte(' ')
			bw.WriteString(m.metricKind())
			bw.WriteByte('\n')
		}
		m.writeProm(bw)
	}
}

// WriteVars renders every registered metric as one flat expvar-style
// JSON object keyed by full metric name. Counters and gauges map to
// numbers; histograms map to {count, sum, max, p50, p90, p99} objects
// in exposition units.
func (r *Registry) WriteVars(w io.Writer) {
	if r == nil {
		io.WriteString(w, "{}\n")
		return
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	bw.WriteString("{\n")
	ms := r.snapshotOrdered()
	for i, m := range ms {
		bw.WriteString(strconv.Quote(m.metricName()))
		bw.WriteString(": ")
		m.writeVar(bw)
		if i < len(ms)-1 {
			bw.WriteByte(',')
		}
		bw.WriteByte('\n')
	}
	bw.WriteString("}\n")
}

// familyOf strips the pre-rendered label block from a full metric name.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// formatFloat renders a float64 the way the Prometheus text format
// expects (shortest round-trippable representation).
func formatFloat(bw *bufio.Writer, v float64) {
	var buf [32]byte
	bw.Write(strconv.AppendFloat(buf[:0], v, 'g', -1, 64))
}

// writePromLine writes `name value\n` for a scalar sample.
func writePromLine(bw *bufio.Writer, name string, v float64) {
	bw.WriteString(name)
	bw.WriteByte(' ')
	formatFloat(bw, v)
	bw.WriteByte('\n')
}
