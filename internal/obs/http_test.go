package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func testHandler() (*Registry, *EventLog, *Flight) {
	r := NewRegistry()
	r.Counter("t_total", "help").Add(7)
	l := NewEventLog(16)
	f := NewFlight(8)
	return r, l, f
}

func TestHandlerEndpoints(t *testing.T) {
	reg, events, flight := testHandler()
	events.Emit(Event{Type: EvEpochPublish, Epoch: 2})
	flight.Record(Decision{Rate: 12.5, Verdict: VerdictOK})
	healthy := true
	h := NewHandler(HandlerConfig{
		Registry: reg,
		Events:   events,
		Health: func() (bool, map[string]any) {
			return healthy, map[string]any{"epoch": 2}
		},
		Flight: func(app uint64) ([]Decision, bool) {
			if app != 1 {
				return nil, false
			}
			return flight.Dump(), true
		},
		FlightIndex: func() []uint64 { return []uint64{1} },
		Pprof:       true,
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", path, nil)
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "t_total 7") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/vars"); code != 200 || !strings.Contains(body, `"t_total": 7`) {
		t.Fatalf("/vars = %d %q", code, body)
	}
	code, body := get("/events?n=10")
	if code != 200 || !strings.Contains(body, `"epoch_publish"`) {
		t.Fatalf("/events = %d %q", code, body)
	}
	var evs []Event
	if err := json.Unmarshal([]byte(body), &evs); err != nil || len(evs) != 1 {
		t.Fatalf("events JSON: %v %q", err, body)
	}
	if code, _ := get("/events?n=bogus"); code != 400 {
		t.Fatalf("bad n = %d", code)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	healthy = false
	if code, body := get("/healthz"); code != 503 || !strings.Contains(body, `"unhealthy"`) {
		t.Fatalf("unhealthy /healthz = %d %q", code, body)
	}
	if code, body := get("/flightrec"); code != 200 || !strings.Contains(body, `"apps"`) {
		t.Fatalf("/flightrec index = %d %q", code, body)
	}
	if code, body := get("/flightrec?app=1"); code != 200 || !strings.Contains(body, `"rate": 12.5`) {
		t.Fatalf("/flightrec?app=1 = %d %q", code, body)
	}
	if code, _ := get("/flightrec?app=99"); code != 404 {
		t.Fatalf("unknown app = %d", code)
	}
	if code, _ := get("/flightrec?app=x"); code != 400 {
		t.Fatalf("bad app = %d", code)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

func TestHandlerDisabledGroups(t *testing.T) {
	h := NewHandler(HandlerConfig{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 404 {
		t.Fatalf("disabled /metrics = %d", rec.Code)
	}
}
