package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterStripes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	for s := 0; s < 32; s++ {
		c.AddAt(s, uint64(s+1))
	}
	c.Add(5)
	want := uint64(5)
	for s := 0; s < 32; s++ {
		want += uint64(s + 1)
	}
	if got := c.Value(); got != want {
		t.Fatalf("Value = %d, want %d", got, want)
	}
}

func TestCounterReregister(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "help")
	b := r.Counter("dup_total", "help")
	if a != b {
		t.Fatal("re-registering same name+kind should return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch should panic")
		}
	}()
	r.Gauge("dup_total", "help")
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Add(1.25)
	if got := g.Value(); got != 3.75 {
		t.Fatalf("Value = %v, want 3.75", got)
	}
	g.Add(-4)
	if got := g.Value(); got != -0.25 {
		t.Fatalf("Value = %v, want -0.25", got)
	}
}

func TestNilRegistryNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", 1)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil metrics")
	}
	c.Add(1)
	c.AddAt(3, 1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	r.CounterFunc("a", "", func() uint64 { return 0 })
	r.GaugeFunc("b", "", func() float64 { return 0 })
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil metrics must read zero")
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	var el *EventLog
	el.Emit(Event{Type: EvShed})
	if el.Tail(10) != nil || el.Seq() != 0 {
		t.Fatal("nil event log must be empty")
	}
	var f *Flight
	f.Record(Decision{})
	if f.Dump() != nil || f.Len() != 0 {
		t.Fatal("nil flight must be empty")
	}
	var lim *Limiter
	if lim.Allow(time.Second) {
		t.Fatal("nil limiter must refuse")
	}
}

func TestHistBucketMonotone(t *testing.T) {
	// Bucket index and upper bounds must be monotone and consistent:
	// every value must land in a bucket whose upper bound is >= value
	// and whose predecessor's upper bound is < value.
	vals := []uint64{0, 1, 15, 16, 17, 19, 20, 31, 32, 63, 64, 100, 1000,
		1 << 20, 1<<20 + 12345, 1 << 40, math.MaxUint64/2 + 1, math.MaxUint64}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		vals = append(vals, rng.Uint64()>>uint(rng.Intn(64)))
	}
	for _, v := range vals {
		b := histBucket(v)
		if b < 0 || b >= histBuckets {
			t.Fatalf("bucket(%d) = %d out of range", v, b)
		}
		if histUpper[b] < v {
			t.Fatalf("bucket(%d) = %d but upper %d < value", v, b, histUpper[b])
		}
		if b > 0 && histUpper[b-1] >= v {
			t.Fatalf("bucket(%d) = %d but previous upper %d >= value", v, b, histUpper[b-1])
		}
	}
	for b := 1; b < histBuckets; b++ {
		if histUpper[b] <= histUpper[b-1] {
			t.Fatalf("histUpper not strictly increasing at %d", b)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "help", 1)
	// 1000 samples uniform in [0, 100000): quantiles must be within the
	// documented 12.5% relative bucket error.
	rng := rand.New(rand.NewSource(42))
	var raw []uint64
	for i := 0; i < 1000; i++ {
		v := uint64(rng.Intn(100000))
		raw = append(raw, v)
		h.Observe(v)
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Max != raw[len(raw)-1] {
		t.Fatalf("Max = %d, want %d", s.Max, raw[len(raw)-1])
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := float64(s.Quantile(q))
		exact := float64(raw[int(q*float64(len(raw)-1))])
		if got < exact*0.999 || got > exact*1.126 {
			t.Fatalf("Quantile(%v) = %v, exact %v: outside bucket error bound", q, got, exact)
		}
	}
	if got := s.Quantile(1.0); got != s.Max {
		t.Fatalf("Quantile(1) = %d, want max %d", got, s.Max)
	}
}

func TestHistogramSmallExact(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("small", "help", 1)
	for v := uint64(0); v < 16; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 7 {
		t.Fatalf("median of 0..15 = %d, want 7 (exact buckets)", got)
	}
	if s.Sum != 120 {
		t.Fatalf("Sum = %d, want 120", s.Sum)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(`sheds_total{cause="queue"}`, "sheds by cause").Add(3)
	r.Counter(`sheds_total{cause="deadline"}`, "sheds by cause").Add(1)
	r.Gauge("depth", "queue depth").Set(42.5)
	r.CounterFunc("reports_total", "reports", func() uint64 { return 99 })
	r.GaugeFunc("apps", "live apps", func() float64 { return 7 })
	h := r.Histogram("lat_seconds", "latency", 1e-9)
	h.Observe(1500) // ns
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE sheds_total counter",
		`sheds_total{cause="deadline"} 1`,
		`sheds_total{cause="queue"} 3`,
		"# TYPE depth gauge",
		"depth 42.5",
		"reports_total 99",
		"apps 7",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="+Inf"} 1`,
		"lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One HELP/TYPE header per family, not per labelled series.
	if strings.Count(out, "# TYPE sheds_total") != 1 {
		t.Fatalf("family header duplicated:\n%s", out)
	}
	// Histogram sum must be scaled to seconds.
	if !strings.Contains(out, "lat_seconds_sum 1.5e-06") {
		t.Fatalf("scaled sum missing:\n%s", out)
	}
}

func TestVarsJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(5)
	h := r.Histogram("h", "", 1)
	h.Observe(10)
	var sb strings.Builder
	r.WriteVars(&sb)
	out := sb.String()
	for _, want := range []string{`"c_total": 5`, `"count": 1`, `"p50": 10`} {
		if !strings.Contains(out, want) {
			t.Fatalf("vars missing %q:\n%s", want, out)
		}
	}
}

func TestEventLogRingAndTail(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Emit(Event{Type: EvShed, Epoch: uint64(i)})
	}
	tail := l.Tail(100)
	if len(tail) != 4 {
		t.Fatalf("Tail len = %d, want ring size 4", len(tail))
	}
	for i, e := range tail {
		if e.Seq != uint64(6+i) || e.Epoch != uint64(6+i) {
			t.Fatalf("tail[%d] = seq %d epoch %d, want %d", i, e.Seq, e.Epoch, 6+i)
		}
		if e.Time.IsZero() {
			t.Fatal("event time not stamped")
		}
	}
	if got := l.Tail(2); len(got) != 2 || got[0].Seq != 8 {
		t.Fatalf("Tail(2) = %+v", got)
	}
	if l.Seq() != 10 {
		t.Fatalf("Seq = %d", l.Seq())
	}
}

func TestEventSubscribe(t *testing.T) {
	l := NewEventLog(8)
	var got []Event
	l.Subscribe(func(e Event) { got = append(got, e) })
	l.Emit(Event{Type: EvCanaryRollback, Epoch: 3})
	if len(got) != 1 || got[0].Type != EvCanaryRollback || got[0].Epoch != 3 {
		t.Fatalf("subscriber saw %+v", got)
	}
}

func TestEventTypeNames(t *testing.T) {
	if EvCanaryRollback.String() != "canary_rollback" {
		t.Fatalf("name = %q", EvCanaryRollback.String())
	}
	b, err := EvSafeModeTrip.MarshalJSON()
	if err != nil || string(b) != `"safemode_trip"` {
		t.Fatalf("marshal = %s, %v", b, err)
	}
	if EventType(200).String() != "unknown" {
		t.Fatal("out-of-range type must stringify safely")
	}
}

func TestFlightRing(t *testing.T) {
	f := NewFlight(3)
	for i := 0; i < 7; i++ {
		f.Record(Decision{Rate: float64(i)})
	}
	dump := f.Dump()
	if len(dump) != 3 {
		t.Fatalf("Dump len = %d", len(dump))
	}
	for i, d := range dump {
		if d.Seq != uint64(4+i) || d.Rate != float64(4+i) {
			t.Fatalf("dump[%d] = %+v", i, d)
		}
	}
	if f.Len() != 7 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestLimiter(t *testing.T) {
	var lim Limiter
	if !lim.Allow(time.Hour) {
		t.Fatal("first Allow must pass")
	}
	if lim.Allow(time.Hour) {
		t.Fatal("second Allow inside gap must refuse")
	}
	if !lim.Allow(0) {
		t.Fatal("zero gap must always pass")
	}
}

func TestVerdictNames(t *testing.T) {
	if VerdictName(VerdictNonFinite) != "non_finite" || VerdictName(250) != "unknown" {
		t.Fatal("verdict naming broken")
	}
}

// TestConcurrentScrape hammers every metric kind from writer goroutines
// while scraping both expositions — the in-package half of the race
// coverage (the full-stack version lives in the root package).
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", 1)
	l := NewEventLog(64)
	f := NewFlight(16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.AddAt(id, 1)
				g.Set(float64(i))
				h.Observe(uint64(i % 1000))
				f.Record(Decision{Rate: float64(i)})
				if i%64 == 0 {
					l.Emit(Event{Type: EvShed})
				}
			}
		}(w)
	}
	deadline := time.After(100 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			var sb strings.Builder
			r.WritePrometheus(&sb)
			r.WriteVars(&sb)
			l.Tail(32)
			f.Dump()
		}
	}
	close(stop)
	wg.Wait()
	if c.Value() == 0 || h.Snapshot().Count == 0 {
		t.Fatal("writers made no progress")
	}
}

// Zero-alloc pins: the hot-path operations must not allocate.
func TestZeroAllocCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("zc_total", "")
	if n := testing.AllocsPerRun(1000, func() { c.AddAt(3, 1) }); n != 0 {
		t.Fatalf("Counter.AddAt allocates %v per op", n)
	}
	var nilC *Counter
	if n := testing.AllocsPerRun(1000, func() { nilC.Add(1) }); n != 0 {
		t.Fatalf("nil Counter.Add allocates %v per op", n)
	}
}

func TestZeroAllocHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("zh", "", 1e-9)
	v := uint64(0)
	if n := testing.AllocsPerRun(1000, func() { v += 997; h.Observe(v) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilH.Observe(1) }); n != 0 {
		t.Fatalf("nil Histogram.Observe allocates %v per op", n)
	}
}

func TestZeroAllocFlightAndGauge(t *testing.T) {
	f := NewFlight(32)
	d := Decision{Act: 1, Rate: 2, Epoch: 3}
	if n := testing.AllocsPerRun(1000, func() { f.Record(d) }); n != 0 {
		t.Fatalf("Flight.Record allocates %v per op", n)
	}
	r := NewRegistry()
	g := r.Gauge("zg", "")
	if n := testing.AllocsPerRun(1000, func() { g.Set(4.2) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v per op", n)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.AddAt(i, 1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_lat", "", 1e-9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) * 997)
	}
}

func BenchmarkFlightRecord(b *testing.B) {
	f := NewFlight(64)
	d := Decision{Act: 1, Rate: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(d)
	}
}
