package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EventType classifies a structured control-plane event.
type EventType uint8

const (
	evInvalid EventType = iota
	// EvEpochPublish: a new model generation was installed on the engine.
	EvEpochPublish
	// EvManualRollback: an operator (or state restore) re-installed the
	// displaced generation.
	EvManualRollback
	// EvCanaryRollback: the canary judge auto-rolled back an epoch whose
	// fleet fault rate exceeded threshold.
	EvCanaryRollback
	// EvShed: the engine refused a decision (queue bound or deadline).
	// Emitted throttled — the per-cause counters carry the volume.
	EvShed
	// EvSafeModeTrip: a handle's guard entered fallback.
	EvSafeModeTrip
	// EvSafeModeRecover: a handle's guard left fallback after a clean streak.
	EvSafeModeRecover
	// EvShardPanic: a model forward panicked inside a shard consumer.
	EvShardPanic
	// EvShardRestart: the watchdog restarted a crashed shard consumer.
	EvShardRestart
	// EvBlackout: the transport sender entered a blackout window.
	EvBlackout
	// EvBlackoutEnd: the transport sender recovered from a blackout.
	EvBlackoutEnd
	// EvFailover: a serve client fell back to its local AIMD controller.
	EvFailover
	// EvResync: a serve client re-established daemon-served decisions.
	EvResync
)

var eventNames = [...]string{
	evInvalid:         "invalid",
	EvEpochPublish:    "epoch_publish",
	EvManualRollback:  "manual_rollback",
	EvCanaryRollback:  "canary_rollback",
	EvShed:            "shed",
	EvSafeModeTrip:    "safemode_trip",
	EvSafeModeRecover: "safemode_recover",
	EvShardPanic:      "shard_panic",
	EvShardRestart:    "shard_restart",
	EvBlackout:        "blackout",
	EvBlackoutEnd:     "blackout_end",
	EvFailover:        "failover",
	EvResync:          "resync",
}

func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return "unknown"
}

// MarshalJSON renders the type as its string name.
func (t EventType) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// UnmarshalJSON parses the string name back into the type so clients
// can round-trip /events output.
func (t *EventType) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	for i, name := range eventNames {
		if name == s {
			*t = EventType(i)
			return nil
		}
	}
	*t = evInvalid
	return nil
}

// Event is one structured control-plane occurrence. Seq and Time are
// assigned by the log at emission.
type Event struct {
	Seq   uint64    `json:"seq"`
	Time  time.Time `json:"time"`
	Type  EventType `json:"type"`
	App   uint64    `json:"app,omitempty"`   // handle id, 0 when fleet-wide
	Epoch uint64    `json:"epoch,omitempty"` // model epoch in effect
	Msg   string    `json:"msg,omitempty"`   // human detail, rare paths only
}

// EventLog is a bounded ring of events with monotone sequence numbers
// and an optional subscription hook. Emission is mutex-guarded: events
// are control-plane rare (publishes, rollbacks, trips), and the one
// data-plane source — sheds — is throttled by the emitter. A nil
// *EventLog is a no-op.
type EventLog struct {
	mu   sync.Mutex
	ring []Event
	next uint64 // next sequence number; count emitted so far
	subs []func(Event)
}

// NewEventLog returns a ring holding the last n events (default 256).
func NewEventLog(n int) *EventLog {
	if n <= 0 {
		n = 256
	}
	return &EventLog{ring: make([]Event, n)}
}

// Emit stamps e with the next sequence number and the current time,
// stores it, and fires subscribers. Subscribers run under the log lock:
// they must be fast and must not emit events themselves.
func (l *EventLog) Emit(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	e.Seq = l.next
	e.Time = time.Now()
	l.ring[l.next%uint64(len(l.ring))] = e
	l.next++
	subs := l.subs
	l.mu.Unlock()
	for _, fn := range subs {
		fn(e)
	}
}

// Subscribe registers fn to be called for every subsequent event. The
// callback runs synchronously on the emitting goroutine; keep it fast
// and never call back into the log from it.
func (l *EventLog) Subscribe(fn func(Event)) {
	if l == nil || fn == nil {
		return
	}
	l.mu.Lock()
	// Copy-on-write so Emit can fire callbacks outside the lock without
	// racing a concurrent Subscribe appending in place.
	subs := make([]func(Event), len(l.subs)+1)
	copy(subs, l.subs)
	subs[len(subs)-1] = fn
	l.subs = subs
	l.mu.Unlock()
}

// Tail returns up to n most recent events, oldest first.
func (l *EventLog) Tail(n int) []Event {
	if l == nil || n <= 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	size := uint64(len(l.ring))
	have := l.next
	if have > size {
		have = size
	}
	if uint64(n) < have {
		have = uint64(n)
	}
	out := make([]Event, have)
	for i := uint64(0); i < have; i++ {
		out[i] = l.ring[(l.next-have+i)%size]
	}
	return out
}

// Seq returns the number of events emitted so far.
func (l *EventLog) Seq() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Limiter rate-limits event emission from a data-plane path (sheds):
// Allow returns true at most once per gap. Safe for concurrent use; a
// nil *Limiter always refuses.
type Limiter struct {
	lastNs atomic.Int64
}

// Allow reports whether an event may be emitted now, and if so claims
// the slot.
func (t *Limiter) Allow(gap time.Duration) bool {
	if t == nil {
		return false
	}
	now := time.Now().UnixNano()
	last := t.lastNs.Load()
	if now-last < int64(gap) {
		return false
	}
	return t.lastNs.CompareAndSwap(last, now)
}
