package obs

import (
	"math"
	"strconv"
	"sync"
)

// Guard verdict classes recorded per decision. These mirror the
// safe-mode guard's fault taxonomy so a flight-recorder dump names the
// reason a decision was judged bad without string formatting on the
// hot path.
const (
	VerdictOK        uint8 = iota // decision served normally
	VerdictPanic                  // model forward panicked
	VerdictNonFinite              // action was NaN/Inf
	VerdictEnvelope               // rate escaped the sane envelope
	VerdictStall                  // inference exceeded the stall threshold
	VerdictShed                   // engine refused (overload)
	VerdictFallback               // answered by the safe-mode fallback controller
)

var verdictNames = [...]string{
	VerdictOK:        "ok",
	VerdictPanic:     "panic",
	VerdictNonFinite: "non_finite",
	VerdictEnvelope:  "envelope",
	VerdictStall:     "stall",
	VerdictShed:      "shed",
	VerdictFallback:  "fallback",
}

// VerdictName returns the string form of a verdict class.
func VerdictName(v uint8) string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return "unknown"
}

// Decision is one flight-recorder entry: everything needed to
// post-mortem a single Report after the fact.
type Decision struct {
	Seq     uint64  `json:"seq"`     // per-app decision number
	TimeNs  int64   `json:"time_ns"` // wall clock, UnixNano
	Act     float64 `json:"act"`     // raw model action (pre-envelope)
	Rate    float64 `json:"rate"`    // rate returned to the application
	Epoch   uint64  `json:"epoch"`   // model epoch that served it
	Verdict uint8   `json:"verdict"` // Verdict* class
	LatNs   int64   `json:"lat_ns"`  // inference latency
}

// MarshalJSON renders the decision by hand: the whole point of the
// flight recorder is retaining pathological decisions, and those carry
// NaN/Inf actions that encoding/json refuses — non-finite floats are
// rendered as quoted strings ("NaN", "+Inf", "-Inf") instead.
func (d Decision) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 160)
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, d.Seq, 10)
	b = append(b, `,"time_ns":`...)
	b = strconv.AppendInt(b, d.TimeNs, 10)
	b = append(b, `,"act":`...)
	b = appendJSONFloat(b, d.Act)
	b = append(b, `,"rate":`...)
	b = appendJSONFloat(b, d.Rate)
	b = append(b, `,"epoch":`...)
	b = strconv.AppendUint(b, d.Epoch, 10)
	b = append(b, `,"verdict":"`...)
	b = append(b, VerdictName(d.Verdict)...)
	b = append(b, `","lat_ns":`...)
	b = strconv.AppendInt(b, d.LatNs, 10)
	b = append(b, '}')
	return b, nil
}

func appendJSONFloat(b []byte, v float64) []byte {
	switch {
	case math.IsNaN(v):
		return append(b, `"NaN"`...)
	case math.IsInf(v, 1):
		return append(b, `"+Inf"`...)
	case math.IsInf(v, -1):
		return append(b, `"-Inf"`...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// Flight is a fixed-size ring of the last N decisions for one app
// handle. Record costs a mutex lock plus a struct store — no
// allocation. A nil *Flight is a no-op.
type Flight struct {
	mu   sync.Mutex
	ring []Decision
	next uint64
}

// NewFlight returns a recorder retaining the last n decisions
// (default 64).
func NewFlight(n int) *Flight {
	if n <= 0 {
		n = 64
	}
	return &Flight{ring: make([]Decision, n)}
}

// Record stamps d with the next per-app sequence number and stores it.
func (f *Flight) Record(d Decision) {
	if f == nil {
		return
	}
	f.mu.Lock()
	d.Seq = f.next
	f.ring[f.next%uint64(len(f.ring))] = d
	f.next++
	f.mu.Unlock()
}

// Dump returns the retained decisions, oldest first.
func (f *Flight) Dump() []Decision {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	size := uint64(len(f.ring))
	have := f.next
	if have > size {
		have = size
	}
	out := make([]Decision, have)
	for i := uint64(0); i < have; i++ {
		out[i] = f.ring[(f.next-have+i)%size]
	}
	return out
}

// Len returns the number of decisions recorded so far (not retained).
func (f *Flight) Len() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}
