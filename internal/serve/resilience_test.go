package serve

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mocc/internal/core"
	"mocc/internal/objective"
)

// perturbed returns a clone of m with every actor parameter shifted by
// delta, so the two models provably decide differently.
func perturbed(m *core.Model, delta float64) *core.Model {
	c := m.Clone()
	for _, p := range c.ActorParams() {
		for i := range p.Value {
			p.Value[i] += delta
		}
	}
	return c
}

// TestEngineQueueBoundShed pins the overload door: with the consumer held
// inside a forward pass, submits beyond MaxQueue are answered NaN
// immediately instead of queueing without bound, and every request that did
// make it in is still served.
func TestEngineQueueBoundShed(t *testing.T) {
	m := core.NewModel(core.HistoryLen, 5)
	e := New(m, Config{Shards: 1, MaxBatch: 1, FlushInterval: -1, MaxQueue: 3})
	release := make(chan struct{})
	e.batchHook = func(int) { <-release }
	defer e.Close()

	w := objective.UniformObjectives(1, 1)[0]
	obs := testObs(m, 0, 0)
	var wg sync.WaitGroup
	res := make([]float64, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res[i] = e.NewClient(uint64(i), w).Act(obs)
		}(i)
	}
	for deadline := time.Now().Add(5 * time.Second); e.Stats().Queued < 3; {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %+v", e.Stats())
		}
		time.Sleep(100 * time.Microsecond)
	}

	start := time.Now()
	shed := e.NewClient(99, w).Act(obs)
	if !math.IsNaN(shed) {
		t.Fatalf("submit over MaxQueue returned %v, want NaN", shed)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("shed answer took %v; shedding must not block", waited)
	}
	close(release)
	wg.Wait()

	for i, r := range res {
		if math.IsNaN(r) {
			t.Fatalf("queued request %d was shed: %v", i, res)
		}
	}
	st := e.Stats()
	if st.ShedQueue != 1 || st.Reports != 3 || st.Queued != 0 {
		t.Fatalf("stats after queue-bound shed: %+v", st)
	}
}

// TestEngineDeadlineShed pins deadline shedding: a request that waited in
// the queue past Config.Deadline is answered NaN instead of served stale,
// while the request that made the deadline is served normally.
func TestEngineDeadlineShed(t *testing.T) {
	m := core.NewModel(core.HistoryLen, 6)
	e := New(m, Config{Shards: 1, MaxBatch: 1, FlushInterval: -1, Deadline: 100 * time.Millisecond})
	arrived := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	e.batchHook = func(int) {
		once.Do(func() {
			close(arrived)
			<-release
		})
	}
	defer e.Close()

	w := objective.UniformObjectives(1, 2)[0]
	obs := testObs(m, 1, 0)
	var aRes, bRes float64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); aRes = e.NewClient(1, w).Act(obs) }()
	select {
	case <-arrived: // consumer is now stalled inside A's forward pass
	case <-time.After(5 * time.Second):
		t.Fatal("first batch never reached the forward pass")
	}
	wg.Add(1)
	go func() { defer wg.Done(); bRes = e.NewClient(2, w).Act(obs) }()
	for deadline := time.Now().Add(5 * time.Second); e.Stats().Queued < 2; {
		if time.Now().After(deadline) {
			t.Fatalf("second request never queued: %+v", e.Stats())
		}
		time.Sleep(100 * time.Microsecond)
	}
	time.Sleep(150 * time.Millisecond) // B is now past the 100ms deadline
	close(release)
	wg.Wait()

	if math.IsNaN(aRes) {
		t.Fatal("in-deadline request was shed")
	}
	if !math.IsNaN(bRes) {
		t.Fatalf("request queued past the deadline returned %v, want NaN", bRes)
	}
	st := e.Stats()
	if st.ShedDeadline != 1 || st.Reports != 1 {
		t.Fatalf("stats after deadline shed: %+v", st)
	}
}

// TestEnginePanicRecovery pins the per-batch guard: a forward pass that
// panics answers its chunk NaN, and the shard keeps serving subsequent
// batches on a rebuilt inference view — no restart needed.
func TestEnginePanicRecovery(t *testing.T) {
	m := core.NewModel(core.HistoryLen, 7)
	e := New(m, Config{Shards: 1, FlushInterval: -1})
	var poison atomic.Bool
	poison.Store(true)
	e.batchHook = func(int) {
		if poison.CompareAndSwap(true, false) {
			panic("injected inference fault")
		}
	}
	defer e.Close()

	w := objective.UniformObjectives(1, 3)[0]
	obs := testObs(m, 2, 0)
	cl := e.NewClient(1, w)
	if got := cl.Act(obs); !math.IsNaN(got) {
		t.Fatalf("poisoned batch returned %v, want NaN", got)
	}
	got := cl.Act(obs)
	if want := m.NewInference().ActFor(w, obs); got != want {
		t.Fatalf("post-recovery decision %v, want %v", got, want)
	}
	st := e.Stats()
	if st.Panics != 1 || st.Restarts != 0 || st.Reports != 1 {
		t.Fatalf("stats after recovered panic: %+v", st)
	}
}

// TestEngineWatchdogRestart pins the consumer watchdog: a panic escaping the
// per-batch guards (injected at the top of the consumer loop) answers the
// stranded queue NaN and restarts the consumer instead of wedging the shard.
func TestEngineWatchdogRestart(t *testing.T) {
	m := core.NewModel(core.HistoryLen, 8)
	e := New(m, Config{Shards: 1, FlushInterval: -1})
	defer e.Close()

	w := objective.UniformObjectives(1, 4)[0]
	obs := testObs(m, 3, 0)
	cl := e.NewClient(1, w)

	e.crashNext.Store(true)
	if got := cl.Act(obs); !math.IsNaN(got) {
		t.Fatalf("request stranded by the crash returned %v, want NaN", got)
	}
	got := cl.Act(obs)
	if want := m.NewInference().ActFor(w, obs); got != want {
		t.Fatalf("post-restart decision %v, want %v", got, want)
	}
	st := e.Stats()
	if st.Restarts != 1 || st.Queued != 0 || st.Reports != 1 {
		t.Fatalf("stats after watchdog restart: %+v", st)
	}
}

// TestEngineRollback pins last-known-good retention: Rollback re-serves the
// generation displaced by the last Publish as a fresh epoch, and a second
// Rollback undoes the first.
func TestEngineRollback(t *testing.T) {
	m0 := core.NewModel(core.HistoryLen, 9)
	e := New(m0, Config{Shards: 1, FlushInterval: -1})
	defer e.Close()

	if _, _, err := e.Rollback(); err == nil {
		t.Fatal("Rollback before any Publish should fail")
	}

	m1 := perturbed(m0, 0.05)
	if _, err := e.Publish(m1); err != nil {
		t.Fatal(err)
	}

	w := objective.UniformObjectives(1, 5)[0]
	obs := testObs(m0, 4, 0)
	want0 := m0.NewInference().ActFor(w, obs)
	want1 := m1.NewInference().ActFor(w, obs)
	if want0 == want1 {
		t.Fatal("perturbation too small: models decide identically")
	}
	cl := e.NewClient(1, w)
	if got := cl.Act(obs); got != want1 {
		t.Fatalf("after publish: decision %v, want %v", got, want1)
	}

	seq, back, err := e.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 || back != m0 {
		t.Fatalf("Rollback -> (seq %d, model %p), want (2, %p)", seq, back, m0)
	}
	if got := cl.Act(obs); got != want0 {
		t.Fatalf("after rollback: decision %v, want %v (the prior generation)", got, want0)
	}

	seq, back, err = e.Rollback() // undo the undo
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 || back != m1 {
		t.Fatalf("second Rollback -> (seq %d, model %p), want (3, %p)", seq, back, m1)
	}
	if got := cl.Act(obs); got != want1 {
		t.Fatalf("after double rollback: decision %v, want %v", got, want1)
	}
	if st := e.Stats(); st.Rollbacks != 2 {
		t.Fatalf("Stats.Rollbacks = %d, want 2", st.Rollbacks)
	}
}

// TestEngineOverloadBounded drives 2x the queue bound of concurrent clients
// against one deliberately slowed shard and pins the overload contract:
// shed requests (and only shed requests) are answered NaN, everything else
// is served, and no request — served or shed — waits unbounded time.
func TestEngineOverloadBounded(t *testing.T) {
	m := core.NewModel(core.HistoryLen, 10)
	e := New(m, Config{
		Shards: 1, MaxBatch: 8, FlushInterval: -1,
		MaxQueue: 16, Deadline: 5 * time.Millisecond,
	})
	e.batchHook = func(int) { time.Sleep(200 * time.Microsecond) }
	defer e.Close()

	const clients, rounds = 32, 20
	prefs := objective.UniformObjectives(clients, 11)
	var nans, slow atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := e.NewClient(uint64(c), prefs[c])
			for r := 0; r < rounds; r++ {
				start := time.Now()
				got := cl.Act(testObs(m, c, r))
				if time.Since(start) > 2*time.Second {
					slow.Add(1)
				}
				if math.IsNaN(got) {
					nans.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	st := e.Stats()
	if slow.Load() != 0 {
		t.Fatalf("%d requests exceeded the 2s latency bound under overload (stats %+v)", slow.Load(), st)
	}
	if st.ShedQueue == 0 {
		t.Fatalf("2x-queue overload never shed at the door: %+v", st)
	}
	if got, want := uint64(nans.Load()), st.Shed(); got != want {
		t.Fatalf("NaN answers %d != shed counter %d (stats %+v)", got, want, st)
	}
	if got, want := st.Reports+st.Shed(), uint64(clients*rounds); got != want {
		t.Fatalf("served %d + shed %d = %d, want every request accounted (%d)", st.Reports, st.Shed(), got, want)
	}
	if st.Queued != 0 {
		t.Fatalf("queue gauge nonzero after drain: %+v", st)
	}
}

// TestEngineBaseEpoch pins crash-safe epoch resumption: an engine built
// with BaseEpoch serves that sequence number, and Publish continues the
// sequence from there.
func TestEngineBaseEpoch(t *testing.T) {
	m := core.NewModel(core.HistoryLen, 11)
	e := New(m, Config{Shards: 1, FlushInterval: -1, BaseEpoch: 41})
	defer e.Close()
	if got := e.Epoch(); got != 41 {
		t.Fatalf("Epoch() = %d, want 41", got)
	}
	seq, err := e.Publish(perturbed(m, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Fatalf("Publish after BaseEpoch 41 -> seq %d, want 42", seq)
	}
}
