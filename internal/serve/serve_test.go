package serve

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mocc/internal/core"
	"mocc/internal/objective"
)

// testObs returns a deterministic observation for (seed, round).
func testObs(m *core.Model, seed, round int) []float64 {
	rng := rand.New(rand.NewSource(int64(seed)*1000003 + int64(round)))
	obs := make([]float64, 3*m.HistoryLen)
	for i := range obs {
		obs[i] = rng.NormFloat64()
	}
	return obs
}

// TestEngineBitIdentical submits from many concurrent clients and pins
// every decision to the single-sample inference path bit for bit: the
// engine's coalescing must never change a result, only amortize its cost.
func TestEngineBitIdentical(t *testing.T) {
	m := core.NewModel(core.HistoryLen, 42)
	e := New(m, Config{Shards: 4, MaxBatch: 16})
	defer e.Close()

	const clients, rounds = 32, 25
	prefs := objective.UniformObjectives(clients, 7)
	got := make([][]float64, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := e.NewClient(uint64(c), prefs[c])
			res := make([]float64, rounds)
			for r := 0; r < rounds; r++ {
				res[r] = cl.Act(testObs(m, c, r))
			}
			got[c] = res
		}(c)
	}
	wg.Wait()

	inf := m.NewInference()
	for c := 0; c < clients; c++ {
		for r := 0; r < rounds; r++ {
			if want := inf.ActFor(prefs[c], testObs(m, c, r)); got[c][r] != want {
				t.Fatalf("client %d round %d: engine %v, single-sample %v", c, r, got[c][r], want)
			}
		}
	}

	st := e.Stats()
	if st.Reports != clients*rounds {
		t.Fatalf("Stats.Reports = %d, want %d", st.Reports, clients*rounds)
	}
	if st.Batches == 0 || st.MaxBatch < 1 || st.MaxBatch > 16 {
		t.Fatalf("implausible batch stats: %+v", st)
	}
}

// TestEngineCoalesces proves concurrent submissions actually share forward
// passes: a barrier-released burst against one shard with a generous flush
// window must produce a multi-request batch.
func TestEngineCoalesces(t *testing.T) {
	m := core.NewModel(core.HistoryLen, 3)
	e := New(m, Config{Shards: 1, MaxBatch: 64, FlushInterval: 5 * time.Millisecond})
	defer e.Close()

	const burst = 16
	obs := testObs(m, 1, 1)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < burst; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := e.NewClient(uint64(c), objective.BalancePref)
			<-start
			cl.Act(obs)
		}(c)
	}
	close(start)
	wg.Wait()

	if st := e.Stats(); st.MaxBatch < 2 {
		t.Fatalf("no coalescing observed: %+v", st)
	}
}

// TestEngineHotSwap publishes a storm of frozen model generations while
// clients keep submitting, and proves (a) no client ever observes a torn
// parameter set — every decision bit-matches the single-sample result of
// one complete published generation — and (b) the request path keeps making
// progress throughout the storm, i.e. Report never blocks on a swap beyond
// its own batch flush (Publish itself is one atomic pointer store).
func TestEngineHotSwap(t *testing.T) {
	base := core.NewModel(core.HistoryLen, 11)
	const generations = 8
	models := make([]*core.Model, generations)
	models[0] = base
	for g := 1; g < generations; g++ {
		c := models[g-1].Clone()
		for _, p := range c.ActorParams() {
			for i := range p.Value {
				p.Value[i] += 1e-3 * float64(g)
			}
		}
		models[g] = c
	}

	// Per-client reference set: the decision each complete generation
	// would make for that client's fixed (preference, observation).
	const clients = 8
	prefs := objective.UniformObjectives(clients, 13)
	obs := make([][]float64, clients)
	refs := make([][]float64, clients)
	for c := 0; c < clients; c++ {
		obs[c] = testObs(base, c, 0)
		refs[c] = make([]float64, generations)
		for g, mg := range models {
			refs[c][g] = mg.NewInference().ActFor(prefs[c], obs[c])
		}
		for g := 1; g < generations; g++ {
			if refs[c][g] == refs[c][g-1] {
				t.Fatalf("client %d: generations %d and %d decide identically; perturbation too small to detect tearing", c, g-1, g)
			}
		}
	}

	e := New(base, Config{Shards: 2, MaxBatch: 8, FlushInterval: -1})
	defer e.Close()

	stop := make(chan struct{})
	acted := make([]int, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := e.NewClient(uint64(c), prefs[c])
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := cl.Act(obs[c])
				ok := false
				for _, ref := range refs[c] {
					if v == ref {
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("client %d: decision %v matches no published generation — torn parameter set", c, v)
					return
				}
				acted[c]++
			}
		}(c)
	}

	// Publish storm: every generation in order, spaced to interleave with
	// live batches.
	for g := 1; g < generations; g++ {
		seq, err := e.Publish(models[g])
		if err != nil {
			t.Fatalf("Publish generation %d: %v", g, err)
		}
		if seq != uint64(g) {
			t.Fatalf("Publish generation %d: epoch %d", g, seq)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	for c := 0; c < clients; c++ {
		if acted[c] < 10 {
			t.Errorf("client %d made only %d decisions during the swap storm — request path stalled", c, acted[c])
		}
	}
	if st := e.Stats(); st.Epoch != generations-1 || st.Swaps == 0 {
		t.Fatalf("swap stats not recorded: %+v", st)
	}
}

// TestEnginePublishRejectsNonFinite mirrors OnlineAdapt's rollback guard:
// a poisoned model must never become a live generation.
func TestEnginePublishRejectsNonFinite(t *testing.T) {
	m := core.NewModel(core.HistoryLen, 5)
	e := New(m, Config{Shards: 1})
	defer e.Close()

	bad := m.Clone()
	bad.ActorParams()[0].Value[0] = math.NaN()
	if _, err := e.Publish(bad); err == nil {
		t.Fatal("Publish accepted a NaN-poisoned model")
	}
	if e.Epoch() != 0 {
		t.Fatalf("rejected publish advanced the epoch to %d", e.Epoch())
	}
}

// TestEngineClose covers the shutdown handshake: racing Acts either get a
// real decision or NaN, Close drains and returns, and post-Close Acts are
// NaN without enqueueing.
func TestEngineClose(t *testing.T) {
	m := core.NewModel(core.HistoryLen, 9)
	e := New(m, Config{Shards: 2, MaxBatch: 8})

	obs := testObs(m, 2, 2)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := e.NewClient(uint64(c), objective.RTCPref)
			for {
				v := cl.Act(obs)
				if math.IsNaN(v) {
					return // engine closed under us
				}
			}
		}(c)
	}
	time.Sleep(5 * time.Millisecond)
	e.Close()
	e.Close() // idempotent
	wg.Wait()

	cl := e.NewClient(99, objective.LatencyPref)
	if v := cl.Act(obs); !math.IsNaN(v) {
		t.Fatalf("Act after Close = %v, want NaN", v)
	}
}

// TestEngineStress churns many clients against few shards while publishes
// land concurrently — the package's -race workout.
func TestEngineStress(t *testing.T) {
	m := core.NewModel(core.HistoryLen, 21)
	e := New(m, Config{Shards: 2, MaxBatch: 8, FlushInterval: 50 * time.Microsecond})
	defer e.Close()

	clients := 64
	rounds := 30
	if testing.Short() {
		clients, rounds = 16, 10
	}
	prefs := objective.UniformObjectives(clients, 3)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := e.NewClient(uint64(c), prefs[c])
			obs := testObs(m, c, 0)
			for r := 0; r < rounds; r++ {
				if v := cl.Act(obs); math.IsNaN(v) {
					t.Errorf("client %d: NaN decision while engine open", c)
					return
				}
				if r%10 == 9 {
					cl.SetWeights(prefs[(c+r)%clients])
				}
			}
		}(c)
	}
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		for g := 0; g < 5; g++ {
			if _, err := e.Publish(m.Clone()); err != nil {
				t.Errorf("Publish: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-pubDone
}
