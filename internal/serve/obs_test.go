package serve

import (
	"strings"
	"sync"
	"testing"

	"mocc/internal/core"
	"mocc/internal/objective"
	"mocc/internal/obs"
)

// TestEngineObsWiring drives the engine with metrics and events attached
// and checks every series shows up in the exposition with plausible
// values, that flush causes are attributed, and that each decision
// carries the epoch that served it.
func TestEngineObsWiring(t *testing.T) {
	m := core.NewModel(core.HistoryLen, 42)
	reg := obs.NewRegistry()
	events := obs.NewEventLog(64)
	e := New(m, Config{Shards: 2, MaxBatch: 8, Metrics: reg, Events: events})

	const clients, rounds = 8, 20
	prefs := objective.UniformObjectives(clients, 7)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := e.NewClient(uint64(c), prefs[c])
			for r := 0; r < rounds; r++ {
				cl.Act(testObs(m, c, r))
			}
			if cl.LastEpoch() != 0 {
				t.Errorf("client %d: LastEpoch = %d before any publish", c, cl.LastEpoch())
			}
		}(c)
	}
	wg.Wait()

	// Publish a new generation and confirm decisions now carry epoch 1
	// and the event log recorded the publish.
	if _, err := e.Publish(m.Clone()); err != nil {
		t.Fatal(err)
	}
	cl := e.NewClient(99, prefs[0])
	cl.Act(testObs(m, 99, 0))
	if cl.LastEpoch() != 1 {
		t.Fatalf("LastEpoch = %d after publish, want 1", cl.LastEpoch())
	}
	e.Close()

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"mocc_serve_reports_total",
		"mocc_serve_batches_total",
		"mocc_serve_queue_depth",
		"mocc_serve_epoch 1",
		`mocc_serve_sheds_total{cause="queue"} 0`,
		"mocc_serve_batch_size_count",
		"mocc_serve_decision_latency_seconds_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Latency histogram samples 1 in 8 requests per client (every client
	// samples its first request, then every 8th); batch-size histogram
	// records one sample per forward pass.
	st := e.Stats()
	lat := reg.Histogram("mocc_serve_decision_latency_seconds", "", 1e-9).Snapshot()
	wantLat := uint64(clients)*((rounds+7)/8) + 1 // + the post-publish client
	if lat.Count != wantLat {
		t.Fatalf("latency samples = %d, want %d (1-in-8 of %d reports)",
			lat.Count, wantLat, st.Reports)
	}
	bs := reg.Histogram("mocc_serve_batch_size", "", 1).Snapshot()
	if bs.Count != st.Batches || bs.Sum != st.Reports {
		t.Fatalf("batch-size hist count=%d sum=%d vs batches=%d reports=%d",
			bs.Count, bs.Sum, st.Batches, st.Reports)
	}

	// Every flush was attributed to exactly one cause.
	var flushes uint64
	for _, cause := range []string{"full", "interval", "drain", "eager"} {
		flushes += reg.Counter(`mocc_serve_flushes_total{cause="`+cause+`"}`, "").Value()
	}
	if flushes == 0 {
		t.Fatal("no flushes attributed")
	}

	// The publish landed in the event log.
	var sawPublish bool
	for _, ev := range events.Tail(64) {
		if ev.Type == obs.EvEpochPublish && ev.Epoch == 1 {
			sawPublish = true
		}
	}
	if !sawPublish {
		t.Fatalf("no epoch_publish event: %+v", events.Tail(64))
	}
}

// TestEngineObsDisabled pins that a metrics-free engine still works and
// that LastEpoch tracks without a registry.
func TestEngineObsDisabled(t *testing.T) {
	m := core.NewModel(core.HistoryLen, 7)
	e := New(m, Config{Shards: 1, MaxBatch: 4})
	defer e.Close()
	cl := e.NewClient(1, objective.UniformObjectives(1, 3)[0])
	cl.Act(testObs(m, 1, 0))
	if cl.LastEpoch() != 0 {
		t.Fatalf("LastEpoch = %d", cl.LastEpoch())
	}
}
