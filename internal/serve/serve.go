// Package serve implements a sharded micro-batching inference engine over a
// core.Model: concurrent per-app rate requests are coalesced into one
// batched forward pass per shard, so a fleet of applications pays the
// batched kernels' ns/sample instead of one full single-sample forward per
// Report. The engine also provides epoch-based model hot-swap — a retrained
// model is published by one atomic pointer store and picked up by every
// shard between batches — generalizing the model's paramMu arbitration so
// the request path never blocks on a swap.
//
// Determinism: every decision is bit-identical to the single-sample
// inference path (core.Inference.ActFor) regardless of which other requests
// happened to share its micro-batch, because the batched kernels preserve
// each row's floating-point accumulation order. Batching changes latency
// and throughput, never a decision.
//
// Resilience: the engine degrades instead of wedging. Each shard bounds its
// pending queue (requests past the bound are shed with NaN — "leave the
// rate unchanged", the established safe answer), optionally sheds requests
// that waited past a decision deadline, recovers inference panics per batch
// (the poisoned batch answers NaN, the shard keeps serving), and restarts a
// crashed consumer goroutine under a watchdog rather than stranding its
// queue. The previous model generation is retained so a bad Publish can be
// undone by Rollback without having the old parameters at hand.
package serve

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mocc/internal/core"
	"mocc/internal/objective"
	"mocc/internal/obs"
)

// Config sizes the engine. The zero value picks sensible defaults.
type Config struct {
	// Shards is the number of independent batching queues (and consumer
	// goroutines). Clients are assigned to shards by ID hash. Defaults to
	// GOMAXPROCS.
	Shards int
	// MaxBatch caps how many requests one forward pass serves. A full
	// batch flushes immediately. Defaults to 64, where the batched
	// kernels' per-sample advantage has saturated.
	MaxBatch int
	// FlushInterval bounds how long a shard waits for more requests
	// before serving a partial batch. Defaults to 200µs. Zero keeps the
	// default; negative disables the coalescing wait entirely (every
	// wake flushes whatever is queued — useful in tests).
	FlushInterval time.Duration
	// MaxQueue bounds each shard's pending-request queue. A request
	// arriving at a full shard is shed immediately: Act returns NaN
	// ("leave the rate unchanged") without enqueueing, so overload
	// surfaces as bounded queueing delay plus shed answers instead of
	// unbounded latency. Defaults to 4096 per shard; negative disables
	// the bound.
	MaxQueue int
	// Deadline, when positive, additionally sheds requests that already
	// waited in the queue longer than this before reaching a forward
	// pass: they are answered NaN instead of being served stale. Zero
	// disables deadline shedding.
	Deadline time.Duration
	// BaseEpoch is the sequence number assigned to the initial model (the
	// one passed to New). A daemon resuming from a crash-safe snapshot
	// passes the snapshot's epoch here so clients observe a continuous
	// epoch sequence across the restart. Defaults to 0.
	BaseEpoch uint64
	// Metrics, when non-nil, registers the engine's series on the
	// registry: cumulative counters are CounterFuncs over the atomics the
	// engine already maintains (zero added hot-path cost), and the only
	// new hot-path work is the batch-size and decision-latency histograms
	// plus one striped flush-cause counter add per flush. Nil disables
	// everything at ~zero cost (nil-receiver no-ops).
	Metrics *obs.Registry
	// Events, when non-nil, receives structured engine events: epoch
	// publishes, shard panics and watchdog restarts, and sheds (throttled
	// to at most one event per second — the per-cause counters carry the
	// volume).
	Events *obs.EventLog
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 200 * time.Microsecond
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4096
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0 // unlimited
	}
	if c.Deadline < 0 {
		c.Deadline = 0
	}
	return c
}

// epochState is one published model generation. Instances are immutable
// once stored in Engine.epoch; a swap is a single pointer store, so readers
// always observe a complete (seq, model) pair — never a torn mix.
type epochState struct {
	seq   uint64
	model *core.Model
}

// request is one in-flight decision. Each Client owns exactly one, reused
// across calls: the submit path allocates nothing.
type request struct {
	next  *request // intrusive Treiber-stack link, owned by the shard after push
	w     objective.Weights
	obs   []float64
	enq   time.Time // submit time, set only when deadline shedding is on
	out   float64
	epoch uint64 // model generation that served (or shed) the request
	done  chan struct{}
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	Shards   int    // configured shard count
	Epoch    uint64 // current model generation (BaseEpoch = the model passed to New)
	Reports  uint64 // decisions served
	Batches  uint64 // forward passes run
	MaxBatch int    // largest coalesced batch observed
	Swaps    uint64 // epoch applications summed over shards

	Queued       int64  // requests currently queued, summed over shards
	ShedQueue    uint64 // requests shed at submit: shard queue at MaxQueue
	ShedDeadline uint64 // requests shed in the shard: queued past Deadline
	Panics       uint64 // inference panics recovered (batch answered NaN)
	Restarts     uint64 // consumer goroutines restarted by the watchdog
	Rollbacks    uint64 // generation rollbacks applied (Rollback)
}

// Shed returns the total requests shed for any reason.
func (s Stats) Shed() uint64 { return s.ShedQueue + s.ShedDeadline }

// Engine is the sharded batching inference engine. All methods are safe for
// concurrent use.
type Engine struct {
	cfg    Config
	epoch  atomic.Pointer[epochState]
	prev   atomic.Pointer[epochState] // generation displaced by the last Publish/Rollback
	shards []*shard

	closed    atomic.Bool
	inflight  atomic.Int64
	closeOnce sync.Once
	closedCh  chan struct{} // closed once every shard has exited

	reports      atomic.Uint64
	batches      atomic.Uint64
	swaps        atomic.Uint64
	maxBatch     atomic.Int64
	shedQueue    atomic.Uint64
	shedDeadline atomic.Uint64
	panics       atomic.Uint64
	restarts     atomic.Uint64
	rollbacks    atomic.Uint64

	// batchHook, when non-nil, runs inside the per-batch panic guard just
	// before each forward pass; tests inject inference panics here. It
	// must be installed before the first Act (the wake-channel send then
	// orders the write before any consumer read).
	batchHook func(n int)
	// crashNext, when set, makes the next woken consumer panic at the top
	// of its loop, exercising the watchdog restart path.
	crashNext atomic.Bool

	// Observability sinks; every field is nil-safe, so the instrumented
	// paths call through unconditionally.
	met struct {
		batchSize *obs.Histogram // coalesced chunk size per forward pass
		latency   *obs.Histogram // submit-to-answer ns, sampled 1-in-8 per client
		flushFull *obs.Counter   // flushes because the batch hit MaxBatch
		flushIntv *obs.Counter   // flushes because FlushInterval elapsed
		flushDrn  *obs.Counter   // flushes on the Close drain path
		flushEagr *obs.Counter   // flushes with coalescing disabled/bypassed
	}
	events  *obs.EventLog
	shedLim obs.Limiter
}

// registerMetrics wires the engine's series onto cfg.Metrics. Cumulative
// counters read the atomics the engine already maintains, so they cost
// nothing per request; only the histograms and flush-cause counters add
// hot-path work, and those are nil (no-op) when metrics are disabled.
func (e *Engine) registerMetrics() {
	r := e.cfg.Metrics // nil registry => every handle below is nil
	e.events = e.cfg.Events
	r.CounterFunc("mocc_serve_reports_total", "Decisions served by the batching engine.",
		func() uint64 { return e.reports.Load() })
	r.CounterFunc("mocc_serve_batches_total", "Forward passes run.",
		func() uint64 { return e.batches.Load() })
	r.CounterFunc("mocc_serve_swaps_total", "Epoch applications summed over shards.",
		func() uint64 { return e.swaps.Load() })
	r.CounterFunc("mocc_serve_panics_total", "Inference panics recovered (batch answered NaN).",
		func() uint64 { return e.panics.Load() })
	r.CounterFunc("mocc_serve_restarts_total", "Shard consumers restarted by the watchdog.",
		func() uint64 { return e.restarts.Load() })
	r.CounterFunc("mocc_serve_rollbacks_total", "Generation rollbacks applied.",
		func() uint64 { return e.rollbacks.Load() })
	r.CounterFunc(`mocc_serve_sheds_total{cause="queue"}`, "Requests shed by cause.",
		func() uint64 { return e.shedQueue.Load() })
	r.CounterFunc(`mocc_serve_sheds_total{cause="deadline"}`, "Requests shed by cause.",
		func() uint64 { return e.shedDeadline.Load() })
	r.GaugeFunc("mocc_serve_queue_depth", "Requests queued across shards right now.",
		func() float64 {
			var queued int64
			for _, s := range e.shards {
				queued += s.queued.Load()
			}
			return float64(queued)
		})
	r.GaugeFunc("mocc_serve_epoch", "Currently published model generation.",
		func() float64 { return float64(e.Epoch()) })
	e.met.batchSize = r.Histogram("mocc_serve_batch_size",
		"Coalesced requests per forward pass.", 1)
	e.met.latency = r.Histogram("mocc_serve_decision_latency_seconds",
		"Submit-to-answer decision latency, sampled 1 in 8 requests per client.", 1e-9)
	e.met.flushFull = r.Counter(`mocc_serve_flushes_total{cause="full"}`,
		"Shard flushes by cause.")
	e.met.flushIntv = r.Counter(`mocc_serve_flushes_total{cause="interval"}`,
		"Shard flushes by cause.")
	e.met.flushDrn = r.Counter(`mocc_serve_flushes_total{cause="drain"}`,
		"Shard flushes by cause.")
	e.met.flushEagr = r.Counter(`mocc_serve_flushes_total{cause="eager"}`,
		"Shard flushes by cause.")
}

// shedEvent emits a throttled EvShed; the per-cause counters carry the
// real volume. cause is a static string, so the rare emission allocates
// nothing on the caller's behalf beyond the event itself.
func (e *Engine) shedEvent(cause string) {
	if e.events != nil && e.shedLim.Allow(time.Second) {
		e.events.Emit(obs.Event{Type: obs.EvShed, Epoch: e.Epoch(), Msg: cause})
	}
}

// New starts an engine serving decisions from m, which becomes epoch
// cfg.BaseEpoch (0 by default). The initial epoch is special: it may be the
// library's live, online-adapting model — every batch still takes the read
// side of its parameter lock, so concurrent OnlineAdapt iterations are
// arbitrated exactly as on the single-sample path. Models published later
// must be frozen (see Publish).
func New(m *core.Model, cfg Config) *Engine {
	e := &Engine{cfg: cfg.withDefaults(), closedCh: make(chan struct{})}
	e.epoch.Store(&epochState{seq: e.cfg.BaseEpoch, model: m})
	e.registerMetrics()
	e.shards = make([]*shard, e.cfg.Shards)
	for i := range e.shards {
		s := &shard{
			eng:  e,
			idx:  i,
			wake: make(chan struct{}, 1),
			stop: make(chan struct{}),
			done: make(chan struct{}),
		}
		e.shards[i] = s
		go s.loop()
	}
	return e
}

// Publish atomically installs m as the new model generation and returns its
// epoch sequence number. Shards pick the new model up between batches; no
// request ever blocks on the swap, and no request ever observes a torn
// parameter set (each batch runs entirely on whichever generation its shard
// held when the batch started). m must not be mutated after Publish —
// callers hand over a frozen clone. Models failing the finite check are
// rejected, mirroring OnlineAdapt's rollback guard. The displaced
// generation is retained for Rollback.
func (e *Engine) Publish(m *core.Model) (uint64, error) {
	if m == nil {
		return 0, errors.New("serve: Publish of nil model")
	}
	if err := m.CheckFinite(); err != nil {
		return 0, fmt.Errorf("serve: refusing to publish: %w", err)
	}
	for {
		old := e.epoch.Load()
		next := &epochState{seq: old.seq + 1, model: m}
		if e.epoch.CompareAndSwap(old, next) {
			e.prev.Store(old)
			e.events.Emit(obs.Event{Type: obs.EvEpochPublish, Epoch: next.seq})
			return next.seq, nil
		}
	}
}

// Rollback re-installs the generation displaced by the most recent Publish
// (or Rollback) as a new epoch, returning the new sequence number and the
// model now being served. It errors when nothing has ever been published.
// A second Rollback undoes the first (the generations swap places), so an
// accidental rollback is itself recoverable. Like Publish, the swap is one
// atomic pointer store: shards pick it up between batches.
func (e *Engine) Rollback() (uint64, *core.Model, error) {
	for {
		prev := e.prev.Load()
		if prev == nil {
			return 0, nil, errors.New("serve: no prior generation to roll back to")
		}
		cur := e.epoch.Load()
		next := &epochState{seq: cur.seq + 1, model: prev.model}
		if e.epoch.CompareAndSwap(cur, next) {
			e.prev.Store(cur)
			e.rollbacks.Add(1)
			return next.seq, prev.model, nil
		}
	}
}

// Epoch returns the sequence number of the currently published generation.
func (e *Engine) Epoch() uint64 { return e.epoch.Load().seq }

// Stats returns a point-in-time snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	var queued int64
	for _, s := range e.shards {
		queued += s.queued.Load()
	}
	return Stats{
		Shards:       e.cfg.Shards,
		Epoch:        e.Epoch(),
		Reports:      e.reports.Load(),
		Batches:      e.batches.Load(),
		MaxBatch:     int(e.maxBatch.Load()),
		Swaps:        e.swaps.Load(),
		Queued:       queued,
		ShedQueue:    e.shedQueue.Load(),
		ShedDeadline: e.shedDeadline.Load(),
		Panics:       e.panics.Load(),
		Restarts:     e.restarts.Load(),
		Rollbacks:    e.rollbacks.Load(),
	}
}

// Close drains every queued request, stops the shard goroutines, and
// returns once they have exited. Act calls racing Close either complete
// normally or return NaN without enqueueing. Close is idempotent.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		// Every Act that made it past the closed check holds an inflight
		// ref until its result is delivered; the shards are still running,
		// so this drains rather than deadlocks.
		for e.inflight.Load() != 0 {
			time.Sleep(10 * time.Microsecond)
		}
		for _, s := range e.shards {
			close(s.stop)
		}
		for _, s := range e.shards {
			<-s.done
		}
		close(e.closedCh)
	})
	<-e.closedCh
}

// shardFor maps a client key to a shard by splitmix64 hash, so shard load
// stays balanced whether handle IDs are sequential or sparse.
func (e *Engine) shardFor(key uint64) *shard {
	h := key
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return e.shards[h%uint64(len(e.shards))]
}

// Client is one application's handle onto the engine. It satisfies the same
// contract as core.SharedPolicy: Act and SetWeights must be serialized by
// the caller (the public library does this per application handle), but any
// number of Clients submit concurrently.
type Client struct {
	eng *Engine
	sh  *shard
	w   objective.Weights
	nth uint8 // request counter driving 1-in-8 latency sampling
	req request
}

// NewClient returns a client bound to the shard selected by key's hash,
// initially acting under preference w.
func (e *Engine) NewClient(key uint64, w objective.Weights) *Client {
	c := &Client{eng: e, sh: e.shardFor(key), w: w}
	c.req.done = make(chan struct{}, 1)
	return c
}

// SetWeights swaps the preference used by subsequent Act calls.
func (c *Client) SetWeights(w objective.Weights) { c.w = w }

// Weights returns the currently applied preference.
func (c *Client) Weights() objective.Weights { return c.w }

// Act submits one observation and blocks until its micro-batch is served,
// returning the deterministic action — bit-identical to what
// core.Inference.ActFor would produce on the current epoch's model. The
// submit path is lock-free: one CAS push onto the shard's intrusive stack
// plus at most one non-blocking channel wake. obs must stay valid and
// unmodified until Act returns (it is read, never written, and no reference
// is retained afterwards). Act returns NaN — which the controller layer
// treats as "leave the rate unchanged" — after Close, when the shard's
// queue is at MaxQueue (shed at the door, without blocking), or when the
// request waited past the configured Deadline before being served.
func (c *Client) Act(obs []float64) float64 {
	e := c.eng
	if e.closed.Load() {
		return math.NaN()
	}
	s := c.sh
	if max := e.cfg.MaxQueue; max > 0 && s.queued.Load() >= int64(max) {
		e.shedQueue.Add(1)
		e.shedEvent("queue")
		return math.NaN()
	}
	e.inflight.Add(1)
	if e.closed.Load() {
		// Raced with Close: it may already have observed inflight==0, so
		// the shards may be gone. Back out without enqueueing.
		e.inflight.Add(-1)
		return math.NaN()
	}
	r := &c.req
	r.w = c.w
	r.obs = obs
	// The latency histogram samples 1 in 8 requests per client: reading
	// the clock twice per decision is the single largest observability
	// cost on this path, and the percentiles of a fleet-scale request
	// stream are statistically indistinguishable at a 1/8 sampling rate.
	// A configured Deadline needs the enqueue time on every request
	// regardless, so sampling then costs only the time.Since.
	sample := e.met.latency != nil && c.nth&7 == 0
	c.nth++
	if e.cfg.Deadline > 0 || sample {
		r.enq = time.Now()
	}
	s.queued.Add(1)
	for {
		old := s.head.Load()
		r.next = old
		if s.head.CompareAndSwap(old, r) {
			if old == nil {
				// Empty -> non-empty transition: wake the consumer. The
				// buffer holds one token, so a pending wake makes this a
				// no-op and the consumer still drains everything.
				select {
				case s.wake <- struct{}{}:
				default:
				}
			}
			break
		}
	}
	<-r.done
	r.obs = nil
	e.inflight.Add(-1)
	if sample {
		e.met.latency.Observe(uint64(time.Since(r.enq)))
	}
	return r.out
}

// LastEpoch returns the model generation that served (or shed) the most
// recent Act. Like Act itself it must be serialized per client.
func (c *Client) LastEpoch() uint64 { return c.req.epoch }

// shard is one batching queue plus its consumer goroutine.
type shard struct {
	eng    *Engine
	idx    int                     // shard index; doubles as the metric stripe
	head   atomic.Pointer[request] // MPSC Treiber stack of pending requests
	queued atomic.Int64            // pushed but not yet finished
	wake   chan struct{}
	stop   chan struct{}
	done   chan struct{}

	// Consumer-private state below: only the consumer goroutine touches it.
	started  bool // an inference view has been built at least once
	epochSeq uint64
	bi       *core.BatchInference
	ws       []objective.Weights
	obs      [][]float64
	out      []float64
	live     []*request // deadline-filtered chunk scratch
}

// finish delivers one result and releases the request's queue slot. The
// request may be reused by its submitter immediately after the done send,
// so no field is touched afterwards.
func (s *shard) finish(r *request, v float64) {
	r.out = v
	s.queued.Add(-1)
	r.done <- struct{}{}
}

// takeAll detaches the whole pending stack and appends it to into in one
// walk (LIFO arrival order). Order does not affect results — rows are
// independent and bit-identical either way — and it cannot starve anyone:
// every request detached here is served before the consumer sleeps again,
// so per-request latency is bounded by one drain cycle regardless of
// position. Skipping the FIFO reversal halves the dependent pointer-chase
// passes over the node list, which at fleet scale (10k queued requests,
// cold cache lines) is a measurable share of per-report cost.
func (s *shard) takeAll(into []*request) []*request {
	for r := s.head.Swap(nil); r != nil; r = r.next {
		into = append(into, r)
	}
	return into
}

// loop is the consumer watchdog: it runs the consume loop and, if a panic
// ever escapes the per-batch guards (a crashed consumer would otherwise
// strand its queue forever — every submitter blocked on done, Close spinning
// on inflight), answers everything still queued with NaN and restarts the
// consumer instead of wedging the shard.
func (s *shard) loop() {
	defer close(s.done)
	for s.consume() {
		s.eng.restarts.Add(1)
		s.eng.events.Emit(obs.Event{Type: obs.EvShardRestart, Epoch: s.epochSeq,
			Msg: fmt.Sprintf("shard %d consumer restarted", s.idx)})
		var next *request
		for r := s.head.Swap(nil); r != nil; r = next {
			// The submitter may reuse r the instant finish delivers, so
			// the link must be read before delivery.
			next = r.next
			s.finish(r, math.NaN())
		}
		s.bi = nil // rebuild the inference view on the next batch
	}
}

// consume runs the consumer loop, recovering a panic into a restart.
func (s *shard) consume() (restart bool) {
	defer func() {
		if recover() != nil {
			restart = true
		}
	}()
	s.run()
	return false
}

// run is the shard consumer loop: sleep until woken, coalesce requests up
// to MaxBatch or FlushInterval, serve, repeat.
func (s *shard) run() {
	cfg := s.eng.cfg
	deadline := time.NewTimer(time.Hour)
	if !deadline.Stop() {
		<-deadline.C
	}
	var batch []*request
	for {
		select {
		case <-s.wake:
		case <-s.stop:
			batch = s.takeAll(batch[:0])
			s.countFlush(s.eng.met.flushDrn, len(batch))
			s.serve(batch)
			return
		}
		if s.eng.crashNext.CompareAndSwap(true, false) {
			panic("serve: injected consumer crash")
		}
		// Yield once before committing to a batch so every submitter that
		// is already runnable gets to enqueue. Without this, on a
		// single-core host the waker and this consumer ping-pong through
		// the scheduler's runnext slot: batches stay at size one and the
		// other clients on the shard starve until preemption.
		runtime.Gosched()
		batch = s.takeAll(batch[:0])
		cause := s.eng.met.flushEagr
		if len(batch) >= cfg.MaxBatch {
			cause = s.eng.met.flushFull
		}
		if cfg.FlushInterval > 0 && len(batch) > 0 && len(batch) < cfg.MaxBatch {
			deadline.Reset(cfg.FlushInterval)
			cause = s.eng.met.flushIntv
		coalesce:
			for len(batch) < cfg.MaxBatch {
				select {
				case <-s.wake:
					batch = s.takeAll(batch)
					if len(batch) >= cfg.MaxBatch {
						cause = s.eng.met.flushFull
					}
				case <-deadline.C:
					break coalesce
				case <-s.stop:
					batch = s.takeAll(batch)
					s.countFlush(s.eng.met.flushDrn, len(batch))
					s.serve(batch)
					return
				}
			}
			if !deadline.Stop() {
				select {
				case <-deadline.C:
				default:
				}
			}
		}
		s.countFlush(cause, len(batch))
		s.serve(batch)
	}
}

// countFlush attributes one non-empty flush to its cause on the shard's
// counter stripe.
func (s *shard) countFlush(c *obs.Counter, n int) {
	if n > 0 {
		c.AddAt(s.idx, 1)
	}
}

// rebuild replaces the shard's inference view with one over ep's model,
// recovering a panic (a poisoned generation) into a false return.
func (s *shard) rebuild(ep *epochState) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
			s.bi = nil
		}
	}()
	s.bi = ep.model.NewBatchInference()
	return true
}

// actBatch runs one guarded forward pass over the first n staged rows,
// recovering an inference panic into an error so one poisoned batch cannot
// crash the shard.
func (s *shard) actBatch(n int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: inference panic: %v", r)
		}
	}()
	if h := s.eng.batchHook; h != nil {
		h(n)
	}
	s.bi.ActBatch(s.ws, s.obs, s.out[:n])
	return nil
}

// serve runs the coalesced requests through the current epoch's model in
// MaxBatch-sized forward passes and delivers each result. Requests past the
// decision deadline are shed with NaN; a panicking forward pass sheds its
// chunk the same way and the shard keeps serving.
func (s *shard) serve(reqs []*request) {
	if len(reqs) == 0 {
		return
	}
	// Epoch check between batches: a published swap is one atomic pointer
	// load away, and rebuilding the inference view costs a few KB of
	// evaluator scratch only when the generation actually changed.
	ep := s.eng.epoch.Load()
	if s.bi == nil || ep.seq != s.epochSeq {
		first := !s.started
		if !s.rebuild(ep) {
			s.eng.panics.Add(1)
			s.eng.events.Emit(obs.Event{Type: obs.EvShardPanic, Epoch: ep.seq,
				Msg: fmt.Sprintf("shard %d: poisoned generation, batch of %d answered NaN", s.idx, len(reqs))})
			for _, r := range reqs {
				r.epoch = ep.seq
				s.finish(r, math.NaN())
			}
			return
		}
		s.started = true
		s.epochSeq = ep.seq
		if !first {
			s.eng.swaps.Add(1)
		}
	}
	maxB := s.eng.cfg.MaxBatch
	dl := s.eng.cfg.Deadline
	for off := 0; off < len(reqs); off += maxB {
		end := min(off+maxB, len(reqs))
		chunk := reqs[off:end]
		if dl > 0 {
			now := time.Now()
			s.live = s.live[:0]
			for _, r := range chunk {
				if now.Sub(r.enq) > dl {
					s.eng.shedDeadline.Add(1)
					s.eng.shedEvent("deadline")
					r.epoch = ep.seq
					s.finish(r, math.NaN())
				} else {
					s.live = append(s.live, r)
				}
			}
			chunk = s.live
		}
		n := len(chunk)
		if n == 0 {
			continue
		}
		s.ws = s.ws[:0]
		s.obs = s.obs[:0]
		for _, r := range chunk {
			s.ws = append(s.ws, r.w)
			s.obs = append(s.obs, r.obs)
		}
		if cap(s.out) < n {
			s.out = make([]float64, n)
		}
		if err := s.actBatch(n); err != nil {
			s.eng.panics.Add(1)
			s.eng.events.Emit(obs.Event{Type: obs.EvShardPanic, Epoch: ep.seq,
				Msg: fmt.Sprintf("shard %d: %v", s.idx, err)})
			s.bi = nil // fresh inference view before the next batch
			for _, r := range chunk {
				r.epoch = ep.seq
				s.finish(r, math.NaN())
			}
			continue
		}
		// Counters are maintained here, one RMW per chunk, rather than one
		// per request on the submit path.
		s.eng.reports.Add(uint64(n))
		s.eng.batches.Add(1)
		s.eng.met.batchSize.Observe(uint64(n))
		for cur := s.eng.maxBatch.Load(); int64(n) > cur; cur = s.eng.maxBatch.Load() {
			if s.eng.maxBatch.CompareAndSwap(cur, int64(n)) {
				break
			}
		}
		for i, r := range chunk {
			r.epoch = ep.seq
			s.finish(r, s.out[i])
		}
	}
	// Drop observation references so client buffers are not pinned
	// between batches.
	for i := range s.obs {
		s.obs[i] = nil
	}
	for i := range s.live {
		s.live[i] = nil
	}
	s.live = s.live[:0]
}
