// Package serve implements a sharded micro-batching inference engine over a
// core.Model: concurrent per-app rate requests are coalesced into one
// batched forward pass per shard, so a fleet of applications pays the
// batched kernels' ns/sample instead of one full single-sample forward per
// Report. The engine also provides epoch-based model hot-swap — a retrained
// model is published by one atomic pointer store and picked up by every
// shard between batches — generalizing the model's paramMu arbitration so
// the request path never blocks on a swap.
//
// Determinism: every decision is bit-identical to the single-sample
// inference path (core.Inference.ActFor) regardless of which other requests
// happened to share its micro-batch, because the batched kernels preserve
// each row's floating-point accumulation order. Batching changes latency
// and throughput, never a decision.
package serve

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mocc/internal/core"
	"mocc/internal/objective"
)

// Config sizes the engine. The zero value picks sensible defaults.
type Config struct {
	// Shards is the number of independent batching queues (and consumer
	// goroutines). Clients are assigned to shards by ID hash. Defaults to
	// GOMAXPROCS.
	Shards int
	// MaxBatch caps how many requests one forward pass serves. A full
	// batch flushes immediately. Defaults to 64, where the batched
	// kernels' per-sample advantage has saturated.
	MaxBatch int
	// FlushInterval bounds how long a shard waits for more requests
	// before serving a partial batch. Defaults to 200µs. Zero keeps the
	// default; negative disables the coalescing wait entirely (every
	// wake flushes whatever is queued — useful in tests).
	FlushInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 200 * time.Microsecond
	}
	return c
}

// epochState is one published model generation. Instances are immutable
// once stored in Engine.epoch; a swap is a single pointer store, so readers
// always observe a complete (seq, model) pair — never a torn mix.
type epochState struct {
	seq   uint64
	model *core.Model
}

// request is one in-flight decision. Each Client owns exactly one, reused
// across calls: the submit path allocates nothing.
type request struct {
	next *request // intrusive Treiber-stack link, owned by the shard after push
	w    objective.Weights
	obs  []float64
	out  float64
	done chan struct{}
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	Shards   int    // configured shard count
	Epoch    uint64 // current model generation (0 = the model passed to New)
	Reports  uint64 // decisions served
	Batches  uint64 // forward passes run
	MaxBatch int    // largest coalesced batch observed
	Swaps    uint64 // epoch applications summed over shards
}

// Engine is the sharded batching inference engine. All methods are safe for
// concurrent use.
type Engine struct {
	cfg    Config
	epoch  atomic.Pointer[epochState]
	shards []*shard

	closed    atomic.Bool
	inflight  atomic.Int64
	closeOnce sync.Once
	closedCh  chan struct{} // closed once every shard has exited

	reports  atomic.Uint64
	batches  atomic.Uint64
	swaps    atomic.Uint64
	maxBatch atomic.Int64
}

// New starts an engine serving decisions from m, which becomes epoch 0.
// Epoch 0 is special: it may be the library's live, online-adapting model —
// every batch still takes the read side of its parameter lock, so
// concurrent OnlineAdapt iterations are arbitrated exactly as on the
// single-sample path. Models published later must be frozen (see Publish).
func New(m *core.Model, cfg Config) *Engine {
	e := &Engine{cfg: cfg.withDefaults(), closedCh: make(chan struct{})}
	e.epoch.Store(&epochState{seq: 0, model: m})
	e.shards = make([]*shard, e.cfg.Shards)
	for i := range e.shards {
		s := &shard{
			eng:  e,
			wake: make(chan struct{}, 1),
			stop: make(chan struct{}),
			done: make(chan struct{}),
		}
		e.shards[i] = s
		go s.run()
	}
	return e
}

// Publish atomically installs m as the new model generation and returns its
// epoch sequence number. Shards pick the new model up between batches; no
// request ever blocks on the swap, and no request ever observes a torn
// parameter set (each batch runs entirely on whichever generation its shard
// held when the batch started). m must not be mutated after Publish —
// callers hand over a frozen clone. Models failing the finite check are
// rejected, mirroring OnlineAdapt's rollback guard.
func (e *Engine) Publish(m *core.Model) (uint64, error) {
	if m == nil {
		return 0, errors.New("serve: Publish of nil model")
	}
	if err := m.CheckFinite(); err != nil {
		return 0, fmt.Errorf("serve: refusing to publish: %w", err)
	}
	for {
		old := e.epoch.Load()
		next := &epochState{seq: old.seq + 1, model: m}
		if e.epoch.CompareAndSwap(old, next) {
			return next.seq, nil
		}
	}
}

// Epoch returns the sequence number of the currently published generation.
func (e *Engine) Epoch() uint64 { return e.epoch.Load().seq }

// Stats returns a point-in-time snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Shards:   e.cfg.Shards,
		Epoch:    e.Epoch(),
		Reports:  e.reports.Load(),
		Batches:  e.batches.Load(),
		MaxBatch: int(e.maxBatch.Load()),
		Swaps:    e.swaps.Load(),
	}
}

// Close drains every queued request, stops the shard goroutines, and
// returns once they have exited. Act calls racing Close either complete
// normally or return NaN without enqueueing. Close is idempotent.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		// Every Act that made it past the closed check holds an inflight
		// ref until its result is delivered; the shards are still running,
		// so this drains rather than deadlocks.
		for e.inflight.Load() != 0 {
			time.Sleep(10 * time.Microsecond)
		}
		for _, s := range e.shards {
			close(s.stop)
		}
		for _, s := range e.shards {
			<-s.done
		}
		close(e.closedCh)
	})
	<-e.closedCh
}

// shardFor maps a client key to a shard by splitmix64 hash, so shard load
// stays balanced whether handle IDs are sequential or sparse.
func (e *Engine) shardFor(key uint64) *shard {
	h := key
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return e.shards[h%uint64(len(e.shards))]
}

// Client is one application's handle onto the engine. It satisfies the same
// contract as core.SharedPolicy: Act and SetWeights must be serialized by
// the caller (the public library does this per application handle), but any
// number of Clients submit concurrently.
type Client struct {
	eng *Engine
	sh  *shard
	w   objective.Weights
	req request
}

// NewClient returns a client bound to the shard selected by key's hash,
// initially acting under preference w.
func (e *Engine) NewClient(key uint64, w objective.Weights) *Client {
	c := &Client{eng: e, sh: e.shardFor(key), w: w}
	c.req.done = make(chan struct{}, 1)
	return c
}

// SetWeights swaps the preference used by subsequent Act calls.
func (c *Client) SetWeights(w objective.Weights) { c.w = w }

// Weights returns the currently applied preference.
func (c *Client) Weights() objective.Weights { return c.w }

// Act submits one observation and blocks until its micro-batch is served,
// returning the deterministic action — bit-identical to what
// core.Inference.ActFor would produce on the current epoch's model. The
// submit path is lock-free: one CAS push onto the shard's intrusive stack
// plus at most one non-blocking channel wake. obs must stay valid and
// unmodified until Act returns (it is read, never written, and no reference
// is retained afterwards). After Close, Act returns NaN — the controller
// layer treats a NaN action as "leave the rate unchanged".
func (c *Client) Act(obs []float64) float64 {
	e := c.eng
	if e.closed.Load() {
		return math.NaN()
	}
	e.inflight.Add(1)
	if e.closed.Load() {
		// Raced with Close: it may already have observed inflight==0, so
		// the shards may be gone. Back out without enqueueing.
		e.inflight.Add(-1)
		return math.NaN()
	}
	r := &c.req
	r.w = c.w
	r.obs = obs
	s := c.sh
	for {
		old := s.head.Load()
		r.next = old
		if s.head.CompareAndSwap(old, r) {
			if old == nil {
				// Empty -> non-empty transition: wake the consumer. The
				// buffer holds one token, so a pending wake makes this a
				// no-op and the consumer still drains everything.
				select {
				case s.wake <- struct{}{}:
				default:
				}
			}
			break
		}
	}
	<-r.done
	r.obs = nil
	e.inflight.Add(-1)
	return r.out
}

// shard is one batching queue plus its consumer goroutine.
type shard struct {
	eng  *Engine
	head atomic.Pointer[request] // MPSC Treiber stack of pending requests
	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	// Consumer-private state below: only the run goroutine touches it.
	epochSeq uint64
	bi       *core.BatchInference
	ws       []objective.Weights
	obs      [][]float64
	out      []float64
}

// takeAll detaches the whole pending stack and appends it to into in one
// walk (LIFO arrival order). Order does not affect results — rows are
// independent and bit-identical either way — and it cannot starve anyone:
// every request detached here is served before the consumer sleeps again,
// so per-request latency is bounded by one drain cycle regardless of
// position. Skipping the FIFO reversal halves the dependent pointer-chase
// passes over the node list, which at fleet scale (10k queued requests,
// cold cache lines) is a measurable share of per-report cost.
func (s *shard) takeAll(into []*request) []*request {
	for r := s.head.Swap(nil); r != nil; r = r.next {
		into = append(into, r)
	}
	return into
}

// run is the shard consumer loop: sleep until woken, coalesce requests up
// to MaxBatch or FlushInterval, serve, repeat.
func (s *shard) run() {
	defer close(s.done)
	cfg := s.eng.cfg
	deadline := time.NewTimer(time.Hour)
	if !deadline.Stop() {
		<-deadline.C
	}
	var batch []*request
	for {
		select {
		case <-s.wake:
		case <-s.stop:
			batch = s.takeAll(batch[:0])
			s.serve(batch)
			return
		}
		// Yield once before committing to a batch so every submitter that
		// is already runnable gets to enqueue. Without this, on a
		// single-core host the waker and this consumer ping-pong through
		// the scheduler's runnext slot: batches stay at size one and the
		// other clients on the shard starve until preemption.
		runtime.Gosched()
		batch = s.takeAll(batch[:0])
		if cfg.FlushInterval > 0 && len(batch) > 0 && len(batch) < cfg.MaxBatch {
			deadline.Reset(cfg.FlushInterval)
		coalesce:
			for len(batch) < cfg.MaxBatch {
				select {
				case <-s.wake:
					batch = s.takeAll(batch)
				case <-deadline.C:
					break coalesce
				case <-s.stop:
					batch = s.takeAll(batch)
					s.serve(batch)
					return
				}
			}
			if !deadline.Stop() {
				select {
				case <-deadline.C:
				default:
				}
			}
		}
		s.serve(batch)
	}
}

// serve runs the coalesced requests through the current epoch's model in
// MaxBatch-sized forward passes and delivers each result.
func (s *shard) serve(reqs []*request) {
	if len(reqs) == 0 {
		return
	}
	// Epoch check between batches: a published swap is one atomic pointer
	// load away, and rebuilding the inference view costs a few KB of
	// evaluator scratch only when the generation actually changed.
	ep := s.eng.epoch.Load()
	if s.bi == nil || ep.seq != s.epochSeq {
		s.bi = ep.model.NewBatchInference()
		s.epochSeq = ep.seq
		if ep.seq != 0 {
			s.eng.swaps.Add(1)
		}
	}
	for off := 0; off < len(reqs); off += s.eng.cfg.MaxBatch {
		end := min(off+s.eng.cfg.MaxBatch, len(reqs))
		chunk := reqs[off:end]
		n := len(chunk)
		s.ws = s.ws[:0]
		s.obs = s.obs[:0]
		for _, r := range chunk {
			s.ws = append(s.ws, r.w)
			s.obs = append(s.obs, r.obs)
		}
		if cap(s.out) < n {
			s.out = make([]float64, n)
		}
		s.bi.ActBatch(s.ws, s.obs, s.out[:n])
		// Counters are maintained here, one RMW per chunk, rather than one
		// per request on the submit path.
		s.eng.reports.Add(uint64(n))
		s.eng.batches.Add(1)
		for cur := s.eng.maxBatch.Load(); int64(n) > cur; cur = s.eng.maxBatch.Load() {
			if s.eng.maxBatch.CompareAndSwap(cur, int64(n)) {
				break
			}
		}
		for i, r := range chunk {
			r.out = s.out[i]
			r.done <- struct{}{}
		}
	}
	// Drop observation references so client buffers are not pinned
	// between batches.
	for i := range s.obs {
		s.obs[i] = nil
	}
}
