package gym

import (
	"math"
	"testing"
	"testing/quick"

	"mocc/internal/trace"
)

// testConfig is a small, fast link: 1000 pkts/s (12 Mbps at 1500B), 20 ms
// one-way delay, 100-packet buffer.
func testConfig() Config {
	return Config{
		Bandwidth:  trace.Constant(1000),
		LatencyMs:  20,
		QueuePkts:  100,
		HistoryLen: 4,
		Seed:       1,
	}
}

func TestNewPanicsWithoutBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nil Bandwidth")
		}
	}()
	New(Config{})
}

func TestDefaults(t *testing.T) {
	e := New(testConfig())
	cfg := e.Config()
	if cfg.MIms != 40 { // one base RTT = 2*20ms
		t.Errorf("default MI = %v ms, want 40", cfg.MIms)
	}
	if cfg.MinRate <= 0 || cfg.MaxRate <= cfg.MinRate {
		t.Errorf("bad rate bounds: [%v, %v]", cfg.MinRate, cfg.MaxRate)
	}
	if e.ObsSize() != 12 {
		t.Errorf("ObsSize = %d, want 12", e.ObsSize())
	}
}

func TestInitialRateRandomizedButBounded(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		cfg := testConfig()
		cfg.Seed = seed
		e := New(cfg)
		r := e.Rate()
		if r < 0.3*1000-1 || r > 1.5*1000+1 {
			t.Errorf("seed %d: initial rate %v outside 0.3-1.5x capacity", seed, r)
		}
	}
}

func TestStartRateOverride(t *testing.T) {
	cfg := testConfig()
	cfg.StartRate = 500
	e := New(cfg)
	if e.Rate() != 500 {
		t.Errorf("StartRate not honored: %v", e.Rate())
	}
}

func TestStepConservation(t *testing.T) {
	// Invariant: sent = delivered + lost + queue growth, every MI.
	cfg := testConfig()
	cfg.StartRate = 1500 // overdriving the link to exercise drops
	cfg.LossRate = 0.02
	e := New(cfg)
	prevQueue := 0.0
	for i := 0; i < 200; i++ {
		_, m := e.Step()
		got := m.Delivered + m.Lost + (m.Queue - prevQueue)
		if math.Abs(got-m.Sent) > 1e-6*(1+m.Sent) {
			t.Fatalf("MI %d: conservation violated: sent %v vs accounted %v", i, m.Sent, got)
		}
		prevQueue = m.Queue
	}
}

func TestStepConservationProperty(t *testing.T) {
	f := func(rateSeed uint8, lossSeed uint8) bool {
		cfg := testConfig()
		cfg.StartRate = 100 + float64(rateSeed)*10
		cfg.LossRate = float64(lossSeed%10) / 100
		e := New(cfg)
		prevQueue := 0.0
		for i := 0; i < 50; i++ {
			_, m := e.Step()
			if m.Delivered < 0 || m.Lost < 0 || m.Queue < 0 {
				return false
			}
			if m.Queue > float64(cfg.QueuePkts)+1e-9 {
				return false
			}
			got := m.Delivered + m.Lost + (m.Queue - prevQueue)
			if math.Abs(got-m.Sent) > 1e-6*(1+m.Sent) {
				return false
			}
			prevQueue = m.Queue
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUnderloadNoQueueNoLoss(t *testing.T) {
	cfg := testConfig()
	cfg.StartRate = 400 // well under 1000 pkts/s capacity
	e := New(cfg)
	for i := 0; i < 50; i++ {
		_, m := e.Step()
		if m.Queue != 0 {
			t.Fatalf("queue built up under light load: %v", m.Queue)
		}
		if m.LossRate != 0 {
			t.Fatalf("loss under light load: %v", m.LossRate)
		}
		if math.Abs(m.AvgRTT-m.BaseRTT) > 1e-9 {
			t.Fatalf("RTT inflated without queueing: %v vs %v", m.AvgRTT, m.BaseRTT)
		}
		if math.Abs(m.Throughput-400) > 1 {
			t.Fatalf("throughput %v, want ~400", m.Throughput)
		}
	}
}

func TestOverloadFillsQueueThenDrops(t *testing.T) {
	cfg := testConfig()
	cfg.StartRate = 2000 // 2x capacity
	e := New(cfg)
	var sawFullQueue, sawCongestiveLoss bool
	for i := 0; i < 100; i++ {
		_, m := e.Step()
		if m.Queue >= float64(cfg.QueuePkts)-1e-9 {
			sawFullQueue = true
		}
		if sawFullQueue && m.LossRate > 0 {
			sawCongestiveLoss = true
		}
		// Delivered can never exceed capacity for the interval.
		if m.Throughput > m.Capacity+1e-9 {
			t.Fatalf("throughput %v exceeds capacity %v", m.Throughput, m.Capacity)
		}
	}
	if !sawFullQueue {
		t.Error("overload never filled the queue")
	}
	if !sawCongestiveLoss {
		t.Error("overload never caused congestive loss")
	}
}

func TestQueueingInflatesRTT(t *testing.T) {
	cfg := testConfig()
	cfg.StartRate = 1500
	e := New(cfg)
	var last Metrics
	for i := 0; i < 20; i++ {
		_, last = e.Step()
	}
	if last.AvgRTT <= last.BaseRTT {
		t.Errorf("persistent overload should inflate RTT: %v vs base %v", last.AvgRTT, last.BaseRTT)
	}
	wantMax := last.BaseRTT + float64(cfg.QueuePkts)/1000
	if last.AvgRTT > wantMax+1e-9 {
		t.Errorf("RTT %v exceeds base+max queueing %v", last.AvgRTT, wantMax)
	}
}

func TestRandomLossApplied(t *testing.T) {
	cfg := testConfig()
	cfg.StartRate = 500
	cfg.LossRate = 0.05
	e := New(cfg)
	_, m := e.Step()
	if math.Abs(m.LossRate-0.05) > 1e-9 {
		t.Errorf("observed loss %v, want 0.05", m.LossRate)
	}
}

func TestApplyActionEquationOne(t *testing.T) {
	cfg := testConfig()
	cfg.StartRate = 1000
	e := New(cfg)
	// a > 0: multiply by (1 + alpha*a).
	got := e.ApplyAction(1)
	want := 1000 * (1 + ActionScale)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ApplyAction(1) = %v, want %v", got, want)
	}
	// a < 0: divide by (1 - alpha*a).
	e.SetRate(1000)
	got = e.ApplyAction(-1)
	want = 1000 / (1 + ActionScale)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ApplyAction(-1) = %v, want %v", got, want)
	}
	// a = 0: unchanged.
	e.SetRate(777)
	if got := e.ApplyAction(0); got != 777 {
		t.Errorf("ApplyAction(0) = %v, want 777", got)
	}
}

func TestApplyActionSymmetry(t *testing.T) {
	// Equation 1 makes +a then -a return to the original rate.
	f := func(a float64) bool {
		a = math.Mod(math.Abs(a), 3)
		cfg := testConfig()
		cfg.StartRate = 800
		e := New(cfg)
		e.ApplyAction(a)
		e.ApplyAction(-a)
		return math.Abs(e.Rate()-800) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRateClamping(t *testing.T) {
	cfg := testConfig()
	cfg.MinRate = 100
	cfg.MaxRate = 2000
	cfg.StartRate = 1000
	e := New(cfg)
	e.SetRate(1e9)
	if e.Rate() != 2000 {
		t.Errorf("rate not clamped to max: %v", e.Rate())
	}
	e.SetRate(0)
	if e.Rate() != 100 {
		t.Errorf("rate not clamped to min: %v", e.Rate())
	}
}

func TestObservationShapeAndShift(t *testing.T) {
	cfg := testConfig()
	cfg.StartRate = 400
	e := New(cfg)
	obs := e.Observation()
	if len(obs) != 12 {
		t.Fatalf("obs len = %d, want 12", len(obs))
	}
	// Fresh history: sendRatio-1 = 0, latencyRatio-1 = 0, grad = 0.
	for i, v := range obs {
		if v != 0 {
			t.Errorf("fresh obs[%d] = %v, want 0", i, v)
		}
	}
	obs1, _ := e.Step()
	obs2, _ := e.Step()
	// History slides: the last triple of obs1 becomes second-to-last of obs2.
	for k := 0; k < 3; k++ {
		if obs1[9+k] != obs2[6+k] {
			t.Errorf("history did not slide at offset %d", k)
		}
	}
}

func TestLatencyRatioAndGradientReactToCongestion(t *testing.T) {
	cfg := testConfig()
	cfg.StartRate = 1800
	e := New(cfg)
	e.Step()
	obs, _ := e.Step()
	n := len(obs)
	latRatioFeature := obs[n-2] // latencyRatio - 1
	grad := obs[n-1]
	if latRatioFeature <= 0 {
		t.Errorf("latency ratio feature %v should be positive under congestion", latRatioFeature)
	}
	if grad <= 0 {
		t.Errorf("latency gradient %v should be positive while queue grows", grad)
	}
}

func TestEpisodeTermination(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSteps = 5
	e := New(cfg)
	for i := 0; i < 5; i++ {
		if e.Done() {
			t.Fatalf("done after %d steps", i)
		}
		e.Step()
	}
	if !e.Done() {
		t.Error("not done after MaxSteps")
	}
	e.Reset()
	if e.Done() || e.Steps() != 0 || e.Time() != 0 {
		t.Error("Reset did not clear episode state")
	}
}

func TestVaryingBandwidthTrace(t *testing.T) {
	cfg := testConfig()
	cfg.Bandwidth = trace.Step{Low: 500, High: 1000, Period: 1}
	cfg.StartRate = 2000
	e := New(cfg)
	caps := map[float64]bool{}
	for i := 0; i < 100; i++ {
		_, m := e.Step()
		caps[m.Capacity] = true
	}
	if !caps[500] || !caps[1000] {
		t.Errorf("capacity trace not applied: saw %v", caps)
	}
}

func TestCrossTrafficSharesLink(t *testing.T) {
	// With 50% non-reactive cross traffic, an agent offering full link
	// rate gets roughly its proportional share and sees queueing.
	cfg := testConfig()
	cfg.StartRate = 1000
	cfg.CrossTraffic = trace.Constant(1000)
	e := New(cfg)
	var last Metrics
	for i := 0; i < 50; i++ {
		_, last = e.Step()
	}
	// Agent share is 1000/(1000+1000) = 0.5 of the 1000 pkts/s capacity.
	if last.Throughput < 400 || last.Throughput > 600 {
		t.Errorf("agent throughput %v, want ~500 (half share)", last.Throughput)
	}
	if last.AvgRTT <= last.BaseRTT {
		t.Error("combined overload should inflate RTT")
	}
	if last.LossRate <= 0 {
		t.Error("combined overload should cause drops")
	}
}

func TestCrossTrafficZeroMatchesBaseline(t *testing.T) {
	// CrossTraffic = constant 0 must be byte-identical to no cross traffic.
	a := New(testConfig())
	cfgB := testConfig()
	cfgB.CrossTraffic = trace.Constant(0)
	b := New(cfgB)
	a.SetRate(1500)
	b.SetRate(1500)
	for i := 0; i < 30; i++ {
		_, ma := a.Step()
		_, mb := b.Step()
		if ma != mb {
			t.Fatalf("step %d: metrics diverge with zero cross traffic", i)
		}
	}
}

func TestRewardTerms(t *testing.T) {
	m := Metrics{Throughput: 800, Capacity: 1000, AvgRTT: 0.05, BaseRTT: 0.04, LossRate: 0.1}
	oThr, oLat, oLoss := RewardTerms(m)
	if math.Abs(oThr-0.8) > 1e-9 {
		t.Errorf("oThr = %v, want 0.8", oThr)
	}
	if math.Abs(oLat-0.8) > 1e-9 {
		t.Errorf("oLat = %v, want 0.8", oLat)
	}
	if math.Abs(oLoss-0.9) > 1e-9 {
		t.Errorf("oLoss = %v, want 0.9", oLoss)
	}
	// All terms clamped to [0, 1].
	oThr, oLat, oLoss = RewardTerms(Metrics{Throughput: 2000, Capacity: 1000, AvgRTT: 0.01, BaseRTT: 0.04, LossRate: -1})
	if oThr != 1 || oLat != 1 || oLoss != 1 {
		t.Errorf("clamping failed: %v %v %v", oThr, oLat, oLoss)
	}
}

func TestEstimates(t *testing.T) {
	cfg := testConfig()
	cfg.StartRate = 900
	e := New(cfg)
	for i := 0; i < 20; i++ {
		e.Step()
	}
	if est := e.EstimatedCapacity(); math.Abs(est-900) > 1 {
		t.Errorf("capacity estimate %v, want ~900 (max observed throughput)", est)
	}
	if est := e.EstimatedBaseRTT(); math.Abs(est-0.04) > 1e-9 {
		t.Errorf("base RTT estimate %v, want 0.04", est)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []float64 {
		cfg := testConfig()
		cfg.LossRate = 0.01
		e := New(cfg)
		var out []float64
		for i := 0; i < 30; i++ {
			e.ApplyAction(math.Sin(float64(i)))
			_, m := e.Step()
			out = append(out, m.Throughput, m.AvgRTT, m.LossRate)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFromCondition(t *testing.T) {
	c := trace.Condition{BandwidthMbps: 12, LatencyMs: 30, QueuePkts: 500, LossRate: 0.01}
	cfg := FromCondition(c, 1500, 42)
	if got := cfg.Bandwidth.At(0); math.Abs(got-1000) > 1e-9 {
		t.Errorf("bandwidth = %v pkts/s, want 1000", got)
	}
	if cfg.LatencyMs != 30 || cfg.QueuePkts != 500 || cfg.LossRate != 0.01 {
		t.Errorf("condition not carried over: %+v", cfg)
	}
	if cfg.HistoryLen != DefaultHistoryLen {
		t.Errorf("history len = %d, want %d", cfg.HistoryLen, DefaultHistoryLen)
	}
}
