// Package gym is the monitor-interval (MI) link simulator used to train and
// evaluate rate-based congestion control agents. It is the Go equivalent of
// the OpenAI Gym + Aurora environment the paper builds on (§5): a single
// flow crosses a bottleneck link with configurable bandwidth trace,
// propagation delay, drop-tail queue and random loss; each Step advances one
// monitor interval using a fluid model and reports the network statistics
// the paper's state vector is built from (§4.1): sending ratio, latency
// ratio and latency gradient.
package gym

import (
	"fmt"
	"math"
	"math/rand"

	"mocc/internal/stats"
	"mocc/internal/trace"
)

// Config describes one simulated link and episode.
type Config struct {
	// Bandwidth is the bottleneck capacity schedule in packets/second.
	Bandwidth trace.Bandwidth
	// LatencyMs is the one-way propagation delay in milliseconds.
	LatencyMs float64
	// QueuePkts is the bottleneck buffer size in packets.
	QueuePkts int
	// LossRate is the random (non-congestive) loss probability in [0, 1).
	LossRate float64
	// MIms is the monitor-interval duration in milliseconds. Zero selects
	// one base RTT (the Aurora convention).
	MIms float64
	// HistoryLen is the η statistics-history length fed to the agent
	// (Table 2 uses 10).
	HistoryLen int
	// MaxSteps ends the episode after this many MIs (0 = unlimited).
	MaxSteps int
	// Seed drives the randomized initial rate.
	Seed int64
	// MinRate / MaxRate bound the sending rate in packets/second. Zero
	// values select defaults relative to the initial link capacity.
	MinRate, MaxRate float64
	// StartRate overrides the randomized initial sending rate when > 0.
	StartRate float64
	// CrossTraffic, when non-nil, is the rate (pkts/s over time) of
	// non-reactive background traffic sharing the bottleneck. Training
	// with cross-traffic episodes teaches policies not to starve when
	// a competitor holds the queue occupied.
	CrossTraffic trace.Bandwidth
}

// DefaultHistoryLen is η from Table 2.
const DefaultHistoryLen = 10

// ActionScale is α from Equation 1 (Table 2: 0.025).
const ActionScale = 0.025

// FromCondition builds a constant-parameter Config from a sampled network
// condition, using pktBytes to convert Mbps to packets/second.
func FromCondition(c trace.Condition, pktBytes int, seed int64) Config {
	return Config{
		Bandwidth:  trace.Constant(trace.MbpsToPktsPerSec(c.BandwidthMbps, pktBytes)),
		LatencyMs:  c.LatencyMs,
		QueuePkts:  c.QueuePkts,
		LossRate:   c.LossRate,
		HistoryLen: DefaultHistoryLen,
		Seed:       seed,
	}
}

// Stat is one MI's network statistics vector g_t = <l_t, p_t, q_t> (§4.1).
type Stat struct {
	SendRatio    float64 // packets sent / packets acked (>= 1)
	LatencyRatio float64 // mean MI latency / min observed mean latency (>= 1)
	LatencyGrad  float64 // d(latency)/dt, seconds per second
}

// Metrics reports the raw per-MI performance used for rewards and
// evaluation.
type Metrics struct {
	Time        float64 // simulation time at MI end (s)
	SendRate    float64 // offered rate this MI (pkts/s)
	Throughput  float64 // delivered rate this MI (pkts/s)
	Capacity    float64 // true link capacity this MI (pkts/s)
	Utilization float64 // Throughput / Capacity, in [0, ~1]
	AvgRTT      float64 // mean RTT this MI (s)
	MinRTT      float64 // minimum RTT observed so far (s)
	BaseRTT     float64 // true propagation RTT (s)
	LossRate    float64 // fraction of sent packets lost this MI
	Queue       float64 // queue occupancy at MI end (pkts)
	Sent        float64 // packets sent this MI
	Delivered   float64 // packets delivered this MI
	Lost        float64 // packets lost this MI
}

// LatencyRatioToBase is the paper's Figure 5(e-h) metric: measured RTT over
// the propagation RTT.
func (m Metrics) LatencyRatioToBase() float64 {
	if m.BaseRTT <= 0 {
		return 1
	}
	return m.AvgRTT / m.BaseRTT
}

// Env is a single-flow bottleneck-link environment. It is not safe for
// concurrent use; training replicates environments per goroutine instead.
type Env struct {
	cfg Config
	rng *rand.Rand

	time      float64
	rate      float64 // current sending rate (pkts/s)
	queue     float64 // bottleneck queue occupancy (pkts)
	lossCarry float64 // fractional random-loss accumulator (pkts)
	steps     int
	minMeanMs float64 // minimum observed MI mean latency (for p_t)
	prevRTT   float64 // previous MI mean RTT (for q_t)
	minRTT    float64
	history   []Stat
	maxThr    float64 // maximum observed throughput (capacity estimate)
}

// New creates and resets an environment. It panics if cfg.Bandwidth is nil,
// since every experiment must state its link explicitly.
func New(cfg Config) *Env {
	if cfg.Bandwidth == nil {
		panic("gym: Config.Bandwidth is required")
	}
	if cfg.HistoryLen <= 0 {
		cfg.HistoryLen = DefaultHistoryLen
	}
	if cfg.QueuePkts <= 0 {
		cfg.QueuePkts = 1000
	}
	bw0 := cfg.Bandwidth.At(0)
	if cfg.MIms <= 0 {
		cfg.MIms = math.Max(10, 2*cfg.LatencyMs) // one base RTT
	}
	if cfg.MinRate <= 0 {
		cfg.MinRate = math.Max(0.5, 0.01*bw0)
	}
	if cfg.MaxRate <= 0 {
		cfg.MaxRate = 8 * math.Max(bw0, 1)
	}
	e := &Env{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	e.Reset()
	return e
}

// Config returns the environment configuration.
func (e *Env) Config() Config { return e.cfg }

// ObsSize returns the flattened observation length 3·η.
func (e *Env) ObsSize() int { return 3 * e.cfg.HistoryLen }

// Reset restarts the episode: empties the queue, clears history, and draws
// a fresh randomized initial rate (0.3-1.5× the initial capacity, the Aurora
// convention) unless StartRate pins it.
func (e *Env) Reset() {
	e.time = 0
	e.queue = 0
	e.lossCarry = 0
	e.steps = 0
	e.minMeanMs = math.Inf(1)
	e.minRTT = math.Inf(1)
	e.prevRTT = 0
	e.maxThr = 0
	e.history = make([]Stat, e.cfg.HistoryLen)
	for i := range e.history {
		e.history[i] = Stat{SendRatio: 1, LatencyRatio: 1}
	}
	if e.cfg.StartRate > 0 {
		e.rate = e.clampRate(e.cfg.StartRate)
	} else {
		bw0 := e.cfg.Bandwidth.At(0)
		e.rate = e.clampRate(bw0 * (0.3 + 1.2*e.rng.Float64()))
	}
}

// Rate returns the current sending rate in packets/second.
func (e *Env) Rate() float64 { return e.rate }

// Time returns the current simulation time in seconds.
func (e *Env) Time() float64 { return e.time }

// Steps returns the number of MIs elapsed this episode.
func (e *Env) Steps() int { return e.steps }

// Done reports whether the episode reached MaxSteps.
func (e *Env) Done() bool {
	return e.cfg.MaxSteps > 0 && e.steps >= e.cfg.MaxSteps
}

// clampRate bounds a rate to the configured range.
func (e *Env) clampRate(r float64) float64 {
	return stats.Clamp(r, e.cfg.MinRate, e.cfg.MaxRate)
}

// ApplyAction changes the sending rate by the Equation 1 multiplicative
// rule: x' = x(1+αa) for a>0, x/(1-αa) for a<0, and returns the new rate.
func (e *Env) ApplyAction(a float64) float64 {
	if a > 0 {
		e.rate = e.clampRate(e.rate * (1 + ActionScale*a))
	} else if a < 0 {
		e.rate = e.clampRate(e.rate / (1 - ActionScale*a))
	}
	return e.rate
}

// SetRate pins the sending rate directly (used by non-RL baselines).
func (e *Env) SetRate(r float64) { e.rate = e.clampRate(r) }

// Step advances one monitor interval at the current sending rate and
// returns the flattened observation (3·η values, newest last) plus the raw
// metrics.
func (e *Env) Step() ([]float64, Metrics) {
	d := e.cfg.MIms / 1000 // MI duration in seconds
	cap := e.cfg.Bandwidth.At(e.time)
	if cap < 0.1 {
		cap = 0.1
	}

	sent := e.rate * d
	// Quantize random loss into whole packets: a fluid fraction every
	// interval would present loss-event-driven schemes (CUBIC, Vegas)
	// with a phantom loss event per MI even at 0.02% loss. The carry
	// accumulator emits integer losses at the configured long-run rate.
	e.lossCarry += sent * e.cfg.LossRate
	randomLost := math.Floor(e.lossCarry)
	e.lossCarry -= randomLost
	if randomLost > sent {
		randomLost = sent
	}
	arrived := sent - randomLost

	// Non-reactive background traffic shares the queue; the agent's share
	// of drops and deliveries is proportional to its arrival share.
	cross := 0.0
	if e.cfg.CrossTraffic != nil {
		cross = math.Max(0, e.cfg.CrossTraffic.At(e.time)) * d
	}
	totalArrived := arrived + cross
	share := 1.0
	if totalArrived > 0 {
		share = arrived / totalArrived
	}

	// Fluid drop-tail queue over the interval (all traffic combined).
	q0 := e.queue
	q1 := q0 + totalArrived - cap*d
	totalCongestiveLost := 0.0
	if q1 > float64(e.cfg.QueuePkts) {
		totalCongestiveLost = q1 - float64(e.cfg.QueuePkts)
		q1 = float64(e.cfg.QueuePkts)
	}
	if q1 < 0 {
		q1 = 0
	}
	e.queue = q1

	congestiveLost := totalCongestiveLost * share
	totalDelivered := totalArrived - totalCongestiveLost - (q1 - q0)
	if totalDelivered < 0 {
		totalDelivered = 0
	}
	delivered := totalDelivered * share
	lost := randomLost + congestiveLost

	baseRTT := 2 * e.cfg.LatencyMs / 1000
	queuingDelay := (q0 + q1) / 2 / cap
	rtt := baseRTT + queuingDelay

	throughput := delivered / d
	if throughput > e.maxThr {
		e.maxThr = throughput
	}
	if rtt < e.minRTT {
		e.minRTT = rtt
	}

	lossFrac := 0.0
	if sent > 0 {
		lossFrac = lost / sent
	}

	// State features (§4.1).
	sendRatio := 1.0
	if delivered > 0 {
		sendRatio = sent / delivered
	} else if sent > 0 {
		sendRatio = 10
	}
	meanMs := rtt * 1000
	if meanMs < e.minMeanMs {
		e.minMeanMs = meanMs
	}
	latRatio := meanMs / e.minMeanMs
	grad := 0.0
	if e.prevRTT > 0 {
		grad = (rtt - e.prevRTT) / d
	}
	e.prevRTT = rtt

	st := Stat{
		SendRatio:    stats.Clamp(sendRatio, 1, 10),
		LatencyRatio: stats.Clamp(latRatio, 1, 10),
		LatencyGrad:  stats.Clamp(grad, -2, 2),
	}
	e.history = append(e.history[1:], st)

	e.time += d
	e.steps++

	m := Metrics{
		Time:        e.time,
		SendRate:    e.rate,
		Throughput:  throughput,
		Capacity:    cap,
		Utilization: math.Min(throughput/cap, 1.2),
		AvgRTT:      rtt,
		MinRTT:      e.minRTT,
		BaseRTT:     baseRTT,
		LossRate:    lossFrac,
		Queue:       q1,
		Sent:        sent,
		Delivered:   delivered,
		Lost:        lost,
	}
	return e.Observation(), m
}

// Observation returns the flattened statistics history: η triples of
// (sendRatio-1, latencyRatio-1, latencyGradient), newest last. The -1 shifts
// center the at-equilibrium features on zero, which keeps the tanh trunk in
// its responsive range.
func (e *Env) Observation() []float64 {
	return e.ObservationInto(make([]float64, 0, 3*len(e.history)))
}

// ObservationInto appends the flattened statistics history to dst and
// returns the extended slice. Callers on the training hot path pass a
// buffer with sufficient capacity to avoid per-step allocations.
func (e *Env) ObservationInto(dst []float64) []float64 {
	for _, s := range e.history {
		dst = append(dst, s.SendRatio-1, s.LatencyRatio-1, s.LatencyGrad)
	}
	return dst
}

// EstimatedCapacity returns the running capacity estimate (max observed
// throughput), the online stand-in for true link capacity (§4.1).
func (e *Env) EstimatedCapacity() float64 { return e.maxThr }

// EstimatedBaseRTT returns the running minimum RTT, the online stand-in for
// base link latency.
func (e *Env) EstimatedBaseRTT() float64 { return e.minRTT }

// RewardTerms computes the three normalized objective measures of
// Equation 2 from a metrics sample: O_thr = throughput/capacity,
// O_lat = baseRTT/RTT, O_loss = 1 - lossRate, each clamped to [0, 1].
func RewardTerms(m Metrics) (oThr, oLat, oLoss float64) {
	oThr = stats.Clamp(m.Throughput/math.Max(m.Capacity, 1e-9), 0, 1)
	oLat = stats.Clamp(m.BaseRTT/math.Max(m.AvgRTT, 1e-9), 0, 1)
	oLoss = stats.Clamp(1-m.LossRate, 0, 1)
	return oThr, oLat, oLoss
}

// String implements fmt.Stringer for debugging.
func (e *Env) String() string {
	return fmt.Sprintf("gym.Env{t=%.2fs rate=%.1fpps queue=%.0f}", e.time, e.rate, e.queue)
}
