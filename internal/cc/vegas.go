package cc

import "math"

// Vegas implements TCP Vegas (Brakmo & Peterson 1994), the delay-based
// baseline: it estimates the number of packets queued at the bottleneck as
// diff = cwnd * (RTT - baseRTT) / RTT and holds it between Alpha and Beta.
type Vegas struct {
	// Alpha and Beta are the queue-occupancy thresholds in packets
	// (classic values 2 and 4).
	Alpha, Beta float64

	cwnd    float64
	baseRTT float64
	rtt     srtt
	inSS    bool
}

// NewVegas returns a Vegas controller with the classic alpha=2, beta=4.
func NewVegas() *Vegas {
	v := &Vegas{Alpha: 2, Beta: 4}
	v.Reset(0)
	return v
}

// Name implements Algorithm.
func (v *Vegas) Name() string { return "vegas" }

// Reset implements Algorithm.
func (v *Vegas) Reset(int64) {
	v.cwnd = initialCwnd
	v.baseRTT = 0
	v.rtt = srtt{}
	v.inSS = true
}

// InitialRate implements Algorithm.
func (v *Vegas) InitialRate(baseRTT float64) float64 {
	return cwndToRate(v.cwnd, baseRTT)
}

// Cwnd exposes the congestion window for tests.
func (v *Vegas) Cwnd() float64 { return v.cwnd }

// QueueEstimate returns Vegas's estimate of packets it has queued at the
// bottleneck, given the latest smoothed RTT.
func (v *Vegas) QueueEstimate() float64 {
	rtt := v.rtt.get()
	if v.baseRTT <= 0 || rtt <= 0 {
		return 0
	}
	return v.cwnd * (rtt - v.baseRTT) / rtt
}

// Update implements Algorithm.
func (v *Vegas) Update(r Report) float64 {
	rtt := v.rtt.update(r.AvgRTT)
	if r.MinRTT > 0 && (v.baseRTT == 0 || r.MinRTT < v.baseRTT) {
		v.baseRTT = r.MinRTT
	}

	if r.LossEvent() {
		v.cwnd = math.Max(minCwnd, v.cwnd*0.75)
		v.inSS = false
		return cwndToRate(v.cwnd, rtt)
	}

	diff := v.QueueEstimate()
	if v.inSS {
		// Vegas slow start: double every other RTT until the queue
		// estimate crosses alpha; per-interval we grow by delivered/2.
		if diff > v.Alpha {
			v.inSS = false
		} else {
			v.cwnd = math.Min(maxCwnd, v.cwnd+r.Delivered/2)
			return cwndToRate(v.cwnd, rtt)
		}
	}

	switch {
	case diff < v.Alpha:
		v.cwnd++
	case diff > v.Beta:
		v.cwnd--
	}
	v.cwnd = math.Max(minCwnd, math.Min(maxCwnd, v.cwnd))
	return cwndToRate(v.cwnd, rtt)
}
