// Package cc defines the congestion-control algorithm interface shared by
// the training environment, the packet-level simulator and the datapath
// shims, and implements every baseline the paper compares against (§6):
// TCP CUBIC, TCP Vegas, BBR, Copa, PCC Allegro, PCC Vivace, and adapters
// that run learned policies (Aurora, Orca, MOCC) as drop-in algorithms.
//
// All algorithms operate at monitor-interval granularity: after each
// interval the host calls Update with a Report of what happened, and the
// algorithm returns the sending rate for the next interval. Window-based
// schemes (CUBIC, Vegas) maintain a congestion window internally and are
// converted to rates via cwnd/SRTT, the standard rate-based emulation.
package cc

import (
	"math"

	"mocc/internal/gym"
)

// Report summarizes one monitor interval as observed by the sender.
type Report struct {
	Duration   float64 // interval length (s)
	Sent       float64 // packets offered to the network
	Delivered  float64 // packets acknowledged
	Lost       float64 // packets lost (inferred)
	SendRate   float64 // offered rate (pkts/s)
	Throughput float64 // delivered rate (pkts/s)
	AvgRTT     float64 // mean RTT this interval (s)
	MinRTT     float64 // minimum RTT observed so far (s)
	LossRate   float64 // Lost / Sent
}

// LossEvent reports whether any packets were lost this interval.
func (r Report) LossEvent() bool { return r.Lost > 0 }

// AlgorithmFactory creates a fresh Algorithm instance; experiments use
// factories so every run starts from pristine controller state.
type AlgorithmFactory func() Algorithm

// Algorithm is a monitor-interval congestion controller.
type Algorithm interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// Reset restores initial state; seed drives any internal randomness.
	Reset(seed int64)
	// InitialRate returns the sending rate (pkts/s) for the first
	// interval, given the expected base RTT in seconds.
	InitialRate(baseRTT float64) float64
	// Update consumes the previous interval's report and returns the
	// sending rate (pkts/s) for the next interval.
	Update(r Report) float64
}

// reportFromMetrics converts simulator metrics into the sender-visible
// report (hiding ground truth like true capacity).
func reportFromMetrics(m gym.Metrics, d float64) Report {
	return Report{
		Duration:   d,
		Sent:       m.Sent,
		Delivered:  m.Delivered,
		Lost:       m.Lost,
		SendRate:   m.SendRate,
		Throughput: m.Throughput,
		AvgRTT:     m.AvgRTT,
		MinRTT:     m.MinRTT,
		LossRate:   m.LossRate,
	}
}

// Drive runs an algorithm against a gym environment for the given number of
// monitor intervals and returns the per-interval metrics. The environment
// is reset first.
func Drive(env *gym.Env, alg Algorithm, steps int, seed int64) []gym.Metrics {
	env.Reset()
	alg.Reset(seed)
	baseRTT := 2 * env.Config().LatencyMs / 1000
	env.SetRate(alg.InitialRate(baseRTT))
	d := env.Config().MIms / 1000
	out := make([]gym.Metrics, 0, steps)
	for i := 0; i < steps; i++ {
		_, m := env.Step()
		out = append(out, m)
		env.SetRate(alg.Update(reportFromMetrics(m, d)))
	}
	return out
}

// clampRate bounds rates away from zero and absurd values so a misbehaving
// controller cannot wedge the simulation.
func clampRate(r float64) float64 {
	if math.IsNaN(r) || r < minRatePkts {
		return minRatePkts
	}
	if r > maxRatePkts {
		return maxRatePkts
	}
	return r
}

const (
	minRatePkts = 0.5   // pkts/s
	maxRatePkts = 1e7   // pkts/s
	initialCwnd = 10.0  // packets (IW10)
	minCwnd     = 2.0   // packets
	maxCwnd     = 1e6   // packets
	defaultRTT  = 0.040 // fallback when no RTT estimate exists (s)
)

// MinPacingRate and MaxPacingRate are the clampRate bounds (pkts/s) that
// every algorithm's published rate respects. The public library's safe-mode
// guard and the chaos suite pin published rates to this envelope.
const (
	MinPacingRate = minRatePkts
	MaxPacingRate = maxRatePkts
)

// ValidRate reports whether r is a finite pacing rate inside the clampRate
// envelope — the invariant a healthy controller decision always satisfies.
func ValidRate(r float64) bool {
	return !math.IsNaN(r) && !math.IsInf(r, 0) && r >= MinPacingRate && r <= MaxPacingRate
}

// srtt smooths RTT samples (RFC 6298 style, alpha = 1/8).
type srtt struct {
	value float64
}

func (s *srtt) update(sample float64) float64 {
	if sample <= 0 {
		return s.value
	}
	if s.value == 0 {
		s.value = sample
	} else {
		s.value = 0.875*s.value + 0.125*sample
	}
	return s.value
}

func (s *srtt) get() float64 {
	if s.value <= 0 {
		return defaultRTT
	}
	return s.value
}

// cwndToRate converts a window (packets) into a pacing rate over an RTT.
func cwndToRate(cwnd, rtt float64) float64 {
	if rtt <= 0 {
		rtt = defaultRTT
	}
	return clampRate(cwnd / rtt)
}
