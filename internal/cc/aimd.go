package cc

// AIMD is a deterministic rate-based additive-increase /
// multiplicative-decrease controller: one packet per RTT of window growth
// translated to rate terms, halved (by Beta) on any loss event. It carries
// no randomness and no learned state, which makes it the known-safe
// fallback the public library's safe mode degrades to when the learned
// path misbehaves — the same wrap-learned-logic-around-a-classical-
// controller layering DeepCC deploys.
//
// SetRate seeds the controller mid-connection so a fallback entered after
// a fault continues from the last known-good rate instead of restarting
// from the initial window.
type AIMD struct {
	// Increase is the additive window growth in packets per RTT
	// (default 1, classic Reno-style AI).
	Increase float64
	// Beta is the multiplicative decrease factor applied on loss
	// (default 0.7, matching CUBIC's gentler backoff).
	Beta float64

	rate float64
	rtt  srtt
}

// NewAIMD returns an AIMD controller with default parameters.
func NewAIMD() *AIMD {
	a := &AIMD{Increase: 1, Beta: 0.7}
	a.Reset(0)
	return a
}

// Name implements Algorithm.
func (a *AIMD) Name() string { return "aimd" }

// Reset implements Algorithm.
func (a *AIMD) Reset(int64) {
	a.rate = 0
	a.rtt = srtt{}
}

// InitialRate implements Algorithm.
func (a *AIMD) InitialRate(baseRTT float64) float64 {
	if baseRTT <= 0 {
		baseRTT = defaultRTT
	}
	a.rate = clampRate(initialCwnd / baseRTT)
	return a.rate
}

// SetRate forces the current pacing rate (clamped into the valid envelope),
// seeding the controller from another controller's operating point.
func (a *AIMD) SetRate(r float64) { a.rate = clampRate(r) }

// Rate returns the current pacing rate.
func (a *AIMD) Rate() float64 { return a.rate }

// Update implements Algorithm: multiplicative decrease on loss, otherwise
// additive increase of Increase packets per RTT (dRate/dt = Increase/RTT²).
func (a *AIMD) Update(r Report) float64 {
	rtt := a.rtt.update(r.AvgRTT)
	if rtt <= 0 {
		rtt = defaultRTT
	}
	if a.rate <= 0 {
		a.rate = clampRate(initialCwnd / rtt)
	}
	if r.LossEvent() {
		a.rate = clampRate(a.rate * a.Beta)
	} else {
		a.rate = clampRate(a.rate + a.Increase*r.Duration/(rtt*rtt))
	}
	return a.rate
}
