package cc

import "math"

// Cubic implements TCP CUBIC (Ha, Rhee, Xu 2008), the loss-based baseline:
// on packet loss the window is reduced by the multiplicative factor beta and
// then grows along the cubic curve W(t) = C(t-K)^3 + Wmax.
type Cubic struct {
	// C is the cubic scaling constant (0.4 per the paper/Linux default).
	C float64
	// Beta is the multiplicative decrease factor (0.7 Linux default).
	Beta float64

	cwnd       float64
	ssthresh   float64
	wMax       float64
	epochStart float64 // time since last loss event (s)
	inEpoch    bool
	rtt        srtt
	clock      float64
}

// NewCubic returns a CUBIC controller with Linux-default parameters.
func NewCubic() *Cubic {
	c := &Cubic{C: 0.4, Beta: 0.7}
	c.Reset(0)
	return c
}

// Name implements Algorithm.
func (c *Cubic) Name() string { return "cubic" }

// Reset implements Algorithm.
func (c *Cubic) Reset(int64) {
	c.cwnd = initialCwnd
	c.ssthresh = math.Inf(1)
	c.wMax = 0
	c.inEpoch = false
	c.epochStart = 0
	c.clock = 0
	c.rtt = srtt{}
}

// InitialRate implements Algorithm.
func (c *Cubic) InitialRate(baseRTT float64) float64 {
	return cwndToRate(c.cwnd, baseRTT)
}

// Cwnd exposes the current congestion window (packets) for tests.
func (c *Cubic) Cwnd() float64 { return c.cwnd }

// Update implements Algorithm.
func (c *Cubic) Update(r Report) float64 {
	rtt := c.rtt.update(r.AvgRTT)
	c.clock += r.Duration

	if r.LossEvent() {
		// Multiplicative decrease and new cubic epoch.
		c.wMax = c.cwnd
		c.cwnd = math.Max(minCwnd, c.cwnd*c.Beta)
		c.ssthresh = c.cwnd
		c.inEpoch = true
		c.epochStart = c.clock
	} else if c.cwnd < c.ssthresh {
		// Slow start: one packet per ack.
		c.cwnd = math.Min(maxCwnd, c.cwnd+r.Delivered)
	} else if c.inEpoch {
		// Congestion avoidance along the cubic curve.
		t := c.clock - c.epochStart
		k := math.Cbrt(c.wMax * (1 - c.Beta) / c.C)
		target := c.C*math.Pow(t-k, 3) + c.wMax
		if target > c.cwnd {
			// Approach the target over one RTT.
			c.cwnd += (target - c.cwnd) * math.Min(1, r.Duration/math.Max(rtt, 1e-3))
		} else {
			// Modest concave growth near/below the plateau.
			c.cwnd += 0.01 * r.Delivered / math.Max(c.cwnd, 1)
		}
		c.cwnd = math.Min(maxCwnd, math.Max(minCwnd, c.cwnd))
	} else {
		// No loss seen yet after leaving slow start: linear growth.
		c.cwnd = math.Min(maxCwnd, c.cwnd+r.Delivered/math.Max(c.cwnd, 1))
	}

	return cwndToRate(c.cwnd, rtt)
}
