package cc

import "math"

// Copa implements the delay-based Copa controller (Arun & Balakrishnan,
// NSDI 2018) at monitor-interval granularity: it steers the sending rate
// toward the target rate 1/(delta * dq), where dq is the measured queuing
// delay, using a velocity parameter that doubles while the direction of
// adjustment is consistent.
type Copa struct {
	// Delta trades throughput for delay (default 0.5).
	Delta float64

	rate     float64
	velocity float64
	lastDir  int // +1 increasing, -1 decreasing, 0 unknown
	dirRuns  int
	minRTT   float64
	rtt      srtt
}

// NewCopa returns a Copa controller with the default delta of 0.5.
func NewCopa() *Copa {
	c := &Copa{Delta: 0.5}
	c.Reset(0)
	return c
}

// Name implements Algorithm.
func (c *Copa) Name() string { return "copa" }

// Reset implements Algorithm.
func (c *Copa) Reset(int64) {
	c.rate = 0
	c.velocity = 1
	c.lastDir = 0
	c.dirRuns = 0
	c.minRTT = 0
	c.rtt = srtt{}
}

// InitialRate implements Algorithm.
func (c *Copa) InitialRate(baseRTT float64) float64 {
	if baseRTT <= 0 {
		baseRTT = defaultRTT
	}
	c.rate = clampRate(initialCwnd / baseRTT)
	return c.rate
}

// TargetRate exposes Copa's current target for tests, given the smoothed
// queuing delay estimate.
func (c *Copa) TargetRate() float64 {
	dq := c.rtt.get() - c.minRTT
	if dq < 1e-4 {
		dq = 1e-4 // cap the target when the queue is empty
	}
	return 1 / (c.Delta * dq)
}

// Update implements Algorithm.
func (c *Copa) Update(r Report) float64 {
	rtt := c.rtt.update(r.AvgRTT)
	if r.MinRTT > 0 && (c.minRTT == 0 || r.MinRTT < c.minRTT) {
		c.minRTT = r.MinRTT
	}

	target := c.TargetRate()

	dir := +1
	if c.rate > target {
		dir = -1
	}
	if dir == c.lastDir {
		c.dirRuns++
		if c.dirRuns >= 3 {
			c.velocity = math.Min(c.velocity*2, 1<<16)
		}
	} else {
		c.velocity = 1
		c.dirRuns = 0
	}
	c.lastDir = dir

	// Rate moves by velocity packets per RTT per delta (the Copa update
	// expressed on rates: delta-rate = v / (delta * rtt)).
	step := c.velocity / (c.Delta * math.Max(rtt, 1e-3))
	c.rate = clampRate(c.rate + float64(dir)*step)

	// Never overshoot the target within one update.
	if dir > 0 && c.rate > target {
		c.rate = clampRate(target)
	} else if dir < 0 && c.rate < target {
		c.rate = clampRate(target)
	}
	return c.rate
}
