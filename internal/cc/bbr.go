package cc

import "math"

// bbrState enumerates the BBR state machine phases.
type bbrState int

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
)

// BBR implements a monitor-interval model of BBR (Cardwell et al. 2016):
// it maintains windowed estimates of bottleneck bandwidth (max delivered
// rate) and min RTT, and paces at gain-cycled multiples of the bandwidth
// estimate.
type BBR struct {
	state      bbrState
	btlBw      float64   // bottleneck bandwidth estimate (pkts/s)
	bwSamples  []float64 // sliding max window
	minRTT     float64
	fullBwCnt  int     // rounds without 25% bandwidth growth
	lastFullBw float64 // bandwidth at last growth check
	cycleIdx   int
	rate       float64
}

// bbr gain constants from the BBR paper.
const (
	bbrHighGain    = 2.885 // 2/ln(2): startup gain
	bbrDrainGain   = 1 / bbrHighGain
	bbrBwWindowLen = 10 // MIs in the max-bandwidth filter
)

// bbrCycleGains is the ProbeBW pacing-gain cycle.
var bbrCycleGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// NewBBR returns a BBR controller.
func NewBBR() *BBR {
	b := &BBR{}
	b.Reset(0)
	return b
}

// Name implements Algorithm.
func (b *BBR) Name() string { return "bbr" }

// Reset implements Algorithm.
func (b *BBR) Reset(int64) {
	b.state = bbrStartup
	b.btlBw = 0
	b.bwSamples = b.bwSamples[:0]
	b.minRTT = 0
	b.fullBwCnt = 0
	b.lastFullBw = 0
	b.cycleIdx = 0
	b.rate = 0
}

// InitialRate implements Algorithm.
func (b *BBR) InitialRate(baseRTT float64) float64 {
	if baseRTT <= 0 {
		baseRTT = defaultRTT
	}
	b.rate = clampRate(initialCwnd / baseRTT)
	return b.rate
}

// State exposes the current phase for tests.
func (b *BBR) State() int { return int(b.state) }

// BtlBw exposes the bandwidth estimate for tests.
func (b *BBR) BtlBw() float64 { return b.btlBw }

// updateBw maintains the windowed-max bandwidth filter.
func (b *BBR) updateBw(sample float64) {
	b.bwSamples = append(b.bwSamples, sample)
	if len(b.bwSamples) > bbrBwWindowLen {
		b.bwSamples = b.bwSamples[1:]
	}
	maxBw := 0.0
	for _, s := range b.bwSamples {
		if s > maxBw {
			maxBw = s
		}
	}
	b.btlBw = maxBw
}

// Update implements Algorithm.
func (b *BBR) Update(r Report) float64 {
	if r.Throughput > 0 {
		b.updateBw(r.Throughput)
	}
	if r.MinRTT > 0 && (b.minRTT == 0 || r.MinRTT < b.minRTT) {
		b.minRTT = r.MinRTT
	}
	rtt := b.minRTT
	if rtt <= 0 {
		rtt = defaultRTT
	}

	switch b.state {
	case bbrStartup:
		// Exit startup once bandwidth stops growing 25% for 3 rounds.
		if b.btlBw > b.lastFullBw*1.25 {
			b.lastFullBw = b.btlBw
			b.fullBwCnt = 0
		} else {
			b.fullBwCnt++
		}
		if b.fullBwCnt >= 3 {
			b.state = bbrDrain
		}
		b.rate = clampRate(math.Max(b.btlBw*bbrHighGain, b.rate*1.5))
	case bbrDrain:
		b.rate = clampRate(b.btlBw * bbrDrainGain)
		// Queue drained when measured RTT approaches min RTT.
		if r.AvgRTT <= 1.25*rtt {
			b.state = bbrProbeBW
			b.cycleIdx = 0
		}
	case bbrProbeBW:
		gain := bbrCycleGains[b.cycleIdx]
		b.cycleIdx = (b.cycleIdx + 1) % len(bbrCycleGains)
		b.rate = clampRate(b.btlBw * gain)
	}
	return b.rate
}
