package cc

import (
	"math"

	"mocc/internal/gym"
	"mocc/internal/stats"
)

// Policy maps an observation window (3·η features, as produced by
// gym.Env.Observation and FeatureTracker.Observation) to a rate-change
// action. Learned controllers (Aurora, Orca's RL half, MOCC) implement it.
type Policy interface {
	Act(obs []float64) float64
}

// PolicyFunc adapts a plain function to the Policy interface.
type PolicyFunc func(obs []float64) float64

// Act implements Policy.
func (f PolicyFunc) Act(obs []float64) float64 { return f(obs) }

// FeatureTracker rebuilds the gym observation vector from sender-visible
// Reports, so a policy trained in the simulator sees identical features when
// deployed over the packet-level simulator or a real datapath.
type FeatureTracker struct {
	history   []gym.Stat
	minMeanMs float64
	prevRTT   float64
}

// NewFeatureTracker creates a tracker with η history slots.
func NewFeatureTracker(historyLen int) *FeatureTracker {
	if historyLen <= 0 {
		historyLen = gym.DefaultHistoryLen
	}
	t := &FeatureTracker{}
	t.ResetHistory(historyLen)
	return t
}

// ResetHistory clears state, keeping (or resizing to) the given η.
func (t *FeatureTracker) ResetHistory(historyLen int) {
	t.history = make([]gym.Stat, historyLen)
	for i := range t.history {
		t.history[i] = gym.Stat{SendRatio: 1, LatencyRatio: 1}
	}
	t.minMeanMs = math.Inf(1)
	t.prevRTT = 0
}

// Push ingests one interval report and updates the feature history.
func (t *FeatureTracker) Push(r Report) {
	sendRatio := 1.0
	if r.Delivered > 0 {
		sendRatio = r.Sent / r.Delivered
	} else if r.Sent > 0 {
		sendRatio = 10
	}
	meanMs := r.AvgRTT * 1000
	if meanMs > 0 && meanMs < t.minMeanMs {
		t.minMeanMs = meanMs
	}
	latRatio := 1.0
	if t.minMeanMs > 0 && !math.IsInf(t.minMeanMs, 1) && meanMs > 0 {
		latRatio = meanMs / t.minMeanMs
	}
	grad := 0.0
	if t.prevRTT > 0 && r.Duration > 0 {
		grad = (r.AvgRTT - t.prevRTT) / r.Duration
	}
	if r.AvgRTT > 0 {
		t.prevRTT = r.AvgRTT
	}
	st := gym.Stat{
		SendRatio:    stats.Clamp(sendRatio, 1, 10),
		LatencyRatio: stats.Clamp(latRatio, 1, 10),
		LatencyGrad:  stats.Clamp(grad, -2, 2),
	}
	t.history = append(t.history[1:], st)
}

// Observation returns the flattened feature window (same layout as
// gym.Env.Observation: η triples, newest last, equilibrium-centered).
func (t *FeatureTracker) Observation() []float64 {
	return t.ObservationInto(nil)
}

// ObservationInto fills buf with the flattened feature window, growing it
// only when its capacity is insufficient, and returns the (re)sized slice —
// the allocation-free variant of Observation for per-interval hot paths.
func (t *FeatureTracker) ObservationInto(buf []float64) []float64 {
	need := 3 * len(t.history)
	if cap(buf) < need {
		buf = make([]float64, need)
	}
	buf = buf[:need]
	i := 0
	for _, s := range t.history {
		buf[i] = s.SendRatio - 1
		buf[i+1] = s.LatencyRatio - 1
		buf[i+2] = s.LatencyGrad
		i += 3
	}
	return buf
}

// RLRate runs a learned rate policy as a congestion-control Algorithm: each
// interval the policy's action adjusts the rate by the Equation 1 rule.
//
// A probe-restart guard prevents the winner-take-all starvation that purely
// multiplicative controllers exhibit when competing flows hold the queue
// occupied: if the rate stays below a small fraction of the best observed
// throughput for several intervals, the rate is reset to a probing level.
// This mirrors TCP's restart-after-idle and PCC's rate reset and matches the
// deployed behaviour of the paper's user-space senders.
type RLRate struct {
	name    string
	policy  Policy
	tracker *FeatureTracker
	rate    float64
	// MaxAction clamps the policy output (training uses the same bound).
	MaxAction float64

	maxThr float64   // best delivered rate observed (pkts/s)
	lowMIs int       // consecutive intervals spent starved
	obsBuf []float64 // reused observation assembly (per-interval hot path)
}

// probe-restart thresholds.
const (
	probeFloorFrac   = 0.12 // starved when rate < this fraction of maxThr
	probeRestartFrac = 0.30 // restart at this fraction of maxThr
	probeAfterMIs    = 5    // consecutive starved MIs before restarting
	minRateFrac      = 0.10 // hard pacing floor relative to best throughput
)

// NewRLRate wraps a policy as an Algorithm with the given display name and
// feature history length.
func NewRLRate(name string, policy Policy, historyLen int) *RLRate {
	return &RLRate{
		name:      name,
		policy:    policy,
		tracker:   NewFeatureTracker(historyLen),
		MaxAction: 2,
	}
}

// Name implements Algorithm.
func (a *RLRate) Name() string { return a.name }

// SetRate forces the controller's current rate (clamped into the valid
// envelope). The safe-mode guard uses it to resync the learned path to the
// fallback controller's operating point when recovering from a fault, so
// the first post-recovery decision adjusts from where the connection
// actually is rather than from a stale or degenerate rate.
func (a *RLRate) SetRate(r float64) { a.rate = clampRate(r) }

// Reset implements Algorithm.
func (a *RLRate) Reset(int64) {
	a.tracker.ResetHistory(len(a.tracker.history))
	a.rate = 0
	a.maxThr = 0
	a.lowMIs = 0
}

// InitialRate implements Algorithm.
func (a *RLRate) InitialRate(baseRTT float64) float64 {
	if baseRTT <= 0 {
		baseRTT = defaultRTT
	}
	a.rate = clampRate(2 * initialCwnd / baseRTT)
	return a.rate
}

// Update implements Algorithm.
func (a *RLRate) Update(r Report) float64 {
	a.tracker.Push(r)
	if r.Throughput > a.maxThr {
		a.maxThr = r.Throughput
	}
	a.obsBuf = a.tracker.ObservationInto(a.obsBuf)
	act := stats.Clamp(a.policy.Act(a.obsBuf), -a.MaxAction, a.MaxAction)
	if act > 0 {
		a.rate = clampRate(a.rate * (1 + gym.ActionScale*act))
	} else if act < 0 {
		a.rate = clampRate(a.rate / (1 - gym.ActionScale*act))
	}
	// Probe restart: never stay starved while the link demonstrably
	// supported more.
	if a.maxThr > 0 && a.rate < probeFloorFrac*a.maxThr {
		a.lowMIs++
		if a.lowMIs >= probeAfterMIs {
			a.rate = clampRate(probeRestartFrac * a.maxThr)
			a.lowMIs = 0
		}
	} else {
		a.lowMIs = 0
	}
	// Hard pacing floor: a sender that once delivered maxThr never pacing
	// below a tenth of it (TCP keeps a minimum window for the same reason).
	if a.maxThr > 0 && a.rate < minRateFrac*a.maxThr {
		a.rate = clampRate(minRateFrac * a.maxThr)
	}
	return a.rate
}

// Orca models the two-level Orca design (Abbasloo et al., SIGCOMM 2020):
// classic CUBIC provides the fine-grained control loop, and an RL policy
// periodically rescales CUBIC's rate by 2^a with a in [-1, 1].
type Orca struct {
	cubic   *Cubic
	policy  Policy
	tracker *FeatureTracker
	// Period is how many intervals pass between RL decisions (Orca's
	// coarse control loop).
	Period int

	mult      float64
	sincePoll int
}

// NewOrca wraps an RL policy over a fresh CUBIC instance. A nil policy
// degrades to pure CUBIC (multiplier 1), which keeps the baseline usable
// before any model is trained.
func NewOrca(policy Policy, historyLen int) *Orca {
	o := &Orca{
		cubic:   NewCubic(),
		policy:  policy,
		tracker: NewFeatureTracker(historyLen),
		Period:  4,
	}
	o.Reset(0)
	return o
}

// Name implements Algorithm.
func (o *Orca) Name() string { return "orca" }

// Reset implements Algorithm.
func (o *Orca) Reset(seed int64) {
	o.cubic.Reset(seed)
	o.tracker.ResetHistory(len(o.tracker.history))
	o.mult = 1
	o.sincePoll = 0
}

// InitialRate implements Algorithm.
func (o *Orca) InitialRate(baseRTT float64) float64 {
	return o.cubic.InitialRate(baseRTT)
}

// Multiplier exposes the current RL scaling factor for tests.
func (o *Orca) Multiplier() float64 { return o.mult }

// Update implements Algorithm.
func (o *Orca) Update(r Report) float64 {
	cubicRate := o.cubic.Update(r)
	o.tracker.Push(r)
	o.sincePoll++
	if o.policy != nil && o.sincePoll >= o.Period {
		o.sincePoll = 0
		a := stats.Clamp(o.policy.Act(o.tracker.Observation()), -1, 1)
		o.mult = math.Pow(2, a)
	}
	return clampRate(cubicRate * o.mult)
}
