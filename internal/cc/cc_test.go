package cc

import (
	"math"
	"testing"

	"mocc/internal/gym"
	"mocc/internal/trace"
)

// link12 is a 12 Mbps (1000 pkts/s at 1500B), 20 ms one-way, 1xBDP link.
func link12() gym.Config {
	return gym.Config{
		Bandwidth: trace.Constant(1000),
		LatencyMs: 20,
		QueuePkts: 40, // ~1xBDP at 40ms RTT
		Seed:      1,
	}
}

func steadyReport(rate, thr, rtt, minRTT, loss float64) Report {
	d := 0.04
	sent := rate * d
	delivered := thr * d
	lost := sent * loss
	return Report{
		Duration: d, Sent: sent, Delivered: delivered, Lost: lost,
		SendRate: rate, Throughput: thr, AvgRTT: rtt, MinRTT: minRTT,
		LossRate: loss,
	}
}

func TestCubicSlowStartGrowth(t *testing.T) {
	c := NewCubic()
	c.InitialRate(0.04)
	w0 := c.Cwnd()
	// Lossless intervals: cwnd should grow fast (slow start).
	for i := 0; i < 5; i++ {
		c.Update(steadyReport(500, 500, 0.04, 0.04, 0))
	}
	if c.Cwnd() <= w0*2 {
		t.Errorf("slow start too slow: %v -> %v", w0, c.Cwnd())
	}
}

func TestCubicLossBackoff(t *testing.T) {
	c := NewCubic()
	c.InitialRate(0.04)
	for i := 0; i < 10; i++ {
		c.Update(steadyReport(500, 500, 0.04, 0.04, 0))
	}
	before := c.Cwnd()
	c.Update(steadyReport(500, 450, 0.05, 0.04, 0.1))
	after := c.Cwnd()
	if math.Abs(after-before*c.Beta) > 1e-9 {
		t.Errorf("loss backoff: %v -> %v, want factor %v", before, after, c.Beta)
	}
}

func TestCubicRecoversTowardWmax(t *testing.T) {
	c := NewCubic()
	c.InitialRate(0.04)
	for i := 0; i < 10; i++ {
		c.Update(steadyReport(500, 500, 0.04, 0.04, 0))
	}
	wMax := c.Cwnd()
	c.Update(steadyReport(500, 450, 0.05, 0.04, 0.1)) // loss
	// Lossless recovery for many RTTs: cubic curve approaches wMax.
	for i := 0; i < 200; i++ {
		c.Update(steadyReport(500, 500, 0.04, 0.04, 0))
	}
	if c.Cwnd() < 0.9*wMax {
		t.Errorf("cubic did not recover toward wMax: %v vs %v", c.Cwnd(), wMax)
	}
}

func TestCubicResetRestoresInitialState(t *testing.T) {
	c := NewCubic()
	c.InitialRate(0.04)
	for i := 0; i < 20; i++ {
		c.Update(steadyReport(500, 500, 0.04, 0.04, 0))
	}
	c.Reset(0)
	if c.Cwnd() != initialCwnd {
		t.Errorf("Reset cwnd = %v, want %v", c.Cwnd(), initialCwnd)
	}
}

func TestVegasHoldsQueueBetweenAlphaBeta(t *testing.T) {
	v := NewVegas()
	v.InitialRate(0.04)
	// Feed a link where RTT inflates proportionally to cwnd so Vegas can
	// find its operating point: queue = cwnd - bdp, rtt = base*(cwnd/bdp).
	const bdp = 40.0 // packets at base RTT 40 ms, 1000 pkts/s
	rate := v.InitialRate(0.04)
	for i := 0; i < 400; i++ {
		cwnd := rate * 0.04
		queue := math.Max(0, cwnd-bdp)
		rtt := 0.04 + queue/1000
		thr := math.Min(rate, 1000)
		rate = v.Update(steadyReport(rate, thr, rtt, 0.04, 0))
	}
	q := v.QueueEstimate()
	if q < v.Alpha-1.5 || q > v.Beta+1.5 {
		t.Errorf("vegas queue estimate %v not within [alpha=%v, beta=%v]", q, v.Alpha, v.Beta)
	}
}

func TestVegasBacksOffOnLoss(t *testing.T) {
	v := NewVegas()
	v.InitialRate(0.04)
	for i := 0; i < 10; i++ {
		v.Update(steadyReport(500, 500, 0.04, 0.04, 0))
	}
	before := v.Cwnd()
	v.Update(steadyReport(500, 400, 0.05, 0.04, 0.2))
	if v.Cwnd() >= before {
		t.Errorf("vegas did not back off on loss: %v -> %v", before, v.Cwnd())
	}
}

func TestBBRStartupExitsAndTracksBandwidth(t *testing.T) {
	b := NewBBR()
	b.InitialRate(0.04)
	// Constant 1000 pkts/s delivered: startup must exit within a handful
	// of rounds once bandwidth growth stalls.
	rate := b.InitialRate(0.04)
	for i := 0; i < 30; i++ {
		thr := math.Min(rate, 1000)
		rate = b.Update(steadyReport(rate, thr, 0.04, 0.04, 0))
	}
	if b.State() == int(bbrStartup) {
		t.Error("BBR stuck in startup on a flat link")
	}
	if math.Abs(b.BtlBw()-1000) > 100 {
		t.Errorf("BtlBw estimate %v, want ~1000", b.BtlBw())
	}
}

func TestBBRProbeBWCyclesAroundEstimate(t *testing.T) {
	b := NewBBR()
	rate := b.InitialRate(0.04)
	var rates []float64
	for i := 0; i < 60; i++ {
		thr := math.Min(rate, 1000)
		rate = b.Update(steadyReport(rate, thr, 0.04, 0.04, 0))
		if b.State() == int(bbrProbeBW) {
			rates = append(rates, rate)
		}
	}
	if len(rates) < 16 {
		t.Fatalf("BBR never settled into ProbeBW (%d samples)", len(rates))
	}
	var sawProbe, sawDrain bool
	for _, r := range rates {
		if r > 1.2*b.BtlBw() {
			sawProbe = true
		}
		if r < 0.8*b.BtlBw() {
			sawDrain = true
		}
	}
	if !sawProbe || !sawDrain {
		t.Errorf("ProbeBW cycle missing probe/drain phases (probe=%v drain=%v)", sawProbe, sawDrain)
	}
}

func TestCopaConvergesTowardTarget(t *testing.T) {
	cp := NewCopa()
	rate := cp.InitialRate(0.04)
	// Queuing delay fixed at 10 ms: target = 1/(0.5*0.01) = 200 pkts/s.
	for i := 0; i < 300; i++ {
		rate = cp.Update(steadyReport(rate, math.Min(rate, 1000), 0.05, 0.04, 0))
	}
	if math.Abs(rate-200) > 40 {
		t.Errorf("copa rate %v, want ~200 (target %v)", rate, cp.TargetRate())
	}
}

func TestCopaVelocityDoubling(t *testing.T) {
	cp := NewCopa()
	rate := cp.InitialRate(0.04)
	// Empty queue: target is huge, direction is consistently "up", so
	// per-interval increments should grow (velocity doubling).
	var increments []float64
	prev := rate
	for i := 0; i < 12; i++ {
		rate = cp.Update(steadyReport(rate, rate, 0.04, 0.04, 0))
		increments = append(increments, rate-prev)
		prev = rate
	}
	// The largest increment (before the rate saturates at the target)
	// must show velocity amplification over the first step.
	maxInc := increments[0]
	for _, inc := range increments {
		if inc > maxInc {
			maxInc = inc
		}
	}
	if maxInc <= increments[0]*2 {
		t.Errorf("velocity not amplifying: first %v max %v", increments[0], maxInc)
	}
}

func TestAllegroUtilityShape(t *testing.T) {
	// More throughput is better at zero loss.
	lo := AllegroUtility(steadyReport(500, 500, 0.04, 0.04, 0))
	hi := AllegroUtility(steadyReport(900, 900, 0.04, 0.04, 0))
	if hi <= lo {
		t.Errorf("utility not increasing in throughput: %v vs %v", lo, hi)
	}
	// Loss above the 5% knee collapses utility.
	lossy := AllegroUtility(steadyReport(900, 900, 0.04, 0.04, 0.10))
	if lossy > 0.2*hi {
		t.Errorf("10%% loss utility %v not penalized vs %v", lossy, hi)
	}
}

func TestVivaceUtilityPenalizesRTTGrowth(t *testing.T) {
	v := &vivaceLatencyState{}
	// First sample seeds the gradient state.
	v.utility(steadyReport(500, 500, 0.040, 0.04, 0))
	flat := v.utility(steadyReport(500, 500, 0.040, 0.04, 0))
	v2 := &vivaceLatencyState{}
	v2.utility(steadyReport(500, 500, 0.040, 0.04, 0))
	rising := v2.utility(steadyReport(500, 500, 0.080, 0.04, 0))
	if rising >= flat {
		t.Errorf("rising RTT utility %v should be below flat %v", rising, flat)
	}
}

func TestPCCProbesAndImproves(t *testing.T) {
	// On a clean 1000 pkts/s link, Allegro should grow its rate toward
	// capacity from a low start.
	env := gym.New(link12())
	alg := NewAllegro()
	ms := Drive(env, alg, 600, 1)
	late := ms[len(ms)-50:]
	var util float64
	for _, m := range late {
		util += m.Utilization
	}
	util /= float64(len(late))
	if util < 0.6 {
		t.Errorf("allegro late utilization %v, want > 0.6", util)
	}
}

func TestVivaceKeepsQueuesLowerThanAllegro(t *testing.T) {
	cfg := link12()
	cfg.QueuePkts = 400 // deep buffer where latency-blind schemes bloat
	envA := gym.New(cfg)
	envV := gym.New(cfg)
	msA := Drive(envA, NewAllegro(), 600, 1)
	msV := Drive(envV, NewVivace(), 600, 1)
	avgQ := func(ms []gym.Metrics) float64 {
		var q float64
		for _, m := range ms[300:] {
			q += m.Queue
		}
		return q / float64(len(ms)-300)
	}
	if qa, qv := avgQ(msA), avgQ(msV); qv > qa {
		t.Errorf("vivace queue %v should be <= allegro queue %v", qv, qa)
	}
}

func TestFeatureTrackerMatchesGym(t *testing.T) {
	// Driving the env while mirroring reports through a FeatureTracker
	// must reproduce the env's own observation exactly.
	cfg := link12()
	cfg.HistoryLen = 6
	cfg.StartRate = 1500
	env := gym.New(cfg)
	tr := NewFeatureTracker(6)
	d := env.Config().MIms / 1000
	for i := 0; i < 40; i++ {
		envObs, m := env.Step()
		tr.Push(reportFromMetrics(m, d))
		trObs := tr.Observation()
		for j := range envObs {
			if math.Abs(envObs[j]-trObs[j]) > 1e-9 {
				t.Fatalf("step %d obs[%d]: env %v vs tracker %v", i, j, envObs[j], trObs[j])
			}
		}
		// Vary the rate to exercise all features.
		if i%3 == 0 {
			env.SetRate(600 + float64(i)*20)
		}
	}
}

func TestRLRateAppliesEquationOne(t *testing.T) {
	up := NewRLRate("up", PolicyFunc(func([]float64) float64 { return 1 }), 4)
	r0 := up.InitialRate(0.04)
	r1 := up.Update(steadyReport(r0, r0, 0.04, 0.04, 0))
	want := r0 * (1 + gym.ActionScale)
	if math.Abs(r1-want) > 1e-9 {
		t.Errorf("positive action: %v, want %v", r1, want)
	}
	down := NewRLRate("down", PolicyFunc(func([]float64) float64 { return -1 }), 4)
	r0 = down.InitialRate(0.04)
	r1 = down.Update(steadyReport(r0, r0, 0.04, 0.04, 0))
	want = r0 / (1 + gym.ActionScale)
	if math.Abs(r1-want) > 1e-9 {
		t.Errorf("negative action: %v, want %v", r1, want)
	}
}

func TestRLRateClampsAction(t *testing.T) {
	wild := NewRLRate("wild", PolicyFunc(func([]float64) float64 { return 1000 }), 4)
	r0 := wild.InitialRate(0.04)
	r1 := wild.Update(steadyReport(r0, r0, 0.04, 0.04, 0))
	maxWant := r0 * (1 + gym.ActionScale*wild.MaxAction)
	if r1 > maxWant+1e-9 {
		t.Errorf("action not clamped: %v > %v", r1, maxWant)
	}
}

func TestOrcaDefaultsToCubicWithoutPolicy(t *testing.T) {
	o := NewOrca(nil, 4)
	c := NewCubic()
	o.InitialRate(0.04)
	c.InitialRate(0.04)
	for i := 0; i < 30; i++ {
		r := steadyReport(500, 500, 0.04, 0.04, 0)
		ro := o.Update(r)
		rc := c.Update(r)
		if math.Abs(ro-rc) > 1e-9 {
			t.Fatalf("interval %d: orca %v != cubic %v", i, ro, rc)
		}
	}
	if o.Multiplier() != 1 {
		t.Errorf("nil-policy multiplier = %v, want 1", o.Multiplier())
	}
}

func TestOrcaPolicyScalesCubic(t *testing.T) {
	boost := NewOrca(PolicyFunc(func([]float64) float64 { return 1 }), 4)
	plain := NewCubic()
	boost.InitialRate(0.04)
	plain.InitialRate(0.04)
	var ro, rc float64
	for i := 0; i < 20; i++ {
		r := steadyReport(500, 500, 0.04, 0.04, 0)
		ro = boost.Update(r)
		rc = plain.Update(r)
	}
	if math.Abs(ro-2*rc) > 1e-6*rc {
		t.Errorf("orca with a=1 should double cubic: %v vs 2x%v", ro, rc)
	}
}

func TestDriveProducesMetrics(t *testing.T) {
	env := gym.New(link12())
	ms := Drive(env, NewCubic(), 100, 7)
	if len(ms) != 100 {
		t.Fatalf("got %d metrics, want 100", len(ms))
	}
	// Sanity: cubic should achieve nontrivial utilization on a clean link.
	var util float64
	for _, m := range ms[50:] {
		util += m.Utilization
	}
	util /= 50
	if util < 0.5 {
		t.Errorf("cubic utilization %v suspiciously low", util)
	}
}

func TestAllAlgorithmsSurviveHarshLink(t *testing.T) {
	algs := []Algorithm{
		NewCubic(), NewVegas(), NewBBR(), NewCopa(), NewAllegro(), NewVivace(),
		NewOrca(nil, 10),
		NewRLRate("rl-zero", PolicyFunc(func([]float64) float64 { return 0 }), 10),
	}
	cfg := gym.Config{
		Bandwidth: trace.Step{Low: 100, High: 2000, Period: 0.5},
		LatencyMs: 100,
		QueuePkts: 20,
		LossRate:  0.08,
		Seed:      3,
	}
	for _, alg := range algs {
		env := gym.New(cfg)
		ms := Drive(env, alg, 200, 3)
		for i, m := range ms {
			if math.IsNaN(m.SendRate) || m.SendRate <= 0 {
				t.Errorf("%s: bad rate %v at interval %d", alg.Name(), m.SendRate, i)
				break
			}
		}
	}
}

func TestAlgorithmNames(t *testing.T) {
	want := map[Algorithm]string{
		NewCubic():   "cubic",
		NewVegas():   "vegas",
		NewBBR():     "bbr",
		NewCopa():    "copa",
		NewAllegro(): "pcc-allegro",
		NewVivace():  "pcc-vivace",
	}
	for alg, name := range want {
		if alg.Name() != name {
			t.Errorf("Name = %q, want %q", alg.Name(), name)
		}
	}
}

func TestReportLossEvent(t *testing.T) {
	if (Report{Lost: 0}).LossEvent() {
		t.Error("zero loss reported as event")
	}
	if !(Report{Lost: 1}).LossEvent() {
		t.Error("loss not reported")
	}
}

func TestClampRate(t *testing.T) {
	if got := clampRate(math.NaN()); got != minRatePkts {
		t.Errorf("NaN clamp = %v", got)
	}
	if got := clampRate(-5); got != minRatePkts {
		t.Errorf("negative clamp = %v", got)
	}
	if got := clampRate(1e12); got != maxRatePkts {
		t.Errorf("huge clamp = %v", got)
	}
	if got := clampRate(100); got != 100 {
		t.Errorf("identity clamp = %v", got)
	}
}
