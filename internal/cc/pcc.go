package cc

import (
	"math"
	"math/rand"
)

// UtilityFunc scores one monitor interval for PCC-style online learning.
type UtilityFunc func(r Report) float64

// AllegroUtility is the PCC Allegro utility (Dong et al., NSDI 2015):
// throughput scaled by a steep sigmoid loss penalty cutting in at 5% loss,
// u = T * (1 - L) * sigmoid(-alpha*(L - 0.05)) with alpha=100.
func AllegroUtility(r Report) float64 {
	const alpha = 100.0
	sig := 1 / (1 + math.Exp(alpha*(r.LossRate-0.05)))
	return r.Throughput * (1 - r.LossRate) * sig
}

// VivaceLatencyState carries the RTT-gradient estimate Vivace's utility
// needs across intervals.
type vivaceLatencyState struct {
	prevRTT float64
}

// vivaceUtility is the PCC Vivace utility (Dong et al., NSDI 2018):
// u = T^0.9 - b*T*max(0, dRTT/dt) - c*T*L with b=900, c=11.35.
func (v *vivaceLatencyState) utility(r Report) float64 {
	const (
		exponent = 0.9
		b        = 900.0
		c        = 11.35
	)
	grad := 0.0
	if v.prevRTT > 0 && r.Duration > 0 {
		grad = (r.AvgRTT - v.prevRTT) / r.Duration
	}
	v.prevRTT = r.AvgRTT
	if grad < 0 {
		grad = 0
	}
	return math.Pow(math.Max(r.Throughput, 0), exponent) -
		b*r.Throughput*grad - c*r.Throughput*r.LossRate
}

// pccPhase enumerates the micro-experiment state machine.
type pccPhase int

const (
	pccTrialUp pccPhase = iota
	pccTrialDown
	pccDecide
)

// PCC is the shared online-learning rate controller behind Allegro and
// Vivace: it runs paired micro-experiments at rate*(1±eps), compares
// utilities, and moves the base rate toward the better direction, with a
// step size that grows under consistent gradient signs (Allegro's
// confidence amplification / Vivace's gradient ascent).
type PCC struct {
	name    string
	utility UtilityFunc
	// Epsilon is the probe perturbation (0.05 per the PCC papers).
	Epsilon float64
	// BaseStepFrac is the rate-relative step for one utility-gradient
	// confidence level.
	BaseStepFrac float64

	rate       float64
	phase      pccPhase
	utilUp     float64
	utilDown   float64
	confidence int
	lastDir    int
	rng        *rand.Rand
	latState   *vivaceLatencyState // non-nil for Vivace
}

// NewAllegro returns a PCC Allegro controller.
func NewAllegro() *PCC {
	p := &PCC{name: "pcc-allegro", utility: AllegroUtility, Epsilon: 0.05, BaseStepFrac: 0.05}
	p.Reset(0)
	return p
}

// NewVivace returns a PCC Vivace controller with the latency-aware utility.
func NewVivace() *PCC {
	p := &PCC{name: "pcc-vivace", Epsilon: 0.05, BaseStepFrac: 0.05}
	p.Reset(0)
	return p
}

// Name implements Algorithm.
func (p *PCC) Name() string { return p.name }

// Reset implements Algorithm.
func (p *PCC) Reset(seed int64) {
	p.rate = 0
	p.phase = pccTrialUp
	p.confidence = 1
	p.lastDir = 0
	p.rng = rand.New(rand.NewSource(seed))
	if p.name == "pcc-vivace" {
		p.latState = &vivaceLatencyState{}
		p.utility = p.latState.utility
	}
}

// InitialRate implements Algorithm.
func (p *PCC) InitialRate(baseRTT float64) float64 {
	if baseRTT <= 0 {
		baseRTT = defaultRTT
	}
	p.rate = clampRate(2 * initialCwnd / baseRTT)
	return p.probeRate()
}

// probeRate returns the rate to offer for the current phase.
func (p *PCC) probeRate() float64 {
	switch p.phase {
	case pccTrialUp:
		return clampRate(p.rate * (1 + p.Epsilon))
	case pccTrialDown:
		return clampRate(p.rate * (1 - p.Epsilon))
	default:
		return clampRate(p.rate)
	}
}

// Rate exposes the base (non-probing) rate for tests.
func (p *PCC) Rate() float64 { return p.rate }

// Update implements Algorithm.
func (p *PCC) Update(r Report) float64 {
	switch p.phase {
	case pccTrialUp:
		p.utilUp = p.utility(r)
		p.phase = pccTrialDown
	case pccTrialDown:
		p.utilDown = p.utility(r)
		p.phase = pccDecide
	case pccDecide:
		dir := 0
		if p.utilUp > p.utilDown {
			dir = +1
		} else if p.utilDown > p.utilUp {
			dir = -1
		}
		if dir != 0 {
			if dir == p.lastDir {
				p.confidence = min(p.confidence+1, 8)
			} else {
				p.confidence = 1
			}
			p.lastDir = dir
			step := p.BaseStepFrac * float64(p.confidence)
			p.rate = clampRate(p.rate * (1 + float64(dir)*step))
		} else {
			p.confidence = 1
		}
		p.phase = pccTrialUp
	}
	return p.probeRate()
}
