package cc

import (
	"math"
	"testing"
)

func aimdReport(lost float64) Report {
	r := Report{
		Duration:  0.02,
		Sent:      100,
		Delivered: 100 - lost,
		Lost:      lost,
		AvgRTT:    0.040,
		MinRTT:    0.040,
	}
	r.SendRate = r.Sent / r.Duration
	r.Throughput = r.Delivered / r.Duration
	r.LossRate = lost / r.Sent
	return r
}

func TestAIMDIncreaseAndDecrease(t *testing.T) {
	a := NewAIMD()
	a.Reset(0)
	r0 := a.InitialRate(0.040)
	if !ValidRate(r0) {
		t.Fatalf("initial rate %v outside valid envelope", r0)
	}
	prev := r0
	for i := 0; i < 10; i++ {
		next := a.Update(aimdReport(0))
		if next <= prev {
			t.Fatalf("interval %d: clean interval did not increase rate (%v -> %v)", i, prev, next)
		}
		prev = next
	}
	dropped := a.Update(aimdReport(10))
	if dropped >= prev {
		t.Fatalf("loss did not decrease rate (%v -> %v)", prev, dropped)
	}
	if math.Abs(dropped-prev*a.Beta) > 1e-9 {
		t.Errorf("decrease is %v, want beta-scaled %v", dropped, prev*a.Beta)
	}
}

func TestAIMDSetRateSeedsOperatingPoint(t *testing.T) {
	a := NewAIMD()
	a.Reset(0)
	a.SetRate(1234)
	if a.Rate() != 1234 {
		t.Fatalf("SetRate not applied: %v", a.Rate())
	}
	next := a.Update(aimdReport(0))
	if next <= 1234 || next > 1234*1.5 {
		t.Errorf("post-seed update moved to %v, want gentle additive growth from 1234", next)
	}
	// Degenerate seeds clamp into the valid envelope.
	a.SetRate(math.NaN())
	if !ValidRate(a.Rate()) {
		t.Errorf("NaN seed left rate %v outside the envelope", a.Rate())
	}
	a.SetRate(1e12)
	if a.Rate() != MaxPacingRate {
		t.Errorf("huge seed not clamped: %v", a.Rate())
	}
}

func TestAIMDDeterministic(t *testing.T) {
	run := func() []float64 {
		a := NewAIMD()
		a.Reset(7)
		a.InitialRate(0.040)
		out := make([]float64, 0, 40)
		for i := 0; i < 40; i++ {
			lost := 0.0
			if i%13 == 0 {
				lost = 5
			}
			out = append(out, a.Update(aimdReport(lost)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interval %d: %v != %v (AIMD must be bit-deterministic)", i, a[i], b[i])
		}
	}
}

func TestRLRateSetRate(t *testing.T) {
	a := NewRLRate("t", PolicyFunc(func([]float64) float64 { return 0 }), 4)
	a.Reset(0)
	a.InitialRate(0.040)
	a.SetRate(5000)
	if got := a.Update(aimdReport(0)); got != 5000 {
		t.Errorf("zero-action update after SetRate(5000) = %v, want 5000", got)
	}
	a.SetRate(math.Inf(1))
	if got := a.Update(aimdReport(0)); !ValidRate(got) {
		t.Errorf("rate %v outside envelope after Inf SetRate", got)
	}
}
