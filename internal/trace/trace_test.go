package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstant(t *testing.T) {
	c := Constant(100)
	for _, at := range []float64{0, 1, 1e6} {
		if got := c.At(at); got != 100 {
			t.Errorf("Constant.At(%v) = %v, want 100", at, got)
		}
	}
}

func TestStep(t *testing.T) {
	s := Step{Low: 10, High: 20, Period: 5}
	cases := []struct {
		t, want float64
	}{
		{0, 10}, {4.9, 10}, {5, 20}, {9.9, 20}, {10, 10}, {15.1, 20},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("Step.At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	// Degenerate period falls back to Low.
	if got := (Step{Low: 3, High: 9}).At(7); got != 3 {
		t.Errorf("zero-period Step.At = %v, want 3", got)
	}
}

// TestSamplerMatchesBandwidth checks the devirtualized fast paths return
// bit-identical values to the interface they specialize — the property the
// netsim engine equivalence rests on.
func TestSamplerMatchesBandwidth(t *testing.T) {
	schedules := []Bandwidth{
		Constant(417.5),
		Step{Low: 500, High: 1500, Period: 0.9},
		Step{Low: 3, High: 9}, // degenerate period
		Sine{Mean: 1000, Amplitude: 400, Period: 7},
		NewRandomWalk(200, 900, 0.5, 30, 4),
	}
	rng := rand.New(rand.NewSource(1))
	for si, b := range schedules {
		s := NewSampler(b)
		for i := 0; i < 2000; i++ {
			at := rng.Float64() * 40
			if got, want := s.At(at), b.At(at); got != want {
				t.Fatalf("schedule %d: Sampler.At(%v) = %v, Bandwidth.At = %v", si, at, got, want)
			}
		}
	}
}

func TestSamplerNil(t *testing.T) {
	s := NewSampler(nil)
	if got := s.At(3); got != 0 {
		t.Errorf("nil sampler At = %v, want 0", got)
	}
}

func TestSine(t *testing.T) {
	s := Sine{Mean: 25, Amplitude: 5, Period: 10}
	if got := s.At(0); !close(got, 25) {
		t.Errorf("Sine.At(0) = %v, want 25", got)
	}
	if got := s.At(2.5); !close(got, 30) {
		t.Errorf("Sine.At(2.5) = %v, want 30", got)
	}
	if got := s.At(7.5); !close(got, 20) {
		t.Errorf("Sine.At(7.5) = %v, want 20", got)
	}
	// Amplitude exceeding mean clamps at zero.
	neg := Sine{Mean: 1, Amplitude: 10, Period: 4}
	if got := neg.At(3); got != 0 {
		t.Errorf("clamped Sine.At = %v, want 0", got)
	}
	flat := Sine{Mean: 7}
	if got := flat.At(123); got != 7 {
		t.Errorf("zero-period Sine.At = %v, want 7", got)
	}
}

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestRandomWalkDeterminism(t *testing.T) {
	a := NewRandomWalk(10, 50, 2, 60, 42)
	b := NewRandomWalk(10, 50, 2, 60, 42)
	for ti := 0.0; ti < 60; ti += 0.5 {
		if a.At(ti) != b.At(ti) {
			t.Fatalf("same seed diverged at t=%v", ti)
		}
	}
	c := NewRandomWalk(10, 50, 2, 60, 43)
	same := true
	for ti := 0.0; ti < 60; ti += 2 {
		if a.At(ti) != c.At(ti) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestRandomWalkBounds(t *testing.T) {
	rw := NewRandomWalk(5, 15, 1, 100, 1)
	for ti := -1.0; ti < 200; ti += 0.7 {
		v := rw.At(ti)
		if v < 5 || v > 15 {
			t.Fatalf("At(%v) = %v outside [5, 15]", ti, v)
		}
	}
}

func TestRandomWalkHoldsLevel(t *testing.T) {
	rw := NewRandomWalk(0, 100, 5, 50, 9)
	if rw.At(0.1) != rw.At(4.9) {
		t.Error("level changed within an interval")
	}
}

func TestUnitConversionRoundTrip(t *testing.T) {
	f := func(mbps float64) bool {
		mbps = math.Abs(math.Mod(mbps, 1e9))
		pps := MbpsToPktsPerSec(mbps, 1500)
		back := PktsPerSecToMbps(pps, 1500)
		return math.Abs(back-mbps) < 1e-9*(1+mbps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	// 12 Mbps at 1500B packets = 1000 pkts/s.
	if got := MbpsToPktsPerSec(12, 1500); !close(got, 1000) {
		t.Errorf("MbpsToPktsPerSec(12, 1500) = %v, want 1000", got)
	}
}

func TestRange(t *testing.T) {
	r := Range{10, 20}
	if !r.Contains(10) || !r.Contains(20) || !r.Contains(15) {
		t.Error("Contains failed for in-range values")
	}
	if r.Contains(9.999) || r.Contains(20.001) {
		t.Error("Contains accepted out-of-range values")
	}
	if r.Mid() != 15 {
		t.Errorf("Mid = %v, want 15", r.Mid())
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		if v := r.Sample(rng); v < 10 || v > 20 {
			t.Fatalf("Sample = %v outside range", v)
		}
	}
	// Degenerate range.
	if got := (Range{5, 5}).Sample(rng); got != 5 {
		t.Errorf("degenerate Sample = %v, want 5", got)
	}
	if s := r.String(); s != "[10, 20]" {
		t.Errorf("String = %q", s)
	}
}

func TestTableThreeRanges(t *testing.T) {
	tr := TrainingRanges()
	if tr.BandwidthMbps != (Range{1, 5}) {
		t.Errorf("training bandwidth = %v", tr.BandwidthMbps)
	}
	if tr.LossRate.High != 0.03 {
		t.Errorf("training loss high = %v, want 0.03", tr.LossRate.High)
	}
	te := TestingRanges()
	if te.BandwidthMbps != (Range{10, 50}) {
		t.Errorf("testing bandwidth = %v", te.BandwidthMbps)
	}
	if te.LatencyMs.High != 200 {
		t.Errorf("testing latency high = %v, want 200", te.LatencyMs.High)
	}
	if te.QueuePkts != (Range{500, 5000}) {
		t.Errorf("testing queue = %v", te.QueuePkts)
	}
	if te.LossRate.High != 0.10 {
		t.Errorf("testing loss high = %v, want 0.10", te.LossRate.High)
	}
}

func TestNetRangesSample(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nr := TestingRanges()
	for i := 0; i < 200; i++ {
		c := nr.Sample(rng)
		if !nr.BandwidthMbps.Contains(c.BandwidthMbps) {
			t.Fatalf("bandwidth %v out of range", c.BandwidthMbps)
		}
		if !nr.LatencyMs.Contains(c.LatencyMs) {
			t.Fatalf("latency %v out of range", c.LatencyMs)
		}
		if c.QueuePkts < 2 {
			t.Fatalf("queue %v below minimum", c.QueuePkts)
		}
		if !nr.LossRate.Contains(c.LossRate) {
			t.Fatalf("loss %v out of range", c.LossRate)
		}
	}
}

func TestConditionString(t *testing.T) {
	c := Condition{BandwidthMbps: 12, LatencyMs: 20, QueuePkts: 100, LossRate: 0.01}
	want := "bw=12.0Mbps owd=20ms queue=100pkts loss=1.00%"
	if got := c.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
