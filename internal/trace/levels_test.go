package trace

import (
	"math"
	"math/rand"
	"testing"
)

func TestLevelsValidation(t *testing.T) {
	cases := []struct {
		name   string
		times  []float64
		rates  []float64
		period float64
	}{
		{"empty", nil, nil, 0},
		{"length-mismatch", []float64{0, 1}, []float64{5}, 0},
		{"nonzero-start", []float64{1, 2}, []float64{5, 6}, 0},
		{"non-increasing", []float64{0, 2, 2}, []float64{1, 2, 3}, 0},
		{"decreasing", []float64{0, 3, 1}, []float64{1, 2, 3}, 0},
		{"inf-time", []float64{0, math.Inf(1)}, []float64{5, 6}, 0},
		{"nan-time", []float64{0, math.NaN()}, []float64{5, 6}, 0},
		{"negative-rate", []float64{0, 1}, []float64{5, -1}, 0},
		{"nan-rate", []float64{0, 1}, []float64{5, math.NaN()}, 0},
		{"inf-rate", []float64{0, 1}, []float64{5, math.Inf(1)}, 0},
		{"negative-period", []float64{0, 1}, []float64{5, 6}, -2},
		{"period-inside-schedule", []float64{0, 1, 2}, []float64{5, 6, 7}, 1.5},
		{"period-at-last-start", []float64{0, 1, 2}, []float64{5, 6, 7}, 2},
	}
	for _, c := range cases {
		if _, err := NewLevels(c.times, c.rates, c.period); err == nil {
			t.Errorf("%s: NewLevels accepted invalid input", c.name)
		}
	}
	if _, err := NewLevels([]float64{0}, []float64{42}, 0); err != nil {
		t.Errorf("single-level schedule rejected: %v", err)
	}
}

func TestLevelsAt(t *testing.T) {
	l := MustLevels([]float64{0, 1, 2.5}, []float64{100, 200, 50}, 0)
	cases := []struct{ t, want float64 }{
		{-1, 100}, {0, 100}, {0.999, 100},
		{1, 200}, {2.4999, 200},
		{2.5, 50}, {10, 50}, {1e6, 50}, // no period: last level holds
	}
	for _, c := range cases {
		if got := l.At(c.t); got != c.want {
			t.Errorf("At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestLevelsWraparound(t *testing.T) {
	l := MustLevels([]float64{0, 1, 2}, []float64{100, 200, 50}, 3)
	for _, q := range []float64{0, 0.4, 1, 1.7, 2, 2.9} {
		base := l.At(q)
		for k := 1; k <= 3; k++ {
			if got := l.At(q + float64(k)*3); got != base {
				t.Errorf("At(%g) = %g, want wrapped value %g", q+float64(k)*3, got, base)
			}
		}
	}
	// The wrap must use the same fold for non-integer multiples too.
	if got, want := l.At(3.5), l.At(0.5); got != want {
		t.Errorf("At(3.5) = %g, want %g", got, want)
	}
}

func TestLevelsPeakRate(t *testing.T) {
	l := MustLevels([]float64{0, 1, 2}, []float64{0, 400, 50}, 0)
	if got := l.PeakRate(); got != 400 {
		t.Errorf("PeakRate = %g, want 400", got)
	}
	if got := MustLevels([]float64{0}, []float64{7}, 0).PeakRate(); got != 7 {
		t.Errorf("single-level PeakRate = %g, want 7", got)
	}
}

func TestLevelsMeanRate(t *testing.T) {
	// 1s at 100 + 2s at 400 over a 3s period = 300 pkts/s mean.
	l := MustLevels([]float64{0, 1}, []float64{100, 400}, 3)
	if got := l.MeanRate(); math.Abs(got-300) > 1e-12 {
		t.Errorf("MeanRate = %g, want 300", got)
	}
	if got := MustLevels([]float64{0}, []float64{75}, 0).MeanRate(); got != 75 {
		t.Errorf("single-level MeanRate = %g, want 75", got)
	}
}

// TestSamplerLevelsBitIdentical pins the Sampler fast path (with its
// last-index cache) to the interface path: forward scans, random jumps and
// wraparound queries must agree bit-for-bit.
func TestSamplerLevelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	times := []float64{0}
	for i := 0; i < 40; i++ {
		times = append(times, times[len(times)-1]+0.05+rng.Float64())
	}
	rates := make([]float64, len(times))
	for i := range rates {
		rates[i] = 10 + 5000*rng.Float64()
	}
	for _, period := range []float64{0, times[len(times)-1] + 0.25} {
		l := MustLevels(times, rates, period)
		s := NewSampler(l)
		// Monotone scan (the engine's access pattern).
		for q := -0.5; q < 4*times[len(times)-1]; q += 0.01 {
			if got, want := s.At(q), l.At(q); got != want {
				t.Fatalf("period=%g: scan Sampler.At(%g) = %g, want %g", period, q, got, want)
			}
		}
		// Random jumps must also hit the exact interface values.
		for i := 0; i < 2000; i++ {
			q := (rng.Float64() - 0.1) * 3 * times[len(times)-1]
			if got, want := s.At(q), l.At(q); got != want {
				t.Fatalf("period=%g: jump Sampler.At(%g) = %g, want %g", period, q, got, want)
			}
		}
	}
}

// TestSamplerRandomWalkBitIdentical pins the new *RandomWalk fast path
// (previously the generic interface fallback) to RandomWalk.At.
func TestSamplerRandomWalkBitIdentical(t *testing.T) {
	w := NewRandomWalk(100, 900, 0.5, 20, 11)
	s := NewSampler(w)
	rng := rand.New(rand.NewSource(3))
	for q := -1.0; q < 30; q += 0.013 {
		if got, want := s.At(q), w.At(q); got != want {
			t.Fatalf("scan Sampler.At(%g) = %g, want %g", q, got, want)
		}
	}
	for i := 0; i < 2000; i++ {
		q := (rng.Float64() - 0.1) * 40
		if got, want := s.At(q), w.At(q); got != want {
			t.Fatalf("jump Sampler.At(%g) = %g, want %g", q, got, want)
		}
	}
}

// TestSamplerFastPathKinds verifies the concrete schedules devirtualize
// instead of taking the generic interface fallback.
func TestSamplerFastPathKinds(t *testing.T) {
	cases := []struct {
		name string
		b    Bandwidth
		kind int8
	}{
		{"constant", Constant(10), samplerConst},
		{"step", Step{Low: 1, High: 2, Period: 1}, samplerStep},
		{"random-walk", NewRandomWalk(1, 2, 1, 5, 1), samplerWalk},
		{"levels", MustLevels([]float64{0}, []float64{5}, 0), samplerLevels},
		{"generic", Sine{Mean: 5, Amplitude: 1, Period: 2}, samplerGeneric},
	}
	for _, c := range cases {
		if s := NewSampler(c.b); s.kind != c.kind {
			t.Errorf("%s: sampler kind = %d, want %d", c.name, s.kind, c.kind)
		}
	}
}

// TestSamplerAtAllocFree pins the per-packet lookup to zero allocations for
// every fast path, including the Levels binary-search + cache path.
func TestSamplerAtAllocFree(t *testing.T) {
	schedules := []Bandwidth{
		Constant(100),
		Step{Low: 100, High: 200, Period: 0.5},
		NewRandomWalk(100, 900, 0.5, 20, 5),
		MustLevels([]float64{0, 1, 2, 3}, []float64{10, 20, 30, 40}, 5),
	}
	for _, b := range schedules {
		s := NewSampler(b)
		q := 0.0
		allocs := testing.AllocsPerRun(1000, func() {
			s.At(q)
			q += 0.037
		})
		if allocs != 0 {
			t.Errorf("%T: Sampler.At allocates %.1f/op, want 0", b, allocs)
		}
	}
}

func BenchmarkSamplerLevels(b *testing.B) {
	times := make([]float64, 256)
	rates := make([]float64, 256)
	for i := range times {
		times[i] = float64(i) * 0.1
		rates[i] = float64(100 + i)
	}
	l := MustLevels(times, rates, 25.6+0.1)
	s := NewSampler(l)
	b.ReportAllocs()
	q := 0.0
	for i := 0; i < b.N; i++ {
		s.At(q)
		q += 0.001
	}
}
