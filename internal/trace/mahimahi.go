package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Mahimahi trace format: one packet-delivery opportunity per line, given as
// a non-negative integer millisecond timestamp, non-decreasing down the
// file. Each opportunity carries one MTU-sized (1500-byte) packet — the
// format Mahimahi's mm-link records for cellular and Wi-Fi links, which
// both DeepCC and the original MOCC evaluation replay. Blank lines and
// lines starting with '#' are ignored. On replay the trace wraps around at
// its final timestamp, exactly like mm-link.
//
// ParseMahimahi converts the opportunity stream to a piecewise-constant
// Levels schedule by counting opportunities per time bin, so the replayed
// capacity is the trace's delivery rate at BinMs resolution.

// MahimahiOptions tunes the trace-to-schedule conversion.
type MahimahiOptions struct {
	// BinMs is the rate-estimation bin width in milliseconds
	// (default 100, minimum 1 — timestamps are integral milliseconds, so
	// finer bins carry no information). Finer bins track fast fades more
	// closely at the cost of more schedule segments.
	BinMs float64
}

// DefaultMahimahiBinMs is the default rate-estimation bin width.
const DefaultMahimahiBinMs = 100.0

// MinMahimahiBinMs is the smallest accepted bin width.
const MinMahimahiBinMs = 1.0

// maxMahimahiBins bounds the schedule size so an absurd trace-duration /
// bin-width combination returns an error instead of attempting a
// multi-gigabyte allocation.
const maxMahimahiBins = 10_000_000

// LoadMahimahi reads a Mahimahi-format trace file and returns its
// piecewise-constant capacity schedule (pkts/s of MTU-sized packets) with
// wraparound replay at the trace's final timestamp.
func LoadMahimahi(path string, opt MahimahiOptions) (*Levels, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	l, err := ParseMahimahi(f, opt)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return l, nil
}

// ParseMahimahi parses a Mahimahi-format opportunity stream. It rejects
// empty traces, malformed lines, negative or decreasing timestamps, and
// traces whose final timestamp is zero (which would give a zero-length
// replay period) with descriptive errors.
func ParseMahimahi(r io.Reader, opt MahimahiOptions) (*Levels, error) {
	binMs := opt.BinMs
	if binMs == 0 {
		binMs = DefaultMahimahiBinMs
	}
	if math.IsNaN(binMs) || math.IsInf(binMs, 0) || binMs < MinMahimahiBinMs {
		return nil, fmt.Errorf("mahimahi: bin width %g ms must be finite and >= %g ms", binMs, MinMahimahiBinMs)
	}

	sc := bufio.NewScanner(r)
	var tsMs []float64
	lineNo := 0
	last := -1.0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseUint(line, 10, 63)
		if err != nil {
			return nil, fmt.Errorf("mahimahi: line %d: %q is not a non-negative integer millisecond timestamp", lineNo, line)
		}
		ms := float64(v)
		if ms < last {
			return nil, fmt.Errorf("mahimahi: line %d: timestamp %d ms precedes the previous timestamp %.0f ms (timestamps must be non-decreasing)", lineNo, v, last)
		}
		last = ms
		tsMs = append(tsMs, ms)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mahimahi: %w", err)
	}
	if len(tsMs) == 0 {
		return nil, fmt.Errorf("mahimahi: trace contains no delivery opportunities")
	}
	durMs := tsMs[len(tsMs)-1]
	if durMs <= 0 {
		return nil, fmt.Errorf("mahimahi: final timestamp is 0 ms; the replay period must be positive")
	}

	// Bin the opportunities. The final bin may be shorter than binMs; the
	// rate uses its true width so the mean rate is exact. Opportunities at
	// exactly the final timestamp fold into the last bin.
	if durMs/binMs > maxMahimahiBins {
		return nil, fmt.Errorf("mahimahi: %.0f ms trace at %g ms bins needs %.0f segments (max %d); raise the bin width",
			durMs, binMs, math.Ceil(durMs/binMs), maxMahimahiBins)
	}
	nBins := int(math.Ceil(durMs / binMs))
	// Ceil can round up past the true quotient (e.g. 21/1.4 evaluates to
	// 15.000000000000002), which would start the final bin exactly at
	// durMs and give it zero width; shrink until the last bin start lies
	// strictly inside the trace.
	for nBins > 1 && float64(nBins-1)*binMs >= durMs {
		nBins--
	}
	if nBins < 1 {
		nBins = 1
	}
	counts := make([]float64, nBins)
	for _, ms := range tsMs {
		i := int(ms / binMs)
		if i >= nBins {
			i = nBins - 1
		}
		counts[i]++
	}
	times := make([]float64, nBins)
	rates := make([]float64, nBins)
	for i := range counts {
		startMs := float64(i) * binMs
		endMs := math.Min(startMs+binMs, durMs)
		times[i] = startMs / 1000
		rates[i] = counts[i] / ((endMs - startMs) / 1000)
	}
	return NewLevels(times, rates, durMs/1000)
}
