package trace

import (
	"fmt"
	"math"
	"sort"
)

// Levels is a piecewise-constant bandwidth schedule: the rate is rates[i]
// for times[i] <= t < times[i+1]. It is the in-memory form of a replayed
// link recording (see LoadMahimahi) and of the declarative capacity
// schedules in scenario specs. With a positive period the schedule wraps
// around — At(t) == At(t mod period) — which reproduces Mahimahi's
// trace-replay semantics; with period zero the final level holds forever.
//
// Levels is immutable after construction and safe for concurrent reads.
type Levels struct {
	times  []float64 // segment start times (s); times[0] == 0, strictly increasing
	rates  []float64 // pkts/s per segment
	period float64   // wraparound period (s); 0 = hold last level
}

// NewLevels validates and builds a piecewise-constant schedule. times must
// start at 0 and be strictly increasing, rates must be finite and
// non-negative, and a non-zero period must exceed the last segment start
// (otherwise trailing segments would be unreachable).
func NewLevels(times, rates []float64, period float64) (*Levels, error) {
	if len(times) == 0 {
		return nil, fmt.Errorf("trace: levels schedule is empty")
	}
	if len(times) != len(rates) {
		return nil, fmt.Errorf("trace: levels schedule has %d times but %d rates", len(times), len(rates))
	}
	if times[0] != 0 {
		return nil, fmt.Errorf("trace: levels schedule must start at t=0, got %g", times[0])
	}
	for i := 1; i < len(times); i++ {
		if math.IsNaN(times[i]) || math.IsInf(times[i], 0) {
			return nil, fmt.Errorf("trace: levels schedule time[%d]=%g must be finite", i, times[i])
		}
		if !(times[i] > times[i-1]) {
			return nil, fmt.Errorf("trace: levels schedule times must be strictly increasing: times[%d]=%g <= times[%d]=%g",
				i, times[i], i-1, times[i-1])
		}
	}
	for i, r := range rates {
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			return nil, fmt.Errorf("trace: levels schedule rate[%d]=%g must be finite and non-negative", i, r)
		}
	}
	if period < 0 || math.IsNaN(period) || math.IsInf(period, 0) {
		return nil, fmt.Errorf("trace: levels period %g must be finite and non-negative", period)
	}
	if period > 0 && period <= times[len(times)-1] {
		return nil, fmt.Errorf("trace: levels period %g must exceed the last segment start %g",
			period, times[len(times)-1])
	}
	l := &Levels{
		times:  append([]float64(nil), times...),
		rates:  append([]float64(nil), rates...),
		period: period,
	}
	return l, nil
}

// MustLevels is NewLevels that panics on error; for tests and literals.
func MustLevels(times, rates []float64, period float64) *Levels {
	l, err := NewLevels(times, rates, period)
	if err != nil {
		panic(err)
	}
	return l
}

// At implements Bandwidth.
func (l *Levels) At(t float64) float64 {
	return l.rates[l.index(l.wrap(t))]
}

// wrap maps t into the schedule's domain: negative times clamp to 0 and
// times beyond a non-zero period fold back by the period.
func (l *Levels) wrap(t float64) float64 {
	if t < 0 || math.IsNaN(t) {
		return 0
	}
	if l.period > 0 && t >= l.period {
		t = math.Mod(t, l.period)
	}
	return t
}

// index returns the largest i with times[i] <= t; t must be in-domain
// (wrap applied).
func (l *Levels) index(t float64) int {
	i := sort.SearchFloat64s(l.times, t)
	if i < len(l.times) && l.times[i] == t {
		return i
	}
	return i - 1
}

// atHint evaluates the schedule with a cached segment index: when the hint
// still covers the (wrapped) query time — the overwhelmingly common case in
// a simulator's monotone per-packet scan — the lookup is two comparisons;
// advancing one segment is three; anything else falls back to the binary
// search. The returned hint feeds the next call. Values are bit-identical
// to At.
func (l *Levels) atHint(t float64, hint int) (float64, int) {
	t = l.wrap(t)
	last := len(l.times) - 1
	if hint >= 0 && hint <= last && l.times[hint] <= t && (hint == last || t < l.times[hint+1]) {
		return l.rates[hint], hint
	}
	if n := hint + 1; n >= 0 && n <= last && l.times[n] <= t && (n == last || t < l.times[n+1]) {
		return l.rates[n], n
	}
	i := l.index(t)
	return l.rates[i], i
}

// Period returns the wraparound period in seconds (0 = no wraparound).
func (l *Levels) Period() float64 { return l.period }

// NumLevels returns the number of piecewise segments.
func (l *Levels) NumLevels() int { return len(l.times) }

// Level returns segment i's start time (s) and rate (pkts/s).
func (l *Levels) Level(i int) (start, rate float64) { return l.times[i], l.rates[i] }

// MeanRate returns the time-weighted mean rate over one period (or over the
// defined schedule when there is no period), in pkts/s.
func (l *Levels) MeanRate() float64 {
	end := l.period
	if end == 0 {
		// Without a period the last level extends forever; report the mean
		// over the defined breakpoints, weighting the last level by the mean
		// segment width so it is not ignored.
		if len(l.times) == 1 {
			return l.rates[0]
		}
		end = l.times[len(l.times)-1] + l.times[len(l.times)-1]/float64(len(l.times)-1)
	}
	var sum float64
	for i := range l.times {
		hi := end
		if i+1 < len(l.times) {
			hi = l.times[i+1]
		}
		sum += l.rates[i] * (hi - l.times[i])
	}
	return sum / end
}

// PeakRate returns the maximum segment rate (pkts/s). Consumers sizing
// rate caps against a replayed link must use this rather than At(0): a
// trace may open inside an outage.
func (l *Levels) PeakRate() float64 {
	peak := l.rates[0]
	for _, r := range l.rates[1:] {
		if r > peak {
			peak = r
		}
	}
	return peak
}

// String implements fmt.Stringer.
func (l *Levels) String() string {
	return fmt.Sprintf("trace.Levels{%d levels, period=%gs, mean=%.1fpps}",
		len(l.times), l.period, l.MeanRate())
}
