package trace

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parseMM(t *testing.T, text string, opt MahimahiOptions) *Levels {
	t.Helper()
	l, err := ParseMahimahi(strings.NewReader(text), opt)
	if err != nil {
		t.Fatalf("ParseMahimahi: %v", err)
	}
	return l
}

func TestParseMahimahiBasic(t *testing.T) {
	// 4 opportunities in [0,100)ms, 1 in [100,200)ms: 40 pkts/s then
	// 10 pkts/s, replay period 200ms.
	l := parseMM(t, "0\n20\n40\n60\n100\n200\n", MahimahiOptions{BinMs: 100})
	if got := l.Period(); got != 0.2 {
		t.Fatalf("period = %g, want 0.2", got)
	}
	if got := l.At(0.05); got != 40 {
		t.Errorf("At(0.05) = %g, want 40 (4 opportunities / 0.1s)", got)
	}
	// Bin [100,200): the 100ms opportunity plus the final one at 200ms
	// (which folds into the last bin) = 2/0.1s.
	if got := l.At(0.15); got != 20 {
		t.Errorf("At(0.15) = %g, want 20", got)
	}
}

func TestParseMahimahiCommentsAndBlanks(t *testing.T) {
	text := "# recorded on a bus\n\n  \n0\n# mid-trace comment\n50\n\n100\n"
	l := parseMM(t, text, MahimahiOptions{BinMs: 100})
	if got := l.NumLevels(); got != 1 {
		t.Fatalf("NumLevels = %d, want 1", got)
	}
	if got := l.At(0); got != 30 {
		t.Errorf("At(0) = %g, want 30 (3 opportunities / 0.1s)", got)
	}
}

func TestParseMahimahiErrors(t *testing.T) {
	cases := []struct {
		name, text, wantSub string
	}{
		{"empty", "", "no delivery opportunities"},
		{"only-comments", "# nothing\n\n# here\n", "no delivery opportunities"},
		{"non-monotonic", "0\n50\n30\n", "line 3"},
		{"non-monotonic-msg", "10\n5\n", "non-decreasing"},
		{"garbage", "0\nabc\n", "line 2"},
		{"negative", "0\n-5\n", "line 2"},
		{"float", "0\n1.5\n", "line 2"},
		{"zero-duration", "0\n0\n0\n", "replay period"},
	}
	for _, c := range cases {
		_, err := ParseMahimahi(strings.NewReader(c.text), MahimahiOptions{})
		if err == nil {
			t.Errorf("%s: ParseMahimahi accepted invalid trace", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestParseMahimahiBinWidthBounds(t *testing.T) {
	// Sub-millisecond, tiny-positive and NaN bin widths must error (not
	// panic or allocate unboundedly); 0 selects the default.
	for _, bin := range []float64{1e-300, 1e-6, 0.5, math.NaN(), math.Inf(1), -5} {
		if _, err := ParseMahimahi(strings.NewReader("0\n100\n"), MahimahiOptions{BinMs: bin}); err == nil {
			t.Errorf("BinMs=%g accepted", bin)
		}
	}
	if _, err := ParseMahimahi(strings.NewReader("0\n100\n"), MahimahiOptions{BinMs: 1}); err != nil {
		t.Errorf("BinMs=1 rejected: %v", err)
	}
}

func TestParseMahimahiFractionalBinRounding(t *testing.T) {
	// durMs/binMs pairs where float ceil rounds up past the true quotient
	// (21/1.4 -> 15.000000000000002): the final bin must keep positive
	// width instead of producing an Inf/NaN rate.
	cases := []struct{ durMs, binMs float64 }{
		{21, 1.4}, {69, 2.3}, {42, 2.8}, {123, 4.1}, {153, 5.1}, {1525, 6.1},
	}
	for _, c := range cases {
		text := fmt.Sprintf("0\n%d\n", int(c.durMs))
		l, err := ParseMahimahi(strings.NewReader(text), MahimahiOptions{BinMs: c.binMs})
		if err != nil {
			t.Errorf("dur=%g bin=%g: %v", c.durMs, c.binMs, err)
			continue
		}
		if got := l.Period(); got != c.durMs/1000 {
			t.Errorf("dur=%g bin=%g: period %g", c.durMs, c.binMs, got)
		}
	}
}

func TestParseMahimahiSingleEntry(t *testing.T) {
	// One opportunity at 250ms: one packet per 250ms replay cycle.
	l := parseMM(t, "250\n", MahimahiOptions{BinMs: 100})
	if got := l.Period(); got != 0.25 {
		t.Fatalf("period = %g, want 0.25", got)
	}
	if got := l.MeanRate(); math.Abs(got-4) > 1e-12 {
		t.Errorf("MeanRate = %g, want 4 pkts/s (1 pkt / 0.25s)", got)
	}
}

func TestParseMahimahiWraparoundReplay(t *testing.T) {
	// 250ms trace; replay must repeat the schedule exactly. The period is
	// exactly representable in binary so k*period wraps are bit-exact.
	l := parseMM(t, "0\n10\n20\n150\n250\n", MahimahiOptions{BinMs: 100})
	for _, q := range []float64{0, 0.05, 0.12, 0.21, 0.2499} {
		want := l.At(q)
		for k := 1; k <= 4; k++ {
			at := q + float64(k)*0.25
			if got := l.At(at); got != want {
				t.Errorf("At(%g) = %g, want %g (wraparound replay)", at, got, want)
			}
		}
	}
}

func TestParseMahimahiUnevenFinalBin(t *testing.T) {
	// Duration 150ms with 100ms bins: final bin is 50ms wide and its rate
	// must use the true width, keeping the overall mean exact.
	l := parseMM(t, "0\n50\n120\n150\n", MahimahiOptions{BinMs: 100})
	if got := l.NumLevels(); got != 2 {
		t.Fatalf("NumLevels = %d, want 2", got)
	}
	if got := l.At(0.13); got != 40 {
		t.Errorf("final-bin rate = %g, want 40 (2 opportunities / 0.05s)", got)
	}
	wantMean := 4 / 0.15 // 4 opportunities per 150ms period
	if got := l.MeanRate(); math.Abs(got-wantMean) > 1e-9 {
		t.Errorf("MeanRate = %g, want %g", got, wantMean)
	}
}

// TestLoadMahimahiShippedTraces loads every trace shipped under
// testdata/traces and sanity-checks the resulting schedules.
func TestLoadMahimahiShippedTraces(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "traces")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".trace") {
			continue
		}
		n++
		l, err := LoadMahimahi(filepath.Join(dir, e.Name()), MahimahiOptions{})
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if l.Period() <= 0 {
			t.Errorf("%s: period = %g, want > 0", e.Name(), l.Period())
		}
		if l.MeanRate() <= 0 {
			t.Errorf("%s: mean rate = %g, want > 0", e.Name(), l.MeanRate())
		}
	}
	if n < 2 {
		t.Fatalf("found %d shipped traces in %s, want >= 2", n, dir)
	}
}

func TestLoadMahimahiMissingFile(t *testing.T) {
	if _, err := LoadMahimahi(filepath.Join(t.TempDir(), "nope.trace"), MahimahiOptions{}); err == nil {
		t.Fatal("LoadMahimahi accepted a missing file")
	}
}
