// Package trace generates the time-varying link condition schedules used by
// both the training environment and the evaluation harness: constant,
// stepped, oscillating and random-walk bandwidth traces, plus helpers for
// sampling network-condition ranges (Table 3 of the paper).
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Bandwidth is a time-varying bandwidth schedule. Implementations must be
// safe for repeated evaluation (pure functions of time).
type Bandwidth interface {
	// At returns the link capacity in packets/second at time t (seconds).
	At(t float64) float64
}

// Constant is a fixed-rate bandwidth trace.
type Constant float64

// At implements Bandwidth.
func (c Constant) At(float64) float64 { return float64(c) }

// Step alternates between Low and High every Period seconds, starting at Low.
// It reproduces the "link bandwidth varies between 20-30Mbps" motivation
// setup of Figure 1(a).
type Step struct {
	Low, High float64 // packets/second
	Period    float64 // seconds per level
}

// At implements Bandwidth.
func (s Step) At(t float64) float64 {
	if s.Period <= 0 {
		return s.Low
	}
	phase := int(math.Floor(t / s.Period))
	if phase%2 == 0 {
		return s.Low
	}
	return s.High
}

// Sine oscillates smoothly around Mean with the given Amplitude and Period.
type Sine struct {
	Mean      float64
	Amplitude float64
	Period    float64
}

// At implements Bandwidth.
func (s Sine) At(t float64) float64 {
	if s.Period <= 0 {
		return s.Mean
	}
	v := s.Mean + s.Amplitude*math.Sin(2*math.Pi*t/s.Period)
	if v < 0 {
		return 0
	}
	return v
}

// RandomWalk holds a bandwidth level for Interval seconds, then jumps to a
// uniform value in [Low, High]. Jumps are pre-generated from a seed so the
// trace is deterministic and pure.
type RandomWalk struct {
	levels   []float64
	interval float64
}

// NewRandomWalk builds a deterministic random-walk trace covering duration
// seconds with a new level every interval seconds.
func NewRandomWalk(low, high, interval, duration float64, seed int64) *RandomWalk {
	if interval <= 0 {
		interval = 1
	}
	rng := rand.New(rand.NewSource(seed))
	n := int(math.Ceil(duration/interval)) + 1
	if n < 1 {
		n = 1
	}
	levels := make([]float64, n)
	for i := range levels {
		levels[i] = low + rng.Float64()*(high-low)
	}
	return &RandomWalk{levels: levels, interval: interval}
}

// At implements Bandwidth. Times beyond the generated duration repeat the
// final level.
func (r *RandomWalk) At(t float64) float64 {
	if t < 0 {
		t = 0
	}
	idx := int(t / r.interval)
	if idx >= len(r.levels) {
		idx = len(r.levels) - 1
	}
	return r.levels[idx]
}

// Sampler is a devirtualized view of a Bandwidth schedule for per-packet
// hot loops. The common concrete schedules (Constant, Step, *RandomWalk,
// *Levels) are unpacked into plain fields so sampling them is a branch and
// a few arithmetic ops instead of an interface call — Levels additionally
// keeps a last-segment-index cache so the monotone per-packet scan pays two
// comparisons instead of a binary search; every other implementation falls
// back to the Bandwidth interface. A Sampler returns bit-identical values
// to the schedule it was built from and never allocates in At.
type Sampler struct {
	kind     int8
	levelIdx int32 // cached Levels segment hint
	constVal float64
	step     Step
	walk     *RandomWalk
	levels   *Levels
	generic  Bandwidth
}

// Sampler kinds.
const (
	samplerGeneric int8 = iota
	samplerConst
	samplerStep
	samplerWalk
	samplerLevels
)

// NewSampler builds a Sampler for b. A nil schedule yields a zero-rate
// sampler.
func NewSampler(b Bandwidth) Sampler {
	switch v := b.(type) {
	case Constant:
		return Sampler{kind: samplerConst, constVal: float64(v)}
	case Step:
		return Sampler{kind: samplerStep, step: v}
	case *RandomWalk:
		return Sampler{kind: samplerWalk, walk: v}
	case *Levels:
		return Sampler{kind: samplerLevels, levels: v}
	case nil:
		return Sampler{kind: samplerConst, constVal: 0}
	default:
		return Sampler{kind: samplerGeneric, generic: b}
	}
}

// At returns the capacity in packets/second at time t, exactly as the
// underlying schedule's At would.
func (s *Sampler) At(t float64) float64 {
	switch s.kind {
	case samplerConst:
		return s.constVal
	case samplerStep:
		return s.step.At(t)
	case samplerWalk:
		// Inlined RandomWalk.At: an index computation on the pre-generated
		// level array, no interface call.
		if t < 0 {
			t = 0
		}
		idx := int(t / s.walk.interval)
		if idx >= len(s.walk.levels) {
			idx = len(s.walk.levels) - 1
		}
		return s.walk.levels[idx]
	case samplerLevels:
		v, idx := s.levels.atHint(t, int(s.levelIdx))
		s.levelIdx = int32(idx)
		return v
	default:
		return s.generic.At(t)
	}
}

// MbpsToPktsPerSec converts megabits/second to packets/second assuming
// pktBytes bytes per packet.
func MbpsToPktsPerSec(mbps float64, pktBytes int) float64 {
	return mbps * 1e6 / 8 / float64(pktBytes)
}

// PktsPerSecToMbps converts packets/second to megabits/second assuming
// pktBytes bytes per packet.
func PktsPerSecToMbps(pps float64, pktBytes int) float64 {
	return pps * float64(pktBytes) * 8 / 1e6
}

// Range is an inclusive numeric interval used to describe a sampling range
// for a network parameter.
type Range struct {
	Low, High float64
}

// Sample draws a uniform value from the range.
func (r Range) Sample(rng *rand.Rand) float64 {
	if r.High <= r.Low {
		return r.Low
	}
	return r.Low + rng.Float64()*(r.High-r.Low)
}

// Mid returns the midpoint of the range.
func (r Range) Mid() float64 { return (r.Low + r.High) / 2 }

// Contains reports whether v lies inside the range (inclusive).
func (r Range) Contains(v float64) bool { return v >= r.Low && v <= r.High }

// String implements fmt.Stringer.
func (r Range) String() string { return fmt.Sprintf("[%g, %g]", r.Low, r.High) }

// NetRanges bundles the four sampled link parameters from Table 3.
type NetRanges struct {
	BandwidthMbps Range // bottleneck capacity
	LatencyMs     Range // one-way propagation delay
	QueuePkts     Range // bottleneck buffer size
	LossRate      Range // random (non-congestive) loss probability
}

// TrainingRanges are the Table 3 "Training" parameters:
// 1-5 Mbps, 10-50 ms, 0-3000 pkts, 0-3% loss.
func TrainingRanges() NetRanges {
	return NetRanges{
		BandwidthMbps: Range{1, 5},
		LatencyMs:     Range{10, 50},
		QueuePkts:     Range{2, 3000},
		LossRate:      Range{0, 0.03},
	}
}

// TestingRanges are the Table 3 "Testing" parameters:
// 10-50 Mbps, 10-200 ms, 500-5000 pkts, 0-10% loss. Evaluation deliberately
// exceeds the training ranges to probe robustness.
func TestingRanges() NetRanges {
	return NetRanges{
		BandwidthMbps: Range{10, 50},
		LatencyMs:     Range{10, 200},
		QueuePkts:     Range{500, 5000},
		LossRate:      Range{0, 0.10},
	}
}

// Condition is one concrete draw of link parameters.
type Condition struct {
	BandwidthMbps float64
	LatencyMs     float64
	QueuePkts     int
	LossRate      float64
}

// Sample draws a concrete condition from the ranges.
func (nr NetRanges) Sample(rng *rand.Rand) Condition {
	q := int(nr.QueuePkts.Sample(rng))
	if q < 2 {
		q = 2
	}
	return Condition{
		BandwidthMbps: nr.BandwidthMbps.Sample(rng),
		LatencyMs:     nr.LatencyMs.Sample(rng),
		QueuePkts:     q,
		LossRate:      nr.LossRate.Sample(rng),
	}
}

// String implements fmt.Stringer.
func (c Condition) String() string {
	return fmt.Sprintf("bw=%.1fMbps owd=%.0fms queue=%dpkts loss=%.2f%%",
		c.BandwidthMbps, c.LatencyMs, c.QueuePkts, c.LossRate*100)
}
