package faults

import (
	"testing"

	"mocc/internal/datapath"
)

// reportPkt / ratePkt build mocc-serve control-plane datagrams, the second
// traffic class the wire injectors classify (reports on the write side like
// data, rates on the read side like acks).
func reportPkt(seq uint64) []byte {
	pkt := make([]byte, datapath.WireReportBytes)
	datapath.EncodeReport(pkt, seq, int64(seq)*1000, datapath.WireReport{
		Flow: 1, Thr: 0.4, Lat: 0.3, Loss: 0.3,
		DurationNs: 40e6, Sent: 50, Acked: 50, AvgRTTNs: 45e6, MinRTTNs: 40e6,
	})
	return pkt
}

func ratePkt(seq uint64) []byte {
	pkt := make([]byte, datapath.WireRateBytes)
	datapath.EncodeRate(pkt, seq, int64(seq)*1000, 1, 500, 1)
	return pkt
}

// TestBlackoutSwallowsReportsAndRates pins the control-plane arm of the
// blackout injector: report datagrams inside the window are swallowed after
// a successful-looking send, rate replies inside it never reach the caller,
// and the counters record both under their own names.
func TestBlackoutSwallowsReportsAndRates(t *testing.T) {
	plan := &Plan{Seed: 1, Blackout: &Blackout{Windows: []Window{{From: 3, To: 6}}}}
	inner := &scriptConn{}
	for _, s := range ackSeqs(t, 8) {
		inner.in = append(inner.in, ratePkt(s))
	}
	fc := plan.WrapConn(inner)

	for _, s := range ackSeqs(t, 8) {
		if n, err := fc.Write(reportPkt(s)); err != nil || n != datapath.WireReportBytes {
			t.Fatalf("Write(seq=%d) = (%d, %v)", s, n, err)
		}
	}
	if got, want := len(inner.out), 5; got != want {
		t.Fatalf("forwarded %d reports, want %d (seqs 3,4,5 swallowed)", got, want)
	}
	for _, pkt := range inner.out {
		_, seq, _ := datapath.DecodeHeader(pkt)
		if seq >= 3 && seq < 6 {
			t.Fatalf("blacked-out report %d reached the wire", seq)
		}
	}

	var delivered []uint64
	for _, pkt := range readAll(fc) {
		_, seq, _ := datapath.DecodeHeader(pkt)
		delivered = append(delivered, seq)
	}
	if got, want := len(delivered), 5; got != want {
		t.Fatalf("delivered %d rates, want %d", got, want)
	}
	for _, seq := range delivered {
		if seq >= 3 && seq < 6 {
			t.Fatalf("rate for blacked-out seq %d delivered", seq)
		}
	}

	st := fc.Stats()
	if st.ReportsSwallowed != 3 || st.RatesDropped != 3 {
		t.Fatalf("stats = %+v, want 3 reports swallowed / 3 rates dropped", st)
	}
	if st.DataSwallowed != 0 || st.AcksDropped != 0 {
		t.Fatalf("control-plane faults leaked into data-plane counters: %+v", st)
	}
}

// TestServeWireTamperCounters pins that corruption, duplication, loss bursts
// and reordering applied to control-plane datagrams land in the
// Reports*/Rates* counters, disjoint from the data-plane ones, while the
// plan's injector state stays shared (same seed, same draws).
func TestServeWireTamperCounters(t *testing.T) {
	plan := &Plan{
		Seed:      7,
		AckLoss:   &AckLoss{Prob: 0.3, Burst: 2},
		Duplicate: &Duplicate{Prob: 0.5},
		Reorder:   &Reorder{Prob: 0.3, Delay: 2},
		Corrupt:   &Corrupt{Prob: 0.5, Data: true, Acks: true},
	}
	inner := &scriptConn{}
	for _, s := range ackSeqs(t, 40) {
		inner.in = append(inner.in, ratePkt(s))
	}
	fc := plan.WrapConn(inner)

	for _, s := range ackSeqs(t, 40) {
		if _, err := fc.Write(reportPkt(s)); err != nil {
			t.Fatalf("Write(seq=%d): %v", s, err)
		}
	}
	delivered := readAll(fc)

	st := fc.Stats()
	if st.ReportsCorrupted == 0 || st.ReportsDuplicated == 0 {
		t.Fatalf("write-side injectors never fired on reports: %+v", st)
	}
	if st.RatesDropped == 0 || st.RatesReordered == 0 || st.RatesCorrupted == 0 {
		t.Fatalf("read-side injectors never fired on rates: %+v", st)
	}
	if st.DataCorrupted+st.DataDuplicated+st.AcksDropped+st.AcksCorrupted+st.AcksReordered != 0 {
		t.Fatalf("control-plane faults leaked into data-plane counters: %+v", st)
	}
	if got, want := len(inner.out), 40+st.ReportsDuplicated; got != want {
		t.Fatalf("wire saw %d reports, want %d (40 + %d duplicates)", got, want, st.ReportsDuplicated)
	}
	// Reordered rates are stashed behind later reads; with the script
	// drained, everything except the dropped ones must have come through.
	if got, want := len(delivered), 40-st.RatesDropped; got > want {
		t.Fatalf("delivered %d rates, want <= %d", got, want)
	}
}
