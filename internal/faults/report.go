package faults

import (
	"math"
	"sync/atomic"
	"time"

	"mocc"
)

// Reporter is the Report signature of a *mocc.App handle.
type Reporter interface {
	Report(mocc.Status) (float64, error)
}

// FaultReporter applies a plan's ReportFaults to the Status stream before it
// reaches the wrapped Reporter: staleness (deliver the Status from
// DelayIntervals ago) and RTT clock skew. Methods are not safe for
// concurrent use — like an App handle's Report itself, one measurement loop
// drives it.
type FaultReporter struct {
	inner Reporter
	cfg   ReportFaults
	ring  []mocc.Status
	count int
}

// WrapReporter interposes the plan's report-path faults around inner. A nil
// or zero Report config passes statuses through unchanged.
func (p *Plan) WrapReporter(inner Reporter) *FaultReporter {
	var cfg ReportFaults
	if p.Report != nil {
		cfg = *p.Report
	}
	fr := &FaultReporter{inner: inner, cfg: cfg}
	if cfg.DelayIntervals > 0 {
		fr.ring = make([]mocc.Status, cfg.DelayIntervals+1)
	}
	return fr
}

// skewRTT applies the configured clock skew to one RTT field.
func (f *FaultReporter) skewRTT(d time.Duration) time.Duration {
	factor := f.cfg.SkewFactor
	if factor == 0 {
		factor = 1
	}
	out := time.Duration(float64(d)*factor) + f.cfg.SkewOffset
	if out < 0 {
		out = 0
	}
	return out
}

// Report delivers a tampered Status to the wrapped reporter. During the
// warm-up of a delay ring (fewer than DelayIntervals statuses seen) the
// oldest available Status is delivered, so the controller acts on the same
// stale measurement repeatedly — the startup shape of a lagging telemetry
// pipeline.
func (f *FaultReporter) Report(st mocc.Status) (float64, error) {
	if f.ring != nil {
		size := len(f.ring)
		f.ring[f.count%size] = st
		j := 0
		if f.count >= size-1 {
			j = f.count - (size - 1)
		}
		st = f.ring[j%size]
		f.count++
	}
	st.AvgRTT = f.skewRTT(st.AvgRTT)
	st.MinRTT = f.skewRTT(st.MinRTT)
	return f.inner.Report(st)
}

// InferenceHook builds the mocc.WithInferenceFault hook for the plan's
// InferenceFaults: it counts decisions (atomically, across all apps sharing
// the library) and poisons or stalls those whose index falls in the
// configured windows. A nil Inference config yields a nil hook.
func (p *Plan) InferenceHook() func(float64) float64 {
	inf := p.Inference
	if inf == nil {
		return nil
	}
	var calls atomic.Int64
	return func(act float64) float64 {
		i := int(calls.Add(1)) - 1
		if i >= inf.StallFrom && i < inf.StallTo && inf.StallFor > 0 {
			time.Sleep(inf.StallFor)
		}
		if i >= inf.NaNFrom && i < inf.NaNTo {
			return math.NaN()
		}
		return act
	}
}

// NaNBetween is a standalone inference hook poisoning decisions with index
// in [from, to) with NaN — the diverged-model fault, without a full Plan.
func NaNBetween(from, to int) func(float64) float64 {
	var calls atomic.Int64
	return func(act float64) float64 {
		i := int(calls.Add(1)) - 1
		if i >= from && i < to {
			return math.NaN()
		}
		return act
	}
}

// StallBetween is a standalone inference hook delaying decisions with index
// in [from, to) by d — the stalled-inference fault, without a full Plan.
func StallBetween(from, to int, d time.Duration) func(float64) float64 {
	var calls atomic.Int64
	return func(act float64) float64 {
		i := int(calls.Add(1)) - 1
		if i >= from && i < to {
			time.Sleep(d)
		}
		return act
	}
}
