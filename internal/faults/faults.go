// Package faults is the deterministic, seeded fault-injection subsystem
// behind the chaos suite and `mocc-bench -faults`: a Plan composes
// injectors for every failure class the serving stack must survive —
// ack-loss bursts, packet duplication and reordering, header corruption,
// receiver blackout windows, delayed/stale Status reports, clock skew, and
// non-finite or stalled inference — and adapts them onto the two layers
// where faults actually enter a deployment:
//
//   - the wire layer: Plan.WrapConn interposes a FaultConn between a sender
//     and its UDP socket (mocc/transport.Config.WrapConn and
//     internal/datapath accept it), tampering with data packets on Write
//     and acknowledgements on Read;
//   - the report path: Plan.WrapReporter wraps a *mocc.App (or anything
//     with its Report signature) to delay and skew the Status stream, and
//     Plan.InferenceHook builds the mocc.WithInferenceFault hook that
//     poisons or stalls the learned decision itself.
//
// Every probabilistic draw comes from a private RNG derived from Plan.Seed,
// and window-based injectors match on wire sequence numbers rather than
// wall-clock time, so a fixed plan makes bit-identical fault decisions for
// a fixed packet sequence — chaos runs are reproducible from (plan, seed).
package faults

import (
	"math/rand"
	"time"
)

// AckLoss drops acknowledgements in bursts: each arriving ack starts a new
// burst with probability Prob, and a burst swallows Burst consecutive acks
// (a 100%-loss ack window is AckLoss{Prob: 1}).
type AckLoss struct {
	// Prob is the per-ack probability of starting a drop burst.
	Prob float64
	// Burst is the burst length in acks (default 1).
	Burst int
}

// Duplicate re-sends data packets: each outgoing data packet is written
// twice with probability Prob, exercising the sender's duplicate-ack
// handling.
type Duplicate struct {
	Prob float64
}

// Reorder holds acknowledgements back: each arriving ack is stashed with
// probability Prob and released only after Delay further successful reads,
// so the sender sees acks out of order and late.
type Reorder struct {
	Prob float64
	// Delay is how many subsequent reads pass before a stashed ack is
	// released (default 3).
	Delay int
}

// Corrupt flips wire-header bytes: outgoing data-packet headers (Data) and
// incoming acknowledgements (Acks) are each corrupted with probability
// Prob. The corrupted byte and XOR mask are drawn from the plan RNG, so a
// corruption may destroy the magic byte (receiver/sender discards the
// datagram), the type byte, the sequence (ack for an unknown packet), or
// the timestamp.
type Corrupt struct {
	Prob float64
	Data bool
	Acks bool
}

// Window is a half-open wire-sequence interval [From, To).
type Window struct {
	From, To uint64
}

// contains reports whether seq falls inside the window.
func (w Window) contains(seq uint64) bool { return seq >= w.From && seq < w.To }

// Blackout silences the receiver for wire-sequence windows: data packets
// whose sequence falls in any window are swallowed after the sender's
// Write succeeds (they never reach the wire), and acknowledgements for
// in-window sequences are dropped. Sequence-based windows make a fixed
// plan bit-reproducible regardless of pacing timing; the real
// receiver-killed-mid-send case is covered by the transport chaos tests.
type Blackout struct {
	Windows []Window
}

// covers reports whether seq is inside any blackout window.
func (b *Blackout) covers(seq uint64) bool {
	if b == nil {
		return false
	}
	for _, w := range b.Windows {
		if w.contains(seq) {
			return true
		}
	}
	return false
}

// ReportFaults tampers with the Status stream an application sees:
// DelayIntervals of staleness (the controller acts on measurements that
// old) and clock skew on the RTT fields.
type ReportFaults struct {
	// DelayIntervals delivers the Status from this many intervals ago
	// (0 = live).
	DelayIntervals int
	// SkewFactor scales AvgRTT/MinRTT (0 means 1, i.e. no scaling);
	// SkewOffset is then added. Results are floored at zero so the
	// tampered Status stays structurally valid.
	SkewFactor float64
	SkewOffset time.Duration
}

// InferenceFaults poisons the learned decision itself inside a window of
// decision indexes — the model-corruption and stalled-inference faults of
// the chaos suite, delivered through mocc.WithInferenceFault.
type InferenceFaults struct {
	// NaN poisons decisions with index in [NaNFrom, NaNTo).
	NaNFrom, NaNTo int
	// Stall delays decisions with index in [StallFrom, StallTo) by
	// StallFor wall-clock time.
	StallFrom, StallTo int
	StallFor           time.Duration
}

// Plan is a seeded, reproducible composition of fault injectors. The zero
// plan injects nothing; set the fields for the faults a chaos run should
// drive. Plans are cheap values — derive one per run.
type Plan struct {
	// Seed drives every probabilistic injector; two identically-seeded
	// plans make identical decisions for identical traffic.
	Seed int64

	AckLoss   *AckLoss
	Duplicate *Duplicate
	Reorder   *Reorder
	Corrupt   *Corrupt
	Blackout  *Blackout
	Report    *ReportFaults
	Inference *InferenceFaults
}

// rng derives an independent, deterministic RNG for one injector role, so
// adding or removing one injector does not shift another's draw sequence.
func (p *Plan) rng(role int64) *rand.Rand {
	return rand.New(rand.NewSource(p.Seed*1103515245 + role*12345 + 1))
}

// rng role constants.
const (
	roleAckLoss int64 = iota + 1
	roleDuplicate
	roleReorder
	roleCorruptData
	roleCorruptAck
)
