package faults

import (
	"math"
	"testing"
	"time"

	"mocc"
)

// recordReporter captures the Status stream a FaultReporter delivers.
type recordReporter struct {
	got []mocc.Status
}

func (r *recordReporter) Report(st mocc.Status) (float64, error) {
	r.got = append(r.got, st)
	return 100, nil
}

// status returns a Status whose PacketsSent encodes its position, so
// staleness is observable.
func status(i int) mocc.Status {
	return mocc.Status{
		Duration:     20 * time.Millisecond,
		PacketsSent:  float64(i),
		PacketsAcked: float64(i),
		AvgRTT:       10 * time.Millisecond,
		MinRTT:       5 * time.Millisecond,
	}
}

func TestWrapReporterDelaysStatuses(t *testing.T) {
	plan := &Plan{Report: &ReportFaults{DelayIntervals: 2}}
	rec := &recordReporter{}
	fr := plan.WrapReporter(rec)
	for i := 1; i <= 6; i++ {
		if _, err := fr.Report(status(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Warm-up repeats the oldest Status; steady state lags by exactly 2.
	want := []float64{1, 1, 1, 2, 3, 4}
	for i, st := range rec.got {
		if st.PacketsSent != want[i] {
			t.Fatalf("delivery %d carried status %v, want %v", i, st.PacketsSent, want[i])
		}
	}
}

func TestWrapReporterSkewsRTT(t *testing.T) {
	plan := &Plan{Report: &ReportFaults{SkewFactor: 2, SkewOffset: 3 * time.Millisecond}}
	rec := &recordReporter{}
	fr := plan.WrapReporter(rec)
	if _, err := fr.Report(status(1)); err != nil {
		t.Fatal(err)
	}
	got := rec.got[0]
	if got.AvgRTT != 23*time.Millisecond || got.MinRTT != 13*time.Millisecond {
		t.Fatalf("skewed RTTs = %v/%v, want 23ms/13ms", got.AvgRTT, got.MinRTT)
	}
}

func TestWrapReporterSkewFloorsAtZero(t *testing.T) {
	plan := &Plan{Report: &ReportFaults{SkewOffset: -time.Hour}}
	rec := &recordReporter{}
	fr := plan.WrapReporter(rec)
	if _, err := fr.Report(status(1)); err != nil {
		t.Fatal(err)
	}
	if rec.got[0].AvgRTT != 0 || rec.got[0].MinRTT != 0 {
		t.Fatalf("negative skew not floored: %+v", rec.got[0])
	}
}

func TestWrapReporterZeroPlanPassesThrough(t *testing.T) {
	plan := &Plan{}
	rec := &recordReporter{}
	fr := plan.WrapReporter(rec)
	if _, err := fr.Report(status(7)); err != nil {
		t.Fatal(err)
	}
	if rec.got[0] != status(7) {
		t.Fatalf("zero plan tampered with the status: %+v", rec.got[0])
	}
}

func TestInferenceHookPoisonsWindow(t *testing.T) {
	plan := &Plan{Inference: &InferenceFaults{NaNFrom: 2, NaNTo: 4}}
	hook := plan.InferenceHook()
	for i := 0; i < 6; i++ {
		out := hook(1.5)
		inWindow := i >= 2 && i < 4
		if inWindow != math.IsNaN(out) {
			t.Fatalf("decision %d: got %v, poison window is [2,4)", i, out)
		}
	}
}

func TestInferenceHookNilWithoutConfig(t *testing.T) {
	if (&Plan{}).InferenceHook() != nil {
		t.Fatal("plan without Inference config built a hook")
	}
}

func TestNaNBetween(t *testing.T) {
	hook := NaNBetween(1, 3)
	want := []bool{false, true, true, false}
	for i, w := range want {
		if got := math.IsNaN(hook(2)); got != w {
			t.Fatalf("decision %d: NaN=%v, want %v", i, got, w)
		}
	}
}

func TestStallBetween(t *testing.T) {
	hook := StallBetween(1, 2, 30*time.Millisecond)
	start := time.Now()
	if hook(1) != 1 {
		t.Fatal("stall hook altered the action")
	}
	if time.Since(start) > 20*time.Millisecond {
		t.Fatal("decision 0 stalled; window is [1,2)")
	}
	start = time.Now()
	hook(1)
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("decision 1 did not stall")
	}
}
