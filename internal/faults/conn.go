package faults

import (
	"math/rand"
	"sync"
	"time"

	"mocc/internal/datapath"
)

// Conn is the subset of *net.UDPConn the senders drive. The shim wraps any
// implementation; mocc/transport.Send accepts one via Config.WrapConn and
// internal/datapath.RunTransfer via TransferConfig.WrapConn (the interfaces
// are structurally identical, so a FaultConn satisfies both).
type Conn interface {
	Read(b []byte) (int, error)
	Write(b []byte) (int, error)
	SetReadDeadline(t time.Time) error
	Close() error
}

// ConnStats counts the faults a FaultConn actually injected.
type ConnStats struct {
	// DataSwallowed are data packets dropped by blackout windows.
	DataSwallowed int
	// DataCorrupted / DataDuplicated count tampered outgoing packets.
	DataCorrupted  int
	DataDuplicated int
	// AcksDropped counts acks removed by loss bursts or blackout windows;
	// AcksCorrupted and AcksReordered count tampered/stashed acks.
	AcksDropped   int
	AcksCorrupted int
	AcksReordered int
	// Control-plane (mocc-serve) datagrams: report datagrams are tampered
	// on the write side exactly like data packets, rate replies on the
	// read side exactly like acks.
	ReportsSwallowed  int
	ReportsCorrupted  int
	ReportsDuplicated int
	RatesDropped      int
	RatesCorrupted    int
	RatesReordered    int
}

// FaultConn applies a Plan's wire-layer injectors around an inner Conn:
// Write tampers with outgoing datapath-bound datagrams — data packets and
// mocc-serve report datagrams — (blackout swallowing, header corruption,
// duplication); Read tampers with incoming ones — acknowledgements and
// mocc-serve rate replies — (loss bursts, blackout, corruption,
// reordering). Data and report share the write-side injector state, acks
// and rates the read-side state: a connection carries one kind or the
// other, so each plan's random streams stay bit-reproducible either way.
//
// Like the *net.UDPConn it wraps, a FaultConn supports one goroutine
// calling Write concurrently with one goroutine calling Read (the
// sender/ack-collector split every sender in this repo uses); the two
// directions keep disjoint injector state.
type FaultConn struct {
	inner Conn
	plan  *Plan

	// Write side (pacing goroutine).
	wMu         sync.Mutex
	dupRng      *rand.Rand
	corrDataRng *rand.Rand
	scratch     []byte

	// Read side (ack-collector goroutine).
	rMu        sync.Mutex
	ackRng     *rand.Rand
	reorderRng *rand.Rand
	corrAckRng *rand.Rand
	burstLeft  int
	reads      int // successful delivered reads, drives reorder release
	stash      []stashed

	statsMu sync.Mutex
	stats   ConnStats
}

// stashed is a held-back datagram pending reordering release.
type stashed struct {
	data    []byte
	release int // deliver once reads >= release
}

// WrapConn interposes the plan's wire-layer faults around inner.
func (p *Plan) WrapConn(inner Conn) *FaultConn {
	return &FaultConn{
		inner:       inner,
		plan:        p,
		dupRng:      p.rng(roleDuplicate),
		corrDataRng: p.rng(roleCorruptData),
		ackRng:      p.rng(roleAckLoss),
		reorderRng:  p.rng(roleReorder),
		corrAckRng:  p.rng(roleCorruptAck),
	}
}

// Stats returns a snapshot of the injected-fault counters.
func (c *FaultConn) Stats() ConnStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats
}

func (c *FaultConn) count(f func(*ConnStats)) {
	c.statsMu.Lock()
	f(&c.stats)
	c.statsMu.Unlock()
}

// SetReadDeadline forwards to the inner conn.
func (c *FaultConn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// Close forwards to the inner conn.
func (c *FaultConn) Close() error { return c.inner.Close() }

// corruptHeader XORs one RNG-chosen header byte with an RNG-chosen nonzero
// mask, in place.
func corruptHeader(rng *rand.Rand, pkt []byte) {
	n := len(pkt)
	if n > datapath.WireHeaderBytes {
		n = datapath.WireHeaderBytes
	}
	if n == 0 {
		return
	}
	idx := rng.Intn(n)
	mask := byte(1 + rng.Intn(255))
	pkt[idx] ^= mask
}

// Write implements Conn for outgoing data packets. The caller's buffer is
// never mutated: corruption copies first (transport reuses one packet
// buffer across sends).
func (c *FaultConn) Write(b []byte) (int, error) {
	typ, seq, ok := datapath.DecodeHeader(b)
	if !ok || (typ != datapath.WireTypeData && typ != datapath.WireTypeReport) {
		return c.inner.Write(b)
	}
	isReport := typ == datapath.WireTypeReport
	c.wMu.Lock()
	defer c.wMu.Unlock()

	if c.plan.Blackout.covers(seq) {
		// Swallowed after a successful send: the sender cannot tell the
		// receiver has gone dark — exactly the blackout it must detect
		// from the missing acks (or, for a report, the missing rate reply).
		c.count(func(s *ConnStats) {
			if isReport {
				s.ReportsSwallowed++
			} else {
				s.DataSwallowed++
			}
		})
		return len(b), nil
	}

	out := b
	if cr := c.plan.Corrupt; cr != nil && cr.Data && c.corrDataRng.Float64() < cr.Prob {
		if cap(c.scratch) < len(b) {
			c.scratch = make([]byte, len(b))
		}
		c.scratch = c.scratch[:len(b)]
		copy(c.scratch, b)
		corruptHeader(c.corrDataRng, c.scratch)
		out = c.scratch
		c.count(func(s *ConnStats) {
			if isReport {
				s.ReportsCorrupted++
			} else {
				s.DataCorrupted++
			}
		})
	}

	n, err := c.inner.Write(out)
	if err != nil {
		return n, err
	}
	if d := c.plan.Duplicate; d != nil && c.dupRng.Float64() < d.Prob {
		_, _ = c.inner.Write(out)
		c.count(func(s *ConnStats) {
			if isReport {
				s.ReportsDuplicated++
			} else {
				s.DataDuplicated++
			}
		})
	}
	if n > len(b) {
		n = len(b)
	}
	return n, nil
}

// Read implements Conn for incoming acknowledgements. Dropped datagrams
// make Read try again, so a fully-blacked-out window surfaces to the
// caller as the inner conn's read-deadline timeout — indistinguishable
// from a dead receiver, as intended.
func (c *FaultConn) Read(b []byte) (int, error) {
	c.rMu.Lock()
	defer c.rMu.Unlock()
	for {
		// Release any stashed (reordered) ack that has waited long enough.
		for i, st := range c.stash {
			if c.reads >= st.release {
				n := copy(b, st.data)
				c.stash = append(c.stash[:i], c.stash[i+1:]...)
				c.reads++
				return n, nil
			}
		}

		n, err := c.inner.Read(b)
		if err != nil {
			return n, err
		}
		typ, seq, ok := datapath.DecodeHeader(b[:n])
		if !ok || (typ != datapath.WireTypeAck && typ != datapath.WireTypeRate) {
			c.reads++
			return n, nil
		}
		isRate := typ == datapath.WireTypeRate

		if c.plan.Blackout.covers(seq) {
			c.count(func(s *ConnStats) {
				if isRate {
					s.RatesDropped++
				} else {
					s.AcksDropped++
				}
			})
			continue
		}
		if al := c.plan.AckLoss; al != nil {
			if c.burstLeft > 0 {
				c.burstLeft--
				c.count(func(s *ConnStats) {
					if isRate {
						s.RatesDropped++
					} else {
						s.AcksDropped++
					}
				})
				continue
			}
			if c.ackRng.Float64() < al.Prob {
				burst := al.Burst
				if burst <= 0 {
					burst = 1
				}
				c.burstLeft = burst - 1
				c.count(func(s *ConnStats) {
					if isRate {
						s.RatesDropped++
					} else {
						s.AcksDropped++
					}
				})
				continue
			}
		}
		if ro := c.plan.Reorder; ro != nil && c.reorderRng.Float64() < ro.Prob {
			delay := ro.Delay
			if delay <= 0 {
				delay = 3
			}
			c.stash = append(c.stash, stashed{
				data:    append([]byte(nil), b[:n]...),
				release: c.reads + delay,
			})
			c.count(func(s *ConnStats) {
				if isRate {
					s.RatesReordered++
				} else {
					s.AcksReordered++
				}
			})
			continue
		}
		if cr := c.plan.Corrupt; cr != nil && cr.Acks && c.corrAckRng.Float64() < cr.Prob {
			corruptHeader(c.corrAckRng, b[:n])
			c.count(func(s *ConnStats) {
				if isRate {
					s.RatesCorrupted++
				} else {
					s.AcksCorrupted++
				}
			})
		}
		c.reads++
		return n, nil
	}
}
