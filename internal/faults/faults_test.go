package faults

import (
	"bytes"
	"io"
	"testing"
	"time"

	"mocc/internal/datapath"
)

// scriptConn is a deterministic in-memory Conn: Read pops scripted
// datagrams until io.EOF, Write captures outgoing datagrams.
type scriptConn struct {
	in  [][]byte
	pos int
	out [][]byte
}

func (c *scriptConn) Read(b []byte) (int, error) {
	if c.pos >= len(c.in) {
		return 0, io.EOF
	}
	n := copy(b, c.in[c.pos])
	c.pos++
	return n, nil
}

func (c *scriptConn) Write(b []byte) (int, error) {
	c.out = append(c.out, append([]byte(nil), b...))
	return len(b), nil
}

func (c *scriptConn) SetReadDeadline(time.Time) error { return nil }
func (c *scriptConn) Close() error                    { return nil }

func dataPkt(seq uint64) []byte {
	pkt := make([]byte, 64)
	datapath.EncodeDataHeader(pkt, seq, int64(seq)*1000)
	return pkt
}

func ackPkt(seq uint64) []byte {
	pkt := make([]byte, datapath.WireHeaderBytes)
	datapath.EncodeAck(pkt, seq, int64(seq)*1000)
	return pkt
}

func ackSeqs(t *testing.T, n int) []uint64 {
	t.Helper()
	var seqs []uint64
	for i := 0; i < n; i++ {
		seqs = append(seqs, uint64(i+1))
	}
	return seqs
}

// readAll drains a FaultConn's read side until the inner script is empty.
func readAll(fc *FaultConn) [][]byte {
	var got [][]byte
	buf := make([]byte, 2048)
	for {
		n, err := fc.Read(buf)
		if err != nil {
			return got
		}
		got = append(got, append([]byte(nil), buf[:n]...))
	}
}

func TestBlackoutSwallowsDataAndAcks(t *testing.T) {
	plan := &Plan{Seed: 1, Blackout: &Blackout{Windows: []Window{{From: 3, To: 6}}}}
	inner := &scriptConn{}
	for _, s := range ackSeqs(t, 8) {
		inner.in = append(inner.in, ackPkt(s))
	}
	fc := plan.WrapConn(inner)

	for _, s := range ackSeqs(t, 8) {
		if _, err := fc.Write(dataPkt(s)); err != nil {
			t.Fatalf("Write(seq=%d): %v", s, err)
		}
	}
	if got, want := len(inner.out), 5; got != want {
		t.Fatalf("forwarded %d data packets, want %d (seqs 3,4,5 swallowed)", got, want)
	}
	for _, pkt := range inner.out {
		_, seq, _ := datapath.DecodeHeader(pkt)
		if seq >= 3 && seq < 6 {
			t.Fatalf("blacked-out seq %d reached the wire", seq)
		}
	}

	var delivered []uint64
	for _, pkt := range readAll(fc) {
		_, seq, _ := datapath.DecodeHeader(pkt)
		delivered = append(delivered, seq)
	}
	if got, want := len(delivered), 5; got != want {
		t.Fatalf("delivered %d acks, want %d", got, want)
	}
	for _, seq := range delivered {
		if seq >= 3 && seq < 6 {
			t.Fatalf("ack for blacked-out seq %d delivered", seq)
		}
	}

	st := fc.Stats()
	if st.DataSwallowed != 3 || st.AcksDropped != 3 {
		t.Fatalf("stats = %+v, want 3 swallowed / 3 dropped", st)
	}
}

func TestAckLossBurst(t *testing.T) {
	// Prob 1 with Burst 4: every surviving ack would restart a burst, so
	// everything drops; the interesting pin is the burst counter — use a
	// probability low enough that gaps exist, and check drops arrive in
	// runs of exactly Burst.
	plan := &Plan{Seed: 7, AckLoss: &AckLoss{Prob: 0.2, Burst: 3}}
	inner := &scriptConn{}
	const total = 400
	for i := 1; i <= total; i++ {
		inner.in = append(inner.in, ackPkt(uint64(i)))
	}
	fc := plan.WrapConn(inner)

	deliveredSet := map[uint64]bool{}
	for _, pkt := range readAll(fc) {
		_, seq, _ := datapath.DecodeHeader(pkt)
		deliveredSet[seq] = true
	}
	st := fc.Stats()
	if st.AcksDropped == 0 {
		t.Fatal("no acks dropped at Prob 0.2 over 400 acks")
	}
	if st.AcksDropped+len(deliveredSet) != total {
		t.Fatalf("dropped %d + delivered %d != %d", st.AcksDropped, len(deliveredSet), total)
	}
	// Every drop run has length >= Burst is too strong (a new burst can
	// start inside another's tail); but with Burst 3 no isolated
	// single-drop should exist unless it abuts the script end.
	run := 0
	for i := uint64(1); i <= total; i++ {
		if !deliveredSet[i] {
			run++
			continue
		}
		if run > 0 && run < 3 && i > 3 {
			t.Fatalf("drop run of length %d ending before seq %d; bursts are %d", run, i, 3)
		}
		run = 0
	}
}

func TestDuplicateWritesTwice(t *testing.T) {
	plan := &Plan{Seed: 3, Duplicate: &Duplicate{Prob: 1}}
	inner := &scriptConn{}
	fc := plan.WrapConn(inner)
	for _, s := range ackSeqs(t, 5) {
		if _, err := fc.Write(dataPkt(s)); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := len(inner.out), 10; got != want {
		t.Fatalf("forwarded %d datagrams, want %d (every packet duplicated)", got, want)
	}
	if fc.Stats().DataDuplicated != 5 {
		t.Fatalf("DataDuplicated = %d, want 5", fc.Stats().DataDuplicated)
	}
}

func TestCorruptDataFlipsHeaderByteWithoutMutatingCaller(t *testing.T) {
	plan := &Plan{Seed: 11, Corrupt: &Corrupt{Prob: 1, Data: true}}
	inner := &scriptConn{}
	fc := plan.WrapConn(inner)

	orig := dataPkt(42)
	sent := append([]byte(nil), orig...)
	if _, err := fc.Write(sent); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sent, orig) {
		t.Fatal("Write mutated the caller's buffer")
	}
	got := inner.out[0]
	diff := 0
	for i := range orig {
		if got[i] != orig[i] {
			diff++
			if i >= datapath.WireHeaderBytes {
				t.Fatalf("corruption outside the header at byte %d", i)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
}

func TestCorruptAcks(t *testing.T) {
	plan := &Plan{Seed: 13, Corrupt: &Corrupt{Prob: 1, Acks: true}}
	inner := &scriptConn{in: [][]byte{ackPkt(7)}}
	fc := plan.WrapConn(inner)
	got := readAll(fc)
	if len(got) != 1 {
		t.Fatalf("delivered %d datagrams, want 1", len(got))
	}
	if bytes.Equal(got[0], ackPkt(7)) {
		t.Fatal("ack delivered uncorrupted at Prob 1")
	}
	if fc.Stats().AcksCorrupted != 1 {
		t.Fatalf("AcksCorrupted = %d, want 1", fc.Stats().AcksCorrupted)
	}
}

func TestReorderDelaysAcks(t *testing.T) {
	plan := &Plan{Seed: 5, Reorder: &Reorder{Prob: 0.3, Delay: 2}}
	inner := &scriptConn{}
	const total = 50
	for i := 1; i <= total; i++ {
		inner.in = append(inner.in, ackPkt(uint64(i)))
	}
	fc := plan.WrapConn(inner)

	var order []uint64
	for _, pkt := range readAll(fc) {
		_, seq, _ := datapath.DecodeHeader(pkt)
		order = append(order, seq)
	}
	if fc.Stats().AcksReordered == 0 {
		t.Fatal("nothing reordered at Prob 0.3 over 50 acks")
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatalf("delivery order still sorted despite %d stashed acks: %v",
			fc.Stats().AcksReordered, order)
	}
}

// TestSameSeedSamePlanIsBitReproducible pins the core chaos-suite
// guarantee: two identically-seeded plans driven with identical traffic
// make byte-identical injection decisions in both directions.
func TestSameSeedSamePlanIsBitReproducible(t *testing.T) {
	run := func() ([][]byte, [][]byte, ConnStats) {
		plan := &Plan{
			Seed:      99,
			AckLoss:   &AckLoss{Prob: 0.1, Burst: 2},
			Duplicate: &Duplicate{Prob: 0.1},
			Reorder:   &Reorder{Prob: 0.1, Delay: 3},
			Corrupt:   &Corrupt{Prob: 0.1, Data: true, Acks: true},
			Blackout:  &Blackout{Windows: []Window{{From: 40, To: 60}}},
		}
		inner := &scriptConn{}
		for i := 1; i <= 200; i++ {
			inner.in = append(inner.in, ackPkt(uint64(i)))
		}
		fc := plan.WrapConn(inner)
		for i := 1; i <= 200; i++ {
			if _, err := fc.Write(dataPkt(uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		return inner.out, readAll(fc), fc.Stats()
	}

	out1, in1, st1 := run()
	out2, in2, st2 := run()
	if st1 != st2 {
		t.Fatalf("stats diverged between identical runs: %+v vs %+v", st1, st2)
	}
	if len(out1) != len(out2) || len(in1) != len(in2) {
		t.Fatalf("datagram counts diverged: out %d/%d, in %d/%d",
			len(out1), len(out2), len(in1), len(in2))
	}
	for i := range out1 {
		if !bytes.Equal(out1[i], out2[i]) {
			t.Fatalf("outgoing datagram %d differs between identical runs", i)
		}
	}
	for i := range in1 {
		if !bytes.Equal(in1[i], in2[i]) {
			t.Fatalf("delivered datagram %d differs between identical runs", i)
		}
	}
}

func TestNonWireDatagramsPassThrough(t *testing.T) {
	plan := &Plan{Seed: 1, Corrupt: &Corrupt{Prob: 1, Data: true, Acks: true}}
	inner := &scriptConn{in: [][]byte{[]byte("not a mocc datagram")}}
	fc := plan.WrapConn(inner)
	if _, err := fc.Write([]byte("short")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inner.out[0], []byte("short")) {
		t.Fatal("foreign outgoing datagram tampered with")
	}
	got := readAll(fc)
	if len(got) != 1 || !bytes.Equal(got[0], []byte("not a mocc datagram")) {
		t.Fatal("foreign incoming datagram tampered with")
	}
}
