// Package apps implements the three real-application workloads of §6.3 over
// the packet-level simulator: adaptive-bitrate video streaming (Pensieve
// style, Figure 8), real-time communications (Salsify style, Figure 9), and
// bulk data transfer (Figure 10).
package apps

import (
	"errors"
	"math"
)

// ABRConfig describes the video stream and player.
type ABRConfig struct {
	// BitratesMbps are the available quality-level encodings, lowest
	// first. The defaults follow Pensieve's six levels.
	BitratesMbps []float64
	// ChunkSec is the playback duration of one chunk.
	ChunkSec float64
	// BufferMaxSec caps the playback buffer.
	BufferMaxSec float64
	// SafetyFactor discounts the predicted bandwidth before picking a
	// level (the conservative term in MPC-style controllers).
	SafetyFactor float64
	// PredictorWindow is how many past chunk downloads feed the harmonic
	// mean bandwidth predictor.
	PredictorWindow int
}

// DefaultABRConfig returns the Pensieve-style setup used by Figure 8.
func DefaultABRConfig() ABRConfig {
	return ABRConfig{
		BitratesMbps:    []float64{0.3, 0.75, 1.2, 1.85, 2.85, 4.3},
		ChunkSec:        4,
		BufferMaxSec:    30,
		SafetyFactor:    0.9,
		PredictorWindow: 5,
	}
}

// ABRResult reports one streaming session.
type ABRResult struct {
	// Levels is the quality level chosen per chunk (0 = lowest).
	Levels []int
	// QualityCounts histograms chunks per level (the Figure 8 bars).
	QualityCounts []int
	// RebufferSec is total stall time.
	RebufferSec float64
	// AvgLevel is the mean quality level.
	AvgLevel float64
	// AvgBitrateMbps is the mean selected bitrate.
	AvgBitrateMbps float64
}

// SimulateABR plays a video over a measured per-second throughput trace
// (Mbps): an MPC-style controller predicts bandwidth with a harmonic mean of
// recent downloads and picks the highest sustainable level given the buffer.
// The trace-driven decomposition (congestion control produces the
// achievable-throughput series; the ABR loop consumes it) mirrors how
// Pensieve's own simulator is driven.
func SimulateABR(throughputMbps []float64, cfg ABRConfig) (ABRResult, error) {
	if len(cfg.BitratesMbps) == 0 || cfg.ChunkSec <= 0 {
		return ABRResult{}, errors.New("apps: invalid ABR config")
	}
	if len(throughputMbps) == 0 {
		return ABRResult{}, errors.New("apps: empty throughput trace")
	}

	res := ABRResult{QualityCounts: make([]int, len(cfg.BitratesMbps))}
	var (
		bufferSec float64
		clock     float64 // position in the throughput trace (seconds)
		history   []float64
	)

	traceAt := func(t float64) float64 {
		idx := int(t)
		if idx >= len(throughputMbps) {
			idx = len(throughputMbps) - 1
		}
		if idx < 0 {
			idx = 0
		}
		v := throughputMbps[idx]
		if v < 0.01 {
			v = 0.01
		}
		return v
	}

	// Predict bandwidth as the harmonic mean of recent per-chunk rates.
	predict := func() float64 {
		if len(history) == 0 {
			return traceAt(clock)
		}
		var invSum float64
		for _, h := range history {
			invSum += 1 / math.Max(h, 0.01)
		}
		return float64(len(history)) / invSum
	}

	totalTraceSec := float64(len(throughputMbps))
	for clock < totalTraceSec {
		pred := predict() * cfg.SafetyFactor
		// Highest level downloadable in at most the chunk duration plus
		// whatever buffer cushion exists.
		level := 0
		for l := len(cfg.BitratesMbps) - 1; l >= 0; l-- {
			downloadSec := cfg.BitratesMbps[l] * cfg.ChunkSec / pred
			if downloadSec <= cfg.ChunkSec+bufferSec-cfg.ChunkSec/2 {
				level = l
				break
			}
		}

		// Download the chunk second-by-second against the trace.
		chunkMbits := cfg.BitratesMbps[level] * cfg.ChunkSec
		var downloadSec float64
		remaining := chunkMbits
		for remaining > 0 {
			rate := traceAt(clock + downloadSec)
			step := math.Min(1, remaining/rate)
			remaining -= rate * step
			downloadSec += step
			if clock+downloadSec >= totalTraceSec {
				break
			}
		}
		if remaining > 0 {
			break // trace exhausted mid-chunk
		}

		// Buffer drains while downloading; rebuffer when it empties.
		drained := bufferSec - downloadSec
		if drained < 0 {
			res.RebufferSec += -drained
			drained = 0
		}
		bufferSec = math.Min(drained+cfg.ChunkSec, cfg.BufferMaxSec)
		clock += downloadSec

		history = append(history, chunkMbits/downloadSec)
		if len(history) > cfg.PredictorWindow {
			history = history[1:]
		}
		res.Levels = append(res.Levels, level)
		res.QualityCounts[level]++
	}

	if len(res.Levels) > 0 {
		var levelSum float64
		var brSum float64
		for _, l := range res.Levels {
			levelSum += float64(l)
			brSum += cfg.BitratesMbps[l]
		}
		res.AvgLevel = levelSum / float64(len(res.Levels))
		res.AvgBitrateMbps = brSum / float64(len(res.Levels))
	}
	return res, nil
}
