package apps

import (
	"math"

	"mocc/internal/cc"
	"mocc/internal/netsim"
	"mocc/internal/stats"
	"mocc/internal/trace"
)

// VideoConfig parameterizes the §6.3 video-streaming experiment: a CC flow
// fetches chunks over a bottleneck shared with background traffic; the
// achievable-throughput series drives the ABR controller.
type VideoConfig struct {
	LinkMbps    float64
	RTTms       float64
	QueuePkts   int
	LossRate    float64
	DurationSec float64
	// BackgroundMbps adds a competing CUBIC flow of roughly this demand
	// (0 disables it). Real Internet paths are never idle; this keeps the
	// CC scheme honest.
	BackgroundMbps float64
	ABR            ABRConfig
	Seed           int64
}

// DefaultVideoConfig mirrors the paper's home-network-like setup (the Fig. 8
// traces peak around 8 Mbps).
func DefaultVideoConfig() VideoConfig {
	return VideoConfig{
		LinkMbps:       8,
		RTTms:          40,
		QueuePkts:      300,
		LossRate:       0.001,
		DurationSec:    100,
		BackgroundMbps: 2,
		ABR:            DefaultABRConfig(),
		Seed:           1,
	}
}

// VideoResult reports one scheme's streaming session (Figure 8).
type VideoResult struct {
	Scheme string
	// ThroughputMbps is the per-second delivered series (Fig. 8 top).
	ThroughputMbps []float64
	AvgThroughput  float64
	// ABR holds the chunk-quality outcome (Fig. 8 bottom).
	ABR ABRResult
}

// RunVideo streams video over the given congestion controller.
func RunVideo(alg cc.Algorithm, cfg VideoConfig) (VideoResult, error) {
	link := netsim.LinkConfig{
		Capacity:  trace.Constant(trace.MbpsToPktsPerSec(cfg.LinkMbps, 1500)),
		OWD:       cfg.RTTms / 2 / 1000,
		QueuePkts: cfg.QueuePkts,
		LossRate:  cfg.LossRate,
	}
	n := netsim.NewNetwork(link, cfg.Seed)
	video := n.AddFlow(netsim.FlowConfig{Alg: alg, Label: "video", Seed: cfg.Seed})
	if cfg.BackgroundMbps > 0 {
		n.AddFlow(netsim.FlowConfig{
			Alg:     cc.NewCubic(),
			Label:   "background",
			MaxRate: trace.MbpsToPktsPerSec(cfg.BackgroundMbps, 1500) * 2,
			Seed:    cfg.Seed + 1,
		})
	}
	n.Run(cfg.DurationSec)

	series := video.ThroughputSeries(1, cfg.DurationSec)
	mbps := make([]float64, len(series))
	for i, p := range series {
		mbps[i] = trace.PktsPerSecToMbps(p, 1500)
	}
	abr, err := SimulateABR(mbps, cfg.ABR)
	if err != nil {
		return VideoResult{}, err
	}
	return VideoResult{
		Scheme:         alg.Name(),
		ThroughputMbps: mbps,
		AvgThroughput:  stats.Mean(mbps),
		ABR:            abr,
	}, nil
}

// RTCConfig parameterizes the real-time-communication experiment: an
// application-limited flow (a video call) shares the link with background
// traffic; inter-packet delay at the receiver is the quality metric
// (Figure 9).
type RTCConfig struct {
	LinkMbps    float64
	RTTms       float64
	QueuePkts   int
	DurationSec float64
	// SourceMbps is the call's maximum media rate; the flow is
	// application-limited to min(cc rate, source rate).
	SourceMbps     float64
	BackgroundMbps float64
	Seed           int64
}

// DefaultRTCConfig mirrors the paper's conference-call setup.
func DefaultRTCConfig() RTCConfig {
	return RTCConfig{
		LinkMbps:       10,
		RTTms:          40,
		QueuePkts:      250,
		DurationSec:    50,
		SourceMbps:     4,
		BackgroundMbps: 6,
		Seed:           1,
	}
}

// RTCResult reports inter-packet delay over time (Figure 9).
type RTCResult struct {
	Scheme string
	// InterPacketMs is the mean inter-arrival gap per second.
	InterPacketMs []float64
	MeanMs        float64
	StdMs         float64
}

// appLimited wraps an Algorithm so the offered rate never exceeds the
// application's media rate (Salsify adapts frame size to the transport's
// rate, but never sends faster than the codec produces).
type appLimited struct {
	cc.Algorithm
	maxRate float64
}

// AppLimited caps any congestion controller at an application media rate
// (pkts/s): the RTC workload shape. The scenario subsystem uses it to
// compile "rtc"-app flows onto arbitrary schemes.
func AppLimited(alg cc.Algorithm, maxRatePps float64) cc.Algorithm {
	return &appLimited{Algorithm: alg, maxRate: maxRatePps}
}

func (a *appLimited) InitialRate(baseRTT float64) float64 {
	return math.Min(a.Algorithm.InitialRate(baseRTT), a.maxRate)
}

func (a *appLimited) Update(r cc.Report) float64 {
	return math.Min(a.Algorithm.Update(r), a.maxRate)
}

// RunRTC measures receiver-side inter-packet delay for the scheme under a
// competing CUBIC flow.
func RunRTC(alg cc.Algorithm, cfg RTCConfig) RTCResult {
	link := netsim.LinkConfig{
		Capacity:  trace.Constant(trace.MbpsToPktsPerSec(cfg.LinkMbps, 1500)),
		OWD:       cfg.RTTms / 2 / 1000,
		QueuePkts: cfg.QueuePkts,
	}
	n := netsim.NewNetwork(link, cfg.Seed)
	rtc := n.AddFlow(netsim.FlowConfig{
		Alg:   AppLimited(alg, trace.MbpsToPktsPerSec(cfg.SourceMbps, 1500)),
		Label: "rtc",
		Seed:  cfg.Seed,
	})
	if cfg.BackgroundMbps > 0 {
		n.AddFlow(netsim.FlowConfig{
			Alg:     cc.NewCubic(),
			Label:   "background",
			MaxRate: trace.MbpsToPktsPerSec(cfg.BackgroundMbps, 1500) * 2,
			Seed:    cfg.Seed + 1,
		})
	}

	// Collect per-second inter-arrival gaps via the delivery hook.
	nBuckets := int(cfg.DurationSec)
	sumGap := make([]float64, nBuckets)
	cntGap := make([]float64, nBuckets)
	lastArrival := -1.0
	rtc.OnDeliver = func(t float64) {
		if lastArrival >= 0 {
			idx := int(t)
			if idx >= 0 && idx < nBuckets {
				sumGap[idx] += t - lastArrival
				cntGap[idx]++
			}
		}
		lastArrival = t
	}
	n.Run(cfg.DurationSec)

	res := RTCResult{Scheme: alg.Name()}
	var w stats.Welford
	for i := 0; i < nBuckets; i++ {
		if cntGap[i] == 0 {
			continue
		}
		gapMs := sumGap[i] / cntGap[i] * 1000
		res.InterPacketMs = append(res.InterPacketMs, gapMs)
		w.Add(gapMs)
	}
	res.MeanMs = w.Mean()
	res.StdMs = w.StdDev()
	return res
}

// BulkConfig parameterizes the bulk-transfer experiment (Figure 10): a
// fixed-size file is transferred repeatedly over a link with 0.5% random
// loss; the flow-completion time distribution is the result.
type BulkConfig struct {
	LinkMbps    float64
	RTTms       float64
	QueuePkts   int
	LossRate    float64
	FileMBytes  float64
	Transfers   int
	MaxDuration float64 // per-transfer simulation bound (s)
	Seed        int64
}

// DefaultBulkConfig follows the paper: 0.5% random loss to emulate
// background interference. The file size is scaled from the paper's 100 MB
// to keep runs laptop-fast; FCT ordering is size-independent once flows
// reach steady state.
func DefaultBulkConfig() BulkConfig {
	return BulkConfig{
		LinkMbps:    50,
		RTTms:       20,
		QueuePkts:   500,
		LossRate:    0.005,
		FileMBytes:  10,
		Transfers:   10,
		MaxDuration: 120,
		Seed:        1,
	}
}

// BulkResult reports the FCT distribution (Figure 10).
type BulkResult struct {
	Scheme  string
	FCTs    []float64 // seconds, one per completed transfer
	MeanFCT float64
	StdFCT  float64
	// Incomplete counts transfers that missed MaxDuration.
	Incomplete int
}

// RunBulk performs repeated file transfers with fresh controller state.
func RunBulk(factory cc.AlgorithmFactory, cfg BulkConfig) BulkResult {
	packets := int(cfg.FileMBytes * 1e6 / 1500)
	link := netsim.LinkConfig{
		Capacity:  trace.Constant(trace.MbpsToPktsPerSec(cfg.LinkMbps, 1500)),
		OWD:       cfg.RTTms / 2 / 1000,
		QueuePkts: cfg.QueuePkts,
		LossRate:  cfg.LossRate,
	}
	res := BulkResult{}
	var w stats.Welford
	for i := 0; i < cfg.Transfers; i++ {
		alg := factory()
		if res.Scheme == "" {
			res.Scheme = alg.Name()
		}
		n := netsim.NewNetwork(link, cfg.Seed+int64(i)*31)
		f := n.AddFlow(netsim.FlowConfig{
			Alg:          alg,
			Label:        "bulk",
			PacketBudget: packets,
			Seed:         cfg.Seed + int64(i),
		})
		n.Run(cfg.MaxDuration)
		if !f.Completed {
			res.Incomplete++
			continue
		}
		res.FCTs = append(res.FCTs, f.CompletionTime)
		w.Add(f.CompletionTime)
	}
	res.MeanFCT = w.Mean()
	res.StdFCT = w.StdDev()
	return res
}
