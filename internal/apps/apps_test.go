package apps

import (
	"math"
	"testing"

	"mocc/internal/cc"
)

func TestSimulateABRValidation(t *testing.T) {
	if _, err := SimulateABR(nil, DefaultABRConfig()); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := SimulateABR([]float64{1}, ABRConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestSimulateABRHighBandwidthPicksTopLevel(t *testing.T) {
	trace := make([]float64, 120)
	for i := range trace {
		trace[i] = 20 // 20 Mbps: far above the 4.3 Mbps top bitrate
	}
	res, err := SimulateABR(trace, DefaultABRConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) == 0 {
		t.Fatal("no chunks downloaded")
	}
	top := len(DefaultABRConfig().BitratesMbps) - 1
	topCount := res.QualityCounts[top]
	if float64(topCount) < 0.7*float64(len(res.Levels)) {
		t.Errorf("only %d/%d chunks at the top level on a fat link", topCount, len(res.Levels))
	}
	if res.RebufferSec > 1 {
		t.Errorf("rebuffering %v s on a fat link", res.RebufferSec)
	}
}

func TestSimulateABRLowBandwidthPicksBottomLevels(t *testing.T) {
	trace := make([]float64, 120)
	for i := range trace {
		trace[i] = 0.4 // barely above the lowest level
	}
	res, err := SimulateABR(trace, DefaultABRConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLevel > 1 {
		t.Errorf("avg level %v on a starved link", res.AvgLevel)
	}
}

func TestSimulateABRBandwidthOrderingMonotone(t *testing.T) {
	mk := func(mbps float64) ABRResult {
		trace := make([]float64, 100)
		for i := range trace {
			trace[i] = mbps
		}
		res, err := SimulateABR(trace, DefaultABRConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lo, mid, hi := mk(0.8), mk(2), mk(6)
	if !(lo.AvgBitrateMbps <= mid.AvgBitrateMbps && mid.AvgBitrateMbps <= hi.AvgBitrateMbps) {
		t.Errorf("bitrate not monotone in bandwidth: %v, %v, %v",
			lo.AvgBitrateMbps, mid.AvgBitrateMbps, hi.AvgBitrateMbps)
	}
}

func TestSimulateABRCountsConsistent(t *testing.T) {
	trace := make([]float64, 80)
	for i := range trace {
		trace[i] = 1.5 + 1.2*math.Sin(float64(i)/7)
	}
	res, err := SimulateABR(trace, DefaultABRConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, c := range res.QualityCounts {
		sum += c
	}
	if sum != len(res.Levels) {
		t.Errorf("histogram total %d != chunk count %d", sum, len(res.Levels))
	}
}

func TestRunVideoProducesSessions(t *testing.T) {
	cfg := DefaultVideoConfig()
	cfg.DurationSec = 40
	res, err := RunVideo(cc.NewCubic(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "cubic" {
		t.Errorf("scheme %q", res.Scheme)
	}
	if len(res.ThroughputMbps) != 40 {
		t.Fatalf("series length %d", len(res.ThroughputMbps))
	}
	if res.AvgThroughput <= 0 || res.AvgThroughput > cfg.LinkMbps+1 {
		t.Errorf("avg throughput %v", res.AvgThroughput)
	}
	if len(res.ABR.Levels) == 0 {
		t.Error("no chunks streamed")
	}
}

func TestRunVideoBackgroundReducesThroughput(t *testing.T) {
	cfg := DefaultVideoConfig()
	cfg.DurationSec = 40
	solo := cfg
	solo.BackgroundMbps = 0
	withBg, err := RunVideo(cc.NewCubic(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	alone, err := RunVideo(cc.NewCubic(), solo)
	if err != nil {
		t.Fatal(err)
	}
	if withBg.AvgThroughput > alone.AvgThroughput+0.5 {
		t.Errorf("background traffic did not cost throughput: %v vs %v",
			withBg.AvgThroughput, alone.AvgThroughput)
	}
}

func TestRunRTCMeasuresGaps(t *testing.T) {
	cfg := DefaultRTCConfig()
	cfg.DurationSec = 25
	res := RunRTC(cc.NewVegas(), cfg)
	if res.Scheme != "vegas" {
		t.Errorf("scheme %q", res.Scheme)
	}
	if len(res.InterPacketMs) < 10 {
		t.Fatalf("too few samples: %d", len(res.InterPacketMs))
	}
	if res.MeanMs <= 0 || math.IsNaN(res.MeanMs) {
		t.Errorf("mean gap %v", res.MeanMs)
	}
	// App-limited at 4 Mbps = 333 pkts/s: gaps can't be below 1/capacity
	// and shouldn't hugely exceed 1/source rate under a working scheme.
	if res.MeanMs > 60 {
		t.Errorf("mean gap %v ms implausibly high", res.MeanMs)
	}
}

func TestRunRTCAppLimited(t *testing.T) {
	// Without background traffic, gaps approach the source pacing
	// interval (1/333 pkts/s = 3 ms).
	cfg := DefaultRTCConfig()
	cfg.DurationSec = 25
	cfg.BackgroundMbps = 0
	res := RunRTC(cc.NewCubic(), cfg)
	if res.MeanMs < 2 || res.MeanMs > 8 {
		t.Errorf("uncontended app-limited gap %v ms, want ~3-4", res.MeanMs)
	}
}

func TestRunBulkFCTs(t *testing.T) {
	cfg := DefaultBulkConfig()
	cfg.FileMBytes = 2
	cfg.Transfers = 4
	res := RunBulk(func() cc.Algorithm { return cc.NewCubic() }, cfg)
	if res.Scheme != "cubic" {
		t.Errorf("scheme %q", res.Scheme)
	}
	if res.Incomplete > 0 {
		t.Fatalf("%d transfers incomplete", res.Incomplete)
	}
	if len(res.FCTs) != 4 {
		t.Fatalf("FCT count %d", len(res.FCTs))
	}
	// 2 MB at 50 Mbps floor: at least 0.32 s; with loss and ramp-up it
	// lands somewhere below 30 s.
	for _, fct := range res.FCTs {
		if fct < 0.3 || fct > 30 {
			t.Errorf("FCT %v s implausible", fct)
		}
	}
	if res.MeanFCT <= 0 || res.StdFCT < 0 {
		t.Errorf("stats: mean %v std %v", res.MeanFCT, res.StdFCT)
	}
}

func TestRunBulkFasterLinkFasterFCT(t *testing.T) {
	slow := DefaultBulkConfig()
	slow.FileMBytes = 1
	slow.Transfers = 2
	slow.LinkMbps = 10
	fast := slow
	fast.LinkMbps = 40
	rSlow := RunBulk(func() cc.Algorithm { return cc.NewCubic() }, slow)
	rFast := RunBulk(func() cc.Algorithm { return cc.NewCubic() }, fast)
	if rFast.MeanFCT >= rSlow.MeanFCT {
		t.Errorf("faster link not faster: %v vs %v", rFast.MeanFCT, rSlow.MeanFCT)
	}
}

func TestRunBulkIncompleteDetection(t *testing.T) {
	cfg := DefaultBulkConfig()
	cfg.FileMBytes = 100
	cfg.Transfers = 1
	cfg.MaxDuration = 0.5 // impossible deadline
	res := RunBulk(func() cc.Algorithm { return cc.NewCubic() }, cfg)
	if res.Incomplete != 1 {
		t.Errorf("incomplete = %d, want 1", res.Incomplete)
	}
}
