// Package stats provides the statistical primitives used throughout the
// MOCC evaluation harness: summary statistics, percentiles, empirical CDFs,
// Jain's fairness index, and 2D Gaussian ellipse fitting for the
// throughput-latency scatter plots (Figure 1b).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest element of xs. It returns ErrEmpty for an empty
// slice.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs. It returns ErrEmpty for an empty
// slice.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// JainIndex computes Jain's fairness index for a set of per-flow allocations:
//
//	J = (Σx)² / (n · Σx²)
//
// It is 1 when all allocations are equal and approaches 1/n under maximal
// unfairness. Zero-valued inputs yield an index of 0 by convention.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// CDFPoint is a single point on an empirical CDF curve.
type CDFPoint struct {
	Value float64 // sample value
	Prob  float64 // P(X <= Value)
}

// CDF computes the empirical cumulative distribution of xs. The returned
// points are sorted by value, with Prob = rank/n. The input is not modified.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	points := make([]CDFPoint, len(sorted))
	n := float64(len(sorted))
	for i, v := range sorted {
		points[i] = CDFPoint{Value: v, Prob: float64(i+1) / n}
	}
	return points
}

// CDFAt evaluates the empirical CDF of xs at value v: the fraction of samples
// that are <= v.
func CDFAt(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	count := 0
	for _, x := range xs {
		if x <= v {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// Quantiles returns the values of the empirical distribution at each of the
// requested cumulative probabilities (each in [0,1]).
func Quantiles(xs []float64, probs []float64) ([]float64, error) {
	out := make([]float64, len(probs))
	for i, p := range probs {
		v, err := Percentile(xs, p*100)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Gaussian2D summarizes a set of (x, y) points as a maximum-likelihood 2D
// Gaussian: mean vector plus covariance matrix. The paper uses the 1-sigma
// elliptic contour of this fit for the throughput-delay plot (Figure 1b).
type Gaussian2D struct {
	MeanX, MeanY float64
	VarX, VarY   float64
	CovXY        float64
}

// FitGaussian2D fits a maximum-likelihood 2D Gaussian to paired samples.
// xs and ys must have equal, nonzero length.
func FitGaussian2D(xs, ys []float64) (Gaussian2D, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return Gaussian2D{}, errors.New("stats: mismatched or empty paired samples")
	}
	g := Gaussian2D{MeanX: Mean(xs), MeanY: Mean(ys)}
	n := float64(len(xs))
	for i := range xs {
		dx := xs[i] - g.MeanX
		dy := ys[i] - g.MeanY
		g.VarX += dx * dx
		g.VarY += dy * dy
		g.CovXY += dx * dy
	}
	g.VarX /= n
	g.VarY /= n
	g.CovXY /= n
	return g, nil
}

// Ellipse describes the 1-sigma elliptic contour of a 2D Gaussian: center,
// semi-axes and rotation angle (radians, counter-clockwise from +x).
type Ellipse struct {
	CenterX, CenterY float64
	SemiMajor        float64
	SemiMinor        float64
	Angle            float64
}

// SigmaEllipse returns the k-sigma elliptic contour of g, derived from the
// eigendecomposition of the covariance matrix.
func (g Gaussian2D) SigmaEllipse(k float64) Ellipse {
	// Eigenvalues of [[VarX, CovXY], [CovXY, VarY]].
	tr := g.VarX + g.VarY
	det := g.VarX*g.VarY - g.CovXY*g.CovXY
	disc := math.Sqrt(math.Max(0, tr*tr/4-det))
	l1 := tr/2 + disc
	l2 := tr/2 - disc
	if l2 < 0 {
		l2 = 0
	}
	angle := 0.0
	if g.CovXY != 0 || g.VarX != g.VarY {
		angle = math.Atan2(l1-g.VarX, g.CovXY)
		if g.CovXY == 0 {
			if g.VarX >= g.VarY {
				angle = 0
			} else {
				angle = math.Pi / 2
			}
		}
	}
	return Ellipse{
		CenterX:   g.MeanX,
		CenterY:   g.MeanY,
		SemiMajor: k * math.Sqrt(l1),
		SemiMinor: k * math.Sqrt(l2),
		Angle:     angle,
	}
}

// Welford maintains running mean/variance without storing samples. The zero
// value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates a new sample.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of samples seen.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// EWMA is an exponentially weighted moving average with configurable decay.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA creates an EWMA where each new sample contributes fraction alpha
// (0 < alpha <= 1) of the updated value.
func NewEWMA(alpha float64) *EWMA {
	return &EWMA{alpha: alpha}
}

// Add incorporates a sample and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any samples).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether any sample has been added.
func (e *EWMA) Initialized() bool { return e.init }

// Clamp limits x to the inclusive range [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be >= 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}
