package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Errorf("Min = %v, %v; want -1, nil", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Errorf("Max = %v, %v; want 7, nil", mx, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct {
		p, want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	} {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("empty percentile err = %v, want ErrEmpty", err)
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("expected error for p > 100")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("expected error for p < 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMedian(t *testing.T) {
	m, err := Median([]float64{9, 1, 5})
	if err != nil || m != 5 {
		t.Errorf("Median = %v, %v; want 5", m, err)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("equal allocations: Jain = %v, want 1", got)
	}
	// One flow hogging everything: J -> 1/n.
	if got := JainIndex([]float64{10, 0, 0}); !almostEqual(got, 1.0/3, 1e-12) {
		t.Errorf("max unfairness: Jain = %v, want 1/3", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Errorf("Jain(nil) = %v, want 0", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Errorf("Jain(zeros) = %v, want 0", got)
	}
}

func TestJainIndexBounds(t *testing.T) {
	// Property: for positive allocations, 1/n <= J <= 1.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			// Keep magnitudes bounded so Σx² cannot overflow.
			xs = append(xs, math.Abs(math.Mod(r, 1e6))+0.001)
		}
		if len(xs) == 0 {
			return true
		}
		j := JainIndex(xs)
		n := float64(len(xs))
		return j >= 1/n-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("CDF length = %d, want 3", len(pts))
	}
	wantVals := []float64{1, 2, 3}
	wantProbs := []float64{1.0 / 3, 2.0 / 3, 1}
	for i, p := range pts {
		if p.Value != wantVals[i] || !almostEqual(p.Prob, wantProbs[i], 1e-12) {
			t.Errorf("point %d = %+v, want {%v %v}", i, p, wantVals[i], wantProbs[i])
		}
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("CDFAt(2.5) = %v, want 0.5", got)
	}
	if got := CDFAt(xs, 0); got != 0 {
		t.Errorf("CDFAt(0) = %v, want 0", got)
	}
	if got := CDFAt(xs, 10); got != 1 {
		t.Errorf("CDFAt(10) = %v, want 1", got)
	}
	if got := CDFAt(nil, 1); got != 0 {
		t.Errorf("CDFAt(nil) = %v, want 0", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		pts := CDF(xs)
		for i := 1; i < len(pts); i++ {
			if pts[i].Value < pts[i-1].Value || pts[i].Prob < pts[i-1].Prob {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	qs, err := Quantiles(xs, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5}
	for i := range qs {
		if !almostEqual(qs[i], want[i], 1e-12) {
			t.Errorf("quantile %d = %v, want %v", i, qs[i], want[i])
		}
	}
	if _, err := Quantiles(nil, []float64{0.5}); err == nil {
		t.Error("expected error for empty sample")
	}
}

func TestFitGaussian2D(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{2, 4, 6}
	g, err := FitGaussian2D(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(g.MeanX, 2, 1e-12) || !almostEqual(g.MeanY, 4, 1e-12) {
		t.Errorf("mean = (%v, %v), want (2, 4)", g.MeanX, g.MeanY)
	}
	// Perfect correlation: cov = sqrt(varX*varY).
	if !almostEqual(g.CovXY, math.Sqrt(g.VarX*g.VarY), 1e-9) {
		t.Errorf("cov = %v, want %v", g.CovXY, math.Sqrt(g.VarX*g.VarY))
	}
	if _, err := FitGaussian2D(xs, ys[:2]); err == nil {
		t.Error("expected error for mismatched lengths")
	}
	if _, err := FitGaussian2D(nil, nil); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestSigmaEllipse(t *testing.T) {
	// Axis-aligned case: varX=4, varY=1, no covariance.
	g := Gaussian2D{MeanX: 1, MeanY: 2, VarX: 4, VarY: 1}
	e := g.SigmaEllipse(1)
	if !almostEqual(e.SemiMajor, 2, 1e-9) || !almostEqual(e.SemiMinor, 1, 1e-9) {
		t.Errorf("axes = (%v, %v), want (2, 1)", e.SemiMajor, e.SemiMinor)
	}
	if !almostEqual(e.Angle, 0, 1e-9) {
		t.Errorf("angle = %v, want 0", e.Angle)
	}
	if e.CenterX != 1 || e.CenterY != 2 {
		t.Errorf("center = (%v, %v), want (1, 2)", e.CenterX, e.CenterY)
	}
	// Swapped variances rotate the major axis to y.
	g2 := Gaussian2D{VarX: 1, VarY: 4}
	e2 := g2.SigmaEllipse(2)
	if !almostEqual(e2.SemiMajor, 4, 1e-9) {
		t.Errorf("2-sigma major = %v, want 4", e2.SemiMajor)
	}
	if !almostEqual(math.Abs(e2.Angle), math.Pi/2, 1e-9) {
		t.Errorf("angle = %v, want ±π/2", e2.Angle)
	}
}

func TestSigmaEllipseMajorAtLeastMinor(t *testing.T) {
	f := func(vx, vy, cov float64) bool {
		vx = math.Abs(math.Mod(vx, 1e9))
		vy = math.Abs(math.Mod(vy, 1e9))
		cov = math.Mod(cov, 1e9)
		// Constrain covariance to be physically realizable.
		maxCov := math.Sqrt(vx * vy)
		cov = math.Mod(math.Abs(cov), maxCov+1e-9)
		e := Gaussian2D{VarX: vx, VarY: vy, CovXY: cov}.SigmaEllipse(1)
		return e.SemiMajor >= e.SemiMinor-1e-12 && !math.IsNaN(e.SemiMinor)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 5
		w.Add(xs[i])
	}
	if w.Count() != 1000 {
		t.Errorf("count = %d, want 1000", w.Count())
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-9) {
		t.Errorf("welford mean %v != batch mean %v", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.Variance(), Variance(xs), 1e-6) {
		t.Errorf("welford var %v != batch var %v", w.Variance(), Variance(xs))
	}
	if !almostEqual(w.StdDev(), StdDev(xs), 1e-6) {
		t.Errorf("welford std %v != batch std %v", w.StdDev(), StdDev(xs))
	}
}

func TestWelfordFewSamples(t *testing.T) {
	var w Welford
	if w.Variance() != 0 {
		t.Error("zero-sample variance should be 0")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Variance() != 0 {
		t.Errorf("single sample: mean %v var %v", w.Mean(), w.Variance())
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Error("fresh EWMA should not be initialized")
	}
	if got := e.Add(10); got != 10 {
		t.Errorf("first Add = %v, want 10", got)
	}
	if got := e.Add(20); !almostEqual(got, 15, 1e-12) {
		t.Errorf("second Add = %v, want 15", got)
	}
	if !almostEqual(e.Value(), 15, 1e-12) {
		t.Errorf("Value = %v, want 15", e.Value())
	}
	if !e.Initialized() {
		t.Error("EWMA should be initialized after Add")
	}
}

func TestClamp(t *testing.T) {
	for _, c := range []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-5, 0, 10, 0},
		{15, 0, 10, 10},
		{0, 0, 0, 0},
	} {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v, %v, %v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 10, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	if len(xs) != len(want) {
		t.Fatalf("len = %d, want %d", len(xs), len(want))
	}
	for i := range xs {
		if !almostEqual(xs[i], want[i], 1e-12) {
			t.Errorf("xs[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("degenerate Linspace = %v", got)
	}
}
