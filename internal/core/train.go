package core

import (
	"errors"
	"fmt"

	"mocc/internal/objective"
	"mocc/internal/rl"
)

// TrainConfig controls the two-phase offline training of §4.2.
type TrainConfig struct {
	// Omega is the landmark objective count ω (Table 2: 36). The lattice
	// step is derived via objective.StepForOmega.
	Omega int
	// BootstrapIters is the number of PPO iterations per bootstrap
	// objective per cycle; BootstrapCycles alternates over the three
	// bootstraps so they improve in balance.
	BootstrapIters  int
	BootstrapCycles int
	// TraverseIters is the small number of PPO iterations per objective
	// visit during fast traversing ("we do not train an objective until
	// convergence but only for a few steps").
	TraverseIters int
	// TraverseCycles is how many times the full sorted objective list is
	// traversed.
	TraverseCycles int
	// RolloutSteps is the number of transitions collected per PPO
	// iteration; EpisodeLen bounds each episode (and re-samples the link).
	RolloutSteps int
	EpisodeLen   int
	// Workers > 1 enables goroutine-parallel rollout collection,
	// splitting RolloutSteps evenly across workers.
	Workers int
	// Seed drives all environment sampling and action noise.
	Seed int64
	// PPO carries the optimizer hyperparameters.
	PPO rl.PPOConfig
	// Envs generates training environments (defaults to Table 3 training
	// ranges when nil — set explicitly in tests for speed).
	Envs rl.EnvFactory
	// Progress, when non-nil, receives a line per training milestone.
	Progress func(string)
}

// DefaultTrainConfig returns a full-scale configuration following the paper;
// tests and benches shrink it.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Omega:           OmegaDefault,
		BootstrapIters:  20,
		BootstrapCycles: 5,
		TraverseIters:   2,
		TraverseCycles:  3,
		RolloutSteps:    512,
		EpisodeLen:      128,
		Workers:         4,
		Seed:            1,
		PPO:             rl.DefaultPPOConfig(),
	}
}

// CurvePoint is one point of a training curve.
type CurvePoint struct {
	Iteration int
	Objective objective.Weights
	Reward    float64 // mean per-step Equation 2 reward of the iteration's rollout
}

// OfflineResult summarizes a two-phase offline training run.
type OfflineResult struct {
	Curve          []CurvePoint
	Order          []objective.Weights // fast-traversing visit order
	BootstrapIters int
	TraverseIters  int
}

// TotalIters returns the number of PPO iterations performed.
func (r *OfflineResult) TotalIters() int { return r.BootstrapIters + r.TraverseIters }

// OfflineTrainer runs the §4.2 two-phase schedule against a Model.
type OfflineTrainer struct {
	Model *Model
	Cfg   TrainConfig

	ppo       *rl.PPO
	collector *rl.ParallelCollector
	seedCtr   int64
}

// NewOfflineTrainer validates the configuration and prepares the trainer.
func NewOfflineTrainer(model *Model, cfg TrainConfig) (*OfflineTrainer, error) {
	if model == nil {
		return nil, errors.New("core: nil model")
	}
	if cfg.Envs == nil {
		return nil, errors.New("core: TrainConfig.Envs is required")
	}
	if cfg.Omega < 3 {
		return nil, fmt.Errorf("core: Omega %d too small (need >= 3)", cfg.Omega)
	}
	if cfg.RolloutSteps <= 0 || cfg.EpisodeLen <= 0 {
		return nil, errors.New("core: RolloutSteps and EpisodeLen must be positive")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	t := &OfflineTrainer{
		Model:   model,
		Cfg:     cfg,
		ppo:     rl.NewPPO(model, cfg.PPO),
		seedCtr: cfg.Seed,
	}
	if cfg.Workers > 1 {
		hl := model.HistoryLen
		t.collector = rl.NewParallelCollector(cfg.Workers, func() rl.ActorCritic {
			return NewModel(hl, 0)
		})
	}
	return t, nil
}

// PPO exposes the underlying trainer (e.g. for entropy-schedule inspection).
func (t *OfflineTrainer) PPO() *rl.PPO { return t.ppo }

// nextSeed returns a fresh deterministic seed.
func (t *OfflineTrainer) nextSeed() int64 {
	t.seedCtr++
	return t.seedCtr * 2654435761 // Knuth multiplicative spread
}

// collectCfg builds the per-iteration collection settings.
func (t *OfflineTrainer) collectCfg(steps int) rl.CollectConfig {
	return rl.CollectConfig{
		Steps:          steps,
		EpisodeLen:     t.Cfg.EpisodeLen,
		IncludeWeights: true,
		MaxAction:      2,
	}
}

// Iterate runs a single PPO iteration on objective w and returns the
// rollout's mean reward. With Workers > 1 the rollout is split across
// parallel collectors and the losses averaged, which is gradient-equivalent
// to one large rollout.
func (t *OfflineTrainer) Iterate(w objective.Weights) (float64, error) {
	if t.collector == nil {
		ro := rl.Collect(t.Model, t.Cfg.Envs, w, t.collectCfg(t.Cfg.RolloutSteps), t.nextSeed())
		st := t.ppo.Update(ro)
		return st.MeanReward, nil
	}
	n := t.collector.Workers()
	per := t.Cfg.RolloutSteps / n
	if per < t.Cfg.EpisodeLen {
		per = t.Cfg.EpisodeLen
	}
	tasks := make([]rl.CollectTask, n)
	for i := range tasks {
		tasks[i] = rl.CollectTask{Weights: w, Seed: t.nextSeed()}
	}
	rollouts, err := t.collector.Collect(t.Model, t.Cfg.Envs, t.collectCfg(per), tasks)
	if err != nil {
		return 0, err
	}
	st := t.ppo.UpdateMulti(rollouts)
	return st.MeanReward, nil
}

// progress emits a milestone line when configured.
func (t *OfflineTrainer) progress(format string, args ...any) {
	if t.Cfg.Progress != nil {
		t.Cfg.Progress(fmt.Sprintf(format, args...))
	}
}

// Run executes the full two-phase schedule: bootstrapping over the three
// pivot objectives, then fast traversing of the ω landmarks in the
// Appendix B neighbourhood order.
func (t *OfflineTrainer) Run() (*OfflineResult, error) {
	step := objective.StepForOmega(t.Cfg.Omega)
	landmarks := objective.Landmarks(step)
	bootstraps := objective.DefaultBootstraps(step)
	order, err := objective.SortObjectives(landmarks, bootstraps)
	if err != nil {
		return nil, err
	}

	res := &OfflineResult{Order: make([]objective.Weights, len(order))}
	for i, p := range order {
		res.Order[i] = p.Weights()
	}

	// Phase 1: bootstrapping — train the pivot objectives in alternation
	// so the base model improves on all of them in balance.
	t.progress("bootstrap: %d cycles x %d objectives x %d iters",
		t.Cfg.BootstrapCycles, len(bootstraps), t.Cfg.BootstrapIters)
	for cycle := 0; cycle < t.Cfg.BootstrapCycles; cycle++ {
		for _, b := range bootstraps {
			w := b.Weights()
			for it := 0; it < t.Cfg.BootstrapIters; it++ {
				reward, err := t.Iterate(w)
				if err != nil {
					return nil, err
				}
				res.BootstrapIters++
				res.Curve = append(res.Curve, CurvePoint{
					Iteration: len(res.Curve), Objective: w, Reward: reward,
				})
			}
		}
		t.progress("bootstrap cycle %d/%d done", cycle+1, t.Cfg.BootstrapCycles)
	}

	// Phase 2: fast traversing — visit every landmark a few iterations at
	// a time, cycling until the configured passes complete.
	t.progress("fast traverse: %d cycles x %d objectives x %d iters",
		t.Cfg.TraverseCycles, len(order), t.Cfg.TraverseIters)
	for cycle := 0; cycle < t.Cfg.TraverseCycles; cycle++ {
		for _, p := range order {
			w := p.Weights()
			for it := 0; it < t.Cfg.TraverseIters; it++ {
				reward, err := t.Iterate(w)
				if err != nil {
					return nil, err
				}
				res.TraverseIters++
				res.Curve = append(res.Curve, CurvePoint{
					Iteration: len(res.Curve), Objective: w, Reward: reward,
				})
			}
		}
		t.progress("traverse cycle %d/%d done", cycle+1, t.Cfg.TraverseCycles)
	}
	return res, nil
}

// TrainIndividually trains one fresh single-objective run per landmark
// without any transfer — the "Individual Training" baseline of Figure 19.
// historyLen must match the environments produced by cfg.Envs. It returns
// the total PPO iterations consumed (the wall-clock proxy).
func TrainIndividually(cfg TrainConfig, historyLen, itersPerObjective int) (int, error) {
	step := objective.StepForOmega(cfg.Omega)
	total := 0
	for _, p := range objective.Landmarks(step) {
		model := NewModel(historyLen, cfg.Seed)
		t, err := NewOfflineTrainer(model, cfg)
		if err != nil {
			return 0, err
		}
		w := p.Weights()
		for i := 0; i < itersPerObjective; i++ {
			if _, err := t.Iterate(w); err != nil {
				return 0, err
			}
			total++
		}
	}
	return total, nil
}
