package core

import (
	"errors"
	"fmt"
	"time"

	"mocc/internal/objective"
	"mocc/internal/obs"
	"mocc/internal/rl"
)

// TrainConfig controls the two-phase offline training of §4.2.
type TrainConfig struct {
	// Omega is the landmark objective count ω (Table 2: 36). The lattice
	// step is derived via objective.StepForOmega.
	Omega int
	// BootstrapIters is the number of PPO iterations per bootstrap
	// objective per cycle; BootstrapCycles alternates over the three
	// bootstraps so they improve in balance.
	BootstrapIters  int
	BootstrapCycles int
	// TraverseIters is the small number of PPO iterations per objective
	// visit during fast traversing ("we do not train an objective until
	// convergence but only for a few steps").
	TraverseIters int
	// TraverseCycles is how many times the full sorted objective list is
	// traversed.
	TraverseCycles int
	// RolloutSteps is the number of transitions collected per PPO
	// iteration; EpisodeLen bounds each episode (and re-samples the link).
	RolloutSteps int
	EpisodeLen   int
	// Workers > 1 enables goroutine-parallel rollout collection AND
	// data-parallel PPO minibatch updates (unless PPO.Workers overrides the
	// latter). Workers is an upper bound on collection fan-out, not a
	// guarantee: a round never creates more tasks than full episodes fit in
	// the budget (tasks = min(Workers, max(1, RolloutSteps/EpisodeLen))),
	// so small rollouts run on fewer goroutines instead of churning idle
	// ones, and the tasks split RolloutSteps exactly — total collected
	// steps never exceed the budget regardless of worker count. Training is
	// deterministic for a fixed seed and worker count.
	Workers int
	// Pipelined overlaps the collection of iteration k+1's rollouts with
	// the PPO update of iteration k: the collector replicas are synced from
	// the pre-update parameter snapshot (exactly how the paper's async
	// Ray/RLlib workers run one model version behind the learner, §5) and
	// the two rollout buffers alternate. Off (the default) keeps the
	// strictly serial collect-then-update loop, byte-identical to the
	// non-pipelined trainer. Pipelined training remains deterministic for a
	// fixed seed and worker count but follows a different trajectory than
	// the serial schedule (rollouts are one update stale).
	Pipelined bool
	// Seed drives all environment sampling and action noise.
	Seed int64
	// PPO carries the optimizer hyperparameters. PPO.Workers = 0 inherits
	// Workers for the data-parallel update engine; set PPO.Workers = 1 to
	// pin the update serial while keeping parallel collection.
	PPO rl.PPOConfig
	// Envs generates training environments (defaults to Table 3 training
	// ranges when nil — set explicitly in tests for speed).
	Envs rl.EnvFactory
	// Progress, when non-nil, receives a line per training milestone.
	Progress func(string)
	// Metrics, when non-nil, registers the training-throughput series
	// (mocc_train_*): iteration and environment-step counters (steps/s
	// falls out of their rates), the last iteration's mean reward, and a
	// PPO update-latency histogram.
	Metrics *obs.Registry
}

// trainMetrics is the trainer's instrumentation (zero value = off).
type trainMetrics struct {
	iterations *obs.Counter
	envSteps   *obs.Counter
	reward     *obs.Gauge
	update     *obs.Histogram
}

func newTrainMetrics(reg *obs.Registry) trainMetrics {
	if reg == nil {
		return trainMetrics{}
	}
	return trainMetrics{
		iterations: reg.Counter("mocc_train_iterations_total",
			"PPO iterations completed across all phases."),
		envSteps: reg.Counter("mocc_train_env_steps_total",
			"Environment transitions collected (rate = training steps/s)."),
		reward: reg.Gauge("mocc_train_reward",
			"Mean per-step reward of the last completed iteration."),
		update: reg.Histogram("mocc_train_update_seconds",
			"PPO update latency per iteration.", 1e-9),
	}
}

// DefaultTrainConfig returns a full-scale configuration following the paper;
// tests and benches shrink it.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Omega:           OmegaDefault,
		BootstrapIters:  20,
		BootstrapCycles: 5,
		TraverseIters:   2,
		TraverseCycles:  3,
		RolloutSteps:    512,
		EpisodeLen:      128,
		Workers:         4,
		Seed:            1,
		PPO:             rl.DefaultPPOConfig(),
	}
}

// CurvePoint is one point of a training curve.
type CurvePoint struct {
	Iteration int
	Objective objective.Weights
	Reward    float64 // mean per-step Equation 2 reward of the iteration's rollout
}

// OfflineResult summarizes a two-phase offline training run.
type OfflineResult struct {
	Curve          []CurvePoint
	Order          []objective.Weights // fast-traversing visit order
	BootstrapIters int
	TraverseIters  int
	// EnvSteps is the total number of environment transitions actually
	// collected during the run, counted from the rollouts themselves.
	EnvSteps int
}

// TotalIters returns the number of PPO iterations performed.
func (r *OfflineResult) TotalIters() int { return r.BootstrapIters + r.TraverseIters }

// OfflineTrainer runs the §4.2 two-phase schedule against a Model.
type OfflineTrainer struct {
	Model *Model
	Cfg   TrainConfig

	ppo       *rl.PPO
	collector *rl.ParallelCollector
	seedCtr   int64
	envSteps  int  // transitions collected across all iterations
	noOverlap bool // tests: run the pipelined schedule without concurrency
	met       trainMetrics
}

// NewOfflineTrainer validates the configuration and prepares the trainer.
func NewOfflineTrainer(model *Model, cfg TrainConfig) (*OfflineTrainer, error) {
	if model == nil {
		return nil, errors.New("core: nil model")
	}
	if cfg.Envs == nil {
		return nil, errors.New("core: TrainConfig.Envs is required")
	}
	if cfg.Omega < 3 {
		return nil, fmt.Errorf("core: Omega %d too small (need >= 3)", cfg.Omega)
	}
	if cfg.RolloutSteps <= 0 || cfg.EpisodeLen <= 0 {
		return nil, errors.New("core: RolloutSteps and EpisodeLen must be positive")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.PPO.Workers == 0 {
		cfg.PPO.Workers = cfg.Workers
	}
	t := &OfflineTrainer{
		Model:   model,
		Cfg:     cfg,
		ppo:     rl.NewPPO(model, cfg.PPO),
		seedCtr: cfg.Seed,
		met:     newTrainMetrics(cfg.Metrics),
	}
	// Pipelined training needs collector replicas even at one worker: the
	// master is mid-update while the next rollouts are collected, so the
	// collection must run on a parameter snapshot.
	if cfg.Workers > 1 || cfg.Pipelined {
		hl := model.HistoryLen
		t.collector = rl.NewParallelCollector(cfg.Workers, func() rl.ActorCritic {
			return NewModel(hl, 0)
		})
	}
	return t, nil
}

// PPO exposes the underlying trainer (e.g. for entropy-schedule inspection).
func (t *OfflineTrainer) PPO() *rl.PPO { return t.ppo }

// nextSeed returns a fresh deterministic seed.
func (t *OfflineTrainer) nextSeed() int64 {
	t.seedCtr++
	return t.seedCtr * 2654435761 // Knuth multiplicative spread
}

// collectCfg builds the per-iteration collection settings.
func (t *OfflineTrainer) collectCfg(steps int) rl.CollectConfig {
	return rl.CollectConfig{
		Steps:          steps,
		EpisodeLen:     t.Cfg.EpisodeLen,
		IncludeWeights: true,
		MaxAction:      2,
	}
}

// makeTasks plans one collection round for objective w, drawing one seed per
// task: at most Workers tasks, never more than RolloutSteps/EpisodeLen so
// every task collects at least one full episode, with RolloutSteps
// distributed exactly (earlier tasks absorb the remainder).
func (t *OfflineTrainer) makeTasks(w objective.Weights) []rl.CollectTask {
	n := t.collector.Workers()
	if chunks := t.Cfg.RolloutSteps / t.Cfg.EpisodeLen; chunks < n {
		n = chunks
		if n < 1 {
			n = 1
		}
	}
	per, rem := t.Cfg.RolloutSteps/n, t.Cfg.RolloutSteps%n
	tasks := make([]rl.CollectTask, n)
	for i := range tasks {
		steps := per
		if i < rem {
			steps++
		}
		tasks[i] = rl.CollectTask{Weights: w, Seed: t.nextSeed(), Steps: steps}
	}
	return tasks
}

// Iterate runs a single PPO iteration on objective w and returns the
// rollout's mean reward. With Workers > 1 the rollout is split across
// parallel collectors and the losses averaged, which is gradient-equivalent
// to one large rollout.
func (t *OfflineTrainer) Iterate(w objective.Weights) (float64, error) {
	if t.collector == nil {
		ro := rl.Collect(t.Model, t.Cfg.Envs, w, t.collectCfg(t.Cfg.RolloutSteps), t.nextSeed())
		t.envSteps += len(ro.Trans)
		t.met.envSteps.Add(uint64(len(ro.Trans)))
		start := time.Now()
		st := t.ppo.Update(ro)
		t.met.update.Observe(uint64(time.Since(start)))
		return st.MeanReward, nil
	}
	rollouts, err := t.collector.Collect(t.Model, t.Cfg.Envs, t.collectCfg(0), t.makeTasks(w))
	if err != nil {
		return 0, err
	}
	t.countSteps(rollouts)
	start := time.Now()
	st := t.ppo.UpdateMulti(rollouts)
	t.met.update.Observe(uint64(time.Since(start)))
	return st.MeanReward, nil
}

// countSteps accumulates the transitions actually collected.
func (t *OfflineTrainer) countSteps(rollouts []rl.Rollout) {
	n := 0
	for i := range rollouts {
		n += len(rollouts[i].Trans)
	}
	t.envSteps += n
	t.met.envSteps.Add(uint64(n))
}

// progress emits a milestone line when configured.
func (t *OfflineTrainer) progress(format string, args ...any) {
	if t.Cfg.Progress != nil {
		t.Cfg.Progress(fmt.Sprintf(format, args...))
	}
}

// planStep is one PPO iteration of the two-phase schedule.
type planStep struct {
	w          objective.Weights
	bootstrap  bool     // phase attribution for the OfflineResult counters
	milestones []string // progress lines emitted after this iteration completes
}

// record appends the iteration's curve point and bumps the phase counter.
func (t *OfflineTrainer) record(res *OfflineResult, s planStep, reward float64) {
	if s.bootstrap {
		res.BootstrapIters++
	} else {
		res.TraverseIters++
	}
	t.met.iterations.Add(1)
	t.met.reward.Set(reward)
	res.Curve = append(res.Curve, CurvePoint{
		Iteration: len(res.Curve), Objective: s.w, Reward: reward,
	})
	for _, m := range s.milestones {
		t.progress("%s", m)
	}
}

// addMilestone attaches a cycle-completion line to the last step of plan, so
// it is emitted once that iteration's update finishes. A cycle that
// contributed no steps still reports: its line rides on the previous step,
// or — when the plan is empty so far — is emitted immediately (no iterations
// precede it, so ordering is preserved either way).
func (t *OfflineTrainer) addMilestone(plan []planStep, msg string) {
	if len(plan) == 0 {
		t.progress("%s", msg)
		return
	}
	last := &plan[len(plan)-1]
	last.milestones = append(last.milestones, msg)
}

// Run executes the full two-phase schedule: bootstrapping over the three
// pivot objectives, then fast traversing of the ω landmarks in the
// Appendix B neighbourhood order. With Cfg.Pipelined the iterations of each
// phase run through the overlapped collect/update loop.
func (t *OfflineTrainer) Run() (*OfflineResult, error) {
	step := objective.StepForOmega(t.Cfg.Omega)
	landmarks := objective.Landmarks(step)
	bootstraps := objective.DefaultBootstraps(step)
	order, err := objective.SortObjectives(landmarks, bootstraps)
	if err != nil {
		return nil, err
	}

	res := &OfflineResult{Order: make([]objective.Weights, len(order))}
	for i, p := range order {
		res.Order[i] = p.Weights()
	}
	startSteps := t.envSteps // delta-count so repeated Run calls stay correct

	// Phase 1: bootstrapping — train the pivot objectives in alternation
	// so the base model improves on all of them in balance.
	t.progress("bootstrap: %d cycles x %d objectives x %d iters",
		t.Cfg.BootstrapCycles, len(bootstraps), t.Cfg.BootstrapIters)
	var boot []planStep
	for cycle := 0; cycle < t.Cfg.BootstrapCycles; cycle++ {
		for _, b := range bootstraps {
			w := b.Weights()
			for it := 0; it < t.Cfg.BootstrapIters; it++ {
				boot = append(boot, planStep{w: w, bootstrap: true})
			}
		}
		t.addMilestone(boot, fmt.Sprintf("bootstrap cycle %d/%d done",
			cycle+1, t.Cfg.BootstrapCycles))
	}
	if err := t.runPhase(boot, res); err != nil {
		return nil, err
	}

	// Phase 2: fast traversing — visit every landmark a few iterations at
	// a time, cycling until the configured passes complete.
	t.progress("fast traverse: %d cycles x %d objectives x %d iters",
		t.Cfg.TraverseCycles, len(order), t.Cfg.TraverseIters)
	var trav []planStep
	for cycle := 0; cycle < t.Cfg.TraverseCycles; cycle++ {
		for _, p := range order {
			w := p.Weights()
			for it := 0; it < t.Cfg.TraverseIters; it++ {
				trav = append(trav, planStep{w: w})
			}
		}
		t.addMilestone(trav, fmt.Sprintf("traverse cycle %d/%d done",
			cycle+1, t.Cfg.TraverseCycles))
	}
	if err := t.runPhase(trav, res); err != nil {
		return nil, err
	}
	res.EnvSteps = t.envSteps - startSteps
	return res, nil
}

// runPhase executes one phase's iteration plan, serial or pipelined.
func (t *OfflineTrainer) runPhase(plan []planStep, res *OfflineResult) error {
	if len(plan) == 0 {
		return nil
	}
	if t.Cfg.Pipelined && t.collector != nil {
		return t.runPipelined(plan, res)
	}
	for _, s := range plan {
		reward, err := t.Iterate(s.w)
		if err != nil {
			return err
		}
		t.record(res, s, reward)
	}
	return nil
}

// runPipelined executes the plan with collection of iteration k+1 overlapped
// against the PPO update of iteration k. The collector replicas are synced
// from the master BEFORE the update starts (the pre-update snapshot), so the
// background collection never touches parameters the optimizer is mutating;
// two rollout buffers alternate between "being consumed by the update" and
// "being filled by the collectors". Seeds are drawn in iteration order, so
// the run is deterministic for a fixed seed and worker count. With
// t.noOverlap the identical schedule runs without the background goroutine —
// the equivalence test pins that concurrency does not change results.
func (t *OfflineTrainer) runPipelined(plan []planStep, res *OfflineResult) error {
	if err := t.collector.Sync(t.Model); err != nil {
		return err
	}
	cur := t.collector.CollectSynced(t.Cfg.Envs, t.collectCfg(0), t.makeTasks(plan[0].w))
	t.countSteps(cur)

	done := make(chan struct{})
	for i, s := range plan {
		var next []rl.Rollout
		launched := false
		if i+1 < len(plan) {
			// Snapshot the pre-update parameters, then collect the next
			// iteration's rollouts while this iteration's update runs.
			if err := t.collector.Sync(t.Model); err != nil {
				return err
			}
			tasks := t.makeTasks(plan[i+1].w)
			if t.noOverlap {
				next = t.collector.CollectSynced(t.Cfg.Envs, t.collectCfg(0), tasks)
			} else {
				launched = true
				go func() {
					next = t.collector.CollectSynced(t.Cfg.Envs, t.collectCfg(0), tasks)
					done <- struct{}{}
				}()
			}
		}
		start := time.Now()
		st := t.ppo.UpdateMulti(cur)
		t.met.update.Observe(uint64(time.Since(start)))
		if launched {
			<-done
		}
		if next != nil {
			t.countSteps(next)
		}
		t.record(res, s, st.MeanReward)
		cur = next
	}
	return nil
}

// TrainIndividually trains one fresh single-objective run per landmark
// without any transfer — the "Individual Training" baseline of Figure 19.
// historyLen must match the environments produced by cfg.Envs. It returns
// the total PPO iterations consumed (the wall-clock proxy).
func TrainIndividually(cfg TrainConfig, historyLen, itersPerObjective int) (int, error) {
	step := objective.StepForOmega(cfg.Omega)
	total := 0
	for _, p := range objective.Landmarks(step) {
		model := NewModel(historyLen, cfg.Seed)
		t, err := NewOfflineTrainer(model, cfg)
		if err != nil {
			return 0, err
		}
		w := p.Weights()
		for i := 0; i < itersPerObjective; i++ {
			if _, err := t.Iterate(w); err != nil {
				return 0, err
			}
			total++
		}
	}
	return total, nil
}
