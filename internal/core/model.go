// Package core implements the paper's contribution: the MOCC
// multi-objective congestion-control model (§4). The policy and value
// networks are extended with a preference sub-network that embeds the
// application weight vector; the reward is dynamically parameterized by the
// same vector (Equation 2); offline training runs the two-phase
// bootstrapping + fast-traversing schedule (§4.2, Appendix B); and online
// adaptation transfers the offline model to unseen objectives with
// requirement replay (§4.3, Equation 6).
package core

import (
	"fmt"
	"math"
	"math/rand"

	"mocc/internal/cc"
	"mocc/internal/gym"
	"mocc/internal/nn"
	"mocc/internal/objective"
)

// Architecture constants from §5 and Figure 3.
const (
	// Hidden1 and Hidden2 are the trunk hidden sizes (64, 32).
	Hidden1 = 64
	Hidden2 = 32
	// PrefFeatures is the width of the preference sub-network's feature
	// transformation of the 3-dim weight vector.
	PrefFeatures = 16
	// WeightDim is the application requirement dimensionality.
	WeightDim = 3
)

// logStd clamp bounds shared with the single-objective agent.
const (
	minLogStd = -3.0
	maxLogStd = 1.0
)

// Model is the MOCC actor-critic with preference sub-networks (Figure 3).
// Observations are the concatenation [network history (3·η) | weight vector
// (3)]; each half-network first transforms the weight vector through its
// preference sub-network and concatenates the features with the network
// history before the trunk.
//
// Model implements rl.ActorCritic.
type Model struct {
	HistoryLen int

	actorPref  *nn.MLP // 3 -> PrefFeatures (tanh output)
	actorTrunk *nn.MLP // 3η+PrefFeatures -> 64 -> 32 -> 1
	actorAct   *nn.Tanh

	criticPref  *nn.MLP
	criticTrunk *nn.MLP
	criticAct   *nn.Tanh

	logStd *nn.Param
}

// NewModel builds a model for η-step history observations.
func NewModel(historyLen int, seed int64) *Model {
	if historyLen <= 0 {
		historyLen = gym.DefaultHistoryLen
	}
	rng := rand.New(rand.NewSource(seed))
	netDim := 3 * historyLen
	m := &Model{
		HistoryLen:  historyLen,
		actorPref:   nn.NewMLP(rng, WeightDim, PrefFeatures),
		actorAct:    nn.NewTanh(PrefFeatures),
		actorTrunk:  nn.NewMLP(rng, netDim+PrefFeatures, Hidden1, Hidden2, 1),
		criticPref:  nn.NewMLP(rng, WeightDim, PrefFeatures),
		criticAct:   nn.NewTanh(PrefFeatures),
		criticTrunk: nn.NewMLP(rng, netDim+PrefFeatures, Hidden1, Hidden2, 1),
		logStd:      &nn.Param{Name: "logstd", Value: []float64{0}, Grad: []float64{0}},
	}
	return m
}

// ObsSize implements rl.ActorCritic: 3·η network features + 3 weights.
func (m *Model) ObsSize() int { return 3*m.HistoryLen + WeightDim }

// split separates an observation into network history and weight vector.
func (m *Model) split(obs []float64) (net, w []float64) {
	netDim := 3 * m.HistoryLen
	if len(obs) != netDim+WeightDim {
		panic(fmt.Sprintf("core: observation length %d, want %d", len(obs), netDim+WeightDim))
	}
	return obs[:netDim], obs[netDim:]
}

// forward runs one half-network (pref sub-network + trunk).
func forward(pref *nn.MLP, act *nn.Tanh, trunk *nn.MLP, net, w []float64) float64 {
	feat := act.Forward(pref.Forward(w))
	joint := make([]float64, 0, len(net)+len(feat))
	joint = append(joint, net...)
	joint = append(joint, feat...)
	return trunk.Forward(joint)[0]
}

// backward propagates a scalar output gradient through one half-network.
func backward(pref *nn.MLP, act *nn.Tanh, trunk *nn.MLP, netDim int, dOut float64) {
	gJoint := trunk.Backward([]float64{dOut})
	// The first netDim entries are input gradients (discarded); the rest
	// flow into the preference sub-network.
	pref.Backward(act.Backward(gJoint[netDim:]))
}

// PolicyForward implements rl.ActorCritic.
func (m *Model) PolicyForward(obs []float64) (mean, std float64) {
	net, w := m.split(obs)
	mean = forward(m.actorPref, m.actorAct, m.actorTrunk, net, w)
	ls := math.Max(minLogStd, math.Min(maxLogStd, m.logStd.Value[0]))
	return mean, math.Exp(ls)
}

// PolicyBackward implements rl.ActorCritic.
func (m *Model) PolicyBackward(dMean, dLogStd float64) {
	backward(m.actorPref, m.actorAct, m.actorTrunk, 3*m.HistoryLen, dMean)
	if ls := m.logStd.Value[0]; ls > minLogStd && ls < maxLogStd {
		m.logStd.Grad[0] += dLogStd
	}
}

// ValueForward implements rl.ActorCritic.
func (m *Model) ValueForward(obs []float64) float64 {
	net, w := m.split(obs)
	return forward(m.criticPref, m.criticAct, m.criticTrunk, net, w)
}

// ValueBackward implements rl.ActorCritic.
func (m *Model) ValueBackward(dV float64) {
	backward(m.criticPref, m.criticAct, m.criticTrunk, 3*m.HistoryLen, dV)
}

// ActorParams implements rl.ActorCritic.
func (m *Model) ActorParams() []*nn.Param {
	ps := append([]*nn.Param{}, m.actorPref.Params()...)
	ps = append(ps, m.actorTrunk.Params()...)
	return append(ps, m.logStd)
}

// CriticParams implements rl.ActorCritic.
func (m *Model) CriticParams() []*nn.Param {
	ps := append([]*nn.Param{}, m.criticPref.Params()...)
	return append(ps, m.criticTrunk.Params()...)
}

// AllParams returns every trainable parameter (for snapshots and transfer).
func (m *Model) AllParams() []*nn.Param {
	return append(m.ActorParams(), m.CriticParams()...)
}

// CopyFrom copies all parameters from src (same architecture required).
func (m *Model) CopyFrom(src *Model) error {
	return nn.CopyParams(m.AllParams(), src.AllParams())
}

// Clone returns an independent deep copy of the model.
func (m *Model) Clone() *Model {
	c := NewModel(m.HistoryLen, 0)
	if err := c.CopyFrom(m); err != nil {
		panic("core: clone of identical architecture failed: " + err.Error())
	}
	return c
}

// Snapshot captures the model parameters for serialization.
func (m *Model) Snapshot() nn.Snapshot { return nn.TakeSnapshot(m.AllParams()) }

// Restore loads parameters from a snapshot taken from an identical
// architecture.
func (m *Model) Restore(s nn.Snapshot) error { return s.Restore(m.AllParams()) }

// ActFor returns the deterministic action for a network-history observation
// under preference w.
func (m *Model) ActFor(w objective.Weights, netObs []float64) float64 {
	obs := make([]float64, 0, len(netObs)+WeightDim)
	obs = append(obs, netObs...)
	obs = append(obs, w.Thr, w.Lat, w.Loss)
	mean, _ := m.PolicyForward(obs)
	return mean
}

// PolicyFor returns a congestion-control policy bound to preference w: it
// accepts plain network observations (3·η) and internally appends the weight
// vector, so a single MOCC model serves any registered application.
func (m *Model) PolicyFor(w objective.Weights) cc.Policy {
	return cc.PolicyFunc(func(netObs []float64) float64 {
		return m.ActFor(w, netObs)
	})
}

// AlgorithmFor wraps the model as a named cc.Algorithm for preference w,
// ready to drive any datapath or simulator.
func (m *Model) AlgorithmFor(name string, w objective.Weights) cc.Algorithm {
	if name == "" {
		name = "mocc"
	}
	return cc.NewRLRate(name, m.PolicyFor(w), m.HistoryLen)
}
