// Package core implements the paper's contribution: the MOCC
// multi-objective congestion-control model (§4). The policy and value
// networks are extended with a preference sub-network that embeds the
// application weight vector; the reward is dynamically parameterized by the
// same vector (Equation 2); offline training runs the two-phase
// bootstrapping + fast-traversing schedule (§4.2, Appendix B); and online
// adaptation transfers the offline model to unseen objectives with
// requirement replay (§4.3, Equation 6).
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"mocc/internal/cc"
	"mocc/internal/gym"
	"mocc/internal/nn"
	"mocc/internal/objective"
	"mocc/internal/rl"
)

// Architecture constants from §5 and Figure 3.
const (
	// Hidden1 and Hidden2 are the trunk hidden sizes (64, 32).
	Hidden1 = 64
	Hidden2 = 32
	// PrefFeatures is the width of the preference sub-network's feature
	// transformation of the 3-dim weight vector.
	PrefFeatures = 16
	// WeightDim is the application requirement dimensionality.
	WeightDim = 3
)

// logStd clamp bounds shared with the single-objective agent.
const (
	minLogStd = -3.0
	maxLogStd = 1.0
)

// Model is the MOCC actor-critic with preference sub-networks (Figure 3).
// Observations are the concatenation [network history (3·η) | weight vector
// (3)]; each half-network first transforms the weight vector through its
// preference sub-network and concatenates the features with the network
// history before the trunk.
//
// Model implements rl.ActorCritic.
type Model struct {
	HistoryLen int

	actorPref  *nn.MLP // 3 -> PrefFeatures (tanh output)
	actorTrunk *nn.MLP // 3η+PrefFeatures -> 64 -> 32 -> 1
	actorAct   *nn.Tanh

	criticPref  *nn.MLP
	criticTrunk *nn.MLP
	criticAct   *nn.Tanh

	logStd *nn.Param

	// Scratch arenas for the batched forward/backward paths. The actor and
	// critic may share the assembly buffers because every Linear layer
	// copies its input into its own cache before the next batched call.
	wBuf     []float64 // [n x WeightDim] extracted weight vectors
	jointBuf []float64 // [n x (netDim+PrefFeatures)] trunk inputs
	featGrad []float64 // [n x PrefFeatures] gradients into the pref net
	obsBuf   []float64 // single-observation assembly for ActFor
	d1       [1]float64

	// paramMu arbitrates shared deployment against parameter writes:
	// Inference (the read-shared entry point behind per-app handles) takes
	// the read side per evaluation, and any training/adaptation that
	// mutates parameters while inferences may be running must hold the
	// write side (see LockParams). The model's own forward/backward paths
	// do not touch it — single-goroutine training pays nothing.
	paramMu sync.RWMutex
}

// LockParams acquires exclusive access to the parameter values, blocking
// all Inference evaluations; pair with UnlockParams around any optimizer
// step that runs while applications are live (online adaptation).
func (m *Model) LockParams() { m.paramMu.Lock() }

// UnlockParams releases LockParams.
func (m *Model) UnlockParams() { m.paramMu.Unlock() }

// RLockParams acquires shared read access to the parameter values; used by
// Inference and by snapshotting while applications are live.
func (m *Model) RLockParams() { m.paramMu.RLock() }

// RUnlockParams releases RLockParams.
func (m *Model) RUnlockParams() { m.paramMu.RUnlock() }

// NewModel builds a model for η-step history observations.
func NewModel(historyLen int, seed int64) *Model {
	if historyLen <= 0 {
		historyLen = gym.DefaultHistoryLen
	}
	rng := rand.New(rand.NewSource(seed))
	netDim := 3 * historyLen
	m := &Model{
		HistoryLen:  historyLen,
		actorPref:   nn.NewMLP(rng, WeightDim, PrefFeatures),
		actorAct:    nn.NewTanh(PrefFeatures),
		actorTrunk:  nn.NewMLP(rng, netDim+PrefFeatures, Hidden1, Hidden2, 1),
		criticPref:  nn.NewMLP(rng, WeightDim, PrefFeatures),
		criticAct:   nn.NewTanh(PrefFeatures),
		criticTrunk: nn.NewMLP(rng, netDim+PrefFeatures, Hidden1, Hidden2, 1),
		logStd:      &nn.Param{Name: "logstd", Value: []float64{0}, Grad: []float64{0}},
	}
	return m
}

// ObsSize implements rl.ActorCritic: 3·η network features + 3 weights.
func (m *Model) ObsSize() int { return 3*m.HistoryLen + WeightDim }

// split separates an observation into network history and weight vector.
func (m *Model) split(obs []float64) (net, w []float64) {
	netDim := 3 * m.HistoryLen
	if len(obs) != netDim+WeightDim {
		panic(fmt.Sprintf("core: observation length %d, want %d", len(obs), netDim+WeightDim))
	}
	return obs[:netDim], obs[netDim:]
}

// forwardBatch runs one half-network (pref sub-network + trunk) over n
// row-major [n x ObsSize] observations, returning the [n x 1] outputs
// (aliasing trunk scratch). Each row is split into network history and
// weight vector; the weight features are concatenated with the history
// before the trunk, all inside reusable arenas.
func (m *Model) forwardBatch(pref *nn.MLP, act *nn.Tanh, trunk *nn.MLP, obs []float64, n int) []float64 {
	netDim := 3 * m.HistoryLen
	obsDim := netDim + WeightDim
	if len(obs) != n*obsDim {
		panic(fmt.Sprintf("core: observation batch length %d, want %d rows x %d", len(obs), n, obsDim))
	}
	m.wBuf = nn.Grow(m.wBuf, n*WeightDim)
	for r := 0; r < n; r++ {
		copy(m.wBuf[r*WeightDim:(r+1)*WeightDim], obs[r*obsDim+netDim:(r+1)*obsDim])
	}
	feat := act.ForwardBatch(pref.ForwardBatch(m.wBuf, n), n)

	jointDim := netDim + PrefFeatures
	m.jointBuf = nn.Grow(m.jointBuf, n*jointDim)
	for r := 0; r < n; r++ {
		copy(m.jointBuf[r*jointDim:r*jointDim+netDim], obs[r*obsDim:r*obsDim+netDim])
		copy(m.jointBuf[r*jointDim+netDim:(r+1)*jointDim], feat[r*PrefFeatures:(r+1)*PrefFeatures])
	}
	return trunk.ForwardBatch(m.jointBuf, n)
}

// backwardBatch propagates [n x 1] output gradients through one
// half-network evaluated by the most recent forwardBatch.
func (m *Model) backwardBatch(pref *nn.MLP, act *nn.Tanh, trunk *nn.MLP, dOut []float64, n int) {
	gJoint := trunk.BackwardBatch(dOut, n)
	netDim := 3 * m.HistoryLen
	jointDim := netDim + PrefFeatures
	// The history entries of each row are input gradients (discarded); the
	// preference-feature entries flow into the pref sub-network.
	m.featGrad = nn.Grow(m.featGrad, n*PrefFeatures)
	for r := 0; r < n; r++ {
		copy(m.featGrad[r*PrefFeatures:(r+1)*PrefFeatures], gJoint[r*jointDim+netDim:(r+1)*jointDim])
	}
	pref.BackwardBatch(act.BackwardBatch(m.featGrad, n), n)
}

// PolicyForward implements rl.ActorCritic.
func (m *Model) PolicyForward(obs []float64) (mean, std float64) {
	m.split(obs) // length validation with the single-sample error message
	mean = m.forwardBatch(m.actorPref, m.actorAct, m.actorTrunk, obs, 1)[0]
	ls := math.Max(minLogStd, math.Min(maxLogStd, m.logStd.Value[0]))
	return mean, math.Exp(ls)
}

// PolicyBackward implements rl.ActorCritic.
func (m *Model) PolicyBackward(dMean, dLogStd float64) {
	m.d1[0] = dMean
	m.backwardBatch(m.actorPref, m.actorAct, m.actorTrunk, m.d1[:], 1)
	if ls := m.logStd.Value[0]; ls > minLogStd && ls < maxLogStd {
		m.logStd.Grad[0] += dLogStd
	}
}

// ValueForward implements rl.ActorCritic.
func (m *Model) ValueForward(obs []float64) float64 {
	m.split(obs)
	return m.forwardBatch(m.criticPref, m.criticAct, m.criticTrunk, obs, 1)[0]
}

// ValueBackward implements rl.ActorCritic.
func (m *Model) ValueBackward(dV float64) {
	m.d1[0] = dV
	m.backwardBatch(m.criticPref, m.criticAct, m.criticTrunk, m.d1[:], 1)
}

// PolicyForwardBatch implements rl.BatchActorCritic: one batched pass of
// the actor half-network. The returned means alias trunk scratch.
func (m *Model) PolicyForwardBatch(obs []float64, n int) ([]float64, float64) {
	means := m.forwardBatch(m.actorPref, m.actorAct, m.actorTrunk, obs, n)
	ls := math.Max(minLogStd, math.Min(maxLogStd, m.logStd.Value[0]))
	return means, math.Exp(ls)
}

// PolicyBackwardBatch implements rl.BatchActorCritic.
func (m *Model) PolicyBackwardBatch(dMean, dLogStd []float64) {
	m.backwardBatch(m.actorPref, m.actorAct, m.actorTrunk, dMean, len(dMean))
	if ls := m.logStd.Value[0]; ls > minLogStd && ls < maxLogStd {
		for _, g := range dLogStd {
			m.logStd.Grad[0] += g
		}
	}
}

// ValueForwardBatch implements rl.BatchActorCritic.
func (m *Model) ValueForwardBatch(obs []float64, n int) []float64 {
	return m.forwardBatch(m.criticPref, m.criticAct, m.criticTrunk, obs, n)
}

// ValueBackwardBatch implements rl.BatchActorCritic.
func (m *Model) ValueBackwardBatch(dV []float64) {
	m.backwardBatch(m.criticPref, m.criticAct, m.criticTrunk, dV, len(dV))
}

// ActorParams implements rl.ActorCritic.
func (m *Model) ActorParams() []*nn.Param {
	ps := append([]*nn.Param{}, m.actorPref.Params()...)
	ps = append(ps, m.actorTrunk.Params()...)
	return append(ps, m.logStd)
}

// CriticParams implements rl.ActorCritic.
func (m *Model) CriticParams() []*nn.Param {
	ps := append([]*nn.Param{}, m.criticPref.Params()...)
	return append(ps, m.criticTrunk.Params()...)
}

// AllParams returns every trainable parameter (for snapshots and transfer).
func (m *Model) AllParams() []*nn.Param {
	return append(m.ActorParams(), m.CriticParams()...)
}

// CopyFrom copies all parameters from src (same architecture required).
func (m *Model) CopyFrom(src *Model) error {
	return nn.CopyParams(m.AllParams(), src.AllParams())
}

// Clone returns an independent deep copy of the model.
func (m *Model) Clone() *Model {
	c := NewModel(m.HistoryLen, 0)
	if err := c.CopyFrom(m); err != nil {
		panic("core: clone of identical architecture failed: " + err.Error())
	}
	return c
}

// TrainingReplica implements rl.ReplicaAgent: the replica shares this
// model's parameter values (it always evaluates the master's current
// weights, no copying) while owning private gradients and scratch arenas —
// the preference sub-networks, trunks and logStd all alias the master's
// value storage — so the data-parallel PPO update can run several replicas'
// batched forward/backward concurrently and reduce their gradients into the
// master.
func (m *Model) TrainingReplica() rl.BatchActorCritic {
	return &Model{
		HistoryLen:  m.HistoryLen,
		actorPref:   m.actorPref.Replica(),
		actorAct:    nn.NewTanh(PrefFeatures),
		actorTrunk:  m.actorTrunk.Replica(),
		criticPref:  m.criticPref.Replica(),
		criticAct:   nn.NewTanh(PrefFeatures),
		criticTrunk: m.criticTrunk.Replica(),
		logStd:      m.logStd.TrainingReplica(),
	}
}

// Snapshot captures the model parameters for serialization.
func (m *Model) Snapshot() nn.Snapshot { return nn.TakeSnapshot(m.AllParams()) }

// CheckFinite scans every trainable parameter for NaN/Inf, returning an
// error naming the first offending tensor. Online adaptation runs it under
// the parameter write lock before publishing an epoch, so a diverged update
// can never poison live applications. The caller must hold at least the
// read side of the parameter lock if writers may be active.
func (m *Model) CheckFinite() error { return nn.CheckFinite(m.AllParams()) }

// Restore loads parameters from a snapshot taken from an identical
// architecture.
func (m *Model) Restore(s nn.Snapshot) error { return s.Restore(m.AllParams()) }

// ActFor returns the deterministic action for a network-history observation
// under preference w.
func (m *Model) ActFor(w objective.Weights, netObs []float64) float64 {
	m.obsBuf = nn.Grow(m.obsBuf, len(netObs)+WeightDim)
	copy(m.obsBuf, netObs)
	m.obsBuf[len(netObs)] = w.Thr
	m.obsBuf[len(netObs)+1] = w.Lat
	m.obsBuf[len(netObs)+2] = w.Loss
	mean, _ := m.PolicyForward(m.obsBuf)
	return mean
}

// PolicyFor returns a congestion-control policy bound to preference w: it
// accepts plain network observations (3·η) and internally appends the weight
// vector, so a single MOCC model serves any registered application.
func (m *Model) PolicyFor(w objective.Weights) cc.Policy {
	return cc.PolicyFunc(func(netObs []float64) float64 {
		return m.ActFor(w, netObs)
	})
}

// AlgorithmFor wraps the model as a named cc.Algorithm for preference w,
// ready to drive any datapath or simulator. The algorithm evaluates the
// live model, so later online adaptation immediately benefits registered
// applications; it shares the model's inference scratch and must therefore
// stay on one goroutine.
func (m *Model) AlgorithmFor(name string, w objective.Weights) cc.Algorithm {
	if name == "" {
		name = "mocc"
	}
	return cc.NewRLRate(name, m.PolicyFor(w), m.HistoryLen)
}

// FrozenAlgorithmFor is AlgorithmFor on a private deep copy of the current
// parameters: the returned algorithm is unaffected by later training and
// safe to drive from a concurrent evaluation worker, which is how the
// pantheon scenario scheduler fans a trained model across parallel runs.
func (m *Model) FrozenAlgorithmFor(name string, w objective.Weights) cc.Algorithm {
	return m.Clone().AlgorithmFor(name, w)
}
