package core

import (
	"math/rand"
	"sync"
	"testing"

	"mocc/internal/objective"
	"mocc/internal/trace"
)

// TestInferenceMatchesActFor pins the read-shared inference path to the
// model's own forward bit for bit across preferences and observations.
func TestInferenceMatchesActFor(t *testing.T) {
	m := NewModel(HistoryLen, 42)
	inf := m.NewInference()
	rng := rand.New(rand.NewSource(9))
	obs := make([]float64, 3*m.HistoryLen)
	prefs := []objective.Weights{
		objective.ThroughputPref, objective.LatencyPref,
		objective.RTCPref, objective.BalancePref,
	}
	for trial := 0; trial < 40; trial++ {
		for i := range obs {
			obs[i] = rng.NormFloat64()
		}
		w := prefs[trial%len(prefs)]
		want := m.ActFor(w, obs)
		if got := inf.ActFor(w, obs); got != want {
			t.Fatalf("trial %d: Inference.ActFor = %v, Model.ActFor = %v", trial, got, want)
		}
	}
}

// TestBatchInferenceBitIdentical pins every BatchInference.ActBatch row to
// the single-sample Inference.ActFor result bit for bit, across batch sizes
// covering the blocked and tail kernel paths. This is the determinism pin
// behind request coalescing: a decision must not depend on how many other
// apps happened to land in the same micro-batch.
func TestBatchInferenceBitIdentical(t *testing.T) {
	m := NewModel(HistoryLen, 42)
	inf := m.NewInference()
	bi := m.NewBatchInference()
	rng := rand.New(rand.NewSource(17))
	prefs := objective.UniformObjectives(16, 5)
	for _, n := range []int{1, 2, 3, 4, 5, 8, 31, 64, 65} {
		ws := make([]objective.Weights, n)
		obs := make([][]float64, n)
		for r := 0; r < n; r++ {
			ws[r] = prefs[r%len(prefs)]
			row := make([]float64, 3*m.HistoryLen)
			for i := range row {
				row[i] = rng.NormFloat64()
			}
			obs[r] = row
		}
		out := make([]float64, n)
		bi.ActBatch(ws, obs, out)
		for r := 0; r < n; r++ {
			if want := inf.ActFor(ws[r], obs[r]); out[r] != want {
				t.Fatalf("batch %d row %d: batched %v, single %v", n, r, out[r], want)
			}
		}
	}
}

// TestBatchInferenceAllocFree pins the steady-state batched decision path
// to zero allocations once scratch has grown to the working batch size.
func TestBatchInferenceAllocFree(t *testing.T) {
	m := NewModel(HistoryLen, 8)
	bi := m.NewBatchInference()
	const n = 64
	ws := make([]objective.Weights, n)
	obs := make([][]float64, n)
	for r := 0; r < n; r++ {
		ws[r] = objective.BalancePref
		obs[r] = make([]float64, 3*m.HistoryLen)
	}
	out := make([]float64, n)
	bi.ActBatch(ws, obs, out) // grow scratch
	allocs := testing.AllocsPerRun(100, func() {
		bi.ActBatch(ws, obs, out)
	})
	if allocs != 0 {
		t.Fatalf("ActBatch allocates %v per call", allocs)
	}
}

// TestInferenceConcurrent drives many inferences over one model in parallel
// (meaningful under -race) while a writer holds LockParams for updates.
func TestInferenceConcurrent(t *testing.T) {
	m := NewModel(HistoryLen, 7)
	obs := make([]float64, 3*m.HistoryLen)
	for i := range obs {
		obs[i] = 0.1 * float64(i%7)
	}
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	// Writer: perturbs parameters under the write lock, as online
	// adaptation does.
	go func() {
		defer close(writerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.LockParams()
			for _, p := range m.ActorParams() {
				for j := range p.Value {
					p.Value[j] += 1e-9
				}
			}
			m.UnlockParams()
		}
	}()
	var readers sync.WaitGroup
	for g := 0; g < 8; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			inf := m.NewInference()
			w := objective.UniformObjectives(8, int64(g+1))[g%8]
			for i := 0; i < 300; i++ {
				if v := inf.ActFor(w, obs); v != v { // NaN guard
					t.Errorf("goroutine %d: NaN action", g)
					return
				}
			}
		}(g)
	}
	readers.Wait()
	close(stop)
	<-writerDone
}

// TestSharedPolicySetWeights verifies live retuning changes the policy
// output exactly as if the preference had been bound at construction.
func TestSharedPolicySetWeights(t *testing.T) {
	m := NewModel(HistoryLen, 3)
	obs := make([]float64, 3*m.HistoryLen)
	for i := range obs {
		obs[i] = 0.05 * float64(i%5)
	}
	p := m.SharedPolicyFor(objective.ThroughputPref)
	if got, want := p.Act(obs), m.ActFor(objective.ThroughputPref, obs); got != want {
		t.Fatalf("initial Act = %v, want %v", got, want)
	}
	p.SetWeights(objective.LatencyPref)
	if p.Weights() != objective.LatencyPref {
		t.Fatalf("Weights() = %v after SetWeights", p.Weights())
	}
	if got, want := p.Act(obs), m.ActFor(objective.LatencyPref, obs); got != want {
		t.Fatalf("retuned Act = %v, want %v", got, want)
	}
}

// TestAdapterReleaseDropsPoolEntry covers the unregister path: the last
// release of a preference removes it from the requirement-replay pool.
func TestAdapterReleaseDropsPoolEntry(t *testing.T) {
	m := NewModel(8, 1)
	cfg := DefaultAdaptConfig()
	cfg.Envs = TrainingEnvs(trace.TrainingRanges(), 8)
	a, err := NewAdapter(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := objective.RTCPref
	a.Register(w)
	a.Register(w) // two apps share the preference
	if a.Pool().Refs(w) != 2 {
		t.Fatalf("Refs = %d, want 2", a.Pool().Refs(w))
	}
	if a.Release(w) {
		t.Error("first unregister removed a still-referenced preference")
	}
	if a.Pool().Len() != 1 {
		t.Fatalf("pool lost the entry while one app still holds it")
	}
	if !a.Release(w) {
		t.Error("last unregister did not drop the preference")
	}
	if a.Pool().Len() != 0 {
		t.Fatalf("pool retains unregistered preference: Len = %d", a.Pool().Len())
	}
}
