package core

import (
	"errors"
	"math/rand"

	"mocc/internal/objective"
	"mocc/internal/rl"
)

// AdaptConfig controls online adaptation (§4.3).
type AdaptConfig struct {
	// MaxIters bounds the adaptation loop for one new objective.
	MaxIters int
	// RolloutSteps / EpisodeLen mirror the offline collection settings.
	RolloutSteps int
	EpisodeLen   int
	// Replay enables requirement replay (Equation 6); disabling it
	// reproduces the catastrophic-forgetting ablation of Figure 7b.
	Replay bool
	// Seed drives environment and replay sampling.
	Seed int64
	// PPO carries optimizer hyperparameters. Online adaptation keeps the
	// entropy coefficient at its final (small) value: the offline model
	// already explores near-optimally.
	PPO rl.PPOConfig
	// Envs generates the (new application's) environments.
	Envs rl.EnvFactory
}

// DefaultAdaptConfig returns online-adaptation settings derived from the
// paper: transfer learning from the offline model converges within tens of
// iterations.
func DefaultAdaptConfig() AdaptConfig {
	ppo := rl.DefaultPPOConfig()
	ppo.EntropyInit = 0.1
	ppo.EntropyFinal = 0.01
	ppo.EntropyDecayIters = 100
	return AdaptConfig{
		MaxIters:     200,
		RolloutSteps: 512,
		EpisodeLen:   128,
		Replay:       true,
		Seed:         1,
		PPO:          ppo,
	}
}

// AdaptResult records one adaptation run.
type AdaptResult struct {
	// Curve is the per-iteration mean rollout reward for the new
	// objective (the Figure 7a series).
	Curve []float64
	// ConvergedAt is the iteration reaching 99% of the maximum reward
	// gain (the paper's convergence definition), or -1 if the curve never
	// rises.
	ConvergedAt int
}

// Adapter performs online adaptation of a trained MOCC model: transfer
// learning toward new objectives plus requirement replay so old
// applications are not forgotten.
type Adapter struct {
	Model *Model
	Cfg   AdaptConfig

	ppo     *rl.PPO
	pool    *objective.Pool
	rng     *rand.Rand
	seedCtr int64
}

// NewAdapter wraps a (typically offline-pre-trained) model for online
// adaptation.
func NewAdapter(model *Model, cfg AdaptConfig) (*Adapter, error) {
	if model == nil {
		return nil, errors.New("core: nil model")
	}
	if cfg.Envs == nil {
		return nil, errors.New("core: AdaptConfig.Envs is required")
	}
	if cfg.MaxIters <= 0 || cfg.RolloutSteps <= 0 || cfg.EpisodeLen <= 0 {
		return nil, errors.New("core: MaxIters, RolloutSteps, EpisodeLen must be positive")
	}
	return &Adapter{
		Model:   model,
		Cfg:     cfg,
		ppo:     rl.NewPPO(model, cfg.PPO),
		pool:    objective.NewPool(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		seedCtr: cfg.Seed,
	}, nil
}

// Register records one reference to an application requirement in the
// replay pool (the paper's library Register(w) call feeds this). Each
// Register must eventually be balanced by a Release when the application
// unregisters, or the requirement is rehearsed forever.
func (a *Adapter) Register(w objective.Weights) { a.pool.Add(w) }

// Release drops one reference to a requirement; releasing the last
// reference removes it from the replay pool so adaptation stops spending
// replay rollouts on preferences no live application holds. It reports
// whether the entry was removed.
func (a *Adapter) Release(w objective.Weights) bool { return a.pool.Release(w) }

// Pool exposes the replay pool (read-mostly; used by tests and the public
// library).
func (a *Adapter) Pool() *objective.Pool { return a.pool }

func (a *Adapter) nextSeed() int64 {
	a.seedCtr++
	return a.seedCtr * 1103515245
}

// collectCfg builds the adaptation collection settings.
func (a *Adapter) collectCfg() rl.CollectConfig {
	return rl.CollectConfig{
		Steps:          a.Cfg.RolloutSteps,
		EpisodeLen:     a.Cfg.EpisodeLen,
		IncludeWeights: true,
		MaxAction:      2,
	}
}

// Step performs one online-adaptation PPO iteration for objective w,
// implementing Equation 6: the update jointly optimizes the new objective
// and one uniformly sampled old objective from the pool (when replay is
// enabled and the pool has other entries). It returns the new objective's
// rollout reward.
func (a *Adapter) Step(w objective.Weights) float64 {
	newRo := rl.Collect(a.Model, a.Cfg.Envs, w, a.collectCfg(), a.nextSeed())
	rollouts := []rl.Rollout{newRo}
	if a.Cfg.Replay {
		if old, ok := a.pool.Sample(a.rng, w); ok {
			oldRo := rl.Collect(a.Model, a.Cfg.Envs, old, a.collectCfg(), a.nextSeed())
			rollouts = append(rollouts, oldRo)
		}
	}
	a.ppo.UpdateMulti(rollouts)
	return newRo.MeanReward
}

// Adapt registers w and runs adaptation iterations until MaxIters,
// returning the learning curve and the 99%-gain convergence point.
func (a *Adapter) Adapt(w objective.Weights) AdaptResult {
	res := AdaptResult{ConvergedAt: -1}
	for i := 0; i < a.Cfg.MaxIters; i++ {
		res.Curve = append(res.Curve, a.Step(w))
	}
	a.pool.Add(w) // the new application becomes an old one
	res.ConvergedAt = ConvergenceIndex(res.Curve, 0.99, 5)
	return res
}

// AdaptWithSnapshots behaves like Adapt but additionally snapshots the model
// every snapshotEvery iterations, invoking fn with the iteration number and
// a deep copy. Figure 7b uses this to measure old-application rewards during
// adaptation.
func (a *Adapter) AdaptWithSnapshots(w objective.Weights, snapshotEvery int, fn func(iter int, m *Model)) AdaptResult {
	res := AdaptResult{ConvergedAt: -1}
	for i := 0; i < a.Cfg.MaxIters; i++ {
		res.Curve = append(res.Curve, a.Step(w))
		if snapshotEvery > 0 && (i+1)%snapshotEvery == 0 && fn != nil {
			fn(i+1, a.Model.Clone())
		}
	}
	a.pool.Add(w)
	res.ConvergedAt = ConvergenceIndex(res.Curve, 0.99, 5)
	return res
}

// ConvergenceIndex finds the first iteration whose smoothed reward reaches
// frac of the maximum reward gain over the starting reward (the paper's
// "99% of the maximum reward gain" convergence point for Figure 7a). The
// curve is smoothed with a centered moving average of the given window.
// It returns -1 when the curve is empty or never gains.
func ConvergenceIndex(curve []float64, frac float64, window int) int {
	if len(curve) == 0 {
		return -1
	}
	smooth := movingAverage(curve, window)
	start := smooth[0]
	maxV := start
	for _, v := range smooth {
		if v > maxV {
			maxV = v
		}
	}
	gain := maxV - start
	if gain <= 0 {
		return -1
	}
	threshold := start + frac*gain
	for i, v := range smooth {
		if v >= threshold {
			return i
		}
	}
	return -1
}

// movingAverage computes a centered moving average with the given window.
func movingAverage(xs []float64, window int) []float64 {
	if window <= 1 {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, len(xs))
	half := window / 2
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += xs[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}
