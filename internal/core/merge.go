package core

import (
	"errors"
	"fmt"

	"mocc/internal/nn"
)

// MergeModels averages the parameters of several same-architecture models
// into a fresh model, optionally weighted (nil weights = uniform). This is
// the building block for the model-sharing / federated-learning direction
// the paper sketches in §7: devices train locally and exchange models
// instead of traffic traces. Federated averaging of policy networks is
// lossy (policies are not convex in parameters), so merged models are
// starting points for further adaptation, not drop-in replacements — the
// same caveat applies to FedAvg generally.
func MergeModels(models []*Model, weights []float64) (*Model, error) {
	if len(models) == 0 {
		return nil, errors.New("core: no models to merge")
	}
	if weights != nil && len(weights) != len(models) {
		return nil, fmt.Errorf("core: %d weights for %d models", len(weights), len(models))
	}
	hl := models[0].HistoryLen
	for i, m := range models[1:] {
		if m.HistoryLen != hl {
			return nil, fmt.Errorf("core: model %d has history length %d, want %d", i+1, m.HistoryLen, hl)
		}
	}

	var total float64
	norm := make([]float64, len(models))
	for i := range models {
		w := 1.0
		if weights != nil {
			w = weights[i]
			if w < 0 {
				return nil, fmt.Errorf("core: negative merge weight %v", w)
			}
		}
		norm[i] = w
		total += w
	}
	if total <= 0 {
		return nil, errors.New("core: merge weights sum to zero")
	}
	for i := range norm {
		norm[i] /= total
	}

	out := models[0].Clone()
	outParams := out.AllParams()
	// Zero the accumulator, then add weighted contributions.
	for _, p := range outParams {
		for j := range p.Value {
			p.Value[j] = 0
		}
	}
	for mi, m := range models {
		src := m.AllParams()
		if len(src) != len(outParams) {
			return nil, fmt.Errorf("core: model %d has mismatched parameters", mi)
		}
		for pi, p := range src {
			if len(p.Value) != len(outParams[pi].Value) {
				return nil, fmt.Errorf("core: model %d parameter %q size mismatch", mi, p.Name)
			}
			for j, v := range p.Value {
				outParams[pi].Value[j] += norm[mi] * v
			}
		}
	}
	return out, nil
}

// DistillInto copies src's parameters into dst (same architecture),
// returning an error on mismatch. Convenience wrapper for model-sharing
// workflows where a device adopts a peer's model wholesale.
func DistillInto(dst, src *Model) error {
	return nn.CopyParams(dst.AllParams(), src.AllParams())
}
