package core

import (
	"fmt"
	"testing"

	"mocc/internal/objective"
	"mocc/internal/rl"
)

// benchTrainConfig is a QuickTraining-shaped schedule shrunk to benchmark
// scale: enough iterations that the pipeline fills and the update engine
// reaches steady state, small enough to run under -benchtime defaults.
func benchTrainConfig(workers int, pipelined bool) TrainConfig {
	ppo := rl.DefaultPPOConfig()
	ppo.EntropyInit = 0.03
	ppo.EntropyFinal = 0.002
	ppo.EntropyDecayIters = 20
	return TrainConfig{
		Omega:           3,
		BootstrapIters:  2,
		BootstrapCycles: 1,
		TraverseIters:   1,
		TraverseCycles:  1,
		RolloutSteps:    256,
		EpisodeLen:      64,
		Workers:         workers,
		Pipelined:       pipelined,
		Seed:            1,
		PPO:             ppo,
		Envs:            batchTestFactory,
	}
}

// BenchmarkOfflineTrain measures whole training-loop wall-clock (collection
// + PPO update) across the parallelism matrix: serial baseline, W=4
// data-parallel collection+update, and the same with the pipelined
// collect/update overlap. The ≥2x target needs a ≥4-core machine; on a
// 1-core container the variants must stay flat against serial. steps/s is
// the environment-step throughput (the figure training sweeps are gated on).
func BenchmarkOfflineTrain(b *testing.B) {
	cases := []struct {
		name      string
		workers   int
		pipelined bool
	}{
		{"serial", 1, false},
		{"w4", 4, false},
		{"w4-pipelined", 4, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var iters int
			for i := 0; i < b.N; i++ {
				cfg := benchTrainConfig(c.workers, c.pipelined)
				m := NewModel(4, 1)
				tr, err := NewOfflineTrainer(m, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := tr.Run()
				if err != nil {
					b.Fatal(err)
				}
				iters = res.TotalIters()
			}
			steps := float64(iters) * float64(benchTrainConfig(1, false).RolloutSteps)
			b.ReportMetric(steps*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
			b.ReportMetric(float64(iters)*float64(b.N)/b.Elapsed().Seconds(), "iters/s")
		})
	}
}

// BenchmarkInferenceActFor measures one single-sample actor decision
// (preference head + trunk under one read-lock round trip) — the per-call
// cost the serving engine's coalescing replaces.
func BenchmarkInferenceActFor(b *testing.B) {
	m := NewModel(HistoryLen, 1)
	inf := m.NewInference()
	obs := make([]float64, 3*HistoryLen)
	for i := range obs {
		obs[i] = float64(i%7) * 0.1
	}
	w := batchW
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inf.ActFor(w, obs)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/sample")
}

// BenchmarkBatchInferenceActBatch measures the same decision through the
// batched path at serving batch size: one lock round trip and one
// weight-row traversal per 8 rows instead of per decision. The gap to
// BenchmarkInferenceActFor is the per-report headroom the serving engine
// has to pay its coalescing overhead out of.
func BenchmarkBatchInferenceActBatch(b *testing.B) {
	const batch = 64
	m := NewModel(HistoryLen, 1)
	bi := m.NewBatchInference()
	ws := make([]objective.Weights, batch)
	obs := make([][]float64, batch)
	out := make([]float64, batch)
	for r := range obs {
		ws[r] = batchW
		row := make([]float64, 3*HistoryLen)
		for i := range row {
			row[i] = float64((i+r)%7) * 0.1
		}
		obs[r] = row
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bi.ActBatch(ws, obs, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/sample")
}

// BenchmarkModelPPOUpdateParallel measures one PPO update of the MOCC model
// (preference sub-networks) at several worker counts over a fixed rollout,
// isolating the data-parallel update engine from collection.
func BenchmarkModelPPOUpdateParallel(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			cfg := rl.DefaultPPOConfig()
			cfg.Workers = w
			m := NewModel(4, 1)
			ppo := rl.NewPPO(m, cfg)
			ro := rl.Collect(m, batchTestFactory, batchW,
				rl.CollectConfig{Steps: 512, EpisodeLen: 64, IncludeWeights: true}, 42)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ppo.Update(ro)
			}
		})
	}
}
