package core

import (
	"math/rand"

	"mocc/internal/gym"
	"mocc/internal/rl"
	"mocc/internal/trace"
)

// Table 2 parameter settings.
const (
	// Gamma is the reward discount factor.
	Gamma = 0.99
	// LearningRate is the Adam learning rate.
	LearningRate = 0.001
	// ActionScale is the rate-change damping factor α of Equation 1.
	ActionScale = gym.ActionScale
	// HistoryLen is the statistics history length η.
	HistoryLen = gym.DefaultHistoryLen
	// OmegaDefault is the number of landmark objectives ω (§6.5 finds 36
	// is the sweet spot).
	OmegaDefault = 36
)

// PacketBytes is the MTU-sized packet assumed for Mbps conversions
// throughout the evaluation.
const PacketBytes = 1500

// TrainingEnvs returns an environment factory that samples the Table 3
// training ranges: each seed draws an independent link condition, so
// successive episodes expose the agent to the full training distribution.
// Half the episodes add non-reactive cross traffic (20-60% of capacity) so
// the learned policies neither starve against competitors nor assume they
// own the queue — the same robustness training Orca and Aurora report.
func TrainingEnvs(ranges trace.NetRanges, historyLen int) rl.EnvFactory {
	return func(seed int64) *gym.Env {
		rng := rand.New(rand.NewSource(seed))
		cond := ranges.Sample(rng)
		// Cap the buffer at 6x the bandwidth-delay product: Table 3's raw
		// 3000-packet queues on 1-5 Mbps links take tens of seconds (many
		// hundreds of MIs) to drain, which no finite episode can teach a
		// latency policy to undo. A BDP-relative cap keeps latency
		// consequences observable within an episode while still covering
		// deep-buffer regimes.
		bdp := trace.MbpsToPktsPerSec(cond.BandwidthMbps, PacketBytes) * 2 * cond.LatencyMs / 1000
		if maxQ := int(6 * bdp); cond.QueuePkts > maxQ && maxQ >= 2 {
			cond.QueuePkts = maxQ
		}
		cfg := gym.FromCondition(cond, PacketBytes, rng.Int63())
		cfg.HistoryLen = historyLen
		if rng.Float64() < 0.4 {
			frac := 0.2 + 0.4*rng.Float64()
			crossRate := frac * cfg.Bandwidth.At(0)
			if rng.Float64() < 0.5 {
				cfg.CrossTraffic = trace.Constant(crossRate)
			} else {
				// On/off competitor for burstier dynamics.
				cfg.CrossTraffic = trace.Step{Low: 0, High: crossRate, Period: 1 + 3*rng.Float64()}
			}
		}
		return gym.New(cfg)
	}
}

// FixedEnv returns a factory that always produces the given link condition
// (used by evaluation and the adaptation experiments, where the paper holds
// the network fixed while the objective changes).
func FixedEnv(cond trace.Condition, historyLen int) rl.EnvFactory {
	return func(seed int64) *gym.Env {
		cfg := gym.FromCondition(cond, PacketBytes, seed)
		cfg.HistoryLen = historyLen
		return gym.New(cfg)
	}
}
