package core

import (
	"math"
	"testing"

	"mocc/internal/cc"
	"mocc/internal/gym"
	"mocc/internal/nn"
	"mocc/internal/objective"
	"mocc/internal/rl"
	"mocc/internal/trace"
)

var (
	wThr = objective.Weights{Thr: 0.8, Lat: 0.1, Loss: 0.1}
	wLat = objective.Weights{Thr: 0.1, Lat: 0.8, Loss: 0.1}
)

// fastEnvs is a small, fixed link for quick training tests.
func fastEnvs(historyLen int) rl.EnvFactory {
	return FixedEnv(trace.Condition{
		BandwidthMbps: 12, LatencyMs: 10, QueuePkts: 100, LossRate: 0,
	}, historyLen)
}

func TestModelShapes(t *testing.T) {
	m := NewModel(10, 1)
	if m.ObsSize() != 33 {
		t.Errorf("ObsSize = %d, want 33", m.ObsSize())
	}
	obs := make([]float64, 33)
	mean, std := m.PolicyForward(obs)
	if math.IsNaN(mean) || std <= 0 {
		t.Errorf("bad policy output: %v, %v", mean, std)
	}
	if v := m.ValueForward(obs); math.IsNaN(v) {
		t.Errorf("bad value: %v", v)
	}
}

func TestModelPanicsOnWrongObsSize(t *testing.T) {
	m := NewModel(4, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.PolicyForward(make([]float64, 12)) // missing the 3 weight entries
}

// TestModelGradientCheck validates the full preference-sub-network
// composition (forward + backward) against finite differences, for both the
// actor and critic halves.
func TestModelGradientCheck(t *testing.T) {
	m := NewModel(3, 7)
	obs := []float64{
		0.2, 0.1, -0.3, 0.5, 0.0, 0.7, -0.2, 0.4, 0.1, // network history (3x3)
		0.5, 0.3, 0.2, // weights
	}

	nn.ZeroGrad(m.ActorParams())
	m.PolicyForward(obs)
	m.PolicyBackward(1, 0)
	checkGrads(t, "actor", m.ActorParams(), func() float64 {
		mean, _ := m.PolicyForward(obs)
		return mean
	})

	nn.ZeroGrad(m.CriticParams())
	m.ValueForward(obs)
	m.ValueBackward(1)
	checkGrads(t, "critic", m.CriticParams(), func() float64 {
		return m.ValueForward(obs)
	})
}

func checkGrads(t *testing.T, label string, params []*nn.Param, eval func() float64) {
	t.Helper()
	const eps = 1e-6
	for _, p := range params {
		if p.Name == "logstd" {
			continue // not part of the mean path
		}
		for j := range p.Value {
			orig := p.Value[j]
			p.Value[j] = orig + eps
			up := eval()
			p.Value[j] = orig - eps
			down := eval()
			p.Value[j] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-p.Grad[j]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("%s %s[%d]: numeric %v vs analytic %v", label, p.Name, j, numeric, p.Grad[j])
			}
		}
	}
}

func TestModelPreferenceChangesOutput(t *testing.T) {
	m := NewModel(4, 3)
	netObs := []float64{0.5, 0.2, 0.1, 0.3, 0.1, 0, 0.2, 0.4, -0.1, 0.6, 0.2, 0.05}
	aThr := m.ActFor(wThr, netObs)
	aLat := m.ActFor(wLat, netObs)
	if aThr == aLat {
		t.Error("preference sub-network has no effect on the action")
	}
}

func TestModelCloneAndSnapshot(t *testing.T) {
	m := NewModel(4, 5)
	c := m.Clone()
	netObs := make([]float64, 12)
	if m.ActFor(wThr, netObs) != c.ActFor(wThr, netObs) {
		t.Error("clone differs from original")
	}
	// Mutating the clone must not affect the original.
	c.AllParams()[0].Value[0] += 1
	if m.ActFor(wThr, netObs) == c.ActFor(wThr, netObs) {
		t.Error("clone aliases original parameters")
	}

	snap := m.Snapshot()
	m2 := NewModel(4, 999)
	if err := m2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if m.ActFor(wLat, netObs) != m2.ActFor(wLat, netObs) {
		t.Error("restored model differs")
	}
	// Restoring into a different architecture fails.
	m3 := NewModel(6, 1)
	if err := m3.Restore(snap); err == nil {
		t.Error("expected restore error for mismatched architecture")
	}
}

func TestPolicyForAppendsWeights(t *testing.T) {
	m := NewModel(4, 2)
	netObs := []float64{0.1, 0, 0, 0.2, 0, 0, 0.3, 0, 0, 0.4, 0, 0}
	p := m.PolicyFor(wThr)
	if got, want := p.Act(netObs), m.ActFor(wThr, netObs); got != want {
		t.Errorf("PolicyFor.Act = %v, want %v", got, want)
	}
}

func TestAlgorithmForDrivesEnv(t *testing.T) {
	m := NewModel(10, 2)
	alg := m.AlgorithmFor("", wThr)
	if alg.Name() != "mocc" {
		t.Errorf("default name = %q", alg.Name())
	}
	env := gym.New(gym.Config{
		Bandwidth: trace.Constant(1000), LatencyMs: 20, QueuePkts: 100, Seed: 1,
	})
	ms := cc.Drive(env, alg, 20, 1)
	for i, m := range ms {
		if math.IsNaN(m.SendRate) || m.SendRate <= 0 {
			t.Fatalf("bad rate %v at step %d", m.SendRate, i)
		}
	}
}

func TestTrainerValidation(t *testing.T) {
	cfg := DefaultTrainConfig()
	if _, err := NewOfflineTrainer(nil, cfg); err == nil {
		t.Error("nil model accepted")
	}
	m := NewModel(4, 1)
	if _, err := NewOfflineTrainer(m, cfg); err == nil {
		t.Error("nil Envs accepted")
	}
	cfg.Envs = fastEnvs(4)
	cfg.Omega = 1
	if _, err := NewOfflineTrainer(m, cfg); err == nil {
		t.Error("tiny Omega accepted")
	}
	cfg.Omega = 3
	cfg.RolloutSteps = 0
	if _, err := NewOfflineTrainer(m, cfg); err == nil {
		t.Error("zero rollout steps accepted")
	}
}

// smallTrainConfig returns a fast configuration for end-to-end tests.
func smallTrainConfig(historyLen int) TrainConfig {
	ppo := rl.DefaultPPOConfig()
	ppo.EntropyInit = 0.02
	ppo.EntropyFinal = 0.001
	ppo.EntropyDecayIters = 20
	return TrainConfig{
		Omega:           3,
		BootstrapIters:  4,
		BootstrapCycles: 2,
		TraverseIters:   1,
		TraverseCycles:  1,
		RolloutSteps:    256,
		EpisodeLen:      64,
		Workers:         1,
		Seed:            1,
		PPO:             ppo,
		Envs:            fastEnvs(historyLen),
	}
}

func TestOfflineTrainingImprovesReward(t *testing.T) {
	m := NewModel(4, 1)
	cfg := smallTrainConfig(4)
	trainer, err := NewOfflineTrainer(m, cfg)
	if err != nil {
		t.Fatal(err)
	}

	evalEnv := cfg.Envs(4242)
	before := rl.EvaluateActor(func(obs []float64) float64 {
		return m.ActFor(wThr, obs)
	}, evalEnv, wThr, false, 150)

	res, err := trainer.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantIters := cfg.BootstrapCycles*3*cfg.BootstrapIters + cfg.TraverseCycles*objective.LandmarkCount(objective.StepForOmega(cfg.Omega))*cfg.TraverseIters
	if res.TotalIters() != wantIters {
		t.Errorf("TotalIters = %d, want %d", res.TotalIters(), wantIters)
	}
	if len(res.Curve) != wantIters {
		t.Errorf("curve length = %d, want %d", len(res.Curve), wantIters)
	}

	after := rl.EvaluateActor(func(obs []float64) float64 {
		return m.ActFor(wThr, obs)
	}, evalEnv, wThr, false, 150)
	if after <= before {
		t.Errorf("offline training did not improve reward: %v -> %v", before, after)
	}
}

func TestOfflineTrainingParallelMatchesConfig(t *testing.T) {
	m := NewModel(4, 1)
	cfg := smallTrainConfig(4)
	cfg.Workers = 3
	cfg.BootstrapCycles = 1
	cfg.BootstrapIters = 2
	cfg.TraverseCycles = 0
	trainer, err := NewOfflineTrainer(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := trainer.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BootstrapIters != 6 {
		t.Errorf("bootstrap iters = %d, want 6", res.BootstrapIters)
	}
	for _, p := range m.AllParams() {
		for _, v := range p.Value {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite parameter after parallel training")
			}
		}
	}
}

func TestTrainIndividuallyCountsIterations(t *testing.T) {
	cfg := smallTrainConfig(4)
	total, err := TrainIndividually(cfg, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * objective.LandmarkCount(objective.StepForOmega(cfg.Omega)); total != want {
		t.Errorf("total iters = %d, want %d", total, want)
	}
}

func TestAdapterValidation(t *testing.T) {
	m := NewModel(4, 1)
	cfg := DefaultAdaptConfig()
	if _, err := NewAdapter(nil, cfg); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewAdapter(m, cfg); err == nil {
		t.Error("nil Envs accepted")
	}
	cfg.Envs = fastEnvs(4)
	cfg.MaxIters = 0
	if _, err := NewAdapter(m, cfg); err == nil {
		t.Error("zero MaxIters accepted")
	}
}

func TestAdaptImprovesNewObjective(t *testing.T) {
	// Pre-train briefly on the throughput objective, then adapt to the
	// latency objective; the latency reward should improve.
	m := NewModel(4, 1)
	tcfg := smallTrainConfig(4)
	tcfg.TraverseCycles = 0
	trainer, err := NewOfflineTrainer(m, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.Run(); err != nil {
		t.Fatal(err)
	}

	acfg := DefaultAdaptConfig()
	acfg.Envs = fastEnvs(4)
	acfg.MaxIters = 25
	acfg.RolloutSteps = 256
	acfg.EpisodeLen = 64
	adapter, err := NewAdapter(m, acfg)
	if err != nil {
		t.Fatal(err)
	}
	adapter.Register(wThr)

	res := adapter.Adapt(wLat)
	if len(res.Curve) != acfg.MaxIters {
		t.Fatalf("curve length = %d", len(res.Curve))
	}
	early := (res.Curve[0] + res.Curve[1] + res.Curve[2]) / 3
	n := len(res.Curve)
	late := (res.Curve[n-1] + res.Curve[n-2] + res.Curve[n-3]) / 3
	if late < early-0.02 {
		t.Errorf("adaptation regressed: early %v late %v", early, late)
	}
	if adapter.Pool().Len() != 2 {
		t.Errorf("pool size = %d, want 2 (old + new)", adapter.Pool().Len())
	}
}

func TestAdaptWithSnapshots(t *testing.T) {
	m := NewModel(4, 1)
	cfg := DefaultAdaptConfig()
	cfg.Envs = fastEnvs(4)
	cfg.MaxIters = 8
	cfg.RolloutSteps = 128
	cfg.EpisodeLen = 64
	adapter, err := NewAdapter(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var iters []int
	adapter.AdaptWithSnapshots(wLat, 4, func(iter int, snap *Model) {
		iters = append(iters, iter)
		if snap == adapter.Model {
			t.Error("snapshot aliases live model")
		}
	})
	if len(iters) != 2 || iters[0] != 4 || iters[1] != 8 {
		t.Errorf("snapshot iterations = %v, want [4 8]", iters)
	}
}

func TestReplayUsesPool(t *testing.T) {
	// With replay enabled and a registered old objective, Step must still
	// work and keep parameters finite (the Equation 6 joint update).
	m := NewModel(4, 1)
	cfg := DefaultAdaptConfig()
	cfg.Envs = fastEnvs(4)
	cfg.MaxIters = 4
	cfg.RolloutSteps = 128
	cfg.EpisodeLen = 64
	adapter, err := NewAdapter(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	adapter.Register(wThr)
	adapter.Step(wLat)
	for _, p := range m.AllParams() {
		for _, v := range p.Value {
			if math.IsNaN(v) {
				t.Fatal("NaN parameter after replay step")
			}
		}
	}
}

func TestConvergenceIndex(t *testing.T) {
	// Monotone rise: converges near the plateau.
	curve := []float64{0, 0.5, 0.9, 0.99, 1.0, 1.0, 1.0}
	idx := ConvergenceIndex(curve, 0.99, 1)
	if idx != 3 && idx != 4 {
		t.Errorf("ConvergenceIndex = %d, want 3 or 4", idx)
	}
	// Flat curve: no gain.
	if idx := ConvergenceIndex([]float64{1, 1, 1}, 0.99, 1); idx != -1 {
		t.Errorf("flat curve index = %d, want -1", idx)
	}
	if idx := ConvergenceIndex(nil, 0.99, 1); idx != -1 {
		t.Errorf("empty curve index = %d, want -1", idx)
	}
	// Declining curve: never gains.
	if idx := ConvergenceIndex([]float64{5, 4, 3}, 0.99, 1); idx != -1 {
		t.Errorf("declining curve index = %d, want -1", idx)
	}
}

func TestConvergenceIndexSmoothsNoise(t *testing.T) {
	// A noisy early spike must not count as convergence when smoothing.
	curve := []float64{0, 0.2, 1.0, 0.1, 0.3, 0.5, 0.8, 0.9, 0.95, 0.97, 0.99, 1.0, 1.0, 1.0, 1.0}
	raw := ConvergenceIndex(curve, 0.99, 1)
	smoothed := ConvergenceIndex(curve, 0.99, 5)
	if raw != 2 {
		t.Errorf("raw index = %d, want 2 (the spike)", raw)
	}
	if smoothed <= 2 {
		t.Errorf("smoothed index = %d, should be past the spike", smoothed)
	}
}

func TestTableTwoConstants(t *testing.T) {
	if Gamma != 0.99 {
		t.Errorf("Gamma = %v", Gamma)
	}
	if LearningRate != 0.001 {
		t.Errorf("LearningRate = %v", LearningRate)
	}
	if ActionScale != 0.025 {
		t.Errorf("ActionScale = %v", ActionScale)
	}
	if HistoryLen != 10 {
		t.Errorf("HistoryLen = %v", HistoryLen)
	}
	if OmegaDefault != 36 {
		t.Errorf("OmegaDefault = %v", OmegaDefault)
	}
}

func TestTrainingEnvsSamplesRanges(t *testing.T) {
	factory := TrainingEnvs(trace.TrainingRanges(), 4)
	seen := map[float64]bool{}
	for seed := int64(0); seed < 10; seed++ {
		env := factory(seed)
		bw := env.Config().Bandwidth.At(0)
		seen[bw] = true
		mbps := trace.PktsPerSecToMbps(bw, PacketBytes)
		if mbps < 1-1e-9 || mbps > 5+1e-9 {
			t.Errorf("sampled bandwidth %v Mbps outside training range", mbps)
		}
	}
	if len(seen) < 5 {
		t.Error("environment sampling not diverse across seeds")
	}
}
