package core

import (
	"fmt"

	"mocc/internal/nn"
	"mocc/internal/objective"
)

// Inference is a goroutine-private deployment view of a Model: it shares
// the model's parameters (taking the read side of the model's parameter
// lock per evaluation) but owns every scratch buffer, so N applications on
// N cores evaluate one model concurrently without contending on anything
// except that uncontended read lock. Results are bit-identical to
// Model.ActFor.
//
// An Inference is not itself safe for concurrent use — create one per
// goroutine (they are a few KB each).
type Inference struct {
	model      *Model
	actorPref  *nn.Evaluator
	actorTrunk *nn.Evaluator
	wBuf       [WeightDim]float64
	joint      []float64 // [3η + PrefFeatures] trunk input assembly
}

// NewInference builds a private inference view of the actor half-network.
func (m *Model) NewInference() *Inference {
	return &Inference{
		model:      m,
		actorPref:  m.actorPref.NewEvaluator(),
		actorTrunk: m.actorTrunk.NewEvaluator(),
		joint:      make([]float64, 3*m.HistoryLen+PrefFeatures),
	}
}

// ActFor returns the deterministic action for a network-history observation
// under preference w, exactly like Model.ActFor but safe to call from many
// goroutines at once (each on its own Inference).
func (inf *Inference) ActFor(w objective.Weights, netObs []float64) float64 {
	netDim := 3 * inf.model.HistoryLen
	if len(netObs) != netDim {
		panic(fmt.Sprintf("core: network observation length %d, want %d", len(netObs), netDim))
	}
	inf.wBuf[0], inf.wBuf[1], inf.wBuf[2] = w.Thr, w.Lat, w.Loss
	copy(inf.joint[:netDim], netObs)

	inf.model.RLockParams()
	feat := inf.actorPref.Forward(inf.wBuf[:])
	for i, v := range feat {
		inf.joint[netDim+i] = nn.FastTanh(v)
	}
	out := inf.actorTrunk.Forward(inf.joint)[0]
	inf.model.RUnlockParams()
	return out
}

// BatchInference is a goroutine-private batched deployment view of a Model:
// one call evaluates many (preference, observation) pairs through the
// batched kernels, taking the read side of the parameter lock once per
// batch instead of once per decision. Every output is bit-identical to
// Inference.ActFor on the same pair — batching amortizes weight-row
// traversal across rows without changing any row's accumulation order —
// so a serving engine may coalesce concurrent requests freely.
//
// A BatchInference is not safe for concurrent use — create one per shard.
type BatchInference struct {
	model      *Model
	actorPref  *nn.Evaluator
	actorTrunk *nn.Evaluator
	wBuf       []float64 // [n x WeightDim] preference rows
	joint      []float64 // [n x (3η + PrefFeatures)] trunk input assembly
}

// NewBatchInference builds a private batched inference view of the actor
// half-network. Scratch grows to the largest batch evaluated and is reused,
// so steady-state batches allocate nothing.
func (m *Model) NewBatchInference() *BatchInference {
	return &BatchInference{
		model:      m,
		actorPref:  m.actorPref.NewEvaluator(),
		actorTrunk: m.actorTrunk.NewEvaluator(),
	}
}

// ActBatch evaluates len(ws) (preference, observation) pairs and writes the
// deterministic action for row r into out[r]. obs rows must each be one
// 3η network-history observation; ws, obs, and out must have equal length.
func (bi *BatchInference) ActBatch(ws []objective.Weights, obs [][]float64, out []float64) {
	n := len(ws)
	if len(obs) != n || len(out) != n {
		panic(fmt.Sprintf("core: ActBatch rows ws=%d obs=%d out=%d", n, len(obs), len(out)))
	}
	if n == 0 {
		return
	}
	netDim := 3 * bi.model.HistoryLen
	jointDim := netDim + PrefFeatures
	bi.wBuf = nn.Grow(bi.wBuf, n*WeightDim)
	bi.joint = nn.Grow(bi.joint, n*jointDim)
	for r, w := range ws {
		if len(obs[r]) != netDim {
			panic(fmt.Sprintf("core: network observation length %d, want %d", len(obs[r]), netDim))
		}
		bi.wBuf[r*WeightDim+0] = w.Thr
		bi.wBuf[r*WeightDim+1] = w.Lat
		bi.wBuf[r*WeightDim+2] = w.Loss
		copy(bi.joint[r*jointDim:r*jointDim+netDim], obs[r])
	}

	bi.model.RLockParams()
	feat := bi.actorPref.ForwardBatch(bi.wBuf[:n*WeightDim], n)
	for r := 0; r < n; r++ {
		row := bi.joint[r*jointDim : (r+1)*jointDim]
		for i, v := range feat[r*PrefFeatures : (r+1)*PrefFeatures] {
			row[netDim+i] = nn.FastTanh(v)
		}
	}
	acts := bi.actorTrunk.ForwardBatch(bi.joint[:n*jointDim], n)
	bi.model.RUnlockParams()
	copy(out, acts[:n])
}

// SharedPolicy is a live-retunable cc.Policy over a shared model: Act
// evaluates the current parameters through a private Inference, and
// SetWeights swaps the preference vector between decisions without touching
// any other controller state — the preference sub-network makes weight
// changes free at inference time, so a running application retunes without
// re-registration.
//
// A SharedPolicy is not itself safe for concurrent use (its host serializes
// Act against SetWeights — the public library does this per application
// handle), but any number of SharedPolicies evaluate one model in parallel.
type SharedPolicy struct {
	inf *Inference
	w   objective.Weights
}

// SharedPolicyFor returns a retunable policy for preference w backed by a
// private inference view.
func (m *Model) SharedPolicyFor(w objective.Weights) *SharedPolicy {
	return &SharedPolicy{inf: m.NewInference(), w: w}
}

// Act implements cc.Policy.
func (p *SharedPolicy) Act(obs []float64) float64 { return p.inf.ActFor(p.w, obs) }

// SetWeights swaps the preference used by subsequent Act calls.
func (p *SharedPolicy) SetWeights(w objective.Weights) { p.w = w }

// Weights returns the currently applied preference.
func (p *SharedPolicy) Weights() objective.Weights { return p.w }
