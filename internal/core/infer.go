package core

import (
	"fmt"

	"mocc/internal/nn"
	"mocc/internal/objective"
)

// Inference is a goroutine-private deployment view of a Model: it shares
// the model's parameters (taking the read side of the model's parameter
// lock per evaluation) but owns every scratch buffer, so N applications on
// N cores evaluate one model concurrently without contending on anything
// except that uncontended read lock. Results are bit-identical to
// Model.ActFor.
//
// An Inference is not itself safe for concurrent use — create one per
// goroutine (they are a few KB each).
type Inference struct {
	model      *Model
	actorPref  *nn.Evaluator
	actorTrunk *nn.Evaluator
	wBuf       [WeightDim]float64
	joint      []float64 // [3η + PrefFeatures] trunk input assembly
}

// NewInference builds a private inference view of the actor half-network.
func (m *Model) NewInference() *Inference {
	return &Inference{
		model:      m,
		actorPref:  m.actorPref.NewEvaluator(),
		actorTrunk: m.actorTrunk.NewEvaluator(),
		joint:      make([]float64, 3*m.HistoryLen+PrefFeatures),
	}
}

// ActFor returns the deterministic action for a network-history observation
// under preference w, exactly like Model.ActFor but safe to call from many
// goroutines at once (each on its own Inference).
func (inf *Inference) ActFor(w objective.Weights, netObs []float64) float64 {
	netDim := 3 * inf.model.HistoryLen
	if len(netObs) != netDim {
		panic(fmt.Sprintf("core: network observation length %d, want %d", len(netObs), netDim))
	}
	inf.wBuf[0], inf.wBuf[1], inf.wBuf[2] = w.Thr, w.Lat, w.Loss
	copy(inf.joint[:netDim], netObs)

	inf.model.RLockParams()
	feat := inf.actorPref.Forward(inf.wBuf[:])
	for i, v := range feat {
		inf.joint[netDim+i] = nn.FastTanh(v)
	}
	out := inf.actorTrunk.Forward(inf.joint)[0]
	inf.model.RUnlockParams()
	return out
}

// SharedPolicy is a live-retunable cc.Policy over a shared model: Act
// evaluates the current parameters through a private Inference, and
// SetWeights swaps the preference vector between decisions without touching
// any other controller state — the preference sub-network makes weight
// changes free at inference time, so a running application retunes without
// re-registration.
//
// A SharedPolicy is not itself safe for concurrent use (its host serializes
// Act against SetWeights — the public library does this per application
// handle), but any number of SharedPolicies evaluate one model in parallel.
type SharedPolicy struct {
	inf *Inference
	w   objective.Weights
}

// SharedPolicyFor returns a retunable policy for preference w backed by a
// private inference view.
func (m *Model) SharedPolicyFor(w objective.Weights) *SharedPolicy {
	return &SharedPolicy{inf: m.NewInference(), w: w}
}

// Act implements cc.Policy.
func (p *SharedPolicy) Act(obs []float64) float64 { return p.inf.ActFor(p.w, obs) }

// SetWeights swaps the preference used by subsequent Act calls.
func (p *SharedPolicy) SetWeights(w objective.Weights) { p.w = w }

// Weights returns the currently applied preference.
func (p *SharedPolicy) Weights() objective.Weights { return p.w }
