package core

import (
	"math"
	"testing"

	"mocc/internal/rl"
)

// parallelTrainConfig is a small two-phase schedule exercising both phases.
func parallelTrainConfig(workers int, pipelined bool) TrainConfig {
	ppo := rl.DefaultPPOConfig()
	ppo.EntropyInit = 0.03
	ppo.EntropyFinal = 0.002
	ppo.EntropyDecayIters = 20
	return TrainConfig{
		Omega:           3,
		BootstrapIters:  1,
		BootstrapCycles: 1,
		TraverseIters:   1,
		TraverseCycles:  1,
		RolloutSteps:    96,
		EpisodeLen:      32,
		Workers:         workers,
		Pipelined:       pipelined,
		Seed:            11,
		PPO:             ppo,
		Envs:            batchTestFactory,
	}
}

// runTrainer trains a fresh model under cfg and returns it with the result.
func runTrainer(t *testing.T, cfg TrainConfig, noOverlap bool) (*Model, *OfflineResult) {
	t.Helper()
	m := NewModel(4, 5)
	tr, err := NewOfflineTrainer(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.noOverlap = noOverlap
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

// assertModelsBitIdentical fails unless both models' parameters match bit
// for bit.
func assertModelsBitIdentical(t *testing.T, a, b *Model, label string) {
	t.Helper()
	pa, pb := a.AllParams(), b.AllParams()
	for i := range pa {
		for j := range pa[i].Value {
			if pa[i].Value[j] != pb[i].Value[j] {
				t.Fatalf("%s: %s[%d] differs: %v vs %v",
					label, pa[i].Name, j, pa[i].Value[j], pb[i].Value[j])
			}
		}
	}
}

// TestPipelinedOverlapEquivalence is the pipelined trainer's load-bearing
// property: running the pipelined schedule WITH background collection must
// produce bit-identical parameters and training curve to the same schedule
// executed without any concurrency — the overlap changes wall-clock only,
// never results.
func TestPipelinedOverlapEquivalence(t *testing.T) {
	for _, workers := range []int{1, 3} {
		cfg := parallelTrainConfig(workers, true)
		mOverlap, resOverlap := runTrainer(t, cfg, false)
		mSerial, resSerial := runTrainer(t, cfg, true)
		assertModelsBitIdentical(t, mOverlap, mSerial, "overlap vs no-overlap")
		if len(resOverlap.Curve) != len(resSerial.Curve) {
			t.Fatalf("curve lengths differ: %d vs %d", len(resOverlap.Curve), len(resSerial.Curve))
		}
		for i := range resOverlap.Curve {
			if resOverlap.Curve[i] != resSerial.Curve[i] {
				t.Fatalf("curve[%d] differs: %+v vs %+v",
					i, resOverlap.Curve[i], resSerial.Curve[i])
			}
		}
	}
}

// TestPipelinedDeterministic: two identically configured pipelined runs are
// bitwise identical (fixed seed, fixed worker count).
func TestPipelinedDeterministic(t *testing.T) {
	cfg := parallelTrainConfig(3, true)
	a, _ := runTrainer(t, cfg, false)
	b, _ := runTrainer(t, cfg, false)
	assertModelsBitIdentical(t, a, b, "repeat pipelined runs")
}

// TestParallelTrainingDeterministic: the W=4 data-parallel update engine on
// the MOCC model (preference sub-networks) is bitwise reproducible, and the
// non-pipelined W=1 path stays bit-identical to the plain serial trainer.
func TestParallelTrainingDeterministic(t *testing.T) {
	cfg := parallelTrainConfig(4, false)
	a, resA := runTrainer(t, cfg, false)
	b, resB := runTrainer(t, cfg, false)
	assertModelsBitIdentical(t, a, b, "repeat W=4 runs")
	if resA.TotalIters() != resB.TotalIters() {
		t.Fatalf("iteration counts differ: %d vs %d", resA.TotalIters(), resB.TotalIters())
	}
}

// TestPipelinedCompletesSchedule checks the pipelined loop performs exactly
// the configured iteration count and produces finite parameters and rewards.
func TestPipelinedCompletesSchedule(t *testing.T) {
	cfg := parallelTrainConfig(2, true)
	cfg.BootstrapIters = 2
	m, res := runTrainer(t, cfg, false)
	want := cfg.BootstrapCycles * 3 * cfg.BootstrapIters // 3 bootstrap objectives
	if res.BootstrapIters != want {
		t.Errorf("bootstrap iters = %d, want %d", res.BootstrapIters, want)
	}
	if res.TraverseIters == 0 {
		t.Error("traverse phase did not run")
	}
	if want := res.TotalIters() * cfg.RolloutSteps; res.EnvSteps != want {
		t.Errorf("EnvSteps = %d, want %d (fan-out must split the budget exactly)",
			res.EnvSteps, want)
	}
	for _, p := range res.Curve {
		if math.IsNaN(p.Reward) {
			t.Fatal("NaN reward in curve")
		}
	}
	for _, p := range m.AllParams() {
		for _, v := range p.Value {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite parameter after pipelined training")
			}
		}
	}
}

// TestProgressMilestonesEmptyCycles: cycle-completion lines must still be
// emitted (once each, in order) when a cycle contributes zero iterations,
// matching the pre-plan-based trainer's output.
func TestProgressMilestonesEmptyCycles(t *testing.T) {
	cfg := parallelTrainConfig(1, false)
	cfg.BootstrapIters = 0
	cfg.BootstrapCycles = 2
	cfg.TraverseCycles = 1
	var lines []string
	cfg.Progress = func(s string) { lines = append(lines, s) }
	tr, err := NewOfflineTrainer(NewModel(4, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"bootstrap: 2 cycles x 3 objectives x 0 iters",
		"bootstrap cycle 1/2 done",
		"bootstrap cycle 2/2 done",
		"fast traverse: 1 cycles x 3 objectives x 1 iters",
		"traverse cycle 1/1 done",
	}
	if len(lines) != len(want) {
		t.Fatalf("progress lines = %q, want %q", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("progress[%d] = %q, want %q", i, lines[i], want[i])
		}
	}
}

// TestModelTrainingReplica pins the replica contract on the MOCC model:
// every parameter (preference sub-networks, trunks, logStd) shares values
// with the master while gradients stay private.
func TestModelTrainingReplica(t *testing.T) {
	master := NewModel(4, 2)
	rep := master.TrainingReplica().(*Model)
	mp, rp := master.AllParams(), rep.AllParams()
	if len(mp) != len(rp) {
		t.Fatalf("param count %d vs %d", len(mp), len(rp))
	}
	for i := range mp {
		if &mp[i].Value[0] != &rp[i].Value[0] {
			t.Fatalf("param %s: replica does not share values", mp[i].Name)
		}
		if &mp[i].Grad[0] == &rp[i].Grad[0] {
			t.Fatalf("param %s: replica shares gradients", mp[i].Name)
		}
	}

	// Batched forward through the replica matches the master bitwise.
	obsDim := master.ObsSize()
	const n = 3
	obs := make([]float64, n*obsDim)
	for i := range obs {
		obs[i] = float64(i%7)*0.1 - 0.3
	}
	wantM, wantStd := master.PolicyForwardBatch(obs, n)
	wantCopy := append([]float64(nil), wantM...)
	gotM, gotStd := rep.PolicyForwardBatch(obs, n)
	if wantStd != gotStd {
		t.Fatalf("std %v vs %v", wantStd, gotStd)
	}
	for i := range wantCopy {
		if wantCopy[i] != gotM[i] {
			t.Fatalf("mean[%d]: master %v vs replica %v", i, wantCopy[i], gotM[i])
		}
	}
}

// TestMakeTasksFanout pins the Workers fan-out semantics: the task count is
// bounded by full episodes in the budget, steps split the budget exactly,
// and every task draws its own seed.
func TestMakeTasksFanout(t *testing.T) {
	cases := []struct {
		rollout, episode, workers int
		wantTasks                 []int // per-task steps
	}{
		{256, 64, 4, []int{64, 64, 64, 64}}, // even split
		{256, 64, 3, []int{86, 85, 85}},     // remainder to early tasks
		{64, 64, 4, []int{64}},              // one episode: one task
		{100, 64, 4, []int{100}},            // budget < 2 episodes: one task
		{128, 64, 4, []int{64, 64}},         // two episodes: two tasks
		{32, 64, 4, []int{32}},              // budget below one episode
	}
	for _, c := range cases {
		cfg := parallelTrainConfig(c.workers, false)
		cfg.RolloutSteps = c.rollout
		cfg.EpisodeLen = c.episode
		tr, err := NewOfflineTrainer(NewModel(4, 1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		tasks := tr.makeTasks(batchW)
		if len(tasks) != len(c.wantTasks) {
			t.Fatalf("rollout=%d episode=%d workers=%d: %d tasks, want %d",
				c.rollout, c.episode, c.workers, len(tasks), len(c.wantTasks))
		}
		total := 0
		seeds := map[int64]bool{}
		for i, task := range tasks {
			if task.Steps != c.wantTasks[i] {
				t.Errorf("rollout=%d workers=%d task %d: steps %d, want %d",
					c.rollout, c.workers, i, task.Steps, c.wantTasks[i])
			}
			total += task.Steps
			seeds[task.Seed] = true
		}
		if total != c.rollout {
			t.Errorf("rollout=%d workers=%d: total steps %d != budget", c.rollout, c.workers, total)
		}
		if len(seeds) != len(tasks) {
			t.Errorf("rollout=%d workers=%d: duplicate task seeds", c.rollout, c.workers)
		}
	}
}
