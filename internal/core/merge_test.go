package core

import (
	"math"
	"testing"
)

func TestMergeModelsUniform(t *testing.T) {
	a := NewModel(4, 1)
	b := NewModel(4, 2)
	merged, err := MergeModels([]*Model{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every merged parameter is the arithmetic mean.
	ap, bp, mp := a.AllParams(), b.AllParams(), merged.AllParams()
	for i := range mp {
		for j := range mp[i].Value {
			want := (ap[i].Value[j] + bp[i].Value[j]) / 2
			if math.Abs(mp[i].Value[j]-want) > 1e-12 {
				t.Fatalf("param %s[%d] = %v, want %v", mp[i].Name, j, mp[i].Value[j], want)
			}
		}
	}
}

func TestMergeModelsWeighted(t *testing.T) {
	a := NewModel(4, 1)
	b := NewModel(4, 2)
	// Weight 3:1 toward a.
	merged, err := MergeModels([]*Model{a, b}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	ap, bp, mp := a.AllParams(), b.AllParams(), merged.AllParams()
	for i := range mp {
		for j := range mp[i].Value {
			want := 0.75*ap[i].Value[j] + 0.25*bp[i].Value[j]
			if math.Abs(mp[i].Value[j]-want) > 1e-12 {
				t.Fatalf("weighted merge wrong at %s[%d]", mp[i].Name, j)
			}
		}
	}
}

func TestMergeModelsSingleIsClone(t *testing.T) {
	a := NewModel(4, 7)
	merged, err := MergeModels([]*Model{a}, nil)
	if err != nil {
		t.Fatal(err)
	}
	netObs := make([]float64, 12)
	if merged.ActFor(wThr, netObs) != a.ActFor(wThr, netObs) {
		t.Error("single-model merge differs from source")
	}
	// And is independent storage.
	merged.AllParams()[0].Value[0] += 1
	if merged.ActFor(wThr, netObs) == a.ActFor(wThr, netObs) {
		t.Error("merged model aliases source parameters")
	}
}

func TestMergeModelsErrors(t *testing.T) {
	a := NewModel(4, 1)
	b := NewModel(6, 1) // different architecture
	if _, err := MergeModels(nil, nil); err == nil {
		t.Error("empty merge accepted")
	}
	if _, err := MergeModels([]*Model{a, b}, nil); err == nil {
		t.Error("mismatched architectures accepted")
	}
	if _, err := MergeModels([]*Model{a}, []float64{1, 2}); err == nil {
		t.Error("wrong weight count accepted")
	}
	if _, err := MergeModels([]*Model{a}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := MergeModels([]*Model{a}, []float64{0}); err == nil {
		t.Error("zero-sum weights accepted")
	}
}

func TestDistillInto(t *testing.T) {
	src := NewModel(4, 3)
	dst := NewModel(4, 99)
	if err := DistillInto(dst, src); err != nil {
		t.Fatal(err)
	}
	netObs := make([]float64, 12)
	if dst.ActFor(wLat, netObs) != src.ActFor(wLat, netObs) {
		t.Error("distilled model differs")
	}
	other := NewModel(6, 1)
	if err := DistillInto(other, src); err == nil {
		t.Error("mismatched distill accepted")
	}
}
