package core

import (
	"math"
	"math/rand"
	"testing"

	"mocc/internal/gym"
	"mocc/internal/objective"
	"mocc/internal/rl"
	"mocc/internal/trace"
)

// batchTestFactory mirrors the rl package's test link.
func batchTestFactory(seed int64) *gym.Env {
	return gym.New(gym.Config{
		Bandwidth:  trace.Constant(1000),
		LatencyMs:  20,
		QueuePkts:  100,
		HistoryLen: 4,
		Seed:       seed,
	})
}

var batchW = objective.Weights{Thr: 0.8, Lat: 0.1, Loss: 0.1}

// serialModel hides the Model's batched kernels so PPO exercises the
// per-sample fallback path.
type serialModel struct{ rl.ActorCritic }

// TestModelBatchMatchesSingle compares the preference-sub-network batched
// forward against per-row single-sample evaluation.
func TestModelBatchMatchesSingle(t *testing.T) {
	m := NewModel(4, 9)
	const n = 6
	obsDim := m.ObsSize()
	rng := rand.New(rand.NewSource(10))
	obs := make([]float64, n*obsDim)
	for i := range obs {
		obs[i] = rng.Float64() - 0.5
	}

	means, std := m.PolicyForwardBatch(obs, n)
	meansCopy := append([]float64(nil), means...)
	vs := m.ValueForwardBatch(obs, n)
	vsCopy := append([]float64(nil), vs...)

	for r := 0; r < n; r++ {
		row := obs[r*obsDim : (r+1)*obsDim]
		m1, s1 := m.PolicyForward(row)
		if math.Abs(m1-meansCopy[r]) > 1e-9 || s1 != std {
			t.Errorf("row %d: batched policy (%v, %v) vs single (%v, %v)",
				r, meansCopy[r], std, m1, s1)
		}
		if v1 := m.ValueForward(row); math.Abs(v1-vsCopy[r]) > 1e-9 {
			t.Errorf("row %d: batched value %v vs single %v", r, vsCopy[r], v1)
		}
	}
}

// TestModelBatchedPPOMatchesSerial runs full PPO iterations on the MOCC
// model through the batched and per-sample paths and requires identical
// parameters within 1e-9.
func TestModelBatchedPPOMatchesSerial(t *testing.T) {
	cfg := rl.DefaultPPOConfig()
	collectCfg := rl.CollectConfig{Steps: 96, EpisodeLen: 32, IncludeWeights: true}

	mBatched := NewModel(4, 13)
	mSerial := NewModel(4, 13)
	ppoBatched := rl.NewPPO(mBatched, cfg)
	ppoSerial := rl.NewPPO(serialModel{mSerial}, cfg)

	for iter := 0; iter < 2; iter++ {
		seed := int64(300 + iter)
		roB := rl.Collect(mBatched, batchTestFactory, batchW, collectCfg, seed)
		roS := rl.Collect(mSerial, batchTestFactory, batchW, collectCfg, seed)
		ppoBatched.Update(roB)
		ppoSerial.Update(roS)
	}

	pa, pb := mBatched.AllParams(), mSerial.AllParams()
	for i := range pa {
		for j := range pa[i].Value {
			if d := math.Abs(pa[i].Value[j] - pb[i].Value[j]); d > 1e-9 {
				t.Fatalf("param %s[%d] diverges by %v after batched vs serial PPO",
					pa[i].Name, j, d)
			}
		}
	}
}

// TestModelBatchedTrainingDeterministic: a short offline training shard
// through the batched engine is bitwise-reproducible for a fixed seed.
func TestModelBatchedTrainingDeterministic(t *testing.T) {
	run := func() *Model {
		m := NewModel(4, 3)
		cfg := TrainConfig{
			Omega:           6,
			BootstrapIters:  1,
			BootstrapCycles: 1,
			TraverseIters:   0,
			TraverseCycles:  0,
			RolloutSteps:    64,
			EpisodeLen:      32,
			Workers:         1,
			Seed:            2,
			PPO:             rl.DefaultPPOConfig(),
			Envs:            batchTestFactory,
		}
		tr, err := NewOfflineTrainer(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Run(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	pa, pb := a.AllParams(), b.AllParams()
	for i := range pa {
		for j := range pa[i].Value {
			if pa[i].Value[j] != pb[i].Value[j] {
				t.Fatalf("offline training not bitwise deterministic: %s[%d]",
					pa[i].Name, j)
			}
		}
	}
}
