package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestAddToKernel checks the reduce kernel against a naive loop across every
// tail-length class of the unrolled assembly.
func TestAddToKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 33; n++ {
		dst := make([]float64, n)
		src := make([]float64, n)
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			dst[i] = rng.NormFloat64()
			src[i] = rng.NormFloat64()
			want[i] = dst[i] + src[i]
		}
		addTo(dst, src)
		for i := 0; i < n; i++ {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: addTo[%d] = %v, want %v", n, i, dst[i], want[i])
			}
		}
	}
}

// TestAccumulateInto checks the parameter-level reduction and its shape
// validation.
func TestAccumulateInto(t *testing.T) {
	mk := func(sizes ...int) []*Param {
		ps := make([]*Param, len(sizes))
		for i, n := range sizes {
			ps[i] = newParam("p", n)
		}
		return ps
	}
	dst, src := mk(5, 3), mk(5, 3)
	for i := range src {
		for j := range src[i].Grad {
			src[i].Grad[j] = float64(i*10 + j)
			dst[i].Grad[j] = 1
		}
	}
	if err := AccumulateInto(dst, src); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		for j := range dst[i].Grad {
			if want := 1 + float64(i*10+j); dst[i].Grad[j] != want {
				t.Fatalf("dst[%d].Grad[%d] = %v, want %v", i, j, dst[i].Grad[j], want)
			}
		}
	}
	if err := AccumulateInto(mk(5), mk(5, 3)); err == nil {
		t.Fatal("expected count mismatch error")
	}
	if err := AccumulateInto(mk(5, 4), mk(5, 3)); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

// TestMLPReplica pins the replica contract: shared values (a master weight
// write is visible through the replica), private gradients, and bit-identical
// forward/backward against the master network.
func TestMLPReplica(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	master := NewMLP(rng, 6, 16, 8, 1)
	rep := master.Replica()

	mp, rp := master.Params(), rep.Params()
	if len(mp) != len(rp) {
		t.Fatalf("param count %d vs %d", len(mp), len(rp))
	}
	for i := range mp {
		if &mp[i].Value[0] != &rp[i].Value[0] {
			t.Fatalf("param %d: replica does not share master values", i)
		}
		if &mp[i].Grad[0] == &rp[i].Grad[0] {
			t.Fatalf("param %d: replica shares master gradients", i)
		}
	}

	const n = 5
	x := make([]float64, n*6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	gOut := make([]float64, n)
	for i := range gOut {
		gOut[i] = rng.NormFloat64()
	}

	ym := append([]float64(nil), master.ForwardBatch(x, n)...)
	yr := append([]float64(nil), rep.ForwardBatch(x, n)...)
	for i := range ym {
		if ym[i] != yr[i] {
			t.Fatalf("forward[%d]: master %v vs replica %v", i, ym[i], yr[i])
		}
	}

	ZeroGrad(mp)
	ZeroGrad(rp)
	master.BackwardBatch(gOut, n)
	rep.BackwardBatch(gOut, n)
	for i := range mp {
		for j := range mp[i].Grad {
			if mp[i].Grad[j] != rp[i].Grad[j] {
				t.Fatalf("grad %s[%d]: master %v vs replica %v",
					mp[i].Name, j, mp[i].Grad[j], rp[i].Grad[j])
			}
		}
	}

	// A master parameter write must be visible through the replica.
	mp[0].Value[0] += 0.5
	out1 := append([]float64(nil), master.ForwardBatch(x, n)...)
	out2 := rep.ForwardBatch(x, n)
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("after master write, forward[%d] diverges: %v vs %v", i, out1[i], out2[i])
		}
	}
	if math.IsNaN(out1[0]) {
		t.Fatal("non-finite forward output")
	}
}
