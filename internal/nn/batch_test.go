package nn

import (
	"math"
	"math/rand"
	"testing"
)

// randBatch fills a deterministic [rows x dim] matrix.
func randBatch(seed int64, rows, dim int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, rows*dim)
	for i := range x {
		x[i] = rng.Float64()*4 - 2
	}
	return x
}

// TestForwardBatchMatchesSingle: a batched forward over n rows must equal n
// single-sample forwards within 1e-9 (they are in fact bitwise identical).
func TestForwardBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := NewMLP(rng, 5, 8, 4, 2)
	const n = 9
	x := randBatch(22, n, 5)

	got := append([]float64(nil), m.ForwardBatch(x, n)...)
	for r := 0; r < n; r++ {
		y := m.Forward(x[r*5 : (r+1)*5])
		for o := range y {
			if math.Abs(y[o]-got[r*2+o]) > 1e-9 {
				t.Fatalf("row %d out %d: batched %v vs single %v", r, o, got[r*2+o], y[o])
			}
		}
	}
}

// TestBackwardBatchMatchesSingle: one batched backward must accumulate the
// same parameter gradients and return the same input gradients as looping
// the single-sample path over the rows.
func TestBackwardBatchMatchesSingle(t *testing.T) {
	rngA := rand.New(rand.NewSource(31))
	rngB := rand.New(rand.NewSource(31))
	a := NewMLP(rngA, 6, 10, 3)
	b := NewMLP(rngB, 6, 10, 3)

	const n = 8
	x := randBatch(32, n, 6)
	g := randBatch(33, n, 3)

	ZeroGrad(a.Params())
	a.ForwardBatch(x, n)
	gradIn := append([]float64(nil), a.BackwardBatch(g, n)...)

	ZeroGrad(b.Params())
	for r := 0; r < n; r++ {
		b.Forward(x[r*6 : (r+1)*6])
		gi := b.Backward(g[r*3 : (r+1)*3])
		for i := range gi {
			if math.Abs(gi[i]-gradIn[r*6+i]) > 1e-9 {
				t.Fatalf("row %d input grad %d: batched %v vs single %v",
					r, i, gradIn[r*6+i], gi[i])
			}
		}
	}

	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].Grad {
			if d := math.Abs(pa[i].Grad[j] - pb[i].Grad[j]); d > 1e-9 {
				t.Fatalf("param %s[%d]: batched grad %v vs accumulated single %v",
					pa[i].Name, j, pa[i].Grad[j], pb[i].Grad[j])
			}
		}
	}
}

// TestBatchGradientCheck validates the batched backward pass directly
// against central finite differences on a summed loss over the batch.
func TestBatchGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := NewMLP(rng, 3, 5, 2)
	const n = 4
	x := randBatch(42, n, 3)

	loss := func() float64 {
		y := m.ForwardBatch(x, n)
		s := 0.0
		for _, v := range y {
			s += v
		}
		return s
	}

	ZeroGrad(m.Params())
	y := m.ForwardBatch(x, n)
	g := make([]float64, len(y))
	for i := range g {
		g[i] = 1
	}
	m.BackwardBatch(g, n)

	const eps = 1e-6
	for _, p := range m.Params() {
		for j := range p.Value {
			orig := p.Value[j]
			p.Value[j] = orig + eps
			up := loss()
			p.Value[j] = orig - eps
			down := loss()
			p.Value[j] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-p.Grad[j]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("param %s[%d]: numeric %v vs analytic %v", p.Name, j, numeric, p.Grad[j])
			}
		}
	}
}

// TestBatchForwardZeroAllocs pins the tentpole's steady-state guarantee:
// after a warm-up call sizes the scratch arenas, batched forward and
// forward+backward perform zero allocations.
func TestBatchForwardZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	m := NewMLP(rng, 40, 64, 32, 2)
	const n = 64
	x := randBatch(52, n, 40)
	g := randBatch(53, n, 2)

	m.ForwardBatch(x, n)
	m.BackwardBatch(g, n)

	if allocs := testing.AllocsPerRun(50, func() { m.ForwardBatch(x, n) }); allocs != 0 {
		t.Errorf("ForwardBatch allocates %v times per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		m.ForwardBatch(x, n)
		m.BackwardBatch(g, n)
	}); allocs != 0 {
		t.Errorf("ForwardBatch+BackwardBatch allocates %v times per op, want 0", allocs)
	}
	// The batch-of-1 wrappers share the same arenas.
	if allocs := testing.AllocsPerRun(50, func() { m.Forward(x[:40]) }); allocs != 0 {
		t.Errorf("single-sample Forward allocates %v times per op, want 0", allocs)
	}
}

// TestBatchSizeChangeReusesArena exercises shrinking and regrowing batches
// through the same network.
func TestBatchSizeChangeReusesArena(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	m := NewMLP(rng, 4, 6, 2)
	for _, n := range []int{8, 1, 5, 8, 3} {
		x := randBatch(int64(70+n), n, 4)
		y := m.ForwardBatch(x, n)
		if len(y) != n*2 {
			t.Fatalf("batch %d: output len %d, want %d", n, len(y), n*2)
		}
		g := make([]float64, n*2)
		gi := m.BackwardBatch(g, n)
		if len(gi) != n*4 {
			t.Fatalf("batch %d: input grad len %d, want %d", n, len(gi), n*4)
		}
	}
}

// TestBackwardBatchMismatchPanics: backward with a different row count than
// the cached forward must panic rather than corrupt gradients.
func TestBackwardBatchMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	m := NewMLP(rng, 3, 2)
	m.ForwardBatch(randBatch(82, 4, 3), 4)
	assertPanics(t, func() { m.BackwardBatch(make([]float64, 2*2), 2) })
}

// TestGaussianVecHelpersMatchScalar ties the vectorized log-prob/grad
// helpers to their scalar counterparts.
func TestGaussianVecHelpersMatchScalar(t *testing.T) {
	a := []float64{0.5, -1.2, 0, 2.4}
	mean := []float64{0.1, -1, 0.3, 2.5}
	const std = 0.7

	lp := make([]float64, len(a))
	GaussianLogProbVec(lp, a, mean, std)
	dm := make([]float64, len(a))
	ds := make([]float64, len(a))
	GaussianLogProbGradVec(dm, ds, a, mean, std)

	for k := range a {
		if want := GaussianLogProb(a[k], mean[k], std); math.Abs(lp[k]-want) > 1e-12 {
			t.Errorf("logprob[%d] = %v, want %v", k, lp[k], want)
		}
		wm, ws := GaussianLogProbGrad(a[k], mean[k], std)
		if math.Abs(dm[k]-wm) > 1e-12 || math.Abs(ds[k]-ws) > 1e-12 {
			t.Errorf("grad[%d] = (%v, %v), want (%v, %v)", k, dm[k], ds[k], wm, ws)
		}
	}
}
