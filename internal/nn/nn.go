// Package nn is a small, dependency-free neural-network library sufficient
// to reproduce the MOCC model: fully connected layers with tanh activations,
// manual reverse-mode differentiation, an Adam optimizer, a diagonal-Gaussian
// policy head, and JSON model serialization.
//
// The library is built around batched, allocation-free kernels: every layer
// processes row-major [batch x dim] matrices through ForwardBatch and
// BackwardBatch, holding all intermediate activations and gradients in
// reusable per-layer scratch arenas, so the steady-state training hot path
// performs zero allocations. The single-sample Forward/Backward API is kept
// as a thin batch-of-1 wrapper for the congestion-control deployment path.
//
// Returned slices alias layer-owned scratch buffers and are valid until the
// next Forward/Backward call on the same network; callers that need to
// retain results must copy them.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Param is a flat tensor of trainable values together with its accumulated
// gradient. Layers expose their parameters as []*Param so optimizers can
// treat a whole network uniformly.
type Param struct {
	Name  string
	Value []float64
	Grad  []float64
}

// newParam allocates a named parameter of n values.
func newParam(name string, n int) *Param {
	return &Param{Name: name, Value: make([]float64, n), Grad: make([]float64, n)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	clear(p.Grad)
}

// Grow returns buf resized to n entries, reusing its backing array when the
// capacity suffices. Contents are unspecified; callers overwrite them. It is
// the scratch-arena primitive shared by the batched kernels and their
// callers (rl, core).
func Grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// Layer is a differentiable computation stage over row-major [batch x dim]
// matrices. ForwardBatch caches whatever state BackwardBatch needs;
// BackwardBatch consumes the gradient of the loss with respect to the layer
// output and returns the gradient with respect to the input, accumulating
// parameter gradients along the way. The single-sample Forward/Backward
// methods are batch-of-1 conveniences.
type Layer interface {
	Forward(x []float64) []float64
	Backward(gradOut []float64) []float64
	// ForwardBatch evaluates n rows at once; x is row-major [n x InSize].
	// The returned [n x OutSize] matrix aliases layer scratch.
	ForwardBatch(x []float64, n int) []float64
	// BackwardBatch backpropagates the row-major [n x OutSize] output
	// gradient of the most recent ForwardBatch, returning the [n x InSize]
	// input gradient (aliasing layer scratch).
	BackwardBatch(gradOut []float64, n int) []float64
	Params() []*Param
	OutSize() int
	InSize() int
}

// Linear is a fully connected layer: y = Wx + b, with W stored row-major
// (out x in).
type Linear struct {
	In, Out int
	W       *Param
	B       *Param

	lastIn []float64 // cached [batch x In] input from ForwardBatch
	out    []float64 // scratch [batch x Out] activations
	gradIn []float64 // scratch [batch x In] input gradients
	batch  int       // rows cached by the most recent ForwardBatch
}

// NewLinear creates a Linear layer with Xavier/Glorot-uniform initialized
// weights drawn from rng and zero biases.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		In:  in,
		Out: out,
		W:   newParam(fmt.Sprintf("linear_%dx%d_w", out, in), in*out),
		B:   newParam(fmt.Sprintf("linear_%dx%d_b", out, in), out),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range l.W.Value {
		l.W.Value[i] = (rng.Float64()*2 - 1) * limit
	}
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(x []float64) []float64 {
	return l.ForwardBatch(x, 1)
}

// ForwardBatch implements Layer.
func (l *Linear) ForwardBatch(x []float64, n int) []float64 {
	if len(x) != n*l.In {
		panic(fmt.Sprintf("nn: Linear input size %d, want %d rows x %d", len(x), n, l.In))
	}
	l.lastIn = Grow(l.lastIn, n*l.In)
	copy(l.lastIn, x)
	l.out = Grow(l.out, n*l.Out)
	l.batch = n
	// One kernel pass per weight row computes that output unit for the
	// whole batch, four rows at a time: the weight row stays hot in
	// registers/L1, and the four independent accumulator chains keep the
	// FP pipeline full (SSE2-vectorized on amd64; see kernels_amd64.s).
	in, out := l.In, l.Out
	for o := 0; o < out; o++ {
		dotRowBatch(l.W.Value[o*in:(o+1)*in], l.lastIn, l.out, n, in, out, o, l.B.Value[o])
	}
	return l.out
}

// Backward implements Layer. It accumulates dL/dW and dL/db and returns
// dL/dx for the cached input.
func (l *Linear) Backward(gradOut []float64) []float64 {
	return l.BackwardBatch(gradOut, 1)
}

// BackwardBatch implements Layer.
func (l *Linear) BackwardBatch(gradOut []float64, n int) []float64 {
	if len(gradOut) != n*l.Out {
		panic(fmt.Sprintf("nn: Linear grad size %d, want %d rows x %d", len(gradOut), n, l.Out))
	}
	if n != l.batch {
		panic(fmt.Sprintf("nn: Linear backward batch %d, but forward cached %d rows", n, l.batch))
	}
	l.gradIn = Grow(l.gradIn, n*l.In)
	in, out := l.In, l.Out

	// The naive fused loop performs one store per multiply-accumulate and
	// is store-port bound. Split into two passes that block the batch so
	// each store covers several accumulated products.

	// Pass 1: bias and weight gradients, 4 batch rows per accumulation
	// pass so each store covers four products.
	for o := 0; o < out; o++ {
		growRow := l.W.Grad[o*in : (o+1)*in]
		r := 0
		for ; r+3 < n; r += 4 {
			g0 := gradOut[(r+0)*out+o]
			g1 := gradOut[(r+1)*out+o]
			g2 := gradOut[(r+2)*out+o]
			g3 := gradOut[(r+3)*out+o]
			l.B.Grad[o] += g0 + g1 + g2 + g3
			axpy4(growRow,
				l.lastIn[(r+0)*in:(r+1)*in], l.lastIn[(r+1)*in:(r+2)*in],
				l.lastIn[(r+2)*in:(r+3)*in], l.lastIn[(r+3)*in:(r+4)*in],
				g0, g1, g2, g3)
		}
		for ; r < n; r++ {
			g := gradOut[r*out+o]
			l.B.Grad[o] += g
			xr := l.lastIn[r*in : (r+1)*in]
			for i := range growRow {
				growRow[i] += g * xr[i]
			}
		}
	}

	// Pass 2: input gradients gradIn = gradOut x W, 4 weight rows per
	// accumulation pass.
	clear(l.gradIn)
	for r := 0; r < n; r++ {
		gr := gradOut[r*out : (r+1)*out]
		gir := l.gradIn[r*in : (r+1)*in]
		o := 0
		for ; o+3 < out; o += 4 {
			axpy4(gir,
				l.W.Value[(o+0)*in:(o+1)*in], l.W.Value[(o+1)*in:(o+2)*in],
				l.W.Value[(o+2)*in:(o+3)*in], l.W.Value[(o+3)*in:(o+4)*in],
				gr[o], gr[o+1], gr[o+2], gr[o+3])
		}
		for ; o < out; o++ {
			g := gr[o]
			row := l.W.Value[o*in : (o+1)*in]
			for i := range gir {
				gir[i] += g * row[i]
			}
		}
	}
	return l.gradIn
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// OutSize implements Layer.
func (l *Linear) OutSize() int { return l.Out }

// InSize implements Layer.
func (l *Linear) InSize() int { return l.In }

// fastTanh tables: cubic Hermite interpolation of tanh on [-tanhMax,
// tanhMax] with tanhN intervals, exact values and derivatives at the nodes
// (a node falls exactly on 0, so fastTanh(0) == 0). Maximum absolute error
// is ~2e-11 — far below every training tolerance — while evaluating in a
// handful of pipelined multiplies instead of math.Tanh's exp-based path.
// |x| >= tanhMax returns ±1 (1-tanh(16) ≈ 3e-14). The signed domain avoids
// Abs/Copysign sign plumbing in the hot loop.
const (
	tanhN   = 4096
	tanhMax = 16.0
)

var tanhCoef = func() *[tanhN * 4]float64 {
	var c [tanhN * 4]float64
	const dx = 2 * tanhMax / tanhN
	for j := 0; j < tanhN; j++ {
		x0 := -tanhMax + float64(j)*dx
		y0, y1 := math.Tanh(x0), math.Tanh(x0+dx)
		d0 := (1 - y0*y0) * dx
		d1 := (1 - y1*y1) * dx
		c[j*4+0] = y0
		c[j*4+1] = d0
		c[j*4+2] = 3*(y1-y0) - 2*d0 - d1
		c[j*4+3] = 2*(y0-y1) + d0 + d1
	}
	return &c
}()

// fastTanh evaluates the interpolant; fastTanh(0) == 0 exactly and NaN
// propagates like math.Tanh.
func fastTanh(x float64) float64 {
	t := (x + tanhMax) * (tanhN / (2 * tanhMax))
	if !(t > 0) {
		if math.IsNaN(x) {
			return x
		}
		return -1
	}
	if t >= tanhN {
		return 1
	}
	j := int(t)
	u := t - float64(j)
	c := tanhCoef[j*4 : j*4+4 : j*4+4]
	return c[0] + u*(c[1]+u*(c[2]+u*c[3]))
}

// Tanh is an element-wise tanh activation layer.
type Tanh struct {
	size    int
	lastOut []float64 // cached [batch x size] outputs
	gradIn  []float64 // scratch [batch x size] input gradients
	batch   int
}

// NewTanh creates a tanh activation over vectors of the given size.
func NewTanh(size int) *Tanh { return &Tanh{size: size} }

// Forward implements Layer.
func (t *Tanh) Forward(x []float64) []float64 {
	return t.ForwardBatch(x, 1)
}

// ForwardBatch implements Layer.
func (t *Tanh) ForwardBatch(x []float64, n int) []float64 {
	if len(x) != n*t.size {
		panic(fmt.Sprintf("nn: Tanh input size %d, want %d rows x %d", len(x), n, t.size))
	}
	t.lastOut = Grow(t.lastOut, n*t.size)
	t.batch = n
	for i, v := range x {
		t.lastOut[i] = fastTanh(v)
	}
	return t.lastOut
}

// Backward implements Layer.
func (t *Tanh) Backward(gradOut []float64) []float64 {
	return t.BackwardBatch(gradOut, 1)
}

// BackwardBatch implements Layer.
func (t *Tanh) BackwardBatch(gradOut []float64, n int) []float64 {
	if len(gradOut) != n*t.size {
		panic(fmt.Sprintf("nn: Tanh grad size %d, want %d rows x %d", len(gradOut), n, t.size))
	}
	if n != t.batch {
		panic(fmt.Sprintf("nn: Tanh backward batch %d, but forward cached %d rows", n, t.batch))
	}
	t.gradIn = Grow(t.gradIn, n*t.size)
	for i, g := range gradOut {
		y := t.lastOut[i]
		t.gradIn[i] = g * (1 - y*y)
	}
	return t.gradIn
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// OutSize implements Layer.
func (t *Tanh) OutSize() int { return t.size }

// InSize implements Layer.
func (t *Tanh) InSize() int { return t.size }

// MLP chains layers into a feed-forward network.
type MLP struct {
	Layers []Layer
}

// NewMLP builds a tanh MLP with the given layer sizes; sizes[0] is the input
// dimension and sizes[len-1] the (linear) output dimension. Hidden layers
// use tanh activations, matching the paper's architecture (§5).
func NewMLP(rng *rand.Rand, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least input and output sizes")
	}
	var layers []Layer
	for i := 0; i < len(sizes)-1; i++ {
		layers = append(layers, NewLinear(sizes[i], sizes[i+1], rng))
		if i < len(sizes)-2 {
			layers = append(layers, NewTanh(sizes[i+1]))
		}
	}
	return &MLP{Layers: layers}
}

// Forward implements Layer.
func (m *MLP) Forward(x []float64) []float64 {
	return m.ForwardBatch(x, 1)
}

// ForwardBatch implements Layer. Intermediate activations live in each
// layer's scratch arena, so steady-state evaluation allocates nothing.
func (m *MLP) ForwardBatch(x []float64, n int) []float64 {
	for _, l := range m.Layers {
		x = l.ForwardBatch(x, n)
	}
	return x
}

// Backward implements Layer.
func (m *MLP) Backward(gradOut []float64) []float64 {
	return m.BackwardBatch(gradOut, 1)
}

// BackwardBatch implements Layer.
func (m *MLP) BackwardBatch(gradOut []float64, n int) []float64 {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		gradOut = m.Layers[i].BackwardBatch(gradOut, n)
	}
	return gradOut
}

// Params implements Layer.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutSize implements Layer.
func (m *MLP) OutSize() int { return m.Layers[len(m.Layers)-1].OutSize() }

// InSize implements Layer.
func (m *MLP) InSize() int { return m.Layers[0].InSize() }

// ZeroGrad clears the gradients of every parameter in the network.
func ZeroGrad(ps []*Param) {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// CopyParams copies parameter values (not gradients) from src to dst. The
// two networks must have identical shapes.
func CopyParams(dst, src []*Param) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: parameter count mismatch %d vs %d", len(dst), len(src))
	}
	for i := range dst {
		if len(dst[i].Value) != len(src[i].Value) {
			return fmt.Errorf("nn: parameter %d size mismatch %d vs %d",
				i, len(dst[i].Value), len(src[i].Value))
		}
		copy(dst[i].Value, src[i].Value)
	}
	return nil
}

// ClipGradNorm rescales all gradients so their global L2 norm does not
// exceed maxNorm; it returns the pre-clip norm.
func ClipGradNorm(ps []*Param, maxNorm float64) float64 {
	var sumSq float64
	for _, p := range ps {
		for _, g := range p.Grad {
			sumSq += g * g
		}
	}
	norm := math.Sqrt(sumSq)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range ps {
			for i := range p.Grad {
				p.Grad[i] *= scale
			}
		}
	}
	return norm
}

// NumParams counts the scalar parameters in ps.
func NumParams(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += len(p.Value)
	}
	return n
}
