// Package nn is a small, dependency-free neural-network library sufficient
// to reproduce the MOCC model: fully connected layers with tanh activations,
// manual reverse-mode differentiation, an Adam optimizer, a diagonal-Gaussian
// policy head, and JSON model serialization.
//
// The library processes one sample at a time and accumulates gradients
// across a minibatch; for the 64x32 networks the paper uses (§5) this is
// both simple and fast.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Param is a flat tensor of trainable values together with its accumulated
// gradient. Layers expose their parameters as []*Param so optimizers can
// treat a whole network uniformly.
type Param struct {
	Name  string
	Value []float64
	Grad  []float64
}

// newParam allocates a named parameter of n values.
func newParam(name string, n int) *Param {
	return &Param{Name: name, Value: make([]float64, n), Grad: make([]float64, n)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// Layer is a differentiable computation stage. Forward caches whatever state
// Backward needs; Backward consumes the gradient of the loss with respect to
// the layer output and returns the gradient with respect to the input,
// accumulating parameter gradients along the way.
type Layer interface {
	Forward(x []float64) []float64
	Backward(gradOut []float64) []float64
	Params() []*Param
	OutSize() int
	InSize() int
}

// Linear is a fully connected layer: y = Wx + b, with W stored row-major
// (out x in).
type Linear struct {
	In, Out int
	W       *Param
	B       *Param

	lastIn []float64 // cached input from Forward
}

// NewLinear creates a Linear layer with Xavier/Glorot-uniform initialized
// weights drawn from rng and zero biases.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		In:  in,
		Out: out,
		W:   newParam(fmt.Sprintf("linear_%dx%d_w", out, in), in*out),
		B:   newParam(fmt.Sprintf("linear_%dx%d_b", out, in), out),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range l.W.Value {
		l.W.Value[i] = (rng.Float64()*2 - 1) * limit
	}
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(x []float64) []float64 {
	if len(x) != l.In {
		panic(fmt.Sprintf("nn: Linear input size %d, want %d", len(x), l.In))
	}
	l.lastIn = append(l.lastIn[:0], x...)
	y := make([]float64, l.Out)
	for o := 0; o < l.Out; o++ {
		sum := l.B.Value[o]
		row := l.W.Value[o*l.In : (o+1)*l.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		y[o] = sum
	}
	return y
}

// Backward implements Layer. It accumulates dL/dW and dL/db and returns
// dL/dx for the cached input.
func (l *Linear) Backward(gradOut []float64) []float64 {
	if len(gradOut) != l.Out {
		panic(fmt.Sprintf("nn: Linear grad size %d, want %d", len(gradOut), l.Out))
	}
	gradIn := make([]float64, l.In)
	for o, g := range gradOut {
		l.B.Grad[o] += g
		row := l.W.Value[o*l.In : (o+1)*l.In]
		growRow := l.W.Grad[o*l.In : (o+1)*l.In]
		for i := 0; i < l.In; i++ {
			growRow[i] += g * l.lastIn[i]
			gradIn[i] += g * row[i]
		}
	}
	return gradIn
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// OutSize implements Layer.
func (l *Linear) OutSize() int { return l.Out }

// InSize implements Layer.
func (l *Linear) InSize() int { return l.In }

// Tanh is an element-wise tanh activation layer.
type Tanh struct {
	size    int
	lastOut []float64
}

// NewTanh creates a tanh activation over vectors of the given size.
func NewTanh(size int) *Tanh { return &Tanh{size: size} }

// Forward implements Layer.
func (t *Tanh) Forward(x []float64) []float64 {
	if len(x) != t.size {
		panic(fmt.Sprintf("nn: Tanh input size %d, want %d", len(x), t.size))
	}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Tanh(v)
	}
	t.lastOut = y
	return y
}

// Backward implements Layer.
func (t *Tanh) Backward(gradOut []float64) []float64 {
	gradIn := make([]float64, len(gradOut))
	for i, g := range gradOut {
		y := t.lastOut[i]
		gradIn[i] = g * (1 - y*y)
	}
	return gradIn
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// OutSize implements Layer.
func (t *Tanh) OutSize() int { return t.size }

// InSize implements Layer.
func (t *Tanh) InSize() int { return t.size }

// MLP chains layers into a feed-forward network.
type MLP struct {
	Layers []Layer
}

// NewMLP builds a tanh MLP with the given layer sizes; sizes[0] is the input
// dimension and sizes[len-1] the (linear) output dimension. Hidden layers
// use tanh activations, matching the paper's architecture (§5).
func NewMLP(rng *rand.Rand, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least input and output sizes")
	}
	var layers []Layer
	for i := 0; i < len(sizes)-1; i++ {
		layers = append(layers, NewLinear(sizes[i], sizes[i+1], rng))
		if i < len(sizes)-2 {
			layers = append(layers, NewTanh(sizes[i+1]))
		}
	}
	return &MLP{Layers: layers}
}

// Forward implements Layer.
func (m *MLP) Forward(x []float64) []float64 {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (m *MLP) Backward(gradOut []float64) []float64 {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		gradOut = m.Layers[i].Backward(gradOut)
	}
	return gradOut
}

// Params implements Layer.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutSize implements Layer.
func (m *MLP) OutSize() int { return m.Layers[len(m.Layers)-1].OutSize() }

// InSize implements Layer.
func (m *MLP) InSize() int { return m.Layers[0].InSize() }

// ZeroGrad clears the gradients of every parameter in the network.
func ZeroGrad(ps []*Param) {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// CopyParams copies parameter values (not gradients) from src to dst. The
// two networks must have identical shapes.
func CopyParams(dst, src []*Param) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: parameter count mismatch %d vs %d", len(dst), len(src))
	}
	for i := range dst {
		if len(dst[i].Value) != len(src[i].Value) {
			return fmt.Errorf("nn: parameter %d size mismatch %d vs %d",
				i, len(dst[i].Value), len(src[i].Value))
		}
		copy(dst[i].Value, src[i].Value)
	}
	return nil
}

// ClipGradNorm rescales all gradients so their global L2 norm does not
// exceed maxNorm; it returns the pre-clip norm.
func ClipGradNorm(ps []*Param, maxNorm float64) float64 {
	var sumSq float64
	for _, p := range ps {
		for _, g := range p.Grad {
			sumSq += g * g
		}
	}
	norm := math.Sqrt(sumSq)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range ps {
			for i := range p.Grad {
				p.Grad[i] *= scale
			}
		}
	}
	return norm
}

// NumParams counts the scalar parameters in ps.
func NumParams(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += len(p.Value)
	}
	return n
}
