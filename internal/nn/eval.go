package nn

import "fmt"

// FastTanh exposes the table-driven tanh interpolant used by the Tanh layer
// (max abs error ~2e-11 vs math.Tanh) so forward-only callers outside the
// package evaluate activations bit-identically to the training path.
func FastTanh(x float64) float64 { return fastTanh(x) }

// Evaluator is a forward-only view of an MLP: it references the network's
// parameters but owns every evaluation buffer, so any number of Evaluators
// over the same MLP may run concurrently with each other. Parameter *writes*
// (training, adaptation) still need external synchronization against all
// Evaluators reading them.
//
// Evaluation is bit-identical to MLP.Forward: both paths run the same
// dotRowBatch kernel per output unit and the same fastTanh activation.
type Evaluator struct {
	steps  []evalStep
	maxDim int       // widest layer, per batch row
	a, b   []float64 // ping-pong activation buffers
}

// evalStep is one layer of the evaluation pipeline: a Linear reference or,
// when linear is nil, an element-wise tanh of the given width.
type evalStep struct {
	linear *Linear
	size   int
}

// NewEvaluator builds a concurrent-safe forward view of the network. It
// panics on layer types other than Linear and Tanh (the only layers NewMLP
// produces).
func (m *MLP) NewEvaluator() *Evaluator {
	e := &Evaluator{}
	maxDim := 1
	for _, l := range m.Layers {
		switch t := l.(type) {
		case *Linear:
			e.steps = append(e.steps, evalStep{linear: t})
		case *Tanh:
			e.steps = append(e.steps, evalStep{size: t.size})
		default:
			panic(fmt.Sprintf("nn: Evaluator cannot wrap layer type %T", l))
		}
		if l.OutSize() > maxDim {
			maxDim = l.OutSize()
		}
	}
	e.maxDim = maxDim
	e.a = make([]float64, maxDim)
	e.b = make([]float64, maxDim)
	return e
}

// Forward evaluates one input vector. The returned slice aliases evaluator
// scratch and is valid until the next Forward on the same Evaluator; the
// input is never written.
func (e *Evaluator) Forward(x []float64) []float64 {
	cur := x
	out, next := e.a, e.b
	for _, s := range e.steps {
		if l := s.linear; l != nil {
			if len(cur) != l.In {
				panic(fmt.Sprintf("nn: Evaluator input size %d, want %d", len(cur), l.In))
			}
			dst := out[:l.Out]
			for o := 0; o < l.Out; o++ {
				dotRowBatch(l.W.Value[o*l.In:(o+1)*l.In], cur, dst, 1, l.In, l.Out, o, l.B.Value[o])
			}
			cur = dst
		} else {
			dst := out[:s.size]
			for i, v := range cur {
				dst[i] = fastTanh(v)
			}
			cur = dst
		}
		out, next = next, out
	}
	return cur
}

// ForwardBatch evaluates n input vectors packed row-major in x
// (len(x) must be n times the network's input width) and returns the
// n outputs row-major. The returned slice aliases evaluator scratch and is
// valid until the next Forward/ForwardBatch on the same Evaluator; the
// input is never written. Scratch grows to the largest batch seen and is
// reused, so steady-state calls allocate nothing.
//
// Every output row is bit-identical to Forward on the same input row:
// batching changes how many rows share a pass over each weight row, never
// the per-row accumulation order (linearBatchSame).
func (e *Evaluator) ForwardBatch(x []float64, n int) []float64 {
	if n <= 0 {
		panic(fmt.Sprintf("nn: Evaluator batch size %d", n))
	}
	e.a = Grow(e.a, n*e.maxDim)
	e.b = Grow(e.b, n*e.maxDim)
	cur := x
	out, next := e.a, e.b
	for _, s := range e.steps {
		if l := s.linear; l != nil {
			if len(cur) != n*l.In {
				panic(fmt.Sprintf("nn: Evaluator batch input size %d, want %d", len(cur), n*l.In))
			}
			dst := out[:n*l.Out]
			linearBatchSame(l.W.Value, l.B.Value, cur, dst, n, l.In, l.Out)
			cur = dst
		} else {
			dst := out[:n*s.size]
			for i, v := range cur {
				dst[i] = fastTanh(v)
			}
			cur = dst
		}
		out, next = next, out
	}
	return cur
}
