//go:build amd64

package nn

// SSE2 microkernel declarations; implementations in kernels_amd64.s. SSE2
// is part of the amd64 baseline, so no runtime feature detection is needed.

//go:noescape
func dotRowBatchAsm(w, x, y *float64, n, in, out, o int, bias float64)

//go:noescape
func axpy4Asm(dst, a0, a1, a2, a3 *float64, g0, g1, g2, g3 float64, m int)

//go:noescape
func addToAsm(dst, src *float64, n int)

// dotRowBatch computes y[r*out+o] = bias + dot(w, x[r*in:(r+1)*in]) for
// every batch row r.
func dotRowBatch(w, x, y []float64, n, in, out, o int, bias float64) {
	dotRowBatchAsm(&w[0], &x[0], &y[0], n, in, out, o, bias)
}

// axpy4 accumulates four scaled rows into dst in one pass.
func axpy4(dst, a0, a1, a2, a3 []float64, g0, g1, g2, g3 float64) {
	axpy4Asm(&dst[0], &a0[0], &a1[0], &a2[0], &a3[0], g0, g1, g2, g3, len(dst))
}

// addTo accumulates src into dst element-wise (dst[i] += src[i]), the
// gradient-reduction kernel of the data-parallel PPO update. The slices
// must have equal length (the asm iterates len(dst) over both bases).
func addTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic("nn: addTo length mismatch")
	}
	if len(dst) == 0 {
		return
	}
	addToAsm(&dst[0], &src[0], len(dst))
}
