//go:build amd64

package nn

// SSE2 microkernel declarations; implementations in kernels_amd64.s. SSE2
// is part of the amd64 baseline, so no runtime feature detection is needed.

//go:noescape
func dotRowBatchAsm(w, x, y *float64, n, in, out, o int, bias float64)

//go:noescape
func axpy4Asm(dst, a0, a1, a2, a3 *float64, g0, g1, g2, g3 float64, m int)

//go:noescape
func addToAsm(dst, src *float64, n int)

// dotRowBatch computes y[r*out+o] = bias + dot(w, x[r*in:(r+1)*in]) for
// every batch row r.
func dotRowBatch(w, x, y []float64, n, in, out, o int, bias float64) {
	dotRowBatchAsm(&w[0], &x[0], &y[0], n, in, out, o, bias)
}

// linearBatchSame computes one full Linear layer over n batch rows
// (y[r*out+o] = b[o] + dot(w[o*in:], x[r*in:])) with the guarantee that
// every row is accumulated in the exact floating-point order of the n=1
// path, so batched evaluation is bit-identical to per-sample evaluation.
// The SSE2 kernel above cannot make that promise: its 4-row blocks sum two
// interleaved lanes and fold them at the end, which rounds differently from
// the scalar tail it uses for n=1.
//
// Loop order is row-block-outer / output-neuron-inner: an 8-row block of
// input activations (a few KB) stays cache-resident while every weight row
// streams through it exactly once per block. The transposed order (one
// output neuron across all n rows) re-streams the whole n-row activation
// block once per output neuron — out/8 times the memory traffic, which at
// serving batch sizes puts the kernel memory-bound instead of
// throughput-bound. The 8 rows give eight independent dependency chains;
// each row is still accumulated scalar-sequentially from zero with the
// bias added last — the same order as the SSE2 kernel's scalar tail — so
// the blocking and the loop order change throughput, never rounding.
func linearBatchSame(w, b, x, y []float64, n, in, out int) {
	r := 0
	for ; r+7 < n; r += 8 {
		x0 := x[(r+0)*in : (r+1)*in]
		x1 := x[(r+1)*in : (r+2)*in]
		x2 := x[(r+2)*in : (r+3)*in]
		x3 := x[(r+3)*in : (r+4)*in]
		x4 := x[(r+4)*in : (r+5)*in]
		x5 := x[(r+5)*in : (r+6)*in]
		x6 := x[(r+6)*in : (r+7)*in]
		x7 := x[(r+7)*in : (r+8)*in]
		for o := 0; o < out; o++ {
			wo := w[o*in : (o+1)*in]
			var s0, s1, s2, s3, s4, s5, s6, s7 float64
			for i, wi := range wo {
				s0 += wi * x0[i]
				s1 += wi * x1[i]
				s2 += wi * x2[i]
				s3 += wi * x3[i]
				s4 += wi * x4[i]
				s5 += wi * x5[i]
				s6 += wi * x6[i]
				s7 += wi * x7[i]
			}
			bias := b[o]
			y[(r+0)*out+o] = s0 + bias
			y[(r+1)*out+o] = s1 + bias
			y[(r+2)*out+o] = s2 + bias
			y[(r+3)*out+o] = s3 + bias
			y[(r+4)*out+o] = s4 + bias
			y[(r+5)*out+o] = s5 + bias
			y[(r+6)*out+o] = s6 + bias
			y[(r+7)*out+o] = s7 + bias
		}
	}
	for ; r+3 < n; r += 4 {
		x0 := x[(r+0)*in : (r+1)*in]
		x1 := x[(r+1)*in : (r+2)*in]
		x2 := x[(r+2)*in : (r+3)*in]
		x3 := x[(r+3)*in : (r+4)*in]
		for o := 0; o < out; o++ {
			wo := w[o*in : (o+1)*in]
			var s0, s1, s2, s3 float64
			for i, wi := range wo {
				s0 += wi * x0[i]
				s1 += wi * x1[i]
				s2 += wi * x2[i]
				s3 += wi * x3[i]
			}
			bias := b[o]
			y[(r+0)*out+o] = s0 + bias
			y[(r+1)*out+o] = s1 + bias
			y[(r+2)*out+o] = s2 + bias
			y[(r+3)*out+o] = s3 + bias
		}
	}
	for ; r < n; r++ {
		xr := x[r*in : (r+1)*in]
		for o := 0; o < out; o++ {
			wo := w[o*in : (o+1)*in]
			var sum float64
			for i, wi := range wo {
				sum += wi * xr[i]
			}
			y[r*out+o] = sum + b[o]
		}
	}
}

// axpy4 accumulates four scaled rows into dst in one pass.
func axpy4(dst, a0, a1, a2, a3 []float64, g0, g1, g2, g3 float64) {
	axpy4Asm(&dst[0], &a0[0], &a1[0], &a2[0], &a3[0], g0, g1, g2, g3, len(dst))
}

// addTo accumulates src into dst element-wise (dst[i] += src[i]), the
// gradient-reduction kernel of the data-parallel PPO update. The slices
// must have equal length (the asm iterates len(dst) over both bases).
func addTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic("nn: addTo length mismatch")
	}
	if len(dst) == 0 {
		return
	}
	addToAsm(&dst[0], &src[0], len(dst))
}
