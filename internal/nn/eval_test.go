package nn

import (
	"math/rand"
	"sync"
	"testing"
)

// TestEvaluatorMatchesForward pins the Evaluator to the training-path
// forward bit for bit across many random inputs.
func TestEvaluatorMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mlp := NewMLP(rng, 9, 16, 8, 1)
	ev := mlp.NewEvaluator()
	x := make([]float64, 9)
	for trial := 0; trial < 50; trial++ {
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := mlp.Forward(x)[0]
		got := ev.Forward(x)[0]
		if got != want {
			t.Fatalf("trial %d: evaluator %v, forward %v", trial, got, want)
		}
	}
}

// TestEvaluatorSharesParameters verifies the evaluator sees parameter
// updates made after construction (it is a view, not a copy).
func TestEvaluatorSharesParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mlp := NewMLP(rng, 4, 6, 1)
	ev := mlp.NewEvaluator()
	x := []float64{0.1, -0.2, 0.3, -0.4}
	before := ev.Forward(x)[0]
	for _, p := range mlp.Params() {
		for i := range p.Value {
			p.Value[i] += 0.05
		}
	}
	after := ev.Forward(x)[0]
	if before == after {
		t.Fatal("evaluator did not observe parameter update")
	}
	if want := mlp.Forward(x)[0]; after != want {
		t.Fatalf("post-update evaluator %v, forward %v", after, want)
	}
}

// TestEvaluatorsConcurrent runs many evaluators over one frozen network from
// parallel goroutines (meaningful under -race) and checks every result.
func TestEvaluatorsConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mlp := NewMLP(rng, 6, 12, 1)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := mlp.Forward(x)[0]

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := mlp.NewEvaluator()
			for i := 0; i < 200; i++ {
				if got := ev.Forward(x)[0]; got != want {
					t.Errorf("concurrent evaluator diverged: %v vs %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestEvaluatorForwardBatchBitIdentical pins every ForwardBatch output row
// to the single-sample Forward result bit for bit, across batch sizes that
// exercise the 4-row blocks, the scalar tail, and both at once. This is the
// serving engine's core determinism guarantee: coalescing requests into one
// batch must not change any app's decision.
func TestEvaluatorForwardBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	mlp := NewMLP(rng, 9, 16, 8, 1)
	ev := mlp.NewEvaluator()
	ref := mlp.NewEvaluator()
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 17, 64, 65} {
		x := make([]float64, n*9)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		for r := 0; r < n; r++ {
			want[r] = ref.Forward(x[r*9 : (r+1)*9])[0]
		}
		got := ev.ForwardBatch(x, n)
		if len(got) != n {
			t.Fatalf("batch %d: got %d outputs", n, len(got))
		}
		for r := 0; r < n; r++ {
			if got[r] != want[r] {
				t.Fatalf("batch %d row %d: batched %v, single %v", n, r, got[r], want[r])
			}
		}
	}
}

// TestEvaluatorForwardBatchAllocFree pins the steady-state batched forward
// path to zero allocations once scratch has grown to the working batch size.
func TestEvaluatorForwardBatchAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	mlp := NewMLP(rng, 8, 16, 8, 1)
	ev := mlp.NewEvaluator()
	x := make([]float64, 64*8)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ev.ForwardBatch(x, 64) // grow scratch
	allocs := testing.AllocsPerRun(100, func() {
		ev.ForwardBatch(x, 64)
	})
	if allocs != 0 {
		t.Fatalf("Evaluator.ForwardBatch allocates %v per call", allocs)
	}
}

// TestEvaluatorAllocFree pins the steady-state forward path to zero
// allocations.
func TestEvaluatorAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mlp := NewMLP(rng, 8, 16, 8, 1)
	ev := mlp.NewEvaluator()
	x := make([]float64, 8)
	allocs := testing.AllocsPerRun(100, func() {
		ev.Forward(x)
	})
	if allocs != 0 {
		t.Fatalf("Evaluator.Forward allocates %v per call", allocs)
	}
}
