package nn

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestFloatVecRoundTripFinite(t *testing.T) {
	in := FloatVec{0, 1.5, -2.25e-8, 1e300, math.SmallestNonzeroFloat64}
	data, err := in.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var out FloatVec
	if err := out.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("element %d: %v != %v", i, in[i], out[i])
		}
	}
}

func TestFloatVecRoundTripNonFinite(t *testing.T) {
	in := FloatVec{math.NaN(), math.Inf(1), math.Inf(-1), 3}
	data, err := in.MarshalJSON()
	if err != nil {
		t.Fatalf("non-finite values must marshal for post-mortem snapshots: %v", err)
	}
	for _, tok := range []string{`"NaN"`, `"+Inf"`, `"-Inf"`} {
		if !bytes.Contains(data, []byte(tok)) {
			t.Errorf("marshaled form %s missing token %s", data, tok)
		}
	}
	var out FloatVec
	if err := out.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(out[0]) || !math.IsInf(out[1], 1) || !math.IsInf(out[2], -1) || out[3] != 3 {
		t.Errorf("round trip = %v", out)
	}
}

func TestFloatVecRejectsUnknownToken(t *testing.T) {
	var v FloatVec
	if err := v.UnmarshalJSON([]byte(`["bogus"]`)); err == nil {
		t.Error("unknown string token accepted")
	}
}

func TestSnapshotValidateNamesTensor(t *testing.T) {
	s := Snapshot{Format: snapshotFormat, Params: []ParamDump{
		{Name: "layer0.w", Values: FloatVec{1, 2}},
		{Name: "layer1.b", Values: FloatVec{0, math.NaN(), 0}},
	}}
	err := s.Validate()
	if err == nil {
		t.Fatal("NaN snapshot validated")
	}
	if !strings.Contains(err.Error(), "layer1.b") || !strings.Contains(err.Error(), "element 1") {
		t.Errorf("error %q does not name the offending tensor and element", err)
	}
}

func TestRestoreRejectsNonFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mlp := NewMLP(rng, 3, 4, 1)
	snap := TakeSnapshot(mlp.Params())
	snap.Params[0].Values[1] = math.Inf(1)
	if err := snap.Restore(mlp.Params()); err == nil {
		t.Fatal("Restore accepted a +Inf parameter")
	} else if !strings.Contains(err.Error(), snap.Params[0].Name) {
		t.Errorf("error %q does not name the tensor", err)
	}
	// The target network must be untouched by the failed restore.
	if err := CheckFinite(mlp.Params()); err != nil {
		t.Errorf("failed restore mutated the network: %v", err)
	}
}

func TestCheckFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mlp := NewMLP(rng, 3, 4, 1)
	if err := CheckFinite(mlp.Params()); err != nil {
		t.Fatalf("fresh network reported non-finite: %v", err)
	}
	ps := mlp.Params()
	ps[len(ps)-1].Value[0] = math.NaN()
	err := CheckFinite(ps)
	if err == nil {
		t.Fatal("NaN parameter not detected")
	}
	if !strings.Contains(err.Error(), ps[len(ps)-1].Name) {
		t.Errorf("error %q does not name the tensor", err)
	}
}

func TestSnapshotFileRoundTripWithNonFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mlp := NewMLP(rng, 2, 3, 1)
	mlp.Params()[0].Value[0] = math.NaN()
	snap := TakeSnapshot(mlp.Params())

	path := t.TempDir() + "/poisoned.json"
	if err := snap.SaveFile(path); err != nil {
		t.Fatalf("diverged model must stay snapshottable: %v", err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err == nil {
		t.Error("reloaded poisoned snapshot validated")
	}
	fresh := NewMLP(rand.New(rand.NewSource(4)), 2, 3, 1)
	if err := loaded.Restore(fresh.Params()); err == nil {
		t.Error("poisoned snapshot restored into a live network")
	}
}
