package nn

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Snapshot is a JSON-serializable dump of a parameter set, keyed by
// parameter name in declaration order. It is the on-disk model format used
// by cmd/mocc-train and cmd/mocc-bench.
type Snapshot struct {
	Format string      `json:"format"`
	Params []ParamDump `json:"params"`
}

// ParamDump is one parameter tensor within a Snapshot.
type ParamDump struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// snapshotFormat identifies the serialization schema version.
const snapshotFormat = "mocc-model-v1"

// TakeSnapshot captures current parameter values.
func TakeSnapshot(ps []*Param) Snapshot {
	s := Snapshot{Format: snapshotFormat, Params: make([]ParamDump, len(ps))}
	for i, p := range ps {
		s.Params[i] = ParamDump{
			Name:   p.Name,
			Values: append([]float64(nil), p.Value...),
		}
	}
	return s
}

// Restore loads snapshot values into ps. Parameters are matched positionally
// and validated by name and size, so a snapshot can only be restored into a
// network of the identical architecture.
func (s Snapshot) Restore(ps []*Param) error {
	if s.Format != snapshotFormat {
		return fmt.Errorf("nn: unknown snapshot format %q", s.Format)
	}
	if len(s.Params) != len(ps) {
		return fmt.Errorf("nn: snapshot has %d params, network has %d", len(s.Params), len(ps))
	}
	for i, d := range s.Params {
		if d.Name != ps[i].Name {
			return fmt.Errorf("nn: snapshot param %d is %q, network expects %q", i, d.Name, ps[i].Name)
		}
		if len(d.Values) != len(ps[i].Value) {
			return fmt.Errorf("nn: snapshot param %q has %d values, network expects %d",
				d.Name, len(d.Values), len(ps[i].Value))
		}
	}
	for i, d := range s.Params {
		copy(ps[i].Value, d.Values)
	}
	return nil
}

// Write serializes the snapshot as JSON.
func (s Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot from r.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("nn: decoding snapshot: %w", err)
	}
	return s, nil
}

// SaveFile writes the snapshot to the named file.
func (s Snapshot) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: creating model file: %w", err)
	}
	defer f.Close()
	if err := s.Write(f); err != nil {
		return fmt.Errorf("nn: writing model file: %w", err)
	}
	return f.Sync()
}

// LoadFile reads a snapshot from the named file.
func LoadFile(path string) (Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("nn: opening model file: %w", err)
	}
	defer f.Close()
	return ReadSnapshot(f)
}
