package nn

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
)

// Snapshot is a JSON-serializable dump of a parameter set, keyed by
// parameter name in declaration order. It is the on-disk model format used
// by cmd/mocc-train and cmd/mocc-bench.
type Snapshot struct {
	Format string      `json:"format"`
	Params []ParamDump `json:"params"`
}

// ParamDump is one parameter tensor within a Snapshot.
type ParamDump struct {
	Name   string   `json:"name"`
	Values FloatVec `json:"values"`
}

// FloatVec is a []float64 whose JSON form tolerates non-finite values:
// NaN/±Inf are encoded as the strings "NaN", "+Inf", "-Inf" (plain JSON has
// no tokens for them — encoding/json refuses to marshal NaN and errors on
// out-of-range literals like 1e999). This keeps a diverged or corrupted
// model snapshottable for post-mortem while load-time validation
// (Snapshot.Validate, Snapshot.Restore) refuses to deploy it.
type FloatVec []float64

// MarshalJSON implements json.Marshaler: finite values serialize exactly as
// encoding/json would, non-finite values as quoted tokens.
func (v FloatVec) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		switch {
		case math.IsNaN(x):
			b.WriteString(`"NaN"`)
		case math.IsInf(x, 1):
			b.WriteString(`"+Inf"`)
		case math.IsInf(x, -1):
			b.WriteString(`"-Inf"`)
		default:
			b.Write(strconv.AppendFloat(nil, x, 'g', -1, 64))
		}
	}
	b.WriteByte(']')
	return b.Bytes(), nil
}

// UnmarshalJSON implements json.Unmarshaler, accepting numbers and the
// quoted non-finite tokens written by MarshalJSON.
func (v *FloatVec) UnmarshalJSON(data []byte) error {
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := make([]float64, len(raw))
	for i, r := range raw {
		if len(r) > 0 && r[0] == '"' {
			var s string
			if err := json.Unmarshal(r, &s); err != nil {
				return err
			}
			switch s {
			case "NaN":
				out[i] = math.NaN()
			case "+Inf", "Inf":
				out[i] = math.Inf(1)
			case "-Inf":
				out[i] = math.Inf(-1)
			default:
				return fmt.Errorf("nn: value %d is %q, want a number or NaN/+Inf/-Inf", i, s)
			}
			continue
		}
		f, err := strconv.ParseFloat(string(r), 64)
		if err != nil {
			return fmt.Errorf("nn: value %d: %v", i, err)
		}
		out[i] = f
	}
	*v = out
	return nil
}

// snapshotFormat identifies the serialization schema version.
const snapshotFormat = "mocc-model-v1"

// TakeSnapshot captures current parameter values.
func TakeSnapshot(ps []*Param) Snapshot {
	s := Snapshot{Format: snapshotFormat, Params: make([]ParamDump, len(ps))}
	for i, p := range ps {
		s.Params[i] = ParamDump{
			Name:   p.Name,
			Values: append(FloatVec(nil), p.Value...),
		}
	}
	return s
}

// Validate rejects snapshots that would poison a live model: every value of
// every tensor must be finite. The error names the offending tensor and
// element so a corrupted checkpoint is diagnosable from the message alone.
func (s Snapshot) Validate() error {
	for _, d := range s.Params {
		for i, x := range d.Values {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("nn: snapshot param %q has non-finite value %v at element %d", d.Name, x, i)
			}
		}
	}
	return nil
}

// Restore loads snapshot values into ps. Parameters are matched positionally
// and validated by name and size, so a snapshot can only be restored into a
// network of the identical architecture; non-finite values are rejected
// (see Validate) so a corrupted checkpoint can never reach deployment.
func (s Snapshot) Restore(ps []*Param) error {
	if s.Format != snapshotFormat {
		return fmt.Errorf("nn: unknown snapshot format %q", s.Format)
	}
	if len(s.Params) != len(ps) {
		return fmt.Errorf("nn: snapshot has %d params, network has %d", len(s.Params), len(ps))
	}
	for i, d := range s.Params {
		if d.Name != ps[i].Name {
			return fmt.Errorf("nn: snapshot param %d is %q, network expects %q", i, d.Name, ps[i].Name)
		}
		if len(d.Values) != len(ps[i].Value) {
			return fmt.Errorf("nn: snapshot param %q has %d values, network expects %d",
				d.Name, len(d.Values), len(ps[i].Value))
		}
	}
	if err := s.Validate(); err != nil {
		return err
	}
	for i, d := range s.Params {
		copy(ps[i].Value, d.Values)
	}
	return nil
}

// CheckFinite scans live parameters for non-finite values, returning an
// error naming the first offending tensor and element. Online adaptation
// runs it before publishing an epoch so a diverged update never reaches
// live applications.
func CheckFinite(ps []*Param) error {
	for _, p := range ps {
		for i, x := range p.Value {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("nn: param %q has non-finite value %v at element %d", p.Name, x, i)
			}
		}
	}
	return nil
}

// Write serializes the snapshot as JSON.
func (s Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot from r.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("nn: decoding snapshot: %w", err)
	}
	return s, nil
}

// SaveFile writes the snapshot to the named file.
func (s Snapshot) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: creating model file: %w", err)
	}
	defer f.Close()
	if err := s.Write(f); err != nil {
		return fmt.Errorf("nn: writing model file: %w", err)
	}
	return f.Sync()
}

// LoadFile reads a snapshot from the named file.
func LoadFile(path string) (Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("nn: opening model file: %w", err)
	}
	defer f.Close()
	return ReadSnapshot(f)
}
