package nn

import "math"

// Adam implements the Adam adaptive learning-rate optimizer (Kingma & Ba,
// 2014), the optimizer the paper selects over plain SGD (§5).
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	params []*Param
	m      [][]float64 // first-moment estimates
	v      [][]float64 // second-moment estimates
	t      int         // step count
}

// NewAdam creates an Adam optimizer over the given parameters with the
// standard defaults (β1=0.9, β2=0.999, ε=1e-8) and the supplied learning
// rate (the paper uses 0.001, Table 2).
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{
		LR:      lr,
		Beta1:   0.9,
		Beta2:   0.999,
		Epsilon: 1e-8,
		params:  params,
		m:       make([][]float64, len(params)),
		v:       make([][]float64, len(params)),
	}
	for i, p := range params {
		a.m[i] = make([]float64, len(p.Value))
		a.v[i] = make([]float64, len(p.Value))
	}
	return a
}

// Step applies one Adam update using the gradients currently accumulated in
// the parameters, then leaves the gradients untouched (call ZeroGrad to
// reset them). NaN or infinite gradients are skipped defensively so a single
// bad rollout cannot destroy the model.
func (a *Adam) Step() {
	a.t++
	// Reciprocal bias corrections keep the hot loop at one division per
	// element instead of three.
	invBc1 := 1 / (1 - math.Pow(a.Beta1, float64(a.t)))
	invBc2 := 1 / (1 - math.Pow(a.Beta2, float64(a.t)))
	b1, b2 := a.Beta1, a.Beta2
	c1, c2 := 1-a.Beta1, 1-a.Beta2
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				continue
			}
			mj := b1*m[j] + c1*g
			vj := b2*v[j] + c2*g*g
			m[j], v[j] = mj, vj
			p.Value[j] -= a.LR * (mj * invBc1) / (math.Sqrt(vj*invBc2) + a.Epsilon)
		}
	}
}

// Steps returns the number of optimizer steps taken.
func (a *Adam) Steps() int { return a.t }

// Reset clears optimizer state (moments and step count), keeping the
// parameter bindings. Used when transferring a model to a new objective so
// stale momentum does not bleed across tasks.
func (a *Adam) Reset() {
	a.t = 0
	for i := range a.m {
		clear(a.m[i])
		clear(a.v[i])
	}
}

// SGD is a plain stochastic-gradient-descent optimizer, retained as the
// comparison point the paper mentions when motivating Adam.
type SGD struct {
	LR     float64
	params []*Param
}

// NewSGD creates an SGD optimizer with the given learning rate.
func NewSGD(params []*Param, lr float64) *SGD {
	return &SGD{LR: lr, params: params}
}

// Step applies one gradient-descent update.
func (s *SGD) Step() {
	for _, p := range s.params {
		for j, g := range p.Grad {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				continue
			}
			p.Value[j] -= s.LR * g
		}
	}
}
