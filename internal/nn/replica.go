package nn

import "fmt"

// Training replicas are the backward-capable sibling of Evaluator: a replica
// network SHARES its master's parameter values (no copy, so replicas always
// see the master's current weights the instant an optimizer step completes)
// while owning private gradient buffers and forward/backward scratch. W
// replicas may therefore run batched forward/backward concurrently, as long
// as nothing writes the shared values during the parallel section; the
// data-parallel PPO update (internal/rl) kicks replicas, joins, reduces
// their gradients into the master in fixed order, and only then steps the
// optimizer, so the mutation is always strictly ordered against replica
// reads.

// TrainingReplica returns a Param sharing this parameter's Value slice but
// owning a private, zeroed gradient buffer.
func (p *Param) TrainingReplica() *Param {
	return &Param{Name: p.Name, Value: p.Value, Grad: make([]float64, len(p.Grad))}
}

// Replica returns a Linear layer sharing this layer's weight and bias values
// (via Param.TrainingReplica) with private gradients and scratch arenas.
func (l *Linear) Replica() *Linear {
	return &Linear{In: l.In, Out: l.Out, W: l.W.TrainingReplica(), B: l.B.TrainingReplica()}
}

// Replica returns an independent Tanh layer of the same width (tanh has no
// parameters; only scratch needs to be private).
func (t *Tanh) Replica() *Tanh { return NewTanh(t.size) }

// Replica returns an MLP whose layers share this network's parameter values
// but own private gradients and scratch. It panics on layer types other than
// Linear and Tanh (the only layers NewMLP produces).
func (m *MLP) Replica() *MLP {
	r := &MLP{Layers: make([]Layer, len(m.Layers))}
	for i, l := range m.Layers {
		switch t := l.(type) {
		case *Linear:
			r.Layers[i] = t.Replica()
		case *Tanh:
			r.Layers[i] = t.Replica()
		default:
			panic(fmt.Sprintf("nn: Replica cannot wrap layer type %T", l))
		}
	}
	return r
}

// AccumulateInto adds each src parameter's gradient into the matching dst
// parameter's gradient (dst[i].Grad += src[i].Grad) through the addTo reduce
// kernel (SSE2 on amd64). It is the reduction step of the data-parallel PPO
// update: calling it once per worker in a fixed order keeps training
// bit-deterministic for a fixed seed and worker count.
func AccumulateInto(dst, src []*Param) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: parameter count mismatch %d vs %d", len(dst), len(src))
	}
	for i := range dst {
		if len(dst[i].Grad) != len(src[i].Grad) {
			return fmt.Errorf("nn: parameter %d gradient size mismatch %d vs %d",
				i, len(dst[i].Grad), len(src[i].Grad))
		}
		addTo(dst[i].Grad, src[i].Grad)
	}
	return nil
}
