//go:build amd64

#include "textflag.h"

// SSE2 (amd64 baseline — no feature detection needed) microkernels for the
// batched Linear layer. Two-wide packed doubles double multiply-accumulate
// throughput over the scalar port-limited Go loops.

// func dotRowBatchAsm(w, x, y *float64, n, in, out, o int, bias float64)
//
// For r in [0,n): y[r*out+o] = bias + sum_i w[i]*x[r*in+i].
// Batch rows are processed four at a time with independent packed
// accumulators; row and element tails fall back to scalar ops.
TEXT ·dotRowBatchAsm(SB), NOSPLIT, $0-64
	MOVQ  w+0(FP), DI
	MOVQ  x+8(FP), SI
	MOVQ  y+16(FP), DX
	MOVQ  n+24(FP), R8
	MOVQ  in+32(FP), R9
	MOVQ  out+40(FP), R10
	MOVQ  o+48(FP), R11
	MOVSD bias+56(FP), X15

	// DX = &y[o]
	LEAQ (DX)(R11*8), DX
	XORQ R12, R12            // r = 0

blk4:
	MOVQ R8, AX
	SUBQ R12, AX
	CMPQ AX, $4
	JL   tailrows

	// x row pointers for the 4-row block
	MOVQ  R12, AX
	IMULQ R9, AX
	LEAQ  (SI)(AX*8), BX     // x0
	LEAQ  (BX)(R9*8), CX     // x1
	LEAQ  (CX)(R9*8), R13    // x2
	LEAQ  (R13)(R9*8), R14   // x3

	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7
	XORQ  R15, R15           // i = 0

ipair:
	MOVQ R9, AX
	SUBQ R15, AX
	CMPQ AX, $2
	JL   itail
	MOVUPS (DI)(R15*8), X0   // w[i:i+2]
	MOVUPS (BX)(R15*8), X1
	MULPD  X0, X1
	ADDPD  X1, X4
	MOVUPS (CX)(R15*8), X2
	MULPD  X0, X2
	ADDPD  X2, X5
	MOVUPS (R13)(R15*8), X3
	MULPD  X0, X3
	ADDPD  X3, X6
	MOVUPS (R14)(R15*8), X1
	MULPD  X0, X1
	ADDPD  X1, X7
	ADDQ   $2, R15
	JMP    ipair

itail:
	CMPQ R15, R9
	JGE  isum
	MOVSD (DI)(R15*8), X0
	MOVSD (BX)(R15*8), X1
	MULSD X0, X1
	ADDSD X1, X4
	MOVSD (CX)(R15*8), X2
	MULSD X0, X2
	ADDSD X2, X5
	MOVSD (R13)(R15*8), X3
	MULSD X0, X3
	ADDSD X3, X6
	MOVSD (R14)(R15*8), X1
	MULSD X0, X1
	ADDSD X1, X7
	INCQ  R15
	JMP   itail

isum:
	// Horizontal sums: lane0 += lane1, then add the bias.
	MOVAPS X4, X0
	SHUFPD $1, X4, X0
	ADDSD  X0, X4
	ADDSD  X15, X4
	MOVAPS X5, X1
	SHUFPD $1, X5, X1
	ADDSD  X1, X5
	ADDSD  X15, X5
	MOVAPS X6, X2
	SHUFPD $1, X6, X2
	ADDSD  X2, X6
	ADDSD  X15, X6
	MOVAPS X7, X3
	SHUFPD $1, X7, X3
	ADDSD  X3, X7
	ADDSD  X15, X7

	// Stores: y[(r+k)*out + o]
	MOVQ  R12, AX
	IMULQ R10, AX
	LEAQ  (DX)(AX*8), R11
	MOVSD X4, (R11)
	LEAQ  (R11)(R10*8), R11
	MOVSD X5, (R11)
	LEAQ  (R11)(R10*8), R11
	MOVSD X6, (R11)
	LEAQ  (R11)(R10*8), R11
	MOVSD X7, (R11)

	ADDQ $4, R12
	JMP  blk4

tailrows:
	CMPQ R12, R8
	JGE  done
	MOVQ  R12, AX
	IMULQ R9, AX
	LEAQ  (SI)(AX*8), BX
	XORPS X4, X4
	XORQ  R15, R15

tri:
	CMPQ R15, R9
	JGE  trstore
	MOVSD (DI)(R15*8), X0
	MOVSD (BX)(R15*8), X1
	MULSD X0, X1
	ADDSD X1, X4
	INCQ  R15
	JMP   tri

trstore:
	ADDSD X15, X4
	MOVQ  R12, AX
	IMULQ R10, AX
	MOVSD X4, (DX)(AX*8)
	INCQ  R12
	JMP   tailrows

done:
	RET

// func axpy4Asm(dst, a0, a1, a2, a3 *float64, g0, g1, g2, g3 float64, m int)
//
// For i in [0,m): dst[i] += g0*a0[i] + g1*a1[i] + g2*a2[i] + g3*a3[i].
TEXT ·axpy4Asm(SB), NOSPLIT, $0-80
	MOVQ  dst+0(FP), DI
	MOVQ  a0+8(FP), SI
	MOVQ  a1+16(FP), BX
	MOVQ  a2+24(FP), CX
	MOVQ  a3+32(FP), R13
	MOVSD g0+40(FP), X8
	MOVSD g1+48(FP), X9
	MOVSD g2+56(FP), X10
	MOVSD g3+64(FP), X11
	MOVQ  m+72(FP), R8

	// Broadcast the four scalars to both lanes.
	UNPCKLPD X8, X8
	UNPCKLPD X9, X9
	UNPCKLPD X10, X10
	UNPCKLPD X11, X11
	XORQ     R15, R15        // i = 0

apair:
	MOVQ R8, AX
	SUBQ R15, AX
	CMPQ AX, $2
	JL   atail
	MOVUPS (DI)(R15*8), X0
	MOVUPS (SI)(R15*8), X1
	MULPD  X8, X1
	ADDPD  X1, X0
	MOVUPS (BX)(R15*8), X2
	MULPD  X9, X2
	ADDPD  X2, X0
	MOVUPS (CX)(R15*8), X3
	MULPD  X10, X3
	ADDPD  X3, X0
	MOVUPS (R13)(R15*8), X4
	MULPD  X11, X4
	ADDPD  X4, X0
	MOVUPS X0, (DI)(R15*8)
	ADDQ   $2, R15
	JMP    apair

atail:
	CMPQ R15, R8
	JGE  adone
	MOVSD (DI)(R15*8), X0
	MOVSD (SI)(R15*8), X1
	MULSD X8, X1
	ADDSD X1, X0
	MOVSD (BX)(R15*8), X2
	MULSD X9, X2
	ADDSD X2, X0
	MOVSD (CX)(R15*8), X3
	MULSD X10, X3
	ADDSD X3, X0
	MOVSD (R13)(R15*8), X4
	MULSD X11, X4
	ADDSD X4, X0
	MOVSD X0, (DI)(R15*8)
	INCQ  R15
	JMP   atail

adone:
	RET

// func addToAsm(dst, src *float64, n int)
//
// For i in [0,n): dst[i] += src[i]. Eight doubles per main-loop pass (four
// independent packed add chains), then a packed pair and a scalar tail.
TEXT ·addToAsm(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), R8
	XORQ R15, R15            // i = 0

r8:
	MOVQ R8, AX
	SUBQ R15, AX
	CMPQ AX, $8
	JL   r2
	MOVUPS (DI)(R15*8), X0
	MOVUPS (SI)(R15*8), X4
	ADDPD  X4, X0
	MOVUPS X0, (DI)(R15*8)
	MOVUPS 16(DI)(R15*8), X1
	MOVUPS 16(SI)(R15*8), X5
	ADDPD  X5, X1
	MOVUPS X1, 16(DI)(R15*8)
	MOVUPS 32(DI)(R15*8), X2
	MOVUPS 32(SI)(R15*8), X6
	ADDPD  X6, X2
	MOVUPS X2, 32(DI)(R15*8)
	MOVUPS 48(DI)(R15*8), X3
	MOVUPS 48(SI)(R15*8), X7
	ADDPD  X7, X3
	MOVUPS X3, 48(DI)(R15*8)
	ADDQ   $8, R15
	JMP    r8

r2:
	MOVQ R8, AX
	SUBQ R15, AX
	CMPQ AX, $2
	JL   r1
	MOVUPS (DI)(R15*8), X0
	MOVUPS (SI)(R15*8), X4
	ADDPD  X4, X0
	MOVUPS X0, (DI)(R15*8)
	ADDQ   $2, R15
	JMP    r2

r1:
	CMPQ R15, R8
	JGE  rdone
	MOVSD (DI)(R15*8), X0
	MOVSD (SI)(R15*8), X4
	ADDSD X4, X0
	MOVSD X0, (DI)(R15*8)
	INCQ  R15

rdone:
	RET
