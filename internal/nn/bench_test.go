package nn

import (
	"math/rand"
	"testing"
)

// benchNet is the 40-64-32-2 architecture of the ISSUE's reference
// measurements: a 40-dim observation (η=12 history + preference features)
// through the paper's 64x32 trunk to a 2-dim head.
func benchNet() *MLP {
	rng := rand.New(rand.NewSource(1))
	return NewMLP(rng, 40, 64, 32, 2)
}

func benchInput(rows int) []float64 {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, rows*40)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	return x
}

func BenchmarkMLPForward(b *testing.B) {
	m := benchNet()
	x := benchInput(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

func BenchmarkMLPForwardBatch(b *testing.B) {
	const batch = 64
	m := benchNet()
	x := benchInput(batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForwardBatch(x, batch)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/sample")
}

func BenchmarkMLPForwardBackward(b *testing.B) {
	m := benchNet()
	x := benchInput(1)
	g := []float64{1, -1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
		m.Backward(g)
	}
}

func BenchmarkMLPForwardBackwardBatch(b *testing.B) {
	const batch = 64
	m := benchNet()
	x := benchInput(batch)
	g := make([]float64, batch*2)
	for i := range g {
		g[i] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForwardBatch(x, batch)
		m.BackwardBatch(g, batch)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/sample")
}

// BenchmarkEvaluatorForwardBatch measures the serving-side batched
// inference path: Evaluator.ForwardBatch through the order-preserving
// linearBatchSame kernel (bit-identical to per-sample Forward), against
// which BenchmarkEvaluatorForward is the per-sample baseline the serving
// engine replaces.
func BenchmarkEvaluatorForwardBatch(b *testing.B) {
	const batch = 64
	e := benchNet().NewEvaluator()
	x := benchInput(batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ForwardBatch(x, batch)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/sample")
}

func BenchmarkEvaluatorForward(b *testing.B) {
	e := benchNet().NewEvaluator()
	x := benchInput(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Forward(x)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/sample")
}
