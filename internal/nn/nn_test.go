package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearForwardKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(2, 2, rng)
	copy(l.W.Value, []float64{1, 2, 3, 4}) // rows: [1 2], [3 4]
	copy(l.B.Value, []float64{10, 20})
	y := l.Forward([]float64{1, 1})
	if y[0] != 13 || y[1] != 27 {
		t.Errorf("Forward = %v, want [13 27]", y)
	}
}

func TestLinearPanicsOnBadSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(3, 2, rng)
	assertPanics(t, func() { l.Forward([]float64{1}) })
	l.Forward([]float64{1, 2, 3})
	assertPanics(t, func() { l.Backward([]float64{1, 2, 3}) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestTanhForwardBackward(t *testing.T) {
	th := NewTanh(2)
	y := th.Forward([]float64{0, 1000})
	if y[0] != 0 || math.Abs(y[1]-1) > 1e-9 {
		t.Errorf("tanh forward = %v", y)
	}
	g := th.Backward([]float64{1, 1})
	if math.Abs(g[0]-1) > 1e-12 {
		t.Errorf("tanh'(0) = %v, want 1", g[0])
	}
	if math.Abs(g[1]) > 1e-6 {
		t.Errorf("tanh'(large) = %v, want ~0", g[1])
	}
}

func TestMLPShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, 4, 8, 3)
	if m.InSize() != 4 || m.OutSize() != 3 {
		t.Errorf("sizes = (%d, %d), want (4, 3)", m.InSize(), m.OutSize())
	}
	y := m.Forward([]float64{1, 2, 3, 4})
	if len(y) != 3 {
		t.Fatalf("output len = %d, want 3", len(y))
	}
	// 4*8+8 + 8*3+3 = 67 params.
	if n := NumParams(m.Params()); n != 67 {
		t.Errorf("NumParams = %d, want 67", n)
	}
}

// TestMLPGradientCheck verifies backprop against central finite differences
// on a scalar loss L = sum(y). This is the load-bearing correctness test for
// the whole learning stack.
func TestMLPGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, 3, 5, 4, 2)
	x := []float64{0.3, -0.7, 1.1}

	loss := func() float64 {
		y := m.Forward(x)
		s := 0.0
		for _, v := range y {
			s += v
		}
		return s
	}

	// Analytic gradients.
	ZeroGrad(m.Params())
	y := m.Forward(x)
	gradOut := make([]float64, len(y))
	for i := range gradOut {
		gradOut[i] = 1
	}
	m.Backward(gradOut)

	const eps = 1e-6
	for _, p := range m.Params() {
		for j := range p.Value {
			orig := p.Value[j]
			p.Value[j] = orig + eps
			up := loss()
			p.Value[j] = orig - eps
			down := loss()
			p.Value[j] = orig
			numeric := (up - down) / (2 * eps)
			analytic := p.Grad[j]
			if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("param %s[%d]: numeric %v vs analytic %v", p.Name, j, numeric, analytic)
			}
		}
	}
}

// TestMLPInputGradientCheck validates the gradient returned with respect to
// the input vector, which the preference sub-network composition relies on.
func TestMLPInputGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP(rng, 4, 6, 1)
	x := []float64{0.5, -0.2, 0.9, -1.3}

	ZeroGrad(m.Params())
	m.Forward(x)
	gradIn := m.Backward([]float64{1})

	const eps = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		up := m.Forward(x)[0]
		x[i] = orig - eps
		down := m.Forward(x)[0]
		x[i] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-gradIn[i]) > 1e-5*(1+math.Abs(numeric)) {
			t.Fatalf("input grad %d: numeric %v vs analytic %v", i, numeric, gradIn[i])
		}
	}
}

func TestGradientAccumulation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, 2, 2)
	ZeroGrad(m.Params())
	for k := 0; k < 3; k++ {
		m.Forward([]float64{1, 1})
		m.Backward([]float64{1, 0})
	}
	// dL/db[0] accumulates 1 per pass.
	lin := m.Layers[0].(*Linear)
	if math.Abs(lin.B.Grad[0]-3) > 1e-12 {
		t.Errorf("accumulated bias grad = %v, want 3", lin.B.Grad[0])
	}
	ZeroGrad(m.Params())
	if lin.B.Grad[0] != 0 {
		t.Error("ZeroGrad did not clear gradients")
	}
}

func TestAdamReducesQuadraticLoss(t *testing.T) {
	// Minimize f(w) = (w-3)^2 with Adam; gradient = 2(w-3).
	p := newParam("w", 1)
	p.Value[0] = -5
	opt := NewAdam([]*Param{p}, 0.1)
	for i := 0; i < 2000; i++ {
		p.ZeroGrad()
		p.Grad[0] = 2 * (p.Value[0] - 3)
		opt.Step()
	}
	if math.Abs(p.Value[0]-3) > 1e-3 {
		t.Errorf("Adam converged to %v, want 3", p.Value[0])
	}
	if opt.Steps() != 2000 {
		t.Errorf("Steps = %d, want 2000", opt.Steps())
	}
}

func TestAdamSkipsNonFiniteGradients(t *testing.T) {
	p := newParam("w", 2)
	p.Value[0], p.Value[1] = 1, 1
	opt := NewAdam([]*Param{p}, 0.5)
	p.Grad[0] = math.NaN()
	p.Grad[1] = math.Inf(1)
	opt.Step()
	if p.Value[0] != 1 || p.Value[1] != 1 {
		t.Errorf("non-finite gradients changed params: %v", p.Value)
	}
}

func TestAdamReset(t *testing.T) {
	p := newParam("w", 1)
	opt := NewAdam([]*Param{p}, 0.1)
	p.Grad[0] = 1
	opt.Step()
	opt.Reset()
	if opt.Steps() != 0 {
		t.Errorf("Steps after Reset = %d, want 0", opt.Steps())
	}
	if opt.m[0][0] != 0 || opt.v[0][0] != 0 {
		t.Error("moments not cleared by Reset")
	}
}

func TestSGDStep(t *testing.T) {
	p := newParam("w", 1)
	p.Value[0] = 10
	opt := NewSGD([]*Param{p}, 0.1)
	p.Grad[0] = 5
	opt.Step()
	if math.Abs(p.Value[0]-9.5) > 1e-12 {
		t.Errorf("SGD step = %v, want 9.5", p.Value[0])
	}
}

func TestCopyParams(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewMLP(rng, 3, 4, 2)
	b := NewMLP(rng, 3, 4, 2)
	if err := CopyParams(b.Params(), a.Params()); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3}
	ya, yb := a.Forward(x), b.Forward(x)
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatalf("outputs differ after CopyParams: %v vs %v", ya, yb)
		}
	}
	c := NewMLP(rng, 3, 5, 2)
	if err := CopyParams(c.Params(), a.Params()); err == nil {
		t.Error("expected error copying between mismatched networks")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := newParam("w", 2)
	p.Grad[0], p.Grad[1] = 3, 4 // norm 5
	norm := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("reported norm = %v, want 5", norm)
	}
	clipped := math.Hypot(p.Grad[0], p.Grad[1])
	if math.Abs(clipped-1) > 1e-12 {
		t.Errorf("post-clip norm = %v, want 1", clipped)
	}
	// Below threshold: unchanged.
	p.Grad[0], p.Grad[1] = 0.3, 0.4
	ClipGradNorm([]*Param{p}, 1)
	if p.Grad[0] != 0.3 || p.Grad[1] != 0.4 {
		t.Error("gradients below max norm were modified")
	}
}

func TestGaussianLogProb(t *testing.T) {
	// Standard normal at 0: ln(1/sqrt(2π)).
	want := -0.5 * math.Log(2*math.Pi)
	if got := GaussianLogProb(0, 0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("logprob = %v, want %v", got, want)
	}
	// Symmetric about the mean.
	if a, b := GaussianLogProb(2, 1, 0.5), GaussianLogProb(0, 1, 0.5); math.Abs(a-b) > 1e-12 {
		t.Errorf("asymmetric log-prob: %v vs %v", a, b)
	}
	// Degenerate std does not produce NaN.
	if v := GaussianLogProb(1, 1, 0); math.IsNaN(v) {
		t.Error("zero-std log-prob is NaN")
	}
}

func TestGaussianLogProbGradCheck(t *testing.T) {
	const eps = 1e-6
	for _, c := range []struct{ a, mean, std float64 }{
		{0.5, 0, 1}, {-1, 2, 0.3}, {0, 0, 2},
	} {
		dMean, dLogStd := GaussianLogProbGrad(c.a, c.mean, c.std)
		numMean := (GaussianLogProb(c.a, c.mean+eps, c.std) - GaussianLogProb(c.a, c.mean-eps, c.std)) / (2 * eps)
		logStd := math.Log(c.std)
		numLogStd := (GaussianLogProb(c.a, c.mean, math.Exp(logStd+eps)) -
			GaussianLogProb(c.a, c.mean, math.Exp(logStd-eps))) / (2 * eps)
		if math.Abs(dMean-numMean) > 1e-5 {
			t.Errorf("dMean = %v, numeric %v (case %+v)", dMean, numMean, c)
		}
		if math.Abs(dLogStd-numLogStd) > 1e-5 {
			t.Errorf("dLogStd = %v, numeric %v (case %+v)", dLogStd, numLogStd, c)
		}
	}
}

func TestGaussianEntropy(t *testing.T) {
	// Entropy of N(0,1) = 0.5*ln(2πe) ≈ 1.4189.
	want := 0.5 * math.Log(2*math.Pi*math.E)
	if got := GaussianEntropy(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("entropy = %v, want %v", got, want)
	}
	if GaussianEntropy(2) <= GaussianEntropy(1) {
		t.Error("entropy should increase with std")
	}
}

func TestGaussianSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var sum, sumSq float64
	n := 20000
	for i := 0; i < n; i++ {
		v := GaussianSample(rng, 3, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-3) > 0.1 {
		t.Errorf("sample mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.3 {
		t.Errorf("sample variance = %v, want ~4", variance)
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 1, 1})
	for _, v := range p {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Errorf("uniform softmax = %v", p)
		}
	}
	// Stability with large logits.
	p = Softmax([]float64{1000, 1000})
	if math.IsNaN(p[0]) || math.Abs(p[0]-0.5) > 1e-12 {
		t.Errorf("large-logit softmax = %v", p)
	}
	if Softmax(nil) != nil {
		t.Error("Softmax(nil) should be nil")
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(logits []float64) bool {
		if len(logits) == 0 {
			return true
		}
		for i := range logits {
			logits[i] = math.Mod(logits[i], 50) // keep finite
			if math.IsNaN(logits[i]) {
				logits[i] = 0
			}
		}
		p := Softmax(logits)
		sum := 0.0
		for _, v := range p {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestArgmax(t *testing.T) {
	if got := Argmax([]float64{1, 5, 3}); got != 1 {
		t.Errorf("Argmax = %d, want 1", got)
	}
	if got := Argmax([]float64{2, 2}); got != 0 {
		t.Errorf("tie Argmax = %d, want 0", got)
	}
	if got := Argmax(nil); got != -1 {
		t.Errorf("empty Argmax = %d, want -1", got)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMLP(rng, 3, 4, 2)
	snap := TakeSnapshot(m.Params())

	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	m2 := NewMLP(rand.New(rand.NewSource(999)), 3, 4, 2)
	if err := loaded.Restore(m2.Params()); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.4, -0.5, 0.6}
	y1, y2 := m.Forward(x), m2.Forward(x)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("restored model differs: %v vs %v", y1, y2)
		}
	}
}

func TestSnapshotRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := NewMLP(rng, 3, 4, 2)
	snap := TakeSnapshot(m.Params())

	other := NewMLP(rng, 3, 5, 2)
	if err := snap.Restore(other.Params()); err == nil {
		t.Error("expected error restoring into different architecture")
	}

	bad := snap
	bad.Format = "bogus"
	if err := bad.Restore(m.Params()); err == nil {
		t.Error("expected error for unknown format")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMLP(rng, 2, 3, 1)
	path := t.TempDir() + "/model.json"
	if err := TakeSnapshot(m.Params()).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Restore(m.Params()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := NewMLP(rng, 2, 2)
	snap := TakeSnapshot(m.Params())
	before := snap.Params[0].Values[0]
	m.Params()[0].Value[0] += 100
	if snap.Params[0].Values[0] != before {
		t.Error("snapshot aliases live parameters")
	}
}
