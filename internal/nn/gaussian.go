package nn

import (
	"math"
	"math/rand"
)

// halfLog2Pi is 0.5*ln(2π), the constant term of the Gaussian log-density.
const halfLog2Pi = 0.9189385332046727

// GaussianLogProb returns ln N(a; mean, std) for a scalar diagonal-Gaussian
// action dimension.
func GaussianLogProb(a, mean, std float64) float64 {
	if std <= 0 {
		std = 1e-8
	}
	z := (a - mean) / std
	return -0.5*z*z - math.Log(std) - halfLog2Pi
}

// GaussianEntropy returns the differential entropy of N(·; mean, std):
// 0.5*ln(2πe σ²).
func GaussianEntropy(std float64) float64 {
	if std <= 0 {
		std = 1e-8
	}
	return 0.5 + halfLog2Pi + math.Log(std)
}

// GaussianSample draws a ~ N(mean, std) using rng.
func GaussianSample(rng *rand.Rand, mean, std float64) float64 {
	return mean + std*rng.NormFloat64()
}

// GaussianLogProbGrad returns the partial derivatives of
// ln N(a; mean, std) with respect to the mean and with respect to
// logStd = ln(std). These feed the policy-gradient backward pass.
func GaussianLogProbGrad(a, mean, std float64) (dMean, dLogStd float64) {
	if std <= 0 {
		std = 1e-8
	}
	z := (a - mean) / std
	dMean = z / std
	dLogStd = z*z - 1
	return dMean, dLogStd
}

// GaussianLogProbVec writes ln N(a[k]; mean[k], std) into dst for every
// sample of a batch, sharing one std (the state-independent log-std head).
// It is arithmetically identical to calling GaussianLogProb per sample.
func GaussianLogProbVec(dst, a, mean []float64, std float64) {
	if std <= 0 {
		std = 1e-8
	}
	logStd := math.Log(std)
	for k := range dst {
		z := (a[k] - mean[k]) / std
		dst[k] = -0.5*z*z - logStd - halfLog2Pi
	}
}

// GaussianLogProbGradVec writes the per-sample partial derivatives of
// ln N(a[k]; mean[k], std) with respect to the mean into dMean and with
// respect to logStd into dLogStd, matching GaussianLogProbGrad sample by
// sample.
func GaussianLogProbGradVec(dMean, dLogStd, a, mean []float64, std float64) {
	if std <= 0 {
		std = 1e-8
	}
	for k := range dMean {
		z := (a[k] - mean[k]) / std
		dMean[k] = z / std
		dLogStd[k] = z*z - 1
	}
}

// Softmax returns the softmax distribution of logits, computed stably.
func Softmax(logits []float64) []float64 {
	if len(logits) == 0 {
		return nil
	}
	maxL := logits[0]
	for _, l := range logits[1:] {
		if l > maxL {
			maxL = l
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, l := range logits {
		e := math.Exp(l - maxL)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Argmax returns the index of the largest element (first on ties); -1 for an
// empty slice.
func Argmax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}
