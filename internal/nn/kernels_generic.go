//go:build !amd64

package nn

// Portable fallbacks for the SSE2 microkernels in kernels_amd64.s, blocked
// the same way so batched throughput still beats the per-sample path.

// dotRowBatch computes y[r*out+o] = bias + dot(w, x[r*in:(r+1)*in]) for
// every batch row r, four rows per pass.
func dotRowBatch(w, x, y []float64, n, in, out, o int, bias float64) {
	r := 0
	for ; r+3 < n; r += 4 {
		x0 := x[(r+0)*in : (r+1)*in]
		x1 := x[(r+1)*in : (r+2)*in]
		x2 := x[(r+2)*in : (r+3)*in]
		x3 := x[(r+3)*in : (r+4)*in]
		s0, s1, s2, s3 := bias, bias, bias, bias
		for i, wi := range w {
			s0 += wi * x0[i]
			s1 += wi * x1[i]
			s2 += wi * x2[i]
			s3 += wi * x3[i]
		}
		y[(r+0)*out+o] = s0
		y[(r+1)*out+o] = s1
		y[(r+2)*out+o] = s2
		y[(r+3)*out+o] = s3
	}
	for ; r < n; r++ {
		xr := x[r*in : (r+1)*in]
		sum := bias
		for i, wi := range w {
			sum += wi * xr[i]
		}
		y[r*out+o] = sum
	}
}

// linearBatchSame computes one full Linear layer over n batch rows
// (y[r*out+o] = b[o] + dot(w[o*in:], x[r*in:])) with the guarantee that
// every row is accumulated in the floating-point order of the n=1 path —
// here that means bias-first, matching dotRowBatch's single-row tail. Loop
// order is row-block-outer / output-neuron-inner so a block of input
// activations stays cache-resident while the weight matrix streams through
// it once per block (see the amd64 twin for the full rationale); blocking
// and loop order change throughput, never rounding.
func linearBatchSame(w, b, x, y []float64, n, in, out int) {
	r := 0
	for ; r+3 < n; r += 4 {
		x0 := x[(r+0)*in : (r+1)*in]
		x1 := x[(r+1)*in : (r+2)*in]
		x2 := x[(r+2)*in : (r+3)*in]
		x3 := x[(r+3)*in : (r+4)*in]
		for o := 0; o < out; o++ {
			wo := w[o*in : (o+1)*in]
			bias := b[o]
			s0, s1, s2, s3 := bias, bias, bias, bias
			for i, wi := range wo {
				s0 += wi * x0[i]
				s1 += wi * x1[i]
				s2 += wi * x2[i]
				s3 += wi * x3[i]
			}
			y[(r+0)*out+o] = s0
			y[(r+1)*out+o] = s1
			y[(r+2)*out+o] = s2
			y[(r+3)*out+o] = s3
		}
	}
	for ; r < n; r++ {
		xr := x[r*in : (r+1)*in]
		for o := 0; o < out; o++ {
			wo := w[o*in : (o+1)*in]
			sum := b[o]
			for i, wi := range wo {
				sum += wi * xr[i]
			}
			y[r*out+o] = sum
		}
	}
}

// axpy4 accumulates four scaled rows into dst in one pass.
func axpy4(dst, a0, a1, a2, a3 []float64, g0, g1, g2, g3 float64) {
	for i := range dst {
		dst[i] += g0*a0[i] + g1*a1[i] + g2*a2[i] + g3*a3[i]
	}
}

// addTo accumulates src into dst element-wise (dst[i] += src[i]), the
// gradient-reduction kernel of the data-parallel PPO update. The slices
// must have equal length, matching the amd64 kernel's contract.
func addTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic("nn: addTo length mismatch")
	}
	for i, v := range src {
		dst[i] += v
	}
}
