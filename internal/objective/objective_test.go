package objective

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0.8, 0.1, 0.1); err != nil {
		t.Errorf("valid weights rejected: %v", err)
	}
	bad := []struct{ thr, lat, loss float64 }{
		{0, 0.5, 0.5},     // zero weight
		{1, 0, 0},         // boundary values
		{0.5, 0.5, 0.5},   // sum != 1
		{-0.2, 0.6, 0.6},  // negative
		{0.9, 0.05, 0.01}, // sum != 1
	}
	for _, c := range bad {
		if _, err := New(c.thr, c.lat, c.loss); err == nil {
			t.Errorf("New(%v, %v, %v) accepted invalid weights", c.thr, c.lat, c.loss)
		}
	}
	if _, err := New(math.NaN(), 0.5, 0.5); err == nil {
		t.Error("NaN weight accepted")
	}
}

func TestPresetsAreValid(t *testing.T) {
	for _, w := range []Weights{ThroughputPref, LatencyPref, RTCPref, BalancePref, BulkPref} {
		if err := w.Validate(); err != nil {
			t.Errorf("preset %v invalid: %v", w, err)
		}
	}
}

func TestNormalize(t *testing.T) {
	w := Weights{8, 1, 1}.Normalize()
	if err := w.Validate(); err != nil {
		t.Fatalf("normalized invalid: %v", err)
	}
	if math.Abs(w.Thr-0.8) > 1e-9 {
		t.Errorf("Thr = %v, want 0.8", w.Thr)
	}
	// Zero and negative entries get floored, not dropped.
	w2 := Weights{1, 0, -5}.Normalize()
	if err := w2.Validate(); err != nil {
		t.Errorf("floored normalize invalid: %v", err)
	}
}

func TestNormalizeProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		a = math.Mod(math.Abs(a), 100)
		b = math.Mod(math.Abs(b), 100)
		c = math.Mod(math.Abs(c), 100)
		w := Weights{a, b, c}.Normalize()
		return w.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVectorAndDistance(t *testing.T) {
	w := Weights{0.5, 0.3, 0.2}
	v := w.Vector()
	if v[0] != 0.5 || v[1] != 0.3 || v[2] != 0.2 {
		t.Errorf("Vector = %v", v)
	}
	if d := w.Distance(w); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	o := Weights{0.2, 0.3, 0.5}
	want := math.Sqrt(0.09 + 0 + 0.09)
	if d := w.Distance(o); math.Abs(d-want) > 1e-12 {
		t.Errorf("Distance = %v, want %v", d, want)
	}
}

func TestParse(t *testing.T) {
	for _, s := range []string{"<0.8, 0.1, 0.1>", "0.8,0.1,0.1", "< 0.8,0.1 , 0.1 >"} {
		w, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
			continue
		}
		if w != (Weights{0.8, 0.1, 0.1}) {
			t.Errorf("Parse(%q) = %v", s, w)
		}
	}
	for _, s := range []string{"", "1,2", "a,b,c", "0.5,0.5,0.5"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	w := Weights{0.4, 0.5, 0.1}
	got, err := Parse(w.String())
	if err != nil {
		t.Fatal(err)
	}
	if got.Distance(w) > 1e-9 {
		t.Errorf("round trip %v -> %v", w, got)
	}
}

func TestReward(t *testing.T) {
	w := Weights{0.5, 0.3, 0.2}
	if r := w.Reward(1, 1, 1); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect reward = %v, want 1", r)
	}
	if r := w.Reward(0, 0, 0); r != 0 {
		t.Errorf("zero reward = %v", r)
	}
	if r := w.Reward(1, 0, 0); math.Abs(r-0.5) > 1e-12 {
		t.Errorf("thr-only reward = %v, want 0.5", r)
	}
}

func TestLandmarkCount(t *testing.T) {
	// Paper ω values: step 4→3, 5→6, 6→10, 10→36, 20→171.
	cases := map[int]int{4: 3, 5: 6, 6: 10, 10: 36, 20: 171, 3: 1, 2: 0}
	for step, want := range cases {
		if got := LandmarkCount(step); got != want {
			t.Errorf("LandmarkCount(%d) = %d, want %d", step, got, want)
		}
		if got := len(Landmarks(step)); got != want {
			t.Errorf("len(Landmarks(%d)) = %d, want %d", step, got, want)
		}
	}
}

func TestLandmarksAreValidWeights(t *testing.T) {
	for _, step := range []int{3, 4, 5, 10, 20} {
		for _, p := range Landmarks(step) {
			if !p.valid() {
				t.Errorf("invalid lattice point %+v", p)
			}
			if err := p.Weights().Validate(); err != nil {
				t.Errorf("landmark %v invalid: %v", p.Weights(), err)
			}
		}
	}
}

func TestLandmarksUnique(t *testing.T) {
	seen := map[[3]int]bool{}
	for _, p := range Landmarks(10) {
		key := [3]int{p.I, p.J, p.K}
		if seen[key] {
			t.Fatalf("duplicate landmark %v", key)
		}
		seen[key] = true
	}
}

func TestStepForOmega(t *testing.T) {
	cases := map[int]int{3: 4, 6: 5, 10: 6, 36: 10, 171: 20, 100: 16}
	for omega, wantStep := range cases {
		if got := StepForOmega(omega); got != wantStep {
			t.Errorf("StepForOmega(%d) = %d, want %d", omega, got, wantStep)
		}
	}
}

func TestNeighborsPaperExamples(t *testing.T) {
	// At step 0.1: <0.2,0.4,0.4> and <0.2,0.5,0.3> are neighbours;
	// <0.2,0.4,0.4> and <0.1,0.5,0.4> are neighbours;
	// <0.2,0.4,0.4> and <0.1,0.3,0.6> are NOT.
	p := Lattice{I: 2, J: 4, K: 4, Step: 10}
	hasNeighbor := func(q Lattice) bool {
		for _, n := range p.Neighbors() {
			if n.I == q.I && n.J == q.J && n.K == q.K {
				return true
			}
		}
		return false
	}
	if !hasNeighbor(Lattice{I: 2, J: 5, K: 3, Step: 10}) {
		t.Error("<0.2,0.5,0.3> should be a neighbour")
	}
	if !hasNeighbor(Lattice{I: 1, J: 5, K: 4, Step: 10}) {
		t.Error("<0.1,0.5,0.4> should be a neighbour")
	}
	if hasNeighbor(Lattice{I: 1, J: 3, K: 6, Step: 10}) {
		t.Error("<0.1,0.3,0.6> should NOT be a neighbour")
	}
}

func TestNeighborsStayOnLattice(t *testing.T) {
	for _, p := range Landmarks(6) {
		for _, n := range p.Neighbors() {
			if !n.valid() {
				t.Errorf("neighbour %+v of %+v off lattice", n, p)
			}
			if n == p {
				t.Errorf("point is its own neighbour: %+v", p)
			}
		}
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	pts := Landmarks(8)
	adj := func(a, b Lattice) bool {
		for _, n := range a.Neighbors() {
			if n == b {
				return true
			}
		}
		return false
	}
	for _, a := range pts {
		for _, b := range pts {
			if adj(a, b) != adj(b, a) {
				t.Fatalf("asymmetric adjacency between %+v and %+v", a, b)
			}
		}
	}
}

func TestDefaultBootstraps(t *testing.T) {
	bs := DefaultBootstraps(10)
	want := [][3]int{{6, 3, 1}, {1, 6, 3}, {3, 1, 6}}
	if len(bs) != 3 {
		t.Fatalf("got %d bootstraps, want 3", len(bs))
	}
	for i, b := range bs {
		if [3]int{b.I, b.J, b.K} != want[i] {
			t.Errorf("bootstrap %d = %+v, want %v", i, b, want[i])
		}
	}
}

func TestSortObjectivesCoversAll(t *testing.T) {
	for _, step := range []int{4, 5, 6, 10} {
		landmarks := Landmarks(step)
		order, err := SortObjectives(landmarks, DefaultBootstraps(step))
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if len(order) != len(landmarks) {
			t.Fatalf("step %d: order covers %d of %d", step, len(order), len(landmarks))
		}
		seen := map[[3]int]bool{}
		for _, p := range order {
			key := [3]int{p.I, p.J, p.K}
			if seen[key] {
				t.Fatalf("step %d: duplicate %v in order", step, key)
			}
			seen[key] = true
		}
	}
}

func TestSortObjectivesStartsAtBootstrap(t *testing.T) {
	step := 10
	order, err := SortObjectives(Landmarks(step), DefaultBootstraps(step))
	if err != nil {
		t.Fatal(err)
	}
	first := order[0]
	b := DefaultBootstraps(step)[0]
	if first != b {
		t.Errorf("order starts at %+v, want bootstrap %+v", first, b)
	}
}

func TestSortObjectivesDeterministic(t *testing.T) {
	a, err := SortObjectives(Landmarks(10), DefaultBootstraps(10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SortObjectives(Landmarks(10), DefaultBootstraps(10))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic order at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSortObjectivesNeighborhoodLocality(t *testing.T) {
	// Early visits from each bootstrap should be close to that bootstrap:
	// the second objective visited overall must be within graph distance 2
	// of the first bootstrap.
	step := 10
	order, err := SortObjectives(Landmarks(step), DefaultBootstraps(step))
	if err != nil {
		t.Fatal(err)
	}
	b := DefaultBootstraps(step)[0]
	if d := order[1].Weights().Distance(b.Weights()); d > 0.3 {
		t.Errorf("second visit %v too far from bootstrap %v (d=%v)", order[1].Weights(), b.Weights(), d)
	}
}

func TestSortObjectivesErrors(t *testing.T) {
	if _, err := SortObjectives(nil, DefaultBootstraps(10)); err == nil {
		t.Error("expected error for empty landmarks")
	}
	if _, err := SortObjectives(Landmarks(10), nil); err == nil {
		t.Error("expected error for empty bootstraps")
	}
	// Bootstrap from a different lattice.
	if _, err := SortObjectives(Landmarks(10), []Lattice{{I: 50, J: 1, K: 1, Step: 52}}); err == nil {
		t.Error("expected error for bootstrap outside landmark set")
	}
}

func TestSampleSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var sumThr float64
	n := 5000
	for i := 0; i < n; i++ {
		w := SampleSimplex(rng)
		if err := w.Validate(); err != nil {
			t.Fatalf("sample %v invalid: %v", w, err)
		}
		sumThr += w.Thr
	}
	// Uniform Dirichlet(1,1,1) has mean 1/3 per coordinate.
	if mean := sumThr / float64(n); math.Abs(mean-1.0/3) > 0.02 {
		t.Errorf("mean thr weight = %v, want ~1/3", mean)
	}
}

func TestUniformObjectivesDeterministic(t *testing.T) {
	a := UniformObjectives(100, 7)
	b := UniformObjectives(100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different objectives")
		}
	}
	c := UniformObjectives(100, 8)
	if a[0] == c[0] && a[1] == c[1] && a[2] == c[2] {
		t.Error("different seeds produced identical prefix")
	}
}

func TestPool(t *testing.T) {
	p := NewPool()
	if p.Len() != 0 {
		t.Error("new pool not empty")
	}
	rng := rand.New(rand.NewSource(2))
	if _, ok := p.Sample(rng, Weights{}); ok {
		t.Error("empty pool returned a sample")
	}
	w1 := Weights{0.8, 0.1, 0.1}
	w2 := Weights{0.1, 0.8, 0.1}
	if !p.Add(w1) {
		t.Error("first Add returned false")
	}
	if p.Add(w1) {
		t.Error("duplicate Add returned true")
	}
	p.Add(w2)
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
	// Sampling with exclusion always yields the other entry.
	for i := 0; i < 20; i++ {
		got, ok := p.Sample(rng, w1)
		if !ok || got != w2 {
			t.Fatalf("Sample excluding w1 = %v, %v; want w2", got, ok)
		}
	}
	// Single-entry pool returns that entry even when excluded.
	solo := NewPool()
	solo.Add(w1)
	if got, ok := solo.Sample(rng, w1); !ok || got != w1 {
		t.Errorf("solo Sample = %v, %v", got, ok)
	}
}

func TestPoolAllSorted(t *testing.T) {
	p := NewPool()
	p.Add(Weights{0.8, 0.1, 0.1})
	p.Add(Weights{0.1, 0.8, 0.1})
	p.Add(Weights{0.1, 0.1, 0.8})
	all := p.All()
	for i := 1; i < len(all); i++ {
		if all[i].Thr < all[i-1].Thr {
			t.Errorf("All not sorted: %v", all)
		}
	}
}

func TestPoolRefCounting(t *testing.T) {
	p := NewPool()
	w1 := Weights{0.8, 0.1, 0.1}
	w2 := Weights{0.1, 0.8, 0.1}
	p.Add(w1)
	p.Add(w1) // second application with the same preference
	p.Add(w2)
	if p.Refs(w1) != 2 {
		t.Fatalf("Refs(w1) = %d, want 2", p.Refs(w1))
	}
	if p.Release(w1) {
		t.Error("first Release removed a double-referenced entry")
	}
	if p.Len() != 2 {
		t.Errorf("Len after partial release = %d, want 2", p.Len())
	}
	if !p.Release(w1) {
		t.Error("last Release did not remove the entry")
	}
	if p.Len() != 1 || p.Refs(w1) != 0 {
		t.Errorf("Len = %d, Refs(w1) = %d after full release", p.Len(), p.Refs(w1))
	}
	// Releasing an absent entry is a harmless no-op.
	if p.Release(w1) {
		t.Error("Release of absent entry reported removal")
	}
	// Removed entries never come back from Sample.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		if got, ok := p.Sample(rng, Weights{}); !ok || got != w2 {
			t.Fatalf("Sample = %v, %v; want w2 only", got, ok)
		}
	}
	// Re-adding after full release starts a fresh refcount.
	if !p.Add(w1) {
		t.Error("re-Add after full release not reported as new")
	}
}
