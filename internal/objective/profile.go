package objective

import (
	"errors"
	"math"
)

// AppProfile expresses an application-level requirement in the units
// applications actually think in — bandwidth, latency and loss bounds —
// rather than abstract weights. §7 of the paper ("Expressing application
// requirements") calls for exactly this mapping layer: today operators set
// weight vectors by expertise; this rule-based mapper automates the common
// cases. All bounds are optional (zero = don't care).
type AppProfile struct {
	// MinBandwidthMbps is the throughput the app needs for good UX
	// (e.g., HDTV wants >34 Mbps, §2.1).
	MinBandwidthMbps float64
	// MaxLatencyMs is the end-to-end latency budget (e.g., autonomous
	// driving wants <15 ms, §2.1).
	MaxLatencyMs float64
	// MaxLossPct is the tolerable packet loss percentage (e.g.,
	// video/audio conferencing tolerates <0.1%/1%, §2.1).
	MaxLossPct float64
	// Interactive marks request/response or conversational traffic,
	// nudging the balance toward latency even when no explicit latency
	// bound is given.
	Interactive bool
}

// reference scales: requirements at (or beyond) these levels saturate the
// corresponding urgency score.
const (
	refBandwidthMbps = 50.0 // >= 50 Mbps demand = max throughput urgency
	refLatencyMs     = 10.0 // <= 10 ms budget = max latency urgency
	refLossPct       = 0.1  // <= 0.1% tolerance = max loss urgency
)

// Weights maps the profile onto a preference vector. Each stated bound
// produces an urgency in (0, 1]; urgencies are then normalized onto the
// open simplex. A profile with no bounds yields the balanced preference.
func (p AppProfile) Weights() (Weights, error) {
	if p.MinBandwidthMbps < 0 || p.MaxLatencyMs < 0 || p.MaxLossPct < 0 {
		return Weights{}, errors.New("objective: negative bound in AppProfile")
	}
	// Baseline urgency keeps every metric in play (the model is defined
	// on the open simplex and applications rarely mean "zero weight").
	const baseline = 0.15

	thr := baseline
	if p.MinBandwidthMbps > 0 {
		thr += math.Min(p.MinBandwidthMbps/refBandwidthMbps, 1)
	}

	lat := baseline
	if p.MaxLatencyMs > 0 {
		// Tighter budgets mean higher urgency.
		lat += math.Min(refLatencyMs/p.MaxLatencyMs, 1)
	}
	if p.Interactive {
		lat += 0.5
	}

	loss := baseline
	if p.MaxLossPct > 0 {
		loss += math.Min(refLossPct/p.MaxLossPct, 1)
	}

	return Weights{Thr: thr, Lat: lat, Loss: loss}.Normalize(), nil
}

// CommonProfiles returns named example profiles covering the paper's §2.1
// application classes, useful as documentation and in tests.
func CommonProfiles() map[string]AppProfile {
	return map[string]AppProfile{
		"hdtv":          {MinBandwidthMbps: 34},
		"autonomous":    {MaxLatencyMs: 15, Interactive: true},
		"conferencing":  {MinBandwidthMbps: 2, MaxLatencyMs: 150, MaxLossPct: 0.1, Interactive: true},
		"bulk-transfer": {MinBandwidthMbps: 50},
		"web-browsing":  {Interactive: true},
		"iot-telemetry": {MaxLossPct: 0.5},
	}
}
