package objective

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAppProfileEmptyIsBalanced(t *testing.T) {
	w, err := AppProfile{}.Weights()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("invalid weights: %v", err)
	}
	if math.Abs(w.Thr-w.Lat) > 1e-9 || math.Abs(w.Lat-w.Loss) > 1e-9 {
		t.Errorf("empty profile not balanced: %v", w)
	}
}

func TestAppProfileBandwidthDemandRaisesThr(t *testing.T) {
	hdtv, err := AppProfile{MinBandwidthMbps: 34}.Weights()
	if err != nil {
		t.Fatal(err)
	}
	if hdtv.Thr <= hdtv.Lat || hdtv.Thr <= hdtv.Loss {
		t.Errorf("bandwidth-hungry profile not throughput-dominant: %v", hdtv)
	}
	// More demand, more throughput weight.
	modest, _ := AppProfile{MinBandwidthMbps: 5}.Weights()
	if hdtv.Thr <= modest.Thr {
		t.Errorf("34 Mbps demand (%v) should out-weigh 5 Mbps (%v)", hdtv.Thr, modest.Thr)
	}
}

func TestAppProfileLatencyBudgetRaisesLat(t *testing.T) {
	car, err := AppProfile{MaxLatencyMs: 15, Interactive: true}.Weights()
	if err != nil {
		t.Fatal(err)
	}
	if car.Lat <= car.Thr || car.Lat <= car.Loss {
		t.Errorf("latency-critical profile not latency-dominant: %v", car)
	}
	// Tighter budget, higher latency weight.
	loose, _ := AppProfile{MaxLatencyMs: 500}.Weights()
	tight, _ := AppProfile{MaxLatencyMs: 15}.Weights()
	if tight.Lat <= loose.Lat {
		t.Errorf("15 ms budget (%v) should out-weigh 500 ms (%v)", tight.Lat, loose.Lat)
	}
}

func TestAppProfileLossToleranceRaisesLoss(t *testing.T) {
	strict, err := AppProfile{MaxLossPct: 0.1}.Weights()
	if err != nil {
		t.Fatal(err)
	}
	if strict.Loss <= strict.Thr || strict.Loss <= strict.Lat {
		t.Errorf("loss-strict profile not loss-dominant: %v", strict)
	}
}

func TestAppProfileInteractiveNudgesLatency(t *testing.T) {
	plain, _ := AppProfile{MinBandwidthMbps: 10}.Weights()
	inter, _ := AppProfile{MinBandwidthMbps: 10, Interactive: true}.Weights()
	if inter.Lat <= plain.Lat {
		t.Errorf("interactive flag did not raise latency weight: %v vs %v", inter.Lat, plain.Lat)
	}
}

func TestAppProfileRejectsNegativeBounds(t *testing.T) {
	bad := []AppProfile{
		{MinBandwidthMbps: -1},
		{MaxLatencyMs: -5},
		{MaxLossPct: -0.1},
	}
	for _, p := range bad {
		if _, err := p.Weights(); err == nil {
			t.Errorf("profile %+v accepted", p)
		}
	}
}

func TestAppProfileAlwaysValidSimplex(t *testing.T) {
	f := func(bw, lat, loss float64, interactive bool) bool {
		p := AppProfile{
			MinBandwidthMbps: math.Abs(math.Mod(bw, 1000)),
			MaxLatencyMs:     math.Abs(math.Mod(lat, 10000)),
			MaxLossPct:       math.Abs(math.Mod(loss, 100)),
			Interactive:      interactive,
		}
		w, err := p.Weights()
		return err == nil && w.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCommonProfilesProduceSensibleWeights(t *testing.T) {
	profiles := CommonProfiles()
	if len(profiles) < 5 {
		t.Fatalf("only %d common profiles", len(profiles))
	}
	ws := map[string]Weights{}
	for name, p := range profiles {
		w, err := p.Weights()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("%s: invalid weights %v", name, w)
		}
		ws[name] = w
	}
	if ws["hdtv"].Thr <= ws["autonomous"].Thr {
		t.Error("hdtv should weigh throughput above autonomous driving")
	}
	if ws["autonomous"].Lat <= ws["hdtv"].Lat {
		t.Error("autonomous driving should weigh latency above hdtv")
	}
}
