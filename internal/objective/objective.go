// Package objective implements MOCC's preference machinery: application
// weight vectors over <throughput, latency, loss>, landmark objective
// generation on the probability simplex, the neighbourhood graph over
// landmarks, and the Dijkstra-based objective sorting algorithm from
// Appendix B that orders the fast-traversing phase of offline training.
package objective

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Weights is an application requirement: the relative importance of
// throughput, latency and packet-loss performance. Valid weights are
// strictly positive and sum to 1 (§4.1).
type Weights struct {
	Thr  float64 // throughput weight
	Lat  float64 // latency weight
	Loss float64 // loss-rate weight
}

// Common preference presets used throughout the paper's evaluation.
var (
	// ThroughputPref is the high-throughput objective <0.8, 0.1, 0.1>
	// used for Figure 5(a-d) and video streaming (§6.3).
	ThroughputPref = Weights{0.8, 0.1, 0.1}
	// LatencyPref is the low-latency objective <0.1, 0.8, 0.1> used for
	// Figure 5(e-h).
	LatencyPref = Weights{0.1, 0.8, 0.1}
	// RTCPref is the real-time-communication objective <0.4, 0.5, 0.1>
	// (§6.3).
	RTCPref = Weights{0.4, 0.5, 0.1}
	// BalancePref weights all three metrics equally (MOCC-Balance in
	// §6.4).
	BalancePref = Weights{1.0 / 3, 1.0 / 3, 1.0 / 3}
	// BulkPref approximates the paper's greedy <1, 0, 0> bulk-transfer
	// weight, clamped to the open simplex the model is defined on.
	BulkPref = Weights{0.98, 0.01, 0.01}
)

// New validates and returns a weight vector. Each weight must lie in (0, 1)
// and the weights must sum to 1 within a small tolerance.
func New(thr, lat, loss float64) (Weights, error) {
	w := Weights{Thr: thr, Lat: lat, Loss: loss}
	if err := w.Validate(); err != nil {
		return Weights{}, err
	}
	return w, nil
}

// Validate checks the open-simplex constraints from §4.1.
func (w Weights) Validate() error {
	for _, v := range []float64{w.Thr, w.Lat, w.Loss} {
		if math.IsNaN(v) || v <= 0 || v >= 1 {
			return fmt.Errorf("objective: weight %v outside (0, 1)", v)
		}
	}
	if s := w.Thr + w.Lat + w.Loss; math.Abs(s-1) > 1e-6 {
		return fmt.Errorf("objective: weights sum to %v, want 1", s)
	}
	return nil
}

// Normalize rescales the weights to sum to 1, clamping non-positive entries
// to a small floor first. It is the permissive counterpart to New for inputs
// arriving from applications.
func (w Weights) Normalize() Weights {
	const floor = 1e-3
	t := math.Max(w.Thr, floor)
	l := math.Max(w.Lat, floor)
	s := math.Max(w.Loss, floor)
	sum := t + l + s
	return Weights{t / sum, l / sum, s / sum}
}

// Vector returns the weights as a 3-element slice in <thr, lat, loss> order,
// the layout fed to the preference sub-network.
func (w Weights) Vector() []float64 { return []float64{w.Thr, w.Lat, w.Loss} }

// Distance returns the Euclidean distance between two weight vectors, the
// similarity measure behind neighbourhood transfer (§4.2).
func (w Weights) Distance(o Weights) float64 {
	dt := w.Thr - o.Thr
	dl := w.Lat - o.Lat
	ds := w.Loss - o.Loss
	return math.Sqrt(dt*dt + dl*dl + ds*ds)
}

// String implements fmt.Stringer using the paper's <a, b, c> notation.
func (w Weights) String() string {
	return fmt.Sprintf("<%.3g, %.3g, %.3g>", w.Thr, w.Lat, w.Loss)
}

// Parse reads a weight vector in "<0.8, 0.1, 0.1>" or "0.8,0.1,0.1" form.
func Parse(s string) (Weights, error) {
	clean := strings.NewReplacer("<", "", ">", "", " ", "").Replace(s)
	parts := strings.Split(clean, ",")
	if len(parts) != 3 {
		return Weights{}, fmt.Errorf("objective: expected 3 comma-separated weights, got %q", s)
	}
	vals := make([]float64, 3)
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return Weights{}, fmt.Errorf("objective: parsing %q: %w", p, err)
		}
		vals[i] = v
	}
	return New(vals[0], vals[1], vals[2])
}

// Reward combines the three normalized objective measures (each in [0, 1])
// into the scalar dynamic reward of Equation 2.
func (w Weights) Reward(oThr, oLat, oLoss float64) float64 {
	return w.Thr*oThr + w.Lat*oLat + w.Loss*oLoss
}

// Lattice is an integer point (i, j, k) with i+j+k = Step on the interior
// simplex lattice; it corresponds to the weight vector (i, j, k)/Step.
type Lattice struct {
	I, J, K int
	Step    int
}

// Weights converts the lattice point to its weight vector.
func (p Lattice) Weights() Weights {
	s := float64(p.Step)
	return Weights{float64(p.I) / s, float64(p.J) / s, float64(p.K) / s}
}

// valid reports whether the point is on the interior lattice.
func (p Lattice) valid() bool {
	return p.Step >= 3 && p.I >= 1 && p.J >= 1 && p.K >= 1 && p.I+p.J+p.K == p.Step
}

// LandmarkCount returns the number of interior lattice points at the given
// step denominator: C(step-1, 2). The paper's ω values map to steps as
// 4→3, 5→6, 6→10, 10→36, 20→171 (§6.5).
func LandmarkCount(step int) int {
	if step < 3 {
		return 0
	}
	return (step - 1) * (step - 2) / 2
}

// Landmarks enumerates all interior simplex lattice points at denominator
// step, in deterministic lexicographic (i, j) order.
func Landmarks(step int) []Lattice {
	var out []Lattice
	for i := 1; i <= step-2; i++ {
		for j := 1; j <= step-1-i; j++ {
			out = append(out, Lattice{I: i, J: j, K: step - i - j, Step: step})
		}
	}
	return out
}

// LandmarkWeights is Landmarks converted to weight vectors.
func LandmarkWeights(step int) []Weights {
	pts := Landmarks(step)
	ws := make([]Weights, len(pts))
	for i, p := range pts {
		ws[i] = p.Weights()
	}
	return ws
}

// StepForOmega returns the lattice step whose landmark count is closest to
// (and at least) the requested ω, mirroring the paper's ω ∈ {3, 6, 10, 36,
// 171} sweep.
func StepForOmega(omega int) int {
	for step := 3; ; step++ {
		if LandmarkCount(step) >= omega {
			return step
		}
	}
}

// Neighbors returns the lattice points adjacent to p under the paper's
// neighbourhood definition (Appendix B): two vectors are neighbours when
// they differ in exactly two dimensions, each by one unit step. On the
// lattice this is moving one unit from one coordinate to another.
func (p Lattice) Neighbors() []Lattice {
	moves := [6][3]int{
		{+1, -1, 0}, {+1, 0, -1},
		{-1, +1, 0}, {0, +1, -1},
		{-1, 0, +1}, {0, -1, +1},
	}
	var out []Lattice
	for _, m := range moves {
		q := Lattice{I: p.I + m[0], J: p.J + m[1], K: p.K + m[2], Step: p.Step}
		if q.valid() {
			out = append(out, q)
		}
	}
	return out
}

// DefaultBootstraps returns the paper's three bootstrapping objectives
// <0.6,0.3,0.1>, <0.1,0.6,0.3>, <0.3,0.1,0.6> (Appendix B), snapped to the
// lattice at the given step.
func DefaultBootstraps(step int) []Lattice {
	targets := []Weights{
		{0.6, 0.3, 0.1},
		{0.1, 0.6, 0.3},
		{0.3, 0.1, 0.6},
	}
	out := make([]Lattice, len(targets))
	for i, t := range targets {
		out[i] = snapToLattice(t, step)
	}
	return out
}

// snapToLattice finds the interior lattice point nearest to w.
func snapToLattice(w Weights, step int) Lattice {
	best := Lattice{}
	bestDist := math.Inf(1)
	for _, p := range Landmarks(step) {
		if d := p.Weights().Distance(w); d < bestDist {
			bestDist = d
			best = p
		}
	}
	return best
}

// SortObjectives implements the neighbourhood-based objective sorting
// algorithm (Appendix B, Algorithm 1). Given the full landmark set and the
// bootstrapped objectives, it returns a training order that starts from each
// bootstrap in turn and expands outward by graph distance, giving each
// bootstrap ⌈|V|/|O|⌉ visits per round until every objective is placed.
//
// Edge weights are uniform, so the per-bootstrap expansion is Dijkstra over
// a unit-weight graph. Ties are broken deterministically by lexicographic
// lattice order.
func SortObjectives(landmarks []Lattice, bootstraps []Lattice) ([]Lattice, error) {
	if len(landmarks) == 0 {
		return nil, errors.New("objective: no landmarks to sort")
	}
	if len(bootstraps) == 0 {
		return nil, errors.New("objective: no bootstrap objectives")
	}
	index := make(map[[3]int]int, len(landmarks))
	for i, p := range landmarks {
		index[[3]int{p.I, p.J, p.K}] = i
	}
	for _, b := range bootstraps {
		if _, ok := index[[3]int{b.I, b.J, b.K}]; !ok {
			return nil, fmt.Errorf("objective: bootstrap %v not in landmark set", b.Weights())
		}
	}

	nB := len(bootstraps)
	nV := len(landmarks)
	// dist[i][v]: distance of vertex v from bootstrap i.
	dist := make([][]float64, nB)
	for i := range dist {
		dist[i] = make([]float64, nV)
		for v := range dist[i] {
			dist[i][v] = math.Inf(1)
		}
		bi := index[[3]int{bootstraps[i].I, bootstraps[i].J, bootstraps[i].K}]
		dist[i][bi] = 0
		for _, nb := range landmarks[bi].Neighbors() {
			if vi, ok := index[[3]int{nb.I, nb.J, nb.K}]; ok {
				dist[i][vi] = 1
			}
		}
	}

	visited := make([]bool, nV)
	var order []Lattice
	perRound := (nV + nB - 1) / nB

	for len(order) < nV {
		progressed := false
		for i := 0; i < nB && len(order) < nV; i++ {
			visits := perRound
			bi := index[[3]int{bootstraps[i].I, bootstraps[i].J, bootstraps[i].K}]
			if !visited[bi] {
				visited[bi] = true
				order = append(order, landmarks[bi])
				visits--
				progressed = true
				relaxNeighbors(landmarks, index, dist[i], bi)
			}
			for visits > 0 && len(order) < nV {
				u := minUnvisited(dist[i], visited, landmarks)
				if u < 0 {
					break
				}
				visited[u] = true
				order = append(order, landmarks[u])
				visits--
				progressed = true
				relaxNeighbors(landmarks, index, dist[i], u)
			}
		}
		if !progressed {
			// Disconnected remainder (cannot happen on a simplex lattice,
			// but guard anyway): append in lexicographic order.
			for v := 0; v < nV; v++ {
				if !visited[v] {
					visited[v] = true
					order = append(order, landmarks[v])
				}
			}
		}
	}
	return order, nil
}

// relaxNeighbors updates neighbour distances after visiting vertex u.
func relaxNeighbors(landmarks []Lattice, index map[[3]int]int, dist []float64, u int) {
	for _, nb := range landmarks[u].Neighbors() {
		if vi, ok := index[[3]int{nb.I, nb.J, nb.K}]; ok {
			if dist[u]+1 < dist[vi] {
				dist[vi] = dist[u] + 1
			}
		}
	}
}

// minUnvisited returns the unvisited vertex with smallest finite distance,
// breaking ties lexicographically; -1 if none is reachable.
func minUnvisited(dist []float64, visited []bool, landmarks []Lattice) int {
	best := -1
	for v := range dist {
		if visited[v] || math.IsInf(dist[v], 1) {
			continue
		}
		if best < 0 || dist[v] < dist[best] ||
			(dist[v] == dist[best] && latticeLess(landmarks[v], landmarks[best])) {
			best = v
		}
	}
	return best
}

// latticeLess orders lattice points lexicographically by (I, J).
func latticeLess(a, b Lattice) bool {
	if a.I != b.I {
		return a.I < b.I
	}
	return a.J < b.J
}

// SampleSimplex draws a weight vector uniformly from the open simplex using
// normalized exponentials (equivalent to Dirichlet(1,1,1)). Used for the
// 100-objective evaluation (§6.1).
func SampleSimplex(rng *rand.Rand) Weights {
	e1 := rng.ExpFloat64()
	e2 := rng.ExpFloat64()
	e3 := rng.ExpFloat64()
	sum := e1 + e2 + e3
	return Weights{e1 / sum, e2 / sum, e3 / sum}.Normalize()
}

// UniformObjectives draws n weight vectors uniformly from the simplex,
// deterministically from seed.
func UniformObjectives(n int, seed int64) []Weights {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Weights, n)
	for i := range out {
		out[i] = SampleSimplex(rng)
	}
	return out
}

// Pool stores application requirements encountered online, supporting the
// requirement-replay algorithm (§4.3): during online adaptation each update
// also optimizes a previously seen objective drawn uniformly at random.
//
// Entries are reference-counted: registering the same requirement twice
// needs two Releases before replay stops rehearsing it, so a preference
// stays in the pool exactly as long as some registered application (or a
// permanent adaptation entry) still uses it. All methods are safe for
// concurrent use.
type Pool struct {
	mu    sync.Mutex
	items []Weights
	refs  map[Weights]int
}

// NewPool creates an empty requirement pool.
func NewPool() *Pool {
	return &Pool{refs: make(map[Weights]int)}
}

// Add records one reference to a requirement and reports whether it was
// newly added (first reference).
func (p *Pool) Add(w Weights) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.refs[w]++
	if p.refs[w] > 1 {
		return false
	}
	p.items = append(p.items, w)
	return true
}

// Release drops one reference to a requirement. When the last reference is
// released the entry leaves the pool (and replay stops rehearsing it);
// Release reports whether that happened. Releasing an absent requirement is
// a no-op.
func (p *Pool) Release(w Weights) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	n, ok := p.refs[w]
	if !ok {
		return false
	}
	if n > 1 {
		p.refs[w] = n - 1
		return false
	}
	delete(p.refs, w)
	for i, item := range p.items {
		if item == w {
			p.items = append(p.items[:i], p.items[i+1:]...)
			break
		}
	}
	return true
}

// Refs returns the current reference count for a requirement.
func (p *Pool) Refs(w Weights) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.refs[w]
}

// Len returns the number of distinct stored requirements.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.items)
}

// Sample returns a uniformly random stored requirement, excluding (when
// possible) the currently training one, so replay always reinforces an *old*
// application as Equation 6 intends.
func (p *Pool) Sample(rng *rand.Rand, exclude Weights) (Weights, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.items) == 0 {
		return Weights{}, false
	}
	candidates := p.items
	if len(p.items) > 1 {
		filtered := make([]Weights, 0, len(p.items))
		for _, w := range p.items {
			if w != exclude {
				filtered = append(filtered, w)
			}
		}
		if len(filtered) > 0 {
			candidates = filtered
		}
	}
	return candidates[rng.Intn(len(candidates))], true
}

// All returns a sorted copy of the stored requirements (sorted by throughput
// weight, then latency) for deterministic iteration.
func (p *Pool) All() []Weights {
	p.mu.Lock()
	out := append([]Weights(nil), p.items...)
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Thr != out[j].Thr {
			return out[i].Thr < out[j].Thr
		}
		return out[i].Lat < out[j].Lat
	})
	return out
}
