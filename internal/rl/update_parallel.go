package rl

// This file implements the data-parallel PPO minibatch engine: each
// minibatch's rows are sharded across W workers, every worker runs the
// batched forward/backward on a value-sharing replica of the master agent
// (private gradients and scratch, zero parameter copies — replicas read the
// master's weights in place), and the per-worker gradients are reduced into
// the master in a FIXED worker order before the optimizer step. Fixed
// sharding + fixed reduction order keep training bit-deterministic for a
// fixed seed and worker count; the optimizer mutates the shared values only
// between rounds, strictly ordered against replica reads by the kick/join
// channels.

import (
	"fmt"
	"sync"

	"mocc/internal/nn"
)

// ReplicaAgent is a BatchActorCritic that can spawn training replicas:
// agents sharing its parameter values (so replicas always observe the
// master's current weights without copying) while owning private gradient
// buffers and forward/backward scratch, so several replicas may run batched
// forward/backward concurrently. PlainAgent and core.Model implement it.
type ReplicaAgent interface {
	BatchActorCritic
	// TrainingReplica returns a new value-sharing replica of the agent.
	TrainingReplica() BatchActorCritic
}

// updateJob is one kick of the worker pool; quit retires the goroutine.
type updateJob struct{ quit bool }

// updateWorker is one lane of the data-parallel update: a replica-backed
// minibatch engine plus its cached parameter slices.
type updateWorker struct {
	pool     *updatePool
	id       int
	eng      mbEngine
	actorPs  []*nn.Param
	criticPs []*nn.Param
	active   bool // ran a non-empty shard in the current round
}

// loop is the per-update worker goroutine body: process rounds until quit.
func (w *updateWorker) loop() {
	for job := range w.pool.jobs[w.id] {
		if job.quit {
			return
		}
		w.round()
		w.pool.wg.Done()
	}
}

// round runs this worker's shard of the current minibatch.
func (w *updateWorker) round() {
	pool := w.pool
	lo, hi := shardBounds(len(pool.batch), len(pool.workers), w.id)
	w.active = lo < hi
	if !w.active {
		return
	}
	nn.ZeroGrad(w.actorPs)
	nn.ZeroGrad(w.criticPs)
	w.eng.reset()
	w.eng.run(&pool.p.Cfg, pool.all, pool.batch[lo:hi], float64(len(pool.batch)), pool.beta)
}

// shardBounds splits n rows into workers contiguous, balanced shards; the
// partition is a pure function of (n, workers), so row-to-worker assignment
// never depends on scheduling.
func shardBounds(n, workers, w int) (lo, hi int) {
	return w * n / workers, (w + 1) * n / workers
}

// updatePool owns the worker lanes and the per-round shared state. Worker
// goroutines live for one UpdateMulti call (begin spawns, end retires), so
// discarded PPO instances never leak parked goroutines; the job channels and
// all scratch persist across updates, keeping the steady state allocation
// free.
type updatePool struct {
	p       *PPO
	workers []*updateWorker
	jobs    []chan updateJob
	wg      sync.WaitGroup

	// Per-round inputs, written by the update goroutine before the kicks
	// and read-only in the workers until the join.
	all   []Transition
	batch []int
	beta  float64
}

// ensurePool lazily builds the data-parallel engine. It returns nil — and
// UpdateMulti stays on the serial engine, which the W=1 equivalence tests
// pin as bit-identical — when Workers <= 1 or the agent cannot spawn
// replicas.
func (p *PPO) ensurePool() *updatePool {
	if p.Cfg.Workers <= 1 {
		return nil
	}
	if p.pool != nil {
		return p.pool
	}
	ra, ok := p.Agent.(ReplicaAgent)
	if !ok {
		return nil
	}
	pool := &updatePool{
		p:       p,
		workers: make([]*updateWorker, p.Cfg.Workers),
		jobs:    make([]chan updateJob, p.Cfg.Workers),
	}
	for i := range pool.workers {
		rep := ra.TrainingReplica()
		w := &updateWorker{
			pool:     pool,
			id:       i,
			eng:      mbEngine{agent: rep},
			actorPs:  rep.ActorParams(),
			criticPs: rep.CriticParams(),
		}
		if len(w.actorPs) != len(p.actorPs) || len(w.criticPs) != len(p.criticPs) {
			panic(fmt.Sprintf("rl: replica parameter shape mismatch (%d/%d vs %d/%d)",
				len(w.actorPs), len(w.criticPs), len(p.actorPs), len(p.criticPs)))
		}
		pool.workers[i] = w
		pool.jobs[i] = make(chan updateJob, 1)
	}
	p.pool = pool
	return pool
}

// begin publishes the update's transition set and spawns the worker
// goroutines for this UpdateMulti call.
func (pool *updatePool) begin(all []Transition) {
	pool.all = all
	for _, w := range pool.workers {
		go w.loop()
	}
}

// end retires the worker goroutines.
func (pool *updatePool) end() {
	for _, ch := range pool.jobs {
		ch <- updateJob{quit: true}
	}
}

// runMinibatch fans one minibatch across the pool and joins: every worker
// zeroes its replica gradients, runs its shard, and parks; the caller then
// reduces via merge.
func (pool *updatePool) runMinibatch(batch []int, beta float64) {
	pool.batch, pool.beta = batch, beta
	pool.wg.Add(len(pool.workers))
	for _, ch := range pool.jobs {
		ch <- updateJob{}
	}
	pool.wg.Wait()
}

// merge reduces the round's per-worker gradients into the master parameters
// and folds the partial statistics into the update accumulators, visiting
// workers in ascending id order so the floating-point reduction is identical
// on every run with the same worker count.
func (pool *updatePool) merge(stats *UpdateStats, lossCount, clipCount, sampleCount *float64) {
	for _, w := range pool.workers {
		if !w.active {
			continue
		}
		w.eng.merge(stats, lossCount, clipCount, sampleCount)
		if err := nn.AccumulateInto(pool.p.actorPs, w.actorPs); err != nil {
			panic("rl: actor gradient reduction: " + err.Error())
		}
		if err := nn.AccumulateInto(pool.p.criticPs, w.criticPs); err != nil {
			panic("rl: critic gradient reduction: " + err.Error())
		}
	}
}
