package rl

import (
	"math"
	"math/rand"

	"mocc/internal/nn"
)

// PPOConfig holds the Proximal Policy Optimization hyperparameters; the
// defaults follow Table 2 and §5 of the paper (and stable-baselines, which
// the authors built on).
type PPOConfig struct {
	// Gamma is the reward discount factor (Table 2: 0.99).
	Gamma float64
	// ClipEps is the surrogate clipping threshold ε (§5: 0.2).
	ClipEps float64
	// LR is the Adam learning rate (Table 2: 0.001).
	LR float64
	// EntropyInit/EntropyFinal/EntropyDecayIters implement the paper's β
	// schedule: decay from 1 to 0.1 over 1000 iterations (§5).
	EntropyInit       float64
	EntropyFinal      float64
	EntropyDecayIters int
	// Epochs is the number of passes over each rollout per update.
	Epochs int
	// MinibatchSize splits the rollout for gradient steps.
	MinibatchSize int
	// ValueCoef scales the critic loss.
	ValueCoef float64
	// MaxGradNorm clips the global gradient norm per minibatch.
	MaxGradNorm float64
	// Seed drives minibatch shuffling.
	Seed int64
}

// DefaultPPOConfig returns the paper's hyperparameters.
func DefaultPPOConfig() PPOConfig {
	return PPOConfig{
		Gamma:             0.99,
		ClipEps:           0.2,
		LR:                0.001,
		EntropyInit:       1.0,
		EntropyFinal:      0.1,
		EntropyDecayIters: 1000,
		Epochs:            4,
		MinibatchSize:     64,
		ValueCoef:         0.5,
		MaxGradNorm:       0.5,
		Seed:              1,
	}
}

// UpdateStats reports diagnostics from one PPO update.
type UpdateStats struct {
	PolicyLoss   float64
	ValueLoss    float64
	Entropy      float64
	ClipFraction float64
	Beta         float64 // entropy coefficient used
	MeanReward   float64 // from the rollout(s)
}

// PPO trains an ActorCritic with the clipped surrogate objective
// (Equations 3-5).
type PPO struct {
	Agent     ActorCritic
	Cfg       PPOConfig
	actorOpt  *nn.Adam
	criticOpt *nn.Adam
	rng       *rand.Rand
	iter      int
}

// NewPPO builds a trainer around the agent.
func NewPPO(agent ActorCritic, cfg PPOConfig) *PPO {
	return &PPO{
		Agent:     agent,
		Cfg:       cfg,
		actorOpt:  nn.NewAdam(agent.ActorParams(), cfg.LR),
		criticOpt: nn.NewAdam(agent.CriticParams(), cfg.LR),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Iter returns the number of PPO updates applied.
func (p *PPO) Iter() int { return p.iter }

// SetIter overrides the iteration counter (used when resuming a transferred
// model so the entropy schedule continues from the right point).
func (p *PPO) SetIter(i int) { p.iter = i }

// ResetOptimizers clears Adam state, e.g. after transferring weights to a
// new objective so stale momentum does not leak across tasks.
func (p *PPO) ResetOptimizers() {
	p.actorOpt.Reset()
	p.criticOpt.Reset()
}

// Beta returns the entropy coefficient for the current iteration, following
// the paper's 1 -> 0.1 decay over 1000 iterations.
func (p *PPO) Beta() float64 {
	c := p.Cfg
	if c.EntropyDecayIters <= 0 {
		return c.EntropyFinal
	}
	frac := float64(p.iter) / float64(c.EntropyDecayIters)
	if frac > 1 {
		frac = 1
	}
	return c.EntropyInit + (c.EntropyFinal-c.EntropyInit)*frac
}

// Update performs one PPO iteration on a single rollout.
func (p *PPO) Update(ro Rollout) UpdateStats {
	return p.UpdateMulti([]Rollout{ro})
}

// UpdateMulti performs one PPO iteration over several rollouts jointly,
// averaging their losses — this is the requirement-replay objective of
// Equation 6 when called with the new-objective and replayed-objective
// rollouts.
func (p *PPO) UpdateMulti(rollouts []Rollout) UpdateStats {
	var all []Transition
	var rewardSum float64
	for _, ro := range rollouts {
		ro.ComputeReturns(p.Cfg.Gamma)
		all = append(all, ro.Trans...)
		rewardSum += ro.MeanReward
	}
	if len(all) == 0 {
		return UpdateStats{}
	}
	beta := p.Beta()
	stats := UpdateStats{Beta: beta, MeanReward: rewardSum / float64(len(rollouts))}

	idx := make([]int, len(all))
	for i := range idx {
		idx[i] = i
	}

	mb := p.Cfg.MinibatchSize
	if mb <= 0 || mb > len(all) {
		mb = len(all)
	}

	var lossCount, clipCount, sampleCount float64
	for epoch := 0; epoch < max(p.Cfg.Epochs, 1); epoch++ {
		p.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += mb {
			end := start + mb
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			n := float64(len(batch))

			nn.ZeroGrad(p.Agent.ActorParams())
			nn.ZeroGrad(p.Agent.CriticParams())

			for _, i := range batch {
				tr := all[i]
				mean, std := p.Agent.PolicyForward(tr.Obs)
				logProb := nn.GaussianLogProb(tr.Action, mean, std)
				ratio := math.Exp(logProb - tr.LogProb)
				// Guard against numeric explosions on stale samples.
				if ratio > 20 {
					ratio = 20
				}

				adv := tr.Advantage
				clipped := ratio < 1-p.Cfg.ClipEps || ratio > 1+p.Cfg.ClipEps
				// Gradient of -min(r·A, clip(r)·A): zero when the
				// clipped branch is active AND it is the smaller one.
				useUnclipped := true
				if clipped {
					clipR := math.Max(1-p.Cfg.ClipEps, math.Min(1+p.Cfg.ClipEps, ratio))
					if clipR*adv < ratio*adv {
						useUnclipped = false
					}
					clipCount++
				}
				sampleCount++

				dMean, dLogStd := 0.0, 0.0
				if useUnclipped {
					gm, gs := nn.GaussianLogProbGrad(tr.Action, mean, std)
					// d(-r·A)/dθ = -A·r·dlogπ/dθ.
					dMean = -adv * ratio * gm
					dLogStd = -adv * ratio * gs
				}
				// Entropy bonus: H = c + logStd, so d(-βH)/dlogStd = -β.
				dLogStd -= beta

				p.Agent.PolicyBackward(dMean/n, dLogStd/n)

				surr := math.Min(ratio*adv, math.Max(1-p.Cfg.ClipEps, math.Min(1+p.Cfg.ClipEps, ratio))*adv)
				stats.PolicyLoss += -surr
				stats.Entropy += nn.GaussianEntropy(std)

				// Critic: 0.5·(V - R)².
				v := p.Agent.ValueForward(tr.Obs)
				dv := p.Cfg.ValueCoef * (v - tr.Return)
				p.Agent.ValueBackward(dv / n)
				stats.ValueLoss += 0.5 * (v - tr.Return) * (v - tr.Return)
				lossCount++
			}

			if p.Cfg.MaxGradNorm > 0 {
				nn.ClipGradNorm(p.Agent.ActorParams(), p.Cfg.MaxGradNorm)
				nn.ClipGradNorm(p.Agent.CriticParams(), p.Cfg.MaxGradNorm)
			}
			p.actorOpt.Step()
			p.criticOpt.Step()
		}
	}

	if lossCount > 0 {
		stats.PolicyLoss /= lossCount
		stats.ValueLoss /= lossCount
		stats.Entropy /= lossCount
	}
	if sampleCount > 0 {
		stats.ClipFraction = clipCount / sampleCount
	}
	p.iter++
	return stats
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
