package rl

import (
	"fmt"
	"math"
	"math/rand"

	"mocc/internal/nn"
)

// PPOConfig holds the Proximal Policy Optimization hyperparameters; the
// defaults follow Table 2 and §5 of the paper (and stable-baselines, which
// the authors built on).
type PPOConfig struct {
	// Gamma is the reward discount factor (Table 2: 0.99).
	Gamma float64
	// ClipEps is the surrogate clipping threshold ε (§5: 0.2).
	ClipEps float64
	// LR is the Adam learning rate (Table 2: 0.001).
	LR float64
	// EntropyInit/EntropyFinal/EntropyDecayIters implement the paper's β
	// schedule: decay from 1 to 0.1 over 1000 iterations (§5).
	EntropyInit       float64
	EntropyFinal      float64
	EntropyDecayIters int
	// Epochs is the number of passes over each rollout per update.
	Epochs int
	// MinibatchSize splits the rollout for gradient steps.
	MinibatchSize int
	// ValueCoef scales the critic loss.
	ValueCoef float64
	// MaxGradNorm clips the global gradient norm per minibatch.
	MaxGradNorm float64
	// Seed drives minibatch shuffling.
	Seed int64
	// Workers > 1 shards every minibatch's rows across that many goroutines,
	// each running batched forward/backward on a value-sharing replica of
	// the agent, with per-worker gradients reduced into the master in fixed
	// worker order before the optimizer step. Requires the agent to
	// implement ReplicaAgent (otherwise the update silently stays serial).
	// 0 or 1 keeps the single-goroutine engine. Minibatch composition is
	// independent of Workers, so a fixed seed and worker count give
	// bit-deterministic training; different worker counts differ only in
	// floating-point summation order (parallel shards associate gradient
	// sums differently than one full-batch pass).
	Workers int
}

// DefaultPPOConfig returns the paper's hyperparameters.
func DefaultPPOConfig() PPOConfig {
	return PPOConfig{
		Gamma:             0.99,
		ClipEps:           0.2,
		LR:                0.001,
		EntropyInit:       1.0,
		EntropyFinal:      0.1,
		EntropyDecayIters: 1000,
		Epochs:            4,
		MinibatchSize:     64,
		ValueCoef:         0.5,
		MaxGradNorm:       0.5,
		Seed:              1,
	}
}

// UpdateStats reports diagnostics from one PPO update.
type UpdateStats struct {
	PolicyLoss   float64
	ValueLoss    float64
	Entropy      float64
	ClipFraction float64
	Beta         float64 // entropy coefficient used
	MeanReward   float64 // from the rollout(s)
}

// PPO trains an ActorCritic with the clipped surrogate objective
// (Equations 3-5). When the agent implements BatchActorCritic, each
// minibatch runs as one batched forward/backward through the actor and
// critic over reusable scratch buffers; otherwise a per-sample fallback
// path (the original implementation) is used. With Cfg.Workers > 1 and a
// ReplicaAgent, minibatches additionally shard across a data-parallel
// worker pool (see update_parallel.go).
type PPO struct {
	Agent     ActorCritic
	Cfg       PPOConfig
	actorOpt  *nn.Adam
	criticOpt *nn.Adam
	rng       *rand.Rand
	iter      int

	// Cached parameter slices (ActorParams/CriticParams allocate).
	actorPs  []*nn.Param
	criticPs []*nn.Param

	idx   []int        // minibatch shuffle scratch
	trans []Transition // rollout gather scratch
	eng   mbEngine     // serial batched minibatch engine (agent = Agent)
	pool  *updatePool  // data-parallel engine, built lazily when Workers > 1
}

// NewPPO builds a trainer around the agent.
func NewPPO(agent ActorCritic, cfg PPOConfig) *PPO {
	p := &PPO{
		Agent:    agent,
		Cfg:      cfg,
		actorPs:  agent.ActorParams(),
		criticPs: agent.CriticParams(),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	p.actorOpt = nn.NewAdam(p.actorPs, cfg.LR)
	p.criticOpt = nn.NewAdam(p.criticPs, cfg.LR)
	if batched, ok := agent.(BatchActorCritic); ok {
		p.eng.agent = batched
	}
	return p
}

// Iter returns the number of PPO updates applied.
func (p *PPO) Iter() int { return p.iter }

// SetIter overrides the iteration counter (used when resuming a transferred
// model so the entropy schedule continues from the right point).
func (p *PPO) SetIter(i int) { p.iter = i }

// ResetOptimizers clears Adam state, e.g. after transferring weights to a
// new objective so stale momentum does not leak across tasks.
func (p *PPO) ResetOptimizers() {
	p.actorOpt.Reset()
	p.criticOpt.Reset()
}

// Beta returns the entropy coefficient for the current iteration, following
// the paper's 1 -> 0.1 decay over 1000 iterations.
func (p *PPO) Beta() float64 {
	c := p.Cfg
	if c.EntropyDecayIters <= 0 {
		return c.EntropyFinal
	}
	frac := float64(p.iter) / float64(c.EntropyDecayIters)
	if frac > 1 {
		frac = 1
	}
	return c.EntropyInit + (c.EntropyFinal-c.EntropyInit)*frac
}

// Update performs one PPO iteration on a single rollout.
func (p *PPO) Update(ro Rollout) UpdateStats {
	return p.UpdateMulti([]Rollout{ro})
}

// UpdateMulti performs one PPO iteration over several rollouts jointly,
// averaging their losses — this is the requirement-replay objective of
// Equation 6 when called with the new-objective and replayed-objective
// rollouts.
func (p *PPO) UpdateMulti(rollouts []Rollout) UpdateStats {
	all := p.trans[:0]
	var rewardSum float64
	for i := range rollouts {
		rollouts[i].ComputeReturns(p.Cfg.Gamma)
		all = append(all, rollouts[i].Trans...)
		rewardSum += rollouts[i].MeanReward
	}
	p.trans = all
	if len(all) == 0 {
		return UpdateStats{}
	}
	beta := p.Beta()
	stats := UpdateStats{Beta: beta, MeanReward: rewardSum / float64(len(rollouts))}

	if cap(p.idx) < len(all) {
		p.idx = make([]int, len(all))
	}
	idx := p.idx[:len(all)]
	for i := range idx {
		idx[i] = i
	}

	mb := p.Cfg.MinibatchSize
	if mb <= 0 || mb > len(all) {
		mb = len(all)
	}

	pool := p.ensurePool()
	if pool != nil {
		pool.begin(all)
		defer pool.end()
	}

	var lossCount, clipCount, sampleCount float64
	for epoch := 0; epoch < max(p.Cfg.Epochs, 1); epoch++ {
		// The shuffle consumes the rng identically for every worker count,
		// so minibatch composition never depends on Workers.
		p.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += mb {
			end := start + mb
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]

			nn.ZeroGrad(p.actorPs)
			nn.ZeroGrad(p.criticPs)

			switch {
			case pool != nil:
				pool.runMinibatch(batch, beta)
				pool.merge(&stats, &lossCount, &clipCount, &sampleCount)
			case p.eng.agent != nil:
				p.eng.reset()
				p.eng.run(&p.Cfg, all, batch, float64(len(batch)), beta)
				p.eng.merge(&stats, &lossCount, &clipCount, &sampleCount)
			default:
				p.minibatchSerial(all, batch, beta, &stats, &lossCount, &clipCount, &sampleCount)
			}

			if p.Cfg.MaxGradNorm > 0 {
				nn.ClipGradNorm(p.actorPs, p.Cfg.MaxGradNorm)
				nn.ClipGradNorm(p.criticPs, p.Cfg.MaxGradNorm)
			}
			p.actorOpt.Step()
			p.criticOpt.Step()
		}
	}

	if lossCount > 0 {
		stats.PolicyLoss /= lossCount
		stats.ValueLoss /= lossCount
		stats.Entropy /= lossCount
	}
	if sampleCount > 0 {
		stats.ClipFraction = clipCount / sampleCount
	}
	p.iter++
	return stats
}

// mbEngine accumulates the gradients of one minibatch shard with a single
// batched forward/backward through the actor and critic, over its own
// scratch buffers and partial-statistic accumulators — the unit of work of
// both the serial batched path (one engine spanning the whole minibatch) and
// the data-parallel path (one engine per worker, each over a row shard). It
// is gradient-equivalent to minibatchSerial: samples are processed in the
// same order, though the blocked kernels associate floating-point sums
// differently, so gradients match the serial path to tight tolerance (~1e-9,
// pinned by the batch equivalence tests) rather than bitwise.
type mbEngine struct {
	agent BatchActorCritic

	obsBuf  []float64 // [n x ObsSize] gathered observations
	actBuf  []float64 // actions
	oldLp   []float64 // behavior-policy log-probs
	advBuf  []float64 // advantages
	retBuf  []float64 // returns
	lpBuf   []float64 // current-policy log-probs
	gmBuf   []float64 // dlogpi/dmean
	gsBuf   []float64 // dlogpi/dlogstd
	dMean   []float64 // policy-mean loss gradients
	dLogStd []float64 // log-std loss gradients
	dV      []float64 // critic loss gradients

	policyLoss, valueLoss, entropy    float64
	lossCount, clipCount, sampleCount float64
}

// reset clears the partial statistics before a shard pass.
func (e *mbEngine) reset() {
	e.policyLoss, e.valueLoss, e.entropy = 0, 0, 0
	e.lossCount, e.clipCount, e.sampleCount = 0, 0, 0
}

// merge folds the engine's partial statistics into the update accumulators.
func (e *mbEngine) merge(stats *UpdateStats, lossCount, clipCount, sampleCount *float64) {
	stats.PolicyLoss += e.policyLoss
	stats.ValueLoss += e.valueLoss
	stats.Entropy += e.entropy
	*lossCount += e.lossCount
	*clipCount += e.clipCount
	*sampleCount += e.sampleCount
}

// run accumulates gradients for the batch rows into the engine agent's
// parameters. fn is the FULL minibatch row count (not the shard size): loss
// gradients divide by it so that summing shard gradients reproduces the
// full-minibatch mean regardless of how rows are sharded.
func (e *mbEngine) run(cfg *PPOConfig, all []Transition, batch []int, fn float64, beta float64) {
	n := len(batch)
	obsDim := e.agent.ObsSize()

	e.obsBuf = nn.Grow(e.obsBuf, n*obsDim)
	e.actBuf = nn.Grow(e.actBuf, n)
	e.oldLp = nn.Grow(e.oldLp, n)
	e.advBuf = nn.Grow(e.advBuf, n)
	e.retBuf = nn.Grow(e.retBuf, n)
	e.lpBuf = nn.Grow(e.lpBuf, n)
	e.gmBuf = nn.Grow(e.gmBuf, n)
	e.gsBuf = nn.Grow(e.gsBuf, n)
	e.dMean = nn.Grow(e.dMean, n)
	e.dLogStd = nn.Grow(e.dLogStd, n)
	e.dV = nn.Grow(e.dV, n)

	for k, i := range batch {
		tr := all[i]
		if len(tr.Obs) != obsDim {
			panic(fmt.Sprintf("rl: transition observation length %d, agent expects %d", len(tr.Obs), obsDim))
		}
		copy(e.obsBuf[k*obsDim:(k+1)*obsDim], tr.Obs)
		e.actBuf[k] = tr.Action
		e.oldLp[k] = tr.LogProb
		e.advBuf[k] = tr.Advantage
		e.retBuf[k] = tr.Return
	}

	means, std := e.agent.PolicyForwardBatch(e.obsBuf, n)
	nn.GaussianLogProbVec(e.lpBuf, e.actBuf, means, std)
	nn.GaussianLogProbGradVec(e.gmBuf, e.gsBuf, e.actBuf, means, std)
	entropy := nn.GaussianEntropy(std)

	for k := 0; k < n; k++ {
		dMean, dLogStd, surr := policySample(cfg, e.lpBuf[k], e.oldLp[k], e.advBuf[k],
			e.gmBuf[k], e.gsBuf[k], beta, &e.clipCount, &e.sampleCount)
		e.dMean[k] = dMean / fn
		e.dLogStd[k] = dLogStd / fn
		e.policyLoss += -surr
		e.entropy += entropy
	}
	e.agent.PolicyBackwardBatch(e.dMean, e.dLogStd)

	// Critic: 0.5·(V - R)².
	vs := e.agent.ValueForwardBatch(e.obsBuf, n)
	for k := 0; k < n; k++ {
		diff := vs[k] - e.retBuf[k]
		e.dV[k] = cfg.ValueCoef * diff / fn
		e.valueLoss += 0.5 * diff * diff
		e.lossCount++
	}
	e.agent.ValueBackwardBatch(e.dV)
}

// minibatchSerial is the per-sample fallback for agents without batched
// kernels; it shares the surrogate arithmetic with the batched path via
// policySample.
func (p *PPO) minibatchSerial(all []Transition, batch []int, beta float64,
	stats *UpdateStats, lossCount, clipCount, sampleCount *float64) {
	n := float64(len(batch))
	for _, i := range batch {
		tr := all[i]
		mean, std := p.Agent.PolicyForward(tr.Obs)
		logProb := nn.GaussianLogProb(tr.Action, mean, std)
		gm, gs := nn.GaussianLogProbGrad(tr.Action, mean, std)
		dMean, dLogStd, surr := policySample(&p.Cfg, logProb, tr.LogProb, tr.Advantage,
			gm, gs, beta, clipCount, sampleCount)
		p.Agent.PolicyBackward(dMean/n, dLogStd/n)
		stats.PolicyLoss += -surr
		stats.Entropy += nn.GaussianEntropy(std)

		// Critic: 0.5·(V - R)².
		v := p.Agent.ValueForward(tr.Obs)
		dv := p.Cfg.ValueCoef * (v - tr.Return)
		p.Agent.ValueBackward(dv / n)
		stats.ValueLoss += 0.5 * (v - tr.Return) * (v - tr.Return)
		*lossCount++
	}
}

// policySample computes one sample's clipped-surrogate loss gradient
// (Equations 3-5): the gradients of -min(r·A, clip(r)·A) - β·H with
// respect to the policy mean and log-std, plus the surrogate value for the
// loss statistics. It is the single source of the PPO arithmetic shared by
// the batched, data-parallel and per-sample paths.
func policySample(cfg *PPOConfig, logProb, oldLogProb, adv, gm, gs, beta float64,
	clipCount, sampleCount *float64) (dMean, dLogStd, surr float64) {
	ratio := math.Exp(logProb - oldLogProb)
	// Guard against numeric explosions on stale samples.
	if ratio > 20 {
		ratio = 20
	}

	clipped := ratio < 1-cfg.ClipEps || ratio > 1+cfg.ClipEps
	// Gradient of -min(r·A, clip(r)·A): zero when the clipped branch is
	// active AND it is the smaller one.
	useUnclipped := true
	if clipped {
		clipR := math.Max(1-cfg.ClipEps, math.Min(1+cfg.ClipEps, ratio))
		if clipR*adv < ratio*adv {
			useUnclipped = false
		}
		*clipCount++
	}
	*sampleCount++

	if useUnclipped {
		// d(-r·A)/dθ = -A·r·dlogπ/dθ.
		dMean = -adv * ratio * gm
		dLogStd = -adv * ratio * gs
	}
	// Entropy bonus: H = c + logStd, so d(-βH)/dlogStd = -β.
	dLogStd -= beta

	surr = math.Min(ratio*adv, math.Max(1-cfg.ClipEps, math.Min(1+cfg.ClipEps, ratio))*adv)
	return dMean, dLogStd, surr
}
